//! google-benchmark micro-benchmarks of the hot kernels: the dense linear
//! algebra substrate (GEMM / Gram / Cholesky / RLS solve), the bootstrap
//! comparator, and the three-way sorter. These quantify the cost of the
//! methodology itself (the paper's footnote 4 notes the sort is not
//! performance-optimized — this harness puts numbers on that).

#include "bench_common.hpp"
#include "core/bootstrap_comparator.hpp"
#include "core/threeway_sort.hpp"
#include "linalg/backend.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/gemm.hpp"
#include "linalg/rls.hpp"
#include "linalg/syrk.hpp"
#include "stats/bootstrap.hpp"
#include "stats/rng.hpp"
#include "workloads/mathtask.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

namespace {

using relperf::linalg::Matrix;
using relperf::stats::Rng;

// Dispatches through the active backend — `--backend blas` (or any other
// registered name) makes every dispatching benchmark below measure it.
void BM_Gemm(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    const Matrix a = Matrix::random_normal(n, n, rng);
    const Matrix b = Matrix::random_normal(n, n, rng);
    Matrix c(n, n);
    for (auto _ : state) {
        relperf::linalg::gemm(1.0, a, b, 0.0, c);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["GFLOP/s"] = benchmark::Counter(
        relperf::linalg::gemm_flops(n, n, n) * static_cast<double>(state.iterations()) /
            1e9,
        benchmark::Counter::kIsRate);
    state.SetLabel(relperf::linalg::active_backend().name);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

// Pins the portable blocked kernel regardless of --backend, so a vendor-BLAS
// run still reports the generic-vs-vendor gap in one output.
void BM_GemmBlocked(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    const Matrix a = Matrix::random_normal(n, n, rng);
    const Matrix b = Matrix::random_normal(n, n, rng);
    Matrix c(n, n);
    for (auto _ : state) {
        relperf::linalg::gemm_blocked(1.0, a, b, 0.0, c);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["GFLOP/s"] = benchmark::Counter(
        relperf::linalg::gemm_flops(n, n, n) * static_cast<double>(state.iterations()) /
            1e9,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmReference(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(2);
    const Matrix a = Matrix::random_normal(n, n, rng);
    const Matrix b = Matrix::random_normal(n, n, rng);
    Matrix c(n, n);
    for (auto _ : state) {
        relperf::linalg::gemm_reference(1.0, a, b, 0.0, c);
        benchmark::DoNotOptimize(c.data().data());
    }
}
BENCHMARK(BM_GemmReference)->Arg(64)->Arg(128);

void BM_Gram(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(3);
    const Matrix a = Matrix::random_normal(n, n, rng);
    Matrix g;
    for (auto _ : state) {
        relperf::linalg::gram(a, g);
        benchmark::DoNotOptimize(g.data().data());
    }
}
BENCHMARK(BM_Gram)->Arg(64)->Arg(256);

void BM_Cholesky(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(4);
    const Matrix a = Matrix::random_normal(n, n, rng);
    Matrix spd = relperf::linalg::gram(a);
    spd.add_scaled_identity(static_cast<double>(n));
    for (auto _ : state) {
        Matrix l = spd;
        relperf::linalg::cholesky_factor(l);
        benchmark::DoNotOptimize(l.data().data());
    }
}
BENCHMARK(BM_Cholesky)->Arg(64)->Arg(256);

void BM_RlsSolve(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(5);
    const Matrix a = Matrix::random_uniform(n, n, rng);
    const Matrix b = Matrix::random_uniform(n, n, rng);
    for (auto _ : state) {
        const Matrix z = relperf::linalg::rls_solve(a, b, 0.5);
        benchmark::DoNotOptimize(z.data().data());
    }
    state.counters["flops"] = relperf::linalg::rls_flops(n);
}
BENCHMARK(BM_RlsSolve)->Arg(50)->Arg(75)->Arg(300);

void BM_MathTaskProcedure6(benchmark::State& state) {
    const auto size = static_cast<std::size_t>(state.range(0));
    Rng rng(6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            relperf::workloads::run_rls_task(size, 1, 0.1, rng));
    }
}
BENCHMARK(BM_MathTaskProcedure6)->Arg(50)->Arg(75);

void BM_BootstrapResample(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng gen(7);
    std::vector<double> sample;
    for (std::size_t i = 0; i < n; ++i) sample.push_back(gen.lognormal(0.0, 0.1));
    Rng rng(8);
    std::vector<double> out;
    for (auto _ : state) {
        relperf::stats::resample(sample, n, rng, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_BootstrapResample)->Arg(30)->Arg(500);

void BM_BootstrapComparison(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng gen(9);
    std::vector<double> a;
    std::vector<double> b;
    for (std::size_t i = 0; i < n; ++i) {
        a.push_back(gen.lognormal(0.0, 0.08));
        b.push_back(1.05 * gen.lognormal(0.0, 0.08));
    }
    const relperf::core::BootstrapComparator cmp;
    Rng rng(10);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cmp.compare(a, b, rng));
    }
}
BENCHMARK(BM_BootstrapComparison)->Arg(30)->Arg(500);

void BM_ThreeWaySortRandomComparator(benchmark::State& state) {
    const auto p = static_cast<std::size_t>(state.range(0));
    Rng rng(11);
    const relperf::core::ThreeWaySorter sorter(
        [&rng](std::size_t, std::size_t) {
            const double u = rng.uniform();
            if (u < 0.2) return relperf::core::Ordering::Equivalent;
            return u < 0.6 ? relperf::core::Ordering::Better
                           : relperf::core::Ordering::Worse;
        });
    for (auto _ : state) {
        benchmark::DoNotOptimize(sorter.sort(p));
    }
    // Comparisons per sort: p(p-1)/2.
    state.counters["comparisons"] = static_cast<double>(p * (p - 1) / 2);
}
BENCHMARK(BM_ThreeWaySortRandomComparator)->Arg(8)->Arg(32)->Arg(128);

} // namespace

// Custom main instead of BENCHMARK_MAIN(): every relperf bench accepts
// `--csv <path>` (bench_common.hpp convention), which here is translated to
// google-benchmark's file reporter (--benchmark_out=<path> in CSV format),
// plus `--backend <name>` (install a linalg backend as the process default
// so the dispatching benchmarks measure it) and `--list-backends`.
int main(int argc, char** argv) try {
    std::vector<std::string> args;
    args.reserve(static_cast<std::size_t>(argc) + 1);
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--csv" && i + 1 < argc) {
            args.push_back("--benchmark_out=" + std::string(argv[++i]));
            args.push_back("--benchmark_out_format=csv");
        } else if (arg.rfind("--csv=", 0) == 0) {
            args.push_back("--benchmark_out=" + arg.substr(6));
            args.push_back("--benchmark_out_format=csv");
        } else if (arg == "--backend" && i + 1 < argc) {
            relperf::linalg::set_default_backend(argv[++i]);
        } else if (arg.rfind("--backend=", 0) == 0) {
            relperf::linalg::set_default_backend(arg.substr(10));
        } else if (arg == "--list-backends") {
            relperf::bench::print_backends();
            return 0;
        } else {
            args.push_back(arg);
        }
    }
    std::vector<char*> raw;
    raw.reserve(args.size());
    for (std::string& a : args) raw.push_back(a.data());
    int raw_argc = static_cast<int>(raw.size());
    benchmark::Initialize(&raw_argc, raw.data());
    if (benchmark::ReportUnrecognizedArguments(raw_argc, raw.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
