//! Extension bench (paper Sec. V outlook): model-guided search in exponential
//! assignment spaces. For chains of growing length k the bench runs the
//! measure-fit-predict-refine loop and reports how many of the 2^k
//! assignments had to be *executed* to find a split inside the top percentile
//! of the space (regret measured against the exhaustive noise-free optimum).

#include "bench_common.hpp"
#include "search/model_guided_search.hpp"
#include "sim/analytic.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "workloads/chain.hpp"

#include <algorithm>
#include <cstdio>

using namespace relperf;

namespace {

/// Exhaustive expected-time optimum and the rank of `found` inside the space.
struct Exhaustive {
    double best_seconds;
    std::size_t found_rank; // 0 = found the optimum
};

Exhaustive exhaustive_reference(const sim::SimulatedExecutor& executor,
                                const workloads::TaskChain& chain,
                                const workloads::DeviceAssignment& found) {
    const auto space = workloads::enumerate_assignments(chain.size());
    double best = 1e300;
    const double found_time = executor.expected_seconds(chain, found);
    std::size_t better = 0;
    for (const auto& a : space) {
        const double t = executor.expected_seconds(chain, a);
        best = std::min(best, t);
        if (t < found_time) ++better;
    }
    return {best, better};
}

} // namespace

int main(int argc, char** argv) {
    support::CliParser cli("search_scaling — subset search in exponential spaces");
    bench::add_common_options(cli);
    if (!cli.parse(argc, argv)) return 0;

    const sim::AnalyticCostModel cost_model(sim::paper_cpu_gpu_platform());
    const sim::SimulatedExecutor executor(cost_model, sim::NoiseModel{});

    bench::section("Model-guided search vs exhaustive optimum");
    support::AsciiTable table(
        {"k", "space", "measured", "fraction", "found", "regret", "rank"},
        {support::Align::Right, support::Align::Right, support::Align::Right,
         support::Align::Right, support::Align::Left, support::Align::Right,
         support::Align::Right});

    for (const std::size_t k : {6u, 8u, 10u, 12u}) {
        // Mixed sizes: repeat a ramp so every chain length is comparable.
        std::vector<std::size_t> sizes;
        const std::size_t ramp[] = {40, 80, 140, 220, 300, 380};
        for (std::size_t i = 0; i < k; ++i) sizes.push_back(ramp[i % 6]);
        const workloads::TaskChain chain =
            workloads::make_rls_chain(sizes, 5, "k" + std::to_string(k));

        search::SearchConfig config;
        config.initial_samples = 3 * k;
        config.refinement_rounds = 4;
        config.batch_size = k;
        config.measurements_per_alg = 10;
        config.seed = static_cast<std::uint64_t>(cli.value_int("seed"));
        const search::ModelGuidedSearch searcher(executor, chain, config);
        const search::SearchResult result = searcher.run();

        const Exhaustive ref = exhaustive_reference(executor, chain, result.best);
        const double regret =
            result.best_measured_mean / ref.best_seconds - 1.0;
        table.add_row({std::to_string(k), std::to_string(result.space_size),
                       std::to_string(result.measured_count),
                       str::format("%.1f %%", 100.0 * result.measured_fraction()),
                       result.best.str(), str::format("%+.1f %%", 100.0 * regret),
                       std::to_string(ref.found_rank)});
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf(
        "\nReading: the measured fraction of the space collapses as k grows\n"
        "(2^12 = 4096 assignments, < 3 %% executed) while the found split\n"
        "stays within the top of the space — the paper's Sec. V strategy of\n"
        "clustering a measured subset and letting a model guide the search.\n");
    return 0;
}
