//! Ablation A3: how does measurement noise shape the clusters? Sweeps the
//! lognormal sigma and the spike probability of the simulator's noise model
//! over the Table I workload, reporting the class count and the straddlers.
//! This probes the paper's core premise: fluctuating measurements change the
//! number of statistically distinguishable performance classes.

#include "bench_common.hpp"
#include "core/report.hpp"
#include "sim/profile.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "workloads/chain.hpp"

#include <cstdio>
#include <set>

using namespace relperf;

namespace {

int distinct_final_ranks(const core::Clustering& c) {
    std::set<int> ranks;
    for (const auto& fin : c.final_assignment) ranks.insert(fin.rank);
    return static_cast<int>(ranks.size());
}

int straddler_count(const core::Clustering& c) {
    int straddlers = 0;
    for (std::size_t alg = 0; alg < c.final_assignment.size(); ++alg) {
        int memberships = 0;
        for (int rank = 1; rank <= c.cluster_count(); ++rank) {
            if (c.score_of(alg, rank) >= 0.1) ++memberships;
        }
        if (memberships > 1) ++straddlers;
    }
    return straddlers;
}

} // namespace

int main(int argc, char** argv) {
    support::CliParser cli("ablation_noise — noise level vs cluster structure");
    bench::add_common_options(cli);
    cli.add_option("n", "measurements per algorithm", "30");
    if (!cli.parse(argc, argv)) return 0;

    const workloads::TaskChain chain = workloads::paper_rls_chain(10);
    const sim::CalibratedProfile profile = sim::paper_rls_profile();
    const auto assignments = workloads::enumerate_assignments(chain.size());
    const std::size_t n = static_cast<std::size_t>(cli.value_int("n"));

    bench::section("Cluster structure vs noise (Table I workload, N = " +
                   cli.value("n") + ")");
    support::AsciiTable table(
        {"sigma", "spike prob", "k", "straddlers", "winner", "loser"},
        {support::Align::Right, support::Align::Right, support::Align::Right,
         support::Align::Right, support::Align::Left, support::Align::Left});

    for (const double sigma : {0.005, 0.02, 0.08, 0.2, 0.4}) {
        for (const double spike : {0.0, 0.05}) {
            sim::NoiseModel noise;
            noise.sigma_log = sigma;
            noise.spike_prob = spike;
            const sim::SimulatedExecutor executor(profile, noise);
            const core::AnalysisConfig config = bench::analysis_config(cli, n);
            const core::AnalysisResult result =
                core::analyze_chain(executor, chain, assignments, config);

            // Winner = any algorithm with final rank 1; loser = max rank.
            std::string winner;
            std::string loser;
            int worst = 0;
            for (std::size_t alg = 0; alg < 8; ++alg) {
                const int rank = result.clustering.final_rank(alg);
                if (rank == 1) {
                    if (!winner.empty()) winner += "+";
                    winner += result.measurements.name(alg).substr(3);
                }
                if (rank > worst) {
                    worst = rank;
                    loser = result.measurements.name(alg).substr(3);
                }
            }
            table.add_row({str::fixed(sigma, 3), str::fixed(spike, 2),
                           std::to_string(distinct_final_ranks(result.clustering)),
                           std::to_string(straddler_count(result.clustering)),
                           winner, loser});
        }
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf(
        "\nReading: with tiny noise the classes are set by the comparator's\n"
        "relative tie band alone and are perfectly stable (no straddlers);\n"
        "at the calibrated 8 %% sigma the paper's borderline pairs appear\n"
        "(straddlers > 0); at very high noise the distributions blur\n"
        "together, k collapses and the top class swallows most algorithms.\n");
    return 0;
}
