#pragma once
//! \file bench_common.hpp
//! Shared plumbing for the experiment binaries: standard CLI options and the
//! default paper configuration.

#include "core/pipeline.hpp"
#include "linalg/backend.hpp"
#include "support/cli.hpp"

#include <cstdio>
#include <string>

namespace relperf::bench {

/// Adds the options every experiment binary shares.
inline void add_common_options(support::CliParser& cli) {
    cli.add_option("seed", "master seed for measurements", "42");
    cli.add_option("rep", "clustering repetitions (paper Rep)", "100");
    cli.add_option("csv", "write raw results to this CSV path", "");
}

/// Adds the linalg-backend options for benches that execute kernels.
inline void add_backend_options(support::CliParser& cli) {
    cli.add_option("backend", "linalg backend to measure on "
                              "(see --list-backends)", "");
    cli.add_flag("list-backends", "list the linalg backends of this build "
                                  "and exit");
}

/// Prints the registered backends (the --list-backends probe body).
inline void print_backends() {
    std::printf("linalg backends in this build (default: %s):\n",
                linalg::default_backend().name.c_str());
    for (const std::string& name : linalg::backend_names()) {
        std::printf("  %-10s %s\n", name.c_str(),
                    linalg::backend(name).description.c_str());
    }
}

/// Handles the backend options after parse(). Returns false when the caller
/// should exit (--list-backends printed); otherwise installs --backend as
/// the process default so every kernel the bench runs dispatches to it.
[[nodiscard]] inline bool apply_backend_options(const support::CliParser& cli) {
    if (cli.flag("list-backends")) {
        print_backends();
        return false;
    }
    if (const auto backend = cli.value_optional("backend")) {
        linalg::set_default_backend(*backend);
    }
    return true;
}

/// Builds the analysis config from parsed common options.
inline core::AnalysisConfig analysis_config(const support::CliParser& cli,
                                            std::size_t measurements) {
    core::AnalysisConfig config;
    config.measurements_per_alg = measurements;
    config.clustering.repetitions = static_cast<std::size_t>(cli.value_int("rep"));
    config.measurement_seed = static_cast<std::uint64_t>(cli.value_int("seed"));
    config.clustering.seed = config.measurement_seed * 7919 + 17;
    return config;
}

/// Prints a section header.
inline void section(const std::string& title) {
    std::printf("\n=== %s ===\n\n", title.c_str());
}

} // namespace relperf::bench
