#pragma once
//! \file bench_common.hpp
//! Shared plumbing for the experiment binaries: standard CLI options and the
//! default paper configuration.

#include "core/pipeline.hpp"
#include "support/cli.hpp"

#include <cstdio>
#include <string>

namespace relperf::bench {

/// Adds the options every experiment binary shares.
inline void add_common_options(support::CliParser& cli) {
    cli.add_option("seed", "master seed for measurements", "42");
    cli.add_option("rep", "clustering repetitions (paper Rep)", "100");
    cli.add_option("csv", "write raw results to this CSV path", "");
}

/// Builds the analysis config from parsed common options.
inline core::AnalysisConfig analysis_config(const support::CliParser& cli,
                                            std::size_t measurements) {
    core::AnalysisConfig config;
    config.measurements_per_alg = measurements;
    config.clustering.repetitions = static_cast<std::size_t>(cli.value_int("rep"));
    config.measurement_seed = static_cast<std::uint64_t>(cli.value_int("seed"));
    config.clustering.seed = config.measurement_seed * 7919 + 17;
    return config;
}

/// Prints a section header.
inline void section(const std::string& title) {
    std::printf("\n=== %s ===\n\n", title.c_str());
}

} // namespace relperf::bench
