//! Ablation A4: the same scientific code clustered on different simulated
//! edge platforms (paper Sec. I: the clusters "are specific to a given
//! computing architecture"). Uses the analytic cost model with the built-in
//! presets: Xeon+P100, Raspberry-Pi+LAN-server, smartphone+mobile-GPU and a
//! symmetric CPU-only pair.
//!
//! The measurement phase routes through the campaign subsystem
//! (src/campaign/): `--shards K` splits each platform's assignment list into
//! K shards executed across `--workers` threads, and the merged clustering is
//! bit-identical to the single-process path for every K (pass --verify to
//! check that in-process). On a multi-core host, larger --shards/--workers
//! shrink the measurement wall-clock.

#include "bench_common.hpp"
#include "campaign/campaign.hpp"
#include "core/report.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "support/csv.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "workloads/chain.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>

using namespace relperf;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

} // namespace

int main(int argc, char** argv) try {
    support::CliParser cli("platform_sweep — clusters across edge platforms");
    bench::add_common_options(cli);
    cli.add_option("n", "measurements per algorithm", "30");
    cli.add_option("sizes", "comma-separated task sizes", "64,256");
    cli.add_option("iters", "loop iterations per task", "5");
    cli.add_option("shards", "split each platform's campaign into K shards", "1");
    cli.add_option("workers", "shard worker threads (0 = all cores)", "0");
    cli.add_flag("verify", "also run the single-process path and check the "
                           "sharded clustering is identical");
    cli.add_option("variants", "per-task backend axis, comma-separated "
                               "(grows each campaign to the (2B)^k placement "
                               "x backend variants)", "");
    cli.add_flag("adaptive", "measure incrementally, stopping algorithms "
                             "whose class membership stabilized (--n is the "
                             "per-algorithm cap)");
    cli.add_option("min-n", "adaptive: measurements before any early stop "
                            "(implies --adaptive; default 10)", "");
    cli.add_option("batch", "adaptive: measurements added per round (implies "
                            "--adaptive; default 5)", "");
    cli.add_option("stability", "adaptive: consecutive stable clusterings "
                                "before an algorithm stops (implies "
                                "--adaptive; default 2)", "");
    cli.add_option("trace", "write a Chrome trace-event JSON of the sweep "
                            "here", "");
    cli.add_option("metrics", "write a Prometheus text-format metrics dump "
                              "here", "");
    bench::add_backend_options(cli);
    if (!cli.parse(argc, argv)) return 0;
    if (!bench::apply_backend_options(cli)) return 0;

    // Metrics back the adaptive savings summary; tracing only when asked.
    obs::set_metrics_enabled(true);
    const auto trace_path = cli.value_optional("trace");
    const auto metrics_path = cli.value_optional("metrics");
    if (trace_path) obs::set_tracing_enabled(true);
    obs::set_provenance("command", "bench_platform_sweep");

    const std::vector<std::size_t> sizes =
        str::parse_size_list(cli.value("sizes"), "--sizes");
    const std::size_t iters = str::parse_size(cli.value("iters"), "--iters");
    const std::size_t n = str::parse_size(cli.value("n"), "--n");
    const std::size_t shards = str::parse_size(cli.value("shards"), "--shards");
    const std::size_t workers = str::parse_size(cli.value("workers"), "--workers");
    const core::AnalysisConfig config = bench::analysis_config(cli, n);

    std::vector<std::string> variant_backends;
    if (const auto axis = cli.value_optional("variants")) {
        variant_backends = str::parse_name_list(*axis, "--variants");
    }

    const auto min_n_opt = cli.value_optional("min-n");
    const auto batch_opt = cli.value_optional("batch");
    const auto stability_opt = cli.value_optional("stability");
    const bool adaptive =
        cli.flag("adaptive") || min_n_opt || batch_opt || stability_opt;
    if (adaptive && cli.flag("verify")) {
        // The stopping rule decides per shard, so sharded-vs-solo adaptive
        // runs legitimately keep different counts; the bit-identity check
        // only holds for fixed-N campaigns.
        std::fputs("error: --verify checks bit-identity of the sharded path "
                   "and only applies to fixed-N sweeps (drop --adaptive)\n",
                   stderr);
        return 2;
    }
    // Zero would silently fall back to the fixed-N path while still
    // claiming an adaptive run in the report: reject it up front. Absent
    // knobs take the engine's own defaults.
    const core::AdaptiveConfig engine_defaults;
    const std::size_t adaptive_min =
        min_n_opt ? str::parse_positive_size(*min_n_opt, "--min-n")
                  : engine_defaults.min_n;
    const std::size_t adaptive_batch =
        batch_opt ? str::parse_positive_size(*batch_opt, "--batch")
                  : engine_defaults.batch;
    const std::size_t adaptive_stability =
        stability_opt ? str::parse_positive_size(*stability_opt, "--stability")
                      : engine_defaults.stability_rounds;
    // The measured algorithm list (identical across platforms): plain
    // placements, or placement x backend variants when an axis was given.
    std::vector<workloads::VariantAssignment> variants;
    if (variant_backends.empty()) {
        for (const auto& a : workloads::enumerate_assignments(sizes.size())) {
            variants.emplace_back(a);
        }
    } else {
        variants = workloads::enumerate_variants(sizes.size(), variant_backends);
    }

    std::vector<std::string> header = {"Algorithm"};
    std::vector<core::AnalysisResult> results;
    double measure_seconds = 0.0;
    const campaign::LocalShardRunner runner(workers);

    for (const std::string& preset : campaign::platform_preset_names()) {
        campaign::CampaignSpec spec;
        spec.name = preset;
        spec.sizes = sizes;
        spec.iters = iters;
        spec.platform = preset;
        spec.measurements = n;
        spec.measurement_seed = config.measurement_seed;
        if (const auto backend = cli.value_optional("backend")) {
            spec.backend = *backend; // recorded in the plan (and its hash)
        }
        spec.variant_backends = variant_backends;
        if (adaptive) {
            spec.adaptive_min = adaptive_min;
            spec.adaptive_batch = adaptive_batch;
            spec.adaptive_stability = adaptive_stability;
        }
        spec.shards = shards;
        spec.clustering_repetitions = config.clustering.repetitions;
        spec.clustering_seed = config.clustering.seed;

        const auto start = std::chrono::steady_clock::now();
        const std::vector<campaign::ShardResult> shard_results =
            runner.run(spec);
        measure_seconds += seconds_since(start);

        core::MeasurementSet merged = campaign::merge_shards(spec, shard_results);
        results.push_back(core::analyze_measurements(std::move(merged),
                                                     spec.analysis_config()));

        if (cli.flag("verify")) {
            const core::AnalysisResult solo = campaign::run_campaign(spec, 1, 1);
            bool identical =
                solo.clustering.cluster_count() ==
                results.back().clustering.cluster_count();
            for (std::size_t alg = 0; identical && alg < variants.size();
                 ++alg) {
                identical = solo.clustering.final_rank(alg) ==
                            results.back().clustering.final_rank(alg);
            }
            std::printf("%-32s sharded (K=%zu) clustering %s single-process\n",
                        preset.c_str(), shards,
                        identical ? "==" : "!=");
            if (!identical) {
                std::fputs("error: sharded clustering diverged\n", stderr);
                return 1;
            }
        }
        header.push_back(campaign::platform_preset(spec.platform).name);
    }

    bench::section("Final class of every split, per platform (chain sizes " +
                   cli.value("sizes") + ")");
    support::AsciiTable table(header);
    for (std::size_t alg = 0; alg < variants.size(); ++alg) {
        std::vector<std::string> row = {variants[alg].alg_name()};
        for (const core::AnalysisResult& result : results) {
            row.push_back(
                "C" + std::to_string(result.clustering.final_rank(alg)) + " (" +
                str::human_seconds(result.measurements.summary(alg).mean) + ")");
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf("\nmeasurement campaigns: %zu platforms x %zu shards, "
                "%s workers -> %s\n",
                campaign::platform_preset_names().size(), shards,
                workers == 0 ? "all" : std::to_string(workers).c_str(),
                str::human_seconds(measure_seconds).c_str());
    if (adaptive) {
        // The registry counters were fed by the engine as the campaigns
        // ran (--verify re-runs would double-feed them, but adaptive +
        // --verify is rejected above); reading them here keeps this line
        // and a --metrics dump mutually consistent by construction.
        const obs::Metrics& m = obs::metrics();
        std::printf("adaptive (min %zu, batch %zu, stability %zu): %s\n",
                    adaptive_min, adaptive_batch, adaptive_stability,
                    core::render_savings(m.samples_total.value(),
                                         m.samples_fixed_n_total.value())
                        .c_str());
    }

    if (const auto csv_path = cli.value_optional("csv")) {
        support::CsvWriter csv(*csv_path, {"platform", "algorithm",
                                           "final_cluster", "mean_seconds"});
        for (std::size_t p = 0; p < results.size(); ++p) {
            for (std::size_t alg = 0; alg < variants.size(); ++alg) {
                csv.add_row({campaign::platform_preset_names()[p],
                             variants[alg].alg_name(),
                             std::to_string(
                                 results[p].clustering.final_rank(alg)),
                             str::format("%.12g",
                                         results[p]
                                             .measurements.summary(alg)
                                             .mean)});
            }
        }
        std::printf("raw results written to %s\n", csv_path->c_str());
    }

    std::printf(
        "\nReading: offload economics flip across platforms — the Raspberry Pi\n"
        "gains from offloading anything sizable despite its slow link, the\n"
        "smartphone's mobile GPU only pays off for the large task, and the\n"
        "symmetric CPU pair clusters every split together.\n");

    if (trace_path) {
        obs::write_trace_json(*trace_path);
        std::printf("trace written to %s (%zu events)\n", trace_path->c_str(),
                    obs::trace_event_count());
    }
    if (metrics_path) {
        std::ofstream out(*metrics_path);
        out << obs::registry().render_prometheus();
        out.close();
        if (!out) {
            std::fprintf(stderr, "error: failed writing metrics to %s\n",
                         metrics_path->c_str());
            return 1;
        }
        std::printf("metrics written to %s\n", metrics_path->c_str());
    }
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
