//! Ablation A4: the same scientific code clustered on different simulated
//! edge platforms (paper Sec. I: the clusters "are specific to a given
//! computing architecture"). Uses the analytic cost model with the built-in
//! presets: Xeon+P100, Raspberry-Pi+LAN-server, smartphone+mobile-GPU and a
//! symmetric CPU-only pair.

#include "bench_common.hpp"
#include "core/report.hpp"
#include "sim/analytic.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "workloads/chain.hpp"

#include <cstdio>

using namespace relperf;

int main(int argc, char** argv) {
    support::CliParser cli("platform_sweep — clusters across edge platforms");
    bench::add_common_options(cli);
    cli.add_option("n", "measurements per algorithm", "30");
    cli.add_option("sizes", "comma-separated task sizes", "64,256");
    cli.add_option("iters", "loop iterations per task", "5");
    if (!cli.parse(argc, argv)) return 0;

    std::vector<std::size_t> sizes;
    for (const std::string& field : str::split(cli.value("sizes"), ',')) {
        sizes.push_back(static_cast<std::size_t>(std::stoul(field)));
    }
    const workloads::TaskChain chain = workloads::make_rls_chain(
        sizes, static_cast<std::size_t>(cli.value_int("iters")));
    const auto assignments = workloads::enumerate_assignments(chain.size());

    const std::vector<sim::Platform> platforms = {
        sim::paper_cpu_gpu_platform(), sim::rpi_server_platform(),
        sim::smartphone_gpu_platform(), sim::cpu_only_platform()};

    std::vector<std::string> header = {"Algorithm"};
    std::vector<core::AnalysisResult> results;
    for (const sim::Platform& platform : platforms) {
        const sim::AnalyticCostModel model(platform);
        const sim::SimulatedExecutor executor(model, sim::NoiseModel{});
        const core::AnalysisConfig config = bench::analysis_config(
            cli, static_cast<std::size_t>(cli.value_int("n")));
        results.push_back(
            core::analyze_chain(executor, chain, assignments, config));
        header.push_back(platform.name);
    }

    bench::section("Final class of every split, per platform (chain sizes " +
                   cli.value("sizes") + ")");
    support::AsciiTable table(header);
    for (std::size_t alg = 0; alg < assignments.size(); ++alg) {
        std::vector<std::string> row = {assignments[alg].alg_name()};
        for (const core::AnalysisResult& result : results) {
            row.push_back(
                "C" + std::to_string(result.clustering.final_rank(alg)) + " (" +
                str::human_seconds(result.measurements.summary(alg).mean) + ")");
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf(
        "\nReading: offload economics flip across platforms — the Raspberry Pi\n"
        "gains from offloading anything sizable despite its slow link, the\n"
        "smartphone's mobile GPU only pays off for the large task, and the\n"
        "symmetric CPU pair clusters every split together.\n");
    return 0;
}
