//! Ablation A2: sensitivity of the clustering to the bootstrap comparator's
//! knobs (rounds R, tie band epsilon, decision threshold theta) and to the
//! measurement count N. For each setting the bench reports the number of
//! classes and the final class of the three paper-critical algorithms
//! (algDDA / algDDD / algAAD).

#include "bench_common.hpp"
#include "core/report.hpp"
#include "stats/ranking.hpp"
#include "sim/profile.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "workloads/chain.hpp"

#include <cstdio>
#include <set>

using namespace relperf;

namespace {

struct Row {
    std::string label;
    core::Clustering clustering;
};

int distinct_final_ranks(const core::Clustering& c) {
    std::set<int> ranks;
    for (const auto& fin : c.final_assignment) ranks.insert(fin.rank);
    return static_cast<int>(ranks.size());
}

std::vector<int> final_labels(const core::Clustering& c) {
    std::vector<int> labels;
    labels.reserve(c.final_assignment.size());
    for (const auto& fin : c.final_assignment) labels.push_back(fin.rank);
    return labels;
}

} // namespace

int main(int argc, char** argv) {
    support::CliParser cli("ablation_bootstrap — bootstrap knob sensitivity");
    bench::add_common_options(cli);
    if (!cli.parse(argc, argv)) return 0;

    const workloads::TaskChain chain = workloads::paper_rls_chain(10);
    const sim::CalibratedProfile profile = sim::paper_rls_profile();
    const sim::SimulatedExecutor executor(profile, sim::NoiseModel{});
    const auto assignments = workloads::enumerate_assignments(chain.size());
    const std::uint64_t seed = static_cast<std::uint64_t>(cli.value_int("seed"));
    const std::size_t rep = static_cast<std::size_t>(cli.value_int("rep"));

    const auto run = [&](std::size_t n, core::BootstrapComparatorConfig cmp_cfg,
                         const std::string& label) {
        stats::Rng rng(seed);
        const core::MeasurementSet set =
            core::measure_assignments(executor, chain, assignments, n, rng);
        const core::BootstrapComparator comparator(cmp_cfg);
        const core::RelativeClusterer clusterer(
            comparator, core::ClustererConfig{rep, seed + 1});
        return Row{label, clusterer.cluster(set)};
    };

    std::vector<Row> rows;

    // N sweep at default knobs.
    for (const std::size_t n : {10u, 30u, 100u, 500u}) {
        rows.push_back(run(n, {}, "N=" + std::to_string(n)));
    }
    // Rounds sweep.
    for (const std::size_t r : {20u, 100u, 500u}) {
        core::BootstrapComparatorConfig cfg;
        cfg.rounds = r;
        rows.push_back(run(30, cfg, "R=" + std::to_string(r)));
    }
    // Tie-band sweep.
    for (const double eps : {0.0, 0.02, 0.05, 0.15}) {
        core::BootstrapComparatorConfig cfg;
        cfg.tie_epsilon = eps;
        rows.push_back(run(30, cfg, "eps=" + str::fixed(eps, 2)));
    }
    // Decision-threshold sweep.
    for (const double theta : {0.5, 0.8, 0.9, 0.99}) {
        core::BootstrapComparatorConfig cfg;
        cfg.decision_threshold = theta;
        rows.push_back(run(30, cfg, "theta=" + str::fixed(theta, 2)));
    }

    bench::section("Clustering vs bootstrap knobs (Table I workload)");
    support::AsciiTable table({"Setting", "k", "DDA", "DDD", "AAD", "ARI vs default"},
                              {support::Align::Left, support::Align::Right,
                               support::Align::Right, support::Align::Right,
                               support::Align::Right, support::Align::Right});
    // Reference labeling: default knobs at N = 30 (second entry of the N sweep).
    const std::vector<int> reference = final_labels(rows[1].clustering);
    // The measurement set uses paper enumeration order: DDD=0, DDA=1, ...
    stats::Rng name_rng(seed);
    const core::MeasurementSet names =
        core::measure_assignments(executor, chain, assignments, 2, name_rng);
    const std::size_t idx_dda = names.index_of("algDDA");
    const std::size_t idx_ddd = names.index_of("algDDD");
    const std::size_t idx_aad = names.index_of("algAAD");

    for (const Row& row : rows) {
        const std::vector<int> labels = final_labels(row.clustering);
        table.add_row({row.label, std::to_string(distinct_final_ranks(row.clustering)),
                       "C" + std::to_string(row.clustering.final_rank(idx_dda)),
                       "C" + std::to_string(row.clustering.final_rank(idx_ddd)),
                       "C" + std::to_string(row.clustering.final_rank(idx_aad)),
                       str::fixed(stats::adjusted_rand_index(labels, reference), 2)});
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf(
        "\nReading: a huge tie band (eps = 0.15) or a permissive threshold\n"
        "(theta = 0.5) collapse/split the structure; the defaults (eps = 0.02,\n"
        "theta = 0.9, R = 100) hold the paper's five-class shape, and growing\n"
        "N sharpens the borderline pairs without changing the winner/loser.\n");
    return 0;
}
