//! Extension bench (paper Sec. V outlook): execution-less prediction of
//! relative performance. Trains the ridge predictor on the measured Table I
//! workload and reports (a) true-vs-predicted mean times for every split,
//! (b) ordering quality (Kendall tau, Spearman rho, pairwise disagreement,
//! class agreement), and (c) how quality degrades when training on smaller
//! measured subsets (the Sec. V "apply the methodology on a subset" regime).

#include "bench_common.hpp"
#include "model/predictor.hpp"
#include "model/triplet.hpp"
#include "stats/ranking.hpp"
#include "sim/profile.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "workloads/chain.hpp"

#include <cstdio>

using namespace relperf;

int main(int argc, char** argv) {
    support::CliParser cli("model_prediction — execution-less relative performance");
    bench::add_common_options(cli);
    cli.add_option("n", "measurements per algorithm", "30");
    if (!cli.parse(argc, argv)) return 0;

    const workloads::TaskChain chain = workloads::paper_rls_chain(10);
    const sim::CalibratedProfile profile = sim::paper_rls_profile();
    const sim::SimulatedExecutor executor(profile, sim::NoiseModel{});
    const auto assignments = workloads::enumerate_assignments(chain.size());

    const core::AnalysisConfig config = bench::analysis_config(
        cli, static_cast<std::size_t>(cli.value_int("n")));
    const core::AnalysisResult analysis =
        core::analyze_chain(executor, chain, assignments, config);

    model::PerformancePredictor predictor;
    predictor.fit(chain, assignments, analysis.measurements);

    bench::section("True vs predicted mean execution times (trained on all 8)");
    support::AsciiTable table({"Algorithm", "Measured", "Predicted", "Error"},
                              {support::Align::Left, support::Align::Right,
                               support::Align::Right, support::Align::Right});
    for (std::size_t i = 0; i < assignments.size(); ++i) {
        const double measured = analysis.measurements.summary(i).mean;
        const double predicted = predictor.predict_seconds(chain, assignments[i]);
        table.add_row({analysis.measurements.name(i),
                       str::human_seconds(measured),
                       str::human_seconds(predicted),
                       str::format("%+.2f %%", 100.0 * (predicted / measured - 1.0))});
    }
    std::fputs(table.render().c_str(), stdout);

    const model::PredictionEval eval = model::evaluate_predictor(
        predictor, chain, assignments, analysis.measurements, analysis.clustering);
    bench::section("Ordering quality");
    std::printf("Kendall tau-b          : %.3f\n", eval.kendall_tau);
    std::printf("Spearman rho           : %.3f\n", eval.spearman_rho);
    std::printf("pairwise disagreement  : %.3f\n", eval.pairwise_disagreement);
    std::printf("mean |rel. error|      : %.3f\n", eval.mean_abs_rel_error);
    std::printf("class agreement        : %.3f\n", eval.rank_agreement);

    bench::section("Prediction quality vs training-subset size");
    support::AsciiTable sweep({"Train on", "Kendall tau", "Mean |rel err|"},
                              {support::Align::Right, support::Align::Right,
                               support::Align::Right});
    stats::Rng subset_rng(static_cast<std::uint64_t>(cli.value_int("seed")) + 99);
    for (const std::size_t train_count : {3u, 4u, 5u, 6u, 8u}) {
        // Average over random subsets.
        double tau_sum = 0.0;
        double err_sum = 0.0;
        constexpr int kTrials = 10;
        for (int trial = 0; trial < kTrials; ++trial) {
            std::vector<std::size_t> order(assignments.size());
            for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
            subset_rng.shuffle(order);

            std::vector<workloads::DeviceAssignment> train;
            core::MeasurementSet train_set;
            for (std::size_t i = 0; i < train_count; ++i) {
                const std::size_t idx = order[i];
                train.push_back(assignments[idx]);
                const auto samples = analysis.measurements.samples(idx);
                train_set.add(analysis.measurements.name(idx),
                              {samples.begin(), samples.end()});
            }
            model::PerformancePredictor sub;
            sub.fit(chain, train, train_set);
            const model::PredictionEval sub_eval = model::evaluate_predictor(
                sub, chain, assignments, analysis.measurements,
                analysis.clustering);
            tau_sum += sub_eval.kendall_tau;
            err_sum += sub_eval.mean_abs_rel_error;
        }
        sweep.add_row({std::to_string(train_count) + "/8",
                       str::fixed(tau_sum / kTrials, 3),
                       str::fixed(err_sum / kTrials, 3)});
    }
    std::fputs(sweep.render().c_str(), stdout);

    bench::section("Triplet scorer: trained on class labels only (paper Sec. I)");
    {
        stats::Rng triplet_rng(static_cast<std::uint64_t>(cli.value_int("seed")) +
                               1234);
        const model::TripletScorer scorer = model::fit_triplet_scorer(
            chain, assignments, analysis.clustering, 600, triplet_rng);
        std::vector<double> scores;
        std::vector<double> measured;
        support::AsciiTable ttable({"Algorithm", "Class", "Triplet score"},
                                   {support::Align::Left, support::Align::Left,
                                    support::Align::Right});
        for (std::size_t i = 0; i < assignments.size(); ++i) {
            const double s_i = scorer.score(
                model::extract_features(chain, assignments[i]).values);
            scores.push_back(s_i);
            measured.push_back(analysis.measurements.summary(i).mean);
            ttable.add_row(
                {analysis.measurements.name(i),
                 "C" + std::to_string(analysis.clustering.final_rank(i)),
                 str::fixed(s_i, 3)});
        }
        std::fputs(ttable.render().c_str(), stdout);
        std::printf("Kendall tau vs measured times: %.3f "
                    "(supervision: class labels only, no absolute times)\n",
                    stats::kendall_tau_b(scores, measured));
    }

    std::printf(
        "\nReading: trained on all eight splits, the structural features\n"
        "reproduce the measured ordering nearly perfectly; with only half of\n"
        "the space measured, the predicted ordering remains strong — the\n"
        "basis for the paper's proposed execution-less algorithm selection.\n");
    return 0;
}
