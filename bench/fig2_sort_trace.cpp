//! Reproduces the paper's **Figure 2**: the step-by-step trace of the
//! three-way bubble sort on the four algorithms of Figure 1a, starting from
//! the paper's initial sequence <DD, AA, DA, AD>.
//!
//! Two traces are printed:
//!  1. the *idealized* trace with a deterministic comparator encoding the
//!     true relations (matches the paper figure exactly), and
//!  2. a *measured* trace driven by the bootstrap comparator on simulated
//!     N = 30 distributions (may differ on borderline pairs — that is the
//!     point of Sec. III).

#include "bench_common.hpp"
#include "core/report.hpp"
#include "sim/profile.hpp"
#include "workloads/chain.hpp"

#include <cstdio>
#include <map>

using namespace relperf;
using core::Ordering;

namespace {

/// The true relations of Figure 1b as a deterministic comparator.
class Figure1bTruth final : public core::Comparator {
public:
    explicit Figure1bTruth(const core::MeasurementSet& set) {
        const std::size_t dd = set.index_of("algDD");
        const std::size_t aa = set.index_of("algAA");
        const std::size_t da = set.index_of("algDA");
        const std::size_t ad = set.index_of("algAD");
        set_pair(ad, aa, Ordering::Better);
        set_pair(ad, dd, Ordering::Better);
        set_pair(ad, da, Ordering::Better);
        set_pair(aa, dd, Ordering::Better);
        set_pair(aa, da, Ordering::Better);
        set_pair(dd, da, Ordering::Equivalent);
        samples_ = &set;
    }

    Ordering compare(std::span<const double> a, std::span<const double> b,
                     stats::Rng&) const override {
        return table_.at({index_of(a), index_of(b)});
    }

    std::string name() const override { return "figure-1b-truth"; }

private:
    std::size_t index_of(std::span<const double> s) const {
        for (std::size_t i = 0; i < samples_->size(); ++i) {
            const auto ref = samples_->samples(i);
            if (ref.data() == s.data()) return i;
        }
        return 0;
    }

    void set_pair(std::size_t a, std::size_t b, Ordering o) {
        table_[{a, b}] = o;
        table_[{b, a}] = core::reverse(o);
    }

    std::map<std::pair<std::size_t, std::size_t>, Ordering> table_;
    const core::MeasurementSet* samples_ = nullptr;
};

} // namespace

int main(int argc, char** argv) {
    support::CliParser cli("fig2_sort_trace — paper Figure 2 bubble-sort trace");
    bench::add_common_options(cli);
    cli.add_option("n", "measurements per algorithm (measured trace)", "30");
    if (!cli.parse(argc, argv)) return 0;

    const workloads::TaskChain chain = workloads::two_loop_chain();
    const sim::CalibratedProfile profile = sim::fig1b_profile();
    const sim::SimulatedExecutor executor(profile, sim::NoiseModel{});

    stats::Rng rng(static_cast<std::uint64_t>(cli.value_int("seed")));
    core::MeasurementSet set = core::measure_assignments(
        executor, chain, workloads::enumerate_assignments(2),
        static_cast<std::size_t>(cli.value_int("n")), rng);

    // Paper's initial sequence <DD, AA, DA, AD>.
    const std::vector<std::size_t> initial = {
        set.index_of("algDD"), set.index_of("algAA"), set.index_of("algDA"),
        set.index_of("algAD")};

    bench::section("Idealized trace (deterministic comparator; paper Figure 2)");
    {
        const Figure1bTruth truth(set);
        const core::RelativeClusterer clusterer(truth, core::ClustererConfig{1, 1});
        std::vector<core::SortStep> trace;
        stats::Rng sort_rng(1);
        const core::RankedSequence final_seq =
            clusterer.sort_once_traced(set, initial, sort_rng, trace);
        std::fputs(core::render_sort_trace(trace, set).c_str(), stdout);
        std::printf("final: ");
        for (std::size_t pos = 0; pos < final_seq.order.size(); ++pos) {
            std::printf("(%s, %d) ", set.name(final_seq.order[pos]).c_str(),
                        final_seq.ranks[pos]);
        }
        std::printf("\npaper:  (algAD, 1) (algAA, 2) (algDD, 3) (algDA, 3)\n");
    }

    bench::section("Measured trace (bootstrap comparator on N = " +
                   cli.value("n") + " simulated measurements)");
    {
        const core::BootstrapComparator comparator;
        const core::RelativeClusterer clusterer(comparator,
                                                core::ClustererConfig{1, 1});
        std::vector<core::SortStep> trace;
        stats::Rng sort_rng(static_cast<std::uint64_t>(cli.value_int("seed")) + 1);
        (void)clusterer.sort_once_traced(set, initial, sort_rng, trace);
        std::fputs(core::render_sort_trace(trace, set).c_str(), stdout);
    }

    bench::section("Relative scores over Rep = " + cli.value("rep") +
                   " shuffled repetitions");
    {
        const core::BootstrapComparator comparator;
        const core::RelativeClusterer clusterer(
            comparator,
            core::ClustererConfig{static_cast<std::size_t>(cli.value_int("rep")),
                                  static_cast<std::uint64_t>(cli.value_int("seed"))});
        const core::Clustering clustering = clusterer.cluster(set);
        std::fputs(core::render_cluster_table(clustering, set).c_str(), stdout);
    }
    return 0;
}
