//! Overhead of the observability layer (src/obs/): span enter/exit and
//! counter-increment cost with tracing/metrics enabled vs disabled. The
//! disabled numbers quantify the "one relaxed atomic check" claim that lets
//! instrumentation sit in hot control paths unconditionally; the enabled
//! span number includes the buffer push and clock reads a recording run
//! pays. This bench times its own loops with steady_clock (allowlisted in
//! ci/lint_allow.txt); nothing here feeds measurement CSVs.

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "support/csv.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

#include <chrono>
#include <cstdio>
#include <vector>

using namespace relperf;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

struct Case {
    std::string name;
    bool enabled;
    double ns_per_op;
};

/// ns/op of `op` repeated `iters` times (best of `reps` runs, so scheduler
/// noise inflates nothing).
template <typename Op>
double time_op(std::size_t iters, std::size_t reps, Op&& op) {
    double best = 0.0;
    for (std::size_t r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < iters; ++i) op(i);
        const double s = seconds_since(start);
        if (r == 0 || s < best) best = s;
    }
    return best * 1e9 / static_cast<double>(iters);
}

} // namespace

int main(int argc, char** argv) try {
    support::CliParser cli(
        "obs_overhead — span and counter cost, enabled vs disabled");
    bench::add_common_options(cli);
    cli.add_option("iters", "operations per timed loop", "200000");
    cli.add_option("reps", "timed repetitions per case (best is reported)",
                   "5");
    if (!cli.parse(argc, argv)) return 0;

    const std::size_t iters = str::parse_positive_size(cli.value("iters"),
                                                       "--iters");
    const std::size_t reps = str::parse_positive_size(cli.value("reps"),
                                                      "--reps");

    // Warm the registry so handle registration never lands in a timed loop.
    const obs::Metrics& m = obs::metrics();

    std::vector<Case> cases;
    for (const bool enabled : {false, true}) {
        obs::set_tracing_enabled(enabled);
        obs::set_metrics_enabled(enabled);

        cases.push_back({"span enter/exit", enabled,
                         time_op(iters, reps, [](std::size_t) {
                             const obs::Span span("bench.span", "bench");
                         })});
        obs::clear_trace();

        cases.push_back(
            {"span + 2 args", enabled, time_op(iters, reps, [](std::size_t i) {
                 obs::Span span("bench.span_args", "bench");
                 span.arg("i", static_cast<std::uint64_t>(i))
                     .arg("phase", "measure");
             })});
        obs::clear_trace();

        cases.push_back({"counter inc", enabled,
                         time_op(iters, reps, [&m](std::size_t) {
                             m.executions_total.inc();
                         })});

        cases.push_back({"histogram observe", enabled,
                         time_op(iters, reps, [&m](std::size_t i) {
                             m.shard_seconds.observe(
                                 static_cast<double>(i % 97) * 0.01);
                         })});
    }
    obs::set_tracing_enabled(false);
    obs::set_metrics_enabled(false);
    obs::registry().reset_values();

    bench::section(str::format("obs overhead (%zu ops/loop, best of %zu)",
                               iters, reps));
    support::AsciiTable table({"Operation", "Disabled ns/op", "Enabled ns/op",
                               "Ratio"});
    const std::size_t half = cases.size() / 2;
    for (std::size_t i = 0; i < half; ++i) {
        const Case& off = cases[i];
        const Case& on = cases[half + i];
        const double ratio =
            off.ns_per_op > 0.0 ? on.ns_per_op / off.ns_per_op : 0.0;
        table.add_row({off.name, str::format("%.2f", off.ns_per_op),
                       str::format("%.2f", on.ns_per_op),
                       str::format("%.1fx", ratio)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nDisabled cost is the price every instrumented hot path "
                "pays unconditionally;\nit should stay within a few ns "
                "(one relaxed atomic load).\n");

    if (const auto csv_path = cli.value_optional("csv")) {
        support::CsvWriter csv(*csv_path, {"operation", "enabled", "ns_per_op"});
        for (const Case& c : cases) {
            csv.add_row({c.name, c.enabled ? "1" : "0",
                         str::format("%.17g", c.ns_per_op)});
        }
        std::printf("raw results written to %s\n", csv_path->c_str());
    }
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
