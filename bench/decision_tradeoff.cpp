//! Reproduces the paper's **Section IV operating-cost discussion**: "the
//! choice of algorithm is now based on a decision-model that is a trade-off
//! between operating cost and speed". Sweeps the cost per accelerator-second
//! and reports which algorithm the cost-aware selector picks, showing the
//! switch from algDDA (buy the accelerator) to algDDD (stay on the edge).

#include "bench_common.hpp"
#include "core/decision.hpp"
#include "sim/profile.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "workloads/chain.hpp"

#include <cstdio>

using namespace relperf;

int main(int argc, char** argv) {
    support::CliParser cli("decision_tradeoff — paper Sec. IV cost/speed trade-off");
    bench::add_common_options(cli);
    cli.add_option("rank-tolerance", "eligible classes (1 = best only)", "2");
    if (!cli.parse(argc, argv)) return 0;

    const workloads::TaskChain chain = workloads::paper_rls_chain(10);
    const sim::CalibratedProfile profile = sim::paper_rls_profile();
    const sim::SimulatedExecutor executor(profile, sim::NoiseModel{});
    const auto assignments = workloads::enumerate_assignments(chain.size());

    const core::AnalysisConfig config = bench::analysis_config(cli, 30);
    const core::AnalysisResult analysis =
        core::analyze_chain(executor, chain, assignments, config);
    const auto candidates = core::build_candidate_profiles(
        analysis.measurements, analysis.clustering, executor, chain, assignments);

    bench::section("Candidates within rank tolerance " +
                   cli.value("rank-tolerance"));
    support::AsciiTable cand_table(
        {"Algorithm", "Class", "Mean time", "Accel busy", "Device FLOPs"},
        {support::Align::Left, support::Align::Left, support::Align::Right,
         support::Align::Right, support::Align::Right});
    for (const auto& c : candidates) {
        if (c.final_rank > cli.value_int("rank-tolerance")) continue;
        cand_table.add_row({c.name, "C" + std::to_string(c.final_rank),
                            str::human_seconds(c.mean_seconds),
                            str::human_seconds(c.accelerator_seconds),
                            str::format("%.3g", c.device_flops)});
    }
    std::fputs(cand_table.render().c_str(), stdout);

    bench::section("Selected algorithm vs accelerator operating cost");
    support::AsciiTable table({"Cost / accel-second", "Choice", "Utility"},
                              {support::Align::Right, support::Align::Left,
                               support::Align::Right});
    for (const double weight : {0.0, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 100.0}) {
        core::CostAwareConfig cost_cfg;
        cost_cfg.cost_per_accelerator_second = weight;
        cost_cfg.rank_tolerance = cli.value_int("rank-tolerance");
        const core::CandidateProfile pick =
            core::select_cost_aware(candidates, cost_cfg);
        const double utility =
            pick.mean_seconds + weight * pick.accelerator_seconds;
        table.add_row({str::format("%.2f", weight), pick.name,
                       str::format("%.4f", utility)});
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf(
        "\nPaper reference (Sec. IV): with no operating cost the best class\n"
        "(algDDA) wins; as the accelerator cost grows the decision model\n"
        "falls back to algDDD, which is \"not so bad\" (class C2).\n");
    return 0;
}
