//! Ablation A1: how does the *comparison strategy* change the clustering?
//! Runs the Table I workload through the paper's bootstrap comparator and
//! through the classical baselines (Mann-Whitney, Kolmogorov-Smirnov, naive
//! mean/median with tolerance), printing the final classes side by side.

#include "bench_common.hpp"
#include "core/classical_comparators.hpp"
#include "core/report.hpp"
#include "sim/profile.hpp"
#include "support/table.hpp"
#include "workloads/chain.hpp"

#include <cstdio>
#include <memory>

using namespace relperf;

int main(int argc, char** argv) {
    support::CliParser cli("ablation_comparators — comparator strategy ablation");
    bench::add_common_options(cli);
    cli.add_option("n", "measurements per algorithm", "30");
    if (!cli.parse(argc, argv)) return 0;

    const workloads::TaskChain chain = workloads::paper_rls_chain(10);
    const sim::CalibratedProfile profile = sim::paper_rls_profile();
    const sim::SimulatedExecutor executor(profile, sim::NoiseModel{});
    const auto assignments = workloads::enumerate_assignments(chain.size());

    stats::Rng rng(static_cast<std::uint64_t>(cli.value_int("seed")));
    const core::MeasurementSet set = core::measure_assignments(
        executor, chain, assignments,
        static_cast<std::size_t>(cli.value_int("n")), rng);

    std::vector<std::unique_ptr<core::Comparator>> comparators;
    comparators.push_back(std::make_unique<core::BootstrapComparator>());
    comparators.push_back(std::make_unique<core::MannWhitneyComparator>());
    comparators.push_back(std::make_unique<core::KsComparator>());
    comparators.push_back(std::make_unique<core::SummaryComparator>(
        core::SummaryComparator::Statistic::Mean, 0.02));
    comparators.push_back(std::make_unique<core::SummaryComparator>(
        core::SummaryComparator::Statistic::Median, 0.02));

    // Final class of every algorithm under every comparator.
    std::vector<core::Clustering> clusterings;
    std::vector<std::string> header = {"Algorithm"};
    for (const auto& cmp : comparators) {
        const core::RelativeClusterer clusterer(
            *cmp, core::ClustererConfig{
                      static_cast<std::size_t>(cli.value_int("rep")),
                      static_cast<std::uint64_t>(cli.value_int("seed")) + 1});
        clusterings.push_back(clusterer.cluster(set));
        header.push_back(cmp->name());
    }

    bench::section("Final performance class per algorithm per comparator");
    support::AsciiTable table(header);
    for (std::size_t alg = 0; alg < set.size(); ++alg) {
        std::vector<std::string> row = {set.name(alg)};
        for (const auto& clustering : clusterings) {
            row.push_back("C" + std::to_string(clustering.final_rank(alg)));
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);

    bench::section("Cluster counts");
    for (std::size_t i = 0; i < comparators.size(); ++i) {
        int distinct = 0;
        std::vector<bool> seen(set.size() + 1, false);
        for (const auto& fin : clusterings[i].final_assignment) {
            if (!seen[static_cast<std::size_t>(fin.rank)]) {
                seen[static_cast<std::size_t>(fin.rank)] = true;
                ++distinct;
            }
        }
        std::printf("%-20s k = %d\n", comparators[i]->name().c_str(), distinct);
    }

    std::printf(
        "\nReading: the bootstrap comparator's tie band absorbs borderline\n"
        "gaps and reproduces the paper's five-class structure; the\n"
        "hypothesis-test and single-statistic baselines call more borderline\n"
        "pairs 'different' and fragment the middle band into extra classes\n"
        "whose boundaries move from sample to sample (rerun with --seed).\n");
    return 0;
}
