//! Reproduces the paper's **Section IV speed-up discussion**: the mean
//! execution times of algDDD vs algDDA as the loop size n grows. The paper
//! reports a ~0.002 s gap and ~1.05x speed-up at n = 10, growing with n; the
//! sweep also exposes the crossover below which offloading L3 does not pay.

#include "bench_common.hpp"
#include "stats/descriptive.hpp"
#include "sim/profile.hpp"
#include "support/csv.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "workloads/chain.hpp"

#include <cstdio>
#include <memory>

using namespace relperf;

int main(int argc, char** argv) {
    support::CliParser cli("speedup_n_sweep — paper Sec. IV speed-up vs n");
    bench::add_common_options(cli);
    cli.add_option("n", "measurements per point", "100");
    if (!cli.parse(argc, argv)) return 0;

    const sim::CalibratedProfile profile = sim::paper_rls_profile();
    const sim::SimulatedExecutor executor(profile, sim::NoiseModel{});
    const std::vector<std::size_t> sweep = {1, 2, 3, 5, 7, 10, 15, 20, 50, 100};

    bench::section("algDDD vs algDDA across loop sizes n");
    support::AsciiTable table(
        {"n", "mean DDD", "mean DDA", "delta", "speed-up", "winner"},
        {support::Align::Right, support::Align::Right, support::Align::Right,
         support::Align::Right, support::Align::Right, support::Align::Left});

    std::unique_ptr<support::CsvWriter> csv;
    if (const auto path = cli.value_optional("csv")) {
        csv = std::make_unique<support::CsvWriter>(
            *path, std::vector<std::string>{"n", "mean_ddd_s", "mean_dda_s",
                                            "speedup"});
    }

    const std::size_t n_meas = static_cast<std::size_t>(cli.value_int("n"));
    stats::Rng rng(static_cast<std::uint64_t>(cli.value_int("seed")));
    for (const std::size_t n : sweep) {
        const workloads::TaskChain chain = workloads::paper_rls_chain(n);
        const double ddd = stats::mean(executor.measure(
            chain, workloads::DeviceAssignment("DDD"), n_meas, rng));
        const double dda = stats::mean(executor.measure(
            chain, workloads::DeviceAssignment("DDA"), n_meas, rng));
        const double speedup = ddd / dda;
        table.add_row({std::to_string(n), str::human_seconds(ddd),
                       str::human_seconds(dda), str::human_seconds(ddd - dda),
                       str::fixed(speedup, 3),
                       speedup > 1.0 ? "DDA (offload L3)" : "DDD (stay local)"});
        if (csv) {
            csv->add_row({std::to_string(n), str::format("%.9g", ddd),
                          str::format("%.9g", dda), str::format("%.4f", speedup)});
        }
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf(
        "\nPaper reference (Sec. IV, n = 10): delta ~ 0.002 s, speed-up ~ 1.05,\n"
        "increasing with n. The sweep also shows the crossover near n ~ 6-7\n"
        "below which staging costs make offloading L3 unprofitable.\n");
    return 0;
}
