//! Reproduces the paper's **Table I**: the eight splits (D/A)^3 of the
//! three-task RLS chain (sizes 50/75/300, n = 10) clustered into performance
//! classes with relative scores. N = 30 measurements per algorithm (paper
//! Sec. IV), Rep = 100 repetitions.

#include "bench_common.hpp"
#include "core/report.hpp"
#include "sim/profile.hpp"
#include "workloads/chain.hpp"

#include <cstdio>

using namespace relperf;

int main(int argc, char** argv) {
    support::CliParser cli("table1_clustering — paper Table I");
    bench::add_common_options(cli);
    cli.add_option("n", "measurements per algorithm (paper: 30)", "30");
    cli.add_option("iters", "loop iterations per MathTask (paper: 10)", "10");
    if (!cli.parse(argc, argv)) return 0;

    const workloads::TaskChain chain =
        workloads::paper_rls_chain(static_cast<std::size_t>(cli.value_int("iters")));
    const sim::CalibratedProfile profile = sim::paper_rls_profile();
    const sim::SimulatedExecutor executor(profile, sim::NoiseModel{});
    const auto assignments = workloads::enumerate_assignments(chain.size());

    const core::AnalysisConfig config = bench::analysis_config(
        cli, static_cast<std::size_t>(cli.value_int("n")));
    const core::AnalysisResult result =
        core::analyze_chain(executor, chain, assignments, config);

    bench::section("Measurement summaries (N = " + cli.value("n") + ")");
    std::fputs(core::render_summary_table(result.measurements).c_str(), stdout);

    bench::section("Table I: clustering of algorithms with relative scores");
    std::fputs(
        core::render_cluster_table(result.clustering, result.measurements).c_str(),
        stdout);

    bench::section("Final unique assignment (max-score rank, cumulated score)");
    std::fputs(
        core::render_final_table(result.clustering, result.measurements).c_str(),
        stdout);

    std::printf(
        "\nPaper reference (Table I):\n"
        "  C1 {DDA 1.0, DAA 0.6}  C2 {DDD 1.0, DAA 0.4}\n"
        "  C3 {ADA 1.0, ADD 1.0, DAD 0.7}  C4 {AAA 1.0, DAD 0.3}  C5 {AAD 1.0}\n"
        "Reproduction note: the winner (DDA), DDD-in-C2, the straddlers and\n"
        "the loser (AAD) match; AAA lands adjacent to ADA/ADD instead of one\n"
        "class below (non-additive testbed effect, see EXPERIMENTS.md).\n");

    if (const auto path = cli.value_optional("csv")) {
        core::write_clustering_csv(result.clustering, result.measurements, *path);
        std::printf("\nclustering written to %s\n", path->c_str());
    }
    return 0;
}
