//! Analysis hot paths at scale: comparator score ns/op (against an in-bench
//! reproduction of the pre-scratch two-full-sorts implementation), clusterer
//! wall time vs p (sparse tallies, with the dense O(p^2) oracle at small p),
//! adaptive engine round cost with frozen-comparison reuse on vs off,
//! coordinated-stopping sample budgets vs shard count for both stopping
//! rules, and the result cache's cold/exact-hit/prefix-extension run costs.
//! This bench times its own loops with steady_clock (allowlisted in
//! ci/lint_allow.txt); nothing here feeds measurement CSVs.

#include "bench_common.hpp"
#include "cache/cached_campaign.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "core/bootstrap_comparator.hpp"
#include "core/clustering.hpp"
#include "core/measurement_engine.hpp"
#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"
#include "stats/rng.hpp"
#include "support/csv.hpp"
#include "support/str.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

using namespace relperf;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/// One CSV row; every section appends its numbers here.
struct Row {
    std::string section;
    std::string metric;
    std::string param;
    double value;
};

/// The comparator loop exactly as it stood before the scratch rewrite: a
/// fresh resample pair per round, two full sorts, quantile on sorted data.
/// Consumes the rng in the same order as BootstrapComparator::score, so the
/// two paths produce identical scores on identical streams — the timing
/// difference is purely the selection/allocation strategy.
double legacy_score(const core::BootstrapComparatorConfig& config,
                    std::span<const double> a, std::span<const double> b,
                    stats::Rng& rng) {
    std::vector<double> res_a;
    std::vector<double> res_b;
    long wins_a = 0;
    long wins_b = 0;
    for (std::size_t r = 0; r < config.rounds; ++r) {
        stats::resample(a, a.size(), rng, res_a);
        stats::resample(b, b.size(), rng, res_b);
        std::sort(res_a.begin(), res_a.end());
        std::sort(res_b.begin(), res_b.end());
        const double q = rng.uniform(config.quantile_lo, config.quantile_hi);
        const double qa = stats::quantile_sorted(res_a, q);
        const double qb = stats::quantile_sorted(res_b, q);
        const double band =
            config.tie_epsilon * std::min(std::fabs(qa), std::fabs(qb));
        if (std::fabs(qa - qb) <= band) continue;
        if (qa < qb) {
            ++wins_a;
        } else {
            ++wins_b;
        }
    }
    return static_cast<double>(wins_a - wins_b) /
           static_cast<double>(config.rounds);
}

std::vector<double> lognormal_sample(double median, std::size_t n,
                                     std::uint64_t seed) {
    stats::Rng rng(seed);
    std::vector<double> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(median * rng.lognormal(0.0, 0.2));
    }
    return out;
}

/// p algorithms in overlapping tiers, `samples` values each.
core::MeasurementSet tiered_set(std::size_t p, std::size_t samples,
                                std::uint64_t seed) {
    stats::Rng rng(seed);
    core::MeasurementSet set;
    for (std::size_t i = 0; i < p; ++i) {
        const double base = 1.0 + 0.25 * static_cast<double>(i % 7);
        std::vector<double> values;
        values.reserve(samples);
        for (std::size_t k = 0; k < samples; ++k) {
            values.push_back(base * (1.0 + 0.05 * rng.uniform(-1.0, 1.0)));
        }
        set.add("alg" + std::to_string(i), std::move(values));
    }
    return set;
}

/// Deterministic engine source: two clearly separated tiers that freeze
/// after a couple of rounds, plus four closely overlapping "wobbler"
/// algorithms whose ranks keep flipping — they extend to max_n, so most
/// rounds re-cluster with a large frozen majority. That is exactly the
/// regime the frozen-comparison reuse targets.
class SyntheticSource final : public core::SampleSource {
public:
    explicit SyntheticSource(std::size_t count) : count_(count),
                                                  position_(count, 0) {}

    [[nodiscard]] std::size_t count() const override { return count_; }
    [[nodiscard]] std::string name(std::size_t index) const override {
        return "alg" + std::to_string(index);
    }
    [[nodiscard]] std::vector<double> draw(std::size_t index,
                                           std::size_t n) override {
        const bool wobbler = index + 4 >= count_;
        std::vector<double> out;
        out.reserve(n);
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t pos = position_[index]++;
            if (wobbler) {
                // Upward-drifting mean, slope staggered per algorithm: every
                // batch of extension samples shifts the empirical quantiles,
                // so the wobblers keep crossing each other and the tiers —
                // their final rank never stays stable and they measure to
                // max_n while the tiers sit frozen.
                const double slope = 0.02 + 0.005 * static_cast<double>(
                                                        index % 4);
                out.push_back(1.0 + slope * static_cast<double>(pos) +
                              0.01 * static_cast<double>((pos * 13) % 5));
            } else {
                const double base = index < count_ / 2 ? 1.0 : 2.0;
                out.push_back(base * (1.0 + 0.002 * static_cast<double>(
                                                        (pos * 7) % 11)));
            }
        }
        return out;
    }

private:
    std::size_t count_;
    std::vector<std::size_t> position_;
};

} // namespace

int main(int argc, char** argv) {
    support::CliParser cli("analysis — comparator/clusterer/engine hot paths");
    bench::add_common_options(cli);
    cli.add_option("n", "samples per algorithm (comparator section)", "30");
    cli.add_option("rounds", "bootstrap rounds per comparison", "100");
    cli.add_option("iters", "score calls per timing measurement", "200");
    if (!cli.parse(argc, argv)) return 0;

    const auto n = static_cast<std::size_t>(cli.value_int("n"));
    const auto iters = static_cast<std::size_t>(cli.value_int("iters"));
    const auto seed = static_cast<std::uint64_t>(cli.value_int("seed"));
    core::BootstrapComparatorConfig comparator_config;
    comparator_config.rounds = static_cast<std::size_t>(cli.value_int("rounds"));

    std::vector<Row> rows;
    double checksum = 0.0; // consumes every score so nothing is optimized out

    // --- Section 1: comparator score ns/op, new path vs legacy loop. ------
    bench::section(str::format("Comparator score (n = %zu, rounds = %zu)", n,
                               comparator_config.rounds));
    {
        const std::vector<double> a = lognormal_sample(1.0, n, seed + 1);
        const std::vector<double> b = lognormal_sample(1.05, n, seed + 2);
        const core::BootstrapComparator comparator(comparator_config);
        core::BootstrapScratch scratch;

        const auto time_scores = [&](auto&& score_once) {
            double best = 0.0;
            for (int rep = 0; rep < 3; ++rep) { // best-of-3 vs scheduler noise
                stats::Rng rng(seed + 99);
                const auto start = std::chrono::steady_clock::now();
                for (std::size_t i = 0; i < iters; ++i) {
                    checksum += score_once(rng);
                }
                const double s = seconds_since(start);
                if (rep == 0 || s < best) best = s;
            }
            return best * 1e9 / static_cast<double>(iters);
        };

        const double new_ns = time_scores([&](stats::Rng& rng) {
            return comparator.score(a, b, rng, scratch);
        });
        const double legacy_ns = time_scores([&](stats::Rng& rng) {
            return legacy_score(comparator_config, a, b, rng);
        });
        const double speedup = legacy_ns > 0.0 ? legacy_ns / new_ns : 0.0;

        std::printf("  scratch + nth_element : %10.1f ns/score\n", new_ns);
        std::printf("  legacy two-full-sorts : %10.1f ns/score\n", legacy_ns);
        std::printf("  speedup               : %10.2fx\n", speedup);
        const std::string param =
            str::format("n=%zu,rounds=%zu", n, comparator_config.rounds);
        rows.push_back({"comparator", "score_ns_per_op", param, new_ns});
        rows.push_back({"comparator", "legacy_score_ns_per_op", param,
                        legacy_ns});
        rows.push_back({"comparator", "speedup", param, speedup});
    }

    // --- Section 2: clusterer wall time vs p (sparse, dense at small p). --
    bench::section("Clusterer wall time vs p (Rep = 4, rounds = 10)");
    {
        core::BootstrapComparatorConfig cheap = comparator_config;
        cheap.rounds = 10;
        const core::BootstrapComparator comparator(cheap);
        for (const std::size_t p : {std::size_t{64}, std::size_t{256},
                                    std::size_t{1024}}) {
            const core::MeasurementSet set = tiered_set(p, 5, seed + p);
            const core::RelativeClusterer clusterer(
                comparator, core::ClustererConfig{4, seed + 7});

            auto start = std::chrono::steady_clock::now();
            const core::Clustering sparse = clusterer.cluster(set);
            const double sparse_ms = seconds_since(start) * 1e3;
            checksum += sparse.final_assignment[0].score;
            rows.push_back({"clusterer", "sparse_wall_ms",
                            "p=" + std::to_string(p), sparse_ms});

            if (p <= 256) { // the dense oracle's p^2 matrix stays affordable
                start = std::chrono::steady_clock::now();
                const core::Clustering dense = clusterer.cluster_dense(set);
                const double dense_ms = seconds_since(start) * 1e3;
                checksum += dense.final_assignment[0].score;
                rows.push_back({"clusterer", "dense_wall_ms",
                                "p=" + std::to_string(p), dense_ms});
                std::printf("  p = %5zu : sparse %8.1f ms   dense %8.1f ms\n",
                            p, sparse_ms, dense_ms);
            } else {
                std::printf("  p = %5zu : sparse %8.1f ms   dense (skipped, "
                            "O(p^2) memory)\n",
                            p, sparse_ms);
            }
        }
    }

    // --- Section 3: engine round cost, frozen-comparison reuse on/off. ----
    // The reuse mechanism pays per *round*: once most algorithms have frozen,
    // a re-clustering replays their pairwise outcomes instead of re-running
    // the bootstrap. Measured directly at the clusterer level — one round
    // with a 120/128 frozen majority (cache warm) against a cold round —
    // because end-to-end engine wall time also folds in measurement cost and
    // the final clean re-clustering, which bury the per-round effect.
    bench::section("Engine round cost (p = 128, 120 frozen, Rep = 8)");
    {
        core::BootstrapComparatorConfig cheap = comparator_config;
        cheap.rounds = 25;
        const core::BootstrapComparator comparator(cheap);
        const core::MeasurementSet set = tiered_set(128, 5, seed + 17);
        const core::RelativeClusterer clusterer(
            comparator, core::ClustererConfig{8, seed + 13});

        core::ClusterContext cold_ctx;
        checksum += clusterer.cluster(set, cold_ctx) // prepare orders/streams
                        .final_assignment[0]
                        .score;
        auto start = std::chrono::steady_clock::now();
        checksum += clusterer.cluster(set, cold_ctx).final_assignment[0].score;
        const double cold_ms = seconds_since(start) * 1e3;

        core::ClusterContext warm_ctx;
        for (std::size_t alg = 0; alg < 120; ++alg) warm_ctx.freeze(alg);
        checksum += clusterer.cluster(set, warm_ctx) // fills the outcome cache
                        .final_assignment[0]
                        .score;
        start = std::chrono::steady_clock::now();
        checksum += clusterer.cluster(set, warm_ctx).final_assignment[0].score;
        const double warm_ms = seconds_since(start) * 1e3;
        const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;

        std::printf("  reuse=off : %8.1f ms/round\n", cold_ms);
        std::printf("  reuse=on  : %8.1f ms/round (%zu outcomes replayed)\n",
                    warm_ms, warm_ctx.reused_last_round());
        std::printf("  round speedup : %.2fx\n", speedup);
        rows.push_back({"engine", "round_wall_ms", "reuse=off", cold_ms});
        rows.push_back({"engine", "round_wall_ms", "reuse=on", warm_ms});
        rows.push_back({"engine", "round_speedup", "frozen=120/128", speedup});
        rows.push_back({"engine", "outcomes_replayed", "frozen=120/128",
                        static_cast<double>(warm_ctx.reused_last_round())});
    }

    // End-to-end engine context: adaptive run with reuse on/off. The tiers
    // freeze after a few rounds while the drifting wobblers extend, so this
    // shows the whole pipeline (measurement + re-clustering + final clean
    // re-cluster when outcomes were replayed).
    bench::section("Adaptive engine end-to-end (32 algorithms)");
    {
        for (const bool reuse : {true, false}) {
            core::AdaptiveConfig adaptive;
            adaptive.min_n = 5;
            adaptive.max_n = 60;
            adaptive.batch = 3;
            adaptive.stability_rounds = 2;
            adaptive.reuse_frozen_comparisons = reuse;
            core::BootstrapComparatorConfig cheap = comparator_config;
            cheap.rounds = 25;
            const core::MeasurementEngine engine(
                adaptive, cheap, core::ClustererConfig{20, seed + 13});

            SyntheticSource source(32);
            const auto start = std::chrono::steady_clock::now();
            const core::EngineResult result = engine.run(source);
            const double wall_ms = seconds_since(start) * 1e3;
            checksum += result.clustering.final_assignment[0].score;

            const std::string param = reuse ? "reuse=on" : "reuse=off";
            std::printf("  %-9s : %8.1f ms over %zu rounds — %s\n",
                        param.c_str(), wall_ms, result.rounds,
                        core::render_savings(result.total_samples,
                                             result.fixed_n_samples)
                            .c_str());
            rows.push_back({"engine", "run_wall_ms", param, wall_ms});
            rows.push_back({"engine", "rounds", param,
                            static_cast<double>(result.rounds)});
            rows.push_back({"engine", "saved_samples", param,
                            static_cast<double>(result.saved_samples())});
        }
    }

    // --- Section 4: coordinated stopping — sample budget vs shard count. --
    // The coordinator's stop decisions watch the *merged* clustering, so the
    // per-algorithm counts should be K-invariant by construction; this
    // section measures that claim (and the two stopping rules' budgets)
    // instead of assuming it. The spec uses 4 task sizes = 16 placement
    // algorithms so K = 16 is admissible — the sharder caps K at the
    // variant count.
    bench::section("Coordinated stopping (16 algorithms, K in {1, 4, 16})");
    {
        campaign::CampaignSpec spec;
        spec.name = "bench-coordination";
        spec.sizes = {40, 60, 90, 140};
        spec.iters = 6;
        spec.measurements = 30;
        spec.measurement_seed = seed + 23;
        spec.adaptive_min = 10;
        spec.adaptive_batch = 5;
        spec.adaptive_coordinated = true;
        spec.clustering_repetitions = 40;
        spec.bootstrap_rounds = 50;

        for (const double confidence : {0.0, 0.95}) {
            spec.adaptive_confidence = confidence;
            const char* rule = confidence == 0.0 ? "stability" : "confidence";
            for (const std::size_t k :
                 {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
                const auto start = std::chrono::steady_clock::now();
                const campaign::CoordinatedCampaignResult coordinated =
                    campaign::run_coordinated_campaign(spec, k);
                const double wall_ms = seconds_since(start) * 1e3;
                checksum +=
                    coordinated.analysis.clustering.final_assignment[0].score;

                const std::size_t total = coordinated.analysis.total_samples;
                const std::size_t saved =
                    coordinated.analysis.fixed_n_samples - total;
                std::printf("  %-10s K = %2zu : %3zu/%zu samples, saved %3zu "
                            "(%zu rounds, %6.1f ms)\n",
                            rule, k, total,
                            coordinated.analysis.fixed_n_samples, saved,
                            coordinated.rounds, wall_ms);
                const std::string param =
                    str::format("rule=%s,K=%zu", rule, k);
                rows.push_back({"coordination", "total_samples", param,
                                static_cast<double>(total)});
                rows.push_back({"coordination", "saved_samples", param,
                                static_cast<double>(saved)});
                rows.push_back({"coordination", "rounds", param,
                                static_cast<double>(coordinated.rounds)});
                rows.push_back({"coordination", "run_wall_ms", param,
                                wall_ms});
            }
        }
    }

    // --- Section 5: result cache — cold run vs exact hit vs extension. ----
    // The cache's pitch in numbers: a repeat query pays only re-clustering
    // (exact hit), a budget bump pays only the delta (prefix extension).
    // Sim measurement is cheap, so the wall times mostly show the analysis
    // floor; the samples_from_cache rows carry the actual avoided work.
    bench::section("Result cache (fixed-N sim campaign, budget 40 -> 60)");
    {
        namespace fs = std::filesystem;
        const std::string dir =
            (fs::temp_directory_path() /
             str::format("relperf_bench_cache_%llu",
                         static_cast<unsigned long long>(seed)))
                .string();
        fs::remove_all(dir);

        campaign::CampaignSpec spec;
        spec.name = "bench-cache";
        spec.sizes = {40, 60, 90};
        spec.iters = 6;
        spec.measurements = 40;
        spec.measurement_seed = seed + 31;
        spec.clustering_repetitions = 40;
        spec.bootstrap_rounds = 50;
        cache::ResultCache result_cache(cache::CacheConfig{dir, 0, 0});

        const auto timed_run = [&](const campaign::CampaignSpec& plan,
                                   const char* tier) {
            const auto start = std::chrono::steady_clock::now();
            const cache::CachedRunResult run =
                cache::run_campaign_cached(plan, result_cache, 1);
            const double wall_ms = seconds_since(start) * 1e3;
            checksum += run.analysis.clustering.final_assignment[0].score;
            std::printf("  %-6s : %8.1f ms — %s, %zu/%zu samples from "
                        "cache\n",
                        tier, wall_ms, cache::to_string(run.cache),
                        run.samples_from_cache, run.analysis.total_samples);
            const std::string param = std::string("tier=") + tier;
            rows.push_back({"cache", "run_wall_ms", param, wall_ms});
            rows.push_back({"cache", "samples_from_cache", param,
                            static_cast<double>(run.samples_from_cache)});
            return run;
        };

        (void)timed_run(spec, "cold");   // miss: measures and publishes
        (void)timed_run(spec, "exact");  // exact hit: zero executor draws
        campaign::CampaignSpec bigger = spec;
        bigger.measurements = 60;
        (void)timed_run(bigger, "prefix"); // extension: only the delta drawn
        fs::remove_all(dir);
    }

    std::printf("\nchecksum %.6f (anti-DCE; value carries no meaning)\n",
                checksum);

    if (const auto csv_path = cli.value_optional("csv")) {
        support::CsvWriter csv(*csv_path, {"section", "metric", "param",
                                           "value"});
        for (const Row& row : rows) {
            csv.add_row({row.section, row.metric, row.param,
                         str::format("%.17g", row.value)});
        }
        std::printf("raw results written to %s\n", csv_path->c_str());
    }
    return 0;
}
