//! Reproduces the paper's **Section IV energy application**: a device that
//! "cannot persistently handle all the computations because of energy
//! constraints" runs algDDD and periodically switches to algDAA — the
//! algorithm in the top classes that offloads most of the computations —
//! until it cools down. The bench simulates the duty cycle and reports time
//! and device-energy totals against the never-switching baseline.

#include "bench_common.hpp"
#include "core/decision.hpp"
#include "core/report.hpp"
#include "sim/profile.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "workloads/chain.hpp"

#include <cstdio>

using namespace relperf;

int main(int argc, char** argv) {
    support::CliParser cli("energy_switching — paper Sec. IV energy-budget policy");
    bench::add_common_options(cli);
    cli.add_option("runs", "total chain executions in the duty cycle", "400");
    cli.add_option("budget-j", "device energy budget per window (J)", "18");
    cli.add_option("window", "runs per monitoring window", "40");
    cli.add_option("cooldown", "runs on the off-loading algorithm", "15");
    if (!cli.parse(argc, argv)) return 0;

    const workloads::TaskChain chain = workloads::paper_rls_chain(10);
    const sim::CalibratedProfile profile = sim::paper_rls_profile();
    const sim::SimulatedExecutor executor(profile, sim::NoiseModel{});
    const sim::EnergyModel energy(sim::paper_cpu_gpu_platform());
    const auto assignments = workloads::enumerate_assignments(chain.size());

    // Cluster first: the switching pair is derived from the analysis.
    const core::AnalysisConfig config = bench::analysis_config(cli, 30);
    const core::AnalysisResult analysis =
        core::analyze_chain(executor, chain, assignments, config);
    const auto candidates = core::build_candidate_profiles(
        analysis.measurements, analysis.clustering, executor, chain, assignments);

    const core::CandidateProfile primary =
        core::select_cost_aware(candidates, core::CostAwareConfig{1e9, 2});
    const core::CandidateProfile alternate =
        core::select_min_device_flops(candidates, 2);

    bench::section("Selected policy pair");
    std::printf("primary   : %s (class C%d, device FLOPs %.3g)\n",
                primary.name.c_str(), primary.final_rank, primary.device_flops);
    std::printf("alternate : %s (class C%d, device FLOPs %.3g)\n",
                alternate.name.c_str(), alternate.final_rank,
                alternate.device_flops);

    const core::EnergyBudgetSwitcher switcher(executor, energy, chain);
    core::SwitchPolicyConfig policy;
    policy.device_energy_budget_j = cli.value_double("budget-j");
    policy.window_runs = static_cast<std::size_t>(cli.value_int("window"));
    policy.cooldown_runs = static_cast<std::size_t>(cli.value_int("cooldown"));

    stats::Rng rng(static_cast<std::uint64_t>(cli.value_int("seed")));
    const core::SwitchTrace trace = switcher.simulate(
        workloads::DeviceAssignment(primary.name.substr(3)),
        workloads::DeviceAssignment(alternate.name.substr(3)),
        static_cast<std::size_t>(cli.value_int("runs")), policy, rng);

    bench::section("Duty-cycle segments");
    support::AsciiTable table({"Algorithm", "Runs", "Seconds", "Device energy"},
                              {support::Align::Left, support::Align::Right,
                               support::Align::Right, support::Align::Right});
    for (const auto& seg : trace.segments) {
        table.add_row({seg.alg_name, std::to_string(seg.runs),
                       str::fixed(seg.seconds, 3),
                       str::format("%.3f J", seg.device_energy_j)});
    }
    std::fputs(table.render().c_str(), stdout);

    bench::section("Totals vs never-switching baseline");
    std::printf("switches                : %zu\n", trace.switches);
    std::printf("policy total time       : %s\n",
                str::human_seconds(trace.total_seconds).c_str());
    std::printf("baseline total time     : %s\n",
                str::human_seconds(trace.baseline_seconds).c_str());
    std::printf("policy device energy    : %.3f J\n", trace.total_device_energy_j);
    std::printf("baseline device energy  : %.3f J\n",
                trace.baseline_device_energy_j);
    std::printf("device energy saved     : %.1f %%\n",
                100.0 * (1.0 - trace.total_device_energy_j /
                                   trace.baseline_device_energy_j));
    return 0;
}
