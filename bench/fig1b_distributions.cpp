//! Reproduces the paper's **Figure 1b**: execution-time distributions of the
//! four splits (DD, DA, AD, AA) of the two-loop scientific code on the
//! calibrated CPU(Xeon-8160-core) + GPU(P100) platform, N = 500 measurements,
//! plus the resulting performance classes at N = 500 and at N = 30 (the
//! Sec. III relative-score example).

#include "bench_common.hpp"
#include "core/report.hpp"
#include "sim/profile.hpp"
#include "workloads/chain.hpp"

#include <cstdio>

using namespace relperf;

int main(int argc, char** argv) {
    support::CliParser cli(
        "fig1b_distributions — paper Figure 1b + Sec. III relative scores");
    bench::add_common_options(cli);
    cli.add_option("n-large", "large measurement count (figure)", "500");
    cli.add_option("n-small", "small measurement count (Sec. III example)", "30");
    if (!cli.parse(argc, argv)) return 0;

    const workloads::TaskChain chain = workloads::two_loop_chain();
    const sim::CalibratedProfile profile = sim::fig1b_profile();
    const sim::SimulatedExecutor executor(profile, sim::NoiseModel{});
    const auto assignments = workloads::enumerate_assignments(chain.size());

    bench::section("Figure 1b: distributions of execution times, N = " +
                   cli.value("n-large"));
    const core::AnalysisConfig big_cfg = bench::analysis_config(
        cli, static_cast<std::size_t>(cli.value_int("n-large")));
    const core::AnalysisResult big =
        core::analyze_chain(executor, chain, assignments, big_cfg);

    std::fputs(core::render_summary_table(big.measurements).c_str(), stdout);
    std::fputs("\n", stdout);
    std::fputs(core::render_distributions(big.measurements, 36, 46).c_str(), stdout);

    bench::section("Performance classes at N = " + cli.value("n-large"));
    std::fputs(core::render_cluster_table(big.clustering, big.measurements).c_str(),
               stdout);
    std::fputs("\n", stdout);
    std::fputs(core::render_final_table(big.clustering, big.measurements).c_str(),
               stdout);

    bench::section("Sec. III example: relative scores at N = " +
                   cli.value("n-small"));
    const core::AnalysisConfig small_cfg = bench::analysis_config(
        cli, static_cast<std::size_t>(cli.value_int("n-small")));
    const core::AnalysisResult small =
        core::analyze_chain(executor, chain, assignments, small_cfg);
    std::fputs(
        core::render_cluster_table(small.clustering, small.measurements).c_str(),
        stdout);
    std::fputs("\n", stdout);
    std::fputs(
        core::render_final_table(small.clustering, small.measurements).c_str(),
        stdout);

    std::printf("\nPaper reference (Sec. III): C1{AD 1.0, AA 0.3} "
                "C2{AA 0.7, DD 0.3, DA 0.3} C3{DD 0.7, DA 0.6} C4{DA 0.1};\n"
                "final clustering C1{AD}, C2{AA}, C3{DD, DA}.\n");

    if (const auto path = cli.value_optional("csv")) {
        core::write_measurements_csv(big.measurements, *path);
        std::printf("\nraw measurements written to %s\n", path->c_str());
    }
    return 0;
}
