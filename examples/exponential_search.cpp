//! Exponential search spaces: the paper's Sec. V scenario as a runnable
//! example. A 12-stage multi-scale simulation chain has 2^12 = 4096
//! mathematically equivalent device splits — far too many to measure. The
//! model-guided search measures a small subset, fits the execution-less
//! predictor, and iteratively refines towards the best split; the measured
//! subset is then clustered with the paper's methodology.
//!
//!   $ ./exponential_search
//!   $ ./exponential_search --stages 10 --budget-rounds 6

#include "core/report.hpp"
#include "search/model_guided_search.hpp"
#include "sim/analytic.hpp"
#include "support/cli.hpp"
#include "support/str.hpp"
#include "workloads/chain.hpp"

#include <cstdio>

using namespace relperf;

int main(int argc, char** argv) {
    support::CliParser cli("exponential_search — 2^k splits, measure only a few");
    cli.add_option("stages", "number of chain stages (k)", "12");
    cli.add_option("budget-rounds", "refinement rounds", "4");
    cli.add_option("seed", "search seed", "21");
    if (!cli.parse(argc, argv)) return 0;

    // A multi-scale chain: stage sizes cycle through a ramp of scales.
    const auto k = static_cast<std::size_t>(cli.value_int("stages"));
    std::vector<std::size_t> sizes;
    const std::size_t ramp[] = {32, 64, 96, 160, 240, 320};
    for (std::size_t i = 0; i < k; ++i) sizes.push_back(ramp[i % 6]);
    const workloads::TaskChain chain =
        workloads::make_rls_chain(sizes, 4, "multiscale-chain");

    const sim::AnalyticCostModel model(sim::paper_cpu_gpu_platform());
    const sim::SimulatedExecutor executor(model, sim::NoiseModel{});

    search::SearchConfig config;
    config.initial_samples = 2 * k;
    config.refinement_rounds =
        static_cast<std::size_t>(cli.value_int("budget-rounds"));
    config.batch_size = k;
    config.measurements_per_alg = 12;
    config.seed = static_cast<std::uint64_t>(cli.value_int("seed"));

    const search::ModelGuidedSearch searcher(executor, chain, config);
    const search::SearchResult result = searcher.run();

    std::printf("space          : 2^%zu = %zu equivalent algorithms\n", k,
                result.space_size);
    std::printf("executed       : %zu (%.1f %% of the space)\n",
                result.measured_count, 100.0 * result.measured_fraction());
    std::printf("best found     : %s, mean %s\n", result.best.alg_name().c_str(),
                str::human_seconds(result.best_measured_mean).c_str());

    // Sanity check against the exhaustive noise-free optimum (cheap for the
    // simulator; impossible on a real testbed — that is the point).
    double exhaustive_best = 1e300;
    std::string exhaustive_name;
    for (const auto& a : workloads::enumerate_assignments(k)) {
        const double t = executor.expected_seconds(chain, a);
        if (t < exhaustive_best) {
            exhaustive_best = t;
            exhaustive_name = a.alg_name();
        }
    }
    std::printf("exhaustive best: %s, expected mean %s\n", exhaustive_name.c_str(),
                str::human_seconds(exhaustive_best).c_str());
    std::printf("regret         : %+.2f %%\n\n",
                100.0 * (result.best_measured_mean / exhaustive_best - 1.0));

    // The measured subset, clustered with the paper methodology (top classes
    // only, to keep the output short).
    std::puts("Top measured performance classes (paper methodology on the subset):");
    const std::string table =
        core::render_final_table(result.clustering, result.measurements);
    // Print only the first ~15 lines (header + best entries).
    std::size_t lines = 0;
    for (const char c : table) {
        std::putchar(c);
        if (c == '\n' && ++lines >= 15) break;
    }
    std::puts("  ...");
    return 0;
}
