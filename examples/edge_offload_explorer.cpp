//! Edge-offload explorer: the paper's full workflow on a user-defined
//! scientific code.
//!
//! Scenario (paper Sec. I, "Digital-Twin applications involving multi-scale
//! modelling"): a chain of simulation stages with growing computational
//! volume runs on an edge board that can offload stages to a LAN server.
//! The explorer enumerates all 2^k device splits, measures each on the
//! simulated platform, clusters them into performance classes and prints a
//! recommendation.
//!
//!   $ ./edge_offload_explorer
//!   $ ./edge_offload_explorer --sizes 32,128,512 --iters 8 --platform phone

#include "core/decision.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "sim/analytic.hpp"
#include "support/cli.hpp"
#include "support/str.hpp"

#include <cstdio>

using namespace relperf;

int main(int argc, char** argv) {
    support::CliParser cli("edge_offload_explorer — split a task chain across devices");
    cli.add_option("sizes", "comma-separated stage sizes", "64,128,384");
    cli.add_option("iters", "loop iterations per stage", "6");
    cli.add_option("n", "measurements per split", "30");
    cli.add_option("platform", "rpi | phone | paper | cpu", "rpi");
    cli.add_option("seed", "measurement seed", "7");
    if (!cli.parse(argc, argv)) return 0;

    // 1. Describe the scientific code (Procedure 5 shape: serial stages).
    const std::vector<std::size_t> sizes =
        str::parse_size_list(cli.value("sizes"), "--sizes");
    const workloads::TaskChain chain = workloads::make_rls_chain(
        sizes, static_cast<std::size_t>(cli.value_int("iters")),
        "digital-twin-chain");

    // 2. Pick the platform.
    const std::string platform_name = cli.value("platform");
    sim::Platform platform = sim::rpi_server_platform();
    if (platform_name == "phone") platform = sim::smartphone_gpu_platform();
    else if (platform_name == "paper") platform = sim::paper_cpu_gpu_platform();
    else if (platform_name == "cpu") platform = sim::cpu_only_platform();

    const sim::AnalyticCostModel model(platform);
    const sim::SimulatedExecutor executor(model, sim::NoiseModel{});

    // 3. Enumerate every split and analyze.
    const auto assignments = workloads::enumerate_assignments(chain.size());
    core::AnalysisConfig config;
    config.measurements_per_alg = static_cast<std::size_t>(cli.value_int("n"));
    config.measurement_seed = static_cast<std::uint64_t>(cli.value_int("seed"));
    const core::AnalysisResult result =
        core::analyze_chain(executor, chain, assignments, config);

    std::printf("platform: %s | chain: %s (%zu stages, 2^%zu = %zu splits)\n",
                platform.name.c_str(), chain.name.c_str(), chain.size(),
                chain.size(), assignments.size());

    std::puts("\nMeasured splits:");
    std::fputs(core::render_summary_table(result.measurements).c_str(), stdout);
    std::puts("\nPerformance classes:");
    std::fputs(core::render_cluster_table(result.clustering, result.measurements)
                   .c_str(),
               stdout);

    // 4. Recommend: fastest class, then fewest device FLOPs within it.
    const auto candidates = core::build_candidate_profiles(
        result.measurements, result.clustering, executor, chain, assignments);
    const core::CandidateProfile fastest =
        core::select_cost_aware(candidates, core::CostAwareConfig{0.0, 1});
    const core::CandidateProfile greenest = core::select_min_device_flops(
        candidates, /*rank_tolerance=*/2);

    std::printf("\nrecommendation (latency)      : %s — mean %s, class C%d\n",
                fastest.name.c_str(),
                str::human_seconds(fastest.mean_seconds).c_str(),
                fastest.final_rank);
    std::printf("recommendation (device energy): %s — %.2g device FLOPs vs "
                "%.2g for %s\n",
                greenest.name.c_str(), greenest.device_flops,
                fastest.device_flops, fastest.name.c_str());
    return 0;
}
