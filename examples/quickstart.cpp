//! Quickstart: cluster three algorithms from raw measurement samples.
//!
//! This is the smallest useful relperf program: you bring distributions of
//! execution times (from any source — here: synthetic), the library gives
//! you performance classes with relative scores.
//!
//!   $ ./quickstart

#include "core/pipeline.hpp"
#include "core/report.hpp"

#include <cstdio>

int main() {
    using namespace relperf;

    // 1. Collect measurements. "blocked" and "tiled" are two implementations
    //    with statistically indistinguishable times; "naive" is ~40% slower.
    stats::Rng rng(7);
    core::MeasurementSet measurements;
    const auto sample = [&rng](double median_ms, int n) {
        std::vector<double> out;
        for (int i = 0; i < n; ++i) {
            out.push_back(median_ms * 1e-3 * rng.lognormal(0.0, 0.06));
        }
        return out;
    };
    measurements.add("blocked", sample(10.0, 30));
    measurements.add("tiled", sample(10.2, 30));
    measurements.add("naive", sample(14.0, 30));

    // 2. Analyze: bootstrap three-way comparisons + rank-merging bubble sort,
    //    repeated with shuffles to get relative scores.
    core::AnalysisConfig config;          // paper defaults: Rep = 100, R = 100
    config.clustering.repetitions = 100;
    const core::AnalysisResult result =
        core::analyze_measurements(std::move(measurements), config);

    // 3. Report.
    std::puts("Measurement summaries:");
    std::fputs(core::render_summary_table(result.measurements).c_str(), stdout);
    std::puts("\nPerformance classes with relative scores:");
    std::fputs(core::render_cluster_table(result.clustering, result.measurements)
                   .c_str(),
               stdout);
    std::puts("\nFinal assignment:");
    std::fputs(core::render_final_table(result.clustering, result.measurements)
                   .c_str(),
               stdout);

    // 4. Use the classes: pick any algorithm from the best class by a
    //    secondary criterion (here: alphabetical stands in for e.g. energy).
    for (const auto& fin : result.clustering.final_assignment) {
        if (fin.rank == 1) {
            std::printf("\nclass-1 candidate: %s (confidence %.2f)\n",
                        result.measurements.name(fin.alg).c_str(), fin.score);
        }
    }
    return 0;
}
