//! Measured (not simulated) relative-performance analysis on *this* machine,
//! following the paper's footnote 2: the edge device is emulated with one
//! OpenMP thread, the accelerator with the full machine plus an artificial
//! per-launch dispatch delay. Every measurement below is a real wall-clock
//! execution of the dense-linear-algebra chain.
//!
//!   $ ./measured_on_this_machine
//!   $ ./measured_on_this_machine --sizes 64,160 --iters 2 --n 15

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "sim/real_executor.hpp"
#include "support/cli.hpp"
#include "support/str.hpp"

#include <cstdio>

using namespace relperf;

int main(int argc, char** argv) {
    support::CliParser cli(
        "measured_on_this_machine — wall-clock relative performance");
    cli.add_option("sizes", "comma-separated task sizes", "48,160");
    cli.add_option("iters", "loop iterations per task", "2");
    cli.add_option("n", "measurements per split", "10");
    cli.add_option("dispatch-us", "artificial accelerator dispatch delay (us)",
                   "200");
    cli.add_option("seed", "workload seed", "3");
    if (!cli.parse(argc, argv)) return 0;

    const std::vector<std::size_t> sizes =
        str::parse_size_list(cli.value("sizes"), "--sizes");
    const workloads::TaskChain chain = workloads::make_rls_chain(
        sizes, static_cast<std::size_t>(cli.value_int("iters")), "measured-chain");

    // Device = 1 thread. Accelerator = all threads, but each kernel launch
    // pays an artificial dispatch delay (emulating framework/offload
    // overheads, paper footnote 2).
    const sim::EmulatedDevice device{1, 0.0, 0.0};
    const sim::EmulatedDevice accelerator{
        0, cli.value_double("dispatch-us") * 1e-6, 1e-4};
    const sim::RealExecutor executor(device, accelerator);

    std::printf("measuring %zu splits of '%s' x %d runs each (real wall clock)"
                "...\n\n",
                (std::size_t{1} << chain.size()), chain.name.c_str(),
                cli.value_int("n"));

    stats::Rng rng(static_cast<std::uint64_t>(cli.value_int("seed")));
    core::MeasurementSet measurements = core::measure_assignments_real(
        executor, chain, workloads::enumerate_assignments(chain.size()),
        static_cast<std::size_t>(cli.value_int("n")), rng, /*warmup=*/2);

    std::fputs(core::render_summary_table(measurements).c_str(), stdout);
    std::puts("\nDistributions (shared axis):");
    std::fputs(core::render_distributions(measurements, 24, 40).c_str(), stdout);

    core::AnalysisConfig config;
    config.clustering.repetitions = 100;
    const core::AnalysisResult result =
        core::analyze_measurements(std::move(measurements), config);

    std::puts("Performance classes on this machine:");
    std::fputs(core::render_cluster_table(result.clustering, result.measurements)
                   .c_str(),
               stdout);
    std::puts("\nFinal assignment:");
    std::fputs(core::render_final_table(result.clustering, result.measurements)
                   .c_str(),
               stdout);
    std::puts("\nNote: the classes depend on this machine's core count, load\n"
              "and the dispatch delay — rerun with other --dispatch-us values\n"
              "to watch splits migrate between classes (paper Sec. I).");
    return 0;
}
