//! Energy-aware scheduler: the paper's second Section IV application as a
//! runnable scenario.
//!
//! Scenario (paper Sec. I, "Hierarchical object-detection"): an autonomous
//! drone runs its detection pipeline locally (algDDD) for minimum latency,
//! but the board overheats; whenever the device energy spent in a window
//! exceeds the budget, the scheduler switches to the clustering's
//! least-device-FLOPs algorithm from the top classes (algDAA) and switches
//! back after a cool-down.
//!
//!   $ ./energy_aware_scheduler
//!   $ ./energy_aware_scheduler --budget-j 10 --runs 600

#include "core/decision.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "sim/profile.hpp"
#include "support/cli.hpp"
#include "support/str.hpp"

#include <cstdio>

using namespace relperf;

int main(int argc, char** argv) {
    support::CliParser cli("energy_aware_scheduler — duty-cycle switching demo");
    cli.add_option("runs", "chain executions to simulate", "300");
    cli.add_option("budget-j", "device energy budget per window (J)", "14");
    cli.add_option("window", "runs per monitoring window", "30");
    cli.add_option("cooldown", "cool-down runs on the offloader", "12");
    cli.add_option("seed", "simulation seed", "11");
    if (!cli.parse(argc, argv)) return 0;

    const workloads::TaskChain chain = workloads::paper_rls_chain(10);
    const sim::CalibratedProfile profile = sim::paper_rls_profile();
    const sim::SimulatedExecutor executor(profile, sim::NoiseModel{});
    const sim::EnergyModel energy(sim::paper_cpu_gpu_platform());
    const auto assignments = workloads::enumerate_assignments(chain.size());

    // Cluster once; derive the switching pair from the classes.
    core::AnalysisConfig config;
    config.measurements_per_alg = 30;
    config.measurement_seed = static_cast<std::uint64_t>(cli.value_int("seed"));
    const core::AnalysisResult analysis =
        core::analyze_chain(executor, chain, assignments, config);
    const auto candidates = core::build_candidate_profiles(
        analysis.measurements, analysis.clustering, executor, chain, assignments);

    // Primary: the pure-edge algorithm (no accelerator dependency).
    const core::CandidateProfile primary =
        core::select_cost_aware(candidates, core::CostAwareConfig{1e9, 2});
    // Alternate: fewest device FLOPs within the top two classes (paper: DAA).
    const core::CandidateProfile alternate =
        core::select_min_device_flops(candidates, 2);

    std::puts("Clustering that drives the policy:");
    std::fputs(core::render_final_table(analysis.clustering, analysis.measurements)
                   .c_str(),
               stdout);
    std::printf("\nprimary = %s (C%d), alternate = %s (C%d)\n",
                primary.name.c_str(), primary.final_rank, alternate.name.c_str(),
                alternate.final_rank);

    const core::EnergyBudgetSwitcher switcher(executor, energy, chain);
    core::SwitchPolicyConfig policy;
    policy.device_energy_budget_j = cli.value_double("budget-j");
    policy.window_runs = static_cast<std::size_t>(cli.value_int("window"));
    policy.cooldown_runs = static_cast<std::size_t>(cli.value_int("cooldown"));

    stats::Rng rng(static_cast<std::uint64_t>(cli.value_int("seed")) + 1);
    const core::SwitchTrace trace = switcher.simulate(
        workloads::DeviceAssignment(primary.name.substr(3)),
        workloads::DeviceAssignment(alternate.name.substr(3)),
        static_cast<std::size_t>(cli.value_int("runs")), policy, rng);

    std::printf("\nduty cycle: %zu runs, %zu switch(es)\n",
                static_cast<std::size_t>(cli.value_int("runs")), trace.switches);
    for (const auto& seg : trace.segments) {
        std::printf("  %-8s %4zu runs  %8s  %7.3f J on device\n",
                    seg.alg_name.c_str(), seg.runs,
                    str::human_seconds(seg.seconds).c_str(),
                    seg.device_energy_j);
    }
    std::printf("\nvs always-%s baseline: time %+.2f %%, device energy %+.2f %%\n",
                primary.name.c_str(),
                100.0 * (trace.total_seconds / trace.baseline_seconds - 1.0),
                100.0 * (trace.total_device_energy_j /
                             trace.baseline_device_energy_j -
                         1.0));
    return 0;
}
