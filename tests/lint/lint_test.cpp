// Tests for relperf_lint: every rule demonstrated by a violating fixture
// (exact rule id + line asserted), clean counterparts, allowlist semantics
// (suppression, mandatory justification, stale-entry reporting), and the
// self-check that the real tree lints clean under ci/lint_allow.txt.
#include "lint.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace lint = relperf::lint;

namespace {

std::string fixture_dir() { return RELPERF_LINT_FIXTURES; }
std::string source_root() { return RELPERF_SOURCE_ROOT; }

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in) << "cannot open fixture " << path;
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
}

std::vector<lint::Diagnostic> lint_fixture(const std::string& name) {
    const std::string path = fixture_dir() + "/" + name;
    return lint::lint_source(name, read_file(path));
}

struct Expected {
    std::size_t line;
    const char* rule;
    const char* subject;
};

void expect_exact(const std::vector<lint::Diagnostic>& diags,
                  const std::vector<Expected>& expected) {
    ASSERT_EQ(diags.size(), expected.size()) << [&] {
        std::ostringstream out;
        for (const lint::Diagnostic& d : diags) out << d.str() << '\n';
        return out.str();
    }();
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(diags[i].line, expected[i].line) << diags[i].str();
        EXPECT_EQ(diags[i].rule, expected[i].rule) << diags[i].str();
        EXPECT_EQ(diags[i].subject, expected[i].subject) << diags[i].str();
    }
}

} // namespace

TEST(LintRules, TableHasUniqueIdsAndDocumentedSeverities) {
    std::set<std::string> ids;
    for (const lint::RuleInfo& rule : lint::rules()) {
        EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate id " << rule.id;
    }
    EXPECT_EQ(ids.count("banned-random"), 1u);
    EXPECT_EQ(ids.count("banned-clock"), 1u);
    EXPECT_EQ(ids.count("unordered-output"), 1u);
    EXPECT_EQ(ids.count("unsorted-dir-iteration"), 1u);
    EXPECT_EQ(ids.count("float-precision"), 1u);
    EXPECT_EQ(ids.count("omp-guard"), 1u);
    EXPECT_EQ(ids.count("spec-hash-field"), 1u);
    EXPECT_EQ(ids.count("allowlist-unused"), 1u);
}

TEST(BannedRandom, FixtureViolationsExactLines) {
    expect_exact(lint_fixture("banned_random_bad.cpp"),
                 {{7, "banned-random", "random_device"},
                  {8, "banned-random", "srand"},
                  {9, "banned-random", "rand"},
                  {10, "banned-random", "drand48"}});
}

TEST(BannedRandom, CleanFixtureIsQuiet) {
    EXPECT_TRUE(lint_fixture("banned_random_clean.cpp").empty());
}

TEST(BannedClock, FixtureViolationsExactLines) {
    expect_exact(lint_fixture("banned_clock_bad.cpp"),
                 {{9, "banned-clock", "steady_clock::now"},
                  {10, "banned-clock", "system_clock::now"},
                  {11, "banned-clock", "high_resolution_clock::now"},
                  {12, "banned-clock", "time"},
                  {13, "banned-clock", "clock"},
                  {15, "banned-clock", "timespec_get"}});
}

TEST(BannedClock, CleanFixtureIsQuiet) {
    EXPECT_TRUE(lint_fixture("banned_clock_clean.cpp").empty());
}

TEST(BannedClock, ObsClockFixtureFiresOnItsSingleReadSite) {
    expect_exact(lint_fixture("banned_clock_obs.cpp"),
                 {{11, "banned-clock", "steady_clock::now"}});
}

TEST(UnorderedOutput, FixtureViolationsExactLines) {
    const std::vector<lint::Diagnostic> diags =
        lint_fixture("unordered_output_bad.cpp");
    expect_exact(diags, {{10, "unordered-output", "scores"},
                         {17, "unordered-output", "hosts"}});
    for (const lint::Diagnostic& d : diags) {
        EXPECT_EQ(d.severity, lint::Severity::Warning) << d.str();
    }
}

TEST(UnorderedOutput, CleanFixtureIsQuiet) {
    EXPECT_TRUE(lint_fixture("unordered_output_clean.cpp").empty());
}

TEST(DirIteration, FixtureViolationsExactLines) {
    const std::vector<lint::Diagnostic> diags =
        lint_fixture("dir_iteration_bad.cpp");
    expect_exact(diags,
                 {{11, "unsorted-dir-iteration", "directory_iterator"},
                  {18, "unsorted-dir-iteration", "paths"}});
    for (const lint::Diagnostic& d : diags) {
        EXPECT_EQ(d.severity, lint::Severity::Warning) << d.str();
    }
}

TEST(DirIteration, CollectThenSortIdiomIsQuiet) {
    EXPECT_TRUE(lint_fixture("dir_iteration_clean.cpp").empty());
}

TEST(FloatPrecision, FixtureViolationsExactLines) {
    expect_exact(lint_fixture("float_precision_bad.cpp"),
                 {{11, "float-precision", "%g"},
                  {12, "float-precision", "%12f"},
                  {13, "float-precision", "%e"},
                  {14, "float-precision", "%G"}});
}

TEST(FloatPrecision, CleanFixtureIsQuiet) {
    EXPECT_TRUE(lint_fixture("float_precision_clean.cpp").empty());
}

TEST(OmpGuard, FixtureViolationsExactLines) {
    expect_exact(lint_fixture("omp_guard_bad.cpp"),
                 {{3, "omp-guard", "omp.h"},
                  {6, "omp-guard", "omp_get_max_threads"},
                  {13, "omp-guard", "omp_get_thread_num"}});
}

TEST(OmpGuard, CleanFixtureIsQuiet) {
    EXPECT_TRUE(lint_fixture("omp_guard_clean.cpp").empty());
}

TEST(SpecHashField, ParsedButUnhashedKeysAreFlagged) {
    expect_exact(lint_fixture("spec_hash_bad.cpp"),
                 {{20, "spec-hash-field", "campaign"},
                  {24, "spec-hash-field", "warmup"}});
}

TEST(SpecHashField, AbbreviatedHashLiteralCoversLongKey) {
    // Only the (allowlistable) label field fires; measurements and the
    // abbreviated-literal adaptive key are covered.
    expect_exact(lint_fixture("spec_hash_clean.cpp"),
                 {{21, "spec-hash-field", "campaign"}});
}

TEST(Allowlist, SuppressesByFileSuffixAndSubjectWithoutStaleEntries) {
    const lint::Allowlist allow =
        lint::Allowlist::load(fixture_dir() + "/fixture_allow.txt");
    const lint::LintResult result =
        lint::lint_paths(fixture_dir(), {"."}, allow);

    // All banned_clock_bad.cpp and banned_clock_obs.cpp diagnostics
    // suppressed by their file entries; both fixture specs' 'campaign'
    // fields suppressed by the subject entry.
    EXPECT_EQ(result.allowed.size(), 9u);
    for (const lint::Diagnostic& d : result.allowed) {
        EXPECT_TRUE(d.file == "banned_clock_bad.cpp" ||
                    d.file == "banned_clock_obs.cpp" ||
                    d.subject == "campaign")
            << d.str();
    }
    // Everything else still fires, and no entry is stale.
    EXPECT_EQ(result.diagnostics.size(), 16u) << [&] {
        std::ostringstream out;
        for (const lint::Diagnostic& d : result.diagnostics)
            out << d.str() << '\n';
        return out.str();
    }();
    for (const lint::Diagnostic& d : result.diagnostics) {
        EXPECT_NE(d.rule, "allowlist-unused") << d.str();
        EXPECT_NE(d.file, "banned_clock_bad.cpp") << d.str();
    }
}

TEST(Allowlist, EntryWithoutJustificationIsRejected) {
    EXPECT_THROW(
        (void)lint::Allowlist::load(fixture_dir() +
                                    "/allow_missing_justification.txt"),
        std::runtime_error);
}

TEST(Allowlist, UnknownRuleIdIsRejected) {
    EXPECT_THROW((void)lint::Allowlist::parse(
                     "not-a-rule some_file.cpp # justified\n", "inline"),
                 std::runtime_error);
}

TEST(Allowlist, StaleEntryIsReportedWithItsLine) {
    const lint::Allowlist allow = lint::Allowlist::parse(
        "banned-random never_matches.cpp # stale on purpose\n", "inline");
    const lint::LintResult result = lint::lint_paths(
        fixture_dir(), {"banned_clock_clean.cpp"}, allow);
    ASSERT_EQ(result.diagnostics.size(), 1u);
    EXPECT_EQ(result.diagnostics[0].rule, "allowlist-unused");
    EXPECT_EQ(result.diagnostics[0].file, "inline");
    EXPECT_EQ(result.diagnostics[0].line, 1u);
    EXPECT_EQ(result.diagnostics[0].subject, "never_matches.cpp");
}

// Grammar check of the committed allowlist itself: every entry must parse
// (known rule id, exactly one pattern) and carry its justification — a
// malformed line throws here rather than silently suppressing nothing.
TEST(Allowlist, CommittedAllowlistObeysTheGrammar) {
    const lint::Allowlist allow =
        lint::Allowlist::load(source_root() + "/ci/lint_allow.txt");
    EXPECT_GT(allow.size(), 0u);
    for (const lint::AllowEntry& entry : allow.unused()) {
        EXPECT_FALSE(entry.justification.empty())
            << entry.rule << " " << entry.pattern;
    }
}

TEST(Allowlist, MissingLintPathFailsLoudly) {
    EXPECT_THROW((void)lint::lint_paths(fixture_dir(), {"no_such_dir"},
                                        lint::Allowlist{}),
                 std::runtime_error);
}

// The self-check the tentpole exists for: the shipped measurement code
// (src/, tools/, bench/) holds every determinism invariant, modulo the
// justified entries in ci/lint_allow.txt — and every one of those entries
// is still live (allowlist-unused would fire otherwise).
TEST(RealTree, LintsCleanUnderTheCommittedAllowlist) {
    const lint::Allowlist allow =
        lint::Allowlist::load(source_root() + "/ci/lint_allow.txt");
    const lint::LintResult result = lint::lint_paths(
        source_root(), {"src", "tools", "bench"}, allow);
    EXPECT_GT(result.files_scanned, 100u);
    EXPECT_TRUE(result.diagnostics.empty()) << [&] {
        std::ostringstream out;
        for (const lint::Diagnostic& d : result.diagnostics)
            out << d.str() << '\n';
        return out.str();
    }();
    // The sanctioned timing sites really are being suppressed (not silently
    // absent): RealExecutor's and the obs clock's reads must show up as
    // allowlisted.
    bool real_executor_suppressed = false;
    bool obs_clock_suppressed = false;
    for (const lint::Diagnostic& d : result.allowed) {
        if (d.file == "src/sim/real_executor.cpp" &&
            d.rule == "banned-clock") {
            real_executor_suppressed = true;
        }
        if (d.file == "src/obs/clock.cpp" && d.rule == "banned-clock") {
            obs_clock_suppressed = true;
        }
    }
    EXPECT_TRUE(real_executor_suppressed);
    EXPECT_TRUE(obs_clock_suppressed);
}
