// Fixture: the PR-5 bug class — a measurement-determining spec key that
// parse() accepts but hash() never covers, so two different plans share a
// plan hash (never compiled — lint input only). Lines asserted in
// lint_test.cpp.
#include <cstdint>
#include <string>

struct CampaignSpec {
    std::string name;
    std::size_t measurements = 30;
    std::size_t warmup = 1; // parsed below, missing from hash(): the bug
    static CampaignSpec parse(const std::string& text);
    std::uint64_t hash() const;
};

CampaignSpec CampaignSpec::parse(const std::string& text) {
    CampaignSpec spec;
    const std::string key = text;
    const std::string value = text;
    if (key == "campaign") {                   // line 20: allowlisted field
        spec.name = value;
    } else if (key == "measurements") {        // line 22: hashed, fine
        spec.measurements = value.size();
    } else if (key == "warmup") {              // line 24: NOT hashed -> bug
        spec.warmup = value.size();
    }
    return spec;
}

std::uint64_t CampaignSpec::hash() const {
    std::string plan = "measurements=" + std::to_string(measurements);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : plan) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}
