// Fixture: every parsed key is covered by hash(), including one via the
// abbreviated-literal form the real spec.cpp uses ("adaptive_min" covering
// "adaptive_min_measurements"). Must produce no spec-hash-field diagnostic
// when checked with an allowlist covering 'campaign'; lint_test.cpp also
// checks the uncovered-'campaign' diagnostic without the allowlist.
#include <cstdint>
#include <string>

struct CampaignSpec {
    std::string name;
    std::size_t measurements = 30;
    std::size_t adaptive_min_measurements = 0;
    static CampaignSpec parse(const std::string& text);
    std::uint64_t hash() const;
};

CampaignSpec CampaignSpec::parse(const std::string& text) {
    CampaignSpec spec;
    const std::string key = text;
    const std::string value = text;
    if (key == "campaign") { // label only; allowlisted in fixture_allow.txt
        spec.name = value;
    } else if (key == "measurements") {
        spec.measurements = value.size();
    } else if (key == "adaptive_min_measurements") {
        spec.adaptive_min_measurements = value.size();
    }
    return spec;
}

std::uint64_t CampaignSpec::hash() const {
    std::string plan = "measurements=" + std::to_string(measurements);
    if (adaptive_min_measurements != 0) {
        plan += ";adaptive_min=" + std::to_string(adaptive_min_measurements);
    }
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : plan) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}
