// Clean: directory-iteration results are collected and explicitly sorted
// before anything consumes them, or never leave the loop at all.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

namespace fs = std::filesystem;

std::vector<std::string> sorted_entries(const std::string& dir) {
    std::vector<std::string> paths;
    for (const auto& entry : fs::directory_iterator(dir)) {
        paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string& p : paths) {
        std::printf("%s\n", p.c_str());
    }
    return paths;
}

std::size_t count_entries(const std::string& dir) {
    std::size_t n = 0;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        (void)entry;
        ++n;
    }
    return n;
}
