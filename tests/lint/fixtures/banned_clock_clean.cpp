// Fixture: deterministic code that must NOT trip banned-clock — member
// functions named time()/now() on our own types, fields named clock, and
// chrono durations used as plain value types (no clock reads).
#include <chrono>
#include <cstddef>

struct Sample {
    double seconds;
    double time() const { return seconds; } // member .time(): not the libc call
};

struct Schedule {
    std::size_t clock; // a field named clock, never called
    std::chrono::duration<double> budget{1.0};
};

double clean_timing(const Sample& sample, const Schedule& schedule) {
    // Durations are deterministic values; only ::now() reads a clock.
    const std::chrono::duration<double> twice = schedule.budget * 2.0;
    return sample.time() + twice.count() +
           static_cast<double>(schedule.clock);
}
