// Fixture: correctly guarded OpenMP usage — the gemm.cpp idiom. Includes,
// calls in #ifdef and #if defined regions, and unguarded `#pragma omp`
// lines (pragmas are ignored by serial builds, so they need no guard).
#ifdef _OPENMP
#include <omp.h>
#endif

int clean_threads() {
#ifdef _OPENMP
    const int threads = omp_get_max_threads();
#else
    const int threads = 1;
#endif
    return threads;
}

double clean_sum(const double* data, int n) {
    double total = 0.0;
#pragma omp parallel for reduction(+ : total)
    for (int i = 0; i < n; ++i) {
        total += data[i];
    }
#if defined(_OPENMP)
    total += omp_get_wtick(); // inside #if defined(_OPENMP): fine
#endif
    return total;
}
