// Fixture: unordered-container iteration feeding output sinks (never
// compiled — lint input only). Line numbers asserted in lint_test.cpp.
#include <iostream>
#include <string>
#include <unordered_map>
#include <unordered_set>

void bad_csv(const std::unordered_map<std::string, double>& scores,
             std::ostream& out) {
    for (const auto& entry : scores) {                    // line 10: << sink
        out << entry.first << ',' << entry.second << '\n';
    }
}

void bad_manifest(std::ostream& out) {
    std::unordered_set<std::string> hosts = {"a", "b"};
    for (const std::string& host : hosts) {               // line 17: write sink
        write(out, host);
    }
}
