// Fixture: explicit-precision float output plus the look-alikes that must
// not fire — %% escapes, integer conversions, '%' in plain strings outside
// format calls, and bare-% text like "50% g-force" (no format context).
#include <cstdio>
#include <string>

namespace str {
std::string format(const char* fmt, ...);
}

void clean_writers(double value, int count) {
    std::printf("%.17g\n", value);            // round-trip precision
    std::printf("%12.6g | %.3e\n", value, value);
    std::printf("%d rows, 100%% done\n", count);
    const std::string row = str::format("%s,%.17g", "alg", value);
    const char* label = "accelerates at 5% g-force"; // not a format call
    std::puts(label);
}
