// Fixture: every banned wall-clock read (never compiled — lint input only).
// Line numbers are asserted exactly in lint_test.cpp. This file doubles as
// the allowlist-suppression case: fixture_allow.txt allowlists it wholesale
// the way src/sim/real_executor.cpp is in the real tree.
#include <chrono>
#include <ctime>

double bad_timing() {
    const auto t0 = std::chrono::steady_clock::now();      // line 9
    const auto t1 = std::chrono::system_clock::now();      // line 10
    const auto t2 = std::chrono::high_resolution_clock::now(); // line 11
    std::time_t wall = std::time(nullptr);                 // line 12
    std::clock_t cpu = std::clock();                       // line 13
    struct timespec ts;
    timespec_get(&ts, 1);                                  // line 15
    return static_cast<double>(wall) + static_cast<double>(cpu) +
           std::chrono::duration<double>(t1 - t0).count() +
           std::chrono::duration<double>(t2 - t0).count() +
           static_cast<double>(ts.tv_sec);
}
