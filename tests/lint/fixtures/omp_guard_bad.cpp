// Fixture: raw OpenMP usage without _OPENMP guards (never compiled — lint
// input only). Lines asserted in lint_test.cpp.
#include <omp.h> // line 3: unguarded include

int bad_threads() {
    return omp_get_max_threads(); // line 6: unguarded call
}

int bad_else_branch() {
#ifdef _OPENMP
    return omp_get_num_threads(); // guarded: fine
#else
    return omp_get_thread_num(); // line 13: the #else of _OPENMP is serial
#endif
}
