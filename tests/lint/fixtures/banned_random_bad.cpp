// Fixture: every banned randomness source, one per line (never compiled —
// lint input only). Line numbers are asserted exactly in lint_test.cpp.
#include <cstdlib>
#include <random>

int bad_seed() {
    std::random_device entropy;                  // line 7: random_device
    std::srand(42);                              // line 8: srand
    int noise = std::rand();                     // line 9: rand
    noise += static_cast<int>(drand48() * 10.0); // line 10: drand48
    return noise + static_cast<int>(entropy());
}
