// Fixture: float conversions without explicit precision in format-family
// calls (never compiled — lint input only). Lines asserted in lint_test.cpp.
#include <cstdio>
#include <string>

namespace str {
std::string format(const char* fmt, ...);
}

void bad_writers(double value) {
    std::printf("%g\n", value);                    // line 11: bare %g
    std::printf("width only: %12f\n", value);      // line 12: width, no prec.
    const std::string row = str::format("%s,%e", "alg", value); // line 13
    std::fprintf(stderr, "%-8.3f ok but %G bad\n", value, value); // line 14
}
