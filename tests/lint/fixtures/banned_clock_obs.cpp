// Fixture: the obs-clock idiom — one steady_clock read behind a single
// function, the way src/obs/clock.cpp wraps the trace timestamp source
// (never compiled — lint input only). fixture_allow.txt allowlists it the
// way the real obs clock is allowlisted in ci/lint_allow.txt.
#include <chrono>
#include <cstdint>

std::uint64_t obs_now_micros() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch()) // line 11
            .count());
}
