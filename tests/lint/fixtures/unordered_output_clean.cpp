// Fixture: the two acceptable shapes — iterate unordered containers for
// pure computation (no output sink), or sort into an ordered container
// before writing. Neither may trip unordered-output.
#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

double clean_total(const std::unordered_map<std::string, double>& scores) {
    double total = 0.0;
    for (const auto& entry : scores) { // no sink in the body: fine
        total += entry.second;
    }
    return total;
}

void clean_csv(const std::unordered_map<std::string, double>& scores,
               std::ostream& out) {
    // Deterministic writer: materialize and sort, then emit.
    std::vector<std::pair<std::string, double>> rows(scores.begin(),
                                                     scores.end());
    std::sort(rows.begin(), rows.end());
    for (const auto& row : rows) {
        out << row.first << ',' << row.second << '\n';
    }
}

void clean_map_csv(const std::map<std::string, double>& ordered,
                   std::ostream& out) {
    for (const auto& entry : ordered) { // std::map iterates sorted: fine
        out << entry.first << ',' << entry.second << '\n';
    }
}
