// Fixture: the sanctioned way to draw randomness — a seeded stream. Also
// proves the scanner is token-exact: identifiers that merely *contain*
// banned names (operand, grandparent) and banned names inside strings or
// comments must not fire.
#include <cstdint>

struct Rng {
    std::uint64_t state;
    std::uint64_t next() { return state = state * 6364136223846793005ULL + 1; }
};

int operand(int grandparent) {
    Rng rng{12345};
    const char* label = "rand() and srand() are banned"; // string, not a call
    // rand() in a comment is fine too.
    return grandparent + static_cast<int>(rng.next() % 100) +
           static_cast<int>(label[0]);
}
