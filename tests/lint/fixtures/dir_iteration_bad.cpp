// Violations: a directory iteration feeding an output sink directly, and a
// directory collection that is never explicitly sorted.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

namespace fs = std::filesystem;

void list_entries(const std::string& dir) {
    for (const auto& entry : fs::directory_iterator(dir)) {
        std::printf("%s\n", entry.path().c_str());
    }
}

std::vector<std::string> collect_entries(const std::string& dir) {
    std::vector<std::string> paths;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        paths.push_back(entry.path().string());
    }
    return paths;
}
