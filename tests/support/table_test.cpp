#include "support/table.hpp"

#include "support/error.hpp"

#include <gtest/gtest.h>

using relperf::support::Align;
using relperf::support::AsciiTable;

TEST(AsciiTable, RendersHeaderAndRows) {
    AsciiTable t({"Cluster", "Score"});
    t.add_row({"C1", "1.00"});
    t.add_row({"C2", "0.60"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| Cluster | Score |"), std::string::npos);
    EXPECT_NE(out.find("| C1      | 1.00  |"), std::string::npos);
    EXPECT_NE(out.find("| C2      | 0.60  |"), std::string::npos);
    EXPECT_NE(out.find("+---------+-------+"), std::string::npos);
}

TEST(AsciiTable, RightAlignmentPadsLeft) {
    AsciiTable t({"Name", "Value"}, {Align::Left, Align::Right});
    t.add_row({"x", "7"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| x    |     7 |"), std::string::npos);
}

TEST(AsciiTable, ColumnWidthsAdaptToLongestCell) {
    AsciiTable t({"A"});
    t.add_row({"very-long-cell"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| very-long-cell |"), std::string::npos);
}

TEST(AsciiTable, SeparatorsSplitBody) {
    AsciiTable t({"A"});
    t.add_row({"1"});
    t.add_separator();
    t.add_row({"2"});
    const std::string out = t.render();
    // rule appears: top, under-header, separator, bottom = 4 times
    std::size_t rules = 0;
    std::size_t pos = 0;
    while ((pos = out.find("+---", pos)) != std::string::npos) {
        ++rules;
        pos += 4;
    }
    EXPECT_EQ(rules, 4u);
}

TEST(AsciiTable, RowWidthMismatchThrows) {
    AsciiTable t({"A", "B"});
    EXPECT_THROW(t.add_row({"only-one"}), relperf::InvalidArgument);
}

TEST(AsciiTable, EmptyHeaderThrows) {
    EXPECT_THROW(AsciiTable({}), relperf::InvalidArgument);
}

TEST(AsciiTable, AlignsSizeMismatchThrows) {
    EXPECT_THROW(AsciiTable({"A", "B"}, {Align::Left}), relperf::InvalidArgument);
}

TEST(AsciiTable, RowCountTracksRows) {
    AsciiTable t({"A"});
    EXPECT_EQ(t.row_count(), 0u);
    t.add_row({"1"});
    t.add_row({"2"});
    EXPECT_EQ(t.row_count(), 2u);
}
