#include "support/csv.hpp"

#include "support/error.hpp"
#include "support/str.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using relperf::support::csv_escape;
using relperf::support::CsvWriter;

namespace {

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

class TempFile {
public:
    TempFile() : path_(testing::TempDir() + "relperf_csv_test.csv") {}
    ~TempFile() { std::remove(path_.c_str()); }
    [[nodiscard]] const std::string& path() const { return path_; }

private:
    std::string path_;
};

} // namespace

TEST(CsvEscape, PlainFieldsAreUntouched) {
    EXPECT_EQ(csv_escape("hello"), "hello");
    EXPECT_EQ(csv_escape("1.5"), "1.5");
}

TEST(CsvEscape, SeparatorsAndQuotesAreQuoted) {
    EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
    EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesHeaderAndRows) {
    TempFile tmp;
    {
        CsvWriter csv(tmp.path(), {"name", "value"});
        csv.add_row({"alpha", "1"});
        csv.add_row({"beta", "2"});
    }
    EXPECT_EQ(slurp(tmp.path()), "name,value\nalpha,1\nbeta,2\n");
}

TEST(CsvWriter, NumericRowFormatsRoundTrip) {
    TempFile tmp;
    {
        CsvWriter csv(tmp.path(), {"key", "a", "b"});
        csv.add_row_numeric("x", {0.1, 2.5e-7});
    }
    const std::string content = slurp(tmp.path());
    EXPECT_NE(content.find("x,0.1"), std::string::npos);
    EXPECT_NE(content.find("e-07"), std::string::npos);
}

TEST(CsvWriter, WidthMismatchThrows) {
    TempFile tmp;
    CsvWriter csv(tmp.path(), {"a", "b"});
    EXPECT_THROW(csv.add_row({"only"}), relperf::InvalidArgument);
}

TEST(CsvWriter, EmptyHeaderThrows) {
    TempFile tmp;
    EXPECT_THROW(CsvWriter(tmp.path(), {}), relperf::InvalidArgument);
}

TEST(CsvWriter, UnwritablePathThrows) {
    EXPECT_THROW(CsvWriter("/nonexistent-dir/file.csv", {"a"}), relperf::Error);
}
