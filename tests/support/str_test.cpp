#include "support/str.hpp"

#include "support/error.hpp"

#include <gtest/gtest.h>

namespace str = relperf::str;

TEST(StrFormat, BasicSubstitution) {
    EXPECT_EQ(str::format("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(str::format("%s", "hello"), "hello");
    EXPECT_EQ(str::format("%.2f", 3.14159), "3.14");
}

TEST(StrFormat, LongOutputIsNotTruncated) {
    const std::string big(500, 'x');
    EXPECT_EQ(str::format("%s", big.c_str()).size(), 500u);
}

TEST(StrFixed, RoundsToRequestedDigits) {
    EXPECT_EQ(str::fixed(1.0 / 3.0, 3), "0.333");
    EXPECT_EQ(str::fixed(2.5, 0), "2");
    EXPECT_EQ(str::fixed(-1.05, 1), "-1.1");
}

TEST(StrHumanSeconds, PicksSensibleUnit) {
    EXPECT_EQ(str::human_seconds(2.5), "2.500 s");
    EXPECT_EQ(str::human_seconds(0.0425), "42.500 ms");
    EXPECT_EQ(str::human_seconds(3.2e-5), "32.000 us");
    EXPECT_EQ(str::human_seconds(4e-8), "40.0 ns");
}

TEST(StrHumanBytes, PicksSensibleUnit) {
    EXPECT_EQ(str::human_bytes(512.0), "512.00 B");
    EXPECT_EQ(str::human_bytes(2048.0), "2.00 KiB");
    EXPECT_EQ(str::human_bytes(3.5 * 1024 * 1024), "3.50 MiB");
}

TEST(StrJoin, JoinsWithSeparator) {
    EXPECT_EQ(str::join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(str::join({}, ", "), "");
    EXPECT_EQ(str::join({"only"}, "-"), "only");
}

TEST(StrSplit, SplitsAndPreservesEmptyFields) {
    const auto parts = str::split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(StrTrim, StripsAsciiWhitespace) {
    EXPECT_EQ(str::trim("  hello \t\n"), "hello");
    EXPECT_EQ(str::trim(""), "");
    EXPECT_EQ(str::trim(" \t "), "");
    EXPECT_EQ(str::trim("x"), "x");
}

TEST(StrStartsWith, MatchesPrefixesOnly) {
    EXPECT_TRUE(str::starts_with("--flag", "--"));
    EXPECT_FALSE(str::starts_with("-f", "--"));
    EXPECT_TRUE(str::starts_with("abc", ""));
    EXPECT_FALSE(str::starts_with("", "a"));
}

TEST(StrPad, PadsToWidth) {
    EXPECT_EQ(str::pad_left("7", 3), "  7");
    EXPECT_EQ(str::pad_right("7", 3), "7  ");
    EXPECT_EQ(str::pad_left("long", 2), "long");
    EXPECT_EQ(str::pad_right("long", 2), "long");
}

TEST(StrToString, StreamsValues) {
    EXPECT_EQ(str::to_string(42), "42");
    EXPECT_EQ(str::to_string("abc"), "abc");
}

TEST(StrParse, SizeAcceptsDecimalAndHex) {
    EXPECT_EQ(str::parse_size("42", "--n"), 42u);
    EXPECT_EQ(str::parse_size(" 7 ", "--n"), 7u);
    EXPECT_EQ(str::parse_u64("0xff", "seed"), 255u);
    EXPECT_EQ(str::parse_u64("18446744073709551615", "seed"),
              18446744073709551615ULL);
}

TEST(StrParse, RejectsJunkWithTheContextInTheMessage) {
    const auto expect_invalid = [](auto&& call, const char* context) {
        try {
            call();
            FAIL() << "expected InvalidArgument";
        } catch (const relperf::InvalidArgument& e) {
            EXPECT_NE(std::string(e.what()).find(context), std::string::npos)
                << e.what();
        }
    };
    expect_invalid([] { (void)str::parse_size("12abc", "--sizes"); }, "--sizes");
    expect_invalid([] { (void)str::parse_size("", "--sizes"); }, "--sizes");
    expect_invalid([] { (void)str::parse_size("-3", "--sizes"); }, "--sizes");
    expect_invalid([] { (void)str::parse_double("1.2.3", "--eps"); }, "--eps");
    expect_invalid([] { (void)str::parse_double("", "--eps"); }, "--eps");
}

TEST(StrParse, SizeListSplitsTrimsAndValidates) {
    EXPECT_EQ(str::parse_size_list("64,256", "--sizes"),
              (std::vector<std::size_t>{64, 256}));
    EXPECT_EQ(str::parse_size_list(" 1 , 2 , 3 ", "--sizes"),
              (std::vector<std::size_t>{1, 2, 3}));
    EXPECT_THROW((void)str::parse_size_list("64,,256", "--sizes"),
                 relperf::InvalidArgument);
    EXPECT_THROW((void)str::parse_size_list("64,junk", "--sizes"),
                 relperf::InvalidArgument);
    EXPECT_THROW((void)str::parse_size_list("", "--sizes"),
                 relperf::InvalidArgument);
}
