#include "support/cli.hpp"

#include "support/error.hpp"

#include <gtest/gtest.h>

#include <sstream>

using relperf::support::CliParser;

namespace {

CliParser make_parser() {
    CliParser cli("test program");
    cli.add_flag("verbose", "more output");
    cli.add_option("n", "measurement count", "30");
    cli.add_option("sigma", "noise level", "0.08");
    cli.add_option("csv", "csv output path", "");
    return cli;
}

bool parse(CliParser& cli, std::initializer_list<const char*> args) {
    std::vector<const char*> argv = {"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return cli.parse(static_cast<int>(argv.size()), argv.data());
}

} // namespace

TEST(CliParser, DefaultsApplyWithoutArguments) {
    CliParser cli = make_parser();
    ASSERT_TRUE(parse(cli, {}));
    EXPECT_FALSE(cli.flag("verbose"));
    EXPECT_EQ(cli.value_int("n"), 30);
    EXPECT_DOUBLE_EQ(cli.value_double("sigma"), 0.08);
    EXPECT_FALSE(cli.value_optional("csv").has_value());
}

TEST(CliParser, ParsesFlagsAndValues) {
    CliParser cli = make_parser();
    ASSERT_TRUE(parse(cli, {"--verbose", "--n", "100"}));
    EXPECT_TRUE(cli.flag("verbose"));
    EXPECT_EQ(cli.value_int("n"), 100);
}

TEST(CliParser, ParsesEqualsSyntax) {
    CliParser cli = make_parser();
    ASSERT_TRUE(parse(cli, {"--sigma=0.5", "--csv=out.csv"}));
    EXPECT_DOUBLE_EQ(cli.value_double("sigma"), 0.5);
    ASSERT_TRUE(cli.value_optional("csv").has_value());
    EXPECT_EQ(*cli.value_optional("csv"), "out.csv");
}

TEST(CliParser, HelpReturnsFalse) {
    CliParser cli = make_parser();
    std::ostringstream captured;
    cli.set_output(&captured); // keep usage text out of the test run's stdout
    EXPECT_FALSE(parse(cli, {"--help"}));
    EXPECT_NE(captured.str().find("test program"), std::string::npos);
    EXPECT_NE(captured.str().find("Options:"), std::string::npos);
}

TEST(CliParser, HelpOutputIsRedirectable) {
    CliParser cli = make_parser();
    std::ostringstream first;
    std::ostringstream second;
    cli.set_output(&first);
    EXPECT_FALSE(parse(cli, {"-h"}));
    cli.set_output(&second);
    EXPECT_FALSE(parse(cli, {"--help"}));
    EXPECT_EQ(first.str(), second.str());
    EXPECT_EQ(first.str(), cli.usage());
}

TEST(CliParser, NullOutputStreamThrows) {
    CliParser cli = make_parser();
    EXPECT_THROW(cli.set_output(nullptr), relperf::InvalidArgument);
}

TEST(CliParser, UnknownOptionThrows) {
    CliParser cli = make_parser();
    EXPECT_THROW(parse(cli, {"--bogus"}), relperf::InvalidArgument);
}

TEST(CliParser, MissingValueThrows) {
    CliParser cli = make_parser();
    EXPECT_THROW(parse(cli, {"--n"}), relperf::InvalidArgument);
}

TEST(CliParser, FlagWithValueThrows) {
    CliParser cli = make_parser();
    EXPECT_THROW(parse(cli, {"--verbose=1"}), relperf::InvalidArgument);
}

TEST(CliParser, NonIntegerValueThrows) {
    CliParser cli = make_parser();
    ASSERT_TRUE(parse(cli, {"--n", "abc"}));
    EXPECT_THROW((void)cli.value_int("n"), relperf::InvalidArgument);
}

TEST(CliParser, PositionalArgumentThrows) {
    CliParser cli = make_parser();
    EXPECT_THROW(parse(cli, {"positional"}), relperf::InvalidArgument);
}

TEST(CliParser, DuplicateDeclarationThrows) {
    CliParser cli("x");
    cli.add_flag("f", "flag");
    EXPECT_THROW(cli.add_option("f", "again", "1"), relperf::InvalidArgument);
}

TEST(CliParser, UsageListsOptionsAndDefaults) {
    CliParser cli = make_parser();
    const std::string usage = cli.usage();
    EXPECT_NE(usage.find("--verbose"), std::string::npos);
    EXPECT_NE(usage.find("--n <value>"), std::string::npos);
    EXPECT_NE(usage.find("(default: 30)"), std::string::npos);
}

TEST(CliParser, QueryingUndeclaredOptionThrows) {
    CliParser cli = make_parser();
    ASSERT_TRUE(parse(cli, {}));
    EXPECT_THROW((void)cli.flag("nope"), relperf::InvalidArgument);
    EXPECT_THROW((void)cli.value("nope"), relperf::InvalidArgument);
}
