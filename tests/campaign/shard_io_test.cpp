#include "campaign/shard_io.hpp"

#include "core/io.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace campaign = relperf::campaign;
namespace core = relperf::core;

namespace {

campaign::ShardResult sample_shard() {
    campaign::ShardResult shard;
    shard.manifest.spec_hash = 0xDEADBEEFCAFEF00DULL;
    shard.manifest.shard_index = 1;
    shard.manifest.shard_count = 3;
    shard.manifest.campaign = "edge-sweep";
    shard.manifest.host = "rpi-kitchen";
    shard.manifest.backend = "blas";
    shard.measurements.add("algDA", {0.25, 0.26, 0.24});
    shard.measurements.add("algAA", {0.125, 1.0 / 3.0, 0.1275});
    return shard;
}

std::string write_temp(const std::string& content, const std::string& name) {
    const std::string path = testing::TempDir() + name;
    std::ofstream out(path);
    out << content;
    return path;
}

} // namespace

TEST(ShardIo, RoundTripsManifestAndMeasurementsExactly) {
    const campaign::ShardResult original = sample_shard();
    const std::string path = testing::TempDir() + "relperf_shard_rt.csv";
    campaign::write_shard_csv(original, path);
    const campaign::ShardResult loaded = campaign::read_shard_csv(path);
    std::remove(path.c_str());

    EXPECT_EQ(loaded.manifest.spec_hash, original.manifest.spec_hash);
    EXPECT_EQ(loaded.manifest.shard_index, original.manifest.shard_index);
    EXPECT_EQ(loaded.manifest.shard_count, original.manifest.shard_count);
    EXPECT_EQ(loaded.manifest.campaign, original.manifest.campaign);
    EXPECT_EQ(loaded.manifest.host, original.manifest.host);
    EXPECT_EQ(loaded.manifest.backend, original.manifest.backend);

    ASSERT_EQ(loaded.measurements.size(), original.measurements.size());
    for (std::size_t i = 0; i < original.measurements.size(); ++i) {
        EXPECT_EQ(loaded.measurements.name(i), original.measurements.name(i));
        const auto got = loaded.measurements.samples(i);
        const auto want = original.measurements.samples(i);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t k = 0; k < want.size(); ++k) {
            // %.17g must reproduce the doubles bit-for-bit (1/3 included).
            EXPECT_EQ(got[k], want[k]);
        }
    }
}

TEST(ShardIo, ShardFilesAreReadableAsPlainMeasurementCsv) {
    const campaign::ShardResult original = sample_shard();
    const std::string path = testing::TempDir() + "relperf_shard_plain.csv";
    campaign::write_shard_csv(original, path);
    const core::MeasurementSet set = core::read_measurements_csv(path);
    std::remove(path.c_str());
    EXPECT_EQ(set.size(), 2u);
    EXPECT_EQ(set.name(0), "algDA");
}

TEST(ShardIo, MissingManifestIsRejectedWithTheFileName) {
    const std::string path = write_temp(
        "algorithm,measurement_index,seconds\nalgD,0,1.0\n",
        "relperf_shard_nomanifest.csv");
    try {
        (void)campaign::read_shard_csv(path);
        FAIL() << "expected an error";
    } catch (const relperf::Error& e) {
        EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("spec_hash"), std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(ShardIo, MalformedManifestValuesNameTheLine) {
    const std::string path = write_temp(
        "# spec_hash = zzzz-not-hex\n"
        "# shard_index = 0\n"
        "# shard_count = 2\n"
        "algorithm,measurement_index,seconds\nalgD,0,1.0\n",
        "relperf_shard_badhash.csv");
    try {
        (void)campaign::read_shard_csv(path);
        FAIL() << "expected an error";
    } catch (const relperf::Error& e) {
        EXPECT_NE(std::string(e.what()).find(":1:"), std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(ShardIo, InconsistentShardRefIsRejected) {
    const std::string path = write_temp(
        "# spec_hash = 00000000000000ff\n"
        "# shard_index = 5\n"
        "# shard_count = 2\n"
        "algorithm,measurement_index,seconds\nalgD,0,1.0\n",
        "relperf_shard_badref.csv");
    EXPECT_THROW((void)campaign::read_shard_csv(path), relperf::Error);
    std::remove(path.c_str());
}

TEST(ShardIo, ExpandsCommaListsAndSortsThem) {
    const std::vector<std::string> paths =
        campaign::expand_shard_pattern("b.csv, a.csv ,c.csv");
    EXPECT_EQ(paths, (std::vector<std::string>{"a.csv", "b.csv", "c.csv"}));
    EXPECT_THROW((void)campaign::expand_shard_pattern("  "), relperf::Error);
}

TEST(ShardIo, ExpandsGlobPatterns) {
    const std::string dir = testing::TempDir();
    const std::string a = write_temp("x", "relperf_glob_s0.csv");
    const std::string b = write_temp("x", "relperf_glob_s1.csv");
    const std::vector<std::string> paths =
        campaign::expand_shard_pattern(dir + "relperf_glob_s*.csv");
    EXPECT_EQ(paths.size(), 2u);
    EXPECT_NE(paths[0], paths[1]);
    EXPECT_THROW(
        (void)campaign::expand_shard_pattern(dir + "relperf_glob_none*.csv"),
        relperf::Error);
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(ShardIo, HostNameIsNonEmpty) {
    EXPECT_FALSE(campaign::host_name().empty());
}

TEST(ShardIo, PreBackendShardFilesReadAsPortable) {
    // Files written before the backend axis have no `# backend` line; they
    // were measured on the (only) portable kernels, and must read as such.
    const std::string path = write_temp(
        "# spec_hash = 00000000000000ff\n"
        "# shard_index = 0\n"
        "# shard_count = 2\n"
        "algorithm,measurement_index,seconds\nalgD,0,1.0\n",
        "relperf_shard_prebackend.csv");
    const campaign::ShardResult loaded = campaign::read_shard_csv(path);
    std::remove(path.c_str());
    EXPECT_EQ(loaded.manifest.backend, "portable");
}

namespace {

campaign::ShardResult adaptive_shard() {
    campaign::ShardResult shard = sample_shard();
    shard.manifest.adaptive_min = 2;
    shard.manifest.adaptive_batch = 1;
    shard.manifest.adaptive_stability = 2;
    shard.manifest.samples_per_algorithm = {3, 3};
    return shard;
}

} // namespace

TEST(ShardIoAdaptive, ManifestRoundTripsAndFixedFilesStayClean) {
    const campaign::ShardResult original = adaptive_shard();
    const std::string path = testing::TempDir() + "relperf_shard_adaptive.csv";
    campaign::write_shard_csv(original, path);
    const campaign::ShardResult loaded = campaign::read_shard_csv(path);
    std::remove(path.c_str());
    EXPECT_EQ(loaded.manifest.adaptive_min, 2u);
    EXPECT_EQ(loaded.manifest.adaptive_batch, 1u);
    EXPECT_EQ(loaded.manifest.adaptive_stability, 2u);
    EXPECT_EQ(loaded.manifest.samples_per_algorithm,
              (std::vector<std::size_t>{3, 3}));

    // A fixed-N shard keeps the exact pre-adaptive file form: no adaptive
    // manifest lines at all, and the reader defaults to fixed-N.
    const std::string fixed_path = testing::TempDir() + "relperf_shard_fixed.csv";
    campaign::write_shard_csv(sample_shard(), fixed_path);
    std::ifstream in(fixed_path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content.find("adaptive"), std::string::npos);
    EXPECT_EQ(content.find("samples_per_algorithm"), std::string::npos);
    const campaign::ShardResult fixed = campaign::read_shard_csv(fixed_path);
    std::remove(fixed_path.c_str());
    EXPECT_EQ(fixed.manifest.adaptive_min, 0u);
    EXPECT_TRUE(fixed.manifest.samples_per_algorithm.empty());
}

TEST(ShardIoAdaptive, DeclaredCountsAreCheckedAgainstTheRows) {
    // Truncation/tampering canary: the manifest's per-algorithm counts must
    // match the measurement rows that follow.
    const campaign::ShardResult original = adaptive_shard();
    const std::string path = testing::TempDir() + "relperf_shard_tamper.csv";
    campaign::write_shard_csv(original, path);
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    in.close();

    // Drop the last measurement row (simulated truncation).
    std::string truncated = content;
    truncated.erase(truncated.find_last_of('\n', truncated.size() - 2) + 1);
    const std::string tpath = write_temp(truncated, "relperf_trunc.csv");
    EXPECT_THROW((void)campaign::read_shard_csv(tpath), relperf::Error);
    std::remove(tpath.c_str());

    // Wrong declared count for the right number of rows.
    std::string edited = content;
    const std::string decl = "# samples_per_algorithm = 3,3";
    edited.replace(edited.find(decl), decl.size(),
                   "# samples_per_algorithm = 3,4");
    const std::string epath = write_temp(edited, "relperf_edit.csv");
    EXPECT_THROW((void)campaign::read_shard_csv(epath), relperf::Error);
    std::remove(epath.c_str());

    // Wrong list length.
    std::string shorter = content;
    shorter.replace(shorter.find(decl), decl.size(),
                    "# samples_per_algorithm = 6");
    const std::string spath = write_temp(shorter, "relperf_short.csv");
    EXPECT_THROW((void)campaign::read_shard_csv(spath), relperf::Error);
    std::remove(spath.c_str());

    std::remove(path.c_str());
}

TEST(ShardIoAdaptive, WriterRejectsDivergentDeclaredCounts) {
    // The manifest's declared counts are cross-checked on the write side
    // too: persisting counts that disagree with the rows would write a lie
    // the read-side canary then blames on file corruption.
    campaign::ShardResult shard = adaptive_shard();
    shard.manifest.samples_per_algorithm = {3, 4}; // algAA really has 3
    const std::string path = testing::TempDir() + "relperf_divergent.csv";
    EXPECT_THROW(campaign::write_shard_csv(shard, path), relperf::Error);
    shard.manifest.samples_per_algorithm = {3};
    EXPECT_THROW(campaign::write_shard_csv(shard, path), relperf::Error);
    std::remove(path.c_str());
}

TEST(ShardIoCoordinated, ManifestRoundTripsAndPlainAdaptiveFilesStayClean) {
    campaign::ShardResult original = adaptive_shard();
    original.manifest.adaptive_coordinated = true;
    original.manifest.adaptive_confidence = 0.95;
    original.manifest.stopset_rounds = {0, 1, 2};
    const std::string path =
        testing::TempDir() + "relperf_shard_coordinated.csv";
    campaign::write_shard_csv(original, path);
    const campaign::ShardResult loaded = campaign::read_shard_csv(path);
    std::remove(path.c_str());
    EXPECT_TRUE(loaded.manifest.adaptive_coordinated);
    EXPECT_DOUBLE_EQ(loaded.manifest.adaptive_confidence, 0.95);
    EXPECT_EQ(loaded.manifest.stopset_rounds,
              (std::vector<std::size_t>{0, 1, 2}));

    // A shard-local adaptive shard keeps the exact pre-coordination file
    // form, and the reader defaults all three new fields off.
    const std::string plain_path =
        testing::TempDir() + "relperf_shard_plain_adaptive.csv";
    campaign::write_shard_csv(adaptive_shard(), plain_path);
    std::ifstream in(plain_path);
    const std::string content((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
    EXPECT_EQ(content.find("coordination"), std::string::npos);
    EXPECT_EQ(content.find("confidence"), std::string::npos);
    EXPECT_EQ(content.find("stopset"), std::string::npos);
    const campaign::ShardResult plain = campaign::read_shard_csv(plain_path);
    std::remove(plain_path.c_str());
    EXPECT_FALSE(plain.manifest.adaptive_coordinated);
    EXPECT_DOUBLE_EQ(plain.manifest.adaptive_confidence, 0.0);
    EXPECT_TRUE(plain.manifest.stopset_rounds.empty());
}

TEST(ShardIoCoordinated, BadCoordinationValueNamesTheLine) {
    campaign::ShardResult shard = adaptive_shard();
    shard.manifest.adaptive_coordinated = true;
    const std::string path = testing::TempDir() + "relperf_shard_badcoord.csv";
    campaign::write_shard_csv(shard, path);
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    in.close();
    const std::string line = "# adaptive_coordination = coordinated";
    ASSERT_NE(content.find(line), std::string::npos);
    content.replace(content.find(line), line.size(),
                    "# adaptive_coordination = telepathic");
    const std::string bad = write_temp(content, "relperf_badcoord2.csv");
    EXPECT_THROW((void)campaign::read_shard_csv(bad), relperf::Error);
    std::remove(bad.c_str());
    std::remove(path.c_str());
}
