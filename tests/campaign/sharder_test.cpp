#include "campaign/sharder.hpp"

#include "support/error.hpp"

#include <gtest/gtest.h>

#include <set>

namespace campaign = relperf::campaign;

TEST(Sharder, PlansPartitionEveryAssignmentExactlyOnce) {
    for (const std::size_t count : {1u, 2u, 3u, 5u, 8u}) {
        const campaign::Sharder sharder(8, count);
        std::set<std::size_t> seen;
        std::size_t total = 0;
        for (const campaign::ShardPlan& plan : sharder.all_plans()) {
            EXPECT_EQ(plan.count, count);
            EXPECT_FALSE(plan.assignment_indices.empty());
            for (const std::size_t index : plan.assignment_indices) {
                EXPECT_TRUE(seen.insert(index).second)
                    << "index " << index << " owned twice (K=" << count << ")";
                EXPECT_EQ(sharder.owner_of(index), plan.index);
                ++total;
            }
        }
        EXPECT_EQ(total, 8u) << "K=" << count;
    }
}

TEST(Sharder, ShardsAreStridedForLoadBalance) {
    const campaign::Sharder sharder(8, 3);
    EXPECT_EQ(sharder.plan(0).assignment_indices,
              (std::vector<std::size_t>{0, 3, 6}));
    EXPECT_EQ(sharder.plan(1).assignment_indices,
              (std::vector<std::size_t>{1, 4, 7}));
    EXPECT_EQ(sharder.plan(2).assignment_indices,
              (std::vector<std::size_t>{2, 5}));
}

TEST(Sharder, SingleShardOwnsEverything) {
    const campaign::Sharder sharder(4, 1);
    EXPECT_EQ(sharder.plan(0).assignment_indices,
              (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Sharder, RejectsDegenerateSplits) {
    EXPECT_THROW(campaign::Sharder(8, 0), relperf::InvalidArgument);
    EXPECT_THROW(campaign::Sharder(0, 1), relperf::InvalidArgument);
    EXPECT_THROW(campaign::Sharder(4, 5), relperf::InvalidArgument);
    const campaign::Sharder sharder(4, 2);
    EXPECT_THROW((void)sharder.plan(2), relperf::InvalidArgument);
    EXPECT_THROW((void)sharder.owner_of(4), relperf::InvalidArgument);
}

TEST(ShardRef, ParsesAndValidates) {
    const campaign::ShardRef ref = campaign::parse_shard_ref("2/4");
    EXPECT_EQ(ref.index, 2u);
    EXPECT_EQ(ref.count, 4u);
    EXPECT_EQ(campaign::parse_shard_ref(" 0/1 ").count, 1u);

    EXPECT_THROW((void)campaign::parse_shard_ref("4/4"),
                 relperf::InvalidArgument); // 0-based: max index is K-1
    EXPECT_THROW((void)campaign::parse_shard_ref("1"),
                 relperf::InvalidArgument);
    EXPECT_THROW((void)campaign::parse_shard_ref("a/b"),
                 relperf::InvalidArgument);
    EXPECT_THROW((void)campaign::parse_shard_ref("1/0"),
                 relperf::InvalidArgument);
    EXPECT_THROW((void)campaign::parse_shard_ref("1/2/3"),
                 relperf::InvalidArgument);
}
