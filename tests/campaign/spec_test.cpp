#include "campaign/spec.hpp"

#include "support/error.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace campaign = relperf::campaign;

namespace {

campaign::CampaignSpec sample_spec() {
    campaign::CampaignSpec spec;
    spec.name = "edge-sweep";
    spec.sizes = {64, 256};
    spec.iters = 5;
    spec.platform = "rpi-server";
    spec.measurements = 12;
    spec.measurement_seed = 77;
    spec.shards = 2;
    spec.clustering_repetitions = 40;
    spec.clustering_seed = 9;
    spec.tie_epsilon = 0.03;
    spec.backend = "reference";
    return spec;
}

} // namespace

TEST(CampaignSpec, TextRoundTripPreservesEveryField) {
    const campaign::CampaignSpec original = sample_spec();
    const campaign::CampaignSpec loaded =
        campaign::CampaignSpec::parse(original.to_text());

    EXPECT_EQ(loaded.name, original.name);
    EXPECT_EQ(loaded.sizes, original.sizes);
    EXPECT_EQ(loaded.iters, original.iters);
    EXPECT_EQ(loaded.executor, original.executor);
    EXPECT_EQ(loaded.platform, original.platform);
    EXPECT_EQ(loaded.measurements, original.measurements);
    EXPECT_EQ(loaded.measurement_seed, original.measurement_seed);
    EXPECT_EQ(loaded.backend, original.backend);
    EXPECT_EQ(loaded.shards, original.shards);
    EXPECT_EQ(loaded.clustering_repetitions, original.clustering_repetitions);
    EXPECT_EQ(loaded.clustering_seed, original.clustering_seed);
    EXPECT_DOUBLE_EQ(loaded.tie_epsilon, original.tie_epsilon);
    EXPECT_DOUBLE_EQ(loaded.decision_threshold, original.decision_threshold);
    EXPECT_EQ(loaded.hash(), original.hash());
}

TEST(CampaignSpec, FileRoundTrip) {
    const std::string path = testing::TempDir() + "relperf_campaign.spec";
    const campaign::CampaignSpec original = sample_spec();
    original.save(path);
    const campaign::CampaignSpec loaded = campaign::CampaignSpec::load(path);
    std::remove(path.c_str());
    EXPECT_EQ(loaded.hash(), original.hash());
    EXPECT_EQ(loaded.name, original.name);
}

TEST(CampaignSpec, ParseToleratesCommentsBlanksAndCrlf) {
    const std::string text =
        "# a comment\r\n"
        "\r\n"
        "campaign = crlf-campaign\r\n"
        "  sizes =  32 , 64 \r\n"
        "measurements = 5\r\n";
    const campaign::CampaignSpec spec = campaign::CampaignSpec::parse(text);
    EXPECT_EQ(spec.name, "crlf-campaign");
    EXPECT_EQ(spec.sizes, (std::vector<std::size_t>{32, 64}));
    EXPECT_EQ(spec.measurements, 5u);
    EXPECT_EQ(spec.iters, 10u); // unmentioned keys keep their defaults
}

TEST(CampaignSpec, ParseErrorsNameSourceAndLine) {
    const auto expect_error_containing = [](const std::string& text,
                                            const std::string& fragment) {
        try {
            (void)campaign::CampaignSpec::parse(text, "plan.spec");
            FAIL() << "expected an error for: " << text;
        } catch (const relperf::Error& e) {
            EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
                << "message was: " << e.what();
        }
    };
    expect_error_containing("campaign = x\nbogus_key = 1\n",
                            "plan.spec:2: unknown key 'bogus_key'");
    expect_error_containing("no equals sign here\n", "plan.spec:1:");
    expect_error_containing("sizes = 64,junk\n", "plan.spec:1:");
    expect_error_containing("iters = 3\niters = 4\n",
                            "plan.spec:2: duplicate key 'iters'");
    expect_error_containing("executor = quantum\n", "plan.spec:1:");
}

TEST(CampaignSpec, ValidateRejectsOutOfRangeFields) {
    campaign::CampaignSpec spec;
    spec.sizes = {};
    EXPECT_THROW(spec.validate(), relperf::InvalidArgument);
    spec = campaign::CampaignSpec{};
    spec.measurements = 0;
    EXPECT_THROW(spec.validate(), relperf::InvalidArgument);
    spec = campaign::CampaignSpec{};
    spec.platform = "not-a-platform";
    EXPECT_THROW(spec.validate(), relperf::InvalidArgument);
    spec = campaign::CampaignSpec{};
    spec.decision_threshold = 0.4;
    EXPECT_THROW(spec.validate(), relperf::InvalidArgument);
}

TEST(CampaignSpec, HashCoversTheMeasurementPlanOnly) {
    const campaign::CampaignSpec base = sample_spec();

    // Shard count and analysis knobs do not change measurements, so shards
    // from differently-split or differently-analyzed campaigns stay
    // mergeable.
    campaign::CampaignSpec variant = base;
    variant.shards = 7;
    variant.clustering_repetitions = 999;
    variant.clustering_seed = 1;
    variant.name = "other-label";
    EXPECT_EQ(variant.hash(), base.hash());

    // Plan fields do.
    variant = base;
    variant.measurement_seed += 1;
    EXPECT_NE(variant.hash(), base.hash());
    variant = base;
    variant.sizes.push_back(512);
    EXPECT_NE(variant.hash(), base.hash());
    variant = base;
    variant.measurements += 1;
    EXPECT_NE(variant.hash(), base.hash());
    variant = base;
    variant.platform = "cpu-only";
    EXPECT_NE(variant.hash(), base.hash());
    variant = base;
    variant.executor = campaign::ExecutorKind::Real;
    EXPECT_NE(variant.hash(), base.hash());
    variant = base;
    variant.backend = "blas";
    EXPECT_NE(variant.hash(), base.hash());
}

TEST(CampaignSpec, BackendDefaultsToPortableAndIsValidated) {
    // Spec files from before the backend axis carry no `backend` key and
    // must keep parsing (and hashing) as the portable plans they were.
    const campaign::CampaignSpec pre_backend =
        campaign::CampaignSpec::parse("campaign = old\nsizes = 8\n");
    EXPECT_EQ(pre_backend.backend, "portable");

    campaign::CampaignSpec explicit_default = pre_backend;
    explicit_default.backend = "portable";
    EXPECT_EQ(pre_backend.hash(), explicit_default.hash());

    campaign::CampaignSpec empty = pre_backend;
    empty.backend = "";
    EXPECT_THROW(empty.validate(), relperf::InvalidArgument);

    // Unregistered backends pass validate() — a collecting host without the
    // backend still merges; run_shard checks availability instead.
    campaign::CampaignSpec vendor = pre_backend;
    vendor.backend = "some-future-backend";
    EXPECT_NO_THROW(vendor.validate());
    EXPECT_NE(vendor.hash(), pre_backend.hash());
}

TEST(CampaignSpec, PlatformPresetsResolve) {
    for (const std::string& name : campaign::platform_preset_names()) {
        EXPECT_NO_THROW((void)campaign::platform_preset(name)) << name;
    }
    EXPECT_THROW((void)campaign::platform_preset("warp-core"),
                 relperf::InvalidArgument);
}

TEST(CampaignSpec, ChainAndAssignmentsFollowTheSpec) {
    const campaign::CampaignSpec spec = sample_spec();
    EXPECT_EQ(spec.chain().size(), 2u);
    EXPECT_EQ(spec.assignments().size(), 4u); // 2^2
    const relperf::core::AnalysisConfig config = spec.analysis_config();
    EXPECT_EQ(config.measurements_per_alg, 12u);
    EXPECT_EQ(config.clustering.repetitions, 40u);
    EXPECT_EQ(config.measurement_seed, 77u);
    EXPECT_DOUBLE_EQ(config.comparator.tie_epsilon, 0.03);
}

TEST(CampaignSpec, ErrorPrefixIsAppliedExactlyOnce) {
    try {
        (void)campaign::CampaignSpec::parse("bogus_key = 1\n", "plan.spec");
        FAIL() << "expected an error";
    } catch (const relperf::Error& e) {
        const std::string message = e.what();
        EXPECT_EQ(message.find("plan.spec:1:"),
                  message.rfind("plan.spec:1:"))
            << "prefix duplicated: " << message;
    }
}

TEST(CampaignSpecAdaptive, KeysRoundTripAndOnlyAppearWhenSet) {
    campaign::CampaignSpec fixed = sample_spec();
    EXPECT_FALSE(fixed.adaptive());
    // Fixed-N specs keep their exact pre-adaptive text: no adaptive keys.
    EXPECT_EQ(fixed.to_text().find("adaptive"), std::string::npos);

    campaign::CampaignSpec adaptive = sample_spec();
    adaptive.adaptive_min = 4;
    adaptive.adaptive_batch = 3;
    adaptive.adaptive_stability = 5;
    ASSERT_TRUE(adaptive.adaptive());
    const campaign::CampaignSpec loaded =
        campaign::CampaignSpec::parse(adaptive.to_text());
    EXPECT_EQ(loaded.adaptive_min, 4u);
    EXPECT_EQ(loaded.adaptive_batch, 3u);
    EXPECT_EQ(loaded.adaptive_stability, 5u);
    EXPECT_EQ(loaded.to_text(), adaptive.to_text());
}

TEST(CampaignSpecAdaptive, HashChangesOnlyWhenAdaptiveIsOn) {
    const campaign::CampaignSpec fixed = sample_spec();
    campaign::CampaignSpec adaptive = sample_spec();
    adaptive.adaptive_min = 4;
    EXPECT_NE(fixed.hash(), adaptive.hash());

    // Fixed-N: the adaptive knobs AND the analysis knobs stay excluded (the
    // pre-adaptive hash contract).
    campaign::CampaignSpec reanalyzed = sample_spec();
    reanalyzed.clustering_repetitions += 10;
    reanalyzed.bootstrap_rounds += 10;
    EXPECT_EQ(fixed.hash(), reanalyzed.hash());

    // Adaptive: the stopping rule consults the clusterer, so the analysis
    // knobs become measurement-determining and enter the hash.
    campaign::CampaignSpec adaptive_reanalyzed = adaptive;
    adaptive_reanalyzed.clustering_repetitions += 10;
    EXPECT_NE(adaptive.hash(), adaptive_reanalyzed.hash());
    campaign::CampaignSpec other_batch = adaptive;
    other_batch.adaptive_batch += 1;
    EXPECT_NE(adaptive.hash(), other_batch.hash());
}

TEST(CampaignSpecAdaptive, Validation) {
    campaign::CampaignSpec spec = sample_spec();
    spec.adaptive_min = spec.measurements + 1; // min above the cap
    EXPECT_THROW(spec.validate(), relperf::Error);
    spec = sample_spec();
    spec.adaptive_min = 2;
    spec.adaptive_batch = 0;
    EXPECT_THROW(spec.validate(), relperf::Error);
    spec = sample_spec();
    spec.adaptive_min = 2;
    spec.adaptive_stability = 0;
    EXPECT_THROW(spec.validate(), relperf::Error);
    spec = sample_spec();
    EXPECT_THROW((void)spec.adaptive_config(), relperf::Error);
    spec.adaptive_min = 2;
    EXPECT_NO_THROW(spec.validate());
    const relperf::core::AdaptiveConfig config = spec.adaptive_config();
    EXPECT_EQ(config.min_n, 2u);
    EXPECT_EQ(config.max_n, spec.measurements);
    EXPECT_EQ(config.batch, spec.adaptive_batch);
    EXPECT_EQ(config.stability_rounds, spec.adaptive_stability);
    EXPECT_TRUE(spec.analysis_config().adaptive.has_value());
    EXPECT_FALSE(sample_spec().analysis_config().adaptive.has_value());
}

TEST(CampaignSpecAdaptive, InertKnobsAreRejectedAtParse) {
    // adaptive_batch without adaptive_min_measurements would do nothing and
    // silently vanish on the next round trip — a typo'd plan dies loudly.
    campaign::CampaignSpec spec = sample_spec();
    const std::string text = spec.to_text() + "adaptive_batch = 3\n";
    EXPECT_THROW((void)campaign::CampaignSpec::parse(text), relperf::Error);
    const std::string text2 =
        spec.to_text() + "adaptive_stability_rounds = 3\n";
    EXPECT_THROW((void)campaign::CampaignSpec::parse(text2), relperf::Error);
    // An explicit zero min is the same trap (it would mean fixed-N and drop
    // the other knobs on round trip): rejected, with omission as the answer.
    const std::string zero = spec.to_text() +
                             "adaptive_min_measurements = 0\n"
                             "adaptive_batch = 3\n";
    EXPECT_THROW((void)campaign::CampaignSpec::parse(zero), relperf::Error);
}

TEST(CampaignSpecCoordinated, KeysRoundTripAndOnlyAppearWhenSet) {
    campaign::CampaignSpec adaptive = sample_spec();
    adaptive.adaptive_min = 4;
    // Pre-coordination adaptive specs keep their exact bytes: neither new
    // key is emitted while unset.
    EXPECT_EQ(adaptive.to_text().find("adaptive_coordination"),
              std::string::npos);
    EXPECT_EQ(adaptive.to_text().find("adaptive_confidence"),
              std::string::npos);

    campaign::CampaignSpec coordinated = adaptive;
    coordinated.adaptive_coordinated = true;
    coordinated.adaptive_confidence = 0.95;
    EXPECT_NE(coordinated.to_text().find("adaptive_coordination = coordinated"),
              std::string::npos);
    EXPECT_NE(coordinated.to_text().find("adaptive_confidence = 0.95"),
              std::string::npos);
    const campaign::CampaignSpec loaded =
        campaign::CampaignSpec::parse(coordinated.to_text());
    EXPECT_TRUE(loaded.adaptive_coordinated);
    EXPECT_DOUBLE_EQ(loaded.adaptive_confidence, 0.95);
    EXPECT_EQ(loaded.to_text(), coordinated.to_text());
    EXPECT_EQ(loaded.hash(), coordinated.hash());

    // The explicit default coordination value parses but is never emitted.
    const campaign::CampaignSpec shard_local = campaign::CampaignSpec::parse(
        adaptive.to_text() + "adaptive_coordination = shard-local\n");
    EXPECT_FALSE(shard_local.adaptive_coordinated);
    EXPECT_EQ(shard_local.to_text(), adaptive.to_text());
}

TEST(CampaignSpecCoordinated, NewKeysEnterTheHashOnlyWhenSet) {
    campaign::CampaignSpec adaptive = sample_spec();
    adaptive.adaptive_min = 4;

    // Coordination changes which clustering the stop decisions watch, and
    // the confidence level changes the stopping rule: both are
    // measurement-determining.
    campaign::CampaignSpec coordinated = adaptive;
    coordinated.adaptive_coordinated = true;
    EXPECT_NE(coordinated.hash(), adaptive.hash());
    campaign::CampaignSpec confident = adaptive;
    confident.adaptive_confidence = 0.95;
    EXPECT_NE(confident.hash(), adaptive.hash());
    EXPECT_NE(confident.hash(), coordinated.hash());
    campaign::CampaignSpec other_level = confident;
    other_level.adaptive_confidence = 0.99;
    EXPECT_NE(other_level.hash(), confident.hash());
}

TEST(CampaignSpecCoordinated, Validation) {
    campaign::CampaignSpec spec = sample_spec();
    spec.adaptive_min = 4;
    spec.adaptive_confidence = 0.5; // must be in (0.5, 1)
    EXPECT_THROW(spec.validate(), relperf::Error);
    spec.adaptive_confidence = 1.0;
    EXPECT_THROW(spec.validate(), relperf::Error);
    spec.adaptive_confidence = 0.95;
    EXPECT_NO_THROW(spec.validate());
    const relperf::core::AdaptiveConfig config = spec.adaptive_config();
    EXPECT_EQ(config.rule, relperf::core::StoppingRuleKind::Confidence);
    EXPECT_DOUBLE_EQ(config.confidence, 0.95);
    // Unset confidence keeps the stability rule.
    spec.adaptive_confidence = 0.0;
    EXPECT_EQ(spec.adaptive_config().rule,
              relperf::core::StoppingRuleKind::Stability);

    // Both knobs are inert without adaptive_min: rejected, not dropped.
    spec = sample_spec();
    spec.adaptive_coordinated = true;
    EXPECT_THROW(spec.validate(), relperf::Error);
    spec = sample_spec();
    spec.adaptive_confidence = 0.95;
    EXPECT_THROW(spec.validate(), relperf::Error);
}

TEST(CampaignSpecCoordinated, InertKeysAndBadValuesAreRejectedAtParse) {
    const campaign::CampaignSpec spec = sample_spec();
    EXPECT_THROW((void)campaign::CampaignSpec::parse(
                     spec.to_text() + "adaptive_coordination = coordinated\n"),
                 relperf::Error);
    EXPECT_THROW((void)campaign::CampaignSpec::parse(
                     spec.to_text() + "adaptive_confidence = 0.95\n"),
                 relperf::Error);
    campaign::CampaignSpec adaptive = sample_spec();
    adaptive.adaptive_min = 4;
    EXPECT_THROW((void)campaign::CampaignSpec::parse(
                     adaptive.to_text() + "adaptive_coordination = sometimes\n"),
                 relperf::Error);
}
