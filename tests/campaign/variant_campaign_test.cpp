//! The per-task variant axis through the campaign layer: spec round-trips
//! and back-compatible hashing, sharded mixed-backend campaigns merging
//! bit-identically to the single-process path, manifest round-trips, and
//! strict rejection of axis mismatches.

#include "campaign/campaign.hpp"

#include "core/pipeline.hpp"
#include "sim/analytic.hpp"
#include "sim/executor.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace campaign = relperf::campaign;
namespace core = relperf::core;
namespace sim = relperf::sim;
namespace workloads = relperf::workloads;

namespace {

campaign::CampaignSpec variant_spec() {
    campaign::CampaignSpec spec;
    spec.name = "variant-campaign";
    spec.sizes = {24, 40};
    spec.iters = 3;
    spec.measurements = 12;
    spec.clustering_repetitions = 30;
    // The always-registered backends, so the campaign runs in every build.
    spec.variant_backends = {"portable", "reference"};
    return spec;
}

/// RAII temp file path.
struct TempFile {
    std::string path;
    explicit TempFile(const std::string& name)
        : path(std::string(::testing::TempDir()) + name) {}
    ~TempFile() { std::remove(path.c_str()); }
};

} // namespace

TEST(VariantCampaignSpec, TextRoundTripCarriesTheAxis) {
    const campaign::CampaignSpec spec = variant_spec();
    const campaign::CampaignSpec loaded =
        campaign::CampaignSpec::parse(spec.to_text());
    EXPECT_EQ(loaded.variant_backends, spec.variant_backends);
    EXPECT_EQ(loaded.hash(), spec.hash());
}

TEST(VariantCampaignSpec, UniformSpecsKeepPreVariantTextAndHash) {
    campaign::CampaignSpec plain = variant_spec();
    plain.variant_backends.clear();
    // No variant_backends key in the serialized text: pre-variant spec files
    // and their hashes are untouched.
    EXPECT_EQ(plain.to_text().find("variant_backends"), std::string::npos);
    const campaign::CampaignSpec pre_variant = campaign::CampaignSpec::parse(
        "campaign = variant-campaign\nsizes = 24,40\niters = 3\n"
        "measurements = 12\nclustering_repetitions = 30\n");
    EXPECT_EQ(plain.hash(), pre_variant.hash());
    // Turning the axis on is a different measurement plan.
    EXPECT_NE(variant_spec().hash(), plain.hash());
    // ...and so is a different axis.
    campaign::CampaignSpec other = variant_spec();
    other.variant_backends = {"portable", "blas"};
    EXPECT_NE(other.hash(), variant_spec().hash());
}

TEST(VariantCampaignSpec, ValidateGuardsTheAxis) {
    campaign::CampaignSpec spec = variant_spec();
    spec.variant_backends = {"portable", "portable"};
    EXPECT_THROW(spec.validate(), relperf::InvalidArgument);
    spec = variant_spec();
    spec.variant_backends = {""};
    EXPECT_THROW(spec.validate(), relperf::InvalidArgument);
    // (2*8)^4 = 65536 is the ceiling; (2*8)^5 is out.
    spec = variant_spec();
    spec.sizes = {8, 8, 8, 8, 8};
    spec.variant_backends = {"a", "b", "c", "d", "e", "f", "g", "h"};
    EXPECT_THROW(spec.validate(), relperf::InvalidArgument);
    // Unregistered names still validate (merge-only hosts).
    spec = variant_spec();
    spec.variant_backends = {"portable", "some-future-backend"};
    EXPECT_NO_THROW(spec.validate());
}

TEST(VariantCampaignSpec, VariantsEnumerateTheAxis) {
    const campaign::CampaignSpec spec = variant_spec();
    const auto variants = spec.variants();
    ASSERT_EQ(variants.size(), 16u); // (2*2)^2
    EXPECT_EQ(variants.front().str(), "D:portable,D:portable");
    EXPECT_EQ(variants.back().str(), "A:reference,A:reference");

    campaign::CampaignSpec plain = spec;
    plain.variant_backends.clear();
    const auto plain_variants = plain.variants();
    const auto assignments = plain.assignments();
    ASSERT_EQ(plain_variants.size(), assignments.size());
    for (std::size_t i = 0; i < assignments.size(); ++i) {
        EXPECT_EQ(plain_variants[i].alg_name(), assignments[i].alg_name());
    }
}

TEST(VariantCampaign, RunShardRejectsUnavailableAxisBackends) {
    campaign::CampaignSpec spec = variant_spec();
    spec.variant_backends = {"portable", "nonesuch-backend"};
    try {
        (void)campaign::run_shard(spec, 0, 1);
        FAIL() << "expected InvalidArgument";
    } catch (const relperf::InvalidArgument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("nonesuch-backend"), std::string::npos) << what;
        EXPECT_NE(what.find("registered"), std::string::npos) << what;
    }
}

TEST(VariantCampaign, ShardedMergeIsBitIdenticalToSingleProcess) {
    const campaign::CampaignSpec spec = variant_spec();

    // Reference: direct single-process measurement of the variant list.
    const workloads::TaskChain chain = spec.chain();
    const sim::AnalyticCostModel model(campaign::platform_preset(spec.platform));
    const sim::SimulatedExecutor executor(model, sim::NoiseModel{});
    relperf::stats::Rng rng(spec.measurement_seed);
    const core::MeasurementSet direct = core::measure_variants(
        executor, chain, spec.variants(), spec.measurements, rng);

    for (const std::size_t shards : {std::size_t{1}, std::size_t{3},
                                     std::size_t{5}}) {
        const campaign::LocalShardRunner runner(2);
        const std::vector<campaign::ShardResult> results =
            runner.run(spec, shards);
        const core::MeasurementSet merged =
            campaign::merge_shards(spec, results);
        ASSERT_EQ(merged.size(), direct.size());
        for (std::size_t i = 0; i < merged.size(); ++i) {
            EXPECT_EQ(merged.name(i), direct.name(i));
            const auto a = merged.samples(i);
            const auto b = direct.samples(i);
            ASSERT_EQ(a.size(), b.size());
            for (std::size_t j = 0; j < a.size(); ++j) {
                EXPECT_DOUBLE_EQ(a[j], b[j]) << merged.name(i) << " K=" << shards;
            }
        }
    }
}

TEST(VariantCampaign, ShardFileRoundTripKeepsTheAxis) {
    const campaign::CampaignSpec spec = variant_spec();
    const campaign::ShardResult shard = campaign::run_shard(spec, 0, 2);
    EXPECT_EQ(shard.manifest.variant_backends, spec.variant_backends);

    const TempFile file("variant_shard_roundtrip.csv");
    campaign::write_shard_csv(shard, file.path);

    // The axis is recorded in the manifest...
    std::ifstream in(file.path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("# variant_backends = portable,reference"),
              std::string::npos);

    // ...and reads back identically, mergeable with its sibling.
    const campaign::ShardResult loaded = campaign::read_shard_csv(file.path);
    EXPECT_EQ(loaded.manifest.variant_backends, spec.variant_backends);
    const campaign::ShardResult other = campaign::run_shard(spec, 1, 2);
    EXPECT_NO_THROW((void)campaign::merge_shards(spec, {loaded, other}));
}

TEST(VariantCampaign, PlainShardFilesCarryNoAxisLine) {
    campaign::CampaignSpec plain = variant_spec();
    plain.variant_backends.clear();
    const campaign::ShardResult shard = campaign::run_shard(plain, 0, 1);
    const TempFile file("plain_shard_no_axis.csv");
    campaign::write_shard_csv(shard, file.path);
    std::ifstream in(file.path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content.find("variant_backends"), std::string::npos);
    EXPECT_TRUE(campaign::read_shard_csv(file.path)
                    .manifest.variant_backends.empty());
}

TEST(VariantCampaign, MergeRejectsAxisMismatch) {
    const campaign::CampaignSpec spec = variant_spec();
    campaign::ShardResult shard = campaign::run_shard(spec, 0, 1);

    campaign::CampaignSpec other = spec;
    other.variant_backends = {"portable"};
    try {
        (void)campaign::merge_shards(other, {shard});
        FAIL() << "expected Error";
    } catch (const relperf::Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("per-task backend axis"), std::string::npos) << what;
        EXPECT_NE(what.find("portable,reference"), std::string::npos) << what;
    }

    campaign::CampaignSpec plain = spec;
    plain.variant_backends.clear();
    EXPECT_THROW((void)campaign::merge_shards(plain, {shard}), relperf::Error);
}

TEST(VariantCampaign, RunCampaignClustersTheWholeAxis) {
    const campaign::CampaignSpec spec = variant_spec();
    const core::AnalysisResult result = campaign::run_campaign(spec, 4, 2);
    EXPECT_EQ(result.measurements.size(), 16u);
    EXPECT_TRUE(result.measurements.contains("algD:portable,A:reference"));
    EXPECT_GE(result.clustering.cluster_count(), 1);
}
