//! The campaign subsystem's core guarantees, asserted end to end:
//!
//!  * K = 1 equals the unsharded pipeline measurement-for-measurement;
//!  * every K produces the same merged measurements, in any shard order;
//!  * the sharded + merged clustering is EXACTLY the clustering of the
//!    single-process core::analyze_chain run (the ISSUE acceptance check);
//!  * merging rejects foreign, duplicate and missing shards;
//!  * the parallel LocalShardRunner agrees with serial execution;
//!  * the CSV persistence round-trip changes nothing.

#include "campaign/campaign.hpp"

#include "core/pipeline.hpp"
#include "sim/analytic.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <random>

namespace campaign = relperf::campaign;
namespace core = relperf::core;
namespace sim = relperf::sim;
namespace workloads = relperf::workloads;

namespace {

campaign::CampaignSpec small_spec() {
    campaign::CampaignSpec spec;
    spec.name = "gtest-campaign";
    spec.sizes = {32, 64, 128};
    spec.iters = 4;
    spec.platform = "paper-cpu-gpu";
    spec.measurements = 15;
    spec.measurement_seed = 1234;
    spec.clustering_repetitions = 50;
    spec.clustering_seed = 99;
    return spec;
}

/// The single-process reference: core::analyze_chain over the same plan.
core::AnalysisResult reference_run(const campaign::CampaignSpec& spec) {
    const sim::AnalyticCostModel model(campaign::platform_preset(spec.platform));
    const sim::SimulatedExecutor executor(model, sim::NoiseModel{});
    return core::analyze_chain(executor, spec.chain(), spec.assignments(),
                               spec.analysis_config());
}

void expect_sets_identical(const core::MeasurementSet& a,
                           const core::MeasurementSet& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.name(i), b.name(i));
        const auto sa = a.samples(i);
        const auto sb = b.samples(i);
        ASSERT_EQ(sa.size(), sb.size()) << a.name(i);
        for (std::size_t k = 0; k < sa.size(); ++k) {
            EXPECT_EQ(sa[k], sb[k]) << a.name(i) << " sample " << k;
        }
    }
}

void expect_clusterings_identical(const core::Clustering& a,
                                  const core::Clustering& b) {
    ASSERT_EQ(a.cluster_count(), b.cluster_count());
    ASSERT_EQ(a.final_assignment.size(), b.final_assignment.size());
    for (std::size_t alg = 0; alg < a.final_assignment.size(); ++alg) {
        EXPECT_EQ(a.final_assignment[alg].rank, b.final_assignment[alg].rank)
            << "alg " << alg;
        EXPECT_DOUBLE_EQ(a.final_assignment[alg].score,
                         b.final_assignment[alg].score)
            << "alg " << alg;
        for (int rank = 1; rank <= a.cluster_count(); ++rank) {
            EXPECT_DOUBLE_EQ(a.score_of(alg, rank), b.score_of(alg, rank))
                << "alg " << alg << " rank " << rank;
        }
    }
}

} // namespace

TEST(Campaign, SingleShardEqualsUnshardedPipelineMeasurementForMeasurement) {
    const campaign::CampaignSpec spec = small_spec();
    const campaign::ShardResult shard = campaign::run_shard(spec, 0, 1);
    const core::MeasurementSet merged = campaign::merge_shards(spec, {shard});
    expect_sets_identical(merged, reference_run(spec).measurements);
}

TEST(Campaign, EveryShardCountReproducesTheUnshardedMeasurements) {
    const campaign::CampaignSpec spec = small_spec();
    const core::MeasurementSet reference = reference_run(spec).measurements;
    for (const std::size_t k : {2u, 3u, 5u, 8u}) {
        std::vector<campaign::ShardResult> shards;
        for (std::size_t i = 0; i < k; ++i) {
            shards.push_back(campaign::run_shard(spec, i, k));
        }
        const core::MeasurementSet merged = campaign::merge_shards(spec, shards);
        expect_sets_identical(merged, reference);
    }
}

TEST(Campaign, ShardOrderDoesNotMatter) {
    const campaign::CampaignSpec spec = small_spec();
    std::vector<campaign::ShardResult> shards;
    for (std::size_t i = 0; i < 4; ++i) {
        shards.push_back(campaign::run_shard(spec, i, 4));
    }
    const core::MeasurementSet in_order = campaign::merge_shards(spec, shards);

    std::mt19937 gen(7);
    for (int round = 0; round < 5; ++round) {
        std::shuffle(shards.begin(), shards.end(), gen);
        expect_sets_identical(campaign::merge_shards(spec, shards), in_order);
    }
}

TEST(Campaign, ShardedMergedClusteringEqualsAnalyzeChainExactly) {
    // The ISSUE acceptance criterion: run every shard, merge, cluster — the
    // result must be the exact clustering of the single-process
    // core::analyze_chain run of the same plan.
    const campaign::CampaignSpec spec = small_spec();
    const core::AnalysisResult reference = reference_run(spec);
    for (const std::size_t k : {1u, 2u, 4u, 7u}) {
        const core::AnalysisResult sharded = campaign::run_campaign(spec, k);
        expect_clusterings_identical(sharded.clustering, reference.clustering);
    }
}

TEST(Campaign, CsvRoundTripPreservesTheExactClustering) {
    // Same acceptance check, through the on-disk path the CLI uses: write
    // every shard to a CSV file, read them back, merge, cluster.
    const campaign::CampaignSpec spec = small_spec();
    std::vector<std::string> paths;
    std::vector<campaign::ShardResult> loaded;
    for (std::size_t i = 0; i < 3; ++i) {
        const campaign::ShardResult shard = campaign::run_shard(spec, i, 3);
        paths.push_back(testing::TempDir() +
                        "relperf_campaign_shard_" + std::to_string(i) + ".csv");
        campaign::write_shard_csv(shard, paths.back());
        loaded.push_back(campaign::read_shard_csv(paths.back()));
    }
    core::MeasurementSet merged = campaign::merge_shards(spec, loaded);
    for (const std::string& path : paths) std::remove(path.c_str());

    const core::AnalysisResult reference = reference_run(spec);
    expect_sets_identical(merged, reference.measurements);
    const core::AnalysisResult result =
        core::analyze_measurements(std::move(merged), spec.analysis_config());
    expect_clusterings_identical(result.clustering, reference.clustering);
}

TEST(Campaign, ParallelRunnerAgreesWithSerialExecution) {
    const campaign::CampaignSpec spec = small_spec();
    const std::vector<campaign::ShardResult> serial =
        campaign::LocalShardRunner(1).run(spec, 4);
    const std::vector<campaign::ShardResult> parallel =
        campaign::LocalShardRunner(4).run(spec, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(parallel[i].manifest.shard_index, i);
        expect_sets_identical(parallel[i].measurements, serial[i].measurements);
    }
}

TEST(Campaign, MergeRejectsForeignShards) {
    const campaign::CampaignSpec spec = small_spec();
    campaign::CampaignSpec foreign = spec;
    foreign.measurement_seed += 1;

    std::vector<campaign::ShardResult> shards;
    shards.push_back(campaign::run_shard(spec, 0, 2));
    shards.push_back(campaign::run_shard(foreign, 1, 2));
    EXPECT_THROW((void)campaign::merge_shards(spec, shards), relperf::Error);
}

TEST(Campaign, MergeRejectsDuplicateAndMissingShards) {
    const campaign::CampaignSpec spec = small_spec();
    const campaign::ShardResult s0 = campaign::run_shard(spec, 0, 2);
    const campaign::ShardResult s1 = campaign::run_shard(spec, 1, 2);

    EXPECT_THROW((void)campaign::merge_shards(spec, {s0, s0}), relperf::Error);
    EXPECT_THROW((void)campaign::merge_shards(spec, {s0}), relperf::Error);
    EXPECT_THROW((void)campaign::merge_shards(spec, {}), relperf::Error);
    // Mixing shards of different splits (1/2 with 2/3) is rejected too.
    const campaign::ShardResult other = campaign::run_shard(spec, 2, 3);
    EXPECT_THROW((void)campaign::merge_shards(spec, {s0, other}),
                 relperf::Error);
    // The valid set still merges.
    EXPECT_NO_THROW((void)campaign::merge_shards(spec, {s1, s0}));
}

TEST(Campaign, MergeRejectsTamperedShardContents) {
    const campaign::CampaignSpec spec = small_spec();
    campaign::ShardResult s0 = campaign::run_shard(spec, 0, 2);
    const campaign::ShardResult s1 = campaign::run_shard(spec, 1, 2);

    // Rebuild s0 with one sample dropped from its first algorithm: the
    // sample-count check must fire.
    core::MeasurementSet tampered;
    for (std::size_t i = 0; i < s0.measurements.size(); ++i) {
        auto samples = std::vector<double>(s0.measurements.samples(i).begin(),
                                           s0.measurements.samples(i).end());
        if (i == 0) samples.pop_back();
        tampered.add(s0.measurements.name(i), std::move(samples));
    }
    s0.measurements = std::move(tampered);
    EXPECT_THROW((void)campaign::merge_shards(spec, {s0, s1}), relperf::Error);
}

TEST(Campaign, BackendChangesThePlanHash) {
    // Two specs identical except for `backend` are different measurement
    // plans: same algorithm on a different backend is a different variant.
    const campaign::CampaignSpec portable = small_spec();
    campaign::CampaignSpec reference = small_spec();
    reference.backend = "reference";
    EXPECT_NE(portable.hash(), reference.hash());

    // The default backend hashes like a pre-backend spec did (the field is
    // omitted from the plan text), so old shard files remain mergeable.
    campaign::CampaignSpec explicit_default = small_spec();
    explicit_default.backend = "portable";
    EXPECT_EQ(portable.hash(), explicit_default.hash());
}

TEST(Campaign, MergeRejectsCrossBackendShardsWithAClearError) {
    const campaign::CampaignSpec spec = small_spec();
    campaign::CampaignSpec other = small_spec();
    other.backend = "reference";

    std::vector<campaign::ShardResult> shards;
    shards.push_back(campaign::run_shard(spec, 0, 2));
    shards.push_back(campaign::run_shard(other, 1, 2));
    try {
        (void)campaign::merge_shards(spec, shards);
        FAIL() << "expected a cross-backend merge to be rejected";
    } catch (const relperf::Error& e) {
        const std::string message = e.what();
        // The error must name the backends, not just a hash mismatch.
        EXPECT_NE(message.find("backend"), std::string::npos) << message;
        EXPECT_NE(message.find("reference"), std::string::npos) << message;
        EXPECT_NE(message.find("portable"), std::string::npos) << message;
    }
}

TEST(Campaign, NonDefaultBackendCampaignMergesAndMatchesItself) {
    // A reference-backend campaign shards and merges exactly like a portable
    // one; for the Sim executor the measured values do not depend on the
    // backend (the analytic model times the math, not the kernels), so this
    // checks the full plumbing end to end.
    campaign::CampaignSpec spec = small_spec();
    spec.backend = "reference";
    const core::MeasurementSet reference = reference_run(spec).measurements;
    std::vector<campaign::ShardResult> shards;
    for (std::size_t i = 0; i < 3; ++i) {
        shards.push_back(campaign::run_shard(spec, i, 3));
        EXPECT_EQ(shards.back().manifest.backend, "reference");
    }
    expect_sets_identical(campaign::merge_shards(spec, shards), reference);
}

TEST(Campaign, RunShardRejectsUnavailableBackend) {
    campaign::CampaignSpec spec = small_spec();
    spec.backend = "warp-core";
    // validate() accepts it (merge-only hosts need no kernels)...
    EXPECT_NO_THROW(spec.validate());
    // ...but measuring a shard on this build must fail up front.
    EXPECT_THROW((void)campaign::run_shard(spec, 0, 2),
                 relperf::InvalidArgument);
    EXPECT_THROW((void)campaign::LocalShardRunner(1).run(spec, 2),
                 relperf::InvalidArgument);
}

TEST(Campaign, ParallelRunnerErrorPathIsRaceFreeAndRethrowsOnce) {
    // Regression guard for the LocalShardRunner error path: with more
    // workers than cores every worker hits the throwing run_shard
    // concurrently, so first_error assignment and the atomic `next` drain
    // race if they are ever unsynchronized (TSan covers this test in CI).
    // Exactly one of the concurrent exceptions must come back out.
    campaign::CampaignSpec spec = small_spec();
    spec.backend = "warp-core";
    for (int round = 0; round < 5; ++round) {
        EXPECT_THROW((void)campaign::LocalShardRunner(8).run(spec, 8),
                     relperf::InvalidArgument);
    }
}

TEST(Campaign, ParallelRunnerHandlesMoreWorkersThanShards) {
    // Workers beyond the shard count must drain the queue and exit without
    // touching results out of range; the survivors' output is bit-identical
    // to the serial run.
    const campaign::CampaignSpec spec = small_spec();
    const std::vector<campaign::ShardResult> serial =
        campaign::LocalShardRunner(1).run(spec, 2);
    const std::vector<campaign::ShardResult> crowded =
        campaign::LocalShardRunner(16).run(spec, 2);
    ASSERT_EQ(serial.size(), crowded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        expect_sets_identical(crowded[i].measurements, serial[i].measurements);
    }
}

TEST(Campaign, RealExecutorCampaignRunsAndMerges) {
    campaign::CampaignSpec spec;
    spec.name = "gtest-real";
    spec.executor = campaign::ExecutorKind::Real;
    spec.sizes = {12, 16};
    spec.iters = 1;
    spec.measurements = 2;
    spec.warmup = 0;
    spec.device_threads = 1;
    spec.accelerator_threads = 1;
    spec.dispatch_delay_us = 0.0;
    spec.switch_delay_us = 0.0;
    spec.clustering_repetitions = 10;

    const std::vector<campaign::ShardResult> shards =
        campaign::LocalShardRunner(2).run(spec, 2);
    const core::MeasurementSet merged = campaign::merge_shards(spec, shards);
    ASSERT_EQ(merged.size(), 4u);
    for (std::size_t i = 0; i < merged.size(); ++i) {
        for (const double s : merged.samples(i)) EXPECT_GT(s, 0.0);
    }
}

namespace {

campaign::CampaignSpec adaptive_spec() {
    campaign::CampaignSpec spec = small_spec();
    spec.measurements = 20;
    spec.adaptive_min = 6;
    spec.adaptive_batch = 4;
    spec.adaptive_stability = 2;
    return spec;
}

} // namespace

TEST(CampaignAdaptive, EndToEndSavesMeasurementsAndKeepsMembership) {
    const campaign::CampaignSpec fixed = [&] {
        campaign::CampaignSpec spec = small_spec();
        spec.measurements = 20;
        return spec;
    }();
    const campaign::CampaignSpec adaptive = adaptive_spec();

    const core::AnalysisResult full = campaign::run_campaign(fixed, 2, 1);
    const core::AnalysisResult early = campaign::run_campaign(adaptive, 2, 1);

    // The acceptance criterion: fewer total measurements, same final
    // performance-class membership.
    EXPECT_LT(early.measurements.total_samples(),
              full.measurements.total_samples());
    // run_campaign restores the true fixed-N cost, so the result's own
    // counters quantify the savings.
    EXPECT_EQ(early.fixed_n_samples,
              early.measurements.size() * adaptive.measurements);
    EXPECT_LT(early.total_samples, early.fixed_n_samples);
    ASSERT_EQ(early.clustering.final_assignment.size(),
              full.clustering.final_assignment.size());
    for (std::size_t alg = 0; alg < full.clustering.final_assignment.size();
         ++alg) {
        EXPECT_EQ(early.clustering.final_rank(alg),
                  full.clustering.final_rank(alg))
            << full.measurements.name(alg);
    }
}

TEST(CampaignAdaptive, ShardManifestsCarryThePlanAndTheCounts) {
    const campaign::CampaignSpec spec = adaptive_spec();
    const campaign::ShardResult shard = campaign::run_shard(spec, 0, 2);
    EXPECT_EQ(shard.manifest.adaptive_min, spec.adaptive_min);
    EXPECT_EQ(shard.manifest.adaptive_batch, spec.adaptive_batch);
    EXPECT_EQ(shard.manifest.adaptive_stability, spec.adaptive_stability);
    ASSERT_EQ(shard.manifest.samples_per_algorithm.size(),
              shard.measurements.size());
    for (std::size_t i = 0; i < shard.measurements.size(); ++i) {
        EXPECT_EQ(shard.manifest.samples_per_algorithm[i],
                  shard.measurements.samples(i).size());
        EXPECT_GE(shard.measurements.samples(i).size(), spec.adaptive_min);
        EXPECT_LE(shard.measurements.samples(i).size(), spec.measurements);
    }
    // Fixed-N shards carry no adaptive manifest fields.
    const campaign::ShardResult fixed = campaign::run_shard(small_spec(), 0, 2);
    EXPECT_EQ(fixed.manifest.adaptive_min, 0u);
    EXPECT_TRUE(fixed.manifest.samples_per_algorithm.empty());
}

TEST(CampaignAdaptive, MergeRejectsMixedAdaptivePlans) {
    const campaign::CampaignSpec fixed = small_spec();
    campaign::CampaignSpec adaptive = small_spec();
    adaptive.adaptive_min = 6;
    adaptive.adaptive_batch = 4;

    const campaign::ShardResult f0 = campaign::run_shard(fixed, 0, 2);
    const campaign::ShardResult f1 = campaign::run_shard(fixed, 1, 2);
    const campaign::ShardResult a0 = campaign::run_shard(adaptive, 0, 2);
    const campaign::ShardResult a1 = campaign::run_shard(adaptive, 1, 2);

    // Fixed shards under an adaptive spec, adaptive shards under a fixed
    // spec, and a mix — all rejected with the adaptive-plan message.
    EXPECT_THROW((void)campaign::merge_shards(adaptive, {f0, f1}),
                 relperf::Error);
    EXPECT_THROW((void)campaign::merge_shards(fixed, {a0, a1}),
                 relperf::Error);
    EXPECT_THROW((void)campaign::merge_shards(adaptive, {a0, f1}),
                 relperf::Error);
    // Differing knobs are a different plan even with adaptive on both sides.
    campaign::CampaignSpec other = adaptive;
    other.adaptive_batch += 1;
    EXPECT_THROW((void)campaign::merge_shards(other, {a0, a1}),
                 relperf::Error);
    EXPECT_NO_THROW((void)campaign::merge_shards(adaptive, {a0, a1}));
}

TEST(CampaignAdaptive, MergeRejectsCountsThePlanCannotReach) {
    const campaign::CampaignSpec spec = adaptive_spec(); // min 6, batch 4
    campaign::ShardResult s0 = campaign::run_shard(spec, 0, 2);
    const campaign::ShardResult s1 = campaign::run_shard(spec, 1, 2);

    // Rebuild s0 with one sample dropped from its first algorithm: the
    // count 6 + k*4 arithmetic no longer works out.
    core::MeasurementSet tampered;
    for (std::size_t i = 0; i < s0.measurements.size(); ++i) {
        auto samples = std::vector<double>(s0.measurements.samples(i).begin(),
                                           s0.measurements.samples(i).end());
        if (i == 0) samples.pop_back();
        tampered.add(s0.measurements.name(i), std::move(samples));
    }
    s0.measurements = std::move(tampered);
    EXPECT_THROW((void)campaign::merge_shards(spec, {s0, s1}), relperf::Error);
}

namespace {

campaign::CampaignSpec coordinated_spec() {
    campaign::CampaignSpec spec = adaptive_spec();
    spec.adaptive_coordinated = true;
    return spec;
}

} // namespace

TEST(CampaignCoordinated, CountsAreKInvariantAndStopHistoryAgrees) {
    // The coordinator's stop decisions watch the merged clustering, so the
    // per-algorithm counts, the round count, the stop-set history and the
    // final clustering must not depend on how the campaign is split.
    const campaign::CampaignSpec spec = coordinated_spec();
    const campaign::CoordinatedCampaignResult k1 =
        campaign::run_coordinated_campaign(spec, 1);
    EXPECT_LT(k1.analysis.total_samples, k1.analysis.fixed_n_samples);
    ASSERT_FALSE(k1.stopset_rounds.empty());
    EXPECT_EQ(k1.stopset_rounds.size(), k1.rounds);
    // The final broadcast stops everyone.
    EXPECT_EQ(k1.stopset_rounds.back(), k1.analysis.measurements.size());

    for (const std::size_t k : {2u, 4u, 8u}) {
        const campaign::CoordinatedCampaignResult kr =
            campaign::run_coordinated_campaign(spec, k);
        EXPECT_EQ(kr.analysis.samples_per_alg, k1.analysis.samples_per_alg)
            << "K = " << k;
        EXPECT_EQ(kr.rounds, k1.rounds);
        EXPECT_EQ(kr.stopset_rounds, k1.stopset_rounds);
        expect_sets_identical(kr.analysis.measurements,
                              k1.analysis.measurements);
        expect_clusterings_identical(kr.analysis.clustering,
                                     k1.analysis.clustering);
        ASSERT_EQ(kr.shards.size(), k);
    }
}

TEST(CampaignCoordinated, SingleShardEqualsShardLocalBitForBit) {
    // With K = 1 the merged clustering IS the shard's clustering, so
    // coordinated and shard-local stopping see identical inputs and must
    // make identical decisions — measurement for measurement.
    const campaign::CampaignSpec coordinated = coordinated_spec();
    const campaign::CampaignSpec shard_local = adaptive_spec();
    const campaign::CoordinatedCampaignResult coord =
        campaign::run_coordinated_campaign(coordinated, 1);
    const campaign::ShardResult local = campaign::run_shard(shard_local, 0, 1);
    expect_sets_identical(coord.analysis.measurements, local.measurements);
    ASSERT_EQ(coord.shards.size(), 1u);
    EXPECT_EQ(coord.shards[0].manifest.samples_per_algorithm,
              local.manifest.samples_per_algorithm);
}

TEST(CampaignCoordinated, ShardManifestsCarryThePlanAndMergeRoundTrips) {
    const campaign::CampaignSpec spec = [] {
        campaign::CampaignSpec s = coordinated_spec();
        s.adaptive_confidence = 0.95;
        return s;
    }();
    const campaign::CoordinatedCampaignResult coord =
        campaign::run_coordinated_campaign(spec, 3);
    for (const campaign::ShardResult& shard : coord.shards) {
        EXPECT_TRUE(shard.manifest.adaptive_coordinated);
        EXPECT_DOUBLE_EQ(shard.manifest.adaptive_confidence, 0.95);
        EXPECT_EQ(shard.manifest.stopset_rounds, coord.stopset_rounds);
        EXPECT_EQ(shard.manifest.spec_hash, spec.hash());
        ASSERT_EQ(shard.manifest.samples_per_algorithm.size(),
                  shard.measurements.size());
        for (std::size_t i = 0; i < shard.measurements.size(); ++i) {
            EXPECT_EQ(shard.manifest.samples_per_algorithm[i],
                      shard.measurements.samples(i).size());
        }
    }

    // The slices merge back to exactly the coordinator's merged set —
    // through the on-disk shard files, like a distributed collect would.
    std::vector<campaign::ShardResult> loaded;
    for (const campaign::ShardResult& shard : coord.shards) {
        const std::string path =
            testing::TempDir() + "relperf_coord_shard_" +
            std::to_string(shard.manifest.shard_index) + ".csv";
        campaign::write_shard_csv(shard, path);
        loaded.push_back(campaign::read_shard_csv(path));
        std::remove(path.c_str());
    }
    expect_sets_identical(campaign::merge_shards(spec, loaded),
                          coord.analysis.measurements);
}

TEST(CampaignCoordinated, MergeRejectsMismatchedCoordinationPlans) {
    const campaign::CampaignSpec spec = coordinated_spec();
    const campaign::CoordinatedCampaignResult coord =
        campaign::run_coordinated_campaign(spec, 2);

    // Shard-local shards under a coordinated spec (and vice versa).
    std::vector<campaign::ShardResult> shards = coord.shards;
    shards[1].manifest.adaptive_coordinated = false;
    EXPECT_THROW((void)campaign::merge_shards(spec, shards), relperf::Error);
    const campaign::CampaignSpec shard_local = adaptive_spec();
    EXPECT_THROW((void)campaign::merge_shards(shard_local, coord.shards),
                 relperf::Error);

    // A shard that stopped on a different rule.
    shards = coord.shards;
    shards[0].manifest.adaptive_confidence = 0.99;
    EXPECT_THROW((void)campaign::merge_shards(spec, shards), relperf::Error);

    // A shard from a different coordinator run (divergent stop-set history).
    shards = coord.shards;
    shards[1].manifest.stopset_rounds.back() += 1;
    EXPECT_THROW((void)campaign::merge_shards(spec, shards), relperf::Error);

    EXPECT_NO_THROW((void)campaign::merge_shards(spec, coord.shards));
}

TEST(CampaignCoordinated, RunShardRejectsCoordinatedSpecs) {
    // A lone shard runner cannot see the merged clustering, so measuring a
    // coordinated spec shard-by-shard would silently produce shard-local
    // counts under a coordinated plan hash.
    const campaign::CampaignSpec spec = coordinated_spec();
    EXPECT_THROW((void)campaign::run_shard(spec, 0, 2),
                 relperf::InvalidArgument);
    EXPECT_THROW((void)campaign::LocalShardRunner(2).run(spec, 2),
                 relperf::InvalidArgument);
}

TEST(CampaignCoordinated, RunCampaignRoutesCoordinatedSpecs) {
    const campaign::CampaignSpec spec = coordinated_spec();
    const core::AnalysisResult via_campaign = campaign::run_campaign(spec, 3);
    const campaign::CoordinatedCampaignResult direct =
        campaign::run_coordinated_campaign(spec, 3);
    expect_sets_identical(via_campaign.measurements,
                          direct.analysis.measurements);
    expect_clusterings_identical(via_campaign.clustering,
                                 direct.analysis.clustering);
    EXPECT_EQ(via_campaign.fixed_n_samples, direct.analysis.fixed_n_samples);
    EXPECT_EQ(via_campaign.total_samples, direct.analysis.total_samples);
}

TEST(CampaignCoordinated, RequiresAnAdaptiveCoordinatedSpec) {
    // Fixed-N specs have no rounds to coordinate; shard-local adaptive specs
    // must go through run_shard/run_campaign.
    EXPECT_THROW(
        (void)campaign::run_coordinated_campaign(small_spec(), 2),
        relperf::Error);
    EXPECT_THROW(
        (void)campaign::run_coordinated_campaign(adaptive_spec(), 2),
        relperf::Error);
}
