//! The result cache's contract, end to end:
//!
//!  * exact hit — zero executor draws, byte-identical re-clustering, across
//!    shard counts (the entry is keyed by the plan, not the split);
//!  * prefix extension — bit-identical to a cold full run (fixed-N,
//!    single-shard adaptive and coordinated adaptive), only the budget delta
//!    drawn, and the entry upgraded in place;
//!  * the CachedSampleSource replay/skip stream algebra;
//!  * cacheability (shard-local adaptive with K > 1 bypasses);
//!  * failure modes: truncated payloads, tampered manifests, dropped rows,
//!    garbage sidecars, unusable directories, leftover temp files — all
//!    degrade to a miss (and self-repair on the next store), never an error;
//!  * deterministic logical-clock LRU eviction.

#include "cache/cached_campaign.hpp"

#include "cache/cached_source.hpp"
#include "cache/result_cache.hpp"
#include "campaign/campaign.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace cache = relperf::cache;
namespace campaign = relperf::campaign;
namespace core = relperf::core;
namespace obs = relperf::obs;
namespace fs = std::filesystem;

namespace {

campaign::CampaignSpec small_spec() {
    campaign::CampaignSpec spec;
    spec.name = "gtest-cache";
    spec.sizes = {32, 64, 128};
    spec.iters = 4;
    spec.platform = "paper-cpu-gpu";
    spec.measurements = 15;
    spec.measurement_seed = 1234;
    spec.clustering_repetitions = 50;
    spec.clustering_seed = 99;
    return spec;
}

campaign::CampaignSpec adaptive_spec() {
    campaign::CampaignSpec spec = small_spec();
    spec.measurements = 20;
    spec.adaptive_min = 6;
    spec.adaptive_batch = 4;
    spec.adaptive_stability = 2;
    return spec;
}

campaign::CampaignSpec coordinated_spec() {
    campaign::CampaignSpec spec = adaptive_spec();
    spec.adaptive_coordinated = true;
    return spec;
}

void expect_sets_identical(const core::MeasurementSet& a,
                           const core::MeasurementSet& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.name(i), b.name(i));
        const auto sa = a.samples(i);
        const auto sb = b.samples(i);
        ASSERT_EQ(sa.size(), sb.size()) << a.name(i);
        for (std::size_t k = 0; k < sa.size(); ++k) {
            EXPECT_EQ(sa[k], sb[k]) << a.name(i) << " sample " << k;
        }
    }
}

void expect_clusterings_identical(const core::Clustering& a,
                                  const core::Clustering& b) {
    ASSERT_EQ(a.cluster_count(), b.cluster_count());
    ASSERT_EQ(a.final_assignment.size(), b.final_assignment.size());
    for (std::size_t alg = 0; alg < a.final_assignment.size(); ++alg) {
        EXPECT_EQ(a.final_assignment[alg].rank, b.final_assignment[alg].rank)
            << "alg " << alg;
        EXPECT_DOUBLE_EQ(a.final_assignment[alg].score,
                         b.final_assignment[alg].score)
            << "alg " << alg;
    }
}

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in) << path;
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
}

void write_file(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << path;
    out << content;
}

/// Fresh cache directory per test, obs off and zeroed around each case.
class CacheTest : public ::testing::Test {
protected:
    void SetUp() override {
        obs::set_metrics_enabled(false);
        obs::set_tracing_enabled(false);
        obs::registry().reset_values();
        dir_ = testing::TempDir() + "relperf_cache_" +
               ::testing::UnitTest::GetInstance()->current_test_info()->name();
        fs::remove_all(dir_);
    }
    void TearDown() override {
        fs::remove_all(dir_);
        obs::set_metrics_enabled(false);
        obs::registry().reset_values();
    }

    [[nodiscard]] cache::ResultCache make_cache() const {
        return cache::ResultCache(cache::CacheConfig{dir_, 0, 0});
    }

    /// The single on-disk file with `extension` ("csv"/"meta") — entries are
    /// content-addressed, so tests locate them by suffix, not by hash.
    [[nodiscard]] std::string only_file(const std::string& extension) const {
        std::vector<std::string> matches;
        for (const fs::directory_entry& entry : fs::directory_iterator(dir_)) {
            if (entry.path().extension() == "." + extension) {
                matches.push_back(entry.path().string());
            }
        }
        EXPECT_EQ(matches.size(), 1u) << "*." << extension << " in " << dir_;
        return matches.empty() ? std::string() : matches.front();
    }

    std::string dir_;
};

} // namespace

TEST_F(CacheTest, ExactHitDrawsNothingAndReclustersByteIdentically) {
    const campaign::CampaignSpec spec = small_spec();
    cache::ResultCache result_cache = make_cache();

    const cache::CachedRunResult cold =
        cache::run_campaign_cached(spec, result_cache, 2);
    EXPECT_EQ(cold.cache, cache::HitKind::Miss);
    EXPECT_FALSE(cold.bypassed);
    EXPECT_EQ(cold.samples_from_cache, 0u);
    EXPECT_EQ(result_cache.stats().entries, 1u);

    obs::set_metrics_enabled(true);
    obs::registry().reset_values();
    const obs::Metrics& m = obs::metrics();
    // Served across a different shard split: the entry is keyed by the plan
    // hash, which does not include K.
    const cache::CachedRunResult warm =
        cache::run_campaign_cached(spec, result_cache, 3);
    EXPECT_EQ(warm.cache, cache::HitKind::Exact);
    EXPECT_EQ(m.samples_total.value(), 0u) << "an exact hit must not draw";
    EXPECT_EQ(m.executions_total.value(), 0u);
    EXPECT_EQ(m.cache_hits_total.value(), 1u);
    EXPECT_EQ(warm.samples_from_cache, warm.analysis.total_samples);
    EXPECT_EQ(m.cache_extension_samples_saved_total.value(),
              warm.samples_from_cache);

    expect_sets_identical(warm.analysis.measurements,
                          cold.analysis.measurements);
    expect_clusterings_identical(warm.analysis.clustering,
                                 cold.analysis.clustering);
    EXPECT_EQ(warm.analysis.fixed_n_samples, cold.analysis.fixed_n_samples);
}

TEST_F(CacheTest, FixedNPrefixExtensionIsBitIdenticalToAColdRun) {
    campaign::CampaignSpec spec = small_spec();
    cache::ResultCache result_cache = make_cache();
    (void)cache::run_campaign_cached(spec, result_cache, 1);

    campaign::CampaignSpec bigger = spec;
    bigger.measurements = 25;
    obs::set_metrics_enabled(true);
    obs::registry().reset_values();
    const obs::Metrics& m = obs::metrics();
    const cache::CachedRunResult extended =
        cache::run_campaign_cached(bigger, result_cache, 1);
    EXPECT_EQ(extended.cache, cache::HitKind::Prefix);
    EXPECT_EQ(m.cache_extensions_total.value(), 1u);
    // Exactly the cached prefix was served and exactly the delta drawn.
    const std::size_t algorithms = extended.analysis.measurements.size();
    EXPECT_EQ(extended.samples_from_cache, algorithms * spec.measurements);
    EXPECT_EQ(m.samples_total.value(),
              algorithms * (bigger.measurements - spec.measurements));

    const core::AnalysisResult cold = campaign::run_campaign(bigger, 1);
    expect_sets_identical(extended.analysis.measurements, cold.measurements);
    expect_clusterings_identical(extended.analysis.clustering,
                                 cold.clustering);

    // The extended result was published under its own plan hash: the bigger
    // budget now hits exactly, and the original entry stays valid for its
    // budget (the byte/entry caps bound the accumulation).
    EXPECT_EQ(result_cache.stats().entries, 2u);
    EXPECT_EQ(result_cache.lookup(bigger).kind, cache::HitKind::Exact);
    EXPECT_EQ(result_cache.lookup(spec).kind, cache::HitKind::Exact);
}

TEST_F(CacheTest, AdaptivePrefixExtensionReplaysTheEngineBitIdentically) {
    // The engine re-runs from scratch over the replayed prefix: identical
    // values in identical order force identical stop decisions, so the
    // extended result equals a cold engine run of the bigger cap.
    campaign::CampaignSpec spec = adaptive_spec();
    spec.measurements = 12;
    cache::ResultCache result_cache = make_cache();
    (void)cache::run_campaign_cached(spec, result_cache, 1);

    campaign::CampaignSpec bigger = spec;
    bigger.measurements = 20;
    const cache::CachedRunResult extended =
        cache::run_campaign_cached(bigger, result_cache, 1);
    EXPECT_EQ(extended.cache, cache::HitKind::Prefix);

    const core::AnalysisResult cold = campaign::run_campaign(bigger, 1);
    expect_sets_identical(extended.analysis.measurements, cold.measurements);
    expect_clusterings_identical(extended.analysis.clustering,
                                 cold.clustering);
    EXPECT_EQ(extended.analysis.samples_per_alg, cold.samples_per_alg);
    EXPECT_EQ(extended.analysis.fixed_n_samples, cold.fixed_n_samples);
}

TEST_F(CacheTest, CoordinatedExactHitRestoresTheStopHistory) {
    const campaign::CampaignSpec spec = coordinated_spec();
    cache::ResultCache result_cache = make_cache();
    const cache::CachedRunResult cold =
        cache::run_campaign_cached(spec, result_cache, 2);
    ASSERT_FALSE(cold.stopset_rounds.empty());

    obs::set_metrics_enabled(true);
    obs::registry().reset_values();
    const cache::CachedRunResult warm =
        cache::run_campaign_cached(spec, result_cache, 2);
    EXPECT_EQ(warm.cache, cache::HitKind::Exact);
    EXPECT_EQ(obs::metrics().samples_total.value(), 0u);
    // The broadcast history rides in the entry manifest, so the CLI's
    // coordinator report is reproducible from the cache alone.
    EXPECT_EQ(warm.stopset_rounds, cold.stopset_rounds);
    EXPECT_EQ(warm.rounds, cold.rounds);
    expect_sets_identical(warm.analysis.measurements,
                          cold.analysis.measurements);
    expect_clusterings_identical(warm.analysis.clustering,
                                 cold.analysis.clustering);
}

TEST_F(CacheTest, CoordinatedPrefixExtensionMatchesAColdCoordinatedRun) {
    campaign::CampaignSpec spec = coordinated_spec();
    cache::ResultCache result_cache = make_cache();
    (void)cache::run_campaign_cached(spec, result_cache, 2);

    campaign::CampaignSpec bigger = spec;
    bigger.measurements = 30;
    const cache::CachedRunResult extended =
        cache::run_campaign_cached(bigger, result_cache, 2);
    EXPECT_EQ(extended.cache, cache::HitKind::Prefix);

    const campaign::CoordinatedCampaignResult cold =
        campaign::run_coordinated_campaign(bigger, 2);
    expect_sets_identical(extended.analysis.measurements,
                          cold.analysis.measurements);
    expect_clusterings_identical(extended.analysis.clustering,
                                 cold.analysis.clustering);
    EXPECT_EQ(extended.stopset_rounds, cold.stopset_rounds);
    EXPECT_EQ(extended.rounds, cold.rounds);
}

TEST_F(CacheTest, ShardLocalAdaptiveWithMultipleShardsBypasses) {
    // Shard-local adaptive counts depend on K, which the plan hash excludes:
    // serving such a run cross-K would silently change results.
    const campaign::CampaignSpec spec = adaptive_spec();
    EXPECT_TRUE(cache::cacheable(small_spec(), 4));
    EXPECT_TRUE(cache::cacheable(spec, 1));
    EXPECT_TRUE(cache::cacheable(coordinated_spec(), 4));
    EXPECT_FALSE(cache::cacheable(spec, 2));

    cache::ResultCache result_cache = make_cache();
    const cache::CachedRunResult run =
        cache::run_campaign_cached(spec, result_cache, 2);
    EXPECT_EQ(run.cache, cache::HitKind::Miss);
    EXPECT_TRUE(run.bypassed);
    EXPECT_EQ(result_cache.stats().entries, 0u) << "bypassed runs not stored";
}

TEST_F(CacheTest, TruncatedPayloadDegradesToAMissAndSelfRepairs) {
    const campaign::CampaignSpec spec = small_spec();
    cache::ResultCache result_cache = make_cache();
    const cache::CachedRunResult cold =
        cache::run_campaign_cached(spec, result_cache, 1);

    const std::string payload = only_file("csv");
    const std::string content = read_file(payload);
    write_file(payload, content.substr(0, content.size() / 2));

    const cache::CachedRunResult repaired =
        cache::run_campaign_cached(spec, result_cache, 1);
    EXPECT_EQ(repaired.cache, cache::HitKind::Miss)
        << "a truncated entry must never be served";
    expect_sets_identical(repaired.analysis.measurements,
                          cold.analysis.measurements);
    // The miss re-measured and re-published; the entry works again.
    EXPECT_EQ(result_cache.lookup(spec).kind, cache::HitKind::Exact);
}

TEST_F(CacheTest, TamperedManifestHashFailsValidation) {
    const campaign::CampaignSpec spec = small_spec();
    cache::ResultCache result_cache = make_cache();
    (void)cache::run_campaign_cached(spec, result_cache, 1);

    const std::string payload = only_file("csv");
    std::string content = read_file(payload);
    const std::size_t pos = content.find("# spec_hash = ");
    ASSERT_NE(pos, std::string::npos);
    // Flip one nibble of the recorded hash: merge_shards must reject the
    // entry as foreign.
    const std::size_t digit = pos + std::string("# spec_hash = ").size();
    content[digit] = content[digit] == '0' ? '1' : '0';
    write_file(payload, content);

    EXPECT_EQ(result_cache.lookup(spec).kind, cache::HitKind::Miss);
}

TEST_F(CacheTest, DroppedSampleRowFailsTheCountCheck) {
    const campaign::CampaignSpec spec = small_spec();
    cache::ResultCache result_cache = make_cache();
    (void)cache::run_campaign_cached(spec, result_cache, 1);

    const std::string payload = only_file("csv");
    const std::string content = read_file(payload);
    // Remove the final data row (keep the trailing newline shape intact).
    const std::size_t last_break =
        content.find_last_of('\n', content.size() - 2);
    ASSERT_NE(last_break, std::string::npos);
    write_file(payload, content.substr(0, last_break + 1));

    EXPECT_EQ(result_cache.lookup(spec).kind, cache::HitKind::Miss);
}

TEST_F(CacheTest, GarbageSidecarIsAdvisoryAndGetsRewritten) {
    const campaign::CampaignSpec spec = small_spec();
    cache::ResultCache result_cache = make_cache();
    (void)cache::run_campaign_cached(spec, result_cache, 1);
    write_file(only_file("meta"), "not a sidecar at all\n");

    // The payload still validates, so the exact tier still serves — and the
    // touch rewrites a well-formed sidecar.
    EXPECT_EQ(result_cache.lookup(spec).kind, cache::HitKind::Exact);
    const std::string rewritten = read_file(only_file("meta"));
    EXPECT_NE(rewritten.find("plan_hash = "), std::string::npos);
    EXPECT_NE(rewritten.find("budget = 15"), std::string::npos);
}

TEST_F(CacheTest, OrphanPayloadWithoutSidecarStillHitsExactly) {
    const campaign::CampaignSpec spec = small_spec();
    cache::ResultCache result_cache = make_cache();
    (void)cache::run_campaign_cached(spec, result_cache, 1);
    fs::remove(only_file("meta"));
    EXPECT_EQ(result_cache.stats().entries, 0u) << "orphan: no sidecar";

    EXPECT_EQ(result_cache.lookup(spec).kind, cache::HitKind::Exact);
    EXPECT_EQ(result_cache.stats().entries, 1u) << "sidecar recreated";
}

TEST_F(CacheTest, UnusableDirectoryDegradesToPassThrough) {
    // The configured path is an existing regular file, so neither the
    // directory scan nor the store can ever succeed — the campaign must
    // still run to completion with a plain miss, twice.
    const std::string blocker = testing::TempDir() + "relperf_cache_blocker";
    write_file(blocker, "in the way\n");
    cache::ResultCache result_cache(cache::CacheConfig{blocker, 0, 0});

    const campaign::CampaignSpec spec = small_spec();
    const core::AnalysisResult reference = campaign::run_campaign(spec, 1);
    for (int round = 0; round < 2; ++round) {
        cache::CachedRunResult run;
        ASSERT_NO_THROW(run = cache::run_campaign_cached(spec, result_cache, 1));
        EXPECT_EQ(run.cache, cache::HitKind::Miss);
        expect_sets_identical(run.analysis.measurements,
                              reference.measurements);
    }
    EXPECT_EQ(result_cache.stats().entries, 0u);
    fs::remove(blocker);
}

TEST_F(CacheTest, RacingWritersOfTheSamePlanLeaveAValidEntry) {
    // Two independent cache handles publish the same plan back to back (the
    // worst interleaving two processes can produce, since temp names are
    // per-process and renames are atomic): last publish wins, and the entry
    // must validate. A stray temp file from a third, crashed writer is inert.
    const campaign::CampaignSpec spec = small_spec();
    const core::AnalysisResult result = campaign::run_campaign(spec, 1);
    cache::ResultCache first = make_cache();
    cache::ResultCache second = make_cache();
    first.store(spec, result.measurements);
    second.store(spec, result.measurements);
    write_file(dir_ + "/deadbeefdeadbeef.csv.tmp.999", "partial");

    EXPECT_EQ(first.stats().entries, 1u);
    const cache::CacheLookup hit = second.lookup(spec);
    EXPECT_EQ(hit.kind, cache::HitKind::Exact);
    expect_sets_identical(hit.merged, result.measurements);
}

TEST_F(CacheTest, EvictionIsLeastRecentlyUsedOnTheLogicalClock) {
    campaign::CampaignSpec a = small_spec();
    campaign::CampaignSpec b = small_spec();
    b.measurement_seed += 1;
    campaign::CampaignSpec c = small_spec();
    c.measurement_seed += 2;
    const core::AnalysisResult run_a = campaign::run_campaign(a, 1);
    const core::AnalysisResult run_b = campaign::run_campaign(b, 1);
    const core::AnalysisResult run_c = campaign::run_campaign(c, 1);

    cache::ResultCache result_cache(cache::CacheConfig{dir_, 2, 0});
    result_cache.store(a, run_a.measurements);
    result_cache.store(b, run_b.measurements);
    EXPECT_EQ(result_cache.stats().entries, 2u);

    // Touch `a` so `b` becomes the oldest, then overflow with `c`.
    EXPECT_EQ(result_cache.lookup(a).kind, cache::HitKind::Exact);
    result_cache.store(c, run_c.measurements);
    EXPECT_EQ(result_cache.stats().entries, 2u);
    EXPECT_EQ(result_cache.lookup(b).kind, cache::HitKind::Miss)
        << "the least recently used entry is the victim";
    EXPECT_EQ(result_cache.lookup(a).kind, cache::HitKind::Exact);
    EXPECT_EQ(result_cache.lookup(c).kind, cache::HitKind::Exact);
}

TEST_F(CacheTest, ByteCapEvictsDownToTheBudget) {
    campaign::CampaignSpec a = small_spec();
    campaign::CampaignSpec b = small_spec();
    b.measurement_seed += 1;
    const core::AnalysisResult run_a = campaign::run_campaign(a, 1);
    const core::AnalysisResult run_b = campaign::run_campaign(b, 1);

    // Measure one entry's on-disk footprint, then cap the cache at one and
    // a half of it: room for one entry, never for two.
    const std::size_t one_entry = [&] {
        cache::ResultCache probe = make_cache();
        probe.store(a, run_a.measurements);
        const std::size_t bytes = probe.stats().bytes;
        fs::remove_all(dir_);
        return bytes;
    }();
    ASSERT_GT(one_entry, 0u);

    const std::size_t cap = one_entry + one_entry / 2;
    cache::ResultCache result_cache(cache::CacheConfig{dir_, 0, cap});
    result_cache.store(a, run_a.measurements);
    result_cache.store(b, run_b.measurements);
    EXPECT_EQ(result_cache.stats().entries, 1u);
    EXPECT_LE(result_cache.stats().bytes, cap);
    EXPECT_EQ(result_cache.lookup(b).kind, cache::HitKind::Exact)
        << "the just-stored entry survives; the older one was evicted";
}

TEST_F(CacheTest, SkipThenDrawEqualsAPureDrawOnTheGlobalSource) {
    // The SampleSource::skip contract the replay path stands on: skipping k
    // samples then drawing m yields exactly samples [k, k+m) of a pure draw.
    const campaign::CampaignSpec spec = small_spec();
    campaign::GlobalSampleSource reference_bundle(spec);
    campaign::GlobalSampleSource skipped_bundle(spec);
    core::SampleSource& reference = reference_bundle.source();
    core::SampleSource& skipped = skipped_bundle.source();
    ASSERT_EQ(reference.count(), skipped.count());
    for (std::size_t i = 0; i < reference.count(); ++i) {
        const std::vector<double> pure = reference.draw(i, 10);
        skipped.skip(i, 4);
        const std::vector<double> tail = skipped.draw(i, 6);
        ASSERT_EQ(tail.size(), 6u);
        for (std::size_t k = 0; k < tail.size(); ++k) {
            EXPECT_EQ(tail[k], pure[4 + k]) << "alg " << i << " sample " << k;
        }
    }
}

TEST_F(CacheTest, CachedSourceReplaysThePrefixAndExtendsSeamlessly) {
    const campaign::CampaignSpec spec = small_spec(); // budget 15
    cache::ResultCache result_cache = make_cache();
    (void)cache::run_campaign_cached(spec, result_cache, 1);
    const cache::CacheLookup hit = result_cache.lookup(spec);
    ASSERT_EQ(hit.kind, cache::HitKind::Exact);

    campaign::GlobalSampleSource cold_bundle(spec);
    campaign::GlobalSampleSource warm_bundle(spec);
    cache::CachedSampleSource replay(warm_bundle.source(), hit.merged);
    core::SampleSource& cold = cold_bundle.source();
    ASSERT_EQ(replay.count(), cold.count());

    std::size_t expected_served = 0;
    for (std::size_t i = 0; i < cold.count(); ++i) {
        const std::vector<double> pure = cold.draw(i, 20);
        if (i % 2 == 0) {
            // Straight through the prefix (15 cached) into fresh territory.
            const std::vector<double> replayed = replay.draw(i, 20);
            ASSERT_EQ(replayed.size(), 20u);
            for (std::size_t k = 0; k < 20; ++k) {
                EXPECT_EQ(replayed[k], pure[k]) << "alg " << i << " at " << k;
            }
            expected_served += 15;
        } else {
            // skip() inside the prefix is free; the draw crosses the
            // boundary and must still line up sample for sample.
            replay.skip(i, 5);
            const std::vector<double> replayed = replay.draw(i, 15);
            ASSERT_EQ(replayed.size(), 15u);
            for (std::size_t k = 0; k < 15; ++k) {
                EXPECT_EQ(replayed[k], pure[5 + k])
                    << "alg " << i << " at " << k;
            }
            expected_served += 10;
        }
    }
    EXPECT_EQ(replay.served(), expected_served);
}

TEST_F(CacheTest, CachedSourceRejectsAMismatchedEntry) {
    const campaign::CampaignSpec spec = small_spec();
    campaign::GlobalSampleSource bundle(spec);
    core::MeasurementSet wrong_count;
    wrong_count.add("algDDD", {1.0});
    EXPECT_THROW(cache::CachedSampleSource(bundle.source(), wrong_count),
                 relperf::Error);
}
