//! End-to-end pipeline over *measured* (not simulated) executions: the paper's
//! footnote-2 recipe — emulate the edge device with one thread and the
//! accelerator with the full machine plus artificial dispatch delays — then
//! cluster the resulting wall-clock distributions.

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "linalg/gemm.hpp"
#include "sim/real_executor.hpp"
#include "workloads/chain.hpp"

#include <gtest/gtest.h>

namespace core = relperf::core;
namespace sim = relperf::sim;
namespace workloads = relperf::workloads;
using relperf::stats::Rng;

TEST(RealPipeline, SingleLoopOffloadClustering) {
    // One compute-heavy task: 1 thread vs all threads, no artificial delay.
    // The accelerator ("A") must win on a big enough kernel, and the
    // pipeline must put algA in a class at least as good as algD.
    //
    // On a single-threaded machine (or a serial build) "all threads" equals
    // one thread, both devices run identical code, and the strict speedup
    // below is decided by scheduler noise — the premise doesn't hold there.
    if (relperf::linalg::gemm_threads() <= 1) {
        GTEST_SKIP() << "accelerator cannot outrun the edge device with "
                        "only one hardware thread";
    }
    const workloads::TaskChain chain =
        workloads::make_rls_chain({192}, 2, "one-task");
    const sim::RealExecutor executor(sim::EmulatedDevice{1, 0.0, 0.0},
                                     sim::EmulatedDevice{0, 0.0, 0.0});
    Rng rng(1);
    const auto assignments = workloads::enumerate_assignments(1);
    core::MeasurementSet set =
        core::measure_assignments_real(executor, chain, assignments, 12, rng, 2);

    const double mean_d = set.summary(set.index_of("algD")).mean;
    const double mean_a = set.summary(set.index_of("algA")).mean;
    EXPECT_LT(mean_a, mean_d); // parallel run is faster

    core::AnalysisConfig config;
    config.clustering.repetitions = 50;
    const core::AnalysisResult result =
        core::analyze_measurements(std::move(set), config);
    EXPECT_LE(result.clustering.final_rank(
                  result.measurements.index_of("algA")),
              result.clustering.final_rank(
                  result.measurements.index_of("algD")));
}

TEST(RealPipeline, DispatchDelayMakesOffloadingSmallTasksLose) {
    // Small task + hefty per-launch delay on the accelerator: the edge
    // device must win (the paper's launch-bound regime for size 50).
    const workloads::TaskChain chain =
        workloads::make_rls_chain({32}, 2, "small-task");
    const sim::RealExecutor executor(sim::EmulatedDevice{1, 0.0, 0.0},
                                     sim::EmulatedDevice{0, 2e-3, 0.0});
    Rng rng(2);
    const auto assignments = workloads::enumerate_assignments(1);
    const core::MeasurementSet set =
        core::measure_assignments_real(executor, chain, assignments, 8, rng, 1);
    EXPECT_LT(set.summary(set.index_of("algD")).mean,
              set.summary(set.index_of("algA")).mean);
}

TEST(RealPipeline, ReportRendersOnRealData) {
    const workloads::TaskChain chain = workloads::make_rls_chain({24, 48}, 1, "two");
    const sim::RealExecutor executor(sim::EmulatedDevice{1, 0.0, 0.0},
                                     sim::EmulatedDevice{0, 0.0, 0.0});
    Rng rng(3);
    core::MeasurementSet set = core::measure_assignments_real(
        executor, chain, workloads::enumerate_assignments(2), 6, rng, 1);
    const std::string summary = core::render_summary_table(set);
    for (const char* alg : {"algDD", "algDA", "algAD", "algAA"}) {
        EXPECT_NE(summary.find(alg), std::string::npos);
    }
}
