//! Parameterized property sweep over the full pipeline: random chains on
//! every platform preset must always yield structurally valid analyses —
//! whatever the offload economics, noise draw or chain shape.

#include "core/pipeline.hpp"
#include "sim/analytic.hpp"
#include "stats/descriptive.hpp"
#include "workloads/generator.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <tuple>

namespace core = relperf::core;
namespace sim = relperf::sim;
namespace workloads = relperf::workloads;

namespace {

sim::Platform platform_by_index(int index) {
    switch (index) {
        case 0: return sim::paper_cpu_gpu_platform();
        case 1: return sim::rpi_server_platform();
        case 2: return sim::smartphone_gpu_platform();
        default: return sim::cpu_only_platform();
    }
}

} // namespace

class PipelineProperty
    : public testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(PipelineProperty, AnalysisInvariantsHoldEverywhere) {
    const auto [platform_index, seed] = GetParam();
    const sim::Platform platform = platform_by_index(platform_index);

    // Random chain (2-4 tasks; sizes/iters bounded so the sweep stays fast).
    workloads::GeneratorConfig gen_config;
    gen_config.min_tasks = 2;
    gen_config.max_tasks = 4;
    gen_config.min_size = 32;
    gen_config.max_size = 320;
    gen_config.min_iters = 1;
    gen_config.max_iters = 12;
    relperf::stats::Rng gen_rng(seed);
    const workloads::TaskChain chain = workloads::random_chain(gen_config, gen_rng);

    const sim::AnalyticCostModel model(platform);
    const sim::SimulatedExecutor executor(model, sim::NoiseModel{});
    const auto assignments = workloads::enumerate_assignments(chain.size());

    core::AnalysisConfig config;
    config.measurements_per_alg = 20;
    config.clustering.repetitions = 30;
    config.measurement_seed = seed * 131 + 7;
    config.clustering.seed = seed;
    const core::AnalysisResult result =
        core::analyze_chain(executor, chain, assignments, config);

    const std::size_t p = assignments.size();
    ASSERT_EQ(result.measurements.size(), p);
    ASSERT_EQ(result.clustering.final_assignment.size(), p);

    // (1) Cluster count within [1, p].
    EXPECT_GE(result.clustering.cluster_count(), 1);
    EXPECT_LE(result.clustering.cluster_count(), static_cast<int>(p));

    // (2) Per-algorithm relative scores are a probability distribution.
    for (std::size_t alg = 0; alg < p; ++alg) {
        double total = 0.0;
        for (int rank = 1; rank <= result.clustering.cluster_count(); ++rank) {
            const double s = result.clustering.score_of(alg, rank);
            EXPECT_GE(s, 0.0);
            EXPECT_LE(s, 1.0);
            total += s;
        }
        EXPECT_NEAR(total, 1.0, 1e-12);
    }

    // (3) Final assignments consistent: rank within range, cumulated score
    // in (0, 1].
    for (const core::FinalAssignment& fin : result.clustering.final_assignment) {
        EXPECT_GE(fin.rank, 1);
        EXPECT_LE(fin.rank, result.clustering.cluster_count());
        EXPECT_GT(fin.score, 0.0);
        EXPECT_LE(fin.score, 1.0 + 1e-12);
    }

    // (4) The measured-fastest algorithm never lands in the worst class when
    // the *final* partition distinguishes at least two classes (sanity of
    // the ordering direction).
    {
        std::size_t fastest = 0;
        double best_mean = std::numeric_limits<double>::infinity();
        int worst_rank = 0;
        for (std::size_t alg = 0; alg < p; ++alg) {
            const double mean =
                relperf::stats::mean(result.measurements.samples(alg));
            if (mean < best_mean) {
                best_mean = mean;
                fastest = alg;
            }
            worst_rank =
                std::max(worst_rank, result.clustering.final_rank(alg));
        }
        if (worst_rank > 1) {
            EXPECT_LT(result.clustering.final_rank(fastest), worst_rank);
        }
    }

    // (5) Determinism: the same configuration reproduces identical final
    // ranks.
    const core::AnalysisResult replay =
        core::analyze_chain(executor, chain, assignments, config);
    for (std::size_t alg = 0; alg < p; ++alg) {
        EXPECT_EQ(replay.clustering.final_rank(alg),
                  result.clustering.final_rank(alg));
    }
}

INSTANTIATE_TEST_SUITE_P(
    PlatformsAndSeeds, PipelineProperty,
    testing::Combine(testing::Values(0, 1, 2, 3),
                     testing::Values<std::uint64_t>(1, 2, 3, 4, 5)));
