//! Integration test for the paper's Figure 1b and the Sec. III relative-score
//! example: four splits of the two-loop code, measured on the calibrated
//! CPU+GPU simulator, clustered with the bootstrap comparator.
//!
//! Paper targets:
//!   N = 500: algAD alone in C1 (significantly better than the rest);
//!            algAA next; algDD and algDA statistically equivalent.
//!   N = 30:  algAD at the threshold of being better than algAA, so algAA's
//!            membership splits between C1 and C2.

#include "core/pipeline.hpp"
#include "sim/profile.hpp"
#include "workloads/chain.hpp"

#include <gtest/gtest.h>

namespace core = relperf::core;
namespace sim = relperf::sim;
namespace workloads = relperf::workloads;

namespace {

core::AnalysisResult run_fig1b(std::size_t n, std::uint64_t seed) {
    const workloads::TaskChain chain = workloads::two_loop_chain();
    static const sim::CalibratedProfile profile = sim::fig1b_profile();
    const sim::SimulatedExecutor executor(profile, sim::NoiseModel{});
    core::AnalysisConfig config;
    config.measurements_per_alg = n;
    config.clustering.repetitions = 100;
    config.measurement_seed = seed;
    config.clustering.seed = seed ^ 0xABCD;
    return core::analyze_chain(executor, chain,
                               workloads::enumerate_assignments(2), config);
}

} // namespace

TEST(Fig1b, N500RecoversThePaperClustering) {
    const core::AnalysisResult r = run_fig1b(500, 42);
    const auto& m = r.measurements;
    const auto& c = r.clustering;

    // Final clustering: C1 {AD}, C2 {AA}, C3 {DD, DA} (paper Sec. III).
    EXPECT_EQ(c.final_rank(m.index_of("algAD")), 1);
    EXPECT_EQ(c.final_rank(m.index_of("algAA")), 2);
    const int dd = c.final_rank(m.index_of("algDD"));
    const int da = c.final_rank(m.index_of("algDA"));
    EXPECT_EQ(dd, da); // equivalent pair shares a class
    EXPECT_EQ(dd, 3);
    // AD is unambiguous at N = 500.
    EXPECT_DOUBLE_EQ(c.score_of(m.index_of("algAD"), 1), 1.0);
}

TEST(Fig1b, N500IsStableAcrossMeasurementSeeds) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull, 5ull, 8ull}) {
        const core::AnalysisResult r = run_fig1b(500, seed);
        const auto& m = r.measurements;
        const auto& c = r.clustering;
        EXPECT_EQ(c.final_rank(m.index_of("algAD")), 1) << "seed " << seed;
        EXPECT_EQ(c.final_rank(m.index_of("algDD")),
                  c.final_rank(m.index_of("algDA")))
            << "seed " << seed;
        EXPECT_LT(c.final_rank(m.index_of("algAA")),
                  c.final_rank(m.index_of("algDD")))
            << "seed " << seed;
    }
}

TEST(Fig1b, N30MakesTheAdAaPairBorderline) {
    // Across measurement seeds, algAA must sometimes join C1 (merged with
    // algAD) and sometimes land in C2 — the paper's relative-score situation
    // (algAA: 0.3 in C1, 0.7 in C2). algAD stays in C1 throughout.
    int aa_touches_c1 = 0;
    int aa_touches_c2 = 0;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        const core::AnalysisResult r = run_fig1b(30, seed);
        const auto& m = r.measurements;
        const auto& c = r.clustering;
        EXPECT_DOUBLE_EQ(c.score_of(m.index_of("algAD"), 1), 1.0) << seed;
        if (c.score_of(m.index_of("algAA"), 1) > 0.05) ++aa_touches_c1;
        if (c.score_of(m.index_of("algAA"), 2) > 0.05) ++aa_touches_c2;
    }
    EXPECT_GE(aa_touches_c1, 1);
    EXPECT_GE(aa_touches_c2, 6);
}

TEST(Fig1b, MeasurementDistributionsMatchTheFigureShape) {
    const core::AnalysisResult r = run_fig1b(500, 7);
    const auto& m = r.measurements;
    const auto mean_of = [&](const char* name) {
        return m.summary(m.index_of(name)).mean;
    };
    // AD fastest by a wide margin; DD ~ DA within a couple of ms.
    EXPECT_LT(mean_of("algAD") * 1.3, mean_of("algDD"));
    EXPECT_LT(mean_of("algAD"), mean_of("algAA"));
    EXPECT_NEAR(mean_of("algDD"), mean_of("algDA"), 0.004);
    // Noise produces visible spread (the figure shows distributions, not
    // points).
    EXPECT_GT(m.summary(m.index_of("algDD")).stddev, 0.002);
}
