//! Integration test for the paper's Section IV speed-up discussion:
//! "for a small loop size of n = 10 ... the mean execution time of algDDA is
//! just 0.002 s [better] than algDDD and the speed up is approximately 1.05.
//! When n becomes larger, the speed up increases."

#include "sim/executor.hpp"
#include "sim/profile.hpp"
#include "stats/descriptive.hpp"
#include "workloads/chain.hpp"

#include <gtest/gtest.h>

namespace sim = relperf::sim;
namespace workloads = relperf::workloads;
using relperf::stats::Rng;
using workloads::DeviceAssignment;

namespace {

double measured_mean(const sim::SimulatedExecutor& exec, std::size_t iters,
                     const char* assignment, std::uint64_t seed) {
    const workloads::TaskChain chain = workloads::paper_rls_chain(iters);
    Rng rng(seed);
    const auto samples = exec.measure(chain, DeviceAssignment(assignment), 100, rng);
    return relperf::stats::mean(samples);
}

} // namespace

TEST(Speedup, PaperNumbersAtN10) {
    const sim::CalibratedProfile profile = sim::paper_rls_profile();
    const sim::SimulatedExecutor exec(profile, sim::NoiseModel{});
    const double ddd = measured_mean(exec, 10, "DDD", 1);
    const double dda = measured_mean(exec, 10, "DDA", 2);
    // Mean gap ~ 0.002-0.005 s, speed-up ~ 1.05.
    EXPECT_GT(ddd - dda, 0.001);
    EXPECT_LT(ddd - dda, 0.007);
    EXPECT_GT(ddd / dda, 1.02);
    EXPECT_LT(ddd / dda, 1.15);
}

TEST(Speedup, GrowsWithIterationCount) {
    const sim::CalibratedProfile profile = sim::paper_rls_profile();
    const sim::SimulatedExecutor exec(profile, sim::NoiseModel::none());
    double prev_speedup = 0.0;
    for (const std::size_t n : {10u, 20u, 50u, 100u}) {
        const workloads::TaskChain chain = workloads::paper_rls_chain(n);
        const double ddd = exec.expected_seconds(chain, DeviceAssignment("DDD"));
        const double dda = exec.expected_seconds(chain, DeviceAssignment("DDA"));
        const double speedup = ddd / dda;
        EXPECT_GT(speedup, prev_speedup) << "n = " << n;
        prev_speedup = speedup;
    }
    // Asymptotically the per-iteration ratio of L3 bounds the gain.
    EXPECT_LT(prev_speedup, 1.35);
}

TEST(Speedup, CrossoverAtSmallN) {
    // Below the crossover, offloading L3 does not pay (staging dominates);
    // the paper's n = 10 sits above it.
    const sim::CalibratedProfile profile = sim::paper_rls_profile();
    const sim::SimulatedExecutor exec(profile, sim::NoiseModel::none());

    bool found_crossover = false;
    bool dda_wins_somewhere = false;
    bool ddd_wins_somewhere = false;
    for (std::size_t n = 1; n <= 16; ++n) {
        const workloads::TaskChain chain = workloads::paper_rls_chain(n);
        const double ddd = exec.expected_seconds(chain, DeviceAssignment("DDD"));
        const double dda = exec.expected_seconds(chain, DeviceAssignment("DDA"));
        if (ddd > dda) dda_wins_somewhere = true;
        if (dda > ddd) ddd_wins_somewhere = true;
        if (dda_wins_somewhere && ddd_wins_somewhere) found_crossover = true;
    }
    EXPECT_TRUE(found_crossover);
    // Direction: DDD wins at n = 1, DDA wins at n = 16.
    const double ddd1 = exec.expected_seconds(workloads::paper_rls_chain(1),
                                              DeviceAssignment("DDD"));
    const double dda1 = exec.expected_seconds(workloads::paper_rls_chain(1),
                                              DeviceAssignment("DDA"));
    EXPECT_LT(ddd1, dda1);
}
