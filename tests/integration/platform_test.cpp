//! Cross-platform integration: the clusters are "specific to a given
//! computing architecture" (paper Sec. I) — the same chain must cluster
//! differently on different simulated platforms, and the analytic cost model
//! must produce sensible orderings on each preset.

#include "core/pipeline.hpp"
#include "sim/analytic.hpp"
#include "workloads/chain.hpp"

#include <gtest/gtest.h>

namespace core = relperf::core;
namespace sim = relperf::sim;
namespace workloads = relperf::workloads;
using workloads::DeviceAssignment;

namespace {

core::AnalysisResult analyze_on(const sim::Platform& platform,
                                const workloads::TaskChain& chain) {
    const sim::AnalyticCostModel model(platform);
    const sim::SimulatedExecutor executor(model, sim::NoiseModel{});
    core::AnalysisConfig config;
    config.measurements_per_alg = 30;
    config.clustering.repetitions = 50;
    return core::analyze_chain(executor, chain,
                               workloads::enumerate_assignments(chain.size()),
                               config);
}

} // namespace

TEST(PlatformSweep, RpiOffloadsEverythingBigOverSlowLink) {
    // On the Raspberry Pi + LAN server preset the device is ~100x slower
    // than the server; for a compute-heavy chain the all-offload assignment
    // must beat the all-local one despite the slow link.
    const workloads::TaskChain chain = workloads::make_rls_chain({256, 256}, 10);
    const sim::AnalyticCostModel model(sim::rpi_server_platform());
    const sim::SimulatedExecutor exec(model, sim::NoiseModel::none());
    EXPECT_LT(exec.expected_seconds(chain, DeviceAssignment("AA")),
              exec.expected_seconds(chain, DeviceAssignment("DD")));
}

TEST(PlatformSweep, TinyTasksStayLocalEverywhere) {
    // Launch overheads + link latency make offloading size-16 tasks lose on
    // every preset.
    const workloads::TaskChain chain = workloads::make_rls_chain({16}, 2);
    for (const sim::Platform& platform :
         {sim::paper_cpu_gpu_platform(), sim::rpi_server_platform(),
          sim::smartphone_gpu_platform()}) {
        const sim::AnalyticCostModel model(platform);
        const sim::SimulatedExecutor exec(model, sim::NoiseModel::none());
        EXPECT_LT(exec.expected_seconds(chain, DeviceAssignment("D")),
                  exec.expected_seconds(chain, DeviceAssignment("A")))
            << platform.name;
    }
}

TEST(PlatformSweep, ClusteringsDifferAcrossPlatforms) {
    const workloads::TaskChain chain = workloads::make_rls_chain({64, 256}, 5);
    const core::AnalysisResult on_rpi = analyze_on(sim::rpi_server_platform(), chain);
    const core::AnalysisResult on_phone =
        analyze_on(sim::smartphone_gpu_platform(), chain);

    // Extract final rank vectors in assignment order.
    std::vector<int> ranks_rpi;
    std::vector<int> ranks_phone;
    for (std::size_t i = 0; i < 4; ++i) {
        ranks_rpi.push_back(on_rpi.clustering.final_assignment[i].rank);
        ranks_phone.push_back(on_phone.clustering.final_assignment[i].rank);
    }
    // The platforms have opposite offload economics for this chain; the
    // cluster structures must differ somewhere.
    EXPECT_NE(ranks_rpi, ranks_phone);
}

TEST(PlatformSweep, CpuOnlyPlatformTreatsPlacementsSymmetrically) {
    // Identical cores, fast shared-memory "link": placements are nearly
    // interchangeable, so everything clusters together.
    const workloads::TaskChain chain = workloads::make_rls_chain({128}, 3);
    const core::AnalysisResult r = analyze_on(sim::cpu_only_platform(), chain);
    EXPECT_EQ(r.clustering.final_rank(r.measurements.index_of("algD")),
              r.clustering.final_rank(r.measurements.index_of("algA")));
}
