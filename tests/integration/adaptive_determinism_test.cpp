//! The adaptive refactor's hard invariant, asserted end to end: with
//! adaptive off (`max_n == min_n`, i.e. spec.adaptive_min == measurements)
//! the engine-backed paths reproduce the legacy fixed-N batch bit for bit —
//! through core::analyze_chain and through the campaign shard -> merge round
//! trip, for K in {1, 3}, on the simulated and the real executor, over plain
//! assignments and placement x backend variants. (Real-executor *values* are
//! wall-clock and can never be compared across runs; there the invariant is
//! the structure: same algorithms, same counts, same stream consumption.)

#include "campaign/campaign.hpp"
#include "core/pipeline.hpp"
#include "sim/analytic.hpp"
#include "sim/profile.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace campaign = relperf::campaign;
namespace core = relperf::core;
namespace sim = relperf::sim;
namespace workloads = relperf::workloads;
using relperf::stats::Rng;

namespace {

struct Axis {
    bool variants = false;
    const char* label = "assignments";
};

campaign::CampaignSpec base_spec(campaign::ExecutorKind executor,
                                 bool variants) {
    campaign::CampaignSpec spec;
    spec.name = "adaptive-invariant";
    spec.executor = executor;
    spec.iters = executor == campaign::ExecutorKind::Real ? 1 : 3;
    spec.measurement_seed = 2024;
    spec.clustering_repetitions = 25;
    spec.bootstrap_rounds = 40;
    spec.clustering_seed = 7;
    if (variants) {
        spec.sizes = {24, 40}; // (2*2)^2 = 16 variants
        spec.variant_backends = {"portable", "reference"};
    } else {
        spec.sizes = {24, 40, 56}; // 2^3 = 8 assignments
    }
    if (executor == campaign::ExecutorKind::Real) {
        spec.measurements = 3;
        spec.device_threads = 1;
        spec.accelerator_threads = 1;
        spec.dispatch_delay_us = 0.0;
        spec.switch_delay_us = 0.0;
    } else {
        spec.measurements = 8;
    }
    return spec;
}

/// The same plan with the engine forced on but early stopping impossible
/// (min == max). Hash and manifests differ — the measurements must not.
campaign::CampaignSpec engine_off_spec(campaign::CampaignSpec spec) {
    spec.adaptive_min = spec.measurements;
    return spec;
}

void expect_sets_identical(const core::MeasurementSet& legacy,
                           const core::MeasurementSet& engine,
                           bool compare_values) {
    ASSERT_EQ(legacy.size(), engine.size());
    for (std::size_t i = 0; i < legacy.size(); ++i) {
        EXPECT_EQ(legacy.name(i), engine.name(i));
        const auto a = legacy.samples(i);
        const auto b = engine.samples(i);
        ASSERT_EQ(a.size(), b.size()) << legacy.name(i);
        if (!compare_values) continue;
        for (std::size_t k = 0; k < a.size(); ++k) {
            EXPECT_EQ(a[k], b[k]) << legacy.name(i) << " sample " << k;
        }
    }
}

void expect_clusterings_identical(const core::Clustering& a,
                                  const core::Clustering& b) {
    ASSERT_EQ(a.cluster_count(), b.cluster_count());
    ASSERT_EQ(a.final_assignment.size(), b.final_assignment.size());
    for (std::size_t alg = 0; alg < a.final_assignment.size(); ++alg) {
        EXPECT_EQ(a.final_assignment[alg].rank, b.final_assignment[alg].rank);
        EXPECT_DOUBLE_EQ(a.final_assignment[alg].score,
                         b.final_assignment[alg].score);
    }
}

} // namespace

TEST(AdaptiveOffInvariant, CampaignMergeIsBitIdenticalOnSim) {
    for (const Axis axis : {Axis{false, "assignments"}, Axis{true, "variants"}}) {
        const campaign::CampaignSpec legacy =
            base_spec(campaign::ExecutorKind::Sim, axis.variants);
        const campaign::CampaignSpec engine = engine_off_spec(legacy);
        EXPECT_NE(legacy.hash(), engine.hash()); // different plans on paper...
        for (const std::size_t k : {std::size_t{1}, std::size_t{3}}) {
            const core::AnalysisResult a = campaign::run_campaign(legacy, k, 1);
            const core::AnalysisResult b = campaign::run_campaign(engine, k, 1);
            SCOPED_TRACE(std::string(axis.label) + " K=" + std::to_string(k));
            expect_sets_identical(a.measurements, b.measurements, true);
            expect_clusterings_identical(a.clustering, b.clustering);
        }
    }
}

TEST(AdaptiveOffInvariant, CampaignMergeKeepsStructureOnReal) {
    for (const Axis axis : {Axis{false, "assignments"}, Axis{true, "variants"}}) {
        const campaign::CampaignSpec legacy =
            base_spec(campaign::ExecutorKind::Real, axis.variants);
        const campaign::CampaignSpec engine = engine_off_spec(legacy);
        for (const std::size_t k : {std::size_t{1}, std::size_t{3}}) {
            const core::AnalysisResult a = campaign::run_campaign(legacy, k, 1);
            const core::AnalysisResult b = campaign::run_campaign(engine, k, 1);
            SCOPED_TRACE(std::string(axis.label) + " K=" + std::to_string(k));
            // Wall-clock values differ run to run by nature; names and
            // per-algorithm counts must agree exactly.
            expect_sets_identical(a.measurements, b.measurements, false);
        }
    }
}

TEST(AdaptiveOffInvariant, ShardFileRoundTripIsBitIdentical) {
    // The CSV persistence of an engine-backed shard (manifest adaptive lines
    // included) merges to the same bytes as the in-memory path.
    const campaign::CampaignSpec spec =
        engine_off_spec(base_spec(campaign::ExecutorKind::Sim, false));
    std::vector<campaign::ShardResult> in_memory;
    std::vector<campaign::ShardResult> reloaded;
    for (std::size_t i = 0; i < 3; ++i) {
        in_memory.push_back(campaign::run_shard(spec, i, 3));
        const std::string path = testing::TempDir() + "adaptive_off_shard_" +
                                 std::to_string(i) + ".csv";
        campaign::write_shard_csv(in_memory.back(), path);
        reloaded.push_back(campaign::read_shard_csv(path));
        std::remove(path.c_str());
    }
    const core::MeasurementSet a = campaign::merge_shards(spec, in_memory);
    const core::MeasurementSet b = campaign::merge_shards(spec, reloaded);
    expect_sets_identical(a, b, true);
}

TEST(AdaptiveOffInvariant, AnalyzeChainMatchesLegacyBitForBit) {
    const workloads::TaskChain chain = workloads::paper_rls_chain(10);
    const sim::CalibratedProfile profile = sim::paper_rls_profile();
    const sim::SimulatedExecutor executor(profile, sim::NoiseModel{});
    const auto assignments = workloads::enumerate_assignments(3);

    core::AnalysisConfig legacy;
    legacy.measurements_per_alg = 12;
    legacy.clustering.repetitions = 25;

    core::AnalysisConfig engine = legacy;
    core::AdaptiveConfig off;
    off.min_n = off.max_n = 12;
    engine.adaptive = off;

    const core::AnalysisResult a =
        core::analyze_chain(executor, chain, assignments, legacy);
    const core::AnalysisResult b =
        core::analyze_chain(executor, chain, assignments, engine);
    expect_sets_identical(a.measurements, b.measurements, true);
    expect_clusterings_identical(a.clustering, b.clustering);
    EXPECT_EQ(b.total_samples, b.fixed_n_samples);
    EXPECT_EQ(a.samples_per_alg, b.samples_per_alg);
}

TEST(AdaptiveCampaign, ShardedRunIsDeterministicAndPrefixOfFixed) {
    campaign::CampaignSpec fixed =
        base_spec(campaign::ExecutorKind::Sim, false);
    fixed.measurements = 20;
    campaign::CampaignSpec adaptive = fixed;
    adaptive.adaptive_min = 6;
    adaptive.adaptive_batch = 4;
    adaptive.adaptive_stability = 2;

    const core::AnalysisResult full = campaign::run_campaign(fixed, 3, 1);
    const core::AnalysisResult once = campaign::run_campaign(adaptive, 3, 1);
    const core::AnalysisResult twice = campaign::run_campaign(adaptive, 3, 1);

    // Deterministic: the same adaptive plan keeps the same counts + values.
    expect_sets_identical(once.measurements, twice.measurements, true);

    // Prefix: every algorithm's adaptive sample is the head of its fixed-N
    // sample — early stopping can shorten, never perturb.
    ASSERT_EQ(once.measurements.size(), full.measurements.size());
    std::size_t total = 0;
    for (std::size_t i = 0; i < full.measurements.size(); ++i) {
        const auto grown = once.measurements.samples(i);
        const auto reference = full.measurements.samples(i);
        ASSERT_GE(grown.size(), adaptive.adaptive_min);
        ASSERT_LE(grown.size(), reference.size());
        total += grown.size();
        for (std::size_t k = 0; k < grown.size(); ++k) {
            EXPECT_EQ(grown[k], reference[k])
                << full.measurements.name(i) << " sample " << k;
        }
    }
    EXPECT_EQ(total, once.measurements.total_samples());
}

TEST(CoordinatedCampaign, DeterministicAcrossRunsAndShardCounts) {
    // The coordinated round loop is one global engine run; splitting it over
    // K shards is bookkeeping. Same plan -> same bits, for any K, every time.
    campaign::CampaignSpec spec = base_spec(campaign::ExecutorKind::Sim, false);
    spec.measurements = 20;
    spec.adaptive_min = 6;
    spec.adaptive_batch = 4;
    spec.adaptive_stability = 2;
    spec.adaptive_coordinated = true;

    const campaign::CoordinatedCampaignResult first =
        campaign::run_coordinated_campaign(spec, 1);
    for (const std::size_t k : {std::size_t{1}, std::size_t{3}}) {
        const campaign::CoordinatedCampaignResult again =
            campaign::run_coordinated_campaign(spec, k);
        SCOPED_TRACE("K=" + std::to_string(k));
        expect_sets_identical(first.analysis.measurements,
                              again.analysis.measurements, true);
        expect_clusterings_identical(first.analysis.clustering,
                                     again.analysis.clustering);
        EXPECT_EQ(again.rounds, first.rounds);
        EXPECT_EQ(again.stopset_rounds, first.stopset_rounds);
    }
}

TEST(CoordinatedCampaign, SamplesStayAPrefixOfTheFixedNPlan) {
    // Coordinated stopping changes *when* algorithms stop, never the stream
    // an algorithm draws from: each sample list is the head of the fixed-N
    // list, for the stability rule and the confidence rule alike.
    campaign::CampaignSpec fixed =
        base_spec(campaign::ExecutorKind::Sim, false);
    fixed.measurements = 20;
    const core::AnalysisResult full = campaign::run_campaign(fixed, 3, 1);

    campaign::CampaignSpec coordinated = fixed;
    coordinated.adaptive_min = 6;
    coordinated.adaptive_batch = 4;
    coordinated.adaptive_stability = 2;
    coordinated.adaptive_coordinated = true;
    for (const double confidence : {0.0, 0.95}) {
        coordinated.adaptive_confidence = confidence;
        const campaign::CoordinatedCampaignResult coord =
            campaign::run_coordinated_campaign(coordinated, 3);
        SCOPED_TRACE(confidence == 0.0 ? "stability" : "confidence");
        ASSERT_EQ(coord.analysis.measurements.size(), full.measurements.size());
        EXPECT_LT(coord.analysis.total_samples, full.total_samples);
        for (std::size_t i = 0; i < full.measurements.size(); ++i) {
            const auto grown = coord.analysis.measurements.samples(i);
            const auto reference = full.measurements.samples(i);
            ASSERT_GE(grown.size(), coordinated.adaptive_min);
            ASSERT_LE(grown.size(), reference.size());
            for (std::size_t k = 0; k < grown.size(); ++k) {
                EXPECT_EQ(grown[k], reference[k])
                    << full.measurements.name(i) << " sample " << k;
            }
        }
    }
}

TEST(CoordinatedCampaign, SingleShardMatchesShardLocalStopping) {
    // With one shard the coordinator's merged clustering is the shard's own
    // clustering, so coordinated and shard-local adaptive runs coincide.
    campaign::CampaignSpec local = base_spec(campaign::ExecutorKind::Sim, false);
    local.measurements = 20;
    local.adaptive_min = 6;
    local.adaptive_batch = 4;
    local.adaptive_stability = 2;
    campaign::CampaignSpec coordinated = local;
    coordinated.adaptive_coordinated = true;

    const campaign::ShardResult shard = campaign::run_shard(local, 0, 1);
    const campaign::CoordinatedCampaignResult coord =
        campaign::run_coordinated_campaign(coordinated, 1);
    expect_sets_identical(coord.analysis.measurements, shard.measurements,
                          true);
}
