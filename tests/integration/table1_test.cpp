//! Integration test for the paper's Table I: the eight splits of the
//! three-task RLS chain (sizes 50/75/300, n = 10), N = 30 measurements,
//! Rep = 100 clustering repetitions.
//!
//! Reproduction targets (shape, per DESIGN.md):
//!   * algDDA is the winner (C1, score 1.0);
//!   * algDDD lands in the second class ("not so bad", paper Sec. IV);
//!   * algDAA sits at the top, straddling C1/C2 across samples;
//!   * every algorithm that offloads L1 lands in a middle band;
//!   * algAAD is clearly the worst;
//!   * around five performance classes are found.

#include "core/pipeline.hpp"
#include "sim/profile.hpp"
#include "workloads/chain.hpp"

#include <gtest/gtest.h>

#include <set>

namespace core = relperf::core;
namespace sim = relperf::sim;
namespace workloads = relperf::workloads;

namespace {

core::AnalysisResult run_table1(std::uint64_t seed) {
    const workloads::TaskChain chain = workloads::paper_rls_chain(10);
    static const sim::CalibratedProfile profile = sim::paper_rls_profile();
    const sim::SimulatedExecutor executor(profile, sim::NoiseModel{});
    core::AnalysisConfig config;
    config.measurements_per_alg = 30;
    config.clustering.repetitions = 100;
    config.measurement_seed = seed;
    config.clustering.seed = seed * 31 + 1;
    return core::analyze_chain(executor, chain,
                               workloads::enumerate_assignments(3), config);
}

} // namespace

TEST(Table1, WinnerAndLoserAreUnambiguous) {
    for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
        const core::AnalysisResult r = run_table1(seed);
        const auto& m = r.measurements;
        const auto& c = r.clustering;
        // algDDA always ends in the best class.
        EXPECT_EQ(c.final_rank(m.index_of("algDDA")), 1) << "seed " << seed;
        // algAAD always ends in the worst class.
        const int aad = c.final_rank(m.index_of("algAAD"));
        for (const char* alg :
             {"algDDD", "algDDA", "algDAD", "algDAA", "algADD", "algADA", "algAAA"}) {
            EXPECT_LT(c.final_rank(m.index_of(alg)), aad)
                << "seed " << seed << " alg " << alg;
        }
    }
}

TEST(Table1, DddIsSecondClassAndAheadOfL1Offloaders) {
    const core::AnalysisResult r = run_table1(42);
    const auto& m = r.measurements;
    const auto& c = r.clustering;
    const int ddd = c.final_rank(m.index_of("algDDD"));
    EXPECT_EQ(ddd, 2);
    for (const char* alg : {"algADD", "algADA", "algAAA", "algAAD"}) {
        EXPECT_GT(c.final_rank(m.index_of(alg)), ddd) << alg;
    }
}

TEST(Table1, DaaStaysInTheTopTwoClasses) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull, 6ull}) {
        const core::AnalysisResult r = run_table1(seed);
        const int rank =
            r.clustering.final_rank(r.measurements.index_of("algDAA"));
        EXPECT_GE(rank, 1) << "seed " << seed;
        EXPECT_LE(rank, 2) << "seed " << seed;
    }
}

TEST(Table1, MiddleBandGroupsTheL1Offloaders) {
    const core::AnalysisResult r = run_table1(42);
    const auto& m = r.measurements;
    const auto& c = r.clustering;
    // ADA/ADD/AAA/DAD all between DDD and AAD.
    const int ddd = c.final_rank(m.index_of("algDDD"));
    const int aad = c.final_rank(m.index_of("algAAD"));
    for (const char* alg : {"algADA", "algADD", "algAAA", "algDAD"}) {
        const int rank = c.final_rank(m.index_of(alg));
        EXPECT_GT(rank, ddd) << alg;
        EXPECT_LT(rank, aad) << alg;
    }
}

TEST(Table1, AboutFivePerformanceClasses) {
    for (const std::uint64_t seed : {7ull, 14ull, 21ull, 28ull}) {
        const core::AnalysisResult r = run_table1(seed);
        std::set<int> final_ranks;
        for (const auto& fin : r.clustering.final_assignment) {
            final_ranks.insert(fin.rank);
        }
        EXPECT_GE(final_ranks.size(), 4u) << "seed " << seed;
        EXPECT_LE(final_ranks.size(), 6u) << "seed " << seed;
    }
}

TEST(Table1, RelativeScoresRevealStraddlers) {
    // Across several samples, at least one algorithm must appear in two
    // adjacent clusters with non-trivial scores (the paper's DAA at 0.6/0.4
    // and DAD at 0.7/0.3).
    int straddlers_seen = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const core::AnalysisResult r = run_table1(seed);
        const auto& c = r.clustering;
        for (std::size_t alg = 0; alg < 8; ++alg) {
            for (int rank = 1; rank < c.cluster_count(); ++rank) {
                if (c.score_of(alg, rank) >= 0.1 &&
                    c.score_of(alg, rank + 1) >= 0.1) {
                    ++straddlers_seen;
                }
            }
        }
    }
    EXPECT_GE(straddlers_seen, 3);
}
