//! Variant pricing in the simulated apparatus: per-backend throughput
//! multipliers (Platform::backend_gains), the bit-identical guarantee for
//! 1.0-multiplier backends, and per-task ScopedBackend selection in the
//! RealExecutor (verified through a registered counting backend).

#include "core/pipeline.hpp"
#include "linalg/backend.hpp"
#include "sim/analytic.hpp"
#include "sim/executor.hpp"
#include "sim/real_executor.hpp"
#include "sim/spec.hpp"
#include "support/error.hpp"
#include "workloads/chain.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace linalg = relperf::linalg;
namespace sim = relperf::sim;
namespace workloads = relperf::workloads;
using relperf::stats::Rng;
using workloads::DeviceAssignment;
using workloads::VariantAssignment;

namespace {

sim::Platform gained_platform() {
    sim::Platform p = sim::paper_cpu_gpu_platform();
    p.backend_gains.entries = {
        {"blas", 0.5, 0.9},      // vendor kernels: 2x faster on the CPU
        {"reference", 3.0, 1.0}, // textbook loops: 3x slower on the CPU
    };
    return p;
}

workloads::TaskChain sim_chain() {
    return workloads::make_rls_chain({50, 75, 300}, 10, "variant-sim");
}

} // namespace

TEST(BackendGains, LookupDefaultsToOne) {
    const sim::Platform p = gained_platform();
    EXPECT_DOUBLE_EQ(p.backend_gains.device_multiplier("blas"), 0.5);
    EXPECT_DOUBLE_EQ(p.backend_gains.accelerator_multiplier("blas"), 0.9);
    EXPECT_DOUBLE_EQ(p.backend_gains.device_multiplier("portable"), 1.0);
    EXPECT_DOUBLE_EQ(p.backend_gains.device_multiplier(""), 1.0);
}

TEST(BackendGains, ValidateRejectsBadEntries) {
    sim::Platform p = sim::paper_cpu_gpu_platform();
    p.backend_gains.entries = {{"blas", 0.0, 1.0}};
    EXPECT_THROW(p.validate(), relperf::InvalidArgument);
    p.backend_gains.entries = {{"", 1.0, 1.0}};
    EXPECT_THROW(p.validate(), relperf::InvalidArgument);
    p.backend_gains.entries = {{"blas", 1.0, 1.0}, {"blas", 2.0, 1.0}};
    EXPECT_THROW(p.validate(), relperf::InvalidArgument);
}

TEST(AnalyticCostModel, BackendMultiplierComesFromThePlatform) {
    const sim::AnalyticCostModel model(gained_platform());
    EXPECT_DOUBLE_EQ(model.backend_multiplier("blas", workloads::Placement::Device),
                     0.5);
    EXPECT_DOUBLE_EQ(
        model.backend_multiplier("blas", workloads::Placement::Accelerator), 0.9);
    EXPECT_DOUBLE_EQ(
        model.backend_multiplier("unknown", workloads::Placement::Device), 1.0);
}

TEST(SimulatedExecutor, VariantWithUnitMultipliersIsBitIdentical) {
    // A platform without gains prices every backend at 1.0: the variant path
    // must reproduce the plain path bit for bit, noise included.
    const sim::AnalyticCostModel model(
        sim::AnalyticCostModel(sim::paper_cpu_gpu_platform()));
    const sim::SimulatedExecutor exec(model, sim::NoiseModel{});
    const workloads::TaskChain chain = sim_chain();
    Rng r1(7);
    Rng r2(7);
    const auto plain =
        exec.measure(chain, DeviceAssignment("DAD"), 10, r1);
    const auto variant =
        exec.measure(chain, VariantAssignment("D:blas,A:reference,D"), 10, r2);
    ASSERT_EQ(plain.size(), variant.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_DOUBLE_EQ(plain[i], variant[i]);
    }
}

TEST(SimulatedExecutor, GainsScaleTheComputePartOnly) {
    const sim::AnalyticCostModel model(gained_platform());
    const sim::SimulatedExecutor exec(model, sim::NoiseModel::none());
    const workloads::TaskChain chain = sim_chain();

    const sim::TimeBreakdown base =
        exec.expected_breakdown(chain, VariantAssignment("DDD"));
    const sim::TimeBreakdown slow =
        exec.expected_breakdown(chain, VariantAssignment(
                                           "D:reference,D:reference,D:reference"));
    const sim::TimeBreakdown fast = exec.expected_breakdown(
        chain, VariantAssignment("D:blas,D:blas,D:blas"));

    // All-device chains have no staging, so the multipliers act exactly.
    EXPECT_NEAR(slow.device_busy_s, 3.0 * base.device_busy_s, 1e-12);
    EXPECT_NEAR(fast.device_busy_s, 0.5 * base.device_busy_s, 1e-12);
    EXPECT_DOUBLE_EQ(slow.link_busy_s, base.link_busy_s);

    // Mixed per-task backends: each task is scaled by its own multiplier.
    const sim::TimeBreakdown mixed = exec.expected_breakdown(
        chain, VariantAssignment("D:blas,D,D:reference"));
    const auto task_seconds = [&](std::size_t i) {
        return model
            .task_parts(chain, i, workloads::Placement::Device,
                        workloads::Placement::Device)
            .compute_s;
    };
    EXPECT_NEAR(mixed.device_busy_s,
                0.5 * task_seconds(0) + task_seconds(1) + 3.0 * task_seconds(2),
                1e-12);
}

TEST(SimulatedExecutor, ChainDefaultBackendIsPricedWhenInherited) {
    const sim::AnalyticCostModel model(gained_platform());
    const sim::SimulatedExecutor exec(model, sim::NoiseModel::none());
    workloads::TaskChain chain = sim_chain();
    chain.backend = "reference";
    // Inherit-everything variant resolves every task to the chain default.
    const double inherited =
        exec.expected_seconds(chain, VariantAssignment("DDD"));
    const double expl = exec.expected_seconds(
        chain, VariantAssignment("D:reference,D:reference,D:reference"));
    EXPECT_DOUBLE_EQ(inherited, expl);
    // A per-task policy overrides the default.
    chain.backend = "blas";
    const double overridden = exec.expected_seconds(
        chain, VariantAssignment("D:reference,D:blas,D:blas"));
    const double all_blas = exec.expected_seconds(
        chain, VariantAssignment("DDD"));
    EXPECT_GT(overridden, all_blas);
}

namespace {

/// Counting backend: forwards to the reference kernels and counts every
/// dispatch, so a test can prove which tasks ran on it.
std::atomic<int> g_counted_calls{0};

void counted_gemm(double alpha, const linalg::Matrix& a, const linalg::Matrix& b,
                  double beta, linalg::Matrix& c) {
    ++g_counted_calls;
    linalg::backend(linalg::kReferenceBackend).gemm(alpha, a, b, beta, c);
}
void counted_syrk(const linalg::Matrix& a, linalg::Matrix& c) {
    ++g_counted_calls;
    linalg::backend(linalg::kReferenceBackend).syrk(a, c);
}
void counted_cholesky(linalg::Matrix& a) {
    ++g_counted_calls;
    linalg::backend(linalg::kReferenceBackend).cholesky(a);
}

const char* counting_backend_name() {
    static const char* name = [] {
        linalg::register_backend(linalg::Backend{
            "counting-variant-test", "test-only counting backend",
            &counted_gemm, &counted_syrk, &counted_cholesky});
        return "counting-variant-test";
    }();
    return name;
}

} // namespace

TEST(RealExecutor, ScopesTheBackendPerTask) {
    const std::string counting = counting_backend_name();
    const sim::RealExecutor exec(sim::EmulatedDevice{1, 0.0, 0.0},
                                 sim::EmulatedDevice{1, 0.0, 0.0});
    const workloads::TaskChain chain =
        workloads::make_rls_chain({16, 16}, 1, "scoped");
    Rng rng(3);

    // No task on the counting backend: zero dispatches.
    g_counted_calls = 0;
    (void)exec.run_once(chain, VariantAssignment("D,A"), rng);
    EXPECT_EQ(g_counted_calls.load(), 0);

    // One task on it: some dispatches.
    g_counted_calls = 0;
    (void)exec.run_once(
        chain, VariantAssignment("D:" + counting + ",A"), rng);
    const int one_task = g_counted_calls.load();
    EXPECT_GT(one_task, 0);

    // Both tasks on it: exactly twice the single-task count (equal sizes and
    // iteration counts make the kernel call counts equal per task).
    g_counted_calls = 0;
    (void)exec.run_once(
        chain,
        VariantAssignment("D:" + counting + ",A:" + counting), rng);
    EXPECT_EQ(g_counted_calls.load(), 2 * one_task);
}

TEST(RealExecutor, PerTaskPolicyOverridesChainDefault) {
    const std::string counting = counting_backend_name();
    const sim::RealExecutor exec(sim::EmulatedDevice{1, 0.0, 0.0},
                                 sim::EmulatedDevice{1, 0.0, 0.0});
    workloads::TaskChain chain =
        workloads::make_rls_chain({16, 16}, 1, "scoped-default");
    chain.backend = counting;
    Rng rng(4);

    // Chain default applies to every task that does not override it.
    g_counted_calls = 0;
    (void)exec.run_once(chain, VariantAssignment("DD"), rng);
    const int both = g_counted_calls.load();
    EXPECT_GT(both, 0);

    // Overriding one task back to portable halves the counted dispatches.
    g_counted_calls = 0;
    (void)exec.run_once(chain, VariantAssignment("D:portable,D"), rng);
    EXPECT_EQ(g_counted_calls.load(), both / 2);
}

TEST(RealExecutor, MeasureVariantsRealUsesPerVariantStreams) {
    // The variant batch API mirrors measure_assignments_real: one stream per
    // variant position, names from alg_name(), n samples each.
    const sim::RealExecutor exec(sim::EmulatedDevice{1, 0.0, 0.0},
                                 sim::EmulatedDevice{1, 0.0, 0.0});
    const workloads::TaskChain chain =
        workloads::make_rls_chain({16, 16}, 1, "variant-batch");
    const std::vector<workloads::VariantAssignment> variants = {
        VariantAssignment("D:portable,D:reference"),
        VariantAssignment("DA"),
    };
    Rng rng(11);
    const relperf::core::MeasurementSet set =
        relperf::core::measure_variants_real(exec, chain, variants, 3, rng, 0);
    ASSERT_EQ(set.size(), 2u);
    EXPECT_TRUE(set.contains("algD:portable,D:reference"));
    EXPECT_TRUE(set.contains("algDA"));
    for (std::size_t i = 0; i < set.size(); ++i) {
        ASSERT_EQ(set.samples(i).size(), 3u);
        for (const double s : set.samples(i)) EXPECT_GT(s, 0.0);
    }
}

TEST(RealExecutor, UnknownVariantBackendThrowsWithRegistry) {
    const sim::RealExecutor exec(sim::EmulatedDevice{1, 0.0, 0.0},
                                 sim::EmulatedDevice{1, 0.0, 0.0});
    const workloads::TaskChain chain =
        workloads::make_rls_chain({8}, 1, "typo");
    Rng rng(5);
    try {
        (void)exec.run_once(chain, VariantAssignment("D:nonesuch"), rng);
        FAIL() << "expected InvalidArgument";
    } catch (const relperf::InvalidArgument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("nonesuch"), std::string::npos) << what;
        EXPECT_NE(what.find("registered"), std::string::npos) << what;
        EXPECT_NE(what.find("portable"), std::string::npos) << what;
    }
}
