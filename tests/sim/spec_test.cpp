#include "sim/spec.hpp"

#include "support/error.hpp"

#include <gtest/gtest.h>

namespace sim = relperf::sim;
using sim::EfficiencyCurve;

TEST(EfficiencyCurve, InterpolatesLinearly) {
    const EfficiencyCurve curve({{10.0, 0.2}, {20.0, 0.6}});
    EXPECT_DOUBLE_EQ(curve.at(10.0), 0.2);
    EXPECT_DOUBLE_EQ(curve.at(20.0), 0.6);
    EXPECT_DOUBLE_EQ(curve.at(15.0), 0.4);
}

TEST(EfficiencyCurve, ClampsOutsideRange) {
    const EfficiencyCurve curve({{10.0, 0.2}, {20.0, 0.6}});
    EXPECT_DOUBLE_EQ(curve.at(1.0), 0.2);
    EXPECT_DOUBLE_EQ(curve.at(100.0), 0.6);
}

TEST(EfficiencyCurve, FlatCurve) {
    const EfficiencyCurve curve = EfficiencyCurve::flat(0.5);
    EXPECT_DOUBLE_EQ(curve.at(1.0), 0.5);
    EXPECT_DOUBLE_EQ(curve.at(1e6), 0.5);
}

TEST(EfficiencyCurve, InvalidPointsThrow) {
    EXPECT_THROW(EfficiencyCurve({}), relperf::InvalidArgument);
    EXPECT_THROW(EfficiencyCurve({{10.0, 0.0}}), relperf::InvalidArgument);
    EXPECT_THROW(EfficiencyCurve({{10.0, 1.5}}), relperf::InvalidArgument);
    EXPECT_THROW(EfficiencyCurve({{20.0, 0.5}, {10.0, 0.6}}),
                 relperf::InvalidArgument);
}

TEST(DeviceKindName, Strings) {
    EXPECT_STREQ(sim::to_string(sim::DeviceKind::Gpu), "gpu");
    EXPECT_STREQ(sim::to_string(sim::DeviceKind::RaspberryPi), "raspberry-pi");
}

TEST(DeviceSpec, ValidationCatchesBadFields) {
    sim::DeviceSpec dev;
    dev.peak_gflops = 0.0;
    EXPECT_THROW(dev.validate(), relperf::InvalidArgument);
    dev = sim::DeviceSpec{};
    dev.dispatch_overhead_s = -1.0;
    EXPECT_THROW(dev.validate(), relperf::InvalidArgument);
    dev = sim::DeviceSpec{};
    dev.active_watts = 1.0;
    dev.idle_watts = 2.0;
    EXPECT_THROW(dev.validate(), relperf::InvalidArgument);
}

TEST(LinkSpec, TransferSecondsIncludesLatency) {
    sim::LinkSpec link;
    link.bandwidth_gbps = 1.0; // 1e9 bytes/s
    link.latency_s = 1e-3;
    EXPECT_DOUBLE_EQ(link.transfer_seconds(0.0), 1e-3);
    EXPECT_DOUBLE_EQ(link.transfer_seconds(1e9), 1.0 + 1e-3);
    EXPECT_THROW((void)link.transfer_seconds(-1.0), relperf::InvalidArgument);
}

TEST(LinkSpec, ValidationCatchesBadFields) {
    sim::LinkSpec link;
    link.bandwidth_gbps = 0.0;
    EXPECT_THROW(link.validate(), relperf::InvalidArgument);
    link = sim::LinkSpec{};
    link.latency_s = -1.0;
    EXPECT_THROW(link.validate(), relperf::InvalidArgument);
}

TEST(Platforms, AllPresetsValidate) {
    EXPECT_NO_THROW(sim::paper_cpu_gpu_platform().validate());
    EXPECT_NO_THROW(sim::rpi_server_platform().validate());
    EXPECT_NO_THROW(sim::smartphone_gpu_platform().validate());
    EXPECT_NO_THROW(sim::cpu_only_platform().validate());
}

TEST(Platforms, PaperPresetShape) {
    const sim::Platform p = sim::paper_cpu_gpu_platform();
    EXPECT_EQ(p.device.kind, sim::DeviceKind::CpuCore);
    EXPECT_EQ(p.accelerator.kind, sim::DeviceKind::Gpu);
    // GPU: much higher peak, much higher dispatch overhead.
    EXPECT_GT(p.accelerator.peak_gflops, 10.0 * p.device.peak_gflops);
    EXPECT_GT(p.accelerator.dispatch_overhead_s, p.device.dispatch_overhead_s);
    // Small kernels are inefficient on the GPU.
    EXPECT_LT(p.accelerator.efficiency.at(50), 0.01);
}

TEST(Platforms, RpiLinkIsSlow) {
    const sim::Platform rpi = sim::rpi_server_platform();
    const sim::Platform paper = sim::paper_cpu_gpu_platform();
    EXPECT_LT(rpi.link.bandwidth_gbps, paper.link.bandwidth_gbps / 10.0);
    EXPECT_GT(rpi.link.latency_s, paper.link.latency_s * 10.0);
}
