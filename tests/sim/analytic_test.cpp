#include "sim/analytic.hpp"

#include "support/error.hpp"
#include "workloads/chain.hpp"

#include <gtest/gtest.h>

namespace sim = relperf::sim;
namespace workloads = relperf::workloads;
using workloads::Placement;

namespace {

sim::Platform simple_platform() {
    sim::Platform p;
    p.name = "simple";
    p.device = sim::DeviceSpec{"dev", sim::DeviceKind::CpuCore, 10.0, 1e-6,
                               5.0, 1.0, sim::EfficiencyCurve::flat(1.0)};
    p.accelerator = sim::DeviceSpec{"acc", sim::DeviceKind::Gpu, 100.0, 10e-6,
                                    50.0, 5.0, sim::EfficiencyCurve::flat(1.0)};
    p.link = sim::LinkSpec{1.0, 1e-3, 2.0};
    return p;
}

workloads::TaskChain one_task_chain(double flops, double bytes_in,
                                    double bytes_out, double launches) {
    workloads::TaskChain chain;
    chain.name = "synthetic";
    chain.tasks = {workloads::TaskSpec{
        "L1", workloads::TaskKind::GemmLoop, 64, 1,
        workloads::TaskCost{flops, bytes_in, bytes_out, launches}}};
    return chain;
}

} // namespace

TEST(AnalyticCostModel, DeviceExecutionHasNoLinkCost) {
    const sim::AnalyticCostModel model(simple_platform());
    const auto chain = one_task_chain(1e9, 1e6, 1e6, 10);
    const auto parts = model.task_parts(chain, 0, Placement::Device, Placement::Device);
    EXPECT_DOUBLE_EQ(parts.staging_s, 0.0);
    // 1 GFLOP at 10 GFLOP/s + 10 launches at 1 us.
    EXPECT_NEAR(parts.compute_s, 0.1 + 10e-6, 1e-12);
}

TEST(AnalyticCostModel, AcceleratorExecutionStreamsData) {
    const sim::AnalyticCostModel model(simple_platform());
    const auto chain = one_task_chain(1e9, 1e9, 0.0, 0);
    const auto parts =
        model.task_parts(chain, 0, Placement::Accelerator, Placement::Device);
    // Compute: 1 GFLOP at 100 GFLOP/s.
    EXPECT_NEAR(parts.compute_s, 0.01, 1e-12);
    // Staging: 1 GB at 1 GB/s + 2 transfer latencies + switch round-trip.
    EXPECT_NEAR(parts.staging_s, 1.0 + 2e-3 + 2e-3, 1e-12);
}

TEST(AnalyticCostModel, ResidentAcceleratorSkipsSwitchCost) {
    const sim::AnalyticCostModel model(simple_platform());
    const auto chain = one_task_chain(1e9, 1e6, 1e6, 0);
    const double from_device =
        model.task_seconds(chain, 0, Placement::Accelerator, Placement::Device);
    const double resident = model.task_seconds(chain, 0, Placement::Accelerator,
                                               Placement::Accelerator);
    EXPECT_GT(from_device, resident);
    EXPECT_NEAR(from_device - resident, 2e-3, 1e-12); // the switch round-trip
}

TEST(AnalyticCostModel, ReturningToDeviceCostsRoundTrip) {
    const sim::AnalyticCostModel model(simple_platform());
    const auto chain = one_task_chain(1e9, 0.0, 0.0, 0);
    const double stay = model.task_seconds(chain, 0, Placement::Device, Placement::Device);
    const double back =
        model.task_seconds(chain, 0, Placement::Device, Placement::Accelerator);
    EXPECT_NEAR(back - stay, 2e-3, 1e-12);
}

TEST(AnalyticCostModel, EfficiencyCurveSlowsSmallKernels) {
    sim::Platform p = simple_platform();
    p.accelerator.efficiency =
        sim::EfficiencyCurve({{64.0, 0.01}, {1024.0, 1.0}});
    const sim::AnalyticCostModel model(p);

    workloads::TaskChain small;
    small.name = "small";
    small.tasks = {workloads::TaskSpec{"L1", workloads::TaskKind::RlsLoop, 64, 1,
                                       std::nullopt}};
    workloads::TaskChain large = small;
    large.tasks[0].size = 1024;

    const double t_small_rate =
        workloads::task_cost(small.tasks[0]).flops /
        model.task_parts(small, 0, Placement::Accelerator, Placement::Accelerator)
            .compute_s;
    const double t_large_rate =
        workloads::task_cost(large.tasks[0]).flops /
        model.task_parts(large, 0, Placement::Accelerator, Placement::Accelerator)
            .compute_s;
    EXPECT_GT(t_large_rate, 10.0 * t_small_rate);
}

TEST(AnalyticCostModel, ExitCostOnlyFromAccelerator) {
    const sim::AnalyticCostModel model(simple_platform());
    const auto chain = one_task_chain(1.0, 0.0, 0.0, 0.0);
    EXPECT_DOUBLE_EQ(model.exit_seconds(chain, Placement::Device), 0.0);
    EXPECT_NEAR(model.exit_seconds(chain, Placement::Accelerator), 2e-3, 1e-12);
}

TEST(AnalyticCostModel, NameMentionsPlatform) {
    const sim::AnalyticCostModel model(simple_platform());
    EXPECT_EQ(model.name(), "analytic(simple)");
}

TEST(AnalyticCostModel, TaskIndexOutOfRangeThrows) {
    const sim::AnalyticCostModel model(simple_platform());
    const auto chain = one_task_chain(1.0, 0.0, 0.0, 0.0);
    EXPECT_THROW(
        (void)model.task_parts(chain, 1, Placement::Device, Placement::Device),
        relperf::InvalidArgument);
}
