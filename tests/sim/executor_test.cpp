#include "sim/executor.hpp"

#include "sim/profile.hpp"
#include "stats/descriptive.hpp"
#include "support/error.hpp"
#include "workloads/chain.hpp"

#include <gtest/gtest.h>

namespace sim = relperf::sim;
namespace workloads = relperf::workloads;
using relperf::stats::Rng;
using workloads::DeviceAssignment;

namespace {

const workloads::TaskChain& chain() {
    static const workloads::TaskChain c = workloads::paper_rls_chain(10);
    return c;
}

const sim::CalibratedProfile& profile() {
    static const sim::CalibratedProfile p = sim::paper_rls_profile();
    return p;
}

} // namespace

TEST(SimulatedExecutor, NoiseFreeRunEqualsExpectation) {
    const sim::SimulatedExecutor exec(profile(), sim::NoiseModel::none());
    Rng rng(1);
    const DeviceAssignment a("DDA");
    const double expected = exec.expected_seconds(chain(), a);
    for (int i = 0; i < 5; ++i) {
        EXPECT_DOUBLE_EQ(exec.run_once(chain(), a, rng).total_s, expected);
    }
}

TEST(SimulatedExecutor, BreakdownComponentsSumToTotal) {
    const sim::SimulatedExecutor exec(profile(), sim::NoiseModel{});
    Rng rng(2);
    for (const auto& a : workloads::enumerate_assignments(3)) {
        const sim::TimeBreakdown t = exec.run_once(chain(), a, rng);
        EXPECT_NEAR(t.total_s,
                    t.device_busy_s + t.accelerator_busy_s + t.link_busy_s, 1e-12);
    }
}

TEST(SimulatedExecutor, AllDeviceRunHasNoAcceleratorOrLinkTime) {
    const sim::SimulatedExecutor exec(profile(), sim::NoiseModel{});
    Rng rng(3);
    const sim::TimeBreakdown t = exec.run_once(chain(), DeviceAssignment("DDD"), rng);
    EXPECT_DOUBLE_EQ(t.accelerator_busy_s, 0.0);
    EXPECT_DOUBLE_EQ(t.link_busy_s, 0.0);
    EXPECT_GT(t.device_busy_s, 0.0);
}

TEST(SimulatedExecutor, OffloadedRunUsesAcceleratorAndLink) {
    const sim::SimulatedExecutor exec(profile(), sim::NoiseModel{});
    Rng rng(4);
    const sim::TimeBreakdown t = exec.run_once(chain(), DeviceAssignment("DDA"), rng);
    EXPECT_GT(t.accelerator_busy_s, 0.0);
    EXPECT_GT(t.link_busy_s, 0.0); // staging + exit readback
}

TEST(SimulatedExecutor, MeasurementsAreSeedDeterministic) {
    const sim::SimulatedExecutor exec(profile(), sim::NoiseModel{});
    Rng a(42);
    Rng b(42);
    const auto ma = exec.measure(chain(), DeviceAssignment("DAD"), 20, a);
    const auto mb = exec.measure(chain(), DeviceAssignment("DAD"), 20, b);
    EXPECT_EQ(ma, mb);
}

TEST(SimulatedExecutor, NoiseProducesFluctuations) {
    const sim::SimulatedExecutor exec(profile(), sim::NoiseModel{});
    Rng rng(5);
    const auto samples = exec.measure(chain(), DeviceAssignment("DDD"), 100, rng);
    ASSERT_EQ(samples.size(), 100u);
    EXPECT_GT(relperf::stats::stddev(samples), 0.0);
    // Mean within 10% of expectation.
    const double expected = exec.expected_seconds(chain(), DeviceAssignment("DDD"));
    EXPECT_NEAR(relperf::stats::mean(samples) / expected, 1.0, 0.1);
}

TEST(SimulatedExecutor, NoiseCvIsInTheConfiguredBallpark) {
    sim::NoiseModel noise;
    noise.sigma_log = 0.08;
    noise.spike_prob = 0.0;
    const sim::SimulatedExecutor exec(profile(), noise);
    Rng rng(6);
    const auto samples = exec.measure(chain(), DeviceAssignment("DDD"), 3000, rng);
    const auto s = relperf::stats::summarize(samples);
    // Per-component noise partially averages out at the chain level; the
    // chain CV must be positive but below the per-component sigma.
    EXPECT_GT(s.cv, 0.02);
    EXPECT_LT(s.cv, 0.09);
}

TEST(SimulatedExecutor, AssignmentLengthMismatchThrows) {
    const sim::SimulatedExecutor exec(profile(), sim::NoiseModel{});
    Rng rng(7);
    EXPECT_THROW((void)exec.run_once(chain(), DeviceAssignment("DD"), rng),
                 relperf::InvalidArgument);
    EXPECT_THROW((void)exec.measure(chain(), DeviceAssignment("DDD"), 0, rng),
                 relperf::InvalidArgument);
}

TEST(SimulatedExecutor, InvalidNoiseRejectedAtConstruction) {
    sim::NoiseModel bad;
    bad.sigma_log = -1.0;
    EXPECT_THROW(sim::SimulatedExecutor(profile(), bad), relperf::InvalidArgument);
}
