#include "sim/real_executor.hpp"

#include "stats/descriptive.hpp"
#include "support/error.hpp"
#include "workloads/chain.hpp"

#include <gtest/gtest.h>

namespace sim = relperf::sim;
namespace workloads = relperf::workloads;
using relperf::stats::Rng;
using sim::EmulatedDevice;
using workloads::DeviceAssignment;

namespace {

workloads::TaskChain tiny_chain() {
    // Small enough to run in milliseconds.
    return workloads::make_rls_chain({24, 32}, 2, "tiny");
}

} // namespace

TEST(RealExecutor, ProducesPositiveWallClockTimes) {
    const sim::RealExecutor exec(EmulatedDevice{1, 0.0, 0.0},
                                 EmulatedDevice{2, 0.0, 0.0});
    Rng rng(1);
    const auto samples = exec.measure(tiny_chain(), DeviceAssignment("DA"), 5, rng, 1);
    ASSERT_EQ(samples.size(), 5u);
    for (const double s : samples) EXPECT_GT(s, 0.0);
}

TEST(RealExecutor, DispatchDelayInflatesRuntime) {
    // 1 ms per launch, tiny chain has 2 tasks x 2 iters x 10 ops = 40
    // launches on the accelerator -> >= 40 ms extra when offloaded.
    const sim::RealExecutor fast(EmulatedDevice{1, 0.0, 0.0},
                                 EmulatedDevice{1, 0.0, 0.0});
    const sim::RealExecutor slow(EmulatedDevice{1, 0.0, 0.0},
                                 EmulatedDevice{1, 1e-3, 0.0});
    Rng r1(2);
    Rng r2(2);
    const auto chain = tiny_chain();
    const double t_fast =
        relperf::stats::median(fast.measure(chain, DeviceAssignment("AA"), 5, r1));
    const double t_slow =
        relperf::stats::median(slow.measure(chain, DeviceAssignment("AA"), 5, r2));
    EXPECT_GT(t_slow, t_fast + 0.030);
}

TEST(RealExecutor, SwitchDelayAppliesOnDeviceChanges) {
    const sim::RealExecutor no_switch(EmulatedDevice{1, 0.0, 0.0},
                                      EmulatedDevice{1, 0.0, 0.0});
    const sim::RealExecutor with_switch(EmulatedDevice{1, 0.0, 5e-3},
                                        EmulatedDevice{1, 0.0, 5e-3});
    Rng r1(3);
    Rng r2(3);
    const auto chain = tiny_chain();
    // "AD" switches twice (enter A, back to D) plus no trailing switch.
    const double plain =
        relperf::stats::median(no_switch.measure(chain, DeviceAssignment("AD"), 5, r1));
    const double delayed = relperf::stats::median(
        with_switch.measure(chain, DeviceAssignment("AD"), 5, r2));
    EXPECT_GT(delayed, plain + 0.008);
}

TEST(RealExecutor, InvalidConfigurationThrows) {
    EXPECT_THROW(sim::RealExecutor(EmulatedDevice{-1, 0.0, 0.0},
                                   EmulatedDevice{1, 0.0, 0.0}),
                 relperf::InvalidArgument);
    EXPECT_THROW(sim::RealExecutor(EmulatedDevice{1, -1.0, 0.0},
                                   EmulatedDevice{1, 0.0, 0.0}),
                 relperf::InvalidArgument);
}

TEST(RealExecutor, AssignmentLengthMismatchThrows) {
    const sim::RealExecutor exec(EmulatedDevice{1, 0.0, 0.0},
                                 EmulatedDevice{1, 0.0, 0.0});
    Rng rng(4);
    EXPECT_THROW((void)exec.run_once(tiny_chain(), DeviceAssignment("D"), rng),
                 relperf::InvalidArgument);
    EXPECT_THROW((void)exec.measure(tiny_chain(), DeviceAssignment("DD"), 0, rng),
                 relperf::InvalidArgument);
}

TEST(RealExecutor, WarmupDoesNotConsumeTheMeasurementStream) {
    // Regression: warmup runs used to execute on the measurement stream, so
    // changing the warmup count shifted which random task data the measured
    // runs consumed — the measured *values* depended on warmup. Warmups are
    // hoisted onto a child stream now: after measuring n samples the
    // measurement stream must sit at the identical position for every warmup
    // count (the measured runs drew the identical prefix).
    const sim::RealExecutor exec(EmulatedDevice{1, 0.0, 0.0},
                                 EmulatedDevice{1, 0.0, 0.0});
    const auto chain = tiny_chain();
    std::vector<std::uint64_t> next_bits;
    for (const std::size_t warmup : {0u, 1u, 4u}) {
        Rng rng(0xABCDE);
        (void)exec.measure(chain, DeviceAssignment("DA"), 3, rng, warmup);
        next_bits.push_back(rng.bits());
    }
    EXPECT_EQ(next_bits[0], next_bits[1]);
    EXPECT_EQ(next_bits[0], next_bits[2]);
}

TEST(RealExecutor, WarmupStillRunsTheChain) {
    // The hoisted warmup still executes real work: n samples come back
    // positive and the sample count ignores the warmup count.
    const sim::RealExecutor exec(EmulatedDevice{1, 0.0, 0.0},
                                 EmulatedDevice{1, 0.0, 0.0});
    Rng rng(7);
    const auto samples =
        exec.measure(tiny_chain(), DeviceAssignment("DD"), 4, rng, 3);
    ASSERT_EQ(samples.size(), 4u);
    for (const double s : samples) EXPECT_GT(s, 0.0);
}
