#include "sim/energy.hpp"

#include "sim/profile.hpp"
#include "support/error.hpp"
#include "workloads/chain.hpp"

#include <gtest/gtest.h>

namespace sim = relperf::sim;
namespace workloads = relperf::workloads;
using workloads::DeviceAssignment;

namespace {

sim::Platform watts_platform() {
    sim::Platform p = sim::paper_cpu_gpu_platform();
    // Round numbers for hand-checkable expectations.
    p.device.active_watts = 10.0;
    p.device.idle_watts = 2.0;
    p.accelerator.active_watts = 100.0;
    p.accelerator.idle_watts = 20.0;
    p.link.active_watts = 5.0;
    return p;
}

} // namespace

TEST(EnergyModel, HandCheckedBreakdown) {
    const sim::EnergyModel model(watts_platform());
    sim::TimeBreakdown t;
    t.total_s = 10.0;
    t.device_busy_s = 4.0;
    t.accelerator_busy_s = 2.0;
    t.link_busy_s = 1.0;

    const sim::EnergyBreakdown e = model.energy(t);
    // Device: 2 W * 10 s idle baseline + 8 W * 4 s active delta.
    EXPECT_DOUBLE_EQ(e.device_j, 2.0 * 10.0 + 8.0 * 4.0);
    // Accelerator: 20 W * 10 s + 80 W * 2 s.
    EXPECT_DOUBLE_EQ(e.accelerator_j, 20.0 * 10.0 + 80.0 * 2.0);
    // Link: no idle power, 5 W * 1 s.
    EXPECT_DOUBLE_EQ(e.link_j, 5.0);
    EXPECT_DOUBLE_EQ(e.total(), e.device_j + e.accelerator_j + e.link_j);
}

TEST(EnergyModel, ZeroTimeMeansZeroEnergy) {
    const sim::EnergyModel model(watts_platform());
    const sim::EnergyBreakdown e = model.energy(sim::TimeBreakdown{});
    EXPECT_DOUBLE_EQ(e.total(), 0.0);
}

TEST(EnergyModel, OffloadingReducesDeviceEnergy) {
    const sim::EnergyModel model(watts_platform());
    const auto profile = sim::paper_rls_profile();
    const sim::SimulatedExecutor exec(profile, sim::NoiseModel::none());
    const auto chain = workloads::paper_rls_chain(10);

    const double e_ddd =
        model.device_energy(exec.expected_breakdown(chain, DeviceAssignment("DDD")));
    const double e_daa =
        model.device_energy(exec.expected_breakdown(chain, DeviceAssignment("DAA")));
    // DAA moves L2+L3 off the device: device busy time shrinks a lot.
    EXPECT_LT(e_daa, e_ddd);
}

TEST(EnergyModel, InvalidBreakdownThrows) {
    const sim::EnergyModel model(watts_platform());
    sim::TimeBreakdown bad;
    bad.total_s = 1.0;
    bad.device_busy_s = 2.0; // busy exceeds total
    EXPECT_THROW((void)model.energy(bad), relperf::InvalidArgument);
    sim::TimeBreakdown negative;
    negative.total_s = -1.0;
    EXPECT_THROW((void)model.energy(negative), relperf::InvalidArgument);
}
