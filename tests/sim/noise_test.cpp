#include "sim/noise.hpp"

#include "stats/descriptive.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sim = relperf::sim;
using relperf::stats::Rng;

TEST(NoiseModel, NoneIsExactlyOne) {
    const sim::NoiseModel none = sim::NoiseModel::none();
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(none.sample_factor(rng), 1.0);
    }
}

TEST(NoiseModel, BodyHasMeanOne) {
    sim::NoiseModel noise;
    noise.sigma_log = 0.1;
    noise.spike_prob = 0.0;
    Rng rng(2);
    std::vector<double> factors;
    for (int i = 0; i < 200000; ++i) factors.push_back(noise.sample_factor(rng));
    EXPECT_NEAR(relperf::stats::mean(factors), 1.0, 0.005);
}

TEST(NoiseModel, FactorsArePositive) {
    sim::NoiseModel noise;
    noise.sigma_log = 0.2;
    noise.spike_prob = 0.1;
    noise.spike_scale = 0.5;
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_GT(noise.sample_factor(rng), 0.0);
    }
}

TEST(NoiseModel, SpikesAddPositiveSkew) {
    sim::NoiseModel quiet;
    quiet.sigma_log = 0.05;
    quiet.spike_prob = 0.0;
    sim::NoiseModel spiky = quiet;
    spiky.spike_prob = 0.1;
    spiky.spike_scale = 1.0;

    Rng r1(4);
    Rng r2(4);
    relperf::stats::RunningStats s_quiet;
    relperf::stats::RunningStats s_spiky;
    for (int i = 0; i < 100000; ++i) {
        s_quiet.add(quiet.sample_factor(r1));
        s_spiky.add(spiky.sample_factor(r2));
    }
    EXPECT_GT(s_spiky.mean(), s_quiet.mean());
    EXPECT_GT(s_spiky.max(), s_quiet.max());
}

TEST(NoiseModel, HigherSigmaMeansHigherVariance) {
    sim::NoiseModel low;
    low.sigma_log = 0.02;
    low.spike_prob = 0.0;
    sim::NoiseModel high;
    high.sigma_log = 0.2;
    high.spike_prob = 0.0;

    Rng r1(5);
    Rng r2(5);
    relperf::stats::RunningStats s_low;
    relperf::stats::RunningStats s_high;
    for (int i = 0; i < 50000; ++i) {
        s_low.add(low.sample_factor(r1));
        s_high.add(high.sample_factor(r2));
    }
    EXPECT_GT(s_high.variance(), 5.0 * s_low.variance());
}

TEST(NoiseModel, ValidationCatchesBadParameters) {
    sim::NoiseModel bad;
    bad.sigma_log = -0.1;
    EXPECT_THROW(bad.validate(), relperf::InvalidArgument);
    bad = sim::NoiseModel{};
    bad.spike_prob = 1.5;
    EXPECT_THROW(bad.validate(), relperf::InvalidArgument);
    bad = sim::NoiseModel{};
    bad.spike_scale = -1.0;
    EXPECT_THROW(bad.validate(), relperf::InvalidArgument);
    bad = sim::NoiseModel{};
    bad.spike_tail = 1.0;
    EXPECT_THROW(bad.validate(), relperf::InvalidArgument);
    EXPECT_NO_THROW(sim::NoiseModel{}.validate());
}

TEST(NoiseModel, SeedDeterministic) {
    const sim::NoiseModel noise;
    Rng a(6);
    Rng b(6);
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(noise.sample_factor(a), noise.sample_factor(b));
    }
}
