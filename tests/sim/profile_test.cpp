#include "sim/profile.hpp"

#include "sim/executor.hpp"
#include "support/error.hpp"
#include "workloads/chain.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace sim = relperf::sim;
namespace workloads = relperf::workloads;
using workloads::DeviceAssignment;
using workloads::Placement;

namespace {

std::map<std::string, double> expected_means_ms(const sim::CostModel& model,
                                                const workloads::TaskChain& chain) {
    const sim::SimulatedExecutor exec(model, sim::NoiseModel::none());
    std::map<std::string, double> out;
    for (const auto& a : workloads::enumerate_assignments(chain.size())) {
        out[a.str()] = exec.expected_seconds(chain, a) * 1e3;
    }
    return out;
}

} // namespace

// Golden values locked by the calibration (see DESIGN.md / EXPERIMENTS.md);
// a change here is a change of the reproduced paper results and must be
// deliberate.
TEST(PaperRlsProfile, GoldenExpectedMeans) {
    const auto profile = sim::paper_rls_profile();
    const auto means = expected_means_ms(profile, workloads::paper_rls_chain(10));
    EXPECT_NEAR(means.at("DDD"), 44.2, 1e-9);
    EXPECT_NEAR(means.at("DDA"), 40.6, 1e-9);
    EXPECT_NEAR(means.at("DAD"), 52.8, 1e-9);
    EXPECT_NEAR(means.at("DAA"), 41.4, 1e-9);
    EXPECT_NEAR(means.at("ADD"), 51.8, 1e-9);
    EXPECT_NEAR(means.at("ADA"), 48.2, 1e-9);
    EXPECT_NEAR(means.at("AAD"), 59.2, 1e-9);
    EXPECT_NEAR(means.at("AAA"), 47.8, 1e-9);
}

TEST(PaperRlsProfile, SectionIvSpeedupTargets) {
    const auto means = expected_means_ms(sim::paper_rls_profile(),
                                         workloads::paper_rls_chain(10));
    // Paper: mean(DDD) - mean(DDA) ~ 0.002 s, speed-up ~ 1.05 at n = 10.
    const double delta_ms = means.at("DDD") - means.at("DDA");
    EXPECT_GT(delta_ms, 1.5);
    EXPECT_LT(delta_ms, 5.0);
    const double speedup = means.at("DDD") / means.at("DDA");
    EXPECT_GT(speedup, 1.03);
    EXPECT_LT(speedup, 1.12);
}

TEST(PaperRlsProfile, OrderingMatchesTableOneShape) {
    const auto m = expected_means_ms(sim::paper_rls_profile(),
                                     workloads::paper_rls_chain(10));
    // DDA best; DDD ahead of every L1-offloader; AAD worst.
    EXPECT_LT(m.at("DDA"), m.at("DAA"));
    EXPECT_LT(m.at("DAA"), m.at("DDD"));
    for (const char* alg : {"ADA", "ADD", "AAA", "DAD", "AAD"}) {
        EXPECT_LT(m.at("DDD"), m.at(alg)) << alg;
    }
    for (const char* alg : {"DDD", "DDA", "DAA", "ADA", "ADD", "AAA", "DAD"}) {
        EXPECT_LT(m.at(alg), m.at("AAD")) << alg;
    }
}

TEST(PaperRlsProfile, CrossoverBelowPaperIterationCount) {
    // At n = 1 offloading L3 does not pay (staging dominates); at n = 10 it
    // does (paper Sec. IV: speed-up grows with n).
    const auto profile = sim::paper_rls_profile();
    const auto means_1 = expected_means_ms(profile, workloads::paper_rls_chain(1));
    EXPECT_GT(means_1.at("DDA"), means_1.at("DDD"));
    const auto means_10 = expected_means_ms(profile, workloads::paper_rls_chain(10));
    EXPECT_LT(means_10.at("DDA"), means_10.at("DDD"));
    // Speed-up grows with n.
    const auto means_100 = expected_means_ms(profile, workloads::paper_rls_chain(100));
    EXPECT_GT(means_100.at("DDD") / means_100.at("DDA"),
              means_10.at("DDD") / means_10.at("DDA"));
}

TEST(Fig1bProfile, GoldenExpectedMeans) {
    const auto means = expected_means_ms(sim::fig1b_profile(),
                                         workloads::two_loop_chain());
    EXPECT_NEAR(means.at("DD"), 130.0, 1e-9);
    EXPECT_NEAR(means.at("DA"), 131.1, 1e-9);
    EXPECT_NEAR(means.at("AD"), 82.9, 1e-9);
    EXPECT_NEAR(means.at("AA"), 87.5, 1e-9);
}

TEST(Fig1bProfile, OrderingMatchesFigure) {
    const auto m = expected_means_ms(sim::fig1b_profile(), workloads::two_loop_chain());
    EXPECT_LT(m.at("AD"), m.at("AA"));  // AD clearly best
    EXPECT_LT(m.at("AA"), m.at("DD"));  // AA second
    EXPECT_LT(std::abs(m.at("DD") - m.at("DA")), 2.0); // DD ~ DA equivalent
}

TEST(CalibratedProfile, ConditionalSemantics) {
    // One synthetic task: 2 s/iter on D, 1 s/iter on A, staging 10/20,
    // residency extra 5.
    const sim::CalibratedProfile profile(
        "t", {sim::TaskTiming{2.0, 1.0, 10.0, 20.0, 5.0}}, 3.0);
    workloads::TaskChain chain;
    chain.name = "synthetic";
    chain.tasks = {workloads::TaskSpec{"L1", workloads::TaskKind::RlsLoop, 8, 4,
                                       std::nullopt}};

    using P = Placement;
    // On device, staying: 4 iters * 2 s.
    EXPECT_DOUBLE_EQ(profile.task_seconds(chain, 0, P::Device, P::Device), 8.0);
    // On device, arriving from accelerator: + enter_device.
    EXPECT_DOUBLE_EQ(profile.task_seconds(chain, 0, P::Device, P::Accelerator), 28.0);
    // On accelerator, arriving from device: 4 * 1 + enter_accel.
    EXPECT_DOUBLE_EQ(profile.task_seconds(chain, 0, P::Accelerator, P::Device), 14.0);
    // On accelerator, staying: 4 * 1 + resident extra.
    EXPECT_DOUBLE_EQ(profile.task_seconds(chain, 0, P::Accelerator, P::Accelerator),
                     9.0);
    // Exit cost only when the chain ends on the accelerator.
    EXPECT_DOUBLE_EQ(profile.exit_seconds(chain, P::Accelerator), 3.0);
    EXPECT_DOUBLE_EQ(profile.exit_seconds(chain, P::Device), 0.0);
}

TEST(CalibratedProfile, ChainMismatchThrows) {
    const auto profile = sim::paper_rls_profile();
    const auto wrong = workloads::two_loop_chain(); // 2 tasks vs 3 timings
    EXPECT_THROW(
        (void)profile.task_seconds(wrong, 0, Placement::Device, Placement::Device),
        relperf::InvalidArgument);
}

TEST(CalibratedProfile, InvalidConstructionThrows) {
    EXPECT_THROW(sim::CalibratedProfile("x", {}, 0.0), relperf::InvalidArgument);
    EXPECT_THROW(sim::CalibratedProfile(
                     "x", {sim::TaskTiming{-1.0, 1.0, 0.0, 0.0, 0.0}}, 0.0),
                 relperf::InvalidArgument);
    EXPECT_THROW(sim::CalibratedProfile(
                     "x", {sim::TaskTiming{1.0, 1.0, -0.5, 0.0, 0.0}}, 0.0),
                 relperf::InvalidArgument);
    EXPECT_THROW(sim::CalibratedProfile(
                     "x", {sim::TaskTiming{1.0, 1.0, 0.0, 0.0, 0.0}}, -1.0),
                 relperf::InvalidArgument);
}
