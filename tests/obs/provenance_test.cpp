//! The run provenance record: built-in facts, user entries (ordering,
//! overwrite, sanitization), and the round-trip through a shard manifest's
//! `# provenance =` line.
#include "obs/provenance.hpp"

#include "campaign/campaign.hpp"
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace campaign = relperf::campaign;
namespace obs = relperf::obs;

namespace {

class ProvenanceTest : public ::testing::Test {
protected:
    void SetUp() override { obs::clear_provenance(); }
    void TearDown() override { obs::clear_provenance(); }

    static const std::string* find(const std::vector<obs::ProvenanceEntry>& r,
                                   const std::string& key) {
        for (const obs::ProvenanceEntry& e : r) {
            if (e.key == key) return &e.value;
        }
        return nullptr;
    }
};

} // namespace

TEST_F(ProvenanceTest, BuiltinFactsArePresentAndNonEmpty) {
    const std::vector<obs::ProvenanceEntry> record = obs::provenance();
    for (const char* key : {"host", "build", "sanitize", "openmp"}) {
        const std::string* value = find(record, key);
        ASSERT_NE(value, nullptr) << key;
        EXPECT_FALSE(value->empty()) << key;
    }
}

TEST_F(ProvenanceTest, UserEntriesAppendInInsertionOrderAfterBuiltins) {
    const std::size_t builtin_count = obs::provenance().size();
    obs::set_provenance("zeta", "1");
    obs::set_provenance("alpha", "2");
    const std::vector<obs::ProvenanceEntry> record = obs::provenance();
    ASSERT_EQ(record.size(), builtin_count + 2);
    EXPECT_EQ(record[builtin_count].key, "zeta");
    EXPECT_EQ(record[builtin_count + 1].key, "alpha");
}

TEST_F(ProvenanceTest, SetOverwritesInPlaceAndClearDropsUserEntriesOnly) {
    const std::size_t builtin_count = obs::provenance().size();
    obs::set_provenance("spec", "first");
    obs::set_provenance("plan", "p");
    obs::set_provenance("spec", "second");
    const std::vector<obs::ProvenanceEntry> record = obs::provenance();
    ASSERT_EQ(record.size(), builtin_count + 2);
    EXPECT_EQ(record[builtin_count].key, "spec");
    EXPECT_EQ(record[builtin_count].value, "second");

    obs::clear_provenance();
    EXPECT_EQ(obs::provenance().size(), builtin_count);
}

TEST_F(ProvenanceTest, ValuesAreSanitizedForSingleLineEmbedding) {
    obs::set_provenance("cmd", "a=b;c\nd\re");
    // provenance() returns by value; keep the record alive past find().
    const std::vector<obs::ProvenanceEntry> record = obs::provenance();
    const std::string* value = find(record, "cmd");
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(*value, "a b c d e");
}

TEST_F(ProvenanceTest, ShardManifestRoundTripsTheRecord) {
    obs::set_provenance("spec", "prov-roundtrip");
    obs::set_provenance("plan_hash", "00000000deadbeef");

    campaign::CampaignSpec spec;
    spec.name = "prov-roundtrip";
    spec.sizes = {32, 64};
    spec.iters = 3;
    spec.platform = "paper-cpu-gpu";
    spec.measurements = 8;
    spec.measurement_seed = 5;
    spec.clustering_repetitions = 30;
    spec.clustering_seed = 9;

    const campaign::ShardResult shard = campaign::run_shard(spec, 0, 1);
    ASSERT_FALSE(shard.manifest.provenance.empty());

    // The manifest snapshot contains every provenance entry, in order.
    const std::vector<obs::ProvenanceEntry> record = obs::provenance();
    ASSERT_EQ(shard.manifest.provenance.size(), record.size());
    for (std::size_t i = 0; i < record.size(); ++i) {
        EXPECT_EQ(shard.manifest.provenance[i].first, record[i].key) << i;
        EXPECT_EQ(shard.manifest.provenance[i].second, record[i].value) << i;
    }

    const std::string path = testing::TempDir() + "obs_prov_shard.csv";
    campaign::write_shard_csv(shard, path);
    const campaign::ShardResult back = campaign::read_shard_csv(path);
    EXPECT_EQ(back.manifest.provenance, shard.manifest.provenance);

    const auto has = [&back](const std::string& key, const std::string& value) {
        return std::find(back.manifest.provenance.begin(),
                         back.manifest.provenance.end(),
                         std::make_pair(key, value)) !=
               back.manifest.provenance.end();
    };
    EXPECT_TRUE(has("spec", "prov-roundtrip"));
    EXPECT_TRUE(has("plan_hash", "00000000deadbeef"));
}
