//! The non-negotiable obs guarantee: enabling tracing, metrics and the
//! progress sink changes NO output byte. Every CSV surface — measurement,
//! clustering and shard files, fixed-N and adaptive, plain assignments and
//! per-task variants — is byte-compared between an instrumented run and a
//! dark one.
#include "campaign/campaign.hpp"

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "sim/analytic.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>

namespace campaign = relperf::campaign;
namespace core = relperf::core;
namespace obs = relperf::obs;
namespace sim = relperf::sim;

namespace {

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

campaign::CampaignSpec base_spec() {
    campaign::CampaignSpec spec;
    spec.name = "obs-determinism";
    spec.sizes = {32, 64};
    spec.iters = 3;
    spec.platform = "paper-cpu-gpu";
    spec.measurements = 12;
    spec.measurement_seed = 4242;
    spec.clustering_repetitions = 40;
    spec.clustering_seed = 17;
    return spec;
}

/// Bundle of every persisted byte a run produces.
struct RunFiles {
    std::string measurements;
    std::string clustering;
    std::string shard;
};

/// Runs the campaign twice over (run_campaign for the merged analysis,
/// run_shard for a persisted shard file) and returns the CSV bytes. With
/// `instrumented`, the full obs surface is live: tracing, metrics and a
/// progress sink. The shard manifest's provenance block is a function of
/// build + host, not of the obs switches, so it must not differ either.
RunFiles run_everything(const campaign::CampaignSpec& spec, bool instrumented,
                        const std::string& tag) {
    obs::clear_provenance();
    obs::clear_trace();
    obs::registry().reset_values();
    obs::set_tracing_enabled(instrumented);
    obs::set_metrics_enabled(instrumented);
    std::size_t ticks = 0;
    if (instrumented) {
        obs::set_progress_sink(
            [&ticks](const obs::Progress&) { ++ticks; });
    }

    const std::string dir = testing::TempDir();
    RunFiles files;

    const core::AnalysisResult result = campaign::run_campaign(spec, 2, 1);
    const std::string measurements_path =
        dir + "obs_det_" + tag + "_measurements.csv";
    const std::string clustering_path =
        dir + "obs_det_" + tag + "_clusters.csv";
    core::write_measurements_csv(result.measurements, measurements_path);
    core::write_clustering_csv(result.clustering, result.measurements,
                               clustering_path);

    const campaign::ShardResult shard = campaign::run_shard(spec, 0, 2);
    const std::string shard_path = dir + "obs_det_" + tag + "_shard.csv";
    campaign::write_shard_csv(shard, shard_path);

    if (instrumented) {
        // The instrumented run must actually have instrumented something,
        // or the comparison proves nothing.
        EXPECT_GT(obs::trace_event_count(), 0u);
        EXPECT_GT(obs::metrics().samples_total.value(), 0u);
        EXPECT_GT(ticks, 0u);
        obs::set_progress_sink({});
    } else {
        EXPECT_EQ(obs::trace_event_count(), 0u);
        EXPECT_EQ(obs::metrics().samples_total.value(), 0u);
    }
    obs::set_tracing_enabled(false);
    obs::set_metrics_enabled(false);

    files.measurements = slurp(measurements_path);
    files.clustering = slurp(clustering_path);
    files.shard = slurp(shard_path);
    return files;
}

void expect_byte_identical(const campaign::CampaignSpec& spec,
                           const std::string& tag) {
    const RunFiles dark = run_everything(spec, false, tag + "_off");
    const RunFiles lit = run_everything(spec, true, tag + "_on");
    EXPECT_EQ(dark.measurements, lit.measurements) << tag << ": measurements";
    EXPECT_EQ(dark.clustering, lit.clustering) << tag << ": clustering";
    EXPECT_EQ(dark.shard, lit.shard) << tag << ": shard";
    EXPECT_FALSE(dark.measurements.empty());
    EXPECT_FALSE(dark.clustering.empty());
    EXPECT_FALSE(dark.shard.empty());
}

class DeterminismTest : public ::testing::Test {
protected:
    void TearDown() override {
        obs::set_tracing_enabled(false);
        obs::set_metrics_enabled(false);
        obs::set_progress_sink({});
        obs::clear_trace();
        obs::clear_provenance();
        obs::registry().reset_values();
    }
};

} // namespace

TEST_F(DeterminismTest, FixedNAssignmentsAreByteIdenticalWithObsOn) {
    expect_byte_identical(base_spec(), "fixed_assign");
}

TEST_F(DeterminismTest, AdaptiveAssignmentsAreByteIdenticalWithObsOn) {
    campaign::CampaignSpec spec = base_spec();
    spec.adaptive_min = 5;
    spec.adaptive_batch = 3;
    spec.adaptive_stability = 2;
    expect_byte_identical(spec, "adaptive_assign");
}

TEST_F(DeterminismTest, FixedNVariantsAreByteIdenticalWithObsOn) {
    campaign::CampaignSpec spec = base_spec();
    spec.variant_backends = {"portable", "reference"};
    expect_byte_identical(spec, "fixed_variants");
}

TEST_F(DeterminismTest, AdaptiveVariantsAreByteIdenticalWithObsOn) {
    campaign::CampaignSpec spec = base_spec();
    spec.variant_backends = {"portable", "reference"};
    spec.adaptive_min = 5;
    spec.adaptive_batch = 3;
    spec.adaptive_stability = 2;
    expect_byte_identical(spec, "adaptive_variants");
}

// The unsharded pipeline surface too: analyze_chain under both switch
// states, compared via the rendered CSVs.
TEST_F(DeterminismTest, AnalyzeChainIsByteIdenticalWithObsOn) {
    const campaign::CampaignSpec spec = base_spec();
    const sim::AnalyticCostModel model(
        campaign::platform_preset(spec.platform));
    const sim::SimulatedExecutor executor(model, sim::NoiseModel{});
    const std::string dir = testing::TempDir();

    std::string bytes[2];
    for (const bool instrumented : {false, true}) {
        obs::set_tracing_enabled(instrumented);
        obs::set_metrics_enabled(instrumented);
        const core::AnalysisResult result =
            core::analyze_chain(executor, spec.chain(), spec.assignments(),
                                spec.analysis_config());
        const std::string path =
            dir + (instrumented ? "obs_det_chain_on.csv"
                                : "obs_det_chain_off.csv");
        core::write_measurements_csv(result.measurements, path);
        obs::set_tracing_enabled(false);
        obs::set_metrics_enabled(false);
        bytes[instrumented ? 1 : 0] = slurp(path);
    }
    EXPECT_EQ(bytes[0], bytes[1]);
    EXPECT_FALSE(bytes[0].empty());
}

// Coordinated campaigns add a coordinator loop and two counters on top of
// the engine; the byte guarantee must survive them. run_shard refuses
// coordinated specs, so the shard bytes come from the coordinator's own
// shard slices instead.
TEST_F(DeterminismTest, CoordinatedCampaignIsByteIdenticalWithObsOn) {
    campaign::CampaignSpec spec = base_spec();
    spec.adaptive_min = 5;
    spec.adaptive_batch = 3;
    spec.adaptive_stability = 2;
    spec.adaptive_coordinated = true;
    spec.adaptive_confidence = 0.95;

    const std::string dir = testing::TempDir();
    RunFiles files[2];
    for (const bool instrumented : {false, true}) {
        obs::clear_trace();
        obs::registry().reset_values();
        obs::set_tracing_enabled(instrumented);
        obs::set_metrics_enabled(instrumented);

        const campaign::CoordinatedCampaignResult coord =
            campaign::run_coordinated_campaign(spec, 2);
        const std::string tag =
            instrumented ? "coordinated_on" : "coordinated_off";
        const std::string measurements_path =
            dir + "obs_det_" + tag + "_measurements.csv";
        const std::string clustering_path = dir + "obs_det_" + tag +
                                            "_clusters.csv";
        const std::string shard_path = dir + "obs_det_" + tag + "_shard.csv";
        core::write_measurements_csv(coord.analysis.measurements,
                                     measurements_path);
        core::write_clustering_csv(coord.analysis.clustering,
                                   coord.analysis.measurements,
                                   clustering_path);
        campaign::write_shard_csv(coord.shards.front(), shard_path);

        if (instrumented) {
            EXPECT_GT(obs::metrics().coordination_rounds.value(), 0u);
            EXPECT_EQ(obs::metrics().stopset_broadcast_total.value(),
                      obs::metrics().coordination_rounds.value() * 2);
        } else {
            EXPECT_EQ(obs::metrics().coordination_rounds.value(), 0u);
        }
        obs::set_tracing_enabled(false);
        obs::set_metrics_enabled(false);

        RunFiles& out = files[instrumented ? 1 : 0];
        out.measurements = slurp(measurements_path);
        out.clustering = slurp(clustering_path);
        out.shard = slurp(shard_path);
    }
    EXPECT_EQ(files[0].measurements, files[1].measurements);
    EXPECT_EQ(files[0].clustering, files[1].clustering);
    EXPECT_EQ(files[0].shard, files[1].shard);
    EXPECT_FALSE(files[0].shard.empty());
}
