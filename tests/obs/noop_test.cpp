//! The disabled-path contract: with tracing and metrics off, instrumented
//! code pays one relaxed atomic load — no heap allocation, no clock read.
//! Global operator new/delete are overridden here to count allocations, so
//! this test asserts the claim directly instead of trusting the comments.
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace obs = relperf::obs;

namespace {

std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t allocations() {
    return g_allocations.load(std::memory_order_relaxed);
}

} // namespace

// Counting overrides. Kept deliberately simple: every allocation in the
// process goes through here, and the tests only ever compare deltas around
// tight regions they control.
void* operator new(std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
    std::free(p);
}

namespace {

class NoopTest : public ::testing::Test {
protected:
    void SetUp() override {
        obs::set_tracing_enabled(false);
        obs::set_metrics_enabled(false);
        obs::clear_trace();
        // Registering the well-known handles allocates once per process;
        // warm it here so the measured regions see a settled registry.
        (void)obs::metrics();
        obs::registry().reset_values();
    }
    void TearDown() override {
        obs::set_tracing_enabled(false);
        obs::set_metrics_enabled(false);
        obs::clear_trace();
        obs::registry().reset_values();
    }
};

} // namespace

TEST_F(NoopTest, DisabledSpanAllocatesNothingAndNeverReadsTheClock) {
    const obs::Metrics& m = obs::metrics();

    const std::uint64_t allocs_before = allocations();
    const std::uint64_t clocks_before = obs::clock_reads();

    for (int i = 0; i < 1000; ++i) {
        obs::Span span("noop.span", "test");
        span.arg("i", static_cast<std::uint64_t>(i))
            .arg("ratio", 0.5)
            .arg("label", "disabled");
        m.samples_total.inc(17);
        m.shard_seconds.observe(1.5);
        obs::report_progress("noop", static_cast<std::size_t>(i), 1000);
    }

    const std::uint64_t allocs_after = allocations();
    const std::uint64_t clocks_after = obs::clock_reads();

    EXPECT_EQ(allocs_after - allocs_before, 0u)
        << "disabled obs path must not allocate";
    EXPECT_EQ(clocks_after - clocks_before, 0u)
        << "disabled obs path must not read the clock";
    EXPECT_EQ(m.samples_total.value(), 0u);
    EXPECT_EQ(m.shard_seconds.count(), 0u);
    EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST_F(NoopTest, EnabledSpanDoesReadTheClock) {
    obs::set_tracing_enabled(true);
    const std::uint64_t clocks_before = obs::clock_reads();
    {
        const obs::Span span("armed.span", "test");
    }
    obs::set_tracing_enabled(false);
    // One read at construction, one at destruction.
    EXPECT_EQ(obs::clock_reads() - clocks_before, 2u);
    EXPECT_EQ(obs::trace_event_count(), 1u);
}

TEST_F(NoopTest, EnabledCounterStillAllocatesNothing) {
    obs::set_metrics_enabled(true);
    const obs::Metrics& m = obs::metrics();

    const std::uint64_t allocs_before = allocations();
    for (int i = 0; i < 1000; ++i) {
        m.samples_total.inc();
        m.shard_seconds.observe(0.25);
    }
    const std::uint64_t allocs_after = allocations();

    EXPECT_EQ(allocs_after - allocs_before, 0u)
        << "counter/histogram updates are lock-free atomics, no heap";
    EXPECT_EQ(m.samples_total.value(), 1000u);
    EXPECT_EQ(m.shard_seconds.count(), 1000u);
}

TEST_F(NoopTest, UninstalledProgressSinkIsInert) {
    const std::uint64_t allocs_before = allocations();
    for (int i = 0; i < 1000; ++i) {
        obs::report_progress("stage", static_cast<std::size_t>(i), 1000);
    }
    EXPECT_EQ(allocations() - allocs_before, 0u);

    // And an installed sink actually receives ticks.
    std::size_t ticks = 0;
    obs::set_progress_sink([&ticks](const obs::Progress& p) {
        ++ticks;
        EXPECT_LE(p.done, p.total);
    });
    obs::report_progress("stage", 1, 2);
    obs::report_progress("stage", 2, 2);
    obs::set_progress_sink({});
    obs::report_progress("stage", 3, 4);
    EXPECT_EQ(ticks, 2u);
}
