//! The metrics registry: counter/gauge/histogram semantics, the
//! metrics_enabled() gate, the Prometheus dump format, and — the invariant
//! the CLI savings line rests on — engine-fed counters matching a scripted
//! source's exact sample counts.
#include "obs/metrics.hpp"

#include "core/measurement_engine.hpp"
#include "obs/obs.hpp"
#include "obs/provenance.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

namespace obs = relperf::obs;
namespace core = relperf::core;

namespace {

/// Every test starts and ends with obs off and zeroed values, so the suite
/// order cannot leak state between cases.
class MetricsTest : public ::testing::Test {
protected:
    void SetUp() override {
        obs::set_metrics_enabled(false);
        obs::set_tracing_enabled(false);
        obs::registry().reset_values();
    }
    void TearDown() override { SetUp(); }
};

/// Deterministic engine input: algorithm i draws values near (i+1) with a
/// small per-sample wobble — well-separated distributions, so membership
/// stabilizes and the engine's early stopping exercises for real. Counts its
/// draws into relperf_samples_total like the executor-backed leaf sources
/// do: the leaves own the "actually drawn" accounting (so cache replays can
/// report zero), and this source stands in for a leaf.
class ScriptedSource final : public core::SampleSource {
public:
    explicit ScriptedSource(std::size_t count) : drawn_(count, 0) {}

    [[nodiscard]] std::size_t count() const override { return drawn_.size(); }
    [[nodiscard]] std::string name(std::size_t index) const override {
        return "alg" + std::to_string(index);
    }
    [[nodiscard]] std::vector<double> draw(std::size_t index,
                                           std::size_t n) override {
        std::vector<double> out;
        out.reserve(n);
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t global = drawn_[index] + k;
            out.push_back(static_cast<double>(index + 1) *
                          (1.0 + 0.001 * static_cast<double>(global % 7)));
        }
        drawn_[index] += n;
        obs::metrics().samples_total.inc(n);
        return out;
    }

    [[nodiscard]] std::size_t drawn(std::size_t index) const {
        return drawn_[index];
    }

private:
    std::vector<std::size_t> drawn_;
};

} // namespace

TEST_F(MetricsTest, CounterIsGatedOnMetricsEnabled) {
    obs::Counter& c = obs::registry().counter("relperf_test_gate_total",
                                              "gating test counter");
    c.inc(5);
    EXPECT_EQ(c.value(), 0u) << "disabled counter must not accumulate";
    obs::set_metrics_enabled(true);
    c.inc(5);
    c.inc();
    EXPECT_EQ(c.value(), 6u);
    obs::set_metrics_enabled(false);
    c.inc(100);
    EXPECT_EQ(c.value(), 6u);
}

TEST_F(MetricsTest, GaugeKeepsLastWrite) {
    obs::Gauge& g = obs::registry().gauge("relperf_test_gauge", "gauge test");
    obs::set_metrics_enabled(true);
    g.set(2.5);
    g.set(-1.25);
    EXPECT_EQ(g.value(), -1.25);
}

TEST_F(MetricsTest, HistogramBucketsSumAndCount) {
    obs::Histogram& h = obs::registry().histogram(
        "relperf_test_hist", "histogram test", {1.0, 10.0});
    obs::set_metrics_enabled(true);
    h.observe(0.5);  // <= 1.0
    h.observe(1.0);  // <= 1.0 (bounds are inclusive)
    h.observe(5.0);  // <= 10.0
    h.observe(50.0); // +Inf
    EXPECT_EQ(h.bucket_count(0), 2u);
    EXPECT_EQ(h.bucket_count(1), 1u);
    EXPECT_EQ(h.bucket_count(2), 1u);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 56.5);
}

TEST_F(MetricsTest, RegistryReturnsSameHandleAndRejectsTypeChange) {
    obs::Counter& a = obs::registry().counter("relperf_test_stable_total",
                                              "stable handle");
    obs::Counter& b = obs::registry().counter("relperf_test_stable_total",
                                              "stable handle");
    EXPECT_EQ(&a, &b);
    EXPECT_THROW((void)obs::registry().gauge("relperf_test_stable_total",
                                             "stable handle"),
                 relperf::Error);
    EXPECT_THROW((void)obs::registry().counter("relperf_test_stable_total",
                                               "different help"),
                 relperf::Error);
}

TEST_F(MetricsTest, PrometheusDumpFormat) {
    obs::set_metrics_enabled(true);
    obs::registry().counter("relperf_test_fmt_total", "a counter").inc(3);
    obs::registry()
        .histogram("relperf_test_fmt_seconds", "a histogram", {0.5})
        .observe(0.25);
    const std::string dump = obs::registry().render_prometheus();

    EXPECT_NE(dump.find("# HELP relperf_test_fmt_total a counter\n"),
              std::string::npos);
    EXPECT_NE(dump.find("# TYPE relperf_test_fmt_total counter\n"),
              std::string::npos);
    EXPECT_NE(dump.find("\nrelperf_test_fmt_total 3\n"), std::string::npos);
    EXPECT_NE(dump.find("# TYPE relperf_test_fmt_seconds histogram\n"),
              std::string::npos);
    EXPECT_NE(dump.find("relperf_test_fmt_seconds_bucket{le=\"0.5\"} 1\n"),
              std::string::npos);
    EXPECT_NE(dump.find("relperf_test_fmt_seconds_bucket{le=\"+Inf\"} 1\n"),
              std::string::npos);
    EXPECT_NE(dump.find("relperf_test_fmt_seconds_sum 0.25\n"),
              std::string::npos);
    EXPECT_NE(dump.find("relperf_test_fmt_seconds_count 1\n"),
              std::string::npos);
    // The provenance info metric leads the dump.
    EXPECT_EQ(dump.rfind("# HELP relperf_build_info", 0), 0u);
    EXPECT_NE(dump.find("relperf_build_info{host=\""), std::string::npos);
}

TEST_F(MetricsTest, WellKnownHandlesAreRegistered) {
    const obs::Metrics& m = obs::metrics();
    const std::string dump = obs::registry().render_prometheus();
    EXPECT_NE(dump.find("relperf_samples_total"), std::string::npos);
    EXPECT_NE(dump.find("relperf_samples_fixed_n_total"), std::string::npos);
    EXPECT_NE(dump.find("relperf_adaptive_rounds"), std::string::npos);
    EXPECT_NE(dump.find("relperf_bootstrap_resamples_total"),
              std::string::npos);
    EXPECT_NE(dump.find("relperf_shard_seconds_bucket"), std::string::npos);
    EXPECT_EQ(m.samples_total.value(), 0u);
}

// The cross-check the ISSUE demands: counters fed by the engine equal the
// scripted source's exact draw counts — the CLI savings line and the
// --metrics dump can then never disagree with the samples CSV.
TEST_F(MetricsTest, EngineCountersMatchScriptedSourceExactly) {
    const obs::Metrics& m = obs::metrics();
    obs::set_metrics_enabled(true);

    core::AdaptiveConfig adaptive;
    adaptive.min_n = 6;
    adaptive.max_n = 20;
    adaptive.batch = 4;
    adaptive.stability_rounds = 2;
    core::ClustererConfig clustering;
    clustering.repetitions = 20;
    clustering.seed = 7;
    const core::MeasurementEngine engine(adaptive, {}, clustering);

    ScriptedSource source(4);
    const core::EngineResult result = engine.run(source);

    std::size_t drawn_total = 0;
    for (std::size_t i = 0; i < source.count(); ++i) {
        drawn_total += source.drawn(i);
        EXPECT_EQ(source.drawn(i), result.samples_per_alg[i]) << "alg " << i;
    }
    EXPECT_EQ(result.total_samples, drawn_total);
    EXPECT_EQ(m.samples_total.value(), drawn_total);
    EXPECT_EQ(m.samples_fixed_n_total.value(), result.fixed_n_samples);
    EXPECT_EQ(m.samples_fixed_n_total.value(),
              source.count() * adaptive.max_n);
    EXPECT_EQ(m.adaptive_rounds.value(), result.rounds);
    EXPECT_EQ(m.clusterings_total.value(), result.rounds);
    EXPECT_GT(m.bootstrap_resamples_total.value(), 0u);

    // And the fixed-N entry point: measure_all adds exactly count * n.
    obs::registry().reset_values();
    ScriptedSource fixed_source(3);
    const core::MeasurementSet set = core::measure_all(fixed_source, 9);
    EXPECT_EQ(set.total_samples(), 27u);
    EXPECT_EQ(m.samples_total.value(), 27u);
    EXPECT_EQ(m.samples_fixed_n_total.value(), 0u)
        << "measure_all reports actual cost only; the fixed-N plan counter "
           "belongs to the callers that know the plan";
}
