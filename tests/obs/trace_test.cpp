//! The trace layer: disabled spans record nothing, enabled spans capture
//! name/cat/args, render_trace_json emits valid JSON with the documented
//! shape, and two identical engine runs produce the same event sequence
//! (the determinism the Chrome-trace diffing workflow relies on).
#include "obs/trace.hpp"

#include "core/measurement_engine.hpp"
#include "obs/obs.hpp"
#include "obs/provenance.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <string>
#include <vector>

namespace obs = relperf::obs;
namespace core = relperf::core;

namespace {

class TraceTest : public ::testing::Test {
protected:
    void SetUp() override {
        obs::set_tracing_enabled(false);
        obs::set_metrics_enabled(false);
        obs::clear_trace();
        obs::clear_provenance();
    }
    void TearDown() override { SetUp(); }
};

/// Minimal recursive-descent JSON validator — enough to prove the trace
/// output parses as one well-formed value, with no JSON library dependency.
class JsonChecker {
public:
    explicit JsonChecker(std::string_view text) : text_(text) {}

    [[nodiscard]] bool valid() {
        skip_ws();
        return value() && (skip_ws(), pos_ == text_.size());
    }

private:
    bool value() {
        if (pos_ >= text_.size()) return false;
        switch (text_[pos_]) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't': return literal("true");
        case 'f': return literal("false");
        case 'n': return literal("null");
        default: return number();
        }
    }
    bool object() {
        ++pos_; // '{'
        skip_ws();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (peek() != ':') return false;
            ++pos_;
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }
    bool array() {
        ++pos_; // '['
        skip_ws();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }
    bool string() {
        if (peek() != '"') return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                if (pos_ + 1 >= text_.size()) return false;
                ++pos_;
            }
            ++pos_;
        }
        if (pos_ >= text_.size()) return false;
        ++pos_; // closing quote
        return true;
    }
    bool number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }
    bool literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) return false;
        pos_ += word.size();
        return true;
    }
    void skip_ws() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
            ++pos_;
        }
    }
    [[nodiscard]] char peek() const {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

/// Same scripted distributions as metrics_test: separable, deterministic.
class ScriptedSource final : public core::SampleSource {
public:
    explicit ScriptedSource(std::size_t count) : drawn_(count, 0) {}

    [[nodiscard]] std::size_t count() const override { return drawn_.size(); }
    [[nodiscard]] std::string name(std::size_t index) const override {
        return "alg" + std::to_string(index);
    }
    [[nodiscard]] std::vector<double> draw(std::size_t index,
                                           std::size_t n) override {
        std::vector<double> out;
        out.reserve(n);
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t global = drawn_[index] + k;
            out.push_back(static_cast<double>(index + 1) *
                          (1.0 + 0.001 * static_cast<double>(global % 7)));
        }
        drawn_[index] += n;
        return out;
    }

private:
    std::vector<std::size_t> drawn_;
};

/// The order- and content-carrying part of an event: everything except
/// timestamps and durations, which legitimately differ between runs.
std::vector<std::string> event_signatures() {
    std::vector<std::string> out;
    for (const obs::TraceEvent& e : obs::trace_events()) {
        std::string sig = e.name + "|" + e.cat;
        for (const auto& [key, value] : e.args) {
            sig += "|" + key + "=" + value;
        }
        out.push_back(std::move(sig));
    }
    return out;
}

std::vector<std::string> traced_engine_run() {
    obs::clear_trace();
    obs::set_tracing_enabled(true);
    core::AdaptiveConfig adaptive;
    adaptive.min_n = 6;
    adaptive.max_n = 20;
    adaptive.batch = 4;
    const core::MeasurementEngine engine(adaptive);
    ScriptedSource source(3);
    (void)engine.run(source);
    obs::set_tracing_enabled(false);
    return event_signatures();
}

} // namespace

TEST_F(TraceTest, DisabledSpansRecordNothing) {
    {
        obs::Span span("quiet", "test");
        span.arg("k", std::uint64_t{1}).arg("s", "value");
        EXPECT_FALSE(span.armed());
    }
    EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST_F(TraceTest, EnabledSpanCapturesNameCatAndArgs) {
    obs::set_tracing_enabled(true);
    {
        obs::Span span("loud", "test");
        EXPECT_TRUE(span.armed());
        span.arg("n", std::uint64_t{42})
            .arg("ratio", 0.5)
            .arg("label", "a \"b\"\n");
    }
    obs::set_tracing_enabled(false);

    const std::vector<obs::TraceEvent> events = obs::trace_events();
    ASSERT_EQ(events.size(), 1u);
    const obs::TraceEvent& e = events[0];
    EXPECT_EQ(e.name, "loud");
    EXPECT_EQ(e.cat, "test");
    ASSERT_EQ(e.args.size(), 3u);
    EXPECT_EQ(e.args[0].first, "n");
    EXPECT_EQ(e.args[0].second, "42");
    EXPECT_EQ(e.args[1].first, "ratio");
    EXPECT_EQ(e.args[1].second, "0.5");
    EXPECT_EQ(e.args[2].first, "label");
    EXPECT_EQ(e.args[2].second, "\"a \\\"b\\\"\\n\"");
}

TEST_F(TraceTest, RenderedJsonIsWellFormedWithProvenanceAndEscaping) {
    obs::set_provenance("command", "trace_test \"quoted\"\tvalue");
    obs::set_tracing_enabled(true);
    {
        obs::Span outer("outer", "test");
        outer.arg("note", "needs \\escaping\"");
        const obs::Span inner("inner", "test");
    }
    obs::set_tracing_enabled(false);

    const std::string json = obs::render_trace_json();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;

    // Inner spans complete first, so the buffer is in completion order.
    EXPECT_NE(json.find("{\"name\":\"inner\",\"cat\":\"test\",\"ph\":\"X\""),
              std::string::npos);
    EXPECT_NE(json.find("{\"name\":\"outer\",\"cat\":\"test\",\"ph\":\"X\""),
              std::string::npos);
    EXPECT_LT(json.find("\"name\":\"inner\""), json.find("\"name\":\"outer\""));
    EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(json.find("\"otherData\""), std::string::npos);
    EXPECT_NE(json.find("\"command\":\"trace_test \\\"quoted\\\"\\tvalue\""),
              std::string::npos);
    EXPECT_NE(json.find("\"droppedEvents\":0"), std::string::npos);
}

TEST_F(TraceTest, EmptyTraceStillRendersValidJson) {
    const std::string json = obs::render_trace_json();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST_F(TraceTest, IdenticalEngineRunsProduceIdenticalEventSequences) {
    const std::vector<std::string> first = traced_engine_run();
    const std::vector<std::string> second = traced_engine_run();

    ASSERT_FALSE(first.empty());
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i], second[i]) << "event " << i;
    }

    // The instrumented stages all show up.
    const auto has = [&first](std::string_view name) {
        for (const std::string& sig : first) {
            if (sig.rfind(name, 0) == 0) return true;
        }
        return false;
    };
    EXPECT_TRUE(has("engine.run|engine"));
    EXPECT_TRUE(has("engine.round|engine"));
    EXPECT_TRUE(has("measure_all|core"));
    EXPECT_TRUE(has("clusterer.cluster|core"));
}
