#include "workloads/task.hpp"

#include "linalg/gemm.hpp"
#include "linalg/rls.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

namespace workloads = relperf::workloads;
using workloads::TaskCost;
using workloads::TaskKind;
using workloads::TaskSpec;

TEST(TaskKindName, Strings) {
    EXPECT_STREQ(workloads::to_string(TaskKind::RlsLoop), "rls");
    EXPECT_STREQ(workloads::to_string(TaskKind::GemmLoop), "gemm");
}

TEST(OpsPerIteration, MatchesOpGraphs) {
    EXPECT_DOUBLE_EQ(workloads::ops_per_iteration(TaskKind::RlsLoop), 10.0);
    EXPECT_DOUBLE_EQ(workloads::ops_per_iteration(TaskKind::GemmLoop), 3.0);
}

TEST(TaskCostFn, RlsLoopUsesRlsFlops) {
    const TaskSpec spec{"L1", TaskKind::RlsLoop, 50, 10, std::nullopt};
    const TaskCost cost = workloads::task_cost(spec);
    EXPECT_DOUBLE_EQ(cost.flops, 10.0 * relperf::linalg::rls_flops(50));
    EXPECT_DOUBLE_EQ(cost.op_launches, 100.0);
    // Only the penalty scalar crosses devices.
    EXPECT_DOUBLE_EQ(cost.bytes_in, 8.0);
    EXPECT_DOUBLE_EQ(cost.bytes_out, 8.0);
}

TEST(TaskCostFn, GemmLoopStreamsOperands) {
    const TaskSpec spec{"L", TaskKind::GemmLoop, 100, 5, std::nullopt};
    const TaskCost cost = workloads::task_cost(spec);
    EXPECT_DOUBLE_EQ(cost.flops, 5.0 * relperf::linalg::gemm_flops(100, 100, 100));
    EXPECT_DOUBLE_EQ(cost.bytes_in, 5.0 * 2.0 * 100.0 * 100.0 * 8.0);
    EXPECT_DOUBLE_EQ(cost.bytes_out, 5.0 * 100.0 * 100.0 * 8.0);
    EXPECT_DOUBLE_EQ(cost.op_launches, 15.0);
}

TEST(TaskCostFn, OverrideWinsOverDerivation) {
    TaskSpec spec{"L", TaskKind::GemmLoop, 100, 5,
                  TaskCost{1.0, 2.0, 3.0, 4.0}};
    const TaskCost cost = workloads::task_cost(spec);
    EXPECT_DOUBLE_EQ(cost.flops, 1.0);
    EXPECT_DOUBLE_EQ(cost.bytes_in, 2.0);
    EXPECT_DOUBLE_EQ(cost.bytes_out, 3.0);
    EXPECT_DOUBLE_EQ(cost.op_launches, 4.0);
}

TEST(TaskCostFn, InvalidSpecThrows) {
    const TaskSpec zero_size{"L", TaskKind::RlsLoop, 0, 10, std::nullopt};
    EXPECT_THROW((void)workloads::task_cost(zero_size), relperf::InvalidArgument);
    const TaskSpec zero_iters{"L", TaskKind::RlsLoop, 10, 0, std::nullopt};
    EXPECT_THROW((void)workloads::task_cost(zero_iters), relperf::InvalidArgument);
}

TEST(TaskCostFn, CostScalesLinearlyWithIters) {
    const TaskSpec one{"L", TaskKind::RlsLoop, 64, 1, std::nullopt};
    const TaskSpec ten{"L", TaskKind::RlsLoop, 64, 10, std::nullopt};
    EXPECT_DOUBLE_EQ(workloads::task_cost(ten).flops,
                     10.0 * workloads::task_cost(one).flops);
    EXPECT_DOUBLE_EQ(workloads::task_cost(ten).op_launches,
                     10.0 * workloads::task_cost(one).op_launches);
}
