#include "workloads/generator.hpp"

#include "support/error.hpp"

#include <gtest/gtest.h>

namespace workloads = relperf::workloads;
using relperf::stats::Rng;
using workloads::GeneratorConfig;

TEST(RandomChain, RespectsConfiguredRanges) {
    GeneratorConfig config;
    config.min_tasks = 2;
    config.max_tasks = 5;
    config.min_size = 10;
    config.max_size = 20;
    config.min_iters = 3;
    config.max_iters = 7;

    Rng rng(17);
    for (int trial = 0; trial < 50; ++trial) {
        const workloads::TaskChain chain = workloads::random_chain(config, rng);
        EXPECT_GE(chain.size(), 2u);
        EXPECT_LE(chain.size(), 5u);
        for (const auto& t : chain.tasks) {
            EXPECT_GE(t.size, 10u);
            EXPECT_LE(t.size, 20u);
            EXPECT_GE(t.iters, 3u);
            EXPECT_LE(t.iters, 7u);
        }
    }
}

TEST(RandomChain, SeedDeterministic) {
    const GeneratorConfig config;
    Rng a(5);
    Rng b(5);
    const auto ca = workloads::random_chain(config, a);
    const auto cb = workloads::random_chain(config, b);
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
        EXPECT_EQ(ca.tasks[i].size, cb.tasks[i].size);
        EXPECT_EQ(ca.tasks[i].iters, cb.tasks[i].iters);
        EXPECT_EQ(ca.tasks[i].kind, cb.tasks[i].kind);
    }
}

TEST(RandomChain, GemmProbabilityExtremes) {
    GeneratorConfig all_gemm;
    all_gemm.gemm_prob = 1.0;
    GeneratorConfig all_rls;
    all_rls.gemm_prob = 0.0;

    Rng rng(23);
    for (int trial = 0; trial < 10; ++trial) {
        for (const auto& t : workloads::random_chain(all_gemm, rng).tasks) {
            EXPECT_EQ(t.kind, workloads::TaskKind::GemmLoop);
        }
        for (const auto& t : workloads::random_chain(all_rls, rng).tasks) {
            EXPECT_EQ(t.kind, workloads::TaskKind::RlsLoop);
        }
    }
}

TEST(RandomChain, TaskNamesAreSequential) {
    const GeneratorConfig config;
    Rng rng(31);
    const auto chain = workloads::random_chain(config, rng);
    for (std::size_t i = 0; i < chain.size(); ++i) {
        EXPECT_EQ(chain.tasks[i].name, "L" + std::to_string(i + 1));
    }
}

TEST(RandomChain, DefaultConfigLeavesBackendInherited) {
    const GeneratorConfig config;
    Rng rng(41);
    EXPECT_TRUE(workloads::random_chain(config, rng).backend.empty());
}

TEST(RandomChain, DrawsBackendFromConfiguredAxis) {
    GeneratorConfig config;
    config.backends = {"portable", "reference"};
    Rng rng(43);
    bool saw_portable = false;
    bool saw_reference = false;
    for (int trial = 0; trial < 64; ++trial) {
        const std::string backend =
            workloads::random_chain(config, rng).backend;
        ASSERT_TRUE(backend == "portable" || backend == "reference") << backend;
        saw_portable = saw_portable || backend == "portable";
        saw_reference = saw_reference || backend == "reference";
    }
    // Uniform draw over two entries: 64 trials miss one side with p = 2^-63.
    EXPECT_TRUE(saw_portable);
    EXPECT_TRUE(saw_reference);

    config.backends = {"blas"};
    EXPECT_EQ(workloads::random_chain(config, rng).backend, "blas");
}

TEST(RandomChain, BackendDrawIsSeedDeterministic) {
    GeneratorConfig config;
    config.backends = {"portable", "reference", "blas"};
    Rng a(5);
    Rng b(5);
    for (int trial = 0; trial < 10; ++trial) {
        EXPECT_EQ(workloads::random_chain(config, a).backend,
                  workloads::random_chain(config, b).backend);
    }
}

TEST(RandomChain, InvalidConfigThrows) {
    Rng rng(1);
    GeneratorConfig bad;
    bad.min_tasks = 5;
    bad.max_tasks = 2;
    EXPECT_THROW((void)workloads::random_chain(bad, rng), relperf::InvalidArgument);

    GeneratorConfig bad_size;
    bad_size.min_size = 1;
    EXPECT_THROW((void)workloads::random_chain(bad_size, rng),
                 relperf::InvalidArgument);

    GeneratorConfig bad_prob;
    bad_prob.gemm_prob = 1.5;
    EXPECT_THROW((void)workloads::random_chain(bad_prob, rng),
                 relperf::InvalidArgument);

    GeneratorConfig bad_backend;
    bad_backend.backends = {"portable", ""};
    EXPECT_THROW((void)workloads::random_chain(bad_backend, rng),
                 relperf::InvalidArgument);
}
