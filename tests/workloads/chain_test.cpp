#include "workloads/chain.hpp"

#include "support/error.hpp"

#include <gtest/gtest.h>

namespace workloads = relperf::workloads;
using workloads::DeviceAssignment;
using workloads::TaskChain;
using workloads::TaskKind;

TEST(PaperRlsChain, MatchesProcedure5) {
    const TaskChain chain = workloads::paper_rls_chain(10);
    ASSERT_EQ(chain.size(), 3u);
    EXPECT_EQ(chain.tasks[0].name, "L1");
    EXPECT_EQ(chain.tasks[0].size, 50u);
    EXPECT_EQ(chain.tasks[1].size, 75u);
    EXPECT_EQ(chain.tasks[2].size, 300u);
    for (const auto& t : chain.tasks) {
        EXPECT_EQ(t.kind, TaskKind::RlsLoop);
        EXPECT_EQ(t.iters, 10u);
        EXPECT_FALSE(t.cost_override.has_value());
    }
}

TEST(PaperRlsChain, ZeroItersThrows) {
    EXPECT_THROW((void)workloads::paper_rls_chain(0), relperf::InvalidArgument);
}

TEST(TwoLoopChain, MatchesFigure1a) {
    const TaskChain chain = workloads::two_loop_chain();
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_EQ(chain.tasks[0].kind, TaskKind::GemmLoop);
    ASSERT_TRUE(chain.tasks[0].cost_override.has_value());
    ASSERT_TRUE(chain.tasks[1].cost_override.has_value());
    // L2 is the "larger matrix-matrix multiplication": more data streamed.
    EXPECT_GT(chain.tasks[1].cost_override->bytes_in,
              chain.tasks[0].cost_override->bytes_in);
    // L1 is compute-dense: high arithmetic intensity.
    const double ai1 = chain.tasks[0].cost_override->flops /
                       chain.tasks[0].cost_override->bytes_in;
    const double ai2 = chain.tasks[1].cost_override->flops /
                       chain.tasks[1].cost_override->bytes_in;
    EXPECT_GT(ai1, 10.0 * ai2);
}

TEST(MakeRlsChain, BuildsNamedTasks) {
    const TaskChain chain = workloads::make_rls_chain({16, 32}, 3, "custom");
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_EQ(chain.name, "custom");
    EXPECT_EQ(chain.tasks[0].name, "L1");
    EXPECT_EQ(chain.tasks[1].name, "L2");
    EXPECT_EQ(chain.tasks[1].size, 32u);
    EXPECT_EQ(chain.tasks[0].iters, 3u);
}

TEST(MakeRlsChain, InvalidInputsThrow) {
    EXPECT_THROW((void)workloads::make_rls_chain({}, 3), relperf::InvalidArgument);
    EXPECT_THROW((void)workloads::make_rls_chain({16}, 0), relperf::InvalidArgument);
}

TEST(FlopSplit, PartitionsByPlacement) {
    const TaskChain chain = workloads::paper_rls_chain(10);
    const auto all_device = workloads::flop_split(chain, DeviceAssignment("DDD"));
    const auto all_accel = workloads::flop_split(chain, DeviceAssignment("AAA"));
    const auto mixed = workloads::flop_split(chain, DeviceAssignment("DDA"));

    EXPECT_DOUBLE_EQ(all_device.on_accelerator, 0.0);
    EXPECT_DOUBLE_EQ(all_accel.on_device, 0.0);
    EXPECT_DOUBLE_EQ(all_device.total(), all_accel.total());
    EXPECT_DOUBLE_EQ(mixed.total(), all_device.total());
    EXPECT_GT(mixed.on_accelerator, 0.0);
    EXPECT_GT(mixed.on_device, 0.0);
    // L3 (size 300) dominates the FLOPs: offloading it moves most work.
    EXPECT_GT(mixed.on_accelerator, mixed.on_device);
}

TEST(FlopSplit, LengthMismatchThrows) {
    const TaskChain chain = workloads::paper_rls_chain(10);
    EXPECT_THROW((void)workloads::flop_split(chain, DeviceAssignment("DD")),
                 relperf::InvalidArgument);
}

TEST(BytesOverLink, CountsOnlyRemoteTasks) {
    const TaskChain chain = workloads::two_loop_chain();
    EXPECT_DOUBLE_EQ(workloads::bytes_over_link(chain, DeviceAssignment("DD")), 0.0);
    const double ad = workloads::bytes_over_link(chain, DeviceAssignment("AD"));
    const double da = workloads::bytes_over_link(chain, DeviceAssignment("DA"));
    const double aa = workloads::bytes_over_link(chain, DeviceAssignment("AA"));
    EXPECT_GT(ad, 0.0);
    EXPECT_GT(da, ad); // L2 streams far more data
    EXPECT_DOUBLE_EQ(aa, ad + da);
}
