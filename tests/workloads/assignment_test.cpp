#include "workloads/assignment.hpp"

#include "support/error.hpp"

#include <gtest/gtest.h>

namespace workloads = relperf::workloads;
using workloads::DeviceAssignment;
using workloads::Placement;

TEST(Placement, CharRoundTrip) {
    EXPECT_EQ(workloads::to_char(Placement::Device), 'D');
    EXPECT_EQ(workloads::to_char(Placement::Accelerator), 'A');
    EXPECT_EQ(workloads::placement_from_char('D'), Placement::Device);
    EXPECT_EQ(workloads::placement_from_char('A'), Placement::Accelerator);
    EXPECT_THROW((void)workloads::placement_from_char('X'), relperf::InvalidArgument);
}

TEST(DeviceAssignment, ParsesLetterString) {
    const DeviceAssignment a("DDA");
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a.at(0), Placement::Device);
    EXPECT_EQ(a.at(1), Placement::Device);
    EXPECT_EQ(a.at(2), Placement::Accelerator);
    EXPECT_EQ(a.str(), "DDA");
    EXPECT_EQ(a.alg_name(), "algDDA");
}

TEST(DeviceAssignment, InvalidStringsThrow) {
    EXPECT_THROW(DeviceAssignment(""), relperf::InvalidArgument);
    EXPECT_THROW(DeviceAssignment("DXA"), relperf::InvalidArgument);
    EXPECT_THROW(DeviceAssignment("da"), relperf::InvalidArgument);
}

TEST(DeviceAssignment, VectorConstructor) {
    const DeviceAssignment a(
        std::vector<Placement>{Placement::Accelerator, Placement::Device});
    EXPECT_EQ(a.str(), "AD");
    EXPECT_THROW(DeviceAssignment(std::vector<Placement>{}), relperf::InvalidArgument);
}

TEST(DeviceAssignment, OutOfRangeIndexThrows) {
    const DeviceAssignment a("DD");
    EXPECT_THROW((void)a.at(2), relperf::InvalidArgument);
}

TEST(DeviceAssignment, AcceleratorCount) {
    EXPECT_EQ(DeviceAssignment("DDD").accelerator_count(), 0u);
    EXPECT_EQ(DeviceAssignment("DAD").accelerator_count(), 1u);
    EXPECT_EQ(DeviceAssignment("AAA").accelerator_count(), 3u);
}

TEST(DeviceAssignment, SwitchCountIncludesVirtualStart) {
    // The chain is invoked from the edge device.
    EXPECT_EQ(DeviceAssignment("DDD").switch_count(), 0u);
    EXPECT_EQ(DeviceAssignment("ADD").switch_count(), 2u); // D->A, A->D
    EXPECT_EQ(DeviceAssignment("DDA").switch_count(), 1u); // D->A at the end
    EXPECT_EQ(DeviceAssignment("ADA").switch_count(), 3u);
    EXPECT_EQ(DeviceAssignment("AAA").switch_count(), 1u);
}

TEST(DeviceAssignment, Equality) {
    EXPECT_EQ(DeviceAssignment("DA"), DeviceAssignment("DA"));
    EXPECT_FALSE(DeviceAssignment("DA") == DeviceAssignment("AD"));
}

TEST(EnumerateAssignments, CountsAndOrder) {
    const auto two = workloads::enumerate_assignments(2);
    ASSERT_EQ(two.size(), 4u);
    EXPECT_EQ(two[0].str(), "DD");
    EXPECT_EQ(two[1].str(), "DA");
    EXPECT_EQ(two[2].str(), "AD");
    EXPECT_EQ(two[3].str(), "AA");

    const auto three = workloads::enumerate_assignments(3);
    ASSERT_EQ(three.size(), 8u);
    EXPECT_EQ(three.front().str(), "DDD");
    EXPECT_EQ(three.back().str(), "AAA");
}

TEST(EnumerateAssignments, AllDistinct) {
    const auto assignments = workloads::enumerate_assignments(4);
    ASSERT_EQ(assignments.size(), 16u);
    for (std::size_t i = 0; i < assignments.size(); ++i) {
        for (std::size_t j = i + 1; j < assignments.size(); ++j) {
            EXPECT_FALSE(assignments[i] == assignments[j]);
        }
    }
}

TEST(EnumerateAssignments, InvalidCountsThrow) {
    EXPECT_THROW((void)workloads::enumerate_assignments(0), relperf::InvalidArgument);
    EXPECT_THROW((void)workloads::enumerate_assignments(25), relperf::InvalidArgument);
}
