#include "workloads/mathtask.hpp"

#include "linalg/backend.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace workloads = relperf::workloads;
using relperf::stats::Rng;

TEST(RunRlsTask, ReturnsFinitePositivePenalty) {
    Rng rng(1);
    const double penalty = workloads::run_rls_task(16, 3, 0.0, rng);
    EXPECT_TRUE(std::isfinite(penalty));
    EXPECT_GT(penalty, 0.0);
}

TEST(RunRlsTask, SeedDeterministic) {
    Rng a(42);
    Rng b(42);
    EXPECT_DOUBLE_EQ(workloads::run_rls_task(12, 2, 0.5, a),
                     workloads::run_rls_task(12, 2, 0.5, b));
}

TEST(RunRlsTask, InvalidInputsThrow) {
    Rng rng(1);
    EXPECT_THROW((void)workloads::run_rls_task(0, 3, 0.0, rng),
                 relperf::InvalidArgument);
    EXPECT_THROW((void)workloads::run_rls_task(8, 0, 0.0, rng),
                 relperf::InvalidArgument);
    EXPECT_THROW((void)workloads::run_rls_task(8, 1, -1.0, rng),
                 relperf::InvalidArgument);
    EXPECT_THROW((void)workloads::run_rls_task(8, 1,
                                               std::numeric_limits<double>::quiet_NaN(),
                                               rng),
                 relperf::InvalidArgument);
}

TEST(RunGemmTask, ChecksumIsPositiveAndDeterministic) {
    Rng a(7);
    Rng b(7);
    const double ca = workloads::run_gemm_task(10, 2, a);
    const double cb = workloads::run_gemm_task(10, 2, b);
    EXPECT_GT(ca, 0.0);
    EXPECT_DOUBLE_EQ(ca, cb);
}

TEST(RunTask, DispatchesOnKind) {
    const workloads::TaskSpec rls{"L", workloads::TaskKind::RlsLoop, 12, 1,
                                  std::nullopt};
    const workloads::TaskSpec gemm{"L", workloads::TaskKind::GemmLoop, 12, 1,
                                   std::nullopt};
    Rng r1(3);
    Rng r2(3);
    // Same seed, different kinds -> different computations.
    const double a = workloads::run_task(rls, 0.0, r1);
    const double g = workloads::run_task(gemm, 0.0, r2);
    EXPECT_TRUE(std::isfinite(a));
    EXPECT_TRUE(std::isfinite(g));
    EXPECT_NE(a, g);
}

TEST(RunChain, ThreadsPenaltyThroughTasks) {
    const workloads::TaskChain chain = workloads::make_rls_chain({8, 12}, 2);
    Rng rng(9);
    const double result = workloads::run_chain(chain, rng);
    EXPECT_TRUE(std::isfinite(result));

    const workloads::TaskChain empty{"empty", {}, {}};
    Rng rng2(9);
    EXPECT_THROW((void)workloads::run_chain(empty, rng2), relperf::InvalidArgument);
}

TEST(RunChain, SelectsTheChainBackendForTheWholeRun) {
    // A chain pinned to a backend computes on it: the run must match the
    // same chain executed under an explicit scoped selection, bit for bit.
    workloads::TaskChain pinned = workloads::make_rls_chain({8, 12}, 2);
    pinned.backend = "reference";
    Rng r1(13);
    const double via_chain = workloads::run_chain(pinned, r1);

    workloads::TaskChain inherited = workloads::make_rls_chain({8, 12}, 2);
    ASSERT_TRUE(inherited.backend.empty());
    Rng r2(13);
    double via_scope = 0.0;
    {
        const relperf::linalg::ScopedBackend scope("reference");
        via_scope = workloads::run_chain(inherited, r2);
    }
    EXPECT_EQ(via_chain, via_scope);

    // ...and the selection must not leak out of run_chain.
    EXPECT_EQ(relperf::linalg::active_backend().name,
              relperf::linalg::kPortableBackend);
}

TEST(RunChain, MakeRlsChainForwardsTheBackend) {
    const workloads::TaskChain chain =
        workloads::make_rls_chain({8}, 1, "named", "blas");
    EXPECT_EQ(chain.backend, "blas");
    EXPECT_EQ(chain.name, "named");
}

TEST(RunChain, UnknownBackendThrows) {
    workloads::TaskChain chain = workloads::make_rls_chain({8}, 1);
    chain.backend = "warp-core";
    Rng rng(17);
    EXPECT_THROW((void)workloads::run_chain(chain, rng),
                 relperf::InvalidArgument);
}
