#include "workloads/assignment.hpp"

#include "stats/rng.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <set>

namespace workloads = relperf::workloads;
using relperf::stats::Rng;
using workloads::DeviceAssignment;
using workloads::ExecutionPolicy;
using workloads::Placement;
using workloads::VariantAssignment;

TEST(VariantAssignment, PlainLetterStringMeansInherit) {
    const VariantAssignment v("DDA");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v.at(0).placement, Placement::Device);
    EXPECT_EQ(v.at(2).placement, Placement::Accelerator);
    for (std::size_t i = 0; i < v.size(); ++i) {
        EXPECT_TRUE(v.at(i).backend.empty());
    }
    EXPECT_TRUE(v.uniform_inherit());
    // Canonical print keeps the paper's names for pure-placement variants.
    EXPECT_EQ(v.str(), "DDA");
    EXPECT_EQ(v.alg_name(), "algDDA");
    EXPECT_EQ(v.device_assignment(), DeviceAssignment("DDA"));
}

TEST(VariantAssignment, ExtendedSyntaxParsesPerTaskBackends) {
    const VariantAssignment v("D:portable,A:blas");
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v.at(0).placement, Placement::Device);
    EXPECT_EQ(v.at(0).backend, "portable");
    EXPECT_EQ(v.at(1).placement, Placement::Accelerator);
    EXPECT_EQ(v.at(1).backend, "blas");
    EXPECT_FALSE(v.uniform_inherit());
    EXPECT_EQ(v.str(), "D:portable,A:blas");
    EXPECT_EQ(v.alg_name(), "algD:portable,A:blas");
    EXPECT_EQ(v.device_assignment(), DeviceAssignment("DA"));
}

TEST(VariantAssignment, MixedInheritAndExplicitFields) {
    const VariantAssignment v("D,A:blas,D");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_TRUE(v.at(0).backend.empty());
    EXPECT_EQ(v.at(1).backend, "blas");
    EXPECT_TRUE(v.at(2).backend.empty());
    EXPECT_EQ(v.str(), "D,A:blas,D");
}

TEST(VariantAssignment, CommaSyntaxWithoutBackendsPrintsCanonically) {
    // "D,A" parses, but the canonical form of an all-inherit variant is the
    // plain letter string.
    const VariantAssignment v("D,A");
    EXPECT_TRUE(v.uniform_inherit());
    EXPECT_EQ(v.str(), "DA");
    EXPECT_EQ(v, VariantAssignment("DA"));
}

TEST(VariantAssignment, ResolvedBackendPrefersPolicyOverChainDefault) {
    const VariantAssignment v("D,A:blas");
    EXPECT_EQ(v.resolved_backend(0, "portable"), "portable"); // inherits
    EXPECT_EQ(v.resolved_backend(1, "portable"), "blas");     // overrides
    EXPECT_EQ(v.resolved_backend(0, ""), "");                 // ambient
}

TEST(VariantAssignment, MalformedStringsThrow) {
    EXPECT_THROW(VariantAssignment(""), relperf::InvalidArgument);
    EXPECT_THROW(VariantAssignment("D:"), relperf::InvalidArgument);
    EXPECT_THROW(VariantAssignment("X:blas"), relperf::InvalidArgument);
    EXPECT_THROW(VariantAssignment("DA:blas"), relperf::InvalidArgument);
    EXPECT_THROW(VariantAssignment("D,,A"), relperf::InvalidArgument);
    EXPECT_THROW(VariantAssignment("D:bl as"), relperf::InvalidArgument);
    EXPECT_THROW(VariantAssignment("D:a:b"), relperf::InvalidArgument);
    EXPECT_THROW(VariantAssignment("D,"), relperf::InvalidArgument);
}

TEST(VariantAssignment, PolicyVectorConstructorValidates) {
    const VariantAssignment v(std::vector<ExecutionPolicy>{
        {Placement::Device, "portable"}, {Placement::Accelerator, ""}});
    EXPECT_EQ(v.str(), "D:portable,A");
    EXPECT_THROW(VariantAssignment(std::vector<ExecutionPolicy>{}),
                 relperf::InvalidArgument);
    EXPECT_THROW(VariantAssignment(std::vector<ExecutionPolicy>{
                     {Placement::Device, "bad name"}}),
                 relperf::InvalidArgument);
}

TEST(VariantAssignment, Equality) {
    EXPECT_EQ(VariantAssignment("D:blas,A"), VariantAssignment("D:blas,A"));
    EXPECT_FALSE(VariantAssignment("D:blas,A") == VariantAssignment("D,A"));
    EXPECT_FALSE(VariantAssignment("DA") == VariantAssignment("AD"));
}

TEST(VariantAssignment, RoundTripFuzz) {
    // parse(str()) == identity over random variants, including all-inherit
    // ones (which canonicalize to plain letter strings).
    const std::vector<std::string> backends = {"", "portable", "blas",
                                               "reference", "x-9_y"};
    Rng rng(20260729);
    for (int trial = 0; trial < 500; ++trial) {
        const std::size_t k = 1 + rng.uniform_index(6);
        std::vector<ExecutionPolicy> policies;
        for (std::size_t i = 0; i < k; ++i) {
            policies.push_back(ExecutionPolicy{
                rng.bernoulli(0.5) ? Placement::Device : Placement::Accelerator,
                backends[rng.uniform_index(backends.size())]});
        }
        const VariantAssignment original(policies);
        const VariantAssignment reparsed(original.str());
        EXPECT_EQ(original, reparsed) << original.str();
        EXPECT_EQ(original.alg_name(), reparsed.alg_name());
    }
}

TEST(VariantAssignment, LegacyStringRoundTripFuzz) {
    Rng rng(0xFACE);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t k = 1 + rng.uniform_index(10);
        std::string letters;
        for (std::size_t i = 0; i < k; ++i) {
            letters.push_back(rng.bernoulli(0.5) ? 'D' : 'A');
        }
        const VariantAssignment v(letters);
        EXPECT_EQ(v.str(), letters);
        EXPECT_EQ(v, VariantAssignment(DeviceAssignment(letters)));
    }
}

TEST(EnumerateVariants, CountsAndOrder) {
    const auto variants =
        workloads::enumerate_variants(2, {"portable", "blas"});
    ASSERT_EQ(variants.size(), 16u); // (2*2)^2
    // Placement-major order (the enumerate_assignments order), then the
    // backend odometer with the most-significant task first.
    EXPECT_EQ(variants[0].str(), "D:portable,D:portable");
    EXPECT_EQ(variants[1].str(), "D:portable,D:blas");
    EXPECT_EQ(variants[2].str(), "D:blas,D:portable");
    EXPECT_EQ(variants[3].str(), "D:blas,D:blas");
    EXPECT_EQ(variants[4].str(), "D:portable,A:portable");
    EXPECT_EQ(variants[15].str(), "A:blas,A:blas");

    std::set<std::string> names;
    for (const auto& v : variants) names.insert(v.alg_name());
    EXPECT_EQ(names.size(), variants.size()); // all distinct
}

TEST(EnumerateVariants, SingleBackendMirrorsAssignments) {
    const auto variants = workloads::enumerate_variants(3, {"portable"});
    const auto assignments = workloads::enumerate_assignments(3);
    ASSERT_EQ(variants.size(), assignments.size());
    for (std::size_t i = 0; i < variants.size(); ++i) {
        EXPECT_EQ(variants[i].device_assignment(), assignments[i]);
        EXPECT_EQ(variants[i].at(0).backend, "portable");
    }
}

TEST(EnumerateVariants, GuardsShareTheNamedConstant) {
    // Both enumerators refuse k >= kMaxEnumeratedTasks with a typed error
    // naming the offending k.
    const std::size_t k = workloads::kMaxEnumeratedTasks;
    try {
        (void)workloads::enumerate_assignments(k);
        FAIL() << "enumerate_assignments must throw at the guard";
    } catch (const relperf::InvalidArgument& e) {
        EXPECT_NE(std::string(e.what()).find(std::to_string(k)),
                  std::string::npos)
            << e.what();
    }
    try {
        (void)workloads::enumerate_variants(k, {"portable"});
        FAIL() << "enumerate_variants must throw at the guard";
    } catch (const relperf::InvalidArgument& e) {
        EXPECT_NE(std::string(e.what()).find(std::to_string(k)),
                  std::string::npos)
            << e.what();
    }
    // One below the guard is legal for the assignment enumerator...
    EXPECT_NO_THROW(
        (void)workloads::enumerate_assignments(workloads::kMaxEnumeratedTasks - 1));
    // ...but the variant product guard still applies: (2*4)^19 explodes.
    EXPECT_THROW((void)workloads::enumerate_variants(
                     workloads::kMaxEnumeratedTasks - 1,
                     {"a", "b", "c", "d"}),
                 relperf::InvalidArgument);
}

TEST(EnumerateVariants, InvalidArgumentsThrow) {
    EXPECT_THROW((void)workloads::enumerate_variants(0, {"portable"}),
                 relperf::InvalidArgument);
    EXPECT_THROW((void)workloads::enumerate_variants(2, {}),
                 relperf::InvalidArgument);
    EXPECT_THROW((void)workloads::enumerate_variants(2, {"portable", "portable"}),
                 relperf::InvalidArgument);
    EXPECT_THROW((void)workloads::enumerate_variants(2, {""}),
                 relperf::InvalidArgument);
    EXPECT_THROW((void)workloads::enumerate_variants(2, {"bad name"}),
                 relperf::InvalidArgument);
}
