#include "model/ridge.hpp"

#include "stats/rng.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <vector>

using relperf::model::RidgeRegressor;
using relperf::stats::Rng;

namespace {

/// Synthetic dataset y = w . x + b with optional noise.
struct Synthetic {
    std::vector<std::vector<double>> rows;
    std::vector<double> targets;
};

Synthetic make_linear(const std::vector<double>& w, double b, int n,
                      double noise_sd, std::uint64_t seed) {
    Rng rng(seed);
    Synthetic data;
    for (int i = 0; i < n; ++i) {
        std::vector<double> row;
        double y = b;
        for (const double wj : w) {
            const double x = rng.uniform(-2.0, 2.0);
            row.push_back(x);
            y += wj * x;
        }
        if (noise_sd > 0.0) y += rng.normal(0.0, noise_sd);
        data.rows.push_back(std::move(row));
        data.targets.push_back(y);
    }
    return data;
}

} // namespace

TEST(Ridge, RecoversNoiselessLinearFunction) {
    const Synthetic data = make_linear({2.0, -1.5, 0.5}, 3.0, 50, 0.0, 1);
    RidgeRegressor reg;
    reg.fit(data.rows, data.targets, 0.0);
    for (std::size_t i = 0; i < data.rows.size(); ++i) {
        EXPECT_NEAR(reg.predict(data.rows[i]), data.targets[i], 1e-6);
    }
    EXPECT_NEAR(reg.r_squared(data.rows, data.targets), 1.0, 1e-9);
}

TEST(Ridge, GeneralizesToUnseenPoints) {
    const Synthetic train = make_linear({1.0, 2.0}, -1.0, 100, 0.0, 2);
    const Synthetic test = make_linear({1.0, 2.0}, -1.0, 20, 0.0, 3);
    RidgeRegressor reg;
    reg.fit(train.rows, train.targets, 1e-6);
    for (std::size_t i = 0; i < test.rows.size(); ++i) {
        EXPECT_NEAR(reg.predict(test.rows[i]), test.targets[i], 1e-3);
    }
}

TEST(Ridge, NoisyFitIsApproximate) {
    const Synthetic data = make_linear({2.0}, 0.0, 400, 0.3, 4);
    RidgeRegressor reg;
    reg.fit(data.rows, data.targets, 1e-3);
    const double r2 = reg.r_squared(data.rows, data.targets);
    EXPECT_GT(r2, 0.9);
    EXPECT_LT(r2, 1.0);
}

TEST(Ridge, LargerLambdaShrinksWeights) {
    const Synthetic data = make_linear({5.0, -5.0}, 0.0, 60, 0.1, 5);
    RidgeRegressor weak;
    RidgeRegressor strong;
    weak.fit(data.rows, data.targets, 1e-6);
    strong.fit(data.rows, data.targets, 1e3);
    double norm_weak = 0.0;
    double norm_strong = 0.0;
    for (const double w : weak.weights()) norm_weak += w * w;
    for (const double w : strong.weights()) norm_strong += w * w;
    EXPECT_LT(norm_strong, 0.5 * norm_weak);
}

TEST(Ridge, HandlesConstantFeatures) {
    // A constant column must not break standardization or the solve.
    std::vector<std::vector<double>> rows = {
        {1.0, 7.0}, {2.0, 7.0}, {3.0, 7.0}, {4.0, 7.0}};
    const std::vector<double> targets = {2.0, 4.0, 6.0, 8.0};
    RidgeRegressor reg;
    reg.fit(rows, targets, 0.0);
    const std::vector<double> probe = {2.5, 7.0};
    EXPECT_NEAR(reg.predict(probe), 5.0, 1e-6);
}

TEST(Ridge, UnderdeterminedSystemStillSolves) {
    // More features than samples: the ridge floor keeps the system SPD.
    const Synthetic data = make_linear({1.0, 2.0, 3.0, 4.0, 5.0, 6.0}, 0.0, 4,
                                       0.0, 6);
    RidgeRegressor reg;
    reg.fit(data.rows, data.targets, 1e-2);
    // Training points are fit reasonably (not exactly: regularized).
    EXPECT_GT(reg.r_squared(data.rows, data.targets), 0.5);
}

TEST(Ridge, InvalidInputsThrow) {
    RidgeRegressor reg;
    EXPECT_THROW(reg.fit({}, std::vector<double>{}, 0.0), relperf::InvalidArgument);
    EXPECT_THROW(reg.fit({{1.0}}, std::vector<double>{1.0, 2.0}, 0.0),
                 relperf::InvalidArgument);
    EXPECT_THROW(reg.fit({{1.0}, {1.0, 2.0}}, std::vector<double>{1.0, 2.0}, 0.0),
                 relperf::InvalidArgument);
    EXPECT_THROW(reg.fit({{1.0}}, std::vector<double>{1.0}, -1.0),
                 relperf::InvalidArgument);
    const std::vector<double> one = {1.0};
    EXPECT_THROW((void)reg.predict(one), relperf::InvalidArgument);

    reg.fit({{1.0}, {2.0}}, std::vector<double>{1.0, 2.0}, 0.0);
    const std::vector<double> two = {1.0, 2.0};
    EXPECT_THROW((void)reg.predict(two), relperf::InvalidArgument);
}
