#include "model/predictor.hpp"

#include "core/pipeline.hpp"
#include "sim/profile.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

namespace core = relperf::core;
namespace model = relperf::model;
namespace sim = relperf::sim;
namespace workloads = relperf::workloads;
using workloads::DeviceAssignment;

namespace {

struct Fixture {
    workloads::TaskChain chain = workloads::paper_rls_chain(10);
    sim::CalibratedProfile profile = sim::paper_rls_profile();
    sim::SimulatedExecutor executor{profile, sim::NoiseModel{}};
    std::vector<DeviceAssignment> assignments = workloads::enumerate_assignments(3);
    core::AnalysisResult analysis = [this] {
        core::AnalysisConfig config;
        config.measurements_per_alg = 30;
        config.clustering.repetitions = 60;
        return core::analyze_chain(executor, chain, assignments, config);
    }();
};

} // namespace

TEST(Predictor, LinearModelSpansTheCalibratedCostModel) {
    // Trained on *noise-free* expected times for all 8 assignments, the
    // linear features must represent the conditional cost model exactly
    // (DESIGN.md: features chosen to span the simulator's model).
    Fixture f;
    const sim::SimulatedExecutor exact(f.profile, sim::NoiseModel::none());
    core::MeasurementSet noiseless;
    for (const auto& a : f.assignments) {
        noiseless.add(a.alg_name(),
                      {exact.expected_seconds(f.chain, a),
                       exact.expected_seconds(f.chain, a)});
    }
    model::PerformancePredictor predictor(model::PredictorConfig{1e-9, 0.02});
    predictor.fit(f.chain, f.assignments, noiseless);
    for (const auto& a : f.assignments) {
        EXPECT_NEAR(predictor.predict_seconds(f.chain, a),
                    exact.expected_seconds(f.chain, a), 1e-6)
            << a.str();
    }
}

TEST(Predictor, OrdersTheFullSpaceFromNoisyMeasurements) {
    Fixture f;
    model::PerformancePredictor predictor;
    predictor.fit(f.chain, f.assignments, f.analysis.measurements);

    const model::PredictionEval eval = model::evaluate_predictor(
        predictor, f.chain, f.assignments, f.analysis.measurements,
        f.analysis.clustering);
    EXPECT_GT(eval.kendall_tau, 0.8);
    EXPECT_GT(eval.spearman_rho, 0.85);
    EXPECT_LT(eval.pairwise_disagreement, 0.15);
    EXPECT_LT(eval.mean_abs_rel_error, 0.05);
}

TEST(Predictor, GeneralizesFromSubsetToHeldOutAssignments) {
    Fixture f;
    // Train on 6 assignments, predict the 2 held out.
    std::vector<DeviceAssignment> train_assignments;
    core::MeasurementSet train_set;
    std::vector<DeviceAssignment> held_out;
    for (std::size_t i = 0; i < f.assignments.size(); ++i) {
        const std::string name = f.assignments[i].alg_name();
        if (name == "algDDA" || name == "algAAD") {
            held_out.push_back(f.assignments[i]);
            continue;
        }
        train_assignments.push_back(f.assignments[i]);
        const auto samples = f.analysis.measurements.samples(i);
        train_set.add(name, {samples.begin(), samples.end()});
    }

    model::PerformancePredictor predictor;
    predictor.fit(f.chain, train_assignments, train_set);

    // Predicted times of the held-out extremes must land on the right side:
    // algDDA near the fast end, algAAD clearly slowest.
    const double pred_dda = predictor.predict_seconds(f.chain, held_out[0]);
    const double pred_aad = predictor.predict_seconds(f.chain, held_out[1]);
    const double meas_ddd = f.analysis.measurements.summary(
        f.analysis.measurements.index_of("algDDD")).mean;
    EXPECT_LT(pred_dda, meas_ddd * 1.02);
    EXPECT_GT(pred_aad, meas_ddd * 1.15);
    EXPECT_GT(pred_aad, pred_dda * 1.25);
}

TEST(Predictor, CompareUsesTieBand) {
    Fixture f;
    model::PerformancePredictor predictor(model::PredictorConfig{1e-3, 0.5});
    predictor.fit(f.chain, f.assignments, f.analysis.measurements);
    // A 50% tie band makes nearly everything equivalent.
    EXPECT_EQ(predictor.compare(f.chain, DeviceAssignment("DDD"),
                                DeviceAssignment("DDA")),
              core::Ordering::Equivalent);

    model::PerformancePredictor sharp(model::PredictorConfig{1e-3, 0.0});
    sharp.fit(f.chain, f.assignments, f.analysis.measurements);
    EXPECT_EQ(sharp.compare(f.chain, DeviceAssignment("DDA"),
                            DeviceAssignment("AAD")),
              core::Ordering::Better);
    EXPECT_EQ(sharp.compare(f.chain, DeviceAssignment("AAD"),
                            DeviceAssignment("DDA")),
              core::Ordering::Worse);
}

TEST(Predictor, RankProducesValidRankedSequence) {
    Fixture f;
    model::PerformancePredictor predictor;
    predictor.fit(f.chain, f.assignments, f.analysis.measurements);
    const core::RankedSequence seq = predictor.rank(f.chain, f.assignments);
    ASSERT_EQ(seq.order.size(), 8u);
    core::check_rank_invariant(seq.ranks);
    // The predicted winner class contains algDDA.
    const std::size_t dda_pos = seq.position_of(
        static_cast<std::size_t>(f.analysis.measurements.index_of("algDDA")));
    EXPECT_EQ(seq.ranks[dda_pos], 1);
}

TEST(Predictor, InvalidUsageThrows) {
    Fixture f;
    model::PerformancePredictor predictor;
    EXPECT_THROW((void)predictor.predict_seconds(f.chain, DeviceAssignment("DDD")),
                 relperf::InvalidArgument);
    core::MeasurementSet tiny;
    tiny.add("algDDD", {1.0});
    EXPECT_THROW(predictor.fit(f.chain, {DeviceAssignment("DDD")}, tiny),
                 relperf::InvalidArgument);
    EXPECT_THROW(model::PerformancePredictor(model::PredictorConfig{-1.0, 0.0}),
                 relperf::InvalidArgument);
}
