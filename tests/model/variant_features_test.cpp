//! Variant feature extraction and the spanning property over mixed-backend
//! chains: the backend-split features must let the linear predictor
//! represent the simulator's per-backend throughput multipliers *exactly*
//! (the Sec. V promise — predict without executing — extended to the
//! placement×backend variant space).

#include "model/features.hpp"
#include "model/predictor.hpp"

#include "core/measurement.hpp"
#include "sim/analytic.hpp"
#include "sim/executor.hpp"
#include "support/error.hpp"
#include "workloads/chain.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace core = relperf::core;
namespace model = relperf::model;
namespace sim = relperf::sim;
namespace workloads = relperf::workloads;
using workloads::VariantAssignment;

namespace {

const std::vector<std::string> kBackends = {"portable", "blas", "reference"};

sim::Platform gained_platform() {
    sim::Platform p = sim::paper_cpu_gpu_platform();
    p.backend_gains.entries = {
        {"blas", 0.55, 0.85},
        {"reference", 2.2, 1.4},
    };
    return p;
}

workloads::TaskChain variant_chain() {
    workloads::TaskChain chain =
        workloads::make_rls_chain({50, 75, 300}, 10, "variant-model");
    chain.backend = "portable";
    return chain;
}

} // namespace

TEST(VariantFeatures, NamesMatchValuesAndScaleWithUniverse) {
    const workloads::TaskChain chain = variant_chain();
    const auto names = model::variant_feature_names(chain, kBackends);
    const model::FeatureVector f = model::extract_variant_features(
        chain, VariantAssignment("D:blas,A:reference,D"), kBackends);
    ASSERT_EQ(names.size(), f.values.size());
    // (2B + 3) per task + 1 + 2B + 2 chain-level.
    EXPECT_EQ(names.size(),
              (2 * kBackends.size() + 3) * chain.size() + 2 * kBackends.size() + 3);

    const auto value_of = [&](const std::string& name) {
        const auto it = std::find(names.begin(), names.end(), name);
        EXPECT_NE(it, names.end()) << name;
        return f.values[static_cast<std::size_t>(it - names.begin())];
    };
    // Task L1 runs on the Device with blas: only that bucket carries iters.
    EXPECT_DOUBLE_EQ(value_of("dev_iters@blas[L1]"), 10.0);
    EXPECT_DOUBLE_EQ(value_of("dev_iters@portable[L1]"), 0.0);
    EXPECT_DOUBLE_EQ(value_of("acc_iters@blas[L1]"), 0.0);
    // Task L2 offloaded on reference.
    EXPECT_DOUBLE_EQ(value_of("acc_iters@reference[L2]"), 10.0);
    // Task L3 inherits the chain default (portable).
    EXPECT_DOUBLE_EQ(value_of("dev_iters@portable[L3]"), 10.0);
    // Backend-weighted FLOPs bucket the same way.
    EXPECT_GT(value_of("device_flops@blas"), 0.0);
    EXPECT_GT(value_of("accel_flops@reference"), 0.0);
    EXPECT_DOUBLE_EQ(value_of("accel_flops@blas"), 0.0);
}

TEST(VariantFeatures, InheritBucketUsesTheLabel) {
    workloads::TaskChain chain = variant_chain();
    chain.backend = ""; // ambient inherit
    const std::vector<std::string> universe = {""};
    const auto names = model::variant_feature_names(chain, universe);
    EXPECT_NE(std::find(names.begin(), names.end(), "dev_iters@inherit[L1]"),
              names.end());
    EXPECT_NO_THROW((void)model::extract_variant_features(
        chain, VariantAssignment("DDD"), universe));
}

TEST(VariantFeatures, UnknownResolvedBackendThrows) {
    const workloads::TaskChain chain = variant_chain();
    EXPECT_THROW((void)model::extract_variant_features(
                     chain, VariantAssignment("D:nonesuch,D,D"), kBackends),
                 relperf::InvalidArgument);
}

TEST(VariantPredictor, SpansTheMixedBackendCostModelExactly) {
    // Noise-free expected times of *all* (2*3)^3 = 216 variants; the linear
    // predictor trained on them must reproduce every single one — the
    // variant features span the gained analytic cost model.
    const workloads::TaskChain chain = variant_chain();
    const sim::AnalyticCostModel priced(gained_platform());
    const sim::SimulatedExecutor exact(priced, sim::NoiseModel::none());

    const std::vector<VariantAssignment> variants =
        workloads::enumerate_variants(chain.size(), kBackends);
    core::MeasurementSet noiseless;
    for (const VariantAssignment& v : variants) {
        const double t = exact.expected_seconds(chain, v);
        noiseless.add(v.alg_name(), {t, t});
    }

    model::PerformancePredictor predictor(model::PredictorConfig{1e-9, 0.02});
    predictor.fit(chain, variants, noiseless);
    EXPECT_TRUE(predictor.variant_mode());
    EXPECT_EQ(predictor.backend_universe().size(), kBackends.size());

    for (const VariantAssignment& v : variants) {
        EXPECT_NEAR(predictor.predict_seconds(chain, v),
                    exact.expected_seconds(chain, v), 1e-6)
            << v.str();
    }
}

TEST(VariantPredictor, GeneralizesAcrossBackendMixes) {
    // Hold out every variant that mixes blas and reference; train on the
    // rest. The per-(task, backend) features make the held-out mixes exact
    // linear combinations of what was seen.
    const workloads::TaskChain chain = variant_chain();
    const sim::AnalyticCostModel priced(gained_platform());
    const sim::SimulatedExecutor exact(priced, sim::NoiseModel::none());

    std::vector<VariantAssignment> train;
    std::vector<VariantAssignment> held_out;
    core::MeasurementSet train_set;
    for (const VariantAssignment& v :
         workloads::enumerate_variants(chain.size(), kBackends)) {
        bool has_blas = false;
        bool has_reference = false;
        for (std::size_t i = 0; i < v.size(); ++i) {
            if (v.at(i).backend == "blas") has_blas = true;
            if (v.at(i).backend == "reference") has_reference = true;
        }
        if (has_blas && has_reference) {
            held_out.push_back(v);
            continue;
        }
        const double t = exact.expected_seconds(chain, v);
        train.push_back(v);
        train_set.add(v.alg_name(), {t, t});
    }
    ASSERT_FALSE(held_out.empty());

    model::PerformancePredictor predictor(model::PredictorConfig{1e-9, 0.02});
    predictor.fit(chain, train, train_set);
    for (const VariantAssignment& v : held_out) {
        const double expected = exact.expected_seconds(chain, v);
        EXPECT_NEAR(predictor.predict_seconds(chain, v), expected,
                    1e-6 * std::max(1.0, expected))
            << v.str();
    }
}

TEST(VariantPredictor, ExplicitUniverseCoversUnsampledBackends) {
    // Subset search fits on whatever variants it happened to sample; the
    // explicit-universe fit must let it predict variants on backends the
    // training subset never touched.
    const workloads::TaskChain chain = variant_chain();
    const sim::AnalyticCostModel priced(gained_platform());
    const sim::SimulatedExecutor exact(priced, sim::NoiseModel::none());

    std::vector<VariantAssignment> portable_only = {
        VariantAssignment("D:portable,D:portable,D:portable"),
        VariantAssignment("D:portable,A:portable,D:portable"),
        VariantAssignment("A:portable,A:portable,A:portable"),
    };
    core::MeasurementSet set;
    for (const VariantAssignment& v : portable_only) {
        const double t = exact.expected_seconds(chain, v);
        set.add(v.alg_name(), {t, t});
    }

    model::PerformancePredictor predictor(model::PredictorConfig{1e-9, 0.02});
    predictor.fit(chain, portable_only, set, kBackends);
    EXPECT_EQ(predictor.backend_universe(), kBackends);
    // Never-sampled backend: prediction must not throw (the value is an
    // extrapolation and may be off; representability is the contract).
    EXPECT_NO_THROW((void)predictor.predict_seconds(
        chain, VariantAssignment("D:blas,A:reference,D:portable")));

    // Without the explicit universe the same fit cannot represent blas.
    predictor.fit(chain, portable_only, set);
    EXPECT_THROW((void)predictor.predict_seconds(
                     chain, VariantAssignment("D:blas,D:portable,D:portable")),
                 relperf::InvalidArgument);
}

TEST(VariantPredictor, LegacyFitRejectsMixedVariants) {
    const workloads::TaskChain chain = variant_chain();
    const sim::AnalyticCostModel priced(gained_platform());
    const sim::SimulatedExecutor exact(priced, sim::NoiseModel::none());

    const auto assignments = workloads::enumerate_assignments(chain.size());
    core::MeasurementSet noiseless;
    for (const auto& a : assignments) {
        const double t = exact.expected_seconds(chain, a);
        noiseless.add(a.alg_name(), {t, t});
    }
    model::PerformancePredictor predictor(model::PredictorConfig{1e-9, 0.02});
    predictor.fit(chain, assignments, noiseless);
    EXPECT_FALSE(predictor.variant_mode());
    // Plain and all-inherit predictions work; mixed ones cannot be
    // represented and must throw.
    EXPECT_NO_THROW(
        (void)predictor.predict_seconds(chain, VariantAssignment("DDA")));
    EXPECT_THROW((void)predictor.predict_seconds(
                     chain, VariantAssignment("D:blas,D,D")),
                 relperf::InvalidArgument);
}
