#include "model/features.hpp"

#include "support/error.hpp"

#include <gtest/gtest.h>

#include <map>

namespace model = relperf::model;
namespace workloads = relperf::workloads;
using workloads::DeviceAssignment;

namespace {

std::map<std::string, double> named_features(const workloads::TaskChain& chain,
                                             const DeviceAssignment& assignment) {
    const auto names = model::feature_names(chain);
    const auto features = model::extract_features(chain, assignment);
    std::map<std::string, double> out;
    for (std::size_t i = 0; i < names.size(); ++i) {
        out[names[i]] = features.values[i];
    }
    return out;
}

} // namespace

TEST(Features, DimensionMatchesNames) {
    const auto chain = workloads::paper_rls_chain(10);
    const auto names = model::feature_names(chain);
    const auto features =
        model::extract_features(chain, DeviceAssignment("DDA"));
    EXPECT_EQ(names.size(), features.values.size());
    EXPECT_EQ(names.size(), 5 * chain.size() + 5);
}

TEST(Features, PlacementItersAreExclusive) {
    const auto chain = workloads::paper_rls_chain(10);
    const auto f = named_features(chain, DeviceAssignment("DAD"));
    EXPECT_DOUBLE_EQ(f.at("dev_iters[L1]"), 10.0);
    EXPECT_DOUBLE_EQ(f.at("acc_iters[L1]"), 0.0);
    EXPECT_DOUBLE_EQ(f.at("dev_iters[L2]"), 0.0);
    EXPECT_DOUBLE_EQ(f.at("acc_iters[L2]"), 10.0);
    EXPECT_DOUBLE_EQ(f.at("dev_iters[L3]"), 10.0);
}

TEST(Features, TransitionIndicators) {
    const auto chain = workloads::paper_rls_chain(10);
    const auto f = named_features(chain, DeviceAssignment("DAD"));
    EXPECT_DOUBLE_EQ(f.at("enter_acc[L2]"), 1.0); // D -> A before L2
    EXPECT_DOUBLE_EQ(f.at("enter_dev[L3]"), 1.0); // A -> D before L3
    EXPECT_DOUBLE_EQ(f.at("enter_acc[L1]"), 0.0); // starts on device
    EXPECT_DOUBLE_EQ(f.at("resident[L2]"), 0.0);
    EXPECT_DOUBLE_EQ(f.at("ends_on_acc"), 0.0);
}

TEST(Features, ResidencyIndicatorForConsecutiveAccelerator) {
    const auto chain = workloads::paper_rls_chain(10);
    const auto f = named_features(chain, DeviceAssignment("DAA"));
    EXPECT_DOUBLE_EQ(f.at("resident[L3]"), 1.0); // L2 and L3 both on A
    EXPECT_DOUBLE_EQ(f.at("enter_acc[L3]"), 0.0);
    EXPECT_DOUBLE_EQ(f.at("ends_on_acc"), 1.0);
}

TEST(Features, FlopsPartitionTotal) {
    const auto chain = workloads::paper_rls_chain(10);
    const double total =
        workloads::flop_split(chain, DeviceAssignment("DDD")).total();
    for (const auto& a : workloads::enumerate_assignments(3)) {
        const auto f = named_features(chain, a);
        EXPECT_NEAR(f.at("device_flops") + f.at("accel_flops"), total, 1.0)
            << a.str();
    }
}

TEST(Features, AccelLaunchesCountOnlyOffloadedTasks) {
    const auto chain = workloads::paper_rls_chain(10);
    EXPECT_DOUBLE_EQ(named_features(chain, DeviceAssignment("DDD")).at("accel_launches"),
                     0.0);
    // One RLS task on A: 10 iters x 10 ops.
    EXPECT_DOUBLE_EQ(named_features(chain, DeviceAssignment("DDA")).at("accel_launches"),
                     100.0);
    EXPECT_DOUBLE_EQ(named_features(chain, DeviceAssignment("AAA")).at("accel_launches"),
                     300.0);
}

TEST(Features, BatchExtractionMatchesSingle) {
    const auto chain = workloads::paper_rls_chain(5);
    const auto assignments = workloads::enumerate_assignments(3);
    const auto batch = model::extract_features(chain, assignments);
    ASSERT_EQ(batch.size(), assignments.size());
    for (std::size_t i = 0; i < assignments.size(); ++i) {
        EXPECT_EQ(batch[i].values,
                  model::extract_features(chain, assignments[i]).values);
    }
}

TEST(Features, LengthMismatchThrows) {
    const auto chain = workloads::paper_rls_chain(10);
    EXPECT_THROW((void)model::extract_features(chain, DeviceAssignment("DD")),
                 relperf::InvalidArgument);
}
