#include "model/triplet.hpp"

#include "core/pipeline.hpp"
#include "sim/profile.hpp"
#include "stats/ranking.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

namespace core = relperf::core;
namespace model = relperf::model;
namespace sim = relperf::sim;
namespace workloads = relperf::workloads;
using relperf::stats::Rng;

namespace {

/// Clustering with known final ranks, built by hand.
core::Clustering make_clustering(const std::vector<int>& final_ranks) {
    core::Clustering c;
    int max_rank = 0;
    for (const int r : final_ranks) max_rank = std::max(max_rank, r);
    c.clusters.resize(static_cast<std::size_t>(max_rank));
    c.repetitions = 1;
    for (std::size_t alg = 0; alg < final_ranks.size(); ++alg) {
        c.clusters[static_cast<std::size_t>(final_ranks[alg] - 1)].push_back(
            core::ClusterEntry{alg, 1.0});
        c.final_assignment.push_back(
            core::FinalAssignment{alg, final_ranks[alg], 1.0});
    }
    return c;
}

struct PaperFixture {
    workloads::TaskChain chain = workloads::paper_rls_chain(10);
    sim::CalibratedProfile profile = sim::paper_rls_profile();
    sim::SimulatedExecutor executor{profile, sim::NoiseModel{}};
    std::vector<workloads::DeviceAssignment> assignments =
        workloads::enumerate_assignments(3);
    core::AnalysisResult analysis = [this] {
        core::AnalysisConfig config;
        config.measurements_per_alg = 30;
        config.clustering.repetitions = 60;
        return core::analyze_chain(executor, chain, assignments, config);
    }();
};

} // namespace

TEST(SampleTriplets, RespectsClassStructure) {
    const core::Clustering clustering = make_clustering({1, 1, 2, 2, 3});
    Rng rng(1);
    const auto triplets = model::sample_triplets(clustering, 200, rng);
    ASSERT_EQ(triplets.size(), 200u);
    for (const model::Triplet& t : triplets) {
        EXPECT_NE(t.anchor, t.positive);
        EXPECT_EQ(clustering.final_rank(t.anchor),
                  clustering.final_rank(t.positive));
        EXPECT_GT(clustering.final_rank(t.negative),
                  clustering.final_rank(t.anchor));
    }
}

TEST(SampleTriplets, DeterministicUnderSeed) {
    const core::Clustering clustering = make_clustering({1, 1, 2});
    Rng a(7);
    Rng b(7);
    const auto ta = model::sample_triplets(clustering, 50, a);
    const auto tb = model::sample_triplets(clustering, 50, b);
    for (std::size_t i = 0; i < ta.size(); ++i) {
        EXPECT_EQ(ta[i].anchor, tb[i].anchor);
        EXPECT_EQ(ta[i].positive, tb[i].positive);
        EXPECT_EQ(ta[i].negative, tb[i].negative);
    }
}

TEST(SampleTriplets, ImpossibleStructuresThrow) {
    Rng rng(1);
    // Single cluster: no negatives.
    const core::Clustering one = make_clustering({1, 1, 1});
    EXPECT_THROW((void)model::sample_triplets(one, 10, rng),
                 relperf::InvalidArgument);
    // All singleton clusters: no positives.
    const core::Clustering singletons = make_clustering({1, 2, 3});
    EXPECT_THROW((void)model::sample_triplets(singletons, 10, rng),
                 relperf::InvalidArgument);
    // Too few algorithms.
    const core::Clustering two = make_clustering({1, 2});
    EXPECT_THROW((void)model::sample_triplets(two, 10, rng),
                 relperf::InvalidArgument);
}

TEST(TripletScorer, LearnsASeparableOrdering) {
    // One informative feature: class 1 at x ~ 0, class 2 at x ~ 1,
    // class 3 at x ~ 2 (plus a noise feature).
    Rng rng(3);
    std::vector<std::vector<double>> rows;
    std::vector<int> ranks;
    for (int cls = 1; cls <= 3; ++cls) {
        for (int i = 0; i < 4; ++i) {
            rows.push_back({static_cast<double>(cls) + 0.05 * rng.normal(),
                            rng.normal()});
            ranks.push_back(cls);
        }
    }
    const core::Clustering clustering = make_clustering(ranks);
    Rng sample_rng(4);
    const auto triplets = model::sample_triplets(clustering, 400, sample_rng);

    model::TripletScorer scorer;
    scorer.fit(rows, triplets);

    // Scores must order by class: every class-1 row below every class-3 row.
    for (std::size_t i = 0; i < rows.size(); ++i) {
        for (std::size_t j = 0; j < rows.size(); ++j) {
            if (ranks[i] < ranks[j]) {
                EXPECT_LT(scorer.score(rows[i]), scorer.score(rows[j]))
                    << i << " vs " << j;
            }
        }
    }
    EXPECT_GT(scorer.triplet_satisfaction(rows, triplets), 0.95);
}

TEST(TripletScorer, ClassLabelsAloneRecoverTheMeasuredOrdering) {
    // The paper's pitch: train from *clusters* (relative supervision), not
    // from absolute times — and still predict the performance ordering.
    PaperFixture f;
    Rng rng(5);
    const model::TripletScorer scorer = model::fit_triplet_scorer(
        f.chain, f.assignments, f.analysis.clustering, 600, rng);

    std::vector<double> scores;
    std::vector<double> measured;
    for (std::size_t i = 0; i < f.assignments.size(); ++i) {
        scores.push_back(scorer.score(
            model::extract_features(f.chain, f.assignments[i]).values));
        measured.push_back(f.analysis.measurements.summary(i).mean);
    }
    EXPECT_GT(relperf::stats::kendall_tau_b(scores, measured), 0.6);
    // The best and worst classes must be separated with certainty.
    const std::size_t dda = f.analysis.measurements.index_of("algDDA");
    const std::size_t aad = f.analysis.measurements.index_of("algAAD");
    EXPECT_LT(scores[dda], scores[aad]);
}

TEST(TripletScorer, InvalidUsageThrows) {
    model::TripletScorer scorer;
    EXPECT_THROW(scorer.fit({}, {model::Triplet{}}), relperf::InvalidArgument);
    EXPECT_THROW(scorer.fit({{1.0}}, {}), relperf::InvalidArgument);
    EXPECT_THROW(scorer.fit({{1.0}}, {model::Triplet{0, 0, 5}}),
                 relperf::InvalidArgument);
    const std::vector<double> row = {1.0};
    EXPECT_THROW((void)scorer.score(row), relperf::InvalidArgument);

    model::TripletScorerConfig bad;
    bad.margin = 0.0;
    EXPECT_THROW(model::TripletScorer{bad}, relperf::InvalidArgument);
    bad = {};
    bad.learning_rate = 0.0;
    EXPECT_THROW(model::TripletScorer{bad}, relperf::InvalidArgument);
}
