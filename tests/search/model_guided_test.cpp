#include "search/model_guided_search.hpp"

#include "sim/analytic.hpp"
#include "sim/profile.hpp"
#include "support/error.hpp"
#include "workloads/chain.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

namespace search = relperf::search;
namespace sim = relperf::sim;
namespace workloads = relperf::workloads;

namespace {

/// Expected-time rank of `assignment` within the full space (0 = best).
std::size_t exhaustive_rank(const sim::SimulatedExecutor& executor,
                            const workloads::TaskChain& chain,
                            const workloads::DeviceAssignment& assignment) {
    const auto space = workloads::enumerate_assignments(chain.size());
    const double chosen = executor.expected_seconds(chain, assignment);
    std::size_t better = 0;
    for (const auto& a : space) {
        if (executor.expected_seconds(chain, a) < chosen) ++better;
    }
    return better;
}

} // namespace

TEST(ModelGuidedSearch, FindsTheWinnerOnThePaperChain) {
    const workloads::TaskChain chain = workloads::paper_rls_chain(10);
    const sim::CalibratedProfile profile = sim::paper_rls_profile();
    const sim::SimulatedExecutor executor(profile, sim::NoiseModel{});

    search::SearchConfig config;
    config.initial_samples = 4;
    config.refinement_rounds = 2;
    config.batch_size = 2;
    config.seed = 5;
    const search::ModelGuidedSearch searcher(executor, chain, config);
    const search::SearchResult result = searcher.run();

    EXPECT_EQ(result.space_size, 8u);
    EXPECT_LE(result.measured_count, 8u);
    // Found assignment is in the true top-2 of the space (DDA or DAA).
    EXPECT_LE(exhaustive_rank(executor, chain, result.best), 1u);
}

TEST(ModelGuidedSearch, LargeSpaceMeasuresOnlyASmallFraction) {
    // 10 tasks -> 1024 assignments; the search must execute well under 10%
    // of them and still land in the top percentile of the space.
    const workloads::TaskChain chain = workloads::make_rls_chain(
        {40, 60, 80, 100, 140, 180, 220, 260, 300, 340}, 5, "big-chain");
    const sim::AnalyticCostModel cost_model(sim::paper_cpu_gpu_platform());
    const sim::SimulatedExecutor executor(cost_model, sim::NoiseModel{});

    search::SearchConfig config;
    config.initial_samples = 16;
    config.refinement_rounds = 4;
    config.batch_size = 10;
    config.measurements_per_alg = 10;
    config.seed = 11;
    const search::ModelGuidedSearch searcher(executor, chain, config);
    const search::SearchResult result = searcher.run();

    EXPECT_EQ(result.space_size, 1024u);
    EXPECT_LE(result.measured_count, 60u);
    EXPECT_LT(result.measured_fraction(), 0.06);

    // Quality: within the top 2% of the exhaustive expected-time ranking.
    const std::size_t rank = exhaustive_rank(executor, chain, result.best);
    EXPECT_LE(rank, 20u);
}

TEST(ModelGuidedSearch, ResultBundleIsConsistent) {
    const workloads::TaskChain chain = workloads::paper_rls_chain(10);
    const sim::CalibratedProfile profile = sim::paper_rls_profile();
    const sim::SimulatedExecutor executor(profile, sim::NoiseModel{});

    search::SearchConfig config;
    config.initial_samples = 4;
    config.refinement_rounds = 1;
    config.batch_size = 2;
    const search::ModelGuidedSearch searcher(executor, chain, config);
    const search::SearchResult result = searcher.run();

    EXPECT_EQ(result.measurements.size(), result.measured_count);
    EXPECT_EQ(result.measured_assignments.size(), result.measured_count);
    EXPECT_EQ(result.clustering.final_assignment.size(), result.measured_count);
    EXPECT_TRUE(result.predictor.is_fitted());
    // best is one of the measured assignments with the minimal mean.
    double best_mean = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < result.measurements.size(); ++i) {
        best_mean =
            std::min(best_mean, result.measurements.summary(i).mean);
    }
    EXPECT_DOUBLE_EQ(result.best_measured_mean, best_mean);
    EXPECT_TRUE(result.measurements.contains(result.best.alg_name()));
}

TEST(ModelGuidedSearch, DeterministicUnderFixedSeed) {
    const workloads::TaskChain chain = workloads::paper_rls_chain(10);
    const sim::CalibratedProfile profile = sim::paper_rls_profile();
    const sim::SimulatedExecutor executor(profile, sim::NoiseModel{});

    search::SearchConfig config;
    config.initial_samples = 4;
    config.refinement_rounds = 2;
    config.batch_size = 2;
    config.seed = 99;
    const search::ModelGuidedSearch s1(executor, chain, config);
    const search::ModelGuidedSearch s2(executor, chain, config);
    const search::SearchResult r1 = s1.run();
    const search::SearchResult r2 = s2.run();
    EXPECT_EQ(r1.best.str(), r2.best.str());
    EXPECT_DOUBLE_EQ(r1.best_measured_mean, r2.best_measured_mean);
    EXPECT_EQ(r1.measured_count, r2.measured_count);
}

TEST(ModelGuidedSearch, InvalidConfigThrows) {
    const workloads::TaskChain chain = workloads::paper_rls_chain(10);
    const sim::CalibratedProfile profile = sim::paper_rls_profile();
    const sim::SimulatedExecutor executor(profile, sim::NoiseModel{});
    search::SearchConfig config;
    config.initial_samples = 1;
    EXPECT_THROW(search::ModelGuidedSearch(executor, chain, config),
                 relperf::InvalidArgument);
    config = {};
    config.explore_fraction = 1.5;
    EXPECT_THROW(search::ModelGuidedSearch(executor, chain, config),
                 relperf::InvalidArgument);
    config = {};
    config.batch_size = 0;
    EXPECT_THROW(search::ModelGuidedSearch(executor, chain, config),
                 relperf::InvalidArgument);
}
