//! Model-guided search over the (2·B)^k placement×backend variant space —
//! the Sec. V regime: the full space is never executed; the subset's
//! clusters guide the search.

#include "search/model_guided_search.hpp"

#include "sim/analytic.hpp"
#include "sim/executor.hpp"
#include "support/error.hpp"
#include "workloads/chain.hpp"

#include <gtest/gtest.h>

namespace search = relperf::search;
namespace sim = relperf::sim;
namespace workloads = relperf::workloads;

namespace {

sim::Platform gained_platform() {
    sim::Platform p = sim::paper_cpu_gpu_platform();
    p.backend_gains.entries = {
        {"blas", 0.6, 0.9},
        {"reference", 2.5, 1.3},
    };
    return p;
}

} // namespace

TEST(VariantSearch, SamplesTheVariantSpace) {
    const workloads::TaskChain chain =
        workloads::make_rls_chain({40, 60, 120, 200}, 6, "variant-search");
    const sim::AnalyticCostModel model(gained_platform());
    const sim::SimulatedExecutor executor(model, sim::NoiseModel{});

    search::SearchConfig config;
    config.backends = {"portable", "blas", "reference"};
    config.initial_samples = 24;
    config.refinement_rounds = 3;
    config.batch_size = 12;
    config.measurements_per_alg = 10;
    config.clustering.repetitions = 40;

    const search::ModelGuidedSearch searcher(executor, chain, config);
    const search::SearchResult result = searcher.run();

    EXPECT_EQ(result.space_size, 1296u); // (2*3)^4
    EXPECT_LE(result.measured_count, 24u + 3u * 12u);
    EXPECT_LT(result.measured_fraction(), 0.05);
    EXPECT_EQ(result.measured_variants.size(), result.measured_count);
    EXPECT_EQ(result.measured_assignments.size(), result.measured_count);
    EXPECT_TRUE(result.predictor.variant_mode());
    EXPECT_TRUE(result.measurements.contains(result.best_variant.alg_name()));
    EXPECT_EQ(result.best_variant.device_assignment(), result.best);

    // The winner must beat the slowest sensible baseline by a wide margin:
    // everything on the device on the reference kernels is the worst
    // all-device variant by construction.
    const double worst_all_device = executor.expected_seconds(
        chain, workloads::VariantAssignment(
                   "D:reference,D:reference,D:reference,D:reference"));
    EXPECT_LT(result.best_measured_mean, worst_all_device);

    // The returned predictor keeps the legacy API alive: plain assignments
    // (backend-inherit; this chain has no default backend) stay
    // representable because the fit universe includes the inherit bucket.
    EXPECT_NO_THROW((void)result.predictor.predict_seconds(
        chain, workloads::DeviceAssignment("DADA")));
}

TEST(VariantSearch, EmptyBackendsKeepsTheLegacySpace) {
    const workloads::TaskChain chain =
        workloads::make_rls_chain({50, 75, 300}, 10, "legacy-search");
    const sim::AnalyticCostModel model(
        sim::AnalyticCostModel(sim::paper_cpu_gpu_platform()));
    const sim::SimulatedExecutor executor(model, sim::NoiseModel{});

    search::SearchConfig config;
    config.clustering.repetitions = 40;
    const search::ModelGuidedSearch searcher(executor, chain, config);
    const search::SearchResult result = searcher.run();

    EXPECT_EQ(result.space_size, 8u);
    EXPECT_FALSE(result.predictor.variant_mode());
    for (const workloads::VariantAssignment& v : result.measured_variants) {
        EXPECT_TRUE(v.uniform_inherit());
    }
    EXPECT_EQ(result.best_variant.device_assignment(), result.best);
}

TEST(VariantSearch, SurvivesInitialSamplesThatMissABackend) {
    // Regression: with a tiny initial sample over a tiny space, some seeds
    // sample only one backend in phase 1. The predictor is fitted over the
    // *configured* universe, so phase 2 must still predict (not throw on)
    // the unsampled backend's variants.
    const workloads::TaskChain chain =
        workloads::make_rls_chain({48}, 4, "tiny-variant");
    const sim::AnalyticCostModel model(gained_platform());
    const sim::SimulatedExecutor executor(model, sim::NoiseModel{});

    search::SearchConfig config;
    config.backends = {"portable", "blas"};
    config.initial_samples = 2; // of a 4-variant space
    config.refinement_rounds = 1;
    config.batch_size = 1;
    config.explore_fraction = 0.0;
    config.measurements_per_alg = 4;
    config.clustering.repetitions = 10;

    for (std::uint64_t seed = 0; seed < 24; ++seed) {
        config.seed = seed;
        const search::ModelGuidedSearch searcher(executor, chain, config);
        search::SearchResult result;
        ASSERT_NO_THROW(result = searcher.run()) << "seed " << seed;
        EXPECT_EQ(result.space_size, 4u);
    }
}

TEST(VariantSearch, DeterministicForAFixedSeed) {
    const workloads::TaskChain chain =
        workloads::make_rls_chain({40, 60, 120}, 6, "variant-repro");
    const sim::AnalyticCostModel model(gained_platform());
    const sim::SimulatedExecutor executor(model, sim::NoiseModel{});

    search::SearchConfig config;
    config.backends = {"portable", "blas"};
    config.clustering.repetitions = 30;
    config.seed = 99;

    const search::SearchResult r1 =
        search::ModelGuidedSearch(executor, chain, config).run();
    const search::SearchResult r2 =
        search::ModelGuidedSearch(executor, chain, config).run();
    EXPECT_EQ(r1.best_variant, r2.best_variant);
    EXPECT_DOUBLE_EQ(r1.best_measured_mean, r2.best_measured_mean);
    EXPECT_EQ(r1.measured_count, r2.measured_count);
}
