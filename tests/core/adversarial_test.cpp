//! Failure injection and adversarial behaviour of the clustering machinery:
//! the methodology must stay well-defined when comparators are inconsistent,
//! intransitive, hostile, or broken.

#include "core/clustering.hpp"
#include "core/threeway_sort.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

namespace core = relperf::core;
using core::Ordering;
using relperf::stats::Rng;

namespace {

core::MeasurementSet tiny_set(std::size_t p) {
    core::MeasurementSet set;
    for (std::size_t i = 0; i < p; ++i) {
        set.add("alg" + std::to_string(i),
                {1.0 + static_cast<double>(i), 1.0 + static_cast<double>(i)});
    }
    return set;
}

} // namespace

TEST(AdversarialSort, AlwaysWorseComparatorTerminatesWithValidLabels) {
    // Every comparison swaps: the sort must still terminate in p-1 passes
    // with a valid label vector (it degenerates to reversing segments).
    const core::ThreeWaySorter sorter(
        [](std::size_t, std::size_t) { return Ordering::Worse; });
    for (const std::size_t p : {2u, 3u, 5u, 9u}) {
        const core::RankedSequence result = sorter.sort(p);
        core::check_rank_invariant(result.ranks);
        std::vector<std::size_t> sorted = result.order;
        std::sort(sorted.begin(), sorted.end());
        for (std::size_t i = 0; i < p; ++i) EXPECT_EQ(sorted[i], i);
    }
}

TEST(AdversarialSort, IntransitiveCycleStillProducesValidClasses) {
    // Rock-paper-scissors: 0 beats 1, 1 beats 2, 2 beats 0. No consistent
    // total order exists; the procedure must still emit a legal labeling.
    const core::ThreeWaySorter sorter([](std::size_t a, std::size_t b) {
        if ((a + 1) % 3 == b) return Ordering::Better;
        if ((b + 1) % 3 == a) return Ordering::Worse;
        return Ordering::Equivalent;
    });
    const core::RankedSequence result = sorter.sort(3);
    core::check_rank_invariant(result.ranks);
    EXPECT_GE(result.cluster_count(), 1);
    EXPECT_LE(result.cluster_count(), 3);
}

TEST(AdversarialSort, FlippingComparatorKeepsInvariantOnEveryStep) {
    // A comparator whose answers alternate deterministically regardless of
    // the operands — maximal inconsistency between repeated comparisons.
    int counter = 0;
    const core::ThreeWaySorter sorter([&counter](std::size_t, std::size_t) {
        switch (counter++ % 3) {
            case 0: return Ordering::Better;
            case 1: return Ordering::Worse;
            default: return Ordering::Equivalent;
        }
    });
    std::vector<core::SortStep> trace;
    std::vector<std::size_t> order(7);
    std::iota(order.begin(), order.end(), std::size_t{0});
    const core::RankedSequence result = sorter.sort_traced(order, trace);
    core::check_rank_invariant(result.ranks);
    for (const core::SortStep& step : trace) {
        core::check_rank_invariant(step.ranks_after);
    }
}

namespace {

/// Comparator that throws after a configurable number of comparisons.
class FaultyComparator final : public core::Comparator {
public:
    explicit FaultyComparator(int budget) : budget_(budget) {}

    Ordering compare(std::span<const double> a, std::span<const double> b,
                     Rng&) const override {
        if (budget_-- <= 0) {
            throw std::runtime_error("comparator hardware fault");
        }
        const double ma = relperf::stats::mean(a);
        const double mb = relperf::stats::mean(b);
        if (ma == mb) return Ordering::Equivalent;
        return ma < mb ? Ordering::Better : Ordering::Worse;
    }

    std::string name() const override { return "faulty"; }

private:
    mutable int budget_;
};

} // namespace

TEST(FailureInjection, ComparatorExceptionPropagatesOutOfClusterer) {
    const FaultyComparator faulty(5);
    const core::RelativeClusterer clusterer(faulty, core::ClustererConfig{10, 1});
    EXPECT_THROW((void)clusterer.cluster(tiny_set(4)), std::runtime_error);
}

TEST(FailureInjection, ZeroBudgetFailsImmediately) {
    const FaultyComparator faulty(0);
    const core::RelativeClusterer clusterer(faulty, core::ClustererConfig{1, 1});
    EXPECT_THROW((void)clusterer.cluster(tiny_set(2)), std::runtime_error);
}

TEST(FailureInjection, SufficientBudgetSucceeds) {
    // 3 algorithms, 1 repetition: exactly 3 comparisons.
    const FaultyComparator faulty(3);
    const core::RelativeClusterer clusterer(faulty, core::ClustererConfig{1, 1});
    const core::Clustering result = clusterer.cluster(tiny_set(3));
    EXPECT_EQ(result.cluster_count(), 3);
}

TEST(AdversarialClusterer, RandomComparatorScoresStayNormalized) {
    // A uniformly random comparator produces chaotic clusters, but the
    // per-algorithm scores must still sum to exactly 1.
    class RandomComparator final : public core::Comparator {
    public:
        Ordering compare(std::span<const double>, std::span<const double>,
                         Rng& rng) const override {
            const double u = rng.uniform();
            if (u < 1.0 / 3.0) return Ordering::Better;
            if (u < 2.0 / 3.0) return Ordering::Worse;
            return Ordering::Equivalent;
        }
        std::string name() const override { return "random"; }
    };

    const RandomComparator comparator;
    const core::RelativeClusterer clusterer(comparator,
                                            core::ClustererConfig{200, 31});
    const core::MeasurementSet set = tiny_set(6);
    const core::Clustering result = clusterer.cluster(set);
    for (std::size_t alg = 0; alg < set.size(); ++alg) {
        double total = 0.0;
        for (int rank = 1; rank <= result.cluster_count(); ++rank) {
            total += result.score_of(alg, rank);
        }
        EXPECT_NEAR(total, 1.0, 1e-12) << "alg " << alg;
    }
    // Every final assignment has a positive cumulated score.
    for (const core::FinalAssignment& fin : result.final_assignment) {
        EXPECT_GT(fin.score, 0.0);
        EXPECT_LE(fin.score, 1.0 + 1e-12);
    }
}
