#include "core/report.hpp"

#include "core/bootstrap_comparator.hpp"
#include "core/clustering.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace core = relperf::core;
using relperf::stats::Rng;

namespace {

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/// Deterministic mean comparator for stable report fixtures.
class MeanComparator final : public core::Comparator {
public:
    core::Ordering compare(std::span<const double> a, std::span<const double> b,
                           Rng&) const override {
        const double ma = relperf::stats::mean(a);
        const double mb = relperf::stats::mean(b);
        if (std::fabs(ma - mb) <= 0.02 * std::min(ma, mb)) {
            return core::Ordering::Equivalent;
        }
        return ma < mb ? core::Ordering::Better : core::Ordering::Worse;
    }
    std::string name() const override { return "mean"; }
};

struct Fixture {
    core::MeasurementSet set = [] {
        core::MeasurementSet s;
        s.add("algAD", {1.00, 1.01, 0.99});
        s.add("algAA", {1.20, 1.21, 1.19});
        s.add("algDD", {2.00, 2.01, 1.99});
        s.add("algDA", {2.005, 2.015, 1.995});
        return s;
    }();
    MeanComparator comparator;
    core::Clustering clustering = core::RelativeClusterer(
        comparator, core::ClustererConfig{20, 3}).cluster(set);
};

} // namespace

TEST(RenderClusterTable, ContainsClustersAndScores) {
    Fixture f;
    const std::string out = core::render_cluster_table(f.clustering, f.set);
    EXPECT_NE(out.find("Cluster"), std::string::npos);
    EXPECT_NE(out.find("Relative Score"), std::string::npos);
    EXPECT_NE(out.find("C1"), std::string::npos);
    EXPECT_NE(out.find("algAD"), std::string::npos);
    EXPECT_NE(out.find("1.00"), std::string::npos);
    // DD and DA are equivalent: same cluster, so at most 3 clusters.
    EXPECT_EQ(out.find("C4"), std::string::npos);
}

TEST(RenderFinalTable, OrdersByRank) {
    Fixture f;
    const std::string out = core::render_final_table(f.clustering, f.set);
    // algAD (rank 1) must appear before algDD (rank 3) in the rendering.
    EXPECT_LT(out.find("algAD"), out.find("algDD"));
    EXPECT_NE(out.find("Final Cluster"), std::string::npos);
    EXPECT_NE(out.find("Cumulated Score"), std::string::npos);
}

TEST(RenderSummaryTable, SortsByMeanAndShowsStats) {
    Fixture f;
    const std::string out = core::render_summary_table(f.set);
    EXPECT_LT(out.find("algAD"), out.find("algAA"));
    EXPECT_LT(out.find("algAA"), out.find("algDD"));
    EXPECT_NE(out.find("Mean"), std::string::npos);
    EXPECT_NE(out.find("Median"), std::string::npos);
    EXPECT_NE(out.find("ms"), std::string::npos); // human-readable units
}

TEST(RenderComparisonMatrix, DiagonalAndSymbols) {
    Fixture f;
    Rng rng(1);
    const std::string out =
        core::render_comparison_matrix(f.set, f.comparator, rng);
    EXPECT_NE(out.find("="), std::string::npos);
    EXPECT_NE(out.find(">"), std::string::npos);
    EXPECT_NE(out.find("<"), std::string::npos);
    EXPECT_NE(out.find("~"), std::string::npos); // DD ~ DA
}

TEST(RenderSortTrace, ShowsStepsAndSequences) {
    Fixture f;
    Rng rng(2);
    std::vector<core::SortStep> trace;
    const core::RelativeClusterer clusterer(f.comparator,
                                            core::ClustererConfig{1, 1});
    (void)clusterer.sort_once_traced(f.set, {0, 1, 2, 3}, rng, trace);
    const std::string out = core::render_sort_trace(trace, f.set);
    EXPECT_NE(out.find("step 1"), std::string::npos);
    EXPECT_NE(out.find("sequence:"), std::string::npos);
    EXPECT_NE(out.find("algAD"), std::string::npos);
}

TEST(RenderDistributions, SharedAxisHistograms) {
    Fixture f;
    const std::string out = core::render_distributions(f.set, 10, 20);
    // One block per algorithm.
    EXPECT_NE(out.find("algAD"), std::string::npos);
    EXPECT_NE(out.find("algDA"), std::string::npos);
    EXPECT_NE(out.find("#"), std::string::npos);
}

TEST(RenderDistributions, EmptySetThrows) {
    EXPECT_THROW((void)core::render_distributions(core::MeasurementSet{}),
                 relperf::InvalidArgument);
}

TEST(CsvExports, MeasurementsRoundTrip) {
    Fixture f;
    const std::string path = testing::TempDir() + "relperf_report_meas.csv";
    core::write_measurements_csv(f.set, path);
    const std::string content = slurp(path);
    EXPECT_NE(content.find("algorithm,measurement_index,seconds"),
              std::string::npos);
    EXPECT_NE(content.find("algDD,0,"), std::string::npos);
    // 4 algs x 3 measurements + header = 13 lines.
    EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 13);
    std::remove(path.c_str());
}

TEST(CsvExports, ClusteringContainsFinalColumns) {
    Fixture f;
    const std::string path = testing::TempDir() + "relperf_report_clus.csv";
    core::write_clustering_csv(f.clustering, f.set, path);
    const std::string content = slurp(path);
    EXPECT_NE(content.find("cluster,algorithm,relative_score,final_cluster,final_score"),
              std::string::npos);
    EXPECT_NE(content.find("algAD"), std::string::npos);
    std::remove(path.c_str());
}
