#include "core/classical_comparators.hpp"

#include "stats/rng.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace core = relperf::core;
using core::Ordering;
using relperf::stats::Rng;

namespace {

std::vector<double> normal_sample(double mean, double sd, int n,
                                  std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> out;
    out.reserve(n);
    for (int i = 0; i < n; ++i) out.push_back(mean + sd * rng.normal());
    return out;
}

} // namespace

// --- Mann-Whitney ----------------------------------------------------------

TEST(MannWhitneyComparator, SeparatedSamplesGetDirection) {
    const auto fast = normal_sample(1.0, 0.1, 40, 1);
    const auto slow = normal_sample(2.0, 0.1, 40, 2);
    const core::MannWhitneyComparator cmp;
    Rng rng(3);
    EXPECT_EQ(cmp.compare(fast, slow, rng), Ordering::Better);
    EXPECT_EQ(cmp.compare(slow, fast, rng), Ordering::Worse);
}

TEST(MannWhitneyComparator, OverlappingSamplesAreEquivalent) {
    const auto a = normal_sample(1.0, 0.2, 40, 4);
    const auto b = normal_sample(1.01, 0.2, 40, 5);
    const core::MannWhitneyComparator cmp;
    Rng rng(6);
    EXPECT_EQ(cmp.compare(a, b, rng), Ordering::Equivalent);
}

TEST(MannWhitneyComparator, EffectSizeGateSuppressesTinyButSignificantShifts) {
    // Huge N makes a tiny shift statistically significant; the Cliff's delta
    // gate must still call it equivalent when min_effect is large.
    const auto a = normal_sample(1.00, 0.05, 2000, 7);
    const auto b = normal_sample(1.005, 0.05, 2000, 8);
    const core::MannWhitneyComparator strict(0.05, 0.5);
    Rng rng(9);
    EXPECT_EQ(strict.compare(a, b, rng), Ordering::Equivalent);
}

TEST(MannWhitneyComparator, InvalidConfigThrows) {
    EXPECT_THROW(core::MannWhitneyComparator(0.0, 0.1), relperf::InvalidArgument);
    EXPECT_THROW(core::MannWhitneyComparator(1.0, 0.1), relperf::InvalidArgument);
    EXPECT_THROW(core::MannWhitneyComparator(0.05, 1.0), relperf::InvalidArgument);
}

// --- Kolmogorov-Smirnov ----------------------------------------------------

TEST(KsComparator, SeparatedSamplesGetDirection) {
    const auto fast = normal_sample(1.0, 0.1, 60, 10);
    const auto slow = normal_sample(1.6, 0.1, 60, 11);
    const core::KsComparator cmp;
    Rng rng(12);
    EXPECT_EQ(cmp.compare(fast, slow, rng), Ordering::Better);
    EXPECT_EQ(cmp.compare(slow, fast, rng), Ordering::Worse);
}

TEST(KsComparator, OverlappingSamplesAreEquivalent) {
    const auto a = normal_sample(1.0, 0.2, 50, 13);
    const auto b = normal_sample(1.02, 0.2, 50, 14);
    const core::KsComparator cmp;
    Rng rng(15);
    EXPECT_EQ(cmp.compare(a, b, rng), Ordering::Equivalent);
}

TEST(KsComparator, DetectsShapeDifferencesWithEqualMedians) {
    // Same median, wildly different spread: KS sees it, direction comes from
    // the (equal) medians -> falls back to Equivalent. The test documents
    // this deliberate behaviour.
    std::vector<double> narrow;
    std::vector<double> wide;
    for (int i = 0; i < 200; ++i) {
        const double u = (i + 0.5) / 200.0;
        narrow.push_back(1.0 + 0.01 * (u - 0.5));
        wide.push_back(1.0 + 2.0 * (u - 0.5));
    }
    const core::KsComparator cmp;
    Rng rng(16);
    EXPECT_EQ(cmp.compare(narrow, wide, rng), Ordering::Equivalent);
}

TEST(KsComparator, InvalidConfigThrows) {
    EXPECT_THROW(core::KsComparator(0.0), relperf::InvalidArgument);
    EXPECT_THROW(core::KsComparator(1.0), relperf::InvalidArgument);
}

// --- Summary statistic baseline ---------------------------------------------

TEST(SummaryComparator, ComparesMeansWithTolerance) {
    const std::vector<double> a = {1.0, 1.0, 1.0};
    const std::vector<double> b = {2.0, 2.0, 2.0};
    const std::vector<double> near_a = {1.01, 1.01, 1.01};
    const core::SummaryComparator cmp(core::SummaryComparator::Statistic::Mean, 0.05);
    Rng rng(17);
    EXPECT_EQ(cmp.compare(a, b, rng), Ordering::Better);
    EXPECT_EQ(cmp.compare(b, a, rng), Ordering::Worse);
    EXPECT_EQ(cmp.compare(a, near_a, rng), Ordering::Equivalent);
}

TEST(SummaryComparator, MedianIgnoresOutliers) {
    const std::vector<double> with_outlier = {1.0, 1.0, 1.0, 1.0, 100.0};
    const std::vector<double> clean = {1.0, 1.0, 1.0, 1.0, 1.0};
    const core::SummaryComparator median_cmp(
        core::SummaryComparator::Statistic::Median, 0.02);
    const core::SummaryComparator mean_cmp(
        core::SummaryComparator::Statistic::Mean, 0.02);
    Rng rng(18);
    EXPECT_EQ(median_cmp.compare(with_outlier, clean, rng), Ordering::Equivalent);
    EXPECT_EQ(mean_cmp.compare(with_outlier, clean, rng), Ordering::Worse);
}

TEST(SummaryComparator, MinimumStatistic) {
    const std::vector<double> a = {1.0, 5.0};
    const std::vector<double> b = {2.0, 2.0};
    const core::SummaryComparator cmp(core::SummaryComparator::Statistic::Minimum,
                                      0.0);
    Rng rng(19);
    EXPECT_EQ(cmp.compare(a, b, rng), Ordering::Better);
}

TEST(SummaryComparator, Names) {
    using S = core::SummaryComparator::Statistic;
    EXPECT_EQ(core::SummaryComparator(S::Mean).name(), "summary-mean");
    EXPECT_EQ(core::SummaryComparator(S::Median).name(), "summary-median");
    EXPECT_EQ(core::SummaryComparator(S::Minimum).name(), "summary-min");
}

TEST(SummaryComparator, NegativeToleranceThrows) {
    EXPECT_THROW(core::SummaryComparator(core::SummaryComparator::Statistic::Mean,
                                         -0.1),
                 relperf::InvalidArgument);
}
