//! The pluggable stopping rules in isolation, driven by hand-built
//! clusterings (score_of falls back to scanning `clusters` when the
//! memberships index is empty, so the fixtures only fill final_assignment,
//! clusters and repetitions):
//!
//!  * MembershipStabilityRule replicates the original engine bookkeeping —
//!    the first clustering only seeds the previous-rank state, the counter
//!    resets on any membership change, and stopped algorithms are skipped;
//!  * ConfidenceTargetRule never stops on the first clustering, demands a
//!    class repeat plus a significant class-vs-runner-up margin, declines
//!    when Rep is unknown, and tightens monotonically with the confidence
//!    level;
//!  * make_stopping_rule dispatches the AdaptiveConfig knobs.

#include "core/stopping_rule.hpp"

#include "support/error.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

namespace core = relperf::core;

namespace {

/// Builds a clustering from per-algorithm (rank, score) membership lists.
/// The final assignment is the max-score rank with cumulated better-rank
/// scores, like the real clusterer's unique-assignment rule.
core::Clustering make_clustering(
    const std::vector<std::vector<std::pair<int, double>>>& memberships,
    std::size_t repetitions) {
    core::Clustering clustering;
    clustering.repetitions = repetitions;
    int max_rank = 0;
    for (const auto& ranks : memberships) {
        for (const auto& [rank, score] : ranks) max_rank = std::max(max_rank, rank);
    }
    clustering.clusters.resize(static_cast<std::size_t>(max_rank));
    for (std::size_t alg = 0; alg < memberships.size(); ++alg) {
        int best_rank = 0;
        double best_score = -1.0;
        double cumulated = 0.0;
        for (const auto& [rank, score] : memberships[alg]) {
            clustering.clusters[static_cast<std::size_t>(rank - 1)].push_back(
                {alg, score});
            cumulated += score;
            if (score > best_score) {
                best_score = score;
                best_rank = rank;
            }
        }
        clustering.final_assignment.push_back({alg, best_rank, cumulated});
    }
    return clustering;
}

/// All algorithms still measuring.
std::vector<bool> none_stopped(std::size_t n) {
    return std::vector<bool>(n, false);
}

} // namespace

TEST(StoppingRuleKind, ToString) {
    EXPECT_STREQ(core::to_string(core::StoppingRuleKind::Stability),
                 "stability");
    EXPECT_STREQ(core::to_string(core::StoppingRuleKind::Confidence),
                 "confidence");
}

TEST(MembershipStabilityRule, FirstObserveOnlySeeds) {
    core::MembershipStabilityRule rule(1);
    const core::Clustering c = make_clustering({{{1, 1.0}}, {{2, 1.0}}}, 10);
    rule.observe(c, none_stopped(2));
    // One clustering seen: no membership has been *repeated* yet.
    EXPECT_FALSE(rule.should_stop(0));
    EXPECT_FALSE(rule.should_stop(1));
    rule.observe(c, none_stopped(2));
    EXPECT_TRUE(rule.should_stop(0));
    EXPECT_TRUE(rule.should_stop(1));
}

TEST(MembershipStabilityRule, CounterResetsOnMembershipChange) {
    core::MembershipStabilityRule rule(2);
    const core::Clustering ab = make_clustering({{{1, 1.0}}, {{2, 1.0}}}, 10);
    const core::Clustering ba = make_clustering({{{2, 1.0}}, {{1, 1.0}}}, 10);
    rule.observe(ab, none_stopped(2)); // seed
    rule.observe(ab, none_stopped(2)); // stable x1
    EXPECT_FALSE(rule.should_stop(0));
    rule.observe(ba, none_stopped(2)); // membership flipped: reset
    EXPECT_FALSE(rule.should_stop(0));
    rule.observe(ba, none_stopped(2)); // stable x1 again
    EXPECT_FALSE(rule.should_stop(0));
    rule.observe(ba, none_stopped(2)); // stable x2
    EXPECT_TRUE(rule.should_stop(0));
    EXPECT_TRUE(rule.should_stop(1));
}

TEST(MembershipStabilityRule, SkipsStoppedAlgorithms) {
    core::MembershipStabilityRule rule(1);
    const core::Clustering ab = make_clustering({{{1, 1.0}}, {{2, 1.0}}}, 10);
    rule.observe(ab, none_stopped(2));
    rule.observe(ab, none_stopped(2));
    ASSERT_TRUE(rule.should_stop(1));
    // Algorithm 1 stopped; its verdict is never read again and later
    // observes must keep serving algorithm 0.
    rule.observe(ab, {false, true});
    EXPECT_TRUE(rule.should_stop(0));
}

TEST(MembershipStabilityRule, RejectsBadConstructionAndMismatchedSizes) {
    EXPECT_THROW(core::MembershipStabilityRule(0), relperf::InvalidArgument);
    core::MembershipStabilityRule rule(2);
    const core::Clustering c = make_clustering({{{1, 1.0}}, {{2, 1.0}}}, 10);
    EXPECT_THROW(rule.observe(c, none_stopped(3)), relperf::InvalidArgument);
    rule.observe(c, none_stopped(2));
    const core::Clustering bigger =
        make_clustering({{{1, 1.0}}, {{2, 1.0}}, {{3, 1.0}}}, 10);
    EXPECT_THROW(rule.observe(bigger, none_stopped(3)),
                 relperf::InvalidArgument);
}

TEST(ConfidenceTargetRule, ValidatesConfidenceAndResolvesZ) {
    EXPECT_THROW(core::ConfidenceTargetRule(0.5), relperf::InvalidArgument);
    EXPECT_THROW(core::ConfidenceTargetRule(1.0), relperf::InvalidArgument);
    EXPECT_THROW(core::ConfidenceTargetRule(0.0), relperf::InvalidArgument);
    EXPECT_THROW(core::ConfidenceTargetRule(-0.9), relperf::InvalidArgument);
    const core::ConfidenceTargetRule rule(0.95);
    EXPECT_NEAR(rule.z(), 1.6448536269514722, 1e-9);
}

TEST(ConfidenceTargetRule, NeverStopsOnTheFirstClustering) {
    core::ConfidenceTargetRule rule(0.95);
    // Unanimous membership — as decisive as a clustering gets.
    const core::Clustering c = make_clustering({{{1, 1.0}}, {{2, 1.0}}}, 100);
    rule.observe(c, none_stopped(2));
    EXPECT_FALSE(rule.should_stop(0));
    EXPECT_FALSE(rule.should_stop(1));
    rule.observe(c, none_stopped(2));
    // Class repeated, margin 1 with zero variance: stop.
    EXPECT_TRUE(rule.should_stop(0));
    EXPECT_TRUE(rule.should_stop(1));
}

TEST(ConfidenceTargetRule, InsignificantMarginKeepsMeasuring) {
    core::ConfidenceTargetRule rule(0.95);
    // Rank 1 wins 55/45 over rank 2 across Rep = 20 repetitions: margin 0.1,
    // SE ~ 0.22 — nowhere near significant at 0.95.
    const core::Clustering c = make_clustering(
        {{{1, 0.55}, {2, 0.45}}, {{1, 0.45}, {2, 0.55}}}, 20);
    rule.observe(c, none_stopped(2));
    rule.observe(c, none_stopped(2));
    EXPECT_FALSE(rule.should_stop(0));
    EXPECT_FALSE(rule.should_stop(1));
}

TEST(ConfidenceTargetRule, MembershipFlipBlocksStopping) {
    core::ConfidenceTargetRule rule(0.95);
    const core::Clustering ab = make_clustering({{{1, 1.0}}, {{2, 1.0}}}, 100);
    const core::Clustering ba = make_clustering({{{2, 1.0}}, {{1, 1.0}}}, 100);
    rule.observe(ab, none_stopped(2));
    rule.observe(ba, none_stopped(2)); // decisive, but the class changed
    EXPECT_FALSE(rule.should_stop(0));
    EXPECT_FALSE(rule.should_stop(1));
    rule.observe(ba, none_stopped(2)); // repeated now
    EXPECT_TRUE(rule.should_stop(0));
}

TEST(ConfidenceTargetRule, UnknownRepetitionCountIsNotConfident) {
    core::ConfidenceTargetRule rule(0.95);
    const core::Clustering c = make_clustering({{{1, 1.0}}, {{2, 1.0}}}, 0);
    rule.observe(c, none_stopped(2));
    rule.observe(c, none_stopped(2));
    EXPECT_FALSE(rule.should_stop(0));
}

TEST(ConfidenceTargetRule, HigherConfidenceIsMoreConservative) {
    // Rank 1 wins 60/40 over Rep = 100: margin 0.2, SE ~ 0.098. Significant
    // at z(0.8) = 0.84 but not at z(0.9999) = 3.72.
    const core::Clustering c = make_clustering(
        {{{1, 0.6}, {2, 0.4}}, {{1, 0.4}, {2, 0.6}}}, 100);
    core::ConfidenceTargetRule loose(0.8);
    loose.observe(c, none_stopped(2));
    loose.observe(c, none_stopped(2));
    EXPECT_TRUE(loose.should_stop(0));

    core::ConfidenceTargetRule tight(0.9999);
    tight.observe(c, none_stopped(2));
    tight.observe(c, none_stopped(2));
    EXPECT_FALSE(tight.should_stop(0));
}

TEST(MakeStoppingRule, DispatchesTheConfiguredKind) {
    const auto stability =
        core::make_stopping_rule(core::StoppingRuleKind::Stability, 2, 0.0);
    EXPECT_STREQ(stability->name(), "stability");
    const auto confidence =
        core::make_stopping_rule(core::StoppingRuleKind::Confidence, 2, 0.95);
    EXPECT_STREQ(confidence->name(), "confidence");
    EXPECT_THROW((void)core::make_stopping_rule(
                     core::StoppingRuleKind::Confidence, 2, 0.4),
                 relperf::InvalidArgument);
}
