//! The adaptive measurement engine's contracts:
//!
//!  * with max_n == min_n (adaptive off) it performs exactly one round and
//!    reproduces the fixed-N batch path bit for bit, clustering included;
//!  * adaptive runs early-stop algorithms whose class membership has been
//!    stable for `stability_rounds` consecutive clusterings, never exceed
//!    max_n, and clamp the last batch to the cap;
//!  * every algorithm's adaptive sample is a strict prefix of the fixed-N
//!    sample (per-algorithm streams make extension order-independent);
//!  * runs are deterministic.

#include "core/measurement_engine.hpp"

#include "core/pipeline.hpp"
#include "sim/profile.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>

namespace core = relperf::core;
namespace sim = relperf::sim;
namespace workloads = relperf::workloads;
using relperf::stats::Rng;

namespace {

/// Deterministic source: algorithm i yields `base[i] * (1 + tiny wiggle)`
/// at stream position p — clearly separated distributions whose clustering
/// is stable from the first round. Records every draw for assertions.
class ScriptedSource final : public core::SampleSource {
public:
    explicit ScriptedSource(std::vector<std::pair<std::string, double>> algs)
        : algs_(std::move(algs)),
          position_(algs_.size(), 0),
          draw_sizes_(algs_.size()) {}

    [[nodiscard]] std::size_t count() const override { return algs_.size(); }
    [[nodiscard]] std::string name(std::size_t index) const override {
        return algs_.at(index).first;
    }
    [[nodiscard]] std::vector<double> draw(std::size_t index,
                                           std::size_t n) override {
        std::vector<double> out;
        out.reserve(n);
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t p = position_[index]++;
            const double wiggle =
                0.001 * static_cast<double>((p * 7) % 11) / 11.0;
            out.push_back(algs_[index].second * (1.0 + wiggle));
        }
        draw_sizes_[index].push_back(n);
        return out;
    }

    std::vector<std::pair<std::string, double>> algs_;
    std::vector<std::size_t> position_;
    std::vector<std::vector<std::size_t>> draw_sizes_;
};

ScriptedSource two_classes() {
    return ScriptedSource{{{"fast", 1.0}, {"quick", 1.002}, {"slow", 2.0}}};
}

core::MeasurementEngine engine_for(core::AdaptiveConfig adaptive) {
    core::ClustererConfig clustering;
    clustering.repetitions = 30;
    return core::MeasurementEngine(adaptive, {}, clustering);
}

} // namespace

TEST(AdaptiveConfig, Validation) {
    EXPECT_NO_THROW(core::AdaptiveConfig{}.validate());
    core::AdaptiveConfig config;
    config.min_n = 0;
    EXPECT_THROW(config.validate(), relperf::InvalidArgument);
    config = {};
    config.max_n = config.min_n - 1;
    EXPECT_THROW(config.validate(), relperf::InvalidArgument);
    config = {};
    config.batch = 0;
    EXPECT_THROW(config.validate(), relperf::InvalidArgument);
    config = {};
    config.stability_rounds = 0;
    EXPECT_THROW(config.validate(), relperf::InvalidArgument);
    config = {};
    config.min_n = config.max_n = 7;
    EXPECT_FALSE(config.enabled());
    config.max_n = 8;
    EXPECT_TRUE(config.enabled());
}

TEST(MeasureAll, DrawsNOfEveryAlgorithmInOrder) {
    ScriptedSource source = two_classes();
    const core::MeasurementSet set = core::measure_all(source, 4);
    ASSERT_EQ(set.size(), 3u);
    EXPECT_EQ(set.name(0), "fast");
    EXPECT_EQ(set.name(2), "slow");
    for (std::size_t i = 0; i < set.size(); ++i) {
        EXPECT_EQ(set.samples(i).size(), 4u);
        EXPECT_EQ(source.draw_sizes_[i], std::vector<std::size_t>{4});
    }
    EXPECT_THROW((void)core::measure_all(source, 0), relperf::InvalidArgument);
}

TEST(MeasurementEngine, AdaptiveOffIsOneFixedRound) {
    core::AdaptiveConfig adaptive;
    adaptive.min_n = adaptive.max_n = 6;
    ScriptedSource source = two_classes();
    const core::EngineResult result = engine_for(adaptive).run(source);

    EXPECT_EQ(result.rounds, 1u);
    EXPECT_EQ(result.total_samples, 18u);
    EXPECT_EQ(result.fixed_n_samples, 18u);
    EXPECT_EQ(result.saved_samples(), 0u);
    EXPECT_EQ(result.samples_per_alg,
              (std::vector<std::size_t>{6, 6, 6}));

    // Bit-identical to the legacy batch path, clustering included.
    ScriptedSource again = two_classes();
    core::MeasurementSet batch = core::measure_all(again, 6);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(std::vector<double>(result.measurements.samples(i).begin(),
                                      result.measurements.samples(i).end()),
                  std::vector<double>(batch.samples(i).begin(),
                                      batch.samples(i).end()));
    }
    core::AnalysisConfig analysis;
    analysis.clustering.repetitions = 30;
    const core::AnalysisResult reference =
        core::analyze_measurements(std::move(batch), analysis);
    ASSERT_EQ(result.clustering.cluster_count(),
              reference.clustering.cluster_count());
    for (std::size_t alg = 0; alg < 3; ++alg) {
        EXPECT_EQ(result.clustering.final_assignment[alg].rank,
                  reference.clustering.final_assignment[alg].rank);
        EXPECT_DOUBLE_EQ(result.clustering.final_assignment[alg].score,
                         reference.clustering.final_assignment[alg].score);
    }
}

TEST(MeasurementEngine, StableMembershipStopsAfterStabilityRounds) {
    core::AdaptiveConfig adaptive;
    adaptive.min_n = 5;
    adaptive.max_n = 30;
    adaptive.batch = 3;
    adaptive.stability_rounds = 2;
    ScriptedSource source = two_classes();
    const core::EngineResult result = engine_for(adaptive).run(source);

    // Clearly separated distributions: membership is identical at N = 5, 8
    // and 11, so every algorithm stops after two stable comparisons.
    EXPECT_EQ(result.samples_per_alg,
              (std::vector<std::size_t>{11, 11, 11}));
    EXPECT_EQ(result.rounds, 3u);
    EXPECT_EQ(result.total_samples, 33u);
    EXPECT_EQ(result.fixed_n_samples, 90u);
    EXPECT_EQ(result.saved_samples(), 57u);
    for (std::size_t i = 0; i < source.count(); ++i) {
        EXPECT_EQ(source.draw_sizes_[i],
                  (std::vector<std::size_t>{5, 3, 3}));
    }
    // The clustering separates the two classes.
    EXPECT_EQ(result.clustering.final_rank(0),
              result.clustering.final_rank(1));
    EXPECT_NE(result.clustering.final_rank(0),
              result.clustering.final_rank(2));
}

TEST(MeasurementEngine, ConfidenceRuleStopsOneRoundAfterMembershipRepeats) {
    // Two clearly separated classes: every clustering is unanimous (score
    // 1.0, margin 1 with zero variance), so the confidence rule stops every
    // algorithm on the exact round its membership first *repeats* — round 2.
    // The stability rule at the default stability_rounds = 2 needs round 3
    // on the same source (see StableMembershipStopsAfterStabilityRounds),
    // so this pins both the stop round and the rule's cost advantage.
    core::AdaptiveConfig adaptive;
    adaptive.min_n = 5;
    adaptive.max_n = 30;
    adaptive.batch = 3;
    adaptive.rule = core::StoppingRuleKind::Confidence;
    adaptive.confidence = 0.95;
    ScriptedSource source = two_classes();
    const core::EngineResult result = engine_for(adaptive).run(source);

    EXPECT_EQ(result.rounds, 2u);
    EXPECT_EQ(result.samples_per_alg, (std::vector<std::size_t>{8, 8, 8}));
    EXPECT_EQ(result.total_samples, 24u);
    EXPECT_EQ(result.fixed_n_samples, 90u);
    EXPECT_EQ(result.saved_samples(), 66u);
    for (std::size_t i = 0; i < source.count(); ++i) {
        EXPECT_EQ(source.draw_sizes_[i], (std::vector<std::size_t>{5, 3}));
    }
    EXPECT_EQ(result.clustering.final_rank(0),
              result.clustering.final_rank(1));
    EXPECT_NE(result.clustering.final_rank(0),
              result.clustering.final_rank(2));
}

TEST(MeasurementEngine, ConfidenceConfigValidation) {
    core::AdaptiveConfig config;
    config.rule = core::StoppingRuleKind::Confidence;
    config.confidence = 0.5;
    EXPECT_THROW(config.validate(), relperf::InvalidArgument);
    config.confidence = 1.0;
    EXPECT_THROW(config.validate(), relperf::InvalidArgument);
    config.confidence = 0.95;
    EXPECT_NO_THROW(config.validate());
    // The stability rule ignores the confidence field entirely.
    config.rule = core::StoppingRuleKind::Stability;
    config.confidence = 0.0;
    EXPECT_NO_THROW(config.validate());
}

TEST(MeasurementEngine, RoundObserverSeesEveryRoundIncludingTheLast) {
    core::AdaptiveConfig adaptive;
    adaptive.min_n = 5;
    adaptive.max_n = 30;
    adaptive.batch = 3;
    adaptive.stability_rounds = 2;
    ScriptedSource source = two_classes();
    std::vector<core::EngineRound> seen;
    const core::EngineResult result = engine_for(adaptive).run(
        source, [&seen](const core::EngineRound& r) { seen.push_back(r); });

    ASSERT_EQ(seen.size(), result.rounds);
    std::size_t cumulative = 0;
    for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_EQ(seen[i].round, i + 1);
        cumulative += seen[i].newly_stopped;
        EXPECT_EQ(seen[i].stopped_total, cumulative);
        EXPECT_EQ(seen[i].active, source.count() - cumulative);
    }
    // The final round stops everyone and extends no one.
    EXPECT_EQ(seen.back().stopped_total, source.count());
    EXPECT_EQ(seen.back().active, 0u);
}

TEST(EngineResult, SavedSamplesGuardsTheBudgetInvariant) {
    core::EngineResult result;
    result.fixed_n_samples = 10;
    result.total_samples = 4;
    EXPECT_EQ(result.saved_samples(), 6u);
    result.total_samples = 10;
    EXPECT_EQ(result.saved_samples(), 0u);
    // total > fixed violates the engine's budget invariant: assert in debug
    // builds, clamp to zero (never underflow) with NDEBUG.
    result.total_samples = 11;
    EXPECT_DEBUG_DEATH((void)result.saved_samples(), "fixed-N budget");
#ifdef NDEBUG
    EXPECT_EQ(result.saved_samples(), 0u);
#endif
}

TEST(RenderSavings, WellDefinedForZeroFixedBudget) {
    EXPECT_EQ(core::render_savings(0, 0),
              "measured 0 of 0 fixed-N samples, saved 0 (0.0%)");
    // And the overshoot case clamps instead of wrapping.
    EXPECT_EQ(core::render_savings(5, 0),
              "measured 5 of 0 fixed-N samples, saved 0 (0.0%)");
}

TEST(MeasurementEngine, PublishedClusteringEqualsAnalyzeMeasurements) {
    // EngineResult::clustering must equal what analyze_measurements computes
    // on the final measurements — with frozen-comparison reuse on (where the
    // engine re-clusters cleanly after replayed rounds) and off alike.
    for (const bool reuse : {true, false}) {
        core::AdaptiveConfig adaptive;
        adaptive.min_n = 4;
        adaptive.max_n = 16;
        adaptive.batch = 4;
        adaptive.stability_rounds = 2;
        adaptive.reuse_frozen_comparisons = reuse;
        ScriptedSource source = two_classes();
        const core::EngineResult result = engine_for(adaptive).run(source);

        core::AnalysisConfig analysis;
        analysis.clustering.repetitions = 30; // matches engine_for
        const core::AnalysisResult reference = core::analyze_measurements(
            core::MeasurementSet(result.measurements), analysis);
        ASSERT_EQ(result.clustering.cluster_count(),
                  reference.clustering.cluster_count())
            << "reuse_frozen_comparisons = " << reuse;
        for (std::size_t alg = 0; alg < source.count(); ++alg) {
            EXPECT_EQ(result.clustering.final_assignment[alg].rank,
                      reference.clustering.final_assignment[alg].rank);
            EXPECT_EQ(result.clustering.final_assignment[alg].score,
                      reference.clustering.final_assignment[alg].score);
            for (int r = 1; r <= result.clustering.cluster_count(); ++r) {
                EXPECT_EQ(result.clustering.score_of(alg, r),
                          reference.clustering.score_of(alg, r));
            }
        }
    }
}

TEST(MeasurementEngine, CapClampsTheLastBatch) {
    core::AdaptiveConfig adaptive;
    adaptive.min_n = 5;
    adaptive.max_n = 7;
    adaptive.batch = 10;      // would overshoot: must clamp to 2
    adaptive.stability_rounds = 50; // never satisfied: the cap stops everyone
    ScriptedSource source = two_classes();
    const core::EngineResult result = engine_for(adaptive).run(source);
    EXPECT_EQ(result.samples_per_alg, (std::vector<std::size_t>{7, 7, 7}));
    for (std::size_t i = 0; i < source.count(); ++i) {
        EXPECT_EQ(source.draw_sizes_[i], (std::vector<std::size_t>{5, 2}));
    }
    EXPECT_EQ(result.saved_samples(), 0u);
}

TEST(MeasurementEngine, AdaptiveSamplesAreAPrefixOfTheFixedRun) {
    // The determinism contract on a real workload: per-assignment streams
    // make each algorithm's adaptive sample literally the first
    // samples_per_alg[i] values of the fixed-N sample.
    const workloads::TaskChain chain = workloads::paper_rls_chain(10);
    const sim::CalibratedProfile profile = sim::paper_rls_profile();
    const sim::SimulatedExecutor executor(profile, sim::NoiseModel{});
    const auto assignments = workloads::enumerate_assignments(3);
    std::vector<workloads::VariantAssignment> variants;
    for (const auto& a : assignments) variants.emplace_back(a);

    const auto streams = [](const Rng& master) {
        return [&master](std::size_t i) { return master.child(i); };
    };

    Rng fixed_master(99);
    core::SimSampleSource fixed_source(executor, chain, variants,
                                       streams(fixed_master));
    const core::MeasurementSet fixed = core::measure_all(fixed_source, 30);

    core::AdaptiveConfig adaptive;
    adaptive.min_n = 8;
    adaptive.max_n = 30;
    adaptive.batch = 4;
    adaptive.stability_rounds = 2;
    Rng adaptive_master(99);
    core::SimSampleSource adaptive_source(executor, chain, variants,
                                          streams(adaptive_master));
    const core::EngineResult result = engine_for(adaptive).run(adaptive_source);

    ASSERT_EQ(result.measurements.size(), fixed.size());
    for (std::size_t i = 0; i < fixed.size(); ++i) {
        const auto grown = result.measurements.samples(i);
        const auto full = fixed.samples(i);
        ASSERT_LE(grown.size(), full.size()) << fixed.name(i);
        ASSERT_GE(grown.size(), adaptive.min_n) << fixed.name(i);
        for (std::size_t k = 0; k < grown.size(); ++k) {
            EXPECT_EQ(grown[k], full[k]) << fixed.name(i) << " sample " << k;
        }
    }
}

TEST(MeasurementEngine, RunsAreDeterministic) {
    core::AdaptiveConfig adaptive;
    adaptive.min_n = 5;
    adaptive.max_n = 20;
    adaptive.batch = 5;
    adaptive.stability_rounds = 1;
    ScriptedSource a = two_classes();
    ScriptedSource b = two_classes();
    const core::EngineResult ra = engine_for(adaptive).run(a);
    const core::EngineResult rb = engine_for(adaptive).run(b);
    EXPECT_EQ(ra.samples_per_alg, rb.samples_per_alg);
    EXPECT_EQ(ra.rounds, rb.rounds);
    for (std::size_t i = 0; i < ra.measurements.size(); ++i) {
        EXPECT_EQ(std::vector<double>(ra.measurements.samples(i).begin(),
                                      ra.measurements.samples(i).end()),
                  std::vector<double>(rb.measurements.samples(i).begin(),
                                      rb.measurements.samples(i).end()));
    }
}

TEST(MeasurementEngine, RejectsEmptySourceAndBadConfig) {
    ScriptedSource empty({});
    EXPECT_THROW((void)engine_for({}).run(empty), relperf::InvalidArgument);
    core::AdaptiveConfig bad;
    bad.min_n = 0;
    EXPECT_THROW(core::MeasurementEngine(bad, {}, {}),
                 relperf::InvalidArgument);
}
