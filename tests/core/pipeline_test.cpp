#include "core/pipeline.hpp"

#include "sim/profile.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

namespace core = relperf::core;
namespace sim = relperf::sim;
namespace workloads = relperf::workloads;
using relperf::stats::Rng;

namespace {

struct Fixture {
    workloads::TaskChain chain = workloads::paper_rls_chain(10);
    sim::CalibratedProfile profile = sim::paper_rls_profile();
    sim::SimulatedExecutor executor{profile, sim::NoiseModel{}};
    std::vector<workloads::DeviceAssignment> assignments =
        workloads::enumerate_assignments(3);
};

} // namespace

TEST(MeasureAssignments, ProducesNamedDistributions) {
    Fixture f;
    Rng rng(1);
    const core::MeasurementSet set =
        core::measure_assignments(f.executor, f.chain, f.assignments, 25, rng);
    ASSERT_EQ(set.size(), 8u);
    EXPECT_EQ(set.name(0), "algDDD");
    EXPECT_EQ(set.name(7), "algAAA");
    for (std::size_t i = 0; i < set.size(); ++i) {
        EXPECT_EQ(set.samples(i).size(), 25u);
    }
}

TEST(MeasureAssignments, SeedDeterministic) {
    Fixture f;
    Rng a(7);
    Rng b(7);
    const auto sa = core::measure_assignments(f.executor, f.chain, f.assignments, 10, a);
    const auto sb = core::measure_assignments(f.executor, f.chain, f.assignments, 10, b);
    for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(std::vector<double>(sa.samples(i).begin(), sa.samples(i).end()),
                  std::vector<double>(sb.samples(i).begin(), sb.samples(i).end()));
    }
}

TEST(MeasureAssignments, EmptyAssignmentListThrows) {
    Fixture f;
    Rng rng(1);
    EXPECT_THROW(
        (void)core::measure_assignments(f.executor, f.chain, {}, 10, rng),
        relperf::InvalidArgument);
}

TEST(AnalyzeChain, EndToEndProducesConsistentResult) {
    Fixture f;
    core::AnalysisConfig config;
    config.measurements_per_alg = 30;
    config.clustering.repetitions = 40;
    const core::AnalysisResult result =
        core::analyze_chain(f.executor, f.chain, f.assignments, config);

    EXPECT_EQ(result.measurements.size(), 8u);
    EXPECT_GE(result.clustering.cluster_count(), 3);
    EXPECT_LE(result.clustering.cluster_count(), 8);
    EXPECT_EQ(result.clustering.final_assignment.size(), 8u);
    EXPECT_EQ(result.clustering.repetitions, 40u);
}

TEST(AnalyzeChain, IsFullyDeterministicUnderFixedSeeds) {
    Fixture f;
    core::AnalysisConfig config;
    config.measurements_per_alg = 20;
    config.clustering.repetitions = 30;
    const auto r1 = core::analyze_chain(f.executor, f.chain, f.assignments, config);
    const auto r2 = core::analyze_chain(f.executor, f.chain, f.assignments, config);
    ASSERT_EQ(r1.clustering.cluster_count(), r2.clustering.cluster_count());
    for (std::size_t alg = 0; alg < 8; ++alg) {
        EXPECT_EQ(r1.clustering.final_assignment[alg].rank,
                  r2.clustering.final_assignment[alg].rank);
        EXPECT_DOUBLE_EQ(r1.clustering.final_assignment[alg].score,
                         r2.clustering.final_assignment[alg].score);
    }
}

TEST(AnalyzeMeasurements, WorksOnExternallyCollectedData) {
    core::MeasurementSet set;
    set.add("fast", {1.0, 1.02, 0.98, 1.01, 0.99, 1.0, 1.01, 0.99, 1.0, 1.02});
    set.add("slow", {2.0, 2.04, 1.96, 2.02, 1.98, 2.0, 2.02, 1.98, 2.0, 2.04});
    core::AnalysisConfig config;
    config.clustering.repetitions = 20;
    const core::AnalysisResult result =
        core::analyze_measurements(std::move(set), config);
    EXPECT_EQ(result.clustering.cluster_count(), 2);
    EXPECT_EQ(result.clustering.final_rank(0), 1);
    EXPECT_EQ(result.clustering.final_rank(1), 2);
}

TEST(MeasureAssignmentsReal, SmokeOnTinyChain) {
    const workloads::TaskChain tiny = workloads::make_rls_chain({16, 24}, 1, "tiny");
    const sim::RealExecutor real(sim::EmulatedDevice{1, 0.0, 0.0},
                                 sim::EmulatedDevice{2, 0.0, 0.0});
    Rng rng(5);
    const auto assignments = workloads::enumerate_assignments(2);
    const core::MeasurementSet set =
        core::measure_assignments_real(real, tiny, assignments, 3, rng, 1);
    ASSERT_EQ(set.size(), 4u);
    for (std::size_t i = 0; i < set.size(); ++i) {
        for (const double s : set.samples(i)) EXPECT_GT(s, 0.0);
    }
}

TEST(MeasureAssignments, EachAssignmentHasAnIndependentDerivedStream) {
    // The sharding contract: measuring any single assignment on the stream
    // derived from (master seed, global index) reproduces exactly what the
    // full unsharded run produced for it — independent of every other
    // assignment.
    Fixture f;
    Rng rng(1234);
    const core::MeasurementSet all =
        core::measure_assignments(f.executor, f.chain, f.assignments, 12, rng);
    for (std::size_t i = 0; i < f.assignments.size(); ++i) {
        Rng stream(core::assignment_stream_seed(1234, i));
        const std::vector<double> solo =
            f.executor.measure(f.chain, f.assignments[i], 12, stream);
        EXPECT_EQ(std::vector<double>(all.samples(i).begin(),
                                      all.samples(i).end()),
                  solo)
            << f.assignments[i].alg_name();
    }
}

TEST(MeasureAssignments, SubsetMeasurementMatchesTheFullRun) {
    // Measuring a strided subset (what one campaign shard does) yields the
    // same values as the corresponding rows of the full run.
    Fixture f;
    Rng full_rng(42);
    const core::MeasurementSet all =
        core::measure_assignments(f.executor, f.chain, f.assignments, 9, full_rng);

    const std::vector<workloads::DeviceAssignment> subset = {
        f.assignments[1], f.assignments[3], f.assignments[5]};
    core::MeasurementSet shard;
    for (const std::size_t global : {1u, 3u, 5u}) {
        Rng stream(core::assignment_stream_seed(42, global));
        shard.add(f.assignments[global].alg_name(),
                  f.executor.measure(f.chain, f.assignments[global], 9, stream));
    }
    for (std::size_t row = 0; row < shard.size(); ++row) {
        const std::size_t global = 1 + 2 * row;
        EXPECT_EQ(std::vector<double>(shard.samples(row).begin(),
                                      shard.samples(row).end()),
                  std::vector<double>(all.samples(global).begin(),
                                      all.samples(global).end()));
    }
}
