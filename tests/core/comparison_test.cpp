#include "core/comparison.hpp"

#include <gtest/gtest.h>

using relperf::core::Ordering;

TEST(Ordering, ReverseFlipsDirection) {
    EXPECT_EQ(relperf::core::reverse(Ordering::Better), Ordering::Worse);
    EXPECT_EQ(relperf::core::reverse(Ordering::Worse), Ordering::Better);
    EXPECT_EQ(relperf::core::reverse(Ordering::Equivalent), Ordering::Equivalent);
}

TEST(Ordering, ReverseIsInvolution) {
    for (const Ordering o :
         {Ordering::Better, Ordering::Worse, Ordering::Equivalent}) {
        EXPECT_EQ(relperf::core::reverse(relperf::core::reverse(o)), o);
    }
}

TEST(Ordering, Names) {
    EXPECT_STREQ(relperf::core::to_string(Ordering::Better), "better");
    EXPECT_STREQ(relperf::core::to_string(Ordering::Worse), "worse");
    EXPECT_STREQ(relperf::core::to_string(Ordering::Equivalent), "equivalent");
}

TEST(Ordering, PaperSymbols) {
    EXPECT_STREQ(relperf::core::to_symbol(Ordering::Better), ">");
    EXPECT_STREQ(relperf::core::to_symbol(Ordering::Worse), "<");
    EXPECT_STREQ(relperf::core::to_symbol(Ordering::Equivalent), "~");
}
