#include "core/bootstrap_comparator.hpp"

#include "stats/rng.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace core = relperf::core;
using core::BootstrapComparator;
using core::BootstrapComparatorConfig;
using core::Ordering;
using relperf::stats::Rng;

namespace {

std::vector<double> lognormal_sample(double median, double sigma, int n,
                                     std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> out;
    out.reserve(n);
    for (int i = 0; i < n; ++i) out.push_back(median * rng.lognormal(0.0, sigma));
    return out;
}

} // namespace

TEST(BootstrapComparator, ClearlyFasterWins) {
    const auto fast = lognormal_sample(1.0, 0.05, 50, 1);
    const auto slow = lognormal_sample(2.0, 0.05, 50, 2);
    const BootstrapComparator cmp;
    Rng rng(3);
    EXPECT_EQ(cmp.compare(fast, slow, rng), Ordering::Better);
    EXPECT_EQ(cmp.compare(slow, fast, rng), Ordering::Worse);
}

TEST(BootstrapComparator, IdenticalSamplesAreEquivalent) {
    const auto xs = lognormal_sample(1.0, 0.1, 60, 4);
    const BootstrapComparator cmp;
    Rng rng(5);
    EXPECT_EQ(cmp.compare(xs, xs, rng), Ordering::Equivalent);
}

TEST(BootstrapComparator, HeavilyOverlappingSamplesAreEquivalent) {
    // 0.3% median difference, 10% spread: far inside the tie band.
    const auto a = lognormal_sample(1.000, 0.10, 100, 6);
    const auto b = lognormal_sample(1.003, 0.10, 100, 7);
    const BootstrapComparator cmp;
    Rng rng(8);
    EXPECT_EQ(cmp.compare(a, b, rng), Ordering::Equivalent);
}

TEST(BootstrapComparator, ScoreIsBoundedAndSigned) {
    const auto fast = lognormal_sample(1.0, 0.05, 50, 9);
    const auto slow = lognormal_sample(1.5, 0.05, 50, 10);
    const BootstrapComparator cmp;
    Rng rng(11);
    const double s_fast = cmp.score(fast, slow, rng);
    const double s_slow = cmp.score(slow, fast, rng);
    EXPECT_GT(s_fast, 0.9);
    EXPECT_LE(s_fast, 1.0);
    EXPECT_LT(s_slow, -0.9);
    EXPECT_GE(s_slow, -1.0);
}

TEST(BootstrapComparator, AntisymmetryProperty) {
    // The two directions are evaluated with independent bootstrap draws, so
    // borderline pairs may legitimately flip between Equivalent and a
    // direction. The hard invariants: the directions never BOTH claim a win,
    // and clearly-separated pairs reverse exactly.
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Rng gen(seed);
        const double shift = gen.uniform(0.9, 1.15);
        const auto a = lognormal_sample(1.0, 0.08, 30, 100 + seed);
        const auto b = lognormal_sample(shift, 0.08, 30, 200 + seed);
        const BootstrapComparator cmp;
        Rng r1(300 + seed);
        Rng r2(301 + seed);
        const Ordering ab = cmp.compare(a, b, r1);
        const Ordering ba = cmp.compare(b, a, r2);
        EXPECT_FALSE(ab == Ordering::Better && ba == Ordering::Better);
        EXPECT_FALSE(ab == Ordering::Worse && ba == Ordering::Worse);
        if (shift > 1.10) {
            EXPECT_EQ(ab, Ordering::Better) << "seed " << seed;
            EXPECT_EQ(ba, Ordering::Worse) << "seed " << seed;
        }
    }
}

TEST(BootstrapComparator, DeterministicGivenSeed) {
    const auto a = lognormal_sample(1.0, 0.1, 40, 12);
    const auto b = lognormal_sample(1.05, 0.1, 40, 13);
    const BootstrapComparator cmp;
    Rng r1(14);
    Rng r2(14);
    EXPECT_EQ(cmp.compare(a, b, r1), cmp.compare(a, b, r2));
}

TEST(BootstrapComparator, WiderTieBandMakesMorePairsEquivalent) {
    const auto a = lognormal_sample(1.00, 0.02, 60, 15);
    const auto b = lognormal_sample(1.08, 0.02, 60, 16);

    BootstrapComparatorConfig narrow;
    narrow.tie_epsilon = 0.0;
    BootstrapComparatorConfig wide;
    wide.tie_epsilon = 0.25;

    Rng r1(17);
    Rng r2(17);
    EXPECT_EQ(BootstrapComparator(narrow).compare(a, b, r1), Ordering::Better);
    EXPECT_EQ(BootstrapComparator(wide).compare(a, b, r2), Ordering::Equivalent);
}

TEST(BootstrapComparator, SmallSamplesBlurBorderlinePairs) {
    // ~6% apart with 8% noise: decisive at N = 500, not at N = 10.
    const auto big_a = lognormal_sample(1.00, 0.08, 500, 18);
    const auto big_b = lognormal_sample(1.06, 0.08, 500, 19);
    const BootstrapComparator cmp;
    Rng rng(20);
    EXPECT_EQ(cmp.compare(big_a, big_b, rng), Ordering::Better);

    // With N = 10, count equivalents across independent draws: should be
    // frequent (the comparator refuses to call a winner).
    int equivalents = 0;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        const auto small_a = lognormal_sample(1.00, 0.08, 10, 400 + seed);
        const auto small_b = lognormal_sample(1.06, 0.08, 10, 500 + seed);
        Rng r(600 + seed);
        if (cmp.compare(small_a, small_b, r) == Ordering::Equivalent) ++equivalents;
    }
    EXPECT_GE(equivalents, 8);
}

TEST(BootstrapComparator, EmptySamplesThrow) {
    const std::vector<double> empty;
    const std::vector<double> xs = {1.0, 2.0};
    const BootstrapComparator cmp;
    Rng rng(21);
    EXPECT_THROW((void)cmp.compare(empty, xs, rng), relperf::InvalidArgument);
    EXPECT_THROW((void)cmp.compare(xs, empty, rng), relperf::InvalidArgument);
}

TEST(BootstrapComparatorConfig, ValidationCatchesBadKnobs) {
    BootstrapComparatorConfig cfg;
    cfg.rounds = 0;
    EXPECT_THROW(BootstrapComparator{cfg}, relperf::InvalidArgument);
    cfg = {};
    cfg.quantile_lo = 0.7;
    cfg.quantile_hi = 0.3;
    EXPECT_THROW(BootstrapComparator{cfg}, relperf::InvalidArgument);
    cfg = {};
    cfg.tie_epsilon = -0.1;
    EXPECT_THROW(BootstrapComparator{cfg}, relperf::InvalidArgument);
    cfg = {};
    cfg.decision_threshold = 0.0;
    EXPECT_THROW(BootstrapComparator{cfg}, relperf::InvalidArgument);
    cfg = {};
    cfg.decision_threshold = 1.1;
    EXPECT_THROW(BootstrapComparator{cfg}, relperf::InvalidArgument);
}

TEST(BootstrapComparator, SerialAndParallelRoundsAreBitIdentical) {
    // The resamples and quantiles are pregenerated serially and the per-round
    // tally is an integer reduction, so OpenMP on/off must agree exactly —
    // score by score, over many seeds. (In a serial build both configs run
    // the same loop and the test degenerates to determinism.)
    BootstrapComparatorConfig serial_cfg;
    serial_cfg.rounds = 400; // 400 * 60 values clears the parallel threshold
    serial_cfg.parallel_rounds = false;
    BootstrapComparatorConfig parallel_cfg = serial_cfg;
    parallel_cfg.parallel_rounds = true;
    const BootstrapComparator serial(serial_cfg);
    const BootstrapComparator parallel(parallel_cfg);

    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        const auto a = lognormal_sample(1.0, 0.3, 30, seed * 2 + 1);
        const auto b = lognormal_sample(1.05, 0.3, 30, seed * 2 + 2);
        Rng rng_serial(seed + 1000);
        Rng rng_parallel(seed + 1000);
        const double s = serial.score(a, b, rng_serial);
        const double p = parallel.score(a, b, rng_parallel);
        EXPECT_EQ(s, p) << "seed " << seed;
    }
}

TEST(BootstrapComparator, CallerOwnedScratchMatchesThreadLocalPath) {
    const BootstrapComparator cmp(BootstrapComparatorConfig{});
    const auto a = lognormal_sample(1.0, 0.2, 25, 7);
    const auto b = lognormal_sample(1.1, 0.2, 25, 8);
    core::BootstrapScratch scratch;
    for (int call = 0; call < 3; ++call) { // reuse exercises stale contents
        Rng rng_plain(42 + call);
        Rng rng_scratch(42 + call);
        EXPECT_EQ(cmp.score(a, b, rng_plain),
                  cmp.score(a, b, rng_scratch, scratch));
    }
}

TEST(BootstrapComparator, NameIsStable) {
    EXPECT_EQ(BootstrapComparator{}.name(), "bootstrap");
}
