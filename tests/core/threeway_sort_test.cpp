#include "core/threeway_sort.hpp"

#include "stats/rng.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <utility>

namespace core = relperf::core;
using core::Ordering;
using core::RankedSequence;
using core::SortStep;
using core::ThreeWaySorter;

namespace {

/// Deterministic comparator over a fixed outcome table;
/// compare(a, b) for a key (a, b); the reverse direction is derived.
class TableComparator {
public:
    void set(std::size_t a, std::size_t b, Ordering outcome) {
        table_[{a, b}] = outcome;
        table_[{b, a}] = core::reverse(outcome);
    }

    Ordering operator()(std::size_t a, std::size_t b) const {
        const auto it = table_.find({a, b});
        RELPERF_REQUIRE(it != table_.end(), "TableComparator: unexpected pair");
        return it->second;
    }

private:
    std::map<std::pair<std::size_t, std::size_t>, Ordering> table_;
};

/// Strict total order by value: lower value wins.
core::ThreeWayCompare value_order(std::vector<double> values) {
    return [values = std::move(values)](std::size_t a, std::size_t b) {
        if (values[a] < values[b]) return Ordering::Better;
        if (values[a] > values[b]) return Ordering::Worse;
        return Ordering::Equivalent;
    };
}

} // namespace

// ---------------------------------------------------------------------------
// The paper's Figure 2, replayed verbatim.
//
// Algorithms (by the figure's labels): DD=0, AA=1, DA=2, AD=3.
// True relations (from Figure 1b):
//   AD better than everything; AA better than DD/DA; DD ~ DA.
// Initial sequence: <DD, AA, DA, AD> with ranks <1,2,3,4>.
// Expected final:   <(AD,1), (AA,2), (DD,3), (DA,3)>.
// ---------------------------------------------------------------------------
TEST(ThreeWaySort, PaperFigure2TraceVerbatim) {
    constexpr std::size_t DD = 0, AA = 1, DA = 2, AD = 3;
    TableComparator cmp;
    cmp.set(AD, AA, Ordering::Better);
    cmp.set(AD, DD, Ordering::Better);
    cmp.set(AD, DA, Ordering::Better);
    cmp.set(AA, DD, Ordering::Better);
    cmp.set(AA, DA, Ordering::Better);
    cmp.set(DD, DA, Ordering::Equivalent);

    const ThreeWaySorter sorter(cmp);
    std::vector<SortStep> trace;
    const RankedSequence result =
        sorter.sort_traced(std::vector<std::size_t>{DD, AA, DA, AD}, trace);

    // Final sequence set (paper Sec. III):
    // <(alg_AD, 1), (alg_AA, 2), (alg_DD, 3), (alg_DA, 3)>.
    ASSERT_EQ(result.order.size(), 4u);
    EXPECT_EQ(result.order, (std::vector<std::size_t>{AD, AA, DD, DA}));
    EXPECT_EQ(result.ranks, (std::vector<int>{1, 2, 3, 3}));
    EXPECT_EQ(result.cluster_count(), 3);

    // Step 1: DD vs AA -> DD worse, swap. Sequence <AA,DD,DA,AD>, ranks 1..4.
    ASSERT_GE(trace.size(), 4u);
    EXPECT_EQ(trace[0].left_alg, DD);
    EXPECT_EQ(trace[0].right_alg, AA);
    EXPECT_EQ(trace[0].outcome, Ordering::Worse);
    EXPECT_TRUE(trace[0].swapped);
    EXPECT_EQ(trace[0].order_after, (std::vector<std::size_t>{AA, DD, DA, AD}));
    EXPECT_EQ(trace[0].ranks_after, (std::vector<int>{1, 2, 3, 4}));

    // Step 2: DD vs DA -> equivalent; ranks of successors decrease:
    // DD and DA now share rank 2, AD corrected to rank 3.
    EXPECT_EQ(trace[1].left_alg, DD);
    EXPECT_EQ(trace[1].right_alg, DA);
    EXPECT_EQ(trace[1].outcome, Ordering::Equivalent);
    EXPECT_FALSE(trace[1].swapped);
    EXPECT_EQ(trace[1].ranks_after, (std::vector<int>{1, 2, 2, 3}));

    // Step 3: DA vs AD -> DA worse, swap; AD now shares rank 2 with its
    // predecessor DD but not with its successor DA: DA's rank decreases so
    // that DD, AD, DA all share rank 2.
    EXPECT_EQ(trace[2].left_alg, DA);
    EXPECT_EQ(trace[2].right_alg, AD);
    EXPECT_EQ(trace[2].outcome, Ordering::Worse);
    EXPECT_TRUE(trace[2].swapped);
    EXPECT_EQ(trace[2].order_after, (std::vector<std::size_t>{AA, DD, AD, DA}));
    EXPECT_EQ(trace[2].ranks_after, (std::vector<int>{1, 2, 2, 2}));

    // Pass 2, step 4 in the paper's numbering: AA vs DD -> better, no change.
    EXPECT_EQ(trace[3].left_alg, AA);
    EXPECT_EQ(trace[3].right_alg, DD);
    EXPECT_EQ(trace[3].outcome, Ordering::Better);
    EXPECT_FALSE(trace[3].swapped);

    // Step 5 ("step 4 of the illustration"): DD vs AD, same rank -> swap;
    // AD defeated all of its class: successors pushed to rank 3.
    ASSERT_GE(trace.size(), 6u);
    EXPECT_EQ(trace[4].left_alg, DD);
    EXPECT_EQ(trace[4].right_alg, AD);
    EXPECT_EQ(trace[4].outcome, Ordering::Worse);
    EXPECT_TRUE(trace[4].swapped);
    EXPECT_EQ(trace[4].order_after, (std::vector<std::size_t>{AA, AD, DD, DA}));
    EXPECT_EQ(trace[4].ranks_after, (std::vector<int>{1, 2, 3, 3}));

    // Final pass: AA vs AD -> AA worse, swap at the head; no rank update.
    const SortStep& last = trace.back();
    EXPECT_EQ(last.left_alg, AA);
    EXPECT_EQ(last.right_alg, AD);
    EXPECT_EQ(last.outcome, Ordering::Worse);
    EXPECT_TRUE(last.swapped);
    EXPECT_EQ(last.order_after, (std::vector<std::size_t>{AD, AA, DD, DA}));
    EXPECT_EQ(last.ranks_after, (std::vector<int>{1, 2, 3, 3}));
}

TEST(ThreeWaySort, StrictTotalOrderSortsAndSeparatesAllRanks) {
    const ThreeWaySorter sorter(value_order({5.0, 1.0, 4.0, 2.0, 3.0}));
    const RankedSequence result = sorter.sort(5);
    EXPECT_EQ(result.order, (std::vector<std::size_t>{1, 3, 4, 2, 0}));
    EXPECT_EQ(result.ranks, (std::vector<int>{1, 2, 3, 4, 5}));
    EXPECT_EQ(result.cluster_count(), 5);
}

TEST(ThreeWaySort, AllEquivalentCollapsesToOneCluster) {
    const ThreeWaySorter sorter(
        [](std::size_t, std::size_t) { return Ordering::Equivalent; });
    const RankedSequence result = sorter.sort(6);
    EXPECT_EQ(result.cluster_count(), 1);
    for (const int r : result.ranks) EXPECT_EQ(r, 1);
}

TEST(ThreeWaySort, SingleAlgorithmIsRankOne) {
    const ThreeWaySorter sorter(
        [](std::size_t, std::size_t) { return Ordering::Better; });
    const RankedSequence result = sorter.sort(1);
    EXPECT_EQ(result.order, (std::vector<std::size_t>{0}));
    EXPECT_EQ(result.ranks, (std::vector<int>{1}));
}

TEST(ThreeWaySort, TwoTiersMergeWithinTiers) {
    // Values: {0,1} fast tier (~1.0), {2,3} slow tier (~2.0); equal values
    // are equivalent.
    const ThreeWaySorter sorter(value_order({1.0, 1.0, 2.0, 2.0}));
    const RankedSequence result = sorter.sort(std::vector<std::size_t>{2, 0, 3, 1});
    EXPECT_EQ(result.cluster_count(), 2);
    EXPECT_EQ(result.rank_of(0), 1);
    EXPECT_EQ(result.rank_of(1), 1);
    EXPECT_EQ(result.rank_of(2), 2);
    EXPECT_EQ(result.rank_of(3), 2);
}

TEST(ThreeWaySort, ResultIsIndependentOfInitialOrderForTotalOrder) {
    const std::vector<double> values = {3.0, 1.0, 2.0, 5.0, 4.0};
    const ThreeWaySorter sorter(value_order(values));
    relperf::stats::Rng rng(7);
    std::vector<std::size_t> order(values.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    const RankedSequence reference = sorter.sort(order);
    for (int trial = 0; trial < 20; ++trial) {
        rng.shuffle(order);
        const RankedSequence result = sorter.sort(order);
        EXPECT_EQ(result.order, reference.order);
        EXPECT_EQ(result.ranks, reference.ranks);
    }
}

// Property: the rank-label invariant holds after every step even under
// adversarial (random, inconsistent) comparators.
class SortInvariantProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SortInvariantProperty, RandomComparatorNeverBreaksInvariant) {
    relperf::stats::Rng rng(GetParam());
    const std::size_t p = 2 + static_cast<std::size_t>(rng.uniform_index(9));
    const ThreeWaySorter sorter([&rng](std::size_t, std::size_t) {
        const double u = rng.uniform();
        if (u < 1.0 / 3.0) return Ordering::Worse;
        if (u < 2.0 / 3.0) return Ordering::Equivalent;
        return Ordering::Better;
    });
    std::vector<SortStep> trace;
    std::vector<std::size_t> order(p);
    std::iota(order.begin(), order.end(), std::size_t{0});
    const RankedSequence result = sorter.sort_traced(order, trace);

    // check_rank_invariant ran inside; re-verify the final state plus that
    // order is still a permutation.
    core::check_rank_invariant(result.ranks);
    std::vector<std::size_t> sorted = result.order;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < p; ++i) EXPECT_EQ(sorted[i], i);
    // Every step's labels satisfied the invariant too.
    for (const SortStep& step : trace) {
        core::check_rank_invariant(step.ranks_after);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortInvariantProperty,
                         testing::Range<std::uint64_t>(0, 50));

TEST(ThreeWaySort, RankedSequenceAccessors) {
    const ThreeWaySorter sorter(value_order({2.0, 1.0}));
    const RankedSequence result = sorter.sort(2);
    EXPECT_EQ(result.position_of(1), 0u);
    EXPECT_EQ(result.position_of(0), 1u);
    EXPECT_EQ(result.rank_of(1), 1);
    EXPECT_EQ(result.rank_of(0), 2);
    EXPECT_EQ(result.cluster(1), (std::vector<std::size_t>{1}));
    EXPECT_EQ(result.cluster(2), (std::vector<std::size_t>{0}));
    EXPECT_TRUE(result.cluster(3).empty());
    EXPECT_THROW((void)result.rank_of(9), relperf::InvalidArgument);
}

TEST(ThreeWaySort, InvalidInputsThrow) {
    const ThreeWaySorter sorter(
        [](std::size_t, std::size_t) { return Ordering::Equivalent; });
    EXPECT_THROW((void)sorter.sort(0), relperf::InvalidArgument);
    EXPECT_THROW((void)sorter.sort(std::vector<std::size_t>{0, 0}),
                 relperf::InvalidArgument);
    EXPECT_THROW((void)sorter.sort(std::vector<std::size_t>{1, 2}),
                 relperf::InvalidArgument);
    EXPECT_THROW(ThreeWaySorter(core::ThreeWayCompare{}), relperf::InvalidArgument);
}

TEST(CheckRankInvariant, RejectsBadLabelVectors) {
    EXPECT_NO_THROW(core::check_rank_invariant({1, 1, 2, 3, 3}));
    EXPECT_THROW(core::check_rank_invariant({}), relperf::InternalError);
    EXPECT_THROW(core::check_rank_invariant({2, 3}), relperf::InternalError);
    EXPECT_THROW(core::check_rank_invariant({1, 3}), relperf::InternalError);
    EXPECT_THROW(core::check_rank_invariant({1, 2, 1}), relperf::InternalError);
}
