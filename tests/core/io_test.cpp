#include "core/io.hpp"

#include "core/report.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace core = relperf::core;

namespace {

/// Writes `content` to a fresh temp file and returns its path.
std::string write_temp(const std::string& name, const std::string& content) {
    const std::string path = testing::TempDir() + name;
    std::ofstream out(path, std::ios::binary);
    out << content;
    return path;
}

} // namespace

TEST(MeasurementsCsv, ParsesSimpleContent) {
    const std::string content =
        "algorithm,measurement_index,seconds\n"
        "algDD,0,1.5\n"
        "algDD,1,1.6\n"
        "algAD,0,0.9\n";
    const core::MeasurementSet set = core::parse_measurements_csv(content);
    ASSERT_EQ(set.size(), 2u);
    EXPECT_EQ(set.name(0), "algDD");
    EXPECT_EQ(set.name(1), "algAD");
    ASSERT_EQ(set.samples(0).size(), 2u);
    EXPECT_DOUBLE_EQ(set.samples(0)[0], 1.5);
    EXPECT_DOUBLE_EQ(set.samples(0)[1], 1.6);
    EXPECT_DOUBLE_EQ(set.samples(1)[0], 0.9);
}

TEST(MeasurementsCsv, RoundTripsThroughWriter) {
    core::MeasurementSet original;
    original.add("algDDA", {0.0406, 0.0411, 0.0399});
    original.add("algDDD", {0.0442, 0.0438});

    const std::string path = testing::TempDir() + "relperf_io_roundtrip.csv";
    core::write_measurements_csv(original, path);
    const core::MeasurementSet loaded = core::read_measurements_csv(path);
    std::remove(path.c_str());

    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded.name(i), original.name(i));
        ASSERT_EQ(loaded.samples(i).size(), original.samples(i).size());
        for (std::size_t k = 0; k < original.samples(i).size(); ++k) {
            EXPECT_DOUBLE_EQ(loaded.samples(i)[k], original.samples(i)[k]);
        }
    }
}

TEST(MeasurementsCsv, HandlesQuotedNames) {
    const std::string content =
        "algorithm,measurement_index,seconds\n"
        "\"alg,with,commas\",0,1.0\n"
        "\"say \"\"hi\"\"\",0,2.0\n";
    const core::MeasurementSet set = core::parse_measurements_csv(content);
    ASSERT_EQ(set.size(), 2u);
    EXPECT_EQ(set.name(0), "alg,with,commas");
    EXPECT_EQ(set.name(1), "say \"hi\"");
}

TEST(MeasurementsCsv, SkipsBlankLines) {
    const std::string content =
        "algorithm,measurement_index,seconds\n"
        "a,0,1.0\n"
        "\n"
        "a,1,2.0\n";
    const core::MeasurementSet set = core::parse_measurements_csv(content);
    EXPECT_EQ(set.samples(0).size(), 2u);
}

TEST(MeasurementsCsv, RejectsMalformedInput) {
    EXPECT_THROW((void)core::parse_measurements_csv(""), relperf::Error);
    EXPECT_THROW((void)core::parse_measurements_csv("wrong,header,here\n"),
                 relperf::Error);
    EXPECT_THROW((void)core::parse_measurements_csv(
                     "algorithm,measurement_index,seconds\nonly-two,fields\n"),
                 relperf::Error);
    EXPECT_THROW((void)core::parse_measurements_csv(
                     "algorithm,measurement_index,seconds\na,0,not-a-number\n"),
                 relperf::Error);
}

TEST(MeasurementsCsv, MissingFileThrows) {
    EXPECT_THROW((void)core::read_measurements_csv("/nonexistent/file.csv"),
                 relperf::Error);
}

TEST(MeasurementsCsv, ToleratesCrlfBomCommentsAndTrailingBlanks) {
    const std::string content =
        "\xEF\xBB\xBF# produced by a campaign shard\r\n"
        "algorithm,measurement_index,seconds\r\n"
        "algDD,0,1.5\r\n"
        "# mid-file comment\r\n"
        "algDD,1,1.6\r\n"
        "\r\n"
        "\r\n";
    const core::MeasurementSet set = core::parse_measurements_csv(content);
    ASSERT_EQ(set.size(), 1u);
    EXPECT_EQ(set.name(0), "algDD");
    ASSERT_EQ(set.samples(0).size(), 2u);
    EXPECT_DOUBLE_EQ(set.samples(0)[1], 1.6);
}

TEST(MeasurementsCsv, ErrorsNameTheSourceAndLineNumber) {
    const auto expect_message = [](const std::string& content,
                                   const std::string& fragment) {
        try {
            (void)core::parse_measurements_csv(content, "shard_3.csv");
            FAIL() << "expected an error for: " << content;
        } catch (const relperf::Error& e) {
            EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
                << "message was: " << e.what();
        }
    };
    expect_message("algorithm,measurement_index,seconds\na,0,bad\n",
                   "shard_3.csv:2: bad seconds value 'bad'");
    expect_message("algorithm,measurement_index,seconds\n# c\n\nx,1\n",
                   "shard_3.csv:4: row has 2 fields");
    expect_message("wrong,header\n", "shard_3.csv:1:");
    expect_message("algorithm,measurement_index,seconds\n,0,1.0\n",
                   "shard_3.csv:2: empty algorithm name");
}

TEST(MeasurementsCsv, FileAndStringEntryPointsShareOneParser) {
    // Both entry points stream through the same parser core; the awkward
    // cases (BOM, CRLF, comments, quoting, trailing blanks) must come out
    // identical whether parsed from a string or streamed from a file.
    const std::string content =
        "\xEF\xBB\xBF# produced by a campaign shard\r\n"
        "algorithm,measurement_index,seconds\r\n"
        "\"alg,comma\",0,1.5\r\n"
        "algDD,0,0.25\r\n"
        "# mid-file comment\r\n"
        "algDD,1,0.3125\r\n"
        "\r\n";
    const std::string path = write_temp("relperf_io_parity.csv", content);
    const core::MeasurementSet from_string =
        core::parse_measurements_csv(content, path);
    const core::MeasurementSet from_file = core::read_measurements_csv(path);
    std::remove(path.c_str());

    ASSERT_EQ(from_file.size(), from_string.size());
    for (std::size_t i = 0; i < from_string.size(); ++i) {
        EXPECT_EQ(from_file.name(i), from_string.name(i));
        ASSERT_EQ(from_file.samples(i).size(), from_string.samples(i).size());
        for (std::size_t k = 0; k < from_string.samples(i).size(); ++k) {
            EXPECT_EQ(from_file.samples(i)[k], from_string.samples(i)[k]);
        }
    }
}

TEST(MeasurementsCsv, FileAndStringEntryPointsAgreeOnErrors) {
    const std::string bad =
        "algorithm,measurement_index,seconds\n"
        "algDD,0,1.0\n"
        "algDD,1,not-a-number\n";
    const std::string path = write_temp("relperf_io_parity_bad.csv", bad);
    std::string string_error;
    std::string file_error;
    try {
        (void)core::parse_measurements_csv(bad, path);
    } catch (const relperf::Error& e) {
        string_error = e.what();
    }
    try {
        (void)core::read_measurements_csv(path);
    } catch (const relperf::Error& e) {
        file_error = e.what();
    }
    std::remove(path.c_str());
    ASSERT_FALSE(string_error.empty());
    EXPECT_EQ(file_error, string_error);
    EXPECT_NE(string_error.find(":3: bad seconds value"), std::string::npos)
        << string_error;
}

TEST(MeasurementsCsv, HeaderOnlyFilesAreAnError) {
    EXPECT_THROW((void)core::parse_measurements_csv(
                     "algorithm,measurement_index,seconds\n"),
                 relperf::Error);
}

TEST(MeasurementsCsv, WriterUsesRoundTripPrecision) {
    core::MeasurementSet original;
    original.add("alg", {1.0 / 3.0, 0.1, 1e-9 + 1e-17});
    const std::string path = testing::TempDir() + "relperf_io_exact.csv";
    core::write_measurements_csv(original, path);
    const core::MeasurementSet loaded = core::read_measurements_csv(path);
    std::remove(path.c_str());
    for (std::size_t k = 0; k < 3; ++k) {
        EXPECT_EQ(loaded.samples(0)[k], original.samples(0)[k]) << k;
    }
}

TEST(MeasurementsCsv, RejectsNonFiniteSecondsValues) {
    for (const char* bad : {"1e999", "-1e999", "inf", "nan"}) {
        const std::string content =
            std::string("algorithm,measurement_index,seconds\na,0,") + bad +
            "\n";
        EXPECT_THROW((void)core::parse_measurements_csv(content),
                     relperf::Error)
            << bad;
    }
}
