#include "core/io.hpp"

#include "core/report.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace core = relperf::core;

TEST(MeasurementsCsv, ParsesSimpleContent) {
    const std::string content =
        "algorithm,measurement_index,seconds\n"
        "algDD,0,1.5\n"
        "algDD,1,1.6\n"
        "algAD,0,0.9\n";
    const core::MeasurementSet set = core::parse_measurements_csv(content);
    ASSERT_EQ(set.size(), 2u);
    EXPECT_EQ(set.name(0), "algDD");
    EXPECT_EQ(set.name(1), "algAD");
    ASSERT_EQ(set.samples(0).size(), 2u);
    EXPECT_DOUBLE_EQ(set.samples(0)[0], 1.5);
    EXPECT_DOUBLE_EQ(set.samples(0)[1], 1.6);
    EXPECT_DOUBLE_EQ(set.samples(1)[0], 0.9);
}

TEST(MeasurementsCsv, RoundTripsThroughWriter) {
    core::MeasurementSet original;
    original.add("algDDA", {0.0406, 0.0411, 0.0399});
    original.add("algDDD", {0.0442, 0.0438});

    const std::string path = testing::TempDir() + "relperf_io_roundtrip.csv";
    core::write_measurements_csv(original, path);
    const core::MeasurementSet loaded = core::read_measurements_csv(path);
    std::remove(path.c_str());

    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded.name(i), original.name(i));
        ASSERT_EQ(loaded.samples(i).size(), original.samples(i).size());
        for (std::size_t k = 0; k < original.samples(i).size(); ++k) {
            EXPECT_DOUBLE_EQ(loaded.samples(i)[k], original.samples(i)[k]);
        }
    }
}

TEST(MeasurementsCsv, HandlesQuotedNames) {
    const std::string content =
        "algorithm,measurement_index,seconds\n"
        "\"alg,with,commas\",0,1.0\n"
        "\"say \"\"hi\"\"\",0,2.0\n";
    const core::MeasurementSet set = core::parse_measurements_csv(content);
    ASSERT_EQ(set.size(), 2u);
    EXPECT_EQ(set.name(0), "alg,with,commas");
    EXPECT_EQ(set.name(1), "say \"hi\"");
}

TEST(MeasurementsCsv, SkipsBlankLines) {
    const std::string content =
        "algorithm,measurement_index,seconds\n"
        "a,0,1.0\n"
        "\n"
        "a,1,2.0\n";
    const core::MeasurementSet set = core::parse_measurements_csv(content);
    EXPECT_EQ(set.samples(0).size(), 2u);
}

TEST(MeasurementsCsv, RejectsMalformedInput) {
    EXPECT_THROW((void)core::parse_measurements_csv(""), relperf::Error);
    EXPECT_THROW((void)core::parse_measurements_csv("wrong,header,here\n"),
                 relperf::Error);
    EXPECT_THROW((void)core::parse_measurements_csv(
                     "algorithm,measurement_index,seconds\nonly-two,fields\n"),
                 relperf::Error);
    EXPECT_THROW((void)core::parse_measurements_csv(
                     "algorithm,measurement_index,seconds\na,0,not-a-number\n"),
                 relperf::Error);
}

TEST(MeasurementsCsv, MissingFileThrows) {
    EXPECT_THROW((void)core::read_measurements_csv("/nonexistent/file.csv"),
                 relperf::Error);
}
