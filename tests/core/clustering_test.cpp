#include "core/clustering.hpp"

#include "support/error.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace core = relperf::core;
using core::Clustering;
using core::ClustererConfig;
using core::MeasurementSet;
using core::Ordering;
using core::RelativeClusterer;
using relperf::stats::Rng;

namespace {

/// Deterministic comparator: lower sample mean wins, relative tie band.
class MeanComparator final : public core::Comparator {
public:
    explicit MeanComparator(double tolerance = 0.02) : tolerance_(tolerance) {}

    Ordering compare(std::span<const double> a, std::span<const double> b,
                     Rng&) const override {
        const double ma = relperf::stats::mean(a);
        const double mb = relperf::stats::mean(b);
        if (std::fabs(ma - mb) <= tolerance_ * std::min(ma, mb)) {
            return Ordering::Equivalent;
        }
        return ma < mb ? Ordering::Better : Ordering::Worse;
    }

    std::string name() const override { return "mean-test"; }

private:
    double tolerance_;
};

/// Stochastic comparator for one designated borderline pair: returns
/// Equivalent with probability `flip_prob` for that pair, a deterministic
/// mean comparison otherwise. Reproduces the paper's "algAA vs algAD flips
/// once in every three comparisons" situation.
class FlipComparator final : public core::Comparator {
public:
    FlipComparator(std::span<const double> x, std::span<const double> y,
                   double flip_prob)
        : x_(x.begin(), x.end()), y_(y.begin(), y.end()), flip_prob_(flip_prob) {}

    Ordering compare(std::span<const double> a, std::span<const double> b,
                     Rng& rng) const override {
        if (is_pair(a, b) || is_pair(b, a)) {
            if (rng.bernoulli(flip_prob_)) return Ordering::Equivalent;
        }
        const double ma = relperf::stats::mean(a);
        const double mb = relperf::stats::mean(b);
        if (ma == mb) return Ordering::Equivalent;
        return ma < mb ? Ordering::Better : Ordering::Worse;
    }

    std::string name() const override { return "flip-test"; }

private:
    bool is_pair(std::span<const double> a, std::span<const double> b) const {
        return a.size() == x_.size() && std::equal(a.begin(), a.end(), x_.begin()) &&
               b.size() == y_.size() && std::equal(b.begin(), b.end(), y_.begin());
    }

    std::vector<double> x_;
    std::vector<double> y_;
    double flip_prob_;
};

MeasurementSet three_tier_set() {
    MeasurementSet set;
    set.add("fast", {1.00, 1.01, 0.99});
    set.add("fast2", {1.005, 1.0, 1.01});
    set.add("mid", {2.0, 2.02, 1.98});
    set.add("slow", {4.0, 4.04, 3.96});
    return set;
}

} // namespace

TEST(RelativeClusterer, DeterministicComparatorGivesUnitScores) {
    const MeanComparator cmp;
    const RelativeClusterer clusterer(cmp, ClustererConfig{50, 7});
    const Clustering result = clusterer.cluster(three_tier_set());

    ASSERT_EQ(result.cluster_count(), 3);
    EXPECT_DOUBLE_EQ(result.score_of(0, 1), 1.0); // fast
    EXPECT_DOUBLE_EQ(result.score_of(1, 1), 1.0); // fast2
    EXPECT_DOUBLE_EQ(result.score_of(2, 2), 1.0); // mid
    EXPECT_DOUBLE_EQ(result.score_of(3, 3), 1.0); // slow
    // No membership anywhere else.
    EXPECT_DOUBLE_EQ(result.score_of(2, 1), 0.0);
    EXPECT_DOUBLE_EQ(result.score_of(3, 2), 0.0);

    // Final assignment mirrors the unique ranks.
    EXPECT_EQ(result.final_rank(0), 1);
    EXPECT_EQ(result.final_rank(1), 1);
    EXPECT_EQ(result.final_rank(2), 2);
    EXPECT_EQ(result.final_rank(3), 3);
    for (const auto& fin : result.final_assignment) {
        EXPECT_DOUBLE_EQ(fin.score, 1.0);
    }
}

TEST(RelativeClusterer, ScoresPerAlgorithmSumToOne) {
    MeasurementSet set;
    set.add("a", {1.0, 1.1});
    set.add("b", {1.05, 1.12});
    set.add("c", {2.0, 2.1});
    const MeanComparator cmp(0.08);
    const RelativeClusterer clusterer(cmp, ClustererConfig{64, 3});
    const Clustering result = clusterer.cluster(set);

    for (std::size_t alg = 0; alg < set.size(); ++alg) {
        double total = 0.0;
        for (int r = 1; r <= result.cluster_count(); ++r) {
            total += result.score_of(alg, r);
        }
        EXPECT_NEAR(total, 1.0, 1e-12);
    }
}

TEST(RelativeClusterer, BorderlinePairSplitsAcrossClusters) {
    MeasurementSet set;
    set.add("algAD", {1.0, 1.0, 1.0});
    set.add("algAA", {1.2, 1.2, 1.2});
    set.add("algDD", {2.0, 2.0, 2.0});

    // AD vs AA equivalent ~1/3 of comparisons (paper Sec. III).
    const FlipComparator cmp(set.samples(0), set.samples(1), 1.0 / 3.0);
    const RelativeClusterer clusterer(cmp, ClustererConfig{300, 11});
    const Clustering result = clusterer.cluster(set);

    // algAD always rank 1.
    EXPECT_DOUBLE_EQ(result.score_of(0, 1), 1.0);
    // algAA splits between rank 1 (merged with AD) and rank 2.
    const double aa_r1 = result.score_of(1, 1);
    const double aa_r2 = result.score_of(1, 2);
    EXPECT_GT(aa_r1, 0.1);
    EXPECT_GT(aa_r2, 0.3);
    EXPECT_NEAR(aa_r1 + aa_r2, 1.0, 1e-12);
    // algDD lands in rank 2 or 3 depending on the AA merge.
    EXPECT_NEAR(result.score_of(2, 2) + result.score_of(2, 3), 1.0, 1e-12);
}

TEST(RelativeClusterer, FinalAssignmentCumulatesBetterRankScores) {
    // Reproduces the paper's algDA example numerically: when an algorithm
    // gets rank 2 in ~30% and rank 3 in ~60% and rank 4 in ~10% of the
    // repetitions, it is assigned rank 3 with cumulated score ~0.9.
    MeasurementSet set;
    set.add("w", {1.0, 1.0});
    set.add("x", {1.3, 1.3});
    set.add("y", {1.6, 1.6});
    set.add("algDA", {1.9, 1.9});

    // Make y vs algDA borderline with high flip rate.
    const FlipComparator cmp(set.samples(2), set.samples(3), 0.45);
    const RelativeClusterer clusterer(cmp, ClustererConfig{400, 23});
    const Clustering result = clusterer.cluster(set);

    const core::FinalAssignment fin = result.final_assignment[3];
    const double s3 = result.score_of(3, 3);
    const double s4 = result.score_of(3, 4);
    EXPECT_NEAR(s3 + s4, 1.0, 1e-12);
    // Max-score rank selected; cumulated score = sum over ranks <= final.
    double cumulated = 0.0;
    for (int r = 1; r <= fin.rank; ++r) cumulated += result.score_of(3, r);
    EXPECT_DOUBLE_EQ(fin.score, cumulated);
    if (s3 > s4) {
        EXPECT_EQ(fin.rank, 3);
    } else {
        EXPECT_EQ(fin.rank, 4);
    }
}

TEST(RelativeClusterer, IsSeedDeterministic) {
    const MeanComparator cmp;
    const RelativeClusterer c1(cmp, ClustererConfig{30, 99});
    const RelativeClusterer c2(cmp, ClustererConfig{30, 99});
    const MeasurementSet set = three_tier_set();
    const Clustering r1 = c1.cluster(set);
    const Clustering r2 = c2.cluster(set);
    ASSERT_EQ(r1.cluster_count(), r2.cluster_count());
    for (std::size_t alg = 0; alg < set.size(); ++alg) {
        for (int r = 1; r <= r1.cluster_count(); ++r) {
            EXPECT_DOUBLE_EQ(r1.score_of(alg, r), r2.score_of(alg, r));
        }
    }
}

TEST(RelativeClusterer, ClusterEntriesAreSortedByScore) {
    MeasurementSet set;
    set.add("a", {1.0, 1.0});
    set.add("b", {1.005, 1.005});
    set.add("c", {1.3, 1.3});
    const FlipComparator cmp(set.samples(0), set.samples(1), 0.5);
    const RelativeClusterer clusterer(cmp, ClustererConfig{200, 5});
    const Clustering result = clusterer.cluster(set);
    for (const auto& cluster : result.clusters) {
        for (std::size_t i = 1; i < cluster.size(); ++i) {
            EXPECT_GE(cluster[i - 1].score, cluster[i].score);
        }
    }
}

TEST(RelativeClusterer, SingleAlgorithmIsTrivialCluster) {
    MeasurementSet set;
    set.add("only", {1.0, 2.0});
    const MeanComparator cmp;
    const RelativeClusterer clusterer(cmp, ClustererConfig{10, 1});
    const Clustering result = clusterer.cluster(set);
    EXPECT_EQ(result.cluster_count(), 1);
    EXPECT_DOUBLE_EQ(result.score_of(0, 1), 1.0);
    EXPECT_EQ(result.final_rank(0), 1);
}

TEST(RelativeClusterer, InvalidInputsThrow) {
    const MeanComparator cmp;
    EXPECT_THROW(RelativeClusterer(cmp, ClustererConfig{0, 1}),
                 relperf::InvalidArgument);
    const RelativeClusterer clusterer(cmp, ClustererConfig{10, 1});
    EXPECT_THROW((void)clusterer.cluster(MeasurementSet{}), relperf::InvalidArgument);
}

TEST(Clustering, ScoreOfOutOfRangeRankIsZero) {
    const MeanComparator cmp;
    const RelativeClusterer clusterer(cmp, ClustererConfig{10, 1});
    const Clustering result = clusterer.cluster(three_tier_set());
    EXPECT_DOUBLE_EQ(result.score_of(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(result.score_of(0, 99), 0.0);
    EXPECT_THROW((void)result.final_rank(99), relperf::InvalidArgument);
}
