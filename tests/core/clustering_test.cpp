#include "core/clustering.hpp"

#include "core/bootstrap_comparator.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>

namespace core = relperf::core;
using core::Clustering;
using core::ClustererConfig;
using core::MeasurementSet;
using core::Ordering;
using core::RelativeClusterer;
using relperf::stats::Rng;

namespace {

/// Deterministic comparator: lower sample mean wins, relative tie band.
class MeanComparator final : public core::Comparator {
public:
    explicit MeanComparator(double tolerance = 0.02) : tolerance_(tolerance) {}

    Ordering compare(std::span<const double> a, std::span<const double> b,
                     Rng&) const override {
        const double ma = relperf::stats::mean(a);
        const double mb = relperf::stats::mean(b);
        if (std::fabs(ma - mb) <= tolerance_ * std::min(ma, mb)) {
            return Ordering::Equivalent;
        }
        return ma < mb ? Ordering::Better : Ordering::Worse;
    }

    std::string name() const override { return "mean-test"; }

private:
    double tolerance_;
};

/// Stochastic comparator for one designated borderline pair: returns
/// Equivalent with probability `flip_prob` for that pair, a deterministic
/// mean comparison otherwise. Reproduces the paper's "algAA vs algAD flips
/// once in every three comparisons" situation.
class FlipComparator final : public core::Comparator {
public:
    FlipComparator(std::span<const double> x, std::span<const double> y,
                   double flip_prob)
        : x_(x.begin(), x.end()), y_(y.begin(), y.end()), flip_prob_(flip_prob) {}

    Ordering compare(std::span<const double> a, std::span<const double> b,
                     Rng& rng) const override {
        if (is_pair(a, b) || is_pair(b, a)) {
            if (rng.bernoulli(flip_prob_)) return Ordering::Equivalent;
        }
        const double ma = relperf::stats::mean(a);
        const double mb = relperf::stats::mean(b);
        if (ma == mb) return Ordering::Equivalent;
        return ma < mb ? Ordering::Better : Ordering::Worse;
    }

    std::string name() const override { return "flip-test"; }

private:
    bool is_pair(std::span<const double> a, std::span<const double> b) const {
        return a.size() == x_.size() && std::equal(a.begin(), a.end(), x_.begin()) &&
               b.size() == y_.size() && std::equal(b.begin(), b.end(), y_.begin());
    }

    std::vector<double> x_;
    std::vector<double> y_;
    double flip_prob_;
};

/// p algorithms with overlapping noisy distributions — enough class overlap
/// that the bootstrap comparator's stochastic outcomes split scores across
/// several ranks.
MeasurementSet overlapping_set(std::size_t p, std::uint64_t seed) {
    Rng rng(seed);
    MeasurementSet set;
    for (std::size_t i = 0; i < p; ++i) {
        const double base = 1.0 + 0.25 * static_cast<double>(i % 7);
        std::vector<double> samples;
        samples.reserve(5);
        for (int k = 0; k < 5; ++k) {
            samples.push_back(base * (1.0 + 0.05 * rng.uniform(-1.0, 1.0)));
        }
        set.add("alg" + std::to_string(i), std::move(samples));
    }
    return set;
}

/// Exact structural equality — every score compared with operator== (the
/// sparse path's bit-identity claim, not a tolerance check).
void expect_identical(const Clustering& a, const Clustering& b) {
    ASSERT_EQ(a.repetitions, b.repetitions);
    ASSERT_EQ(a.cluster_count(), b.cluster_count());
    for (std::size_t r = 0; r < a.clusters.size(); ++r) {
        ASSERT_EQ(a.clusters[r].size(), b.clusters[r].size());
        for (std::size_t i = 0; i < a.clusters[r].size(); ++i) {
            EXPECT_EQ(a.clusters[r][i].alg, b.clusters[r][i].alg);
            EXPECT_EQ(a.clusters[r][i].score, b.clusters[r][i].score);
        }
    }
    ASSERT_EQ(a.memberships.size(), b.memberships.size());
    for (std::size_t alg = 0; alg < a.memberships.size(); ++alg) {
        ASSERT_EQ(a.memberships[alg].size(), b.memberships[alg].size());
        for (std::size_t i = 0; i < a.memberships[alg].size(); ++i) {
            EXPECT_EQ(a.memberships[alg][i].rank, b.memberships[alg][i].rank);
            EXPECT_EQ(a.memberships[alg][i].score, b.memberships[alg][i].score);
        }
    }
    ASSERT_EQ(a.final_assignment.size(), b.final_assignment.size());
    for (std::size_t alg = 0; alg < a.final_assignment.size(); ++alg) {
        EXPECT_EQ(a.final_assignment[alg].alg, b.final_assignment[alg].alg);
        EXPECT_EQ(a.final_assignment[alg].rank, b.final_assignment[alg].rank);
        EXPECT_EQ(a.final_assignment[alg].score, b.final_assignment[alg].score);
    }
}

MeasurementSet three_tier_set() {
    MeasurementSet set;
    set.add("fast", {1.00, 1.01, 0.99});
    set.add("fast2", {1.005, 1.0, 1.01});
    set.add("mid", {2.0, 2.02, 1.98});
    set.add("slow", {4.0, 4.04, 3.96});
    return set;
}

} // namespace

TEST(RelativeClusterer, DeterministicComparatorGivesUnitScores) {
    const MeanComparator cmp;
    const RelativeClusterer clusterer(cmp, ClustererConfig{50, 7});
    const Clustering result = clusterer.cluster(three_tier_set());

    ASSERT_EQ(result.cluster_count(), 3);
    EXPECT_DOUBLE_EQ(result.score_of(0, 1), 1.0); // fast
    EXPECT_DOUBLE_EQ(result.score_of(1, 1), 1.0); // fast2
    EXPECT_DOUBLE_EQ(result.score_of(2, 2), 1.0); // mid
    EXPECT_DOUBLE_EQ(result.score_of(3, 3), 1.0); // slow
    // No membership anywhere else.
    EXPECT_DOUBLE_EQ(result.score_of(2, 1), 0.0);
    EXPECT_DOUBLE_EQ(result.score_of(3, 2), 0.0);

    // Final assignment mirrors the unique ranks.
    EXPECT_EQ(result.final_rank(0), 1);
    EXPECT_EQ(result.final_rank(1), 1);
    EXPECT_EQ(result.final_rank(2), 2);
    EXPECT_EQ(result.final_rank(3), 3);
    for (const auto& fin : result.final_assignment) {
        EXPECT_DOUBLE_EQ(fin.score, 1.0);
    }
}

TEST(RelativeClusterer, ScoresPerAlgorithmSumToOne) {
    MeasurementSet set;
    set.add("a", {1.0, 1.1});
    set.add("b", {1.05, 1.12});
    set.add("c", {2.0, 2.1});
    const MeanComparator cmp(0.08);
    const RelativeClusterer clusterer(cmp, ClustererConfig{64, 3});
    const Clustering result = clusterer.cluster(set);

    for (std::size_t alg = 0; alg < set.size(); ++alg) {
        double total = 0.0;
        for (int r = 1; r <= result.cluster_count(); ++r) {
            total += result.score_of(alg, r);
        }
        EXPECT_NEAR(total, 1.0, 1e-12);
    }
}

TEST(RelativeClusterer, BorderlinePairSplitsAcrossClusters) {
    MeasurementSet set;
    set.add("algAD", {1.0, 1.0, 1.0});
    set.add("algAA", {1.2, 1.2, 1.2});
    set.add("algDD", {2.0, 2.0, 2.0});

    // AD vs AA equivalent ~1/3 of comparisons (paper Sec. III).
    const FlipComparator cmp(set.samples(0), set.samples(1), 1.0 / 3.0);
    const RelativeClusterer clusterer(cmp, ClustererConfig{300, 11});
    const Clustering result = clusterer.cluster(set);

    // algAD always rank 1.
    EXPECT_DOUBLE_EQ(result.score_of(0, 1), 1.0);
    // algAA splits between rank 1 (merged with AD) and rank 2.
    const double aa_r1 = result.score_of(1, 1);
    const double aa_r2 = result.score_of(1, 2);
    EXPECT_GT(aa_r1, 0.1);
    EXPECT_GT(aa_r2, 0.3);
    EXPECT_NEAR(aa_r1 + aa_r2, 1.0, 1e-12);
    // algDD lands in rank 2 or 3 depending on the AA merge.
    EXPECT_NEAR(result.score_of(2, 2) + result.score_of(2, 3), 1.0, 1e-12);
}

TEST(RelativeClusterer, FinalAssignmentCumulatesBetterRankScores) {
    // Reproduces the paper's algDA example numerically: when an algorithm
    // gets rank 2 in ~30% and rank 3 in ~60% and rank 4 in ~10% of the
    // repetitions, it is assigned rank 3 with cumulated score ~0.9.
    MeasurementSet set;
    set.add("w", {1.0, 1.0});
    set.add("x", {1.3, 1.3});
    set.add("y", {1.6, 1.6});
    set.add("algDA", {1.9, 1.9});

    // Make y vs algDA borderline with high flip rate.
    const FlipComparator cmp(set.samples(2), set.samples(3), 0.45);
    const RelativeClusterer clusterer(cmp, ClustererConfig{400, 23});
    const Clustering result = clusterer.cluster(set);

    const core::FinalAssignment fin = result.final_assignment[3];
    const double s3 = result.score_of(3, 3);
    const double s4 = result.score_of(3, 4);
    EXPECT_NEAR(s3 + s4, 1.0, 1e-12);
    // Max-score rank selected; cumulated score = sum over ranks <= final.
    double cumulated = 0.0;
    for (int r = 1; r <= fin.rank; ++r) cumulated += result.score_of(3, r);
    EXPECT_DOUBLE_EQ(fin.score, cumulated);
    if (s3 > s4) {
        EXPECT_EQ(fin.rank, 3);
    } else {
        EXPECT_EQ(fin.rank, 4);
    }
}

TEST(RelativeClusterer, IsSeedDeterministic) {
    const MeanComparator cmp;
    const RelativeClusterer c1(cmp, ClustererConfig{30, 99});
    const RelativeClusterer c2(cmp, ClustererConfig{30, 99});
    const MeasurementSet set = three_tier_set();
    const Clustering r1 = c1.cluster(set);
    const Clustering r2 = c2.cluster(set);
    ASSERT_EQ(r1.cluster_count(), r2.cluster_count());
    for (std::size_t alg = 0; alg < set.size(); ++alg) {
        for (int r = 1; r <= r1.cluster_count(); ++r) {
            EXPECT_DOUBLE_EQ(r1.score_of(alg, r), r2.score_of(alg, r));
        }
    }
}

TEST(RelativeClusterer, ClusterEntriesAreSortedByScore) {
    MeasurementSet set;
    set.add("a", {1.0, 1.0});
    set.add("b", {1.005, 1.005});
    set.add("c", {1.3, 1.3});
    const FlipComparator cmp(set.samples(0), set.samples(1), 0.5);
    const RelativeClusterer clusterer(cmp, ClustererConfig{200, 5});
    const Clustering result = clusterer.cluster(set);
    for (const auto& cluster : result.clusters) {
        for (std::size_t i = 1; i < cluster.size(); ++i) {
            EXPECT_GE(cluster[i - 1].score, cluster[i].score);
        }
    }
}

TEST(RelativeClusterer, SingleAlgorithmIsTrivialCluster) {
    MeasurementSet set;
    set.add("only", {1.0, 2.0});
    const MeanComparator cmp;
    const RelativeClusterer clusterer(cmp, ClustererConfig{10, 1});
    const Clustering result = clusterer.cluster(set);
    EXPECT_EQ(result.cluster_count(), 1);
    EXPECT_DOUBLE_EQ(result.score_of(0, 1), 1.0);
    EXPECT_EQ(result.final_rank(0), 1);
}

TEST(RelativeClusterer, InvalidInputsThrow) {
    const MeanComparator cmp;
    EXPECT_THROW(RelativeClusterer(cmp, ClustererConfig{0, 1}),
                 relperf::InvalidArgument);
    const RelativeClusterer clusterer(cmp, ClustererConfig{10, 1});
    EXPECT_THROW((void)clusterer.cluster(MeasurementSet{}), relperf::InvalidArgument);
}

TEST(Clustering, ScoreOfOutOfRangeRankIsZero) {
    const MeanComparator cmp;
    const RelativeClusterer clusterer(cmp, ClustererConfig{10, 1});
    const Clustering result = clusterer.cluster(three_tier_set());
    EXPECT_DOUBLE_EQ(result.score_of(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(result.score_of(0, 99), 0.0);
    EXPECT_THROW((void)result.final_rank(99), relperf::InvalidArgument);
}

TEST(Clustering, ScoreOfOutOfRangeAlgorithmThrows) {
    // Regression: an out-of-range algorithm used to read past the cluster
    // rows silently; it must throw like final_rank does.
    const MeanComparator cmp;
    const RelativeClusterer clusterer(cmp, ClustererConfig{10, 1});
    const Clustering result = clusterer.cluster(three_tier_set());
    EXPECT_THROW((void)result.score_of(99, 1), relperf::InvalidArgument);
    EXPECT_THROW((void)result.score_of(result.final_assignment.size(), 1),
                 relperf::InvalidArgument);
}

TEST(Clustering, ScoreOfIndexMatchesClusterScanFallback) {
    const core::BootstrapComparator cmp(
        core::BootstrapComparatorConfig{.rounds = 25});
    const RelativeClusterer clusterer(cmp, ClustererConfig{25, 17});
    const Clustering indexed = clusterer.cluster(overlapping_set(9, 3));
    ASSERT_FALSE(indexed.memberships.empty());
    Clustering scan = indexed;
    scan.memberships.clear(); // hand-built Clustering shape
    for (std::size_t alg = 0; alg < indexed.final_assignment.size(); ++alg) {
        for (int r = 0; r <= indexed.cluster_count() + 1; ++r) {
            EXPECT_EQ(indexed.score_of(alg, r), scan.score_of(alg, r));
        }
    }
}

TEST(RelativeClusterer, SparseMatchesDenseOracleBitForBit) {
    // The tentpole claim: the sparse per-algorithm rank tallies produce the
    // exact Clustering of the dense p x p counts matrix, across trivial,
    // minimal, stochastic and wide inputs.
    for (const std::size_t p : {std::size_t{1}, std::size_t{2}, std::size_t{17},
                                std::size_t{256}}) {
        SCOPED_TRACE("p = " + std::to_string(p));
        const MeasurementSet set = overlapping_set(p, 11 + p);
        const core::BootstrapComparator cmp(
            core::BootstrapComparatorConfig{.rounds = 20});
        const std::size_t reps = p >= 256 ? 4 : 25;
        const RelativeClusterer clusterer(cmp, ClustererConfig{reps, 42});
        expect_identical(clusterer.cluster(set), clusterer.cluster_dense(set));
    }
}

TEST(RelativeClusterer, ContextReuseIsBitIdentical) {
    // Round 2+ reuses the prepared shuffle orders and comparator streams; with
    // nothing frozen the result must equal the context-free overload exactly.
    const MeasurementSet set = overlapping_set(17, 3);
    const core::BootstrapComparator cmp(
        core::BootstrapComparatorConfig{.rounds = 25});
    const RelativeClusterer clusterer(cmp, ClustererConfig{25, 7});
    const Clustering plain = clusterer.cluster(set);
    core::ClusterContext ctx;
    expect_identical(plain, clusterer.cluster(set, ctx));
    expect_identical(plain, clusterer.cluster(set, ctx));
    EXPECT_EQ(ctx.reused_total(), 0u);
}

TEST(RelativeClusterer, FrozenPairReplayIsCountedAndKeepsFinalRanks) {
    // Once a pair is frozen, its first outcome per repetition is cached and
    // every later comparison of the pair replays it — including the later
    // bubble passes of the same round, so even the first frozen round
    // reports reuse. Replay shifts the comparator streams (the engine
    // re-clusters cleanly before publishing for exactly that reason), but on
    // this fixed seed the final class membership must not move.
    const MeasurementSet set = overlapping_set(8, 5);
    const core::BootstrapComparator cmp(
        core::BootstrapComparatorConfig{.rounds = 25});
    const RelativeClusterer clusterer(cmp, ClustererConfig{25, 9});
    const Clustering plain = clusterer.cluster(set);

    core::ClusterContext ctx;
    expect_identical(plain, clusterer.cluster(set, ctx));
    EXPECT_EQ(ctx.reused_total(), 0u); // nothing frozen yet

    for (std::size_t alg = 0; alg < set.size(); ++alg) ctx.freeze(alg);
    const Clustering frozen_first = clusterer.cluster(set, ctx);
    EXPECT_GT(ctx.reused_last_round(), 0u);
    const std::size_t after_first = ctx.reused_total();
    EXPECT_EQ(after_first, ctx.reused_last_round());

    // The next round replays across rounds too — strictly more reuse.
    const Clustering frozen_second = clusterer.cluster(set, ctx);
    EXPECT_GT(ctx.reused_last_round(), after_first);
    EXPECT_EQ(ctx.reused_total(), after_first + ctx.reused_last_round());

    for (std::size_t alg = 0; alg < set.size(); ++alg) {
        EXPECT_EQ(frozen_first.final_rank(alg), plain.final_rank(alg));
        EXPECT_EQ(frozen_second.final_rank(alg), plain.final_rank(alg));
    }
}
