#include "core/cluster_diff.hpp"

#include "support/error.hpp"

#include <gtest/gtest.h>

namespace core = relperf::core;

namespace {

const char* kGolden =
    "cluster,algorithm,relative_score,final_cluster,final_score\n"
    "1,algDDD,0.9,1,0.9\n"
    "1,algDDA,0.6,2,0.9\n" // appears in C1 with low score, final C2
    "2,algDDA,0.3,2,0.9\n"
    "2,algDAD,0.8,2,0.8\n"
    "3,algAAA,1,3,1\n";

} // namespace

TEST(FinalClusters, ParsesMembershipFromClusteringCsv) {
    const core::FinalClusters parsed =
        core::parse_final_clusters_csv(kGolden, "golden");
    ASSERT_EQ(parsed.algorithms.size(), 4u);
    EXPECT_EQ(parsed.rank_of("algDDD"), 1);
    EXPECT_EQ(parsed.rank_of("algDDA"), 2);
    EXPECT_EQ(parsed.rank_of("algDAD"), 2);
    EXPECT_EQ(parsed.rank_of("algAAA"), 3);
    EXPECT_EQ(parsed.rank_of("algXXX"), 0);
}

TEST(FinalClusters, QuotedVariantNamesRoundTrip) {
    const core::FinalClusters parsed = core::parse_final_clusters_csv(
        "cluster,algorithm,relative_score,final_cluster,final_score\n"
        "1,\"algD:portable,A:blas\",1,1,1\n"
        "2,\"algD:blas,A:blas\",1,2,1\n",
        "quoted");
    EXPECT_EQ(parsed.rank_of("algD:portable,A:blas"), 1);
    EXPECT_EQ(parsed.rank_of("algD:blas,A:blas"), 2);
}

TEST(FinalClusters, MalformedContentThrows) {
    EXPECT_THROW((void)core::parse_final_clusters_csv("", "empty"),
                 relperf::Error);
    EXPECT_THROW((void)core::parse_final_clusters_csv("a,b,c\n1,2,3\n", "bad"),
                 relperf::Error);
    // Conflicting final clusters for one algorithm.
    EXPECT_THROW((void)core::parse_final_clusters_csv(
                     "cluster,algorithm,relative_score,final_cluster,"
                     "final_score\n"
                     "1,algDDD,0.5,1,0.5\n"
                     "2,algDDD,0.5,2,0.5\n",
                     "conflict"),
                 relperf::Error);
    // Zero rank.
    EXPECT_THROW((void)core::parse_final_clusters_csv(
                     "cluster,algorithm,relative_score,final_cluster,"
                     "final_score\n"
                     "1,algDDD,0.5,0,0.5\n",
                     "zero"),
                 relperf::Error);
    EXPECT_THROW((void)core::read_final_clusters_csv("/nonexistent/x.csv"),
                 relperf::Error);
}

TEST(ClusterDiff, IdenticalClusteringsDiffEmpty) {
    const core::FinalClusters a = core::parse_final_clusters_csv(kGolden);
    const core::ClusterDiff diff = core::diff_clusterings(a, a);
    EXPECT_TRUE(diff.identical());
    EXPECT_NE(core::render_cluster_diff(diff).find("identical"),
              std::string::npos);
}

TEST(ClusterDiff, DetectsMovesSplitsAndMerges) {
    const core::FinalClusters old_clusters =
        core::parse_final_clusters_csv(kGolden);
    // algDAD moves C2 -> C3: C2 splits into {C2, C3}; C3 merges {C2, C3}.
    core::FinalClusters new_clusters = old_clusters;
    for (std::size_t i = 0; i < new_clusters.algorithms.size(); ++i) {
        if (new_clusters.algorithms[i] == "algDAD") {
            new_clusters.final_rank[i] = 3;
        }
    }
    const core::ClusterDiff diff =
        core::diff_clusterings(old_clusters, new_clusters);
    EXPECT_FALSE(diff.identical());
    ASSERT_EQ(diff.moved.size(), 1u);
    EXPECT_EQ(diff.moved[0].algorithm, "algDAD");
    EXPECT_EQ(diff.moved[0].old_rank, 2);
    EXPECT_EQ(diff.moved[0].new_rank, 3);
    ASSERT_EQ(diff.splits.size(), 1u);
    EXPECT_EQ(diff.splits[0].rank, 2);
    EXPECT_EQ(diff.splits[0].ranks, (std::vector<int>{2, 3}));
    ASSERT_EQ(diff.merges.size(), 1u);
    EXPECT_EQ(diff.merges[0].rank, 3);
    EXPECT_EQ(diff.merges[0].ranks, (std::vector<int>{2, 3}));

    const std::string report = core::render_cluster_diff(diff);
    EXPECT_NE(report.find("moved: algDAD C2 -> C3"), std::string::npos);
    EXPECT_NE(report.find("split: old C2"), std::string::npos);
    EXPECT_NE(report.find("merged: new C3"), std::string::npos);
}

TEST(ClusterDiff, DetectsMembershipChanges) {
    const core::FinalClusters old_clusters =
        core::parse_final_clusters_csv(kGolden);
    core::FinalClusters new_clusters = old_clusters;
    new_clusters.algorithms.push_back("algADA");
    new_clusters.final_rank.push_back(2);
    // Drop algAAA.
    new_clusters.algorithms.erase(new_clusters.algorithms.begin() + 3);
    new_clusters.final_rank.erase(new_clusters.final_rank.begin() + 3);

    const core::ClusterDiff diff =
        core::diff_clusterings(old_clusters, new_clusters);
    EXPECT_FALSE(diff.identical());
    ASSERT_EQ(diff.only_in_old.size(), 1u);
    EXPECT_EQ(diff.only_in_old[0], "algAAA");
    ASSERT_EQ(diff.only_in_new.size(), 1u);
    EXPECT_EQ(diff.only_in_new[0], "algADA");
    EXPECT_TRUE(diff.moved.empty());
}

TEST(ClusterDiff, RankRenumberingCountsAsMovement) {
    // The paper's ranks are semantic (1 = fastest): shifting every algorithm
    // down one class is a real change even though co-membership held.
    const core::FinalClusters old_clusters =
        core::parse_final_clusters_csv(kGolden);
    core::FinalClusters new_clusters = old_clusters;
    for (int& rank : new_clusters.final_rank) ++rank;
    const core::ClusterDiff diff =
        core::diff_clusterings(old_clusters, new_clusters);
    EXPECT_FALSE(diff.identical());
    EXPECT_EQ(diff.moved.size(), old_clusters.algorithms.size());
}
