#include "core/measurement.hpp"

#include "support/error.hpp"

#include <gtest/gtest.h>

using relperf::core::MeasurementSet;

TEST(MeasurementSet, AddAndLookup) {
    MeasurementSet set;
    EXPECT_TRUE(set.empty());
    const std::size_t a = set.add("algDD", {1.0, 2.0, 3.0});
    const std::size_t b = set.add("algAD", {0.5, 0.6});
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(set.size(), 2u);
    EXPECT_EQ(set.name(0), "algDD");
    EXPECT_EQ(set.index_of("algAD"), 1u);
    EXPECT_TRUE(set.contains("algDD"));
    EXPECT_FALSE(set.contains("algXX"));
    EXPECT_EQ(set.samples(1).size(), 2u);
    EXPECT_EQ(set.names(), (std::vector<std::string>{"algDD", "algAD"}));
}

TEST(MeasurementSet, SummaryDelegatesToStats) {
    MeasurementSet set;
    set.add("a", {1.0, 2.0, 3.0});
    const auto s = set.summary(0);
    EXPECT_EQ(s.count, 3u);
    EXPECT_DOUBLE_EQ(s.mean, 2.0);
    EXPECT_DOUBLE_EQ(s.median, 2.0);
}

TEST(MeasurementSet, InvalidInputsThrow) {
    MeasurementSet set;
    EXPECT_THROW(set.add("", {1.0}), relperf::InvalidArgument);
    EXPECT_THROW(set.add("a", {}), relperf::InvalidArgument);
    EXPECT_THROW(set.add("a", {-1.0}), relperf::InvalidArgument);
    set.add("a", {1.0});
    EXPECT_THROW(set.add("a", {2.0}), relperf::InvalidArgument);
    EXPECT_THROW((void)set.at(5), relperf::InvalidArgument);
    EXPECT_THROW((void)set.index_of("missing"), relperf::InvalidArgument);
}
