#include "core/measurement.hpp"

#include "support/error.hpp"

#include <gtest/gtest.h>

using relperf::core::MeasurementSet;

TEST(MeasurementSet, AddAndLookup) {
    MeasurementSet set;
    EXPECT_TRUE(set.empty());
    const std::size_t a = set.add("algDD", {1.0, 2.0, 3.0});
    const std::size_t b = set.add("algAD", {0.5, 0.6});
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(set.size(), 2u);
    EXPECT_EQ(set.name(0), "algDD");
    EXPECT_EQ(set.index_of("algAD"), 1u);
    EXPECT_TRUE(set.contains("algDD"));
    EXPECT_FALSE(set.contains("algXX"));
    EXPECT_EQ(set.samples(1).size(), 2u);
    EXPECT_EQ(set.names(), (std::vector<std::string>{"algDD", "algAD"}));
}

TEST(MeasurementSet, SummaryDelegatesToStats) {
    MeasurementSet set;
    set.add("a", {1.0, 2.0, 3.0});
    const auto s = set.summary(0);
    EXPECT_EQ(s.count, 3u);
    EXPECT_DOUBLE_EQ(s.mean, 2.0);
    EXPECT_DOUBLE_EQ(s.median, 2.0);
}

TEST(MeasurementSet, ExtendAppendsSamples) {
    MeasurementSet set;
    set.add("a", {1.0, 2.0});
    set.add("b", {5.0});
    const std::vector<double> more = {3.0, 4.0};
    set.extend(0, more);
    EXPECT_EQ(std::vector<double>(set.samples(0).begin(), set.samples(0).end()),
              (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
    EXPECT_EQ(set.samples(1).size(), 1u); // the other algorithm is untouched
    EXPECT_EQ(set.total_samples(), 5u);
    // Lookups stay correct after extension.
    EXPECT_EQ(set.index_of("a"), 0u);
    EXPECT_EQ(set.index_of("b"), 1u);
}

TEST(MeasurementSet, ReserveSamplesPreventsReallocationAcrossExtends) {
    // Callers that know the final budget (the adaptive cap, a cache
    // extension's target N) reserve once up front; every extend up to that
    // capacity must then append in place. The data pointer doubles as the
    // reallocation canary.
    MeasurementSet set;
    set.add("a", {1.0, 2.0});
    set.add("b", {9.0});
    set.reserve_samples(0, 64);
    const double* const data = set.samples(0).data();
    std::vector<double> batch(6, 0.5);
    while (set.samples(0).size() + batch.size() <= 64) {
        set.extend(0, batch);
        EXPECT_EQ(set.samples(0).data(), data)
            << "reallocated at " << set.samples(0).size() << " samples";
    }
    EXPECT_GT(set.samples(0).size(), 56u);
    // Values are untouched by the reservation and the extends.
    EXPECT_EQ(set.samples(0)[0], 1.0);
    EXPECT_EQ(set.samples(0)[1], 2.0);
    EXPECT_EQ(set.samples(0)[2], 0.5);
    EXPECT_EQ(set.samples(1).size(), 1u);
    // Out-of-range reservations validate like extend.
    EXPECT_THROW(set.reserve_samples(5, 8), relperf::InvalidArgument);
}

TEST(MeasurementSet, ExtendValidatesLikeAdd) {
    MeasurementSet set;
    set.add("a", {1.0});
    EXPECT_THROW(set.extend(1, std::vector<double>{1.0}),
                 relperf::InvalidArgument);
    EXPECT_THROW(set.extend(0, std::vector<double>{}),
                 relperf::InvalidArgument);
    EXPECT_THROW(set.extend(0, std::vector<double>{-1.0}),
                 relperf::InvalidArgument);
    EXPECT_EQ(set.samples(0).size(), 1u); // failed extends change nothing
}

TEST(MeasurementSet, LookupsAreMapBackedAtScale) {
    // index_of/contains sit inside the merge path, called once per algorithm
    // over campaigns of up to 65536 algorithms — a linear scan there is
    // O(n^2). This stays comfortably fast with the name -> index map (and
    // functions as a regression canary if someone reverts to scanning).
    MeasurementSet set;
    constexpr std::size_t kCount = 4096;
    for (std::size_t i = 0; i < kCount; ++i) {
        set.add("alg" + std::to_string(i), {1.0});
    }
    for (std::size_t i = 0; i < kCount; ++i) {
        const std::string name = "alg" + std::to_string(i);
        ASSERT_TRUE(set.contains(name));
        ASSERT_EQ(set.index_of(name), i);
    }
    EXPECT_FALSE(set.contains("alg" + std::to_string(kCount)));
}

TEST(MeasurementSet, InvalidInputsThrow) {
    MeasurementSet set;
    EXPECT_THROW(set.add("", {1.0}), relperf::InvalidArgument);
    EXPECT_THROW(set.add("a", {}), relperf::InvalidArgument);
    EXPECT_THROW(set.add("a", {-1.0}), relperf::InvalidArgument);
    set.add("a", {1.0});
    EXPECT_THROW(set.add("a", {2.0}), relperf::InvalidArgument);
    EXPECT_THROW((void)set.at(5), relperf::InvalidArgument);
    EXPECT_THROW((void)set.index_of("missing"), relperf::InvalidArgument);
}
