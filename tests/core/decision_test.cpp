#include "core/decision.hpp"

#include "core/pipeline.hpp"
#include "sim/profile.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

namespace core = relperf::core;
namespace sim = relperf::sim;
namespace workloads = relperf::workloads;
using relperf::stats::Rng;

namespace {

struct Fixture {
    workloads::TaskChain chain = workloads::paper_rls_chain(10);
    sim::CalibratedProfile profile = sim::paper_rls_profile();
    sim::SimulatedExecutor executor{profile, sim::NoiseModel{}};
    std::vector<workloads::DeviceAssignment> assignments =
        workloads::enumerate_assignments(3);
    core::AnalysisResult analysis = [this] {
        core::AnalysisConfig config;
        config.measurements_per_alg = 30;
        config.clustering.repetitions = 60;
        return core::analyze_chain(executor, chain, assignments, config);
    }();
    std::vector<core::CandidateProfile> candidates = core::build_candidate_profiles(
        analysis.measurements, analysis.clustering, executor, chain, assignments);
};

} // namespace

TEST(BuildCandidateProfiles, FieldsAreConsistent) {
    Fixture f;
    ASSERT_EQ(f.candidates.size(), 8u);
    for (std::size_t i = 0; i < f.candidates.size(); ++i) {
        const core::CandidateProfile& c = f.candidates[i];
        EXPECT_EQ(c.alg, i);
        EXPECT_EQ(c.name, f.analysis.measurements.name(i));
        EXPECT_GE(c.final_rank, 1);
        EXPECT_GT(c.mean_seconds, 0.0);
        EXPECT_GE(c.accelerator_seconds, 0.0);
        // FLOPs partition the chain total.
        EXPECT_NEAR(c.device_flops + c.accelerator_flops,
                    workloads::flop_split(f.chain, f.assignments[0]).total(), 1.0);
    }
    // algDDD does everything on the device.
    const auto& ddd = f.candidates[0];
    EXPECT_DOUBLE_EQ(ddd.accelerator_flops, 0.0);
    EXPECT_DOUBLE_EQ(ddd.accelerator_seconds, 0.0);
}

TEST(SelectCostAware, ZeroWeightPicksFastestInBestCluster) {
    Fixture f;
    const core::CostAwareConfig config{0.0, 1};
    const core::CandidateProfile chosen = core::select_cost_aware(f.candidates, config);
    EXPECT_EQ(chosen.final_rank, 1);
    // DDA is the calibrated winner.
    EXPECT_EQ(chosen.name, "algDDA");
}

TEST(SelectCostAware, HugeAcceleratorCostPrefersDeviceOnly) {
    Fixture f;
    // Rank tolerance 2 admits algDDD; an enormous accelerator cost makes any
    // offloading unattractive.
    const core::CostAwareConfig config{1e9, 2};
    const core::CandidateProfile chosen = core::select_cost_aware(f.candidates, config);
    EXPECT_EQ(chosen.name, "algDDD");
}

TEST(SelectCostAware, RankToleranceGatesCandidates) {
    Fixture f;
    core::CostAwareConfig config{0.0, 1};
    const auto best = core::select_cost_aware(f.candidates, config);
    EXPECT_EQ(best.final_rank, 1);

    // Tolerance spanning every cluster can only improve the utility.
    config.rank_tolerance = 8;
    const auto widened = core::select_cost_aware(f.candidates, config);
    EXPECT_LE(widened.mean_seconds, best.mean_seconds + 1e-12);
}

TEST(SelectCostAware, InvalidInputsThrow) {
    Fixture f;
    EXPECT_THROW((void)core::select_cost_aware({}, core::CostAwareConfig{0.0, 1}),
                 relperf::InvalidArgument);
    EXPECT_THROW(
        (void)core::select_cost_aware(f.candidates, core::CostAwareConfig{-1.0, 1}),
        relperf::InvalidArgument);
    EXPECT_THROW(
        (void)core::select_cost_aware(f.candidates, core::CostAwareConfig{0.0, 0}),
        relperf::InvalidArgument);
}

TEST(SelectMinDeviceFlops, PicksTheHeaviestOffloaderAmongTopClusters) {
    Fixture f;
    // Within the top two clusters {DDA, DAA, DDD}-ish, algDAA offloads
    // L2+L3 and therefore executes the fewest FLOPs on the device (the
    // paper's Sec. IV energy example chooses exactly algDAA).
    const core::CandidateProfile chosen =
        core::select_min_device_flops(f.candidates, 2);
    EXPECT_EQ(chosen.name, "algDAA");
}

TEST(SelectMinDeviceFlops, WideToleranceFindsGlobalMinimum) {
    Fixture f;
    const core::CandidateProfile chosen =
        core::select_min_device_flops(f.candidates, 8);
    EXPECT_EQ(chosen.name, "algAAA"); // everything offloaded
    EXPECT_DOUBLE_EQ(chosen.device_flops, 0.0);
}

TEST(EnergyBudgetSwitcher, GenerousBudgetNeverSwitches) {
    Fixture f;
    const sim::EnergyModel energy(sim::paper_cpu_gpu_platform());
    const core::EnergyBudgetSwitcher switcher(f.executor, energy, f.chain);
    Rng rng(1);
    core::SwitchPolicyConfig config;
    config.device_energy_budget_j = 1e12;
    config.window_runs = 10;
    config.cooldown_runs = 5;
    const core::SwitchTrace trace =
        switcher.simulate(workloads::DeviceAssignment("DDD"),
                          workloads::DeviceAssignment("DAA"), 100, config, rng);
    EXPECT_EQ(trace.switches, 0u);
    ASSERT_EQ(trace.segments.size(), 1u);
    EXPECT_EQ(trace.segments[0].alg_name, "algDDD");
    EXPECT_EQ(trace.segments[0].runs, 100u);
}

TEST(EnergyBudgetSwitcher, TightBudgetTriggersSwitching) {
    Fixture f;
    const sim::EnergyModel energy(sim::paper_cpu_gpu_platform());
    const core::EnergyBudgetSwitcher switcher(f.executor, energy, f.chain);
    Rng rng(2);
    core::SwitchPolicyConfig config;
    config.device_energy_budget_j = 1e-6; // exceeded immediately
    config.window_runs = 10;
    config.cooldown_runs = 4;
    const core::SwitchTrace trace =
        switcher.simulate(workloads::DeviceAssignment("DDD"),
                          workloads::DeviceAssignment("DAA"), 60, config, rng);
    EXPECT_GT(trace.switches, 0u);
    // Alternate segments actually executed.
    bool saw_alternate = false;
    for (const auto& seg : trace.segments) {
        if (seg.alg_name == "algDAA") saw_alternate = true;
    }
    EXPECT_TRUE(saw_alternate);
    // Switching to the offloader reduces device energy vs the baseline.
    EXPECT_LT(trace.total_device_energy_j, trace.baseline_device_energy_j);
}

TEST(EnergyBudgetSwitcher, SegmentsAccountForEveryRun) {
    Fixture f;
    const sim::EnergyModel energy(sim::paper_cpu_gpu_platform());
    const core::EnergyBudgetSwitcher switcher(f.executor, energy, f.chain);
    Rng rng(3);
    core::SwitchPolicyConfig config;
    config.device_energy_budget_j = 0.5;
    config.window_runs = 8;
    config.cooldown_runs = 3;
    const core::SwitchTrace trace =
        switcher.simulate(workloads::DeviceAssignment("DDD"),
                          workloads::DeviceAssignment("DAA"), 75, config, rng);
    std::size_t runs = 0;
    double seconds = 0.0;
    for (const auto& seg : trace.segments) {
        runs += seg.runs;
        seconds += seg.seconds;
    }
    EXPECT_EQ(runs, 75u);
    EXPECT_NEAR(seconds, trace.total_seconds, 1e-9);
}

TEST(EnergyBudgetSwitcher, InvalidConfigThrows) {
    Fixture f;
    const sim::EnergyModel energy(sim::paper_cpu_gpu_platform());
    const core::EnergyBudgetSwitcher switcher(f.executor, energy, f.chain);
    Rng rng(4);
    core::SwitchPolicyConfig config;
    config.device_energy_budget_j = 0.0;
    EXPECT_THROW((void)switcher.simulate(workloads::DeviceAssignment("DDD"),
                                         workloads::DeviceAssignment("DAA"), 10,
                                         config, rng),
                 relperf::InvalidArgument);
    config = {};
    EXPECT_THROW((void)switcher.simulate(workloads::DeviceAssignment("DDD"),
                                         workloads::DeviceAssignment("DAA"), 0,
                                         config, rng),
                 relperf::InvalidArgument);
}
