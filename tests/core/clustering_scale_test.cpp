//! Release-only memory-ceiling smoke for the sparse clusterer.
//!
//! 8192 single-sample algorithms through RelativeClusterer::cluster: the
//! dense pre-scale tally would allocate a 8192 x 8192 counts matrix — 512 MiB
//! for the counts alone — while the sparse per-algorithm tallies stay at
//! O(p * Rep). The test pins the whole process's peak RSS well below the
//! dense matrix's size, so a regression back to O(p^2) memory fails loudly.
//! All samples are identical, so every comparison is Equivalent and the
//! repeated sort is a single cheap pass — the test probes memory, not time.

#include "core/clustering.hpp"

#include <gtest/gtest.h>

#include <string>

#if defined(__linux__)
#include <sys/resource.h>
#endif

// Sanitizer shadow memory and redzones dominate ru_maxrss, so the ceiling is
// only meaningful in uninstrumented builds. (The repo keeps assertions on in
// Release, so there is no NDEBUG axis to gate on.)
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define RELPERF_SCALE_SMOKE_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(leak_sanitizer)
#define RELPERF_SCALE_SMOKE_SANITIZED 1
#endif
#endif

namespace core = relperf::core;

namespace {

/// Every pair ties — the cheapest possible comparator, and with identical
/// samples also the honest outcome.
class AllEquivalentComparator final : public core::Comparator {
public:
    core::Ordering compare(std::span<const double>, std::span<const double>,
                           relperf::stats::Rng&) const override {
        return core::Ordering::Equivalent;
    }
    std::string name() const override { return "all-equivalent"; }
};

} // namespace

TEST(RelativeClustererScale, EightKAlgorithmsStayUnderTheDenseMemoryFloor) {
#if defined(RELPERF_SCALE_SMOKE_SANITIZED)
    GTEST_SKIP() << "memory-ceiling smoke runs in uninstrumented builds only";
#elif !defined(__linux__)
    GTEST_SKIP() << "needs getrusage ru_maxrss";
#else
    constexpr std::size_t p = 8192;
    core::MeasurementSet set;
    for (std::size_t i = 0; i < p; ++i) {
        set.add("alg" + std::to_string(i), {1.0});
    }

    const AllEquivalentComparator cmp;
    const core::RelativeClusterer clusterer(cmp, core::ClustererConfig{4, 1});
    const core::Clustering result = clusterer.cluster(set);

    ASSERT_EQ(result.cluster_count(), 1);
    EXPECT_DOUBLE_EQ(result.score_of(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(result.score_of(p - 1, 1), 1.0);
    EXPECT_EQ(result.final_rank(p / 2), 1);

    struct rusage usage {};
    ASSERT_EQ(getrusage(RUSAGE_SELF, &usage), 0);
    const long peak_mib = usage.ru_maxrss / 1024; // ru_maxrss is KiB on Linux
    // The dense counts matrix alone is p^2 * 8 B = 512 MiB; the sparse path
    // plus gtest plus the measurement set fits in a small fraction of that.
    EXPECT_LT(peak_mib, 256)
        << "peak RSS " << peak_mib << " MiB suggests an O(p^2) allocation";
#endif
}
