//! Thread-clamp contract of the portable kernels: the raw setting
//! (gemm_thread_setting) round-trips, the effective team (gemm_threads) is
//! clamped to 1 in serial (no-OpenMP) builds, results do not depend on the
//! clamp, and the RealExecutor restores the *raw* setting after emulating a
//! device -> accelerator switch (restoring a resolved width would silently
//! pin "library default" to one machine's core count).

#include "linalg/gemm.hpp"

#include "sim/real_executor.hpp"
#include "stats/rng.hpp"
#include "workloads/assignment.hpp"
#include "workloads/chain.hpp"

#include <gtest/gtest.h>

namespace linalg = relperf::linalg;
using relperf::linalg::Matrix;

namespace {

/// Restores the entering thread setting when a test exits.
class ThreadSettingGuard {
public:
    ThreadSettingGuard() : saved_(linalg::gemm_thread_setting()) {}
    ~ThreadSettingGuard() { linalg::set_gemm_threads(saved_); }

private:
    int saved_;
};

} // namespace

TEST(GemmThreads, RawSettingRoundTrips) {
    const ThreadSettingGuard guard;
    linalg::set_gemm_threads(3);
    EXPECT_EQ(linalg::gemm_thread_setting(), 3);
    linalg::set_gemm_threads(1);
    EXPECT_EQ(linalg::gemm_thread_setting(), 1);
    linalg::set_gemm_threads(0); // library default
    EXPECT_EQ(linalg::gemm_thread_setting(), 0);
}

TEST(GemmThreads, NegativeSettingClampsToDefault) {
    const ThreadSettingGuard guard;
    linalg::set_gemm_threads(-7);
    EXPECT_EQ(linalg::gemm_thread_setting(), 0);
    EXPECT_GE(linalg::gemm_threads(), 1);
}

TEST(GemmThreads, EffectiveTeamIsAlwaysAtLeastOne) {
    const ThreadSettingGuard guard;
    for (const int setting : {0, 1, 2, 16}) {
        linalg::set_gemm_threads(setting);
        EXPECT_GE(linalg::gemm_threads(), 1) << "setting " << setting;
    }
}

#ifdef _OPENMP
TEST(GemmThreads, OpenMpBuildHonorsExplicitSetting) {
    const ThreadSettingGuard guard;
    linalg::set_gemm_threads(5);
    EXPECT_EQ(linalg::gemm_threads(), 5);
}
#else
TEST(GemmThreads, SerialBuildClampsEffectiveTeamToOne) {
    // RELPERF_ENABLE_OPENMP=OFF: the kernels cannot run wider than one
    // thread, so the effective team must report 1 whatever the setting says
    // — while the raw setting itself is preserved for save/restore.
    const ThreadSettingGuard guard;
    for (const int setting : {0, 1, 7, 64}) {
        linalg::set_gemm_threads(setting);
        EXPECT_EQ(linalg::gemm_threads(), 1) << "setting " << setting;
        EXPECT_EQ(linalg::gemm_thread_setting(), setting);
    }
}
#endif

TEST(GemmThreads, ClampDoesNotChangeResults) {
    const ThreadSettingGuard guard;
    relperf::stats::Rng rng(9);
    const Matrix a = Matrix::random_normal(70, 33, rng);
    const Matrix b = Matrix::random_normal(33, 41, rng);

    linalg::set_gemm_threads(1);
    Matrix c1(70, 41);
    linalg::gemm_blocked(1.0, a, b, 0.0, c1);

    linalg::set_gemm_threads(3);
    Matrix c3(70, 41);
    linalg::gemm_blocked(1.0, a, b, 0.0, c3);

    // The blocked kernel partitions work identically for any team size;
    // per-tile accumulation order is fixed, so this is exact.
    EXPECT_EQ(c1.max_abs_diff(c3), 0.0);
}

TEST(GemmThreads, RealExecutorRestoresRawSettingAfterSwitch) {
    const ThreadSettingGuard guard;
    // Tiny two-task chain measured on a Device -> Accelerator switch: the
    // executor clamps to 1 thread for the device, widens for the
    // accelerator, and must restore the *raw* entering setting afterwards.
    const relperf::workloads::TaskChain chain =
        relperf::workloads::make_rls_chain({4, 4}, 1);
    const relperf::workloads::DeviceAssignment assignment("DA");
    const relperf::sim::RealExecutor executor(
        relperf::sim::EmulatedDevice{1, 0.0, 0.0},
        relperf::sim::EmulatedDevice{0, 0.0, 0.0});

    relperf::stats::Rng rng(11);
    linalg::set_gemm_threads(0); // library default
    (void)executor.run_once(chain, assignment, rng);
    EXPECT_EQ(linalg::gemm_thread_setting(), 0)
        << "executor must restore the raw setting, not a resolved width";

    linalg::set_gemm_threads(2);
    (void)executor.run_once(chain, assignment, rng);
    EXPECT_EQ(linalg::gemm_thread_setting(), 2);
}
