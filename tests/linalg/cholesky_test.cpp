#include "linalg/cholesky.hpp"

#include "linalg/gemm.hpp"
#include "linalg/lu.hpp"
#include "linalg/syrk.hpp"
#include "stats/rng.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

using relperf::linalg::Matrix;
namespace linalg = relperf::linalg;

namespace {

/// Random SPD matrix: AᵀA + n·I.
Matrix random_spd(std::size_t n, std::uint64_t seed) {
    relperf::stats::Rng rng(seed);
    const Matrix a = Matrix::random_normal(n, n, rng);
    Matrix g = linalg::gram(a);
    g.add_scaled_identity(static_cast<double>(n));
    return g;
}

} // namespace

class CholeskyRoundTrip : public testing::TestWithParam<int> {};

TEST_P(CholeskyRoundTrip, FactorReconstructsInput) {
    const std::size_t n = static_cast<std::size_t>(GetParam());
    const Matrix spd = random_spd(n, 7 + n);
    Matrix l = spd;
    linalg::cholesky_factor(l);

    // Strict upper triangle must be zeroed.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) EXPECT_DOUBLE_EQ(l(i, j), 0.0);
    }

    const Matrix reconstructed = linalg::multiply(l, l.transposed());
    EXPECT_LT(reconstructed.max_abs_diff(spd), 1e-9 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyRoundTrip, testing::Values(1, 2, 5, 16, 50, 128));

TEST(Cholesky, NonSquareThrows) {
    Matrix m(2, 3);
    EXPECT_THROW(linalg::cholesky_factor(m), relperf::InvalidArgument);
}

TEST(Cholesky, IndefiniteMatrixThrows) {
    Matrix m = Matrix::identity(3);
    m(2, 2) = -1.0;
    EXPECT_THROW(linalg::cholesky_factor(m), relperf::InvalidArgument);
}

TEST(Cholesky, SolveLowerKnownSystem) {
    // L = [[2,0],[1,3]]; solve L x = b with b = (2, 7) -> x = (1, 2).
    Matrix l(2, 2);
    l(0, 0) = 2;
    l(1, 0) = 1;
    l(1, 1) = 3;
    Matrix b(2, 1);
    b(0, 0) = 2;
    b(1, 0) = 7;
    linalg::solve_lower(l, b);
    EXPECT_NEAR(b(0, 0), 1.0, 1e-14);
    EXPECT_NEAR(b(1, 0), 2.0, 1e-14);
}

TEST(Cholesky, SolveLowerTransposedKnownSystem) {
    // Lᵀ = [[2,1],[0,3]]; solve Lᵀ x = (4, 6): x1 = 2, x0 = (4 - 2) / 2 = 1.
    Matrix l(2, 2);
    l(0, 0) = 2;
    l(1, 0) = 1;
    l(1, 1) = 3;
    Matrix b(2, 1);
    b(0, 0) = 4;
    b(1, 0) = 6;
    linalg::solve_lower_transposed(l, b);
    EXPECT_NEAR(b(1, 0), 2.0, 1e-14);
    EXPECT_NEAR(b(0, 0), 1.0, 1e-14);
}

TEST(Cholesky, SolveMatchesLu) {
    const std::size_t n = 40;
    const Matrix spd = random_spd(n, 21);
    relperf::stats::Rng rng(22);
    const Matrix rhs = Matrix::random_normal(n, 3, rng);

    const Matrix x_chol = linalg::cholesky_solve(spd, rhs);
    const Matrix x_lu = linalg::solve(spd, rhs);
    EXPECT_LT(x_chol.max_abs_diff(x_lu), 1e-9);
}

TEST(Cholesky, SolveResidualIsSmall) {
    const std::size_t n = 64;
    const Matrix spd = random_spd(n, 33);
    relperf::stats::Rng rng(34);
    const Matrix rhs = Matrix::random_normal(n, 2, rng);
    const Matrix x = linalg::cholesky_solve(spd, rhs);
    const Matrix residual = linalg::subtract(linalg::multiply(spd, x), rhs);
    EXPECT_LT(residual.frobenius_norm(), 1e-9 * rhs.frobenius_norm() * n);
}

TEST(Cholesky, ShapeMismatchesThrow) {
    const Matrix l(3, 3);
    Matrix b(2, 1);
    EXPECT_THROW(linalg::solve_lower(l, b), relperf::InvalidArgument);
    EXPECT_THROW(linalg::solve_lower_transposed(l, b), relperf::InvalidArgument);
    EXPECT_THROW((void)linalg::cholesky_solve(Matrix::identity(3), b),
                 relperf::InvalidArgument);
}

TEST(CholeskyFlops, Formulas) {
    EXPECT_DOUBLE_EQ(linalg::cholesky_flops(3), 9.0);
    EXPECT_DOUBLE_EQ(linalg::trsm_flops(4, 2), 32.0);
}
