#include "linalg/blas1.hpp"

#include "support/error.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace linalg = relperf::linalg;

TEST(Blas1, AxpyAccumulates) {
    const std::vector<double> x = {1.0, 2.0, 3.0};
    std::vector<double> y = {10.0, 10.0, 10.0};
    linalg::axpy(2.0, x, y);
    EXPECT_DOUBLE_EQ(y[0], 12.0);
    EXPECT_DOUBLE_EQ(y[1], 14.0);
    EXPECT_DOUBLE_EQ(y[2], 16.0);
}

TEST(Blas1, AxpySizeMismatchThrows) {
    const std::vector<double> x = {1.0};
    std::vector<double> y = {1.0, 2.0};
    EXPECT_THROW(linalg::axpy(1.0, x, y), relperf::InvalidArgument);
}

TEST(Blas1, DotKnownValue) {
    const std::vector<double> x = {1.0, 2.0, 3.0};
    const std::vector<double> y = {4.0, 5.0, 6.0};
    EXPECT_DOUBLE_EQ(linalg::dot(x, y), 32.0);
}

TEST(Blas1, DotSizeMismatchThrows) {
    const std::vector<double> x = {1.0};
    const std::vector<double> y = {1.0, 2.0};
    EXPECT_THROW((void)linalg::dot(x, y), relperf::InvalidArgument);
}

TEST(Blas1, ScalScales) {
    std::vector<double> x = {1.0, -2.0};
    linalg::scal(3.0, x);
    EXPECT_DOUBLE_EQ(x[0], 3.0);
    EXPECT_DOUBLE_EQ(x[1], -6.0);
}

TEST(Blas1, Nrm2KnownValueAndOverflowSafety) {
    const std::vector<double> x = {3.0, 4.0};
    EXPECT_DOUBLE_EQ(linalg::nrm2(x), 5.0);
    const std::vector<double> huge = {1e200, 1e200};
    EXPECT_NEAR(linalg::nrm2(huge) / (std::sqrt(2.0) * 1e200), 1.0, 1e-12);
    const std::vector<double> zero = {0.0, 0.0};
    EXPECT_DOUBLE_EQ(linalg::nrm2(zero), 0.0);
}

TEST(Blas1, IamaxFindsLargestMagnitude) {
    const std::vector<double> x = {1.0, -7.0, 3.0};
    EXPECT_EQ(linalg::iamax(x), 1u);
    const std::vector<double> empty;
    EXPECT_THROW((void)linalg::iamax(empty), relperf::InvalidArgument);
}
