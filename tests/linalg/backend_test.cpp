//! Registry and context semantics of the backend layer (backend.hpp):
//! built-in registration, lookup errors, scoped/thread-local selection and
//! the dispatch of gemm/gram/cholesky_factor through the active backend.

#include "linalg/backend.hpp"

#include "linalg/cholesky.hpp"
#include "linalg/gemm.hpp"
#include "linalg/syrk.hpp"
#include "stats/rng.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

using relperf::linalg::Matrix;
namespace linalg = relperf::linalg;

namespace {

// Counting wrappers around the reference kernels, used to prove that a
// freshly registered backend really receives the dispatched calls.
std::atomic<int> g_counted_calls{0};

void counted_gemm(double alpha, const Matrix& a, const Matrix& b, double beta,
                  Matrix& c) {
    g_counted_calls.fetch_add(1);
    linalg::gemm_reference(alpha, a, b, beta, c);
}
void counted_syrk(const Matrix& a, Matrix& c) {
    g_counted_calls.fetch_add(1);
    linalg::gram_reference(a, c);
}
void counted_cholesky(Matrix& a) {
    g_counted_calls.fetch_add(1);
    linalg::cholesky_factor_reference(a);
}

} // namespace

TEST(BackendRegistry, BuiltinsAreRegisteredInOrder) {
    const std::vector<std::string> names = linalg::backend_names();
    ASSERT_GE(names.size(), 2u);
    EXPECT_EQ(names[0], linalg::kReferenceBackend);
    EXPECT_EQ(names[1], linalg::kPortableBackend);
    EXPECT_TRUE(linalg::has_backend("portable"));
    EXPECT_TRUE(linalg::has_backend("reference"));
}

TEST(BackendRegistry, DefaultIsPortable) {
    EXPECT_EQ(linalg::default_backend().name, linalg::kPortableBackend);
    EXPECT_EQ(linalg::active_backend().name, linalg::kPortableBackend);
}

TEST(BackendRegistry, EveryRegisteredBackendIsComplete) {
    for (const std::string& name : linalg::backend_names()) {
        const linalg::Backend& b = linalg::backend(name);
        EXPECT_EQ(b.name, name);
        EXPECT_FALSE(b.description.empty()) << name;
        EXPECT_NE(b.gemm, nullptr) << name;
        EXPECT_NE(b.syrk, nullptr) << name;
        EXPECT_NE(b.cholesky, nullptr) << name;
    }
}

TEST(BackendRegistry, UnknownLookupThrowsListingNames) {
    try {
        (void)linalg::backend("warp-core");
        FAIL() << "expected InvalidArgument";
    } catch (const relperf::InvalidArgument& e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("warp-core"), std::string::npos) << message;
        EXPECT_NE(message.find("portable"), std::string::npos) << message;
        EXPECT_NE(message.find("reference"), std::string::npos) << message;
    }
    EXPECT_FALSE(linalg::has_backend("warp-core"));
}

TEST(BackendRegistry, RegistrationValidatesTheBackend) {
    linalg::Backend incomplete{"", "", &counted_gemm, &counted_syrk,
                               &counted_cholesky};
    EXPECT_THROW(linalg::register_backend(incomplete),
                 relperf::InvalidArgument);
    incomplete.name = "null-kernel";
    incomplete.cholesky = nullptr;
    EXPECT_THROW(linalg::register_backend(incomplete),
                 relperf::InvalidArgument);
    linalg::Backend duplicate{linalg::kPortableBackend, "dup", &counted_gemm,
                              &counted_syrk, &counted_cholesky};
    EXPECT_THROW(linalg::register_backend(duplicate),
                 relperf::InvalidArgument);
}

TEST(BackendRegistry, RegisteredBackendReceivesDispatchedCalls) {
    // Registration is process-wide and permanent; use a unique name.
    linalg::register_backend(linalg::Backend{"counting-test",
                                             "reference + call counter",
                                             &counted_gemm, &counted_syrk,
                                             &counted_cholesky});
    ASSERT_TRUE(linalg::has_backend("counting-test"));

    relperf::stats::Rng rng(1);
    const Matrix a = Matrix::random_normal(6, 6, rng);
    const Matrix b = Matrix::random_normal(6, 6, rng);
    Matrix c(6, 6);

    g_counted_calls.store(0);
    {
        const linalg::ScopedBackend scope("counting-test");
        EXPECT_EQ(linalg::active_backend().name, "counting-test");
        linalg::gemm(1.0, a, b, 0.0, c);
        Matrix g;
        linalg::gram(a, g);
        g.add_scaled_identity(6.0);
        linalg::cholesky_factor(g);
    }
    EXPECT_EQ(g_counted_calls.load(), 3);

    // Outside the scope the default backend is back and the counter stays.
    linalg::gemm(1.0, a, b, 0.0, c);
    EXPECT_EQ(g_counted_calls.load(), 3);
}

TEST(BackendContext, ScopedOverridesNestAndRestore) {
    EXPECT_EQ(linalg::active_backend().name, linalg::kPortableBackend);
    {
        const linalg::ScopedBackend outer(linalg::kReferenceBackend);
        EXPECT_EQ(linalg::active_backend().name, linalg::kReferenceBackend);
        {
            const linalg::ScopedBackend inner(linalg::kPortableBackend);
            EXPECT_EQ(linalg::active_backend().name, linalg::kPortableBackend);
        }
        EXPECT_EQ(linalg::active_backend().name, linalg::kReferenceBackend);
    }
    EXPECT_EQ(linalg::active_backend().name, linalg::kPortableBackend);
}

TEST(BackendContext, ScopedUnknownBackendThrows) {
    EXPECT_THROW(linalg::ScopedBackend scope("warp-core"),
                 relperf::InvalidArgument);
}

TEST(BackendContext, ScopedOverrideIsThreadLocal) {
    const linalg::ScopedBackend scope(linalg::kReferenceBackend);
    ASSERT_EQ(linalg::active_backend().name, linalg::kReferenceBackend);
    std::string seen_on_worker;
    std::thread worker(
        [&] { seen_on_worker = linalg::active_backend().name; });
    worker.join();
    // The worker thread has no override: it sees the process default.
    EXPECT_EQ(seen_on_worker, linalg::kPortableBackend);
}

TEST(BackendContext, DefaultBackendIsProcessWide) {
    linalg::set_default_backend(linalg::kReferenceBackend);
    std::string seen_on_worker;
    std::thread worker(
        [&] { seen_on_worker = linalg::active_backend().name; });
    worker.join();
    linalg::set_default_backend(linalg::kPortableBackend); // restore
    EXPECT_EQ(seen_on_worker, linalg::kReferenceBackend);
    EXPECT_THROW(linalg::set_default_backend("warp-core"),
                 relperf::InvalidArgument);
    EXPECT_EQ(linalg::default_backend().name, linalg::kPortableBackend);
}
