#include "linalg/gemm.hpp"

#include "stats/rng.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <tuple>

using relperf::linalg::Matrix;
namespace linalg = relperf::linalg;

namespace {

Matrix random(std::size_t r, std::size_t c, std::uint64_t seed) {
    relperf::stats::Rng rng(seed);
    return Matrix::random_normal(r, c, rng);
}

} // namespace

TEST(GemmReference, KnownProduct) {
    Matrix a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 3;
    a(1, 1) = 4;
    Matrix b = Matrix::identity(2);
    Matrix c(2, 2);
    linalg::gemm_reference(1.0, a, b, 0.0, c);
    EXPECT_TRUE(c == a);
}

TEST(Gemm, IdentityIsNeutral) {
    const Matrix a = random(17, 17, 1);
    const Matrix c = linalg::multiply(a, Matrix::identity(17));
    EXPECT_LT(c.max_abs_diff(a), 1e-13);
}

TEST(Gemm, ShapeMismatchThrows) {
    const Matrix a(2, 3);
    const Matrix b(4, 2);
    Matrix c(2, 2);
    EXPECT_THROW(linalg::gemm(1.0, a, b, 0.0, c), relperf::InvalidArgument);
    const Matrix b2(3, 2);
    Matrix bad_c(3, 2);
    EXPECT_THROW(linalg::gemm(1.0, a, b2, 0.0, bad_c), relperf::InvalidArgument);
}

TEST(Gemm, AlphaBetaSemantics) {
    const Matrix a = random(5, 6, 2);
    const Matrix b = random(6, 4, 3);
    Matrix c0(5, 4, 1.0); // existing content
    Matrix c1 = c0;

    linalg::gemm_reference(2.0, a, b, 3.0, c0);
    linalg::gemm(2.0, a, b, 3.0, c1);
    EXPECT_LT(c1.max_abs_diff(c0), 1e-12);
}

TEST(Gemm, AlphaZeroOnlyScalesC) {
    const Matrix a = random(4, 4, 4);
    const Matrix b = random(4, 4, 5);
    Matrix c(4, 4, 2.0);
    linalg::gemm(0.0, a, b, 0.5, c);
    for (const double x : c.data()) EXPECT_DOUBLE_EQ(x, 1.0);
}

// Parameterized agreement sweep: blocked/packed/parallel gemm vs reference,
// covering fringe sizes (non-multiples of the 4x4 micro-kernel) and
// rectangular shapes.
class GemmAgreement
    : public testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmAgreement, MatchesReference) {
    const auto [m, n, k] = GetParam();
    const Matrix a = random(m, k, 10 + m);
    const Matrix b = random(k, n, 20 + n);
    Matrix c_ref(m, n);
    Matrix c_opt(m, n);
    linalg::gemm_reference(1.0, a, b, 0.0, c_ref);
    linalg::gemm(1.0, a, b, 0.0, c_opt);
    EXPECT_LT(c_opt.max_abs_diff(c_ref), 1e-11 * static_cast<double>(k));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmAgreement,
    testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                    std::make_tuple(4, 4, 4), std::make_tuple(16, 16, 16),
                    std::make_tuple(33, 65, 17), std::make_tuple(64, 64, 64),
                    std::make_tuple(100, 50, 75), std::make_tuple(127, 129, 128),
                    std::make_tuple(7, 301, 2), std::make_tuple(256, 64, 300)));

TEST(Gemm, ThreadSettingRoundTrips) {
    const int saved = linalg::gemm_thread_setting();
    linalg::set_gemm_threads(1);
    EXPECT_EQ(linalg::gemm_thread_setting(), 1);
    linalg::set_gemm_threads(4);
    EXPECT_EQ(linalg::gemm_thread_setting(), 4);
    linalg::set_gemm_threads(0); // library default
    EXPECT_EQ(linalg::gemm_thread_setting(), 0);
    EXPECT_GE(linalg::gemm_threads(), 1); // effective team is always >= 1
    linalg::set_gemm_threads(saved);
}

TEST(Gemm, SingleThreadMatchesParallel) {
    const Matrix a = random(96, 80, 6);
    const Matrix b = random(80, 72, 7);
    const int saved = linalg::gemm_thread_setting();

    linalg::set_gemm_threads(1);
    Matrix c1(96, 72);
    linalg::gemm(1.0, a, b, 0.0, c1);

    linalg::set_gemm_threads(0);
    Matrix cn(96, 72);
    linalg::gemm(1.0, a, b, 0.0, cn);

    linalg::set_gemm_threads(saved);
    EXPECT_LT(c1.max_abs_diff(cn), 1e-12);
}

TEST(GemmFlops, Formula) {
    EXPECT_DOUBLE_EQ(linalg::gemm_flops(2, 3, 4), 48.0);
    EXPECT_DOUBLE_EQ(linalg::gemm_flops(0, 3, 4), 0.0);
}
