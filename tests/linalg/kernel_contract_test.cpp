//! Error-contract tests for the dense kernels: dimension mismatches and
//! precondition violations must throw relperf::InvalidArgument — for every
//! registered backend — instead of reading out of bounds or producing
//! garbage. Degenerate-but-legal inputs (0-dimension matrices) must work.

#include "linalg/backend.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/gemm.hpp"
#include "linalg/lu.hpp"
#include "linalg/rls.hpp"
#include "linalg/syrk.hpp"
#include "stats/rng.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

using relperf::linalg::Matrix;
namespace linalg = relperf::linalg;

namespace {

Matrix random(std::size_t r, std::size_t c, std::uint64_t seed) {
    relperf::stats::Rng rng(seed);
    return Matrix::random_normal(r, c, rng);
}

} // namespace

TEST(GemmContract, DimensionMismatchThrowsForEveryBackend) {
    const Matrix a(2, 3);
    const Matrix inner_mismatch(4, 2);
    const Matrix b(3, 2);
    for (const std::string& name : linalg::backend_names()) {
        const linalg::Backend& backend = linalg::backend(name);
        Matrix c(2, 2);
        EXPECT_THROW(backend.gemm(1.0, a, inner_mismatch, 0.0, c),
                     relperf::InvalidArgument)
            << name;
        Matrix wrong_rows(3, 2);
        EXPECT_THROW(backend.gemm(1.0, a, b, 0.0, wrong_rows),
                     relperf::InvalidArgument)
            << name;
        Matrix wrong_cols(2, 3);
        EXPECT_THROW(backend.gemm(1.0, a, b, 0.0, wrong_cols),
                     relperf::InvalidArgument)
            << name;
    }
}

TEST(GemmContract, MultiplyChecksInnerDimensions) {
    const Matrix a(2, 3);
    const Matrix b(4, 2);
    EXPECT_THROW((void)linalg::multiply(a, b), relperf::InvalidArgument);
}

TEST(GemmContract, ZeroDimensionsAreLegal) {
    // 0 x k times k x 0 and friends: no throw, no out-of-bounds reads.
    const Matrix a(0, 3);
    const Matrix b(3, 0);
    Matrix c(0, 0);
    EXPECT_NO_THROW(linalg::gemm(1.0, a, b, 0.0, c));

    const Matrix a2(4, 0);
    const Matrix b2(0, 5);
    Matrix c2(4, 5, 2.0);
    linalg::gemm(1.0, a2, b2, 0.5, c2); // k == 0: pure scaling
    for (const double x : c2.data()) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(SyrkContract, AnyShapeIsLegalIncludingEmpty) {
    Matrix g;
    linalg::gram(Matrix(0, 0), g);
    EXPECT_EQ(g.rows(), 0u);

    linalg::gram(Matrix(0, 4), g); // 0 rows: Gram over nothing is 0
    EXPECT_EQ(g.rows(), 4u);
    for (const double x : g.data()) EXPECT_EQ(x, 0.0);

    linalg::gram(Matrix(4, 0), g);
    EXPECT_EQ(g.rows(), 0u);
}

TEST(CholeskyContract, NonSquareThrowsForEveryBackend) {
    for (const std::string& name : linalg::backend_names()) {
        Matrix rect(2, 3);
        EXPECT_THROW(linalg::backend(name).cholesky(rect),
                     relperf::InvalidArgument)
            << name;
    }
}

TEST(CholeskyContract, NonSpdThrowsNamingTheProblem) {
    Matrix indefinite = Matrix::identity(4);
    indefinite(1, 1) = -2.0;
    try {
        linalg::cholesky_factor(indefinite);
        FAIL() << "expected InvalidArgument";
    } catch (const relperf::InvalidArgument& e) {
        EXPECT_NE(std::string(e.what()).find("positive definite"),
                  std::string::npos)
            << e.what();
    }
}

TEST(CholeskyContract, SolveShapeMismatchesThrow) {
    const Matrix l = Matrix::identity(3);
    Matrix b(2, 1);
    EXPECT_THROW(linalg::solve_lower(l, b), relperf::InvalidArgument);
    EXPECT_THROW(linalg::solve_lower_transposed(l, b),
                 relperf::InvalidArgument);
    Matrix rect(3, 2);
    EXPECT_THROW(linalg::solve_lower(rect, b), relperf::InvalidArgument);
    EXPECT_THROW(linalg::cholesky_solve(Matrix::identity(3), b),
                 relperf::InvalidArgument);
}

TEST(LuContract, NonSquareThrows) {
    EXPECT_THROW((void)linalg::lu_factor(Matrix(2, 3)),
                 relperf::InvalidArgument);
}

TEST(LuContract, SingularMatrixThrows) {
    Matrix singular(3, 3);
    singular(0, 0) = 1.0;
    singular(1, 1) = 1.0; // third row/column entirely zero
    EXPECT_THROW((void)linalg::lu_factor(singular), relperf::InvalidArgument);
}

TEST(LuContract, SolveShapeMismatchThrows) {
    const linalg::LuFactors f = linalg::lu_factor(Matrix::identity(3));
    EXPECT_THROW((void)linalg::lu_solve(f, Matrix(2, 1)),
                 relperf::InvalidArgument);
}

TEST(LuContract, EmptySystemIsLegal) {
    const linalg::LuFactors f = linalg::lu_factor(Matrix(0, 0));
    const Matrix x = linalg::lu_solve(f, Matrix(0, 2));
    EXPECT_EQ(x.rows(), 0u);
    EXPECT_EQ(x.cols(), 2u);
}

TEST(RlsContract, PreconditionsThrow) {
    const Matrix wide = random(3, 5, 1);
    const Matrix b3 = random(3, 3, 2);
    EXPECT_THROW((void)linalg::rls_solve(wide, b3, 0.1),
                 relperf::InvalidArgument);

    const Matrix a = random(5, 3, 3);
    const Matrix b_mismatch = random(4, 3, 4);
    EXPECT_THROW((void)linalg::rls_solve(a, b_mismatch, 0.1),
                 relperf::InvalidArgument);

    const Matrix b = random(5, 3, 5);
    EXPECT_THROW((void)linalg::rls_solve(a, b, -0.5),
                 relperf::InvalidArgument);

    // Residual shape contracts.
    const Matrix z = linalg::rls_solve(a, b, 0.1);
    EXPECT_THROW((void)linalg::rls_residual(a, b, Matrix(4, 3)),
                 relperf::InvalidArgument);
    EXPECT_THROW((void)linalg::rls_residual(a, Matrix(5, 2), z),
                 relperf::InvalidArgument);
}
