//! Backend-parity suite: every *registered* backend is checked against the
//! reference oracles (gemm_reference / gram_reference /
//! cholesky_factor_reference) over randomized and adversarial shapes. The
//! suite is parameterized over linalg::backend_names() at instantiation
//! time, so a backend added later — vendor BLAS, a future GPU path, or a
//! user registration — is covered with zero test changes.
//!
//! ## Tolerance policy
//!
//! Backends are free to reassociate sums (blocking, SIMD, vendor kernels),
//! so results are compared against the oracle with a forward-error bound,
//! not bitwise. For a dot-product-shaped accumulation of length k over
//! inputs bounded by amax*bmax, the classical bound is
//! |err| <= k * eps * amax * bmax * (1 + o(1)); we allow a 32x safety factor
//! on top (vendor kernels may use wider blocking but also fewer roundings
//! via FMA):
//!
//!   gemm:     tol = 32 * eps * (|alpha| * k * amax(A) * amax(B) + |beta| * amax(C))
//!   syrk:     tol = 32 * eps * m * amax(A)^2
//!   cholesky: tol = 32 * eps * n * amax(SPD)   (well-conditioned inputs only:
//!             the factor's error also carries the condition number, so SPD
//!             test inputs are built diagonally dominant via AᵀA + n·I)
//!
//! Exact (bitwise) expectations are reserved for structure, not values:
//! symmetry of SYRK output, zeroed strict-upper triangles, beta==0 never
//! reading C (NaN poison must not propagate), and 0-dimension handling.

#include "linalg/backend.hpp"

#include "linalg/cholesky.hpp"
#include "linalg/gemm.hpp"
#include "linalg/syrk.hpp"
#include "stats/rng.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

using relperf::linalg::Matrix;
namespace linalg = relperf::linalg;

namespace {

constexpr double kEps = std::numeric_limits<double>::epsilon();
constexpr double kSafety = 32.0;

double amax(const Matrix& m) {
    double worst = 0.0;
    for (const double x : m.data()) worst = std::max(worst, std::fabs(x));
    return worst;
}

Matrix random(std::size_t r, std::size_t c, std::uint64_t seed) {
    relperf::stats::Rng rng(seed);
    return Matrix::random_normal(r, c, rng);
}

/// Well-conditioned SPD input: AᵀA + n·I via the reference kernel.
Matrix random_spd(std::size_t n, std::uint64_t seed) {
    const Matrix a = random(n, n, seed);
    Matrix g;
    linalg::gram_reference(a, g);
    g.add_scaled_identity(static_cast<double>(n));
    return g;
}

struct GemmCase {
    std::size_t m, n, k;
    double alpha, beta;
};

const std::vector<GemmCase>& gemm_cases() {
    static const std::vector<GemmCase> cases = {
        // Randomized bread-and-butter shapes.
        {7, 9, 8, 1.0, 0.0},
        {32, 32, 32, 1.0, 0.0},
        {64, 64, 64, 1.0, 1.0},
        {100, 50, 75, 2.5, -1.5},
        {129, 127, 65, -1.0, 0.5},
        // Adversarial: 0-dim in every position.
        {0, 0, 0, 1.0, 0.0},
        {0, 5, 3, 1.0, 0.0},
        {5, 0, 3, 1.0, 0.0},
        {5, 3, 0, 1.0, 0.7},   // k == 0: pure C = beta * C
        // Adversarial: degenerate 1-extents and tall/skinny panels.
        {1, 1, 1, 1.0, 0.0},
        {1, 17, 1, 1.0, 2.0},
        {17, 1, 5, -2.0, 0.0},
        {200, 2, 3, 1.0, 0.0},
        {2, 200, 3, 0.5, 1.0},
        {3, 2, 200, 1.0, 0.0},
        // Adversarial: alpha == 0 must only scale C.
        {33, 21, 40, 0.0, 0.5},
        {33, 21, 40, 0.0, 0.0},
    };
    return cases;
}

} // namespace

/// One instantiation per registered backend; GetParam() is the name.
class BackendParity : public testing::TestWithParam<std::string> {
protected:
    const linalg::Backend& backend() const {
        return linalg::backend(GetParam());
    }
};

TEST_P(BackendParity, GemmMatchesReferenceAcrossShapes) {
    for (const GemmCase& c : gemm_cases()) {
        const Matrix a = random(c.m, c.k, 11 + c.m + c.k);
        const Matrix b = random(c.k, c.n, 23 + c.k + c.n);
        const Matrix c_init = random(c.m, c.n, 37 + c.m + c.n);

        Matrix expected = c_init;
        linalg::gemm_reference(c.alpha, a, b, c.beta, expected);
        Matrix actual = c_init;
        backend().gemm(c.alpha, a, b, c.beta, actual);

        const double tol =
            kSafety * kEps *
            (std::fabs(c.alpha) * static_cast<double>(c.k) * amax(a) * amax(b) +
             std::fabs(c.beta) * amax(c_init));
        EXPECT_LE(actual.max_abs_diff(expected), tol)
            << "m=" << c.m << " n=" << c.n << " k=" << c.k
            << " alpha=" << c.alpha << " beta=" << c.beta;
    }
}

TEST_P(BackendParity, GemmBetaZeroNeverReadsC) {
    // BLAS contract: beta == 0 means C is write-only — poison must vanish.
    const Matrix a = random(13, 7, 101);
    const Matrix b = random(7, 9, 102);
    Matrix expected(13, 9);
    linalg::gemm_reference(1.0, a, b, 0.0, expected);

    Matrix actual(13, 9, std::numeric_limits<double>::quiet_NaN());
    backend().gemm(1.0, a, b, 0.0, actual);
    const double tol = kSafety * kEps * 7.0 * amax(a) * amax(b);
    EXPECT_LE(actual.max_abs_diff(expected), tol);

    // Same with alpha == 0: the result must be exactly zero, not 0 * NaN.
    Matrix poisoned(13, 9, std::numeric_limits<double>::quiet_NaN());
    backend().gemm(0.0, a, b, 0.0, poisoned);
    for (const double x : poisoned.data()) EXPECT_EQ(x, 0.0);
}

TEST_P(BackendParity, GemmAliasedCBetaPathAccumulates) {
    // The beta != 0 path reads and writes the same C storage in place.
    const Matrix a = random(31, 17, 201);
    const Matrix b = random(17, 23, 202);
    const Matrix c_init = random(31, 23, 203);

    Matrix expected = c_init;
    linalg::gemm_reference(0.75, a, b, -2.0, expected);
    Matrix actual = c_init;
    backend().gemm(0.75, a, b, -2.0, actual);
    const double tol =
        kSafety * kEps * (0.75 * 17.0 * amax(a) * amax(b) + 2.0 * amax(c_init));
    EXPECT_LE(actual.max_abs_diff(expected), tol);
}

TEST_P(BackendParity, SyrkMatchesReferenceAcrossShapes) {
    const std::vector<std::pair<std::size_t, std::size_t>> shapes = {
        {0, 0}, {0, 4}, {4, 0}, {1, 1}, {5, 1}, {1, 5},
        {50, 20}, {20, 50}, {64, 64}, {3, 129}, {129, 3}};
    for (const auto& [m, n] : shapes) {
        const Matrix a = random(m, n, 301 + m + n);
        Matrix expected;
        linalg::gram_reference(a, expected);
        Matrix actual;
        backend().syrk(a, actual);

        ASSERT_EQ(actual.rows(), n);
        ASSERT_EQ(actual.cols(), n);
        const double tol =
            kSafety * kEps * static_cast<double>(m) * amax(a) * amax(a);
        EXPECT_LE(actual.max_abs_diff(expected), tol) << "m=" << m << " n=" << n;
        // Structure is exact: full mirrored storage.
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) {
                EXPECT_EQ(actual(i, j), actual(j, i)) << "m=" << m << " n=" << n;
            }
        }
    }
}

TEST_P(BackendParity, SyrkResizesAndOverwritesC) {
    const Matrix a = random(9, 6, 401);
    Matrix expected;
    linalg::gram_reference(a, expected);

    Matrix wrong_shape(2, 11, std::numeric_limits<double>::quiet_NaN());
    backend().syrk(a, wrong_shape);
    EXPECT_EQ(wrong_shape.rows(), 6u);
    EXPECT_EQ(wrong_shape.cols(), 6u);
    const double tol = kSafety * kEps * 9.0 * amax(a) * amax(a);
    EXPECT_LE(wrong_shape.max_abs_diff(expected), tol);

    Matrix right_shape(6, 6, std::numeric_limits<double>::quiet_NaN());
    backend().syrk(a, right_shape);
    EXPECT_LE(right_shape.max_abs_diff(expected), tol);
}

TEST_P(BackendParity, CholeskyMatchesReferenceAcrossSizes) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                std::size_t{5}, std::size_t{16}, std::size_t{33},
                                std::size_t{64}}) {
        const Matrix spd = random_spd(n, 501 + n);
        Matrix expected = spd;
        linalg::cholesky_factor_reference(expected);
        Matrix actual = spd;
        backend().cholesky(actual);

        const double tol = kSafety * kEps * static_cast<double>(n) * amax(spd);
        EXPECT_LE(actual.max_abs_diff(expected), tol) << "n=" << n;
        // The factor's structure is exact: strict upper triangle zeroed and
        // a positive diagonal.
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_GT(actual(i, i), 0.0) << "n=" << n;
            for (std::size_t j = i + 1; j < n; ++j) {
                EXPECT_EQ(actual(i, j), 0.0) << "n=" << n;
            }
        }
    }
}

TEST_P(BackendParity, CholeskyHandlesEmptyMatrix) {
    Matrix empty;
    EXPECT_NO_THROW(backend().cholesky(empty));
    EXPECT_EQ(empty.rows(), 0u);
}

TEST_P(BackendParity, CholeskyRejectsIndefiniteInput) {
    // Indefinite: a negative eigenvalue.
    Matrix indefinite = Matrix::identity(3);
    indefinite(2, 2) = -1.0;
    EXPECT_THROW(backend().cholesky(indefinite), relperf::InvalidArgument);

    // Singular PSD (rank 1): a zero pivot, equally not factorizable.
    Matrix singular(2, 2, 1.0);
    EXPECT_THROW(backend().cholesky(singular), relperf::InvalidArgument);
}

TEST_P(BackendParity, DispatchRoutesPublicApiToThisBackend) {
    // The public entry points must produce this backend's results when it is
    // the scoped selection (spot check, small shapes).
    const linalg::ScopedBackend scope(GetParam());
    const Matrix a = random(12, 8, 601);
    const Matrix b = random(8, 10, 602);

    Matrix via_api(12, 10);
    linalg::gemm(1.0, a, b, 0.0, via_api);
    Matrix direct(12, 10);
    backend().gemm(1.0, a, b, 0.0, direct);
    EXPECT_EQ(via_api.max_abs_diff(direct), 0.0);

    Matrix g_api;
    linalg::gram(a, g_api);
    Matrix g_direct;
    backend().syrk(a, g_direct);
    EXPECT_EQ(g_api.max_abs_diff(g_direct), 0.0);

    Matrix spd = random_spd(8, 603);
    Matrix c_api = spd;
    linalg::cholesky_factor(c_api);
    Matrix c_direct = spd;
    backend().cholesky(c_direct);
    EXPECT_EQ(c_api.max_abs_diff(c_direct), 0.0);
}

TEST_P(BackendParity, DispatchedShapeErrorsAreBackendIndependent) {
    const linalg::ScopedBackend scope(GetParam());
    const Matrix a(2, 3);
    const Matrix b(4, 2);
    Matrix c(2, 2);
    EXPECT_THROW(linalg::gemm(1.0, a, b, 0.0, c), relperf::InvalidArgument);
    Matrix rect(2, 3);
    EXPECT_THROW(linalg::cholesky_factor(rect), relperf::InvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredBackends, BackendParity,
    testing::ValuesIn(linalg::backend_names()),
    [](const testing::TestParamInfo<std::string>& info) {
        std::string name = info.param;
        for (char& c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
        }
        return name;
    });
