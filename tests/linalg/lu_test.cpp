#include "linalg/lu.hpp"

#include "linalg/gemm.hpp"
#include "stats/rng.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

using relperf::linalg::Matrix;
namespace linalg = relperf::linalg;

namespace {

Matrix random(std::size_t r, std::size_t c, std::uint64_t seed) {
    relperf::stats::Rng rng(seed);
    return Matrix::random_normal(r, c, rng);
}

/// Rebuilds P*A from the packed LU factors.
Matrix reconstruct_pa(const linalg::LuFactors& f) {
    const std::size_t n = f.lu.rows();
    Matrix l = Matrix::identity(n);
    Matrix u(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (j < i) l(i, j) = f.lu(i, j);
            else u(i, j) = f.lu(i, j);
        }
    }
    return linalg::multiply(l, u);
}

} // namespace

class LuRoundTrip : public testing::TestWithParam<int> {};

TEST_P(LuRoundTrip, PaEqualsLu) {
    const std::size_t n = static_cast<std::size_t>(GetParam());
    const Matrix a = random(n, n, 50 + n);
    const linalg::LuFactors f = linalg::lu_factor(a);

    const Matrix pa_expected = [&] {
        Matrix out(n, n);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) out(i, j) = a(f.perm[i], j);
        }
        return out;
    }();

    EXPECT_LT(reconstruct_pa(f).max_abs_diff(pa_expected),
              1e-10 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRoundTrip, testing::Values(1, 2, 7, 32, 100));

TEST(Lu, SolveRecoversKnownSolution) {
    const std::size_t n = 30;
    const Matrix a = random(n, n, 61);
    const Matrix x_true = random(n, 4, 62);
    const Matrix rhs = linalg::multiply(a, x_true);
    const Matrix x = linalg::solve(a, rhs);
    EXPECT_LT(x.max_abs_diff(x_true), 1e-8);
}

TEST(Lu, PivotingHandlesZeroLeadingElement) {
    Matrix a(2, 2);
    a(0, 0) = 0.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 0.0;
    Matrix rhs(2, 1);
    rhs(0, 0) = 3.0;
    rhs(1, 0) = 5.0;
    const Matrix x = linalg::solve(a, rhs);
    EXPECT_NEAR(x(0, 0), 5.0, 1e-14);
    EXPECT_NEAR(x(1, 0), 3.0, 1e-14);
}

TEST(Lu, SingularMatrixThrows) {
    Matrix a(2, 2, 1.0); // rank 1
    EXPECT_THROW((void)linalg::lu_factor(a), relperf::InvalidArgument);
}

TEST(Lu, NonSquareThrows) {
    const Matrix a(2, 3);
    EXPECT_THROW((void)linalg::lu_factor(a), relperf::InvalidArgument);
}

TEST(Lu, RhsShapeMismatchThrows) {
    const Matrix a = Matrix::identity(3);
    const linalg::LuFactors f = linalg::lu_factor(a);
    const Matrix rhs(2, 1);
    EXPECT_THROW((void)linalg::lu_solve(f, rhs), relperf::InvalidArgument);
}

TEST(LuFlops, Formula) {
    EXPECT_DOUBLE_EQ(linalg::lu_flops(3), 18.0);
}
