#include "linalg/rls.hpp"

#include "linalg/gemm.hpp"
#include "linalg/syrk.hpp"
#include "stats/rng.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

using relperf::linalg::Matrix;
namespace linalg = relperf::linalg;

namespace {

Matrix random(std::size_t r, std::size_t c, std::uint64_t seed) {
    relperf::stats::Rng rng(seed);
    return Matrix::random_normal(r, c, rng);
}

} // namespace

TEST(Rls, SolutionSatisfiesNormalEquations) {
    const std::size_t n = 40;
    const Matrix a = random(n, n, 1);
    const Matrix b = random(n, n, 2);
    const double penalty = 0.7;
    const Matrix z = linalg::rls_solve(a, b, penalty);

    // (AᵀA + pI) Z must equal AᵀB.
    Matrix lhs = linalg::gram(a);
    lhs.add_scaled_identity(penalty);
    const Matrix lz = linalg::multiply(lhs, z);
    const Matrix rhs = linalg::multiply(a.transposed(), b);
    EXPECT_LT(lz.max_abs_diff(rhs), 1e-9 * static_cast<double>(n));
}

TEST(Rls, TallSystemWorks) {
    const Matrix a = random(80, 30, 3);
    const Matrix b = random(80, 5, 4);
    const Matrix z = linalg::rls_solve(a, b, 0.5);
    EXPECT_EQ(z.rows(), 30u);
    EXPECT_EQ(z.cols(), 5u);
}

TEST(Rls, LargePenaltyShrinksSolution) {
    const Matrix a = random(25, 25, 5);
    const Matrix b = random(25, 25, 6);
    const Matrix z_small = linalg::rls_solve(a, b, 0.01);
    const Matrix z_large = linalg::rls_solve(a, b, 1e6);
    EXPECT_LT(z_large.frobenius_norm(), z_small.frobenius_norm());
    EXPECT_LT(z_large.frobenius_norm(), 1e-2); // ridge crushes the solution
}

TEST(Rls, ZeroPenaltySquareSystemSolvesExactly) {
    // Full-rank square A with penalty ~ 0: Z ~ A^{-1} B, residual ~ 0.
    const std::size_t n = 20;
    Matrix a = random(n, n, 7);
    a.add_scaled_identity(10.0); // well-conditioned
    const Matrix b = random(n, n, 8);
    const Matrix z = linalg::rls_solve(a, b, 0.0);
    EXPECT_LT(linalg::rls_residual(a, b, z), 1e-6);
}

TEST(Rls, ResidualMatchesDirectComputation) {
    const Matrix a = random(10, 10, 9);
    const Matrix b = random(10, 10, 10);
    const Matrix z = random(10, 10, 11);
    const Matrix az = linalg::multiply(a, z);
    const double expected = linalg::subtract(az, b).frobenius_norm();
    EXPECT_DOUBLE_EQ(linalg::rls_residual(a, b, z), expected);
}

TEST(Rls, ResidualIsMinimizedBySolution) {
    // Any perturbation of the RLS solution must not reduce the regularized
    // objective ||AZ - B||^2 + p ||Z||^2 (convexity check on the true
    // optimum; property-style with several perturbations).
    const Matrix a = random(15, 15, 12);
    const Matrix b = random(15, 15, 13);
    const double p = 0.3;
    const Matrix z = linalg::rls_solve(a, b, p);

    const auto objective = [&](const Matrix& zz) {
        const double r = linalg::rls_residual(a, b, zz);
        const double f = zz.frobenius_norm();
        return r * r + p * f * f;
    };
    const double at_optimum = objective(z);
    relperf::stats::Rng rng(14);
    for (int trial = 0; trial < 10; ++trial) {
        Matrix perturbed = z;
        for (double& x : perturbed.data()) x += 0.01 * rng.normal();
        EXPECT_GE(objective(perturbed), at_optimum - 1e-9);
    }
}

TEST(Rls, InvalidInputsThrow) {
    const Matrix wide(3, 5);
    const Matrix b(3, 3);
    EXPECT_THROW((void)linalg::rls_solve(wide, b, 1.0), relperf::InvalidArgument);
    const Matrix a(5, 3);
    const Matrix bad_b(4, 3);
    EXPECT_THROW((void)linalg::rls_solve(a, bad_b, 1.0), relperf::InvalidArgument);
    const Matrix ok_b(5, 2);
    EXPECT_THROW((void)linalg::rls_solve(a, ok_b, -1.0), relperf::InvalidArgument);
}

TEST(RlsFlops, PositiveAndCubicGrowth) {
    const double f50 = linalg::rls_flops(50);
    const double f100 = linalg::rls_flops(100);
    EXPECT_GT(f50, 0.0);
    // Doubling n multiplies the dominant n^3 terms by ~8.
    EXPECT_NEAR(f100 / f50, 8.0, 0.5);
}
