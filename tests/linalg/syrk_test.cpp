#include "linalg/syrk.hpp"

#include "linalg/gemm.hpp"
#include "stats/rng.hpp"

#include <gtest/gtest.h>

using relperf::linalg::Matrix;
namespace linalg = relperf::linalg;

namespace {

Matrix random(std::size_t r, std::size_t c, std::uint64_t seed) {
    relperf::stats::Rng rng(seed);
    return Matrix::random_normal(r, c, rng);
}

} // namespace

class GramAgreement : public testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GramAgreement, MatchesExplicitTransposeMultiply) {
    const auto [m, n] = GetParam();
    const Matrix a = random(m, n, 100 + m + n);
    const Matrix g = linalg::gram(a);
    const Matrix expected = linalg::multiply(a.transposed(), a);
    ASSERT_EQ(g.rows(), static_cast<std::size_t>(n));
    ASSERT_EQ(g.cols(), static_cast<std::size_t>(n));
    EXPECT_LT(g.max_abs_diff(expected), 1e-11 * m);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GramAgreement,
                         testing::Values(std::make_pair(1, 1),
                                         std::make_pair(5, 3),
                                         std::make_pair(3, 5),
                                         std::make_pair(64, 64),
                                         std::make_pair(100, 65),
                                         std::make_pair(130, 129)));

TEST(Gram, ResultIsExactlySymmetric) {
    const Matrix a = random(50, 40, 9);
    const Matrix g = linalg::gram(a);
    for (std::size_t i = 0; i < g.rows(); ++i) {
        for (std::size_t j = 0; j < i; ++j) {
            EXPECT_DOUBLE_EQ(g(i, j), g(j, i)); // mirrored, bitwise equal
        }
    }
}

TEST(Gram, DiagonalIsNonNegative) {
    const Matrix a = random(30, 30, 10);
    const Matrix g = linalg::gram(a);
    for (std::size_t i = 0; i < g.rows(); ++i) EXPECT_GE(g(i, i), 0.0);
}

TEST(Gram, ReusesOutputStorage) {
    const Matrix a = random(20, 10, 11);
    Matrix g(10, 10, 99.0); // correctly sized, dirty content
    linalg::gram(a, g);
    const Matrix expected = linalg::multiply(a.transposed(), a);
    EXPECT_LT(g.max_abs_diff(expected), 1e-11);
}

TEST(GramFlops, Formula) {
    EXPECT_DOUBLE_EQ(linalg::gram_flops(10, 4), 4.0 * 5.0 * 10.0);
}
