#include "linalg/matrix.hpp"

#include "stats/rng.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <cmath>

using relperf::linalg::Matrix;
namespace linalg = relperf::linalg;

TEST(Matrix, DefaultIsEmpty) {
    const Matrix m;
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.cols(), 0u);
    EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructsZeroInitialized) {
    const Matrix m(3, 4);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.size(), 12u);
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(m(r, c), 0.0);
    }
}

TEST(Matrix, FillConstructorAndFill) {
    Matrix m(2, 2, 7.0);
    EXPECT_DOUBLE_EQ(m(1, 1), 7.0);
    m.fill(-1.0);
    EXPECT_DOUBLE_EQ(m(0, 0), -1.0);
    m.set_zero();
    EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

TEST(Matrix, CheckedAccessThrowsOutOfRange) {
    Matrix m(2, 3);
    EXPECT_NO_THROW((void)m.at(1, 2));
    EXPECT_THROW((void)m.at(2, 0), relperf::InvalidArgument);
    EXPECT_THROW((void)m.at(0, 3), relperf::InvalidArgument);
    const Matrix& cm = m;
    EXPECT_THROW((void)cm.at(5, 5), relperf::InvalidArgument);
}

TEST(Matrix, RowSpanViewsStorage) {
    Matrix m(2, 3);
    m(1, 0) = 5.0;
    auto row = m.row(1);
    EXPECT_EQ(row.size(), 3u);
    EXPECT_DOUBLE_EQ(row[0], 5.0);
    row[2] = 9.0;
    EXPECT_DOUBLE_EQ(m(1, 2), 9.0);
    EXPECT_THROW((void)m.row(2), relperf::InvalidArgument);
}

TEST(Matrix, IdentityHasOnesOnDiagonal) {
    const Matrix eye = Matrix::identity(4);
    for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t c = 0; c < 4; ++c) {
            EXPECT_DOUBLE_EQ(eye(r, c), r == c ? 1.0 : 0.0);
        }
    }
}

TEST(Matrix, RandomUniformIsSeedDeterministicAndBounded) {
    relperf::stats::Rng a(3);
    relperf::stats::Rng b(3);
    const Matrix ma = Matrix::random_uniform(5, 7, a);
    const Matrix mb = Matrix::random_uniform(5, 7, b);
    EXPECT_TRUE(ma == mb);
    for (const double x : ma.data()) {
        EXPECT_GE(x, -1.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Matrix, TransposeRoundTrips) {
    relperf::stats::Rng rng(5);
    const Matrix m = Matrix::random_normal(37, 53, rng); // non-multiple of block
    const Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 53u);
    EXPECT_EQ(t.cols(), 37u);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < m.cols(); ++c) {
            EXPECT_DOUBLE_EQ(t(c, r), m(r, c));
        }
    }
    EXPECT_TRUE(t.transposed() == m);
}

TEST(Matrix, AddScaledIdentity) {
    Matrix m(3, 3, 1.0);
    m.add_scaled_identity(2.5);
    EXPECT_DOUBLE_EQ(m(0, 0), 3.5);
    EXPECT_DOUBLE_EQ(m(0, 1), 1.0);
    Matrix rect(2, 3);
    EXPECT_THROW(rect.add_scaled_identity(1.0), relperf::InvalidArgument);
}

TEST(Matrix, FrobeniusNormKnownValue) {
    Matrix m(2, 2);
    m(0, 0) = 3.0;
    m(1, 1) = 4.0;
    EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
    EXPECT_DOUBLE_EQ(Matrix(3, 3).frobenius_norm(), 0.0);
}

TEST(Matrix, FrobeniusNormIsOverflowSafe) {
    Matrix m(1, 2);
    m(0, 0) = 1e200;
    m(0, 1) = 1e200;
    EXPECT_NEAR(m.frobenius_norm() / (std::sqrt(2.0) * 1e200), 1.0, 1e-12);
}

TEST(Matrix, MaxAbsDiffAndEquality) {
    Matrix a(2, 2, 1.0);
    Matrix b(2, 2, 1.0);
    EXPECT_TRUE(a == b);
    b(1, 0) = 1.25;
    EXPECT_FALSE(a == b);
    EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.25);
    const Matrix c(2, 3);
    EXPECT_THROW((void)a.max_abs_diff(c), relperf::InvalidArgument);
}

TEST(Matrix, AddAndSubtract) {
    Matrix a(2, 2, 3.0);
    Matrix b(2, 2, 1.0);
    const Matrix sum = linalg::add(a, b);
    const Matrix diff = linalg::subtract(a, b);
    EXPECT_DOUBLE_EQ(sum(0, 0), 4.0);
    EXPECT_DOUBLE_EQ(diff(1, 1), 2.0);
    const Matrix c(2, 3);
    EXPECT_THROW((void)linalg::add(a, c), relperf::InvalidArgument);
    EXPECT_THROW((void)linalg::subtract(a, c), relperf::InvalidArgument);
}
