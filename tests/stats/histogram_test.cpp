#include "stats/histogram.hpp"

#include "stats/rng.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace stats = relperf::stats;

TEST(Histogram, CountsFallIntoCorrectBins) {
    const std::vector<double> xs = {0.1, 0.1, 0.6, 1.4, 1.9};
    const stats::Histogram h(xs, 0.0, 2.0, 4); // bins of width 0.5
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.count(3), 1u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, OutOfRangeValuesClampToEdgeBins) {
    const std::vector<double> xs = {-5.0, 10.0, 1.0};
    const stats::Histogram h(xs, 0.0, 2.0, 2);
    EXPECT_EQ(h.count(0), 1u); // -5 clamped low
    EXPECT_EQ(h.count(1), 2u); // 10 clamped high, 1.0 in upper half
}

TEST(Histogram, TopEdgeBelongsToLastBin) {
    const std::vector<double> xs = {2.0};
    const stats::Histogram h(xs, 0.0, 2.0, 4);
    EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, DensitySumsToOne) {
    stats::Rng rng(5);
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i) xs.push_back(rng.normal(0.0, 1.0));
    const stats::Histogram h = stats::Histogram::automatic(xs);
    double total = 0.0;
    for (std::size_t b = 0; b < h.bin_count(); ++b) total += h.density(b);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, BinCentersAreMidpoints) {
    const std::vector<double> xs = {0.5};
    const stats::Histogram h(xs, 0.0, 4.0, 4);
    EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
    EXPECT_DOUBLE_EQ(h.bin_center(3), 3.5);
}

TEST(Histogram, AutomaticHandlesDegenerateSample) {
    const std::vector<double> xs = {3.0, 3.0, 3.0};
    const stats::Histogram h = stats::Histogram::automatic(xs);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_GE(h.bin_count(), 1u);
}

TEST(Histogram, FdBinCountGrowsWithSampleSize) {
    stats::Rng rng(7);
    std::vector<double> small;
    std::vector<double> large;
    for (int i = 0; i < 3000; ++i) {
        const double x = rng.normal(0.0, 1.0);
        if (i < 100) small.push_back(x);
        large.push_back(x);
    }
    const std::size_t bins_small = stats::Histogram::fd_bin_count(small, -4, 4);
    const std::size_t bins_large = stats::Histogram::fd_bin_count(large, -4, 4);
    EXPECT_GT(bins_large, bins_small);
}

TEST(Histogram, InvalidArgumentsThrow) {
    const std::vector<double> xs = {1.0};
    const std::vector<double> empty;
    EXPECT_THROW(stats::Histogram(empty, 0, 1, 4), relperf::InvalidArgument);
    EXPECT_THROW(stats::Histogram(xs, 0, 1, 0), relperf::InvalidArgument);
    EXPECT_THROW(stats::Histogram(xs, 1, 1, 4), relperf::InvalidArgument);
    const stats::Histogram h(xs, 0, 1, 2);
    EXPECT_THROW((void)h.count(2), relperf::InvalidArgument);
}

TEST(Histogram, AsciiRenderShowsBarsAndCounts) {
    const std::vector<double> xs = {0.25, 0.25, 0.75};
    const stats::Histogram h(xs, 0.0, 1.0, 2);
    const std::string out = h.render_ascii(10, "title");
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("##########"), std::string::npos); // peak bin full width
    EXPECT_NE(out.find("(2)"), std::string::npos);
    EXPECT_NE(out.find("(1)"), std::string::npos);
}
