#include "stats/hypothesis.hpp"

#include "stats/rng.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace stats = relperf::stats;

namespace {

std::vector<double> normal_sample(double mean, double sd, int n, std::uint64_t seed) {
    stats::Rng rng(seed);
    std::vector<double> out;
    out.reserve(n);
    for (int i = 0; i < n; ++i) out.push_back(rng.normal(mean, sd));
    return out;
}

} // namespace

TEST(NormalSurvival, ReferenceValues) {
    EXPECT_NEAR(stats::normal_survival(0.0), 0.5, 1e-12);
    EXPECT_NEAR(stats::normal_survival(1.96), 0.0249979, 1e-6);
    EXPECT_NEAR(stats::normal_survival(-1.0), 0.8413447, 1e-6);
}

TEST(KolmogorovSurvival, ReferenceValues) {
    EXPECT_NEAR(stats::kolmogorov_survival(0.0), 1.0, 1e-12);
    // Q(1.0) ~ 0.26999967; Q(1.36) ~ 0.049.
    EXPECT_NEAR(stats::kolmogorov_survival(1.0), 0.26999967, 1e-6);
    EXPECT_NEAR(stats::kolmogorov_survival(1.36), 0.0491, 5e-4);
    EXPECT_LT(stats::kolmogorov_survival(3.0), 1e-6);
}

TEST(MannWhitney, ShiftedSamplesAreSignificant) {
    const auto a = normal_sample(0.0, 1.0, 60, 1);
    const auto b = normal_sample(1.5, 1.0, 60, 2);
    const stats::TestResult res = stats::mann_whitney_u(a, b);
    EXPECT_LT(res.p_value, 1e-6);
    EXPECT_LT(res.z, 0.0); // a has lower ranks -> negative z for U_a below mean
}

TEST(MannWhitney, IdenticalDistributionsAreNotSignificant) {
    const auto a = normal_sample(0.0, 1.0, 80, 3);
    const auto b = normal_sample(0.0, 1.0, 80, 4);
    const stats::TestResult res = stats::mann_whitney_u(a, b);
    EXPECT_GT(res.p_value, 0.05);
}

TEST(MannWhitney, AllTiedValuesGiveP1) {
    const std::vector<double> a = {1.0, 1.0, 1.0};
    const std::vector<double> b = {1.0, 1.0, 1.0, 1.0};
    const stats::TestResult res = stats::mann_whitney_u(a, b);
    EXPECT_DOUBLE_EQ(res.p_value, 1.0);
    EXPECT_DOUBLE_EQ(res.z, 0.0);
}

TEST(MannWhitney, UStatisticSymmetry) {
    const auto a = normal_sample(0.0, 1.0, 30, 5);
    const auto b = normal_sample(0.2, 1.0, 40, 6);
    const stats::TestResult ab = stats::mann_whitney_u(a, b);
    const stats::TestResult ba = stats::mann_whitney_u(b, a);
    // U_a + U_b = n * m.
    EXPECT_NEAR(ab.statistic + ba.statistic, 30.0 * 40.0, 1e-9);
    EXPECT_NEAR(ab.p_value, ba.p_value, 1e-9);
}

TEST(Ks, ShiftedSamplesAreSignificant) {
    const auto a = normal_sample(0.0, 1.0, 100, 7);
    const auto b = normal_sample(1.0, 1.0, 100, 8);
    const stats::TestResult res = stats::kolmogorov_smirnov(a, b);
    EXPECT_GT(res.statistic, 0.3);
    EXPECT_LT(res.p_value, 1e-4);
}

TEST(Ks, IdenticalSamplesGiveDZero) {
    const std::vector<double> xs = {1.0, 2.0, 3.0};
    const stats::TestResult res = stats::kolmogorov_smirnov(xs, xs);
    EXPECT_DOUBLE_EQ(res.statistic, 0.0);
    EXPECT_NEAR(res.p_value, 1.0, 1e-9);
}

TEST(Ks, DisjointSamplesGiveDOne) {
    const std::vector<double> a = {1.0, 2.0};
    const std::vector<double> b = {10.0, 20.0};
    const stats::TestResult res = stats::kolmogorov_smirnov(a, b);
    EXPECT_DOUBLE_EQ(res.statistic, 1.0);
}

TEST(CliffsDelta, KnownValues) {
    const std::vector<double> a = {1.0, 2.0};
    const std::vector<double> b = {3.0, 4.0};
    EXPECT_DOUBLE_EQ(stats::cliffs_delta(a, b), 1.0);  // a always smaller
    EXPECT_DOUBLE_EQ(stats::cliffs_delta(b, a), -1.0); // reversed
    EXPECT_DOUBLE_EQ(stats::cliffs_delta(a, a), 0.0);  // symmetric ties
}

TEST(CliffsDelta, PartialOverlap) {
    const std::vector<double> a = {1.0, 3.0};
    const std::vector<double> b = {2.0, 4.0};
    // pairs: (1<2),(1<4),(3>2),(3<4) -> (3 - 1) / 4 = 0.5
    EXPECT_DOUBLE_EQ(stats::cliffs_delta(a, b), 0.5);
}

TEST(HodgesLehmann, RecoversShift) {
    const auto a = normal_sample(0.0, 1.0, 60, 9);
    std::vector<double> b = a;
    for (double& x : b) x += 2.5;
    EXPECT_NEAR(stats::hodges_lehmann_shift(a, b), 2.5, 1e-9);
}

TEST(Hypothesis, EmptyInputsThrow) {
    const std::vector<double> empty;
    const std::vector<double> xs = {1.0};
    EXPECT_THROW((void)stats::mann_whitney_u(empty, xs), relperf::InvalidArgument);
    EXPECT_THROW((void)stats::kolmogorov_smirnov(xs, empty), relperf::InvalidArgument);
    EXPECT_THROW((void)stats::cliffs_delta(empty, xs), relperf::InvalidArgument);
    EXPECT_THROW((void)stats::hodges_lehmann_shift(xs, empty), relperf::InvalidArgument);
}
