#include "stats/bootstrap.hpp"

#include "stats/descriptive.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace stats = relperf::stats;

TEST(Resample, ProducesRequestedSizeFromSourceValues) {
    const std::vector<double> xs = {1.0, 2.0, 3.0};
    stats::Rng rng(1);
    const std::vector<double> r = stats::resample(xs, 10, rng);
    ASSERT_EQ(r.size(), 10u);
    for (const double v : r) {
        EXPECT_TRUE(v == 1.0 || v == 2.0 || v == 3.0);
    }
}

TEST(Resample, IsSeedDeterministic) {
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    stats::Rng a(42);
    stats::Rng b(42);
    EXPECT_EQ(stats::resample(xs, 20, a), stats::resample(xs, 20, b));
}

TEST(Resample, EventuallyDrawsEveryElement) {
    const std::vector<double> xs = {1.0, 2.0, 3.0};
    stats::Rng rng(7);
    const std::vector<double> r = stats::resample(xs, 1000, rng);
    for (const double v : xs) {
        EXPECT_NE(std::find(r.begin(), r.end(), v), r.end());
    }
}

TEST(Resample, InvalidInputsThrow) {
    const std::vector<double> empty;
    const std::vector<double> xs = {1.0};
    stats::Rng rng(1);
    EXPECT_THROW((void)stats::resample(empty, 5, rng), relperf::InvalidArgument);
    EXPECT_THROW((void)stats::resample(xs, 0, rng), relperf::InvalidArgument);
}

TEST(BootstrapDistribution, MeanStatisticCentersOnSampleMean) {
    std::vector<double> xs;
    stats::Rng gen(9);
    for (int i = 0; i < 200; ++i) xs.push_back(gen.normal(5.0, 1.0));
    const double sample_mean = stats::mean(xs);

    stats::Rng rng(10);
    const std::vector<double> dist = stats::bootstrap_distribution(
        xs, [](std::span<const double> s) { return stats::mean(s); }, 500, rng);
    ASSERT_EQ(dist.size(), 500u);
    EXPECT_NEAR(stats::mean(dist), sample_mean, 0.02);
    // Bootstrap SE of the mean ~ sd/sqrt(n).
    EXPECT_NEAR(stats::stddev(dist), stats::stddev(xs) / std::sqrt(200.0), 0.02);
}

TEST(BootstrapCi, CoversTheSampleStatistic) {
    std::vector<double> xs;
    stats::Rng gen(12);
    for (int i = 0; i < 100; ++i) xs.push_back(gen.lognormal(0.0, 0.5));
    stats::Rng rng(13);
    const stats::Interval ci = stats::bootstrap_ci(
        xs, [](std::span<const double> s) { return stats::median(s); }, 1000, 0.05,
        rng);
    const double observed = stats::median(xs);
    EXPECT_LE(ci.lo, observed);
    EXPECT_GE(ci.hi, observed);
    EXPECT_LT(ci.lo, ci.hi);
    EXPECT_FALSE(ci.excludes(observed));
    EXPECT_TRUE(ci.excludes(ci.hi + 1.0));
}

TEST(BootstrapCi, InvalidAlphaThrows) {
    const std::vector<double> xs = {1.0, 2.0};
    stats::Rng rng(1);
    const auto stat = [](std::span<const double> s) { return stats::mean(s); };
    EXPECT_THROW((void)stats::bootstrap_ci(xs, stat, 10, 0.0, rng),
                 relperf::InvalidArgument);
    EXPECT_THROW((void)stats::bootstrap_ci(xs, stat, 10, 1.0, rng),
                 relperf::InvalidArgument);
}

TEST(BootstrapDistribution, ZeroRoundsThrows) {
    const std::vector<double> xs = {1.0, 2.0};
    stats::Rng rng(1);
    EXPECT_THROW((void)stats::bootstrap_distribution(
                     xs, [](std::span<const double> s) { return stats::mean(s); }, 0,
                     rng),
                 relperf::InvalidArgument);
}
