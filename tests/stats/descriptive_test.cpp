#include "stats/descriptive.hpp"

#include "stats/rng.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace stats = relperf::stats;

TEST(RunningStats, MatchesDirectComputation) {
    const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    stats::RunningStats acc;
    for (const double x : xs) acc.add(x);
    EXPECT_EQ(acc.count(), xs.size());
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12); // unbiased
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSinglePass) {
    stats::Rng rng(3);
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i) xs.push_back(rng.normal(3.0, 2.0));

    stats::RunningStats whole;
    for (const double x : xs) whole.add(x);

    stats::RunningStats left;
    stats::RunningStats right;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        (i < 400 ? left : right).add(xs[i]);
    }
    left.merge(right);

    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
    stats::RunningStats a;
    a.add(1.0);
    a.add(3.0);
    stats::RunningStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    stats::RunningStats b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Descriptive, MeanAndVariance) {
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(stats::mean(xs), 2.5);
    EXPECT_NEAR(stats::variance(xs), 5.0 / 3.0, 1e-12);
    EXPECT_NEAR(stats::stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Descriptive, EmptyInputThrows) {
    const std::vector<double> empty;
    EXPECT_THROW((void)stats::mean(empty), relperf::InvalidArgument);
    EXPECT_THROW((void)stats::variance(empty), relperf::InvalidArgument);
    EXPECT_THROW((void)stats::median(empty), relperf::InvalidArgument);
    EXPECT_THROW((void)stats::summarize(empty), relperf::InvalidArgument);
}

// Type-7 quantile references computed with numpy.quantile (default method).
TEST(Quantile, MatchesNumpyType7) {
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 10.0};
    EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.25), 2.0);
    EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.75), 4.0);
    EXPECT_DOUBLE_EQ(stats::quantile(xs, 1.0), 10.0);
    EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.1), 1.4);
    EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.9), 7.6);
}

TEST(Quantile, SingleElement) {
    const std::vector<double> xs = {5.0};
    EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.0), 5.0);
    EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(stats::quantile(xs, 1.0), 5.0);
}

TEST(Quantile, UnsortedInputToSortedFunctionThrows) {
    const std::vector<double> xs = {3.0, 1.0, 2.0};
    EXPECT_THROW((void)stats::quantile_sorted(xs, 0.5), relperf::InvalidArgument);
}

TEST(Quantile, OutOfRangePThrows) {
    const std::vector<double> xs = {1.0, 2.0};
    EXPECT_THROW((void)stats::quantile(xs, -0.1), relperf::InvalidArgument);
    EXPECT_THROW((void)stats::quantile(xs, 1.1), relperf::InvalidArgument);
}

TEST(Quantile, PartialSelectionMatchesFullSortBitForBit) {
    // quantile_partial promises the exact double of quantile_sorted, not a
    // close one — the bootstrap comparator's bit-identity rests on it.
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        stats::Rng rng(seed);
        const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_index(200));
        std::vector<double> xs;
        xs.reserve(n);
        for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.lognormal(0.0, 0.7));
        const std::vector<double> sorted = stats::sorted_copy(xs);
        for (const double p : {0.0, 0.03, 0.25, 0.5, 0.77, 0.95, 1.0}) {
            std::vector<double> scratch = xs; // reordered in place
            EXPECT_EQ(stats::quantile_partial(scratch, p),
                      stats::quantile_sorted(sorted, p))
                << "seed " << seed << " n " << n << " p " << p;
        }
    }
}

TEST(Quantile, PartialSelectionValidatesInput) {
    std::vector<double> empty;
    EXPECT_THROW((void)stats::quantile_partial(empty, 0.5),
                 relperf::InvalidArgument);
    std::vector<double> xs = {1.0, 2.0};
    EXPECT_THROW((void)stats::quantile_partial(xs, -0.1),
                 relperf::InvalidArgument);
    EXPECT_THROW((void)stats::quantile_partial(xs, 1.1),
                 relperf::InvalidArgument);
}

class QuantileMonotonicity : public testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileMonotonicity, QuantileIsMonotoneInP) {
    stats::Rng rng(GetParam());
    std::vector<double> xs;
    for (int i = 0; i < 57; ++i) xs.push_back(rng.lognormal(0.0, 1.0));
    const std::vector<double> sorted = stats::sorted_copy(xs);
    double prev = -1.0;
    for (double p = 0.0; p <= 1.0; p += 0.05) {
        const double q = stats::quantile_sorted(sorted, p);
        EXPECT_GE(q, prev);
        prev = q;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotonicity,
                         testing::Values(1, 2, 3, 10, 99, 12345));

TEST(Median, EvenAndOddCounts) {
    EXPECT_DOUBLE_EQ(stats::median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(stats::median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Mad, KnownValue) {
    // median = 3, |x - 3| = {2,1,0,1,2}, median = 1 -> MAD = 1.4826 * 1.0,
    // exactly: the deviations' median is the integer 1, so the consistency
    // constant passes through untouched (pins the single-sort rewrite).
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(stats::mad(xs), 1.4826);
    // Unsorted input, even count: median = 2.5, deviations {1.5,0.5,0.5,1.5},
    // their median 1.0 -> again exactly the constant.
    const std::vector<double> ys = {4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(stats::mad(ys), 1.4826);
}

TEST(TrimmedMean, DropsTails) {
    const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0, 100.0};
    // 20% trim drops one element per tail: mean(1,2,3) = 2.
    EXPECT_DOUBLE_EQ(stats::trimmed_mean(xs, 0.2), 2.0);
    // No trim = plain mean.
    EXPECT_DOUBLE_EQ(stats::trimmed_mean(xs, 0.0), stats::mean(xs));
}

TEST(TrimmedMean, InvalidTrimThrows) {
    const std::vector<double> xs = {1.0, 2.0};
    EXPECT_THROW((void)stats::trimmed_mean(xs, 0.5), relperf::InvalidArgument);
    EXPECT_THROW((void)stats::trimmed_mean(xs, -0.1), relperf::InvalidArgument);
}

TEST(GeometricMean, KnownValueAndPositivityCheck) {
    const std::vector<double> xs = {1.0, 4.0, 16.0};
    EXPECT_NEAR(stats::geometric_mean(xs), 4.0, 1e-12);
    const std::vector<double> bad = {1.0, 0.0};
    EXPECT_THROW((void)stats::geometric_mean(bad), relperf::InvalidArgument);
}

TEST(Summarize, AllFieldsPopulated) {
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
    const stats::Summary s = stats::summarize(xs);
    EXPECT_EQ(s.count, 8u);
    EXPECT_DOUBLE_EQ(s.mean, 4.5);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 8.0);
    EXPECT_DOUBLE_EQ(s.median, 4.5);
    EXPECT_DOUBLE_EQ(s.q25, 2.75);
    EXPECT_DOUBLE_EQ(s.q75, 6.25);
    EXPECT_GT(s.stddev, 0.0);
    EXPECT_NEAR(s.cv, s.stddev / s.mean, 1e-15);
}

TEST(NormalQuantile, PinsTextbookCriticalValues) {
    // Abramowitz & Stegun 26.2.3-grade values, pinned to 1e-9 (the Acklam
    // approximation plus one Halley refinement is good to ~1e-15).
    EXPECT_NEAR(stats::normal_quantile(0.5), 0.0, 1e-12);
    EXPECT_NEAR(stats::normal_quantile(0.8), 0.8416212335729143, 1e-9);
    EXPECT_NEAR(stats::normal_quantile(0.95), 1.6448536269514722, 1e-9);
    EXPECT_NEAR(stats::normal_quantile(0.975), 1.959963984540054, 1e-9);
    EXPECT_NEAR(stats::normal_quantile(0.999), 3.090232306167814, 1e-9);
}

TEST(NormalQuantile, SymmetricAndMonotone) {
    for (const double p : {0.6, 0.75, 0.9, 0.99, 0.9999}) {
        EXPECT_NEAR(stats::normal_quantile(1.0 - p), -stats::normal_quantile(p),
                    1e-9);
    }
    double previous = stats::normal_quantile(0.01);
    for (double p = 0.02; p < 1.0; p += 0.01) {
        const double q = stats::normal_quantile(p);
        EXPECT_GT(q, previous) << "p = " << p;
        previous = q;
    }
}

TEST(NormalQuantile, RejectsOutOfRangeProbabilities) {
    EXPECT_THROW((void)stats::normal_quantile(0.0), relperf::InvalidArgument);
    EXPECT_THROW((void)stats::normal_quantile(1.0), relperf::InvalidArgument);
    EXPECT_THROW((void)stats::normal_quantile(-0.5), relperf::InvalidArgument);
    EXPECT_THROW((void)stats::normal_quantile(1.5), relperf::InvalidArgument);
}
