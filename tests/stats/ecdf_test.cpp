#include "stats/ecdf.hpp"

#include "stats/rng.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace stats = relperf::stats;
using stats::EmpiricalDistribution;

TEST(Ecdf, SortsAndExposesExtremes) {
    const std::vector<double> xs = {3.0, 1.0, 2.0};
    const EmpiricalDistribution d(xs);
    EXPECT_EQ(d.size(), 3u);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 3.0);
    EXPECT_TRUE(std::is_sorted(d.sorted().begin(), d.sorted().end()));
}

TEST(Ecdf, EmptySampleThrows) {
    const std::vector<double> empty;
    EXPECT_THROW(EmpiricalDistribution{empty}, relperf::InvalidArgument);
}

TEST(Ecdf, CdfStepsCorrectly) {
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    const EmpiricalDistribution d(xs);
    EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
    EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.25);
    EXPECT_DOUBLE_EQ(d.cdf(2.5), 0.5);
    EXPECT_DOUBLE_EQ(d.cdf(4.0), 1.0);
    EXPECT_DOUBLE_EQ(d.cdf(99.0), 1.0);
}

TEST(Ecdf, ProbLessThanDisjointSamples) {
    const EmpiricalDistribution fast(std::vector<double>{1.0, 2.0, 3.0});
    const EmpiricalDistribution slow(std::vector<double>{10.0, 20.0});
    EXPECT_DOUBLE_EQ(fast.prob_less_than(slow), 1.0);
    EXPECT_DOUBLE_EQ(slow.prob_less_than(fast), 0.0);
}

TEST(Ecdf, ProbLessThanIdenticalIsHalf) {
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    const EmpiricalDistribution a(xs);
    const EmpiricalDistribution b(xs);
    EXPECT_DOUBLE_EQ(a.prob_less_than(b), 0.5);
}

TEST(Ecdf, ProbLessThanHandlesTies) {
    const EmpiricalDistribution a(std::vector<double>{1.0, 1.0});
    const EmpiricalDistribution b(std::vector<double>{1.0});
    EXPECT_DOUBLE_EQ(a.prob_less_than(b), 0.5);
}

TEST(Ecdf, ProbLessThanComplementarity) {
    stats::Rng rng(11);
    std::vector<double> xs;
    std::vector<double> ys;
    for (int i = 0; i < 101; ++i) {
        xs.push_back(rng.normal(0.0, 1.0));
        ys.push_back(rng.normal(0.3, 1.5));
    }
    const EmpiricalDistribution a(xs);
    const EmpiricalDistribution b(ys);
    EXPECT_NEAR(a.prob_less_than(b) + b.prob_less_than(a), 1.0, 1e-12);
}

TEST(Ecdf, OverlapIdenticalIsOne) {
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
    const EmpiricalDistribution a(xs);
    const EmpiricalDistribution b(xs);
    EXPECT_NEAR(a.overlap(b), 1.0, 1e-12);
}

TEST(Ecdf, OverlapDisjointIsZero) {
    const EmpiricalDistribution a(std::vector<double>{1.0, 2.0});
    const EmpiricalDistribution b(std::vector<double>{100.0, 101.0});
    EXPECT_NEAR(a.overlap(b), 0.0, 1e-12);
}

TEST(Ecdf, OverlapPartialIsBetween) {
    stats::Rng rng(21);
    std::vector<double> xs;
    std::vector<double> ys;
    for (int i = 0; i < 2000; ++i) {
        xs.push_back(rng.normal(0.0, 1.0));
        ys.push_back(rng.normal(1.0, 1.0)); // 1 sigma apart
    }
    const EmpiricalDistribution a(xs);
    const EmpiricalDistribution b(ys);
    const double ov = a.overlap(b);
    EXPECT_GT(ov, 0.4);
    EXPECT_LT(ov, 0.8);
}

TEST(Ecdf, QuantileMatchesDescriptive) {
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 10.0};
    const EmpiricalDistribution d(xs);
    EXPECT_DOUBLE_EQ(d.quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(d.quantile(0.9), 7.6);
}
