#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

using relperf::stats::Rng;
using relperf::stats::SplitMix64;
using relperf::stats::Xoshiro256pp;

TEST(SplitMix64, KnownSequenceFromSeedZero) {
    // Reference values from the published splitmix64 algorithm.
    SplitMix64 sm(0);
    EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
    EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Xoshiro, DeterministicForEqualSeeds) {
    Xoshiro256pp a(42);
    Xoshiro256pp b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
    Xoshiro256pp a(1);
    Xoshiro256pp b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Xoshiro, JumpChangesStream) {
    Xoshiro256pp a(7);
    Xoshiro256pp b(7);
    b.jump();
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformIsInUnitInterval) {
    Rng rng(123);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.0, 3.0);
        EXPECT_GE(u, -2.0);
        EXPECT_LT(u, 3.0);
    }
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
    Rng rng(99);
    constexpr std::uint64_t n = 10;
    std::vector<int> counts(n, 0);
    constexpr int draws = 100000;
    for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(n)];
    // Every bucket within 10% of the expected count (very loose, 5+ sigma).
    for (const int c : counts) {
        EXPECT_NEAR(c, draws / static_cast<int>(n), draws / static_cast<int>(n) / 10);
    }
}

TEST(Rng, UniformIndexZeroAndOne) {
    Rng rng(1);
    EXPECT_EQ(rng.uniform_index(0), 0u);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, NormalMomentsAreCorrect) {
    Rng rng(2024);
    constexpr int n = 200000;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, LognormalMeanMatchesFormula) {
    Rng rng(77);
    const double sigma = 0.5;
    const double mu = -0.5 * sigma * sigma; // makes E[X] = 1
    double sum = 0.0;
    constexpr int n = 200000;
    for (int i = 0; i < n; ++i) sum += rng.lognormal(mu, sigma);
    EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
    Rng rng(31);
    const double lambda = 4.0;
    double sum = 0.0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.exponential(lambda);
    EXPECT_NEAR(sum / n, 1.0 / lambda, 0.01);
}

TEST(Rng, ParetoRespectsScaleAndMean) {
    Rng rng(13);
    const double xm = 1.0;
    const double alpha = 3.0;
    double sum = 0.0;
    constexpr int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.pareto(xm, alpha);
        EXPECT_GE(x, xm);
        sum += x;
    }
    // E[X] = alpha * xm / (alpha - 1) = 1.5.
    EXPECT_NEAR(sum / n, 1.5, 0.05);
}

TEST(Rng, BernoulliRateIsRespected) {
    Rng rng(8);
    const double p = 0.3;
    int hits = 0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i) hits += rng.bernoulli(p) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(Rng, ShuffleProducesPermutation) {
    Rng rng(44);
    std::vector<int> v(20);
    std::iota(v.begin(), v.end(), 0);
    rng.shuffle(v);
    std::vector<int> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 20; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, ShuffleIsSeedDeterministic) {
    std::vector<int> a(50);
    std::vector<int> b(50);
    std::iota(a.begin(), a.end(), 0);
    std::iota(b.begin(), b.end(), 0);
    Rng ra(9);
    Rng rb(9);
    ra.shuffle(a);
    rb.shuffle(b);
    EXPECT_EQ(a, b);
}

TEST(Rng, ChildStreamsAreIndependent) {
    const Rng parent(1234);
    Rng c0 = parent.child(0);
    Rng c1 = parent.child(1);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (c0.bits() == c1.bits()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, ChildIsDeterministic) {
    const Rng parent(1234);
    Rng a = parent.child(7);
    Rng b = parent.child(7);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(a.bits(), b.bits());
}
