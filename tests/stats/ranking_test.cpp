#include "stats/ranking.hpp"

#include "stats/rng.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace stats = relperf::stats;

TEST(Midrank, NoTies) {
    const std::vector<double> xs = {30.0, 10.0, 20.0};
    const std::vector<double> ranks = stats::midrank(xs);
    EXPECT_EQ(ranks, (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(Midrank, TiesGetAverageRank) {
    const std::vector<double> xs = {1.0, 2.0, 2.0, 3.0};
    const std::vector<double> ranks = stats::midrank(xs);
    EXPECT_EQ(ranks, (std::vector<double>{1.0, 2.5, 2.5, 4.0}));
}

TEST(KendallTau, PerfectAgreementAndReversal) {
    const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
    const std::vector<double> up = {10.0, 20.0, 30.0, 40.0};
    const std::vector<double> down = {40.0, 30.0, 20.0, 10.0};
    EXPECT_DOUBLE_EQ(stats::kendall_tau_b(a, up), 1.0);
    EXPECT_DOUBLE_EQ(stats::kendall_tau_b(a, down), -1.0);
}

TEST(KendallTau, KnownPartialValue) {
    // Pairs: (1,2):C (1,3):C (1,4):C (2,3):D (2,4):C (3,4):C -> (5-1)/6.
    const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
    const std::vector<double> b = {1.0, 3.0, 2.0, 4.0};
    EXPECT_NEAR(stats::kendall_tau_b(a, b), 4.0 / 6.0, 1e-12);
}

TEST(KendallTau, TiesReduceMagnitude) {
    const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
    const std::vector<double> tied = {1.0, 1.0, 2.0, 3.0};
    const double tau = stats::kendall_tau_b(a, tied);
    EXPECT_GT(tau, 0.8);
    EXPECT_LT(tau, 1.0);
}

TEST(KendallTau, ConstantVectorGivesZero) {
    const std::vector<double> a = {1.0, 2.0, 3.0};
    const std::vector<double> constant = {5.0, 5.0, 5.0};
    EXPECT_DOUBLE_EQ(stats::kendall_tau_b(a, constant), 0.0);
}

TEST(SpearmanRho, MonotoneNonlinearIsPerfect) {
    const std::vector<double> a = {1.0, 2.0, 3.0, 4.0, 5.0};
    const std::vector<double> b = {1.0, 8.0, 27.0, 64.0, 125.0}; // cubes
    EXPECT_NEAR(stats::spearman_rho(a, b), 1.0, 1e-12);
    const std::vector<double> neg = {125.0, 64.0, 27.0, 8.0, 1.0};
    EXPECT_NEAR(stats::spearman_rho(a, neg), -1.0, 1e-12);
}

TEST(SpearmanRho, IndependentIsNearZero) {
    stats::Rng rng(3);
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 2000; ++i) {
        a.push_back(rng.normal());
        b.push_back(rng.normal());
    }
    EXPECT_NEAR(stats::spearman_rho(a, b), 0.0, 0.05);
}

TEST(PairwiseDisagreement, CountsFlippedPairs) {
    const std::vector<double> a = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(stats::pairwise_disagreement(a, a), 0.0);
    const std::vector<double> rev = {3.0, 2.0, 1.0};
    EXPECT_DOUBLE_EQ(stats::pairwise_disagreement(a, rev), 1.0);
    // One of three strict pairs flipped.
    const std::vector<double> one_flip = {2.0, 1.0, 3.0};
    EXPECT_NEAR(stats::pairwise_disagreement(a, one_flip), 1.0 / 3.0, 1e-12);
}

TEST(PairwiseDisagreement, TiesInPredictionCountAsDisagreement) {
    const std::vector<double> a = {1.0, 2.0};
    const std::vector<double> tied = {5.0, 5.0};
    EXPECT_DOUBLE_EQ(stats::pairwise_disagreement(a, tied), 1.0);
}

TEST(RandIndex, IdenticalPartitionsScoreOne) {
    const std::vector<int> labels = {1, 1, 2, 2, 3};
    EXPECT_DOUBLE_EQ(stats::rand_index(labels, labels), 1.0);
    EXPECT_DOUBLE_EQ(stats::adjusted_rand_index(labels, labels), 1.0);
}

TEST(RandIndex, RelabeledPartitionsScoreOne) {
    const std::vector<int> a = {1, 1, 2, 2};
    const std::vector<int> b = {7, 7, 3, 3}; // same structure, new names
    EXPECT_DOUBLE_EQ(stats::rand_index(a, b), 1.0);
    EXPECT_DOUBLE_EQ(stats::adjusted_rand_index(a, b), 1.0);
}

TEST(RandIndex, KnownPartialValue) {
    // a: {0,1},{2,3}; b: {0},{1,2,3}. Pairs: (0,1) same-a/split-b,
    // (0,2) split/split, (0,3) split/split, (1,2) split/same, (1,3)
    // split/same, (2,3) same/same -> agreements 3 of 6.
    const std::vector<int> a = {1, 1, 2, 2};
    const std::vector<int> b = {1, 2, 2, 2};
    EXPECT_DOUBLE_EQ(stats::rand_index(a, b), 0.5);
}

TEST(RandIndex, AdjustedHandlesDegeneratePartitions) {
    const std::vector<int> ones = {1, 1, 1};
    const std::vector<int> singletons = {1, 2, 3};
    EXPECT_DOUBLE_EQ(stats::adjusted_rand_index(ones, ones), 1.0);
    EXPECT_DOUBLE_EQ(stats::adjusted_rand_index(singletons, singletons), 1.0);
    // All-in-one vs all-singletons: no agreement beyond chance.
    EXPECT_LE(stats::adjusted_rand_index(ones, singletons), 0.0);
}

TEST(RandIndex, InvalidInputsThrow) {
    const std::vector<int> a = {1, 2};
    const std::vector<int> short_b = {1};
    EXPECT_THROW((void)stats::rand_index(a, short_b), relperf::InvalidArgument);
    EXPECT_THROW((void)stats::adjusted_rand_index(a, short_b),
                 relperf::InvalidArgument);
}

TEST(Ranking, InvalidInputsThrow) {
    const std::vector<double> a = {1.0, 2.0};
    const std::vector<double> short_b = {1.0};
    EXPECT_THROW((void)stats::kendall_tau_b(a, short_b), relperf::InvalidArgument);
    EXPECT_THROW((void)stats::spearman_rho(a, short_b), relperf::InvalidArgument);
    EXPECT_THROW((void)stats::pairwise_disagreement(a, short_b),
                 relperf::InvalidArgument);
    const std::vector<double> single = {1.0};
    EXPECT_THROW((void)stats::kendall_tau_b(single, single),
                 relperf::InvalidArgument);
}
