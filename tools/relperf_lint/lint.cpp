#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace relperf::lint {

namespace fs = std::filesystem;

const char* to_string(Severity severity) noexcept {
    return severity == Severity::Error ? "error" : "warning";
}

std::string Diagnostic::str() const {
    std::ostringstream out;
    out << file << ':' << line << ": " << to_string(severity) << ": ["
        << rule << "] " << message;
    return out.str();
}

const std::vector<RuleInfo>& rules() {
    static const std::vector<RuleInfo> table = {
        {"banned-random", Severity::Error,
         "nondeterministic randomness source (random_device/rand/srand/...); "
         "use a seeded stats::Rng stream"},
        {"banned-clock", Severity::Error,
         "wall-clock read outside a sanctioned timing site "
         "(time/clock/chrono ::now/omp_get_wtime)"},
        {"unordered-output", Severity::Warning,
         "unordered-container iteration feeding an output sink; iteration "
         "order is implementation-defined"},
        {"float-precision", Severity::Error,
         "%e/%f/%g/%a conversion without an explicit precision; written "
         "doubles must round-trip (%.17g-class)"},
        {"omp-guard", Severity::Error,
         "omp_*() call or <omp.h> include outside #ifdef _OPENMP; serial "
         "builds must compile"},
        {"spec-hash-field", Severity::Error,
         "spec key parsed in CampaignSpec::parse() but absent from "
         "CampaignSpec::hash(); two plans could share a hash"},
        {"unsorted-dir-iteration", Severity::Warning,
         "directory-iteration results feed an output sink (or are collected "
         "but never sorted); filesystem enumeration order is unspecified"},
        {"allowlist-unused", Severity::Warning,
         "allowlist entry suppressed nothing in this run; remove the stale "
         "suppression"},
    };
    return table;
}

namespace {

Severity rule_severity(const std::string& id) {
    for (const RuleInfo& rule : rules()) {
        if (id == rule.id) return rule.severity;
    }
    return Severity::Error;
}

bool known_rule(const std::string& id) {
    for (const RuleInfo& rule : rules()) {
        if (id == rule.id) return true;
    }
    return false;
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokenKind { Ident, String, Number, Punct };

struct Token {
    TokenKind kind;
    std::string text; // for String: the literal body without quotes
    std::size_t line = 0;
    bool omp_guarded = false; // inside an #ifdef _OPENMP region
};

struct Directive {
    std::string text; // collapsed (splices removed), without leading '#'
    std::size_t line = 0;
    bool omp_guarded = false; // guard state *outside* this directive line
};

struct Lexed {
    std::vector<Token> tokens;
    std::vector<Directive> directives;
};

bool ident_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Conditional-compilation state for one #if level.
enum class OmpState { On, Off, Unknown };

OmpState classify_condition(const std::string& directive) {
    // `directive` starts with if/ifdef/ifndef or is an #elif expression.
    const bool mentions = directive.find("_OPENMP") != std::string::npos;
    if (!mentions) return OmpState::Unknown;
    const bool negated = directive.find("ifndef") != std::string::npos ||
                         directive.find("!defined") != std::string::npos ||
                         directive.find("! defined") != std::string::npos;
    return negated ? OmpState::Off : OmpState::On;
}

Lexed lex(const std::string& text) {
    Lexed out;
    std::vector<OmpState> stack;
    const auto guarded = [&stack] {
        return std::any_of(stack.begin(), stack.end(),
                           [](OmpState s) { return s == OmpState::On; });
    };

    std::size_t i = 0;
    std::size_t line = 1;
    const std::size_t n = text.size();
    bool at_line_start = true; // only whitespace seen since the last newline

    const auto push_token = [&](TokenKind kind, std::string tok_text,
                                std::size_t tok_line) {
        out.tokens.push_back(
            Token{kind, std::move(tok_text), tok_line, guarded()});
    };

    while (i < n) {
        const char c = text[i];
        if (c == '\n') {
            ++line;
            ++i;
            at_line_start = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Comments.
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            while (i < n && text[i] != '\n') ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            i += 2;
            while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
                if (text[i] == '\n') ++line;
                ++i;
            }
            i = std::min(n, i + 2);
            continue;
        }
        // Preprocessor directive: consume the whole (spliced) line.
        if (c == '#' && at_line_start) {
            const std::size_t directive_line = line;
            std::string collapsed;
            ++i;
            while (i < n) {
                if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
                    i += 2;
                    ++line;
                    collapsed += ' ';
                    continue;
                }
                if (text[i] == '\n') break;
                // Strip // comments inside the directive.
                if (text[i] == '/' && i + 1 < n && text[i + 1] == '/') {
                    while (i < n && text[i] != '\n') ++i;
                    break;
                }
                collapsed += text[i];
                ++i;
            }
            const std::string trimmed_directive = [&collapsed] {
                const std::size_t b = collapsed.find_first_not_of(" \t");
                return b == std::string::npos ? std::string()
                                              : collapsed.substr(b);
            }();
            // Maintain the _OPENMP guard stack before recording, so the
            // directive itself reports the state *outside* its own region
            // (an `#ifdef _OPENMP` line is not guarded; its body is).
            const bool outer = guarded();
            if (trimmed_directive.rfind("ifdef", 0) == 0 ||
                trimmed_directive.rfind("ifndef", 0) == 0 ||
                trimmed_directive.rfind("if", 0) == 0) {
                stack.push_back(classify_condition(trimmed_directive));
            } else if (trimmed_directive.rfind("elif", 0) == 0) {
                if (!stack.empty()) {
                    stack.back() = classify_condition(trimmed_directive);
                }
            } else if (trimmed_directive.rfind("else", 0) == 0) {
                if (!stack.empty()) {
                    if (stack.back() == OmpState::On) {
                        stack.back() = OmpState::Off;
                    } else if (stack.back() == OmpState::Off) {
                        stack.back() = OmpState::On;
                    }
                }
            } else if (trimmed_directive.rfind("endif", 0) == 0) {
                if (!stack.empty()) stack.pop_back();
            }
            out.directives.push_back(
                Directive{trimmed_directive, directive_line, outer});
            continue;
        }
        at_line_start = false;
        // Raw string literal: [u8|u|U|L]R"delim( ... )delim"
        if (ident_start(c)) {
            std::size_t j = i;
            while (j < n && ident_char(text[j])) ++j;
            const std::string word = text.substr(i, j - i);
            const bool raw_prefix = word == "R" || word == "u8R" ||
                                    word == "uR" || word == "UR" ||
                                    word == "LR";
            if (raw_prefix && j < n && text[j] == '"') {
                const std::size_t open_line = line;
                std::size_t k = j + 1;
                std::string delim;
                while (k < n && text[k] != '(') delim += text[k++];
                const std::string closer = ")" + delim + "\"";
                const std::size_t body_begin = k + 1;
                const std::size_t end = text.find(closer, body_begin);
                const std::size_t body_end = end == std::string::npos ? n : end;
                const std::string body =
                    text.substr(body_begin, body_end - body_begin);
                line += static_cast<std::size_t>(
                    std::count(text.begin() + static_cast<std::ptrdiff_t>(i),
                               text.begin() + static_cast<std::ptrdiff_t>(
                                                  std::min(n, body_end)),
                               '\n'));
                push_token(TokenKind::String, body, open_line);
                i = body_end == n ? n : body_end + closer.size();
                continue;
            }
            push_token(TokenKind::Ident, word, line);
            i = j;
            continue;
        }
        if (c == '"') {
            const std::size_t open_line = line;
            std::string body;
            ++i;
            while (i < n && text[i] != '"') {
                if (text[i] == '\\' && i + 1 < n) {
                    body += text[i];
                    body += text[i + 1];
                    i += 2;
                    continue;
                }
                if (text[i] == '\n') ++line; // unterminated; keep counting
                body += text[i++];
            }
            if (i < n) ++i; // closing quote
            push_token(TokenKind::String, body, open_line);
            continue;
        }
        if (c == '\'') {
            ++i;
            while (i < n && text[i] != '\'') {
                if (text[i] == '\\' && i + 1 < n) {
                    i += 2;
                    continue;
                }
                ++i;
            }
            if (i < n) ++i;
            continue; // char literals carry nothing the rules need
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
            std::size_t j = i;
            while (j < n) {
                const char d = text[j];
                if (ident_char(d) || d == '.' || d == '\'') {
                    ++j;
                    continue;
                }
                if ((d == '+' || d == '-') && j > i) {
                    const char prev = text[j - 1];
                    if (prev == 'e' || prev == 'E' || prev == 'p' ||
                        prev == 'P') {
                        ++j;
                        continue;
                    }
                }
                break;
            }
            push_token(TokenKind::Number, text.substr(i, j - i), line);
            i = j;
            continue;
        }
        // Punctuation. Multi-char tokens the rules care about: :: and <<.
        if (c == ':' && i + 1 < n && text[i + 1] == ':') {
            push_token(TokenKind::Punct, "::", line);
            i += 2;
            continue;
        }
        if (c == '<' && i + 1 < n && text[i + 1] == '<') {
            push_token(TokenKind::Punct, "<<", line);
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && text[i + 1] == '>') {
            push_token(TokenKind::Punct, "->", line);
            i += 2;
            continue;
        }
        if (c == '=' && i + 1 < n && text[i + 1] == '=') {
            push_token(TokenKind::Punct, "==", line);
            i += 2;
            continue;
        }
        push_token(TokenKind::Punct, std::string(1, c), line);
        ++i;
    }
    return out;
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

bool is_ident(const std::vector<Token>& toks, std::size_t i,
              const char* text) {
    return i < toks.size() && toks[i].kind == TokenKind::Ident &&
           toks[i].text == text;
}

bool is_punct(const std::vector<Token>& toks, std::size_t i,
              const char* text) {
    return i < toks.size() && toks[i].kind == TokenKind::Punct &&
           toks[i].text == text;
}

/// Index just past the token matching the opener at `open` ("("/"{"), or
/// toks.size() when unbalanced.
std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          const char* opener, const char* closer) {
    std::size_t depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (is_punct(toks, i, opener)) ++depth;
        if (is_punct(toks, i, closer)) {
            if (--depth == 0) return i + 1;
        }
    }
    return toks.size();
}

void add(std::vector<Diagnostic>& diags, const std::string& path,
         std::size_t line, const char* rule, std::string subject,
         std::string message) {
    diags.push_back(Diagnostic{path, line, rule, rule_severity(rule),
                               std::move(subject), std::move(message)});
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

void check_banned_random(const std::vector<Token>& toks,
                         const std::string& path,
                         std::vector<Diagnostic>& diags) {
    static const std::set<std::string> called = {
        "rand",    "srand",   "random",  "srandom",
        "rand_r",  "drand48", "lrand48", "mrand48",
    };
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Ident) continue;
        if (toks[i].text == "random_device") {
            add(diags, path, toks[i].line, "banned-random", toks[i].text,
                "std::random_device is nondeterministic by design; seed a "
                "stats::Rng stream instead");
            continue;
        }
        if (called.count(toks[i].text) && is_punct(toks, i + 1, "(") &&
            !(i > 0 &&
              (is_punct(toks, i - 1, ".") || is_punct(toks, i - 1, "->")))) {
            add(diags, path, toks[i].line, "banned-random", toks[i].text,
                toks[i].text +
                    "() draws from hidden global state; use a seeded "
                    "stats::Rng stream");
        }
    }
}

void check_banned_clock(const std::vector<Token>& toks,
                        const std::string& path,
                        std::vector<Diagnostic>& diags) {
    static const std::set<std::string> direct = {
        "clock_gettime", "gettimeofday", "timespec_get", "ftime",
        "omp_get_wtime",
    };
    static const std::set<std::string> chrono_clocks = {
        "steady_clock", "system_clock", "high_resolution_clock",
    };
    // Keywords that legitimately precede a call expression; any *other*
    // identifier before `time(`/`clock(` means a declaration (`double
    // time() const`), not a call of the libc function.
    static const std::set<std::string> expr_keywords = {
        "return", "case", "else", "do", "throw", "co_return", "co_await",
        "co_yield"};
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Ident) continue;
        const bool member_access =
            i > 0 && (is_punct(toks, i - 1, ".") || is_punct(toks, i - 1, "->"));
        const bool declaration =
            i > 0 && toks[i - 1].kind == TokenKind::Ident &&
            !expr_keywords.count(toks[i - 1].text);
        if (direct.count(toks[i].text) && is_punct(toks, i + 1, "(")) {
            add(diags, path, toks[i].line, "banned-clock", toks[i].text,
                toks[i].text + "() reads the wall clock; only sanctioned "
                               "timing sites may (allowlist per file)");
            continue;
        }
        if ((toks[i].text == "time" || toks[i].text == "clock") &&
            is_punct(toks, i + 1, "(") && !member_access && !declaration) {
            add(diags, path, toks[i].line, "banned-clock", toks[i].text,
                toks[i].text + "() reads the wall clock; only sanctioned "
                               "timing sites may (allowlist per file)");
            continue;
        }
        if (chrono_clocks.count(toks[i].text) && is_punct(toks, i + 1, "::") &&
            is_ident(toks, i + 2, "now")) {
            add(diags, path, toks[i].line, "banned-clock",
                toks[i].text + "::now",
                "std::chrono::" + toks[i].text +
                    "::now() outside a sanctioned timing site (allowlist "
                    "per file)");
        }
    }
}

void check_unordered_output(const std::vector<Token>& toks,
                            const std::string& path,
                            std::vector<Diagnostic>& diags) {
    static const std::set<std::string> unordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    static const std::set<std::string> sinks = {
        "add_row", "format",  "printf", "fprintf",   "snprintf",
        "write",   "write_row", "write_csv", "hash", "fnv1a",  "update"};

    // Pass 1: names declared (or returned) with an unordered type.
    std::set<std::string> names;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Ident || !unordered.count(toks[i].text)) {
            continue;
        }
        std::size_t j = i + 1;
        if (is_punct(toks, j, "<")) {
            std::size_t depth = 0;
            for (; j < toks.size(); ++j) {
                if (is_punct(toks, j, "<")) ++depth;
                if (is_punct(toks, j, ">") && --depth == 0) {
                    ++j;
                    break;
                }
            }
        }
        // Skip ref/pointer decorations: `const unordered_map<...>& name`.
        while (j < toks.size() &&
               (is_punct(toks, j, "&") || is_punct(toks, j, "*"))) {
            ++j;
        }
        if (j < toks.size() && toks[j].kind == TokenKind::Ident) {
            names.insert(toks[j].text);
        }
    }
    if (names.empty()) return;

    // Pass 2: range-for over one of those names with an output sink inside.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!is_ident(toks, i, "for") || !is_punct(toks, i + 1, "(")) continue;
        const std::size_t close = match_forward(toks, i + 1, "(", ")");
        // The range-for ':' sits at parenthesis depth 1.
        std::size_t colon = 0;
        std::size_t depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
            if (is_punct(toks, j, "(")) ++depth;
            if (is_punct(toks, j, ")")) --depth;
            if (depth == 1 && is_punct(toks, j, ":")) {
                colon = j;
                break;
            }
        }
        if (colon == 0) continue;
        std::string container;
        for (std::size_t j = colon + 1; j + 1 < close; ++j) {
            if (toks[j].kind == TokenKind::Ident && names.count(toks[j].text)) {
                container = toks[j].text;
                break;
            }
        }
        if (container.empty()) continue;
        // Loop body: braced block, or a single statement up to ';'.
        std::size_t body_begin = close;
        std::size_t body_end;
        if (is_punct(toks, body_begin, "{")) {
            body_end = match_forward(toks, body_begin, "{", "}");
        } else {
            body_end = body_begin;
            while (body_end < toks.size() && !is_punct(toks, body_end, ";")) {
                ++body_end;
            }
        }
        for (std::size_t j = body_begin; j < body_end; ++j) {
            const bool stream_write = is_punct(toks, j, "<<");
            const bool sink_call = toks[j].kind == TokenKind::Ident &&
                                   sinks.count(toks[j].text) &&
                                   is_punct(toks, j + 1, "(");
            if (stream_write || sink_call) {
                add(diags, path, toks[i].line, "unordered-output", container,
                    "iteration over unordered container '" + container +
                        "' feeds an output sink; order is "
                        "implementation-defined — sort first");
                break;
            }
        }
    }
}

void check_unsorted_dir_iteration(const std::vector<Token>& toks,
                                  const std::string& path,
                                  std::vector<Diagnostic>& diags) {
    static const std::set<std::string> iterators = {
        "directory_iterator", "recursive_directory_iterator"};
    static const std::set<std::string> sinks = {
        "add_row", "format",  "printf", "fprintf",   "snprintf",
        "write",   "write_row", "write_csv", "hash", "fnv1a",  "update"};
    static const std::set<std::string> collectors = {
        "push_back", "emplace_back", "insert", "emplace"};

    // Names that appear as an argument of an explicit sort call anywhere in
    // the file — the collect-then-sort idiom this rule demands.
    std::set<std::string> sorted_names;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Ident ||
            (toks[i].text != "sort" && toks[i].text != "stable_sort") ||
            !is_punct(toks, i + 1, "(")) {
            continue;
        }
        const std::size_t close = match_forward(toks, i + 1, "(", ")");
        for (std::size_t j = i + 2; j < close; ++j) {
            if (toks[j].kind == TokenKind::Ident) {
                sorted_names.insert(toks[j].text);
            }
        }
    }

    // Range-for loops whose range expression is a directory iterator.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!is_ident(toks, i, "for") || !is_punct(toks, i + 1, "(")) continue;
        const std::size_t close = match_forward(toks, i + 1, "(", ")");
        std::size_t colon = 0;
        std::size_t depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
            if (is_punct(toks, j, "(")) ++depth;
            if (is_punct(toks, j, ")")) --depth;
            if (depth == 1 && is_punct(toks, j, ":")) {
                colon = j;
                break;
            }
        }
        if (colon == 0) continue;
        std::string iterator;
        for (std::size_t j = colon + 1; j + 1 < close; ++j) {
            if (toks[j].kind == TokenKind::Ident &&
                iterators.count(toks[j].text)) {
                iterator = toks[j].text;
                break;
            }
        }
        if (iterator.empty()) continue;
        // Loop body: braced block, or a single statement up to ';'.
        std::size_t body_begin = close;
        std::size_t body_end;
        if (is_punct(toks, body_begin, "{")) {
            body_end = match_forward(toks, body_begin, "{", "}");
        } else {
            body_end = body_begin;
            while (body_end < toks.size() && !is_punct(toks, body_end, ";")) {
                ++body_end;
            }
        }
        bool has_sink = false;
        std::set<std::string> collected;
        for (std::size_t j = body_begin; j < body_end; ++j) {
            if (is_punct(toks, j, "<<") ||
                (toks[j].kind == TokenKind::Ident &&
                 sinks.count(toks[j].text) && is_punct(toks, j + 1, "("))) {
                has_sink = true;
                break;
            }
            if (toks[j].kind == TokenKind::Ident && j + 2 < body_end &&
                is_punct(toks, j + 1, ".") &&
                toks[j + 2].kind == TokenKind::Ident &&
                collectors.count(toks[j + 2].text) &&
                is_punct(toks, j + 3, "(")) {
                collected.insert(toks[j].text);
            }
        }
        if (has_sink) {
            add(diags, path, toks[i].line, "unsorted-dir-iteration", iterator,
                "directory iteration feeds an output sink; enumeration order "
                "is unspecified — collect the entries and sort them first");
            continue;
        }
        for (const std::string& name : collected) {
            if (!sorted_names.count(name)) {
                add(diags, path, toks[i].line, "unsorted-dir-iteration", name,
                    "directory iteration collects into '" + name +
                        "' which is never explicitly sorted; enumeration "
                        "order is unspecified — sort before consuming it");
            }
        }
    }
}

void check_float_precision(const std::vector<Token>& toks,
                           const std::string& path,
                           std::vector<Diagnostic>& diags) {
    static const std::set<std::string> formatters = {
        "format", "printf", "fprintf", "snprintf", "sprintf",
        "vprintf", "vfprintf", "vsnprintf"};
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Ident ||
            !formatters.count(toks[i].text) || !is_punct(toks, i + 1, "(")) {
            continue;
        }
        const std::size_t close = match_forward(toks, i + 1, "(", ")");
        for (std::size_t j = i + 1; j < close; ++j) {
            if (toks[j].kind != TokenKind::String) continue;
            const std::string& s = toks[j].text;
            for (std::size_t k = 0; k < s.size(); ++k) {
                if (s[k] != '%') continue;
                std::size_t m = k + 1;
                if (m < s.size() && s[m] == '%') {
                    k = m;
                    continue;
                }
                while (m < s.size() && (s[m] == '-' || s[m] == '+' ||
                                        s[m] == ' ' || s[m] == '#' ||
                                        s[m] == '0' || s[m] == '\'')) {
                    ++m;
                }
                while (m < s.size() &&
                       (std::isdigit(static_cast<unsigned char>(s[m])) ||
                        s[m] == '*')) {
                    ++m;
                }
                bool has_precision = false;
                if (m < s.size() && s[m] == '.') {
                    has_precision = true;
                    ++m;
                    while (m < s.size() &&
                           (std::isdigit(static_cast<unsigned char>(s[m])) ||
                            s[m] == '*')) {
                        ++m;
                    }
                }
                while (m < s.size() && (s[m] == 'h' || s[m] == 'l' ||
                                        s[m] == 'j' || s[m] == 'z' ||
                                        s[m] == 't' || s[m] == 'L')) {
                    ++m;
                }
                if (m < s.size() && !has_precision &&
                    std::string("efgaEFGA").find(s[m]) != std::string::npos) {
                    const std::string spec = s.substr(k, m - k + 1);
                    add(diags, path, toks[j].line, "float-precision", spec,
                        "'" + spec + "' has no explicit precision; default "
                        "(6) truncates doubles — use a %.17g-class spec");
                }
                k = m;
            }
        }
    }
}

void check_omp_guard(const Lexed& lexed, const std::string& path,
                     std::vector<Diagnostic>& diags) {
    const std::vector<Token>& toks = lexed.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Ident ||
            toks[i].text.rfind("omp_", 0) != 0 || !is_punct(toks, i + 1, "(")) {
            continue;
        }
        if (!toks[i].omp_guarded) {
            add(diags, path, toks[i].line, "omp-guard", toks[i].text,
                toks[i].text +
                    "() outside #ifdef _OPENMP; serial builds cannot link it");
        }
    }
    for (const Directive& d : lexed.directives) {
        if (d.text.rfind("include", 0) == 0 &&
            d.text.find("omp.h") != std::string::npos && !d.omp_guarded) {
            add(diags, path, d.line, "omp-guard", "omp.h",
                "#include <omp.h> outside #ifdef _OPENMP; serial builds "
                "cannot compile it");
        }
    }
}

/// [begin, end) token range of `CampaignSpec::name`'s body, or {0, 0}.
std::pair<std::size_t, std::size_t>
method_body(const std::vector<Token>& toks, const char* name) {
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!is_ident(toks, i, "CampaignSpec") || !is_punct(toks, i + 1, "::") ||
            !is_ident(toks, i + 2, name)) {
            continue;
        }
        std::size_t j = i + 3;
        while (j < toks.size() && !is_punct(toks, j, "(")) ++j;
        j = match_forward(toks, j, "(", ")");
        // Skip const/noexcept/trailing bits until the body or a ';' (decl).
        while (j < toks.size() && !is_punct(toks, j, "{") &&
               !is_punct(toks, j, ";")) {
            ++j;
        }
        if (j >= toks.size() || is_punct(toks, j, ";")) continue;
        return {j, match_forward(toks, j, "{", "}")};
    }
    return {0, 0};
}

void check_spec_hash_fields(const std::vector<Token>& toks,
                            const std::string& path,
                            std::vector<Diagnostic>& diags) {
    const auto [parse_begin, parse_end] = method_body(toks, "parse");
    const auto [hash_begin, hash_end] = method_body(toks, "hash");
    if (parse_begin == parse_end || hash_begin == hash_end) return;

    // Words appearing in any string literal inside hash().
    std::set<std::string> hash_words;
    for (std::size_t i = hash_begin; i < hash_end; ++i) {
        if (toks[i].kind != TokenKind::String) continue;
        const std::string& s = toks[i].text;
        std::string word;
        for (const char c : s) {
            if (ident_char(c)) {
                word += c;
            } else if (!word.empty()) {
                hash_words.insert(word);
                word.clear();
            }
        }
        if (!word.empty()) hash_words.insert(word);
    }

    // Keys compared against `key` in parse().
    for (std::size_t i = parse_begin; i + 2 < parse_end; ++i) {
        if (!is_ident(toks, i, "key") || !is_punct(toks, i + 1, "==") ||
            toks[i + 2].kind != TokenKind::String) {
            continue;
        }
        const std::string& key = toks[i + 2].text;
        bool covered = false;
        for (const std::string& word : hash_words) {
            // Exact, or the hash uses an abbreviated field name
            // ("adaptive_min" covers "adaptive_min_measurements"); the
            // 4-char floor keeps incidental short words from matching.
            if (word == key ||
                (word.size() >= 4 && key.rfind(word, 0) == 0)) {
                covered = true;
                break;
            }
        }
        if (!covered) {
            add(diags, path, toks[i + 2].line, "spec-hash-field", key,
                "spec key '" + key +
                    "' is parsed but never contributes to "
                    "CampaignSpec::hash(); hash it or allowlist it with a "
                    "justification");
        }
    }
}

} // namespace

// ---------------------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------------------

Allowlist Allowlist::parse(const std::string& text, const std::string& source) {
    Allowlist out;
    out.source_ = source;
    std::istringstream in(text);
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        std::string entry_text = line;
        std::string justification;
        const std::size_t hash_pos = entry_text.find('#');
        if (hash_pos != std::string::npos) {
            justification = entry_text.substr(hash_pos + 1);
            entry_text.resize(hash_pos);
        }
        std::istringstream fields(entry_text);
        std::string rule;
        std::string pattern;
        std::string extra;
        fields >> rule >> pattern >> extra;
        if (rule.empty() && pattern.empty()) continue; // blank / comment-only
        const auto fail = [&](const std::string& message) {
            std::ostringstream msg;
            msg << source << ':' << line_number << ": " << message;
            throw std::runtime_error(msg.str());
        };
        if (pattern.empty()) fail("allowlist entry needs '<rule> <pattern>'");
        if (!extra.empty()) {
            fail("allowlist entry has trailing fields ('" + extra +
                 "'); one pattern per entry, justification after '#'");
        }
        if (!known_rule(rule)) fail("unknown rule id '" + rule + "'");
        const std::size_t j = justification.find_first_not_of(" \t");
        if (j == std::string::npos) {
            fail("allowlist entry for '" + rule +
                 "' is missing its justification comment ('# why')");
        }
        out.entries_.push_back(
            AllowEntry{rule, pattern, justification.substr(j), line_number});
    }
    out.used_.assign(out.entries_.size(), false);
    return out;
}

Allowlist Allowlist::load(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw std::runtime_error("cannot open allowlist '" + path + "'");
    }
    std::ostringstream content;
    content << in.rdbuf();
    return parse(content.str(), path);
}

bool Allowlist::allows(const Diagnostic& diagnostic) const {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const AllowEntry& entry = entries_[i];
        if (entry.rule != diagnostic.rule) continue;
        const std::string& p = entry.pattern;
        const bool subject_match = p == diagnostic.subject;
        const bool suffix_match =
            diagnostic.file.size() >= p.size() &&
            diagnostic.file.compare(diagnostic.file.size() - p.size(),
                                    p.size(), p) == 0;
        const bool dir_match =
            !p.empty() && p.back() == '/' && diagnostic.file.rfind(p, 0) == 0;
        if (subject_match || suffix_match || dir_match) {
            used_[i] = true;
            return true;
        }
    }
    return false;
}

std::vector<AllowEntry> Allowlist::unused() const {
    std::vector<AllowEntry> out;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (!used_[i]) out.push_back(entries_[i]);
    }
    return out;
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

std::vector<Diagnostic> lint_source(const std::string& path,
                                    const std::string& text) {
    const Lexed lexed = lex(text);
    std::vector<Diagnostic> diags;
    check_banned_random(lexed.tokens, path, diags);
    check_banned_clock(lexed.tokens, path, diags);
    check_unordered_output(lexed.tokens, path, diags);
    check_unsorted_dir_iteration(lexed.tokens, path, diags);
    check_float_precision(lexed.tokens, path, diags);
    check_omp_guard(lexed, path, diags);
    check_spec_hash_fields(lexed.tokens, path, diags);
    std::stable_sort(diags.begin(), diags.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                         return a.line < b.line;
                     });
    return diags;
}

namespace {

bool lintable_extension(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
           ext == ".cxx" || ext == ".hxx";
}

std::string read_file(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
        throw std::runtime_error("cannot read '" + p.string() + "'");
    }
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
}

} // namespace

LintResult lint_paths(const std::string& root,
                      const std::vector<std::string>& paths,
                      const Allowlist& allow) {
    const fs::path base(root);
    std::vector<fs::path> files;
    for (const std::string& p : paths) {
        const fs::path full = base / p;
        if (fs::is_directory(full)) {
            for (const auto& entry : fs::recursive_directory_iterator(full)) {
                if (entry.is_regular_file() &&
                    lintable_extension(entry.path())) {
                    files.push_back(entry.path());
                }
            }
        } else if (fs::is_regular_file(full)) {
            files.push_back(full);
        } else {
            throw std::runtime_error("lint path does not exist: '" +
                                     full.string() + "'");
        }
    }
    // Deterministic order whatever the filesystem returns.
    std::sort(files.begin(), files.end());

    LintResult result;
    result.files_scanned = files.size();
    for (const fs::path& file : files) {
        const std::string display =
            fs::relative(file, base).generic_string();
        for (Diagnostic& d : lint_source(display, read_file(file))) {
            if (allow.allows(d)) {
                result.allowed.push_back(std::move(d));
            } else {
                result.diagnostics.push_back(std::move(d));
            }
        }
    }
    for (const AllowEntry& entry : allow.unused()) {
        result.diagnostics.push_back(Diagnostic{
            allow.source(), entry.line, "allowlist-unused", Severity::Warning,
            entry.pattern,
            "allowlist entry '" + entry.rule + " " + entry.pattern +
                "' suppressed nothing; remove the stale suppression"});
    }
    return result;
}

} // namespace relperf::lint
