//! relperf_lint driver. See lint.hpp for rules and the exit-code contract:
//!   0  clean (allowlisted diagnostics reported, not fatal)
//!   1  at least one non-allowlisted diagnostic
//!   2  usage or IO error
#include "lint.hpp"

#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

void print_usage(std::ostream& out) {
    out << "usage: relperf_lint [options] [paths...]\n"
           "\n"
           "Statically checks relperf's determinism invariants over C++ "
           "sources.\n"
           "Paths are files or directories relative to --root; the default\n"
           "path set is `src tools bench` (the shipped measurement code).\n"
           "\n"
           "options:\n"
           "  --root DIR     tree root paths are resolved against "
           "(default: .)\n"
           "  --allow FILE   allowlist file (see ci/lint_allow.txt); every\n"
           "                 entry needs a '# justification' comment\n"
           "  --list-rules   print the rule table and exit\n"
           "  --help         this text\n";
}

} // namespace

int main(int argc, char** argv) {
    std::string root = ".";
    std::string allow_path;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "relperf_lint: " << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            print_usage(std::cout);
            return 0;
        } else if (arg == "--list-rules") {
            for (const relperf::lint::RuleInfo& rule : relperf::lint::rules()) {
                std::cout << rule.id << " ("
                          << relperf::lint::to_string(rule.severity)
                          << "): " << rule.summary << '\n';
            }
            return 0;
        } else if (arg == "--root") {
            root = value("--root");
        } else if (arg == "--allow") {
            allow_path = value("--allow");
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "relperf_lint: unknown option '" << arg << "'\n";
            print_usage(std::cerr);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) paths = {"src", "tools", "bench"};

    try {
        relperf::lint::Allowlist allow;
        if (!allow_path.empty()) {
            allow = relperf::lint::Allowlist::load(allow_path);
        }
        const relperf::lint::LintResult result =
            relperf::lint::lint_paths(root, paths, allow);

        for (const relperf::lint::Diagnostic& d : result.allowed) {
            std::cout << d.str() << " (allowlisted)\n";
        }
        for (const relperf::lint::Diagnostic& d : result.diagnostics) {
            std::cout << d.str() << '\n';
        }
        std::cout << "relperf_lint: " << result.files_scanned
                  << " files scanned, " << result.diagnostics.size()
                  << " violation(s), " << result.allowed.size()
                  << " allowlisted\n";
        return result.diagnostics.empty() ? 0 : 1;
    } catch (const std::exception& e) {
        std::cerr << "relperf_lint: " << e.what() << '\n';
        return 2;
    }
}
