#pragma once
//! \file lint.hpp
//! relperf_lint: a self-contained static checker for the project's
//! determinism invariants. No libclang — a tokenizing scanner is enough for
//! the rule set, keeps the tool dependency-free, and lints a full tree in
//! milliseconds so it can run on every CI push and as a ctest entry.
//!
//! The rules (ids are stable; every diagnostic carries one):
//!
//!   banned-random     std::random_device / rand() / srand() / random() /
//!                     drand48()-family calls. Every random draw in relperf
//!                     must come from a seeded stats::Rng stream, or shard
//!                     merges stop being bit-identical.
//!   banned-clock      wall-clock reads: time()/clock()/clock_gettime()/
//!                     gettimeofday()/timespec_get(), std::chrono
//!                     *_clock::now(), omp_get_wtime(). Only the sanctioned
//!                     timing sites (RealExecutor's measurement loop, bench
//!                     harness self-timing) may read clocks — everything else
//!                     must be deterministic. Suppress per-file via the
//!                     allowlist.
//!   unordered-output  range-for over a std::unordered_{map,set,multimap,
//!                     multiset} whose loop body feeds an output sink
//!                     (stream <<, add_row, write*, format, printf, hash
//!                     update). Unordered iteration order is
//!                     implementation-defined, so anything it feeds into a
//!                     CSV/manifest/hash is nondeterministic across
//!                     stdlibs/runs.
//!   unsorted-dir-iteration
//!                     range-for over a std::filesystem::directory_iterator /
//!                     recursive_directory_iterator whose body feeds an
//!                     output sink directly, or collects entries into a
//!                     container that is never passed through an explicit
//!                     sort()/stable_sort(). Filesystem enumeration order is
//!                     unspecified, so anything derived from it (cache
//!                     indices, eviction order, CLI listings) must sort
//!                     first — the collect-then-sort idiom is clean.
//!   float-precision   a %e/%f/%g/%a conversion without an explicit
//!                     precision in a format()/printf-family call. Default
//!                     precision (6) silently truncates doubles, so written
//!                     values stop round-tripping (%.17g is the contract for
//!                     measurement CSVs).
//!   omp-guard         omp_*() call or <omp.h> include outside an
//!                     `#ifdef _OPENMP` region. Serial builds must compile
//!                     (OpenMP is optional since PR 1); `#pragma omp` lines
//!                     need no guard and are not flagged.
//!   spec-hash-field   a spec key parsed in CampaignSpec::parse() whose
//!                     field never appears in CampaignSpec::hash(). A parsed
//!                     but unhashed field is exactly the bug class PR 5 had
//!                     to hand-audit: two different measurement plans with
//!                     the same plan hash. Fields that genuinely do not
//!                     determine measured values go in the allowlist with a
//!                     justification.
//!   allowlist-unused  an allowlist entry that suppressed nothing in this
//!                     run. Stale entries hide future violations, so the
//!                     allowlist is kept minimal by construction.
//!
//! Exit-code contract (main.cpp): 0 = clean (allowlisted diagnostics are
//! reported but do not fail), 1 = at least one non-allowlisted diagnostic,
//! 2 = usage/IO error. CI and the `lint.tree` ctest entry rely on this.

#include <cstddef>
#include <string>
#include <vector>

namespace relperf::lint {

enum class Severity {
    Warning, // heuristic rule: review, then fix or allowlist
    Error,   // definite invariant violation
};

[[nodiscard]] const char* to_string(Severity severity) noexcept;

struct Diagnostic {
    std::string file;    ///< path as scanned (relative to the lint root)
    std::size_t line = 0;
    std::string rule;    ///< stable rule id, e.g. "banned-clock"
    Severity severity = Severity::Error;
    std::string subject; ///< offending token / field name (allowlist key)
    std::string message;

    /// "file:line: severity: [rule] message" — editor-clickable.
    [[nodiscard]] std::string str() const;
};

struct RuleInfo {
    const char* id;
    Severity severity;
    const char* summary;
};

/// The stable rule table (see the file comment for semantics).
[[nodiscard]] const std::vector<RuleInfo>& rules();

/// One parsed allowlist entry. Grammar (one entry per line):
///
///   <rule-id> <pattern>   # justification (mandatory)
///
/// `pattern` matches a diagnostic when it is a path suffix of the
/// diagnostic's file ("src/sim/real_executor.cpp", "bench/") or exactly
/// equals the diagnostic's subject token (spec field names). Entries without
/// a justification comment are a parse error: the allowlist policy is that
/// every suppression explains itself.
struct AllowEntry {
    std::string rule;
    std::string pattern;
    std::string justification;
    std::size_t line = 0; ///< line in the allowlist file
};

class Allowlist {
public:
    Allowlist() = default;

    /// Parses allowlist text; throws std::runtime_error with file:line on
    /// malformed entries (unknown rule id, missing justification).
    static Allowlist parse(const std::string& text, const std::string& source);
    static Allowlist load(const std::string& path);

    /// True when some entry covers the diagnostic; marks that entry used.
    [[nodiscard]] bool allows(const Diagnostic& diagnostic) const;

    /// Entries that allows() never matched (stale suppressions).
    [[nodiscard]] std::vector<AllowEntry> unused() const;

    [[nodiscard]] std::size_t size() const { return entries_.size(); }
    [[nodiscard]] const std::string& source() const { return source_; }

private:
    std::string source_;
    std::vector<AllowEntry> entries_;
    // Parallel to entries_; mutable usage tracking keeps allows() const.
    mutable std::vector<bool> used_;
};

/// Lints one translation unit's text. `path` is used for diagnostics and
/// for path-sensitive rules (spec-hash-field only fires on spec.cpp).
[[nodiscard]] std::vector<Diagnostic> lint_source(const std::string& path,
                                                  const std::string& text);

struct LintResult {
    std::vector<Diagnostic> diagnostics; ///< allowlisted ones removed
    std::vector<Diagnostic> allowed;     ///< suppressed by the allowlist
    std::size_t files_scanned = 0;
};

/// Walks `paths` (files or directories, relative to `root`), lints every
/// *.cpp/*.hpp/*.h/*.cc in deterministic (sorted) order, applies the
/// allowlist, and appends an `allowlist-unused` diagnostic per stale entry.
/// Throws std::runtime_error when a path does not exist.
[[nodiscard]] LintResult lint_paths(const std::string& root,
                                    const std::vector<std::string>& paths,
                                    const Allowlist& allow);

} // namespace relperf::lint
