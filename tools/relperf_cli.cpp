//! relperf — command-line front end.
//!
//! Clusters measurement distributions from a CSV file (any source: real
//! devices, other harnesses) into performance classes with relative scores,
//! using the paper's methodology end to end:
//!
//!   $ relperf --input measurements.csv
//!   $ relperf --input measurements.csv --rep 200 --out clusters.csv --matrix
//!
//! Input format (written by core::write_measurements_csv and by the
//! experiment benches' --csv option; bench_micro_kernels is the exception —
//! its --csv emits google-benchmark's own CSV schema, which this tool does
//! not read):
//!
//!   algorithm,measurement_index,seconds
//!   algDDA,0,0.0406
//!   ...

#include "core/io.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "support/cli.hpp"

#include <cstdio>

using namespace relperf;

int main(int argc, char** argv) try {
    support::CliParser cli(
        "relperf — cluster algorithms into performance classes "
        "(Sankaran & Bientinesi 2021)");
    cli.add_option("input", "measurements CSV (algorithm,measurement_index,seconds)",
                   "");
    cli.add_option("rep", "clustering repetitions (paper Rep)", "100");
    cli.add_option("rounds", "bootstrap rounds per comparison (paper R)", "100");
    cli.add_option("tie-epsilon", "relative tie band of the comparator", "0.02");
    cli.add_option("threshold", "decision threshold on the win-rate score", "0.9");
    cli.add_option("n-max", "use at most this many measurements per algorithm "
                            "(0 = all)", "0");
    cli.add_option("seed", "clustering seed", "42");
    cli.add_option("out", "write the clustering to this CSV path", "");
    cli.add_flag("summary", "print per-algorithm summary statistics");
    cli.add_flag("matrix", "print the pairwise three-way comparison matrix");
    cli.add_flag("distributions", "print shared-axis ASCII histograms");
    if (!cli.parse(argc, argv)) return 0;

    const auto input = cli.value_optional("input");
    if (!input) {
        std::fputs("error: --input is required (see --help)\n", stderr);
        return 2;
    }

    core::MeasurementSet loaded = core::read_measurements_csv(*input);

    // Optional truncation (simulate a smaller N).
    const int n_max = cli.value_int("n-max");
    core::MeasurementSet measurements;
    if (n_max > 0) {
        for (std::size_t i = 0; i < loaded.size(); ++i) {
            const auto samples = loaded.samples(i);
            const std::size_t keep =
                std::min(samples.size(), static_cast<std::size_t>(n_max));
            measurements.add(loaded.name(i),
                             {samples.begin(), samples.begin() + keep});
        }
    } else {
        measurements = std::move(loaded);
    }

    core::AnalysisConfig config;
    config.comparator.rounds = static_cast<std::size_t>(cli.value_int("rounds"));
    config.comparator.tie_epsilon = cli.value_double("tie-epsilon");
    config.comparator.decision_threshold = cli.value_double("threshold");
    config.clustering.repetitions = static_cast<std::size_t>(cli.value_int("rep"));
    config.clustering.seed = static_cast<std::uint64_t>(cli.value_int("seed"));

    std::printf("relperf: %zu algorithms from %s\n\n", measurements.size(),
                input->c_str());

    if (cli.flag("summary")) {
        std::fputs(core::render_summary_table(measurements).c_str(), stdout);
        std::fputs("\n", stdout);
    }
    if (cli.flag("distributions")) {
        std::fputs(core::render_distributions(measurements).c_str(), stdout);
    }
    if (cli.flag("matrix")) {
        const core::BootstrapComparator comparator(config.comparator);
        stats::Rng rng(config.clustering.seed + 1);
        std::fputs(core::render_comparison_matrix(measurements, comparator, rng)
                       .c_str(),
                   stdout);
        std::fputs("\n", stdout);
    }

    const core::AnalysisResult result =
        core::analyze_measurements(std::move(measurements), config);

    std::puts("Performance classes with relative scores:");
    std::fputs(
        core::render_cluster_table(result.clustering, result.measurements).c_str(),
        stdout);
    std::puts("\nFinal unique assignment:");
    std::fputs(
        core::render_final_table(result.clustering, result.measurements).c_str(),
        stdout);

    if (const auto out = cli.value_optional("out")) {
        core::write_clustering_csv(result.clustering, result.measurements, *out);
        std::printf("\nclustering written to %s\n", out->c_str());
    }
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
