//! relperf — command-line front end.
//!
//! Two families of modes:
//!
//! **Cluster an existing measurements CSV** (any source: real devices, other
//! harnesses):
//!
//!   $ relperf --input measurements.csv
//!   $ relperf --input measurements.csv --rep 200 --out clusters.csv --matrix
//!
//! **Sharded measurement campaigns** (see src/campaign/): describe the plan
//! once, run shards anywhere — possibly different machines — and merge the
//! shard files centrally. The merged clustering is bit-identical to a
//! single-process run of the same spec:
//!
//!   $ relperf --campaign-init plan.spec            # 1. emit the plan
//!   $ relperf --campaign plan.spec --shard 0/4 --out shard_0.csv
//!   $ relperf --campaign plan.spec --shard 1/4 --out shard_1.csv   # ... 2/4, 3/4
//!   $ relperf --campaign plan.spec --merge 'shard_*.csv'           # 3. cluster
//!   $ relperf --campaign plan.spec --run --shards 4 --workers 4  # one host
//!
//! Adaptive campaigns (--adaptive, --min-n/--max-n/--batch/--stability)
//! measure incrementally and stop algorithms whose performance-class
//! membership stabilized, reporting the measurements saved against the
//! fixed-N plan; --samples-csv records the per-algorithm counts.
//! --coordinated (with --run) coordinates the stopping across shards — the
//! coordinator re-clusters the merged measurements between rounds and
//! broadcasts the global stop-set, so per-algorithm counts are K-invariant;
//! --confidence <q> swaps the stability rule for the confidence-targeted
//! one, and --stopset-csv records the coordinator's per-round stop-set.
//!
//! Input format (written by core::write_measurements_csv, campaign shard
//! files and the experiment benches' --csv option; bench_micro_kernels is the
//! exception — its --csv emits google-benchmark's own CSV schema, which this
//! tool does not read):
//!
//!   algorithm,measurement_index,seconds
//!   algDDA,0,0.0406
//!   ...

#include "cache/cached_campaign.hpp"
#include "campaign/campaign.hpp"
#include "core/cluster_diff.hpp"
#include "core/io.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "linalg/backend.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

#include <cstdio>
#include <fstream>

using namespace relperf;

namespace {

/// Prints a note when a plan names backends this build does not have. Typos
/// die loudly when a shard *runs* (the registry error lists the registered
/// names); at init time an unknown name may be a backend of the machine the
/// spec ships to, so it only warns.
void warn_unregistered_backends(const campaign::CampaignSpec& spec) {
    std::vector<std::string> unknown;
    if (!linalg::has_backend(spec.backend)) unknown.push_back(spec.backend);
    for (const std::string& name : spec.variant_backends) {
        if (!linalg::has_backend(name)) unknown.push_back(name);
    }
    if (unknown.empty()) return;
    std::fprintf(stderr,
                 "note: backend%s '%s' %s not registered in this build "
                 "(registered: %s); shards must run on a build that has "
                 "%s\n",
                 unknown.size() > 1 ? "s" : "",
                 str::join(unknown, "', '").c_str(),
                 unknown.size() > 1 ? "are" : "is",
                 str::join(linalg::backend_names(), ", ").c_str(),
                 unknown.size() > 1 ? "them" : "it");
}

/// --cluster-diff old.csv,new.csv: compare performance-class memberships.
int cluster_diff(const std::string& pair) {
    const std::vector<std::string> paths = str::split(pair, ',');
    if (paths.size() != 2 || str::trim(paths[0]).empty() ||
        str::trim(paths[1]).empty()) {
        std::fputs("error: --cluster-diff expects 'old.csv,new.csv'\n",
                   stderr);
        return 2;
    }
    const std::string old_path(str::trim(paths[0]));
    const std::string new_path(str::trim(paths[1]));
    const core::FinalClusters old_clusters =
        core::read_final_clusters_csv(old_path);
    const core::FinalClusters new_clusters =
        core::read_final_clusters_csv(new_path);
    const core::ClusterDiff diff =
        core::diff_clusterings(old_clusters, new_clusters);
    std::printf("cluster-diff: %s (%zu algorithms) vs %s (%zu algorithms)\n",
                old_path.c_str(), old_clusters.algorithms.size(),
                new_path.c_str(), new_clusters.algorithms.size());
    std::fputs(core::render_cluster_diff(diff).c_str(), stdout);
    return diff.identical() ? 0 : 1;
}

/// Applies the --adaptive/--min-n/--max-n/--batch/--stability overrides to a
/// campaign spec. Any of the four value options implies --adaptive; enabling
/// adaptive on a fixed-N spec starts from min_n = 10. Like --backend, these
/// change the measurement plan (and the spec hash): every shard and the
/// merge must be invoked with the same adaptive options.
/// True when any adaptive option was given — the one list both
/// apply_adaptive_overrides and the --input-mode guard consult.
bool adaptive_options_present(const support::CliParser& cli) {
    return cli.flag("adaptive") || cli.flag("coordinated") ||
           cli.value_optional("min-n").has_value() ||
           cli.value_optional("max-n").has_value() ||
           cli.value_optional("batch").has_value() ||
           cli.value_optional("stability").has_value() ||
           cli.value_optional("confidence").has_value();
}

void apply_adaptive_overrides(const support::CliParser& cli,
                              campaign::CampaignSpec& spec) {
    if (!adaptive_options_present(cli)) return;
    const auto min_n = cli.value_optional("min-n");
    const auto max_n = cli.value_optional("max-n");
    const auto batch = cli.value_optional("batch");
    const auto stability = cli.value_optional("stability");
    // Zero would silently turn adaptive back off (adaptive_min == 0 means
    // "fixed-N"): an explicit adaptive request with a zero knob is an error.
    if (max_n) spec.measurements = str::parse_positive_size(*max_n, "--max-n");
    if (!spec.adaptive()) spec.adaptive_min = core::AdaptiveConfig{}.min_n;
    if (min_n) spec.adaptive_min = str::parse_positive_size(*min_n, "--min-n");
    if (batch) spec.adaptive_batch = str::parse_positive_size(*batch, "--batch");
    if (stability) {
        spec.adaptive_stability = str::parse_positive_size(*stability, "--stability");
    }
    if (cli.flag("coordinated")) spec.adaptive_coordinated = true;
    if (const auto confidence = cli.value_optional("confidence")) {
        spec.adaptive_confidence = str::parse_double(*confidence,
                                                     "--confidence");
    }
    spec.validate(); // e.g. --min-n above the cap dies here, not mid-run
}

/// Prints what adaptive early stopping saved against the fixed-N plan and
/// optionally writes the per-algorithm sample counts CSV (the CI artifact).
/// The savings line reads the metrics registry — the same counters the
/// --metrics dump exposes — so the printed number and the exported
/// relperf_samples_total can never drift apart. Measuring modes feed the
/// counters from the engine; --merge feeds them at shard ingest.
void report_adaptive(const campaign::CampaignSpec& spec,
                     const core::MeasurementSet& measurements,
                     const std::optional<std::string>& samples_csv,
                     std::size_t cache_saved = 0) {
    if (samples_csv) {
        support::CsvWriter csv(*samples_csv, {"algorithm", "samples"});
        for (std::size_t i = 0; i < measurements.size(); ++i) {
            csv.add_row({measurements.name(i),
                         std::to_string(measurements.samples(i).size())});
        }
        std::printf("per-algorithm sample counts written to %s\n",
                    samples_csv->c_str());
    }
    if (spec.adaptive()) {
        const obs::Metrics& m = obs::metrics();
        std::printf("adaptive: %s\n",
                    core::render_savings(m.samples_total.value(),
                                         m.samples_fixed_n_total.value())
                        .c_str());
    }
    // Measurement cost the result cache absorbed on top of (and
    // independently of) the adaptive savings: samples_total above already
    // counts only the fresh executor draws.
    if (cache_saved > 0) {
        std::printf("saved via cache: %zu samples\n", cache_saved);
    }
}

/// --cache-stats: the on-disk state plus this process's lookup counters.
void print_cache_stats(const cache::ResultCache& result_cache) {
    const cache::CacheStats stats = result_cache.stats();
    const obs::Metrics& m = obs::metrics();
    std::printf("cache stats: dir=%s entries=%zu bytes=%zu\n",
                result_cache.config().dir.c_str(), stats.entries, stats.bytes);
    std::printf(
        "cache stats: hits=%llu misses=%llu extensions=%llu "
        "samples_saved=%llu\n",
        static_cast<unsigned long long>(m.cache_hits_total.value()),
        static_cast<unsigned long long>(m.cache_misses_total.value()),
        static_cast<unsigned long long>(m.cache_extensions_total.value()),
        static_cast<unsigned long long>(
            m.cache_extension_samples_saved_total.value()));
}

/// Renders the cluster + final tables and optionally writes the clustering
/// CSV (shared tail of every analyzing mode).
void report_analysis(const core::AnalysisResult& result,
                     const std::optional<std::string>& out_path) {
    std::puts("Performance classes with relative scores:");
    std::fputs(
        core::render_cluster_table(result.clustering, result.measurements).c_str(),
        stdout);
    std::puts("\nFinal unique assignment:");
    std::fputs(
        core::render_final_table(result.clustering, result.measurements).c_str(),
        stdout);
    if (out_path) {
        core::write_clustering_csv(result.clustering, result.measurements,
                                   *out_path);
        std::printf("\nclustering written to %s\n", out_path->c_str());
    }
}

/// --list-backends: what this build can measure on.
int list_backends() {
    std::printf("linalg backends in this build (default: %s):\n",
                linalg::default_backend().name.c_str());
    for (const std::string& name : linalg::backend_names()) {
        std::printf("  %-10s %s\n", name.c_str(),
                    linalg::backend(name).description.c_str());
    }
    if (!linalg::has_backend(linalg::kBlasBackend)) {
        std::puts("  (no 'blas' backend: rebuild with -DRELPERF_ENABLE_BLAS=ON "
                  "and a vendor BLAS/LAPACK)");
    }
    return 0;
}

int campaign_init(const support::CliParser& cli, const std::string& path,
                  const std::optional<std::string>& backend,
                  const std::optional<std::string>& variants) {
    campaign::CampaignSpec spec;
    if (backend) spec.backend = *backend;
    if (variants) {
        spec.variant_backends = str::parse_name_list(*variants, "--variants");
    }
    apply_adaptive_overrides(cli, spec);
    warn_unregistered_backends(spec);
    spec.save(path);
    std::printf("campaign spec written to %s\n\n", path.c_str());
    std::printf("next steps (K = any shard count, here 2):\n"
                "  relperf --campaign %s --shard 0/2 --out shard_0.csv\n"
                "  relperf --campaign %s --shard 1/2 --out shard_1.csv\n"
                "  relperf --campaign %s --merge 'shard_*.csv'\n",
                path.c_str(), path.c_str(), path.c_str());
    return 0;
}

int campaign_shard(const campaign::CampaignSpec& spec, const std::string& ref_text,
                   const std::optional<std::string>& out_path,
                   const std::optional<std::string>& samples_csv) {
    if (!out_path) {
        std::fputs("error: --shard requires --out <shard.csv>\n", stderr);
        return 2;
    }
    const campaign::ShardRef ref = campaign::parse_shard_ref(ref_text);
    const campaign::ShardResult shard =
        campaign::run_shard(spec, ref.index, ref.count);
    campaign::write_shard_csv(shard, *out_path);
    const std::string backend_label =
        spec.variant_backends.empty()
            ? spec.backend
            : spec.backend + ", per-task axis " +
                  str::join(spec.variant_backends, "|");
    const std::string n_label =
        spec.adaptive() ? str::format("%zu..%zu (adaptive)", spec.adaptive_min,
                                      spec.measurements)
                        : std::to_string(spec.measurements);
    std::printf("campaign '%s' shard %zu/%zu: %zu algorithms x %s "
                "measurements -> %s (backend %s, spec hash %016llx)\n",
                spec.name.c_str(), ref.index, ref.count,
                shard.measurements.size(), n_label.c_str(),
                out_path->c_str(), backend_label.c_str(),
                static_cast<unsigned long long>(shard.manifest.spec_hash));
    report_adaptive(spec, shard.measurements, samples_csv);
    return 0;
}

int campaign_merge(const campaign::CampaignSpec& spec, const std::string& pattern,
                   const std::optional<std::string>& out_path,
                   const std::optional<std::string>& merged_csv,
                   const std::optional<std::string>& samples_csv) {
    const std::vector<std::string> paths =
        campaign::expand_shard_pattern(pattern);
    std::vector<campaign::ShardResult> shards;
    shards.reserve(paths.size());
    for (const std::string& path : paths) {
        shards.push_back(campaign::read_shard_csv(path));
        // Ingest accounting: the shards were measured elsewhere, so their
        // cost enters the registry here — the savings line and the
        // --metrics dump then describe the whole campaign, not this
        // (measurement-free) merge process.
        obs::metrics().samples_total.inc(
            shards.back().measurements.total_samples());
        obs::metrics().samples_fixed_n_total.inc(
            shards.back().measurements.size() * spec.measurements);
        std::printf("read %s (shard %zu/%zu, host %s)\n", path.c_str(),
                    shards.back().manifest.shard_index,
                    shards.back().manifest.shard_count,
                    shards.back().manifest.host.c_str());
    }
    core::MeasurementSet merged = campaign::merge_shards(spec, shards);
    if (merged_csv) {
        core::write_measurements_csv(merged, *merged_csv);
        std::printf("merged measurements written to %s\n", merged_csv->c_str());
    }
    report_adaptive(spec, merged, samples_csv);
    std::printf("merged %zu shards: %zu algorithms x %zu total "
                "measurements\n\n",
                shards.size(), merged.size(), merged.total_samples());
    const core::AnalysisResult result =
        core::analyze_measurements(std::move(merged), spec.analysis_config());
    report_analysis(result, out_path);
    return 0;
}

int campaign_run(const campaign::CampaignSpec& spec, std::size_t shard_count,
                 std::size_t workers, const cache::CacheConfig& cache_cfg,
                 bool cache_stats,
                 const std::optional<std::string>& out_path,
                 const std::optional<std::string>& merged_csv,
                 const std::optional<std::string>& samples_csv,
                 const std::optional<std::string>& stopset_csv) {
    if (shard_count == 0) shard_count = spec.shards;
    if (stopset_csv && !spec.adaptive_coordinated) {
        std::fputs("error: --stopset-csv records the coordinator's per-round "
                   "stop-set; it needs --coordinated\n",
                   stderr);
        return 2;
    }
    if (spec.adaptive_coordinated) {
        std::printf("campaign '%s': %zu shards, coordinated stopping "
                    "(%s rule)\n\n",
                    spec.name.c_str(), shard_count,
                    spec.adaptive_confidence != 0.0 ? "confidence"
                                                    : "stability");
    } else {
        std::printf("campaign '%s': %zu shards, %s workers\n\n",
                    spec.name.c_str(), shard_count,
                    workers == 0 ? "all" : std::to_string(workers).c_str());
    }

    core::AnalysisResult result;
    std::vector<std::size_t> stopset_rounds;
    std::size_t rounds = 0;
    std::size_t cache_saved = 0;
    if (cache_cfg.enabled()) {
        cache::ResultCache result_cache(cache_cfg);
        cache::CachedRunResult run = cache::run_campaign_cached(
            spec, result_cache, shard_count, workers);
        std::printf("cache: %s%s\n", cache::to_string(run.cache),
                    run.bypassed ? " (shard-local adaptive stopping with "
                                   "K > 1 shards is not cacheable)"
                                 : "");
        result = std::move(run.analysis);
        stopset_rounds = std::move(run.stopset_rounds);
        rounds = run.rounds;
        cache_saved = run.samples_from_cache;
        if (cache_stats) print_cache_stats(result_cache);
    } else if (spec.adaptive_coordinated) {
        campaign::CoordinatedCampaignResult coord =
            campaign::run_coordinated_campaign(spec, shard_count);
        result = std::move(coord.analysis);
        stopset_rounds = std::move(coord.stopset_rounds);
        rounds = coord.rounds;
    } else {
        result = campaign::run_campaign(spec, shard_count, workers);
    }

    if (spec.adaptive_coordinated) {
        std::printf("coordinator: %zu rounds, final stop-set %zu/%zu "
                    "algorithms\n",
                    rounds,
                    stopset_rounds.empty() ? 0 : stopset_rounds.back(),
                    result.measurements.size());
        if (stopset_csv) {
            support::CsvWriter csv(*stopset_csv, {"round", "stopped_total"});
            for (std::size_t i = 0; i < stopset_rounds.size(); ++i) {
                csv.add_row({std::to_string(i + 1),
                             std::to_string(stopset_rounds[i])});
            }
            std::printf("per-round stop-set written to %s\n",
                        stopset_csv->c_str());
        }
    }
    if (merged_csv) {
        core::write_measurements_csv(result.measurements, *merged_csv);
        std::printf("merged measurements written to %s\n\n",
                    merged_csv->c_str());
    }
    report_adaptive(spec, result.measurements, samples_csv, cache_saved);
    report_analysis(result, out_path);
    return 0;
}

int analyze_input(const support::CliParser& cli, const std::string& input) {
    core::MeasurementSet loaded = core::read_measurements_csv(input);

    // Optional truncation (simulate a smaller N).
    const int n_max = cli.value_int("n-max");
    core::MeasurementSet measurements;
    if (n_max > 0) {
        for (std::size_t i = 0; i < loaded.size(); ++i) {
            const auto samples = loaded.samples(i);
            const std::size_t keep =
                std::min(samples.size(), static_cast<std::size_t>(n_max));
            measurements.add(loaded.name(i),
                             {samples.begin(), samples.begin() + keep});
        }
    } else {
        measurements = std::move(loaded);
    }

    core::AnalysisConfig config;
    config.comparator.rounds = static_cast<std::size_t>(cli.value_int("rounds"));
    config.comparator.tie_epsilon = cli.value_double("tie-epsilon");
    config.comparator.decision_threshold = cli.value_double("threshold");
    config.clustering.repetitions = static_cast<std::size_t>(cli.value_int("rep"));
    config.clustering.seed = static_cast<std::uint64_t>(cli.value_int("seed"));

    std::printf("relperf: %zu algorithms from %s\n\n", measurements.size(),
                input.c_str());

    if (cli.flag("summary")) {
        std::fputs(core::render_summary_table(measurements).c_str(), stdout);
        std::fputs("\n", stdout);
    }
    if (cli.flag("distributions")) {
        std::fputs(core::render_distributions(measurements).c_str(), stdout);
    }
    if (cli.flag("matrix")) {
        const core::BootstrapComparator comparator(config.comparator);
        stats::Rng rng(config.clustering.seed + 1);
        std::fputs(core::render_comparison_matrix(measurements, comparator, rng)
                       .c_str(),
                   stdout);
        std::fputs("\n", stdout);
    }

    const core::AnalysisResult result =
        core::analyze_measurements(std::move(measurements), config);
    report_analysis(result, cli.value_optional("out"));
    return 0;
}

/// Declares every option (parsing happens in main).
support::CliParser build_cli() {
    support::CliParser cli(
        "relperf — cluster algorithms into performance classes "
        "(Sankaran & Bientinesi 2021)");
    cli.add_option("input", "measurements CSV (algorithm,measurement_index,seconds)",
                   "");
    cli.add_option("rep", "clustering repetitions (paper Rep; --input mode)", "100");
    cli.add_option("rounds", "bootstrap rounds per comparison (paper R; "
                             "--input mode)", "100");
    cli.add_option("tie-epsilon", "relative tie band of the comparator "
                                  "(--input mode)", "0.02");
    cli.add_option("threshold", "decision threshold on the win-rate score "
                                "(--input mode)", "0.9");
    cli.add_option("n-max", "use at most this many measurements per algorithm "
                            "(0 = all)", "0");
    cli.add_option("seed", "clustering seed (--input mode)", "42");
    cli.add_option("out", "clustering CSV path (shard CSV path in --shard mode)",
                   "");
    cli.add_flag("summary", "print per-algorithm summary statistics");
    cli.add_flag("matrix", "print the pairwise three-way comparison matrix");
    cli.add_flag("distributions", "print shared-axis ASCII histograms");
    cli.add_option("campaign-init", "write a default campaign spec to this "
                                    "path and exit", "");
    cli.add_option("campaign", "campaign spec file (enables the campaign "
                               "modes below; analysis knobs come from the "
                               "spec)", "");
    cli.add_option("shard", "run one shard 'i/K' of the campaign (0-based); "
                            "requires --out", "");
    cli.add_option("merge", "merge shard files (glob pattern or "
                            "comma-separated paths) and cluster", "");
    cli.add_flag("run", "run the whole campaign on this machine and cluster");
    cli.add_option("shards", "override the spec's shard count for --run "
                             "(0 = spec value)", "0");
    cli.add_option("workers", "worker threads for --run (0 = all cores)", "1");
    cli.add_option("merged-csv", "also write the merged measurements CSV here "
                                 "(--merge/--run modes)", "");
    cli.add_option("backend", "chain-default linalg backend for campaign "
                              "modes (overrides the spec's `backend`; see "
                              "--list-backends)", "");
    cli.add_option("variants", "per-task backend axis for campaign modes, "
                               "comma-separated (overrides the spec's "
                               "`variant_backends`; grows the plan to the "
                               "(2B)^k placement x backend variants)", "");
    cli.add_flag("list-backends", "list the linalg backends of this build and "
                                  "exit");
    cli.add_flag("adaptive", "campaign modes: measure incrementally and stop "
                             "algorithms whose class membership stabilized "
                             "(overrides the spec's adaptive keys)");
    cli.add_option("min-n", "adaptive: measurements before any early stop "
                            "(implies --adaptive; default 10)", "");
    cli.add_option("max-n", "adaptive: per-algorithm cap (implies --adaptive; "
                            "overrides the spec's `measurements`)", "");
    cli.add_option("batch", "adaptive: measurements added per round (implies "
                            "--adaptive; default 5)", "");
    cli.add_option("stability", "adaptive: consecutive stable clusterings "
                                "before an algorithm stops (implies "
                                "--adaptive; default 2)", "");
    cli.add_flag("coordinated", "adaptive --run: coordinate stopping across "
                                "shards — re-cluster the merged measurements "
                                "between rounds and broadcast the global "
                                "stop-set (implies --adaptive; counts become "
                                "K-invariant)");
    cli.add_option("confidence", "adaptive: stop on the confidence-targeted "
                                 "rule at this one-sided level, in (0.5, 1) "
                                 "(implies --adaptive; unset = stability "
                                 "rule)", "");
    cli.add_option("stopset-csv", "write the coordinator's per-round "
                                  "cumulative stop-set CSV here "
                                  "(--coordinated --run)", "");
    cli.add_option("samples-csv", "write the per-algorithm sample counts CSV "
                                  "here (campaign modes)", "");
    cli.add_option("cache-dir", "campaign --run: persistent result cache "
                                "directory — an exact plan-hash hit skips "
                                "measurement entirely, a smaller-budget entry "
                                "of the same plan is extended by measuring "
                                "only the delta", "");
    cli.add_option("cache-max-entries", "evict least-recently-used cache "
                                        "entries beyond this count "
                                        "(0 = unlimited)", "0");
    cli.add_option("cache-max-bytes", "evict least-recently-used cache "
                                      "entries beyond this total size "
                                      "(0 = unlimited)", "0");
    cli.add_flag("cache-stats", "print the result cache's entry count, size "
                                "and this run's hit/miss counters (alone "
                                "with --cache-dir, or after --run)");
    cli.add_option("trace", "write a Chrome trace-event JSON of this run "
                            "here (open in chrome://tracing or "
                            "ui.perfetto.dev)", "");
    cli.add_option("metrics", "write a Prometheus text-format metrics dump "
                              "here", "");
    cli.add_flag("progress", "live progress meter on stderr (campaign "
                             "modes)");
    cli.add_option("cluster-diff", "compare two clustering CSVs 'old.csv,"
                                   "new.csv' by performance-class membership; "
                                   "exits non-zero when membership changed",
                   "");
    return cli;
}

/// Mode dispatch (everything after option parsing). Split out of main so
/// the observability outputs can be written after whichever mode ran.
int run_modes(const support::CliParser& cli) {
    if (cli.flag("list-backends")) {
        return list_backends();
    }
    if (const auto diff_pair = cli.value_optional("cluster-diff")) {
        return cluster_diff(*diff_pair);
    }

    const auto backend_override = cli.value_optional("backend");
    const auto variants_override = cli.value_optional("variants");
    if (const auto init_path = cli.value_optional("campaign-init")) {
        return campaign_init(cli, *init_path, backend_override,
                             variants_override);
    }

    cache::CacheConfig cache_cfg;
    cache_cfg.dir = cli.value("cache-dir");
    cache_cfg.max_entries =
        str::parse_size(cli.value("cache-max-entries"), "--cache-max-entries");
    cache_cfg.max_bytes =
        str::parse_size(cli.value("cache-max-bytes"), "--cache-max-bytes");
    const bool cache_stats = cli.flag("cache-stats");
    if (cache_stats && !cache_cfg.enabled()) {
        std::fputs("error: --cache-stats needs --cache-dir\n", stderr);
        return 2;
    }

    const auto input = cli.value_optional("input");
    const auto campaign_path = cli.value_optional("campaign");
    if (input && campaign_path) {
        std::fputs("error: --input and --campaign are mutually exclusive\n",
                   stderr);
        return 2;
    }
    if (input && (backend_override || variants_override)) {
        std::fputs("error: --backend/--variants only apply to campaign modes "
                   "(--input CSVs were measured elsewhere)\n",
                   stderr);
        return 2;
    }
    if (input && cache_cfg.enabled()) {
        std::fputs("error: --cache-dir/--cache-stats only apply to campaign "
                   "--run (the cache is keyed by the campaign plan hash)\n",
                   stderr);
        return 2;
    }
    if (input &&
        (adaptive_options_present(cli) || cli.value_optional("samples-csv") ||
         cli.value_optional("stopset-csv"))) {
        std::fputs("error: --adaptive/--min-n/--max-n/--batch/--stability/"
                   "--coordinated/--confidence/--samples-csv/--stopset-csv "
                   "only apply to campaign modes (--input CSVs were measured "
                   "elsewhere)\n",
                   stderr);
        return 2;
    }

    if (campaign_path) {
        campaign::CampaignSpec spec =
            campaign::CampaignSpec::load(*campaign_path);
        // The overrides change the measurement plan (and so the spec hash):
        // every shard and the merge must be invoked with the same --backend
        // and --variants.
        if (backend_override) spec.backend = *backend_override;
        if (variants_override) {
            spec.variant_backends =
                str::parse_name_list(*variants_override, "--variants");
        }
        apply_adaptive_overrides(cli, spec);
        obs::set_provenance("spec", spec.name);
        obs::set_provenance(
            "plan_hash",
            str::format("%016llx",
                        static_cast<unsigned long long>(spec.hash())));
        obs::set_provenance("executor",
                            spec.executor == campaign::ExecutorKind::Sim
                                ? "sim"
                                : "real");
        obs::set_provenance("backend", spec.backend);
        if (!spec.variant_backends.empty()) {
            obs::set_provenance("variant_backends",
                                str::join(spec.variant_backends, ","));
        }
        std::string adaptive_prov = "fixed-N";
        if (spec.adaptive()) {
            adaptive_prov =
                str::format("min=%zu,max=%zu,batch=%zu,stability=%zu",
                            spec.adaptive_min, spec.measurements,
                            spec.adaptive_batch, spec.adaptive_stability);
            if (spec.adaptive_coordinated) adaptive_prov += ",coordinated";
            if (spec.adaptive_confidence != 0.0) {
                adaptive_prov += str::format(",confidence=%.12g",
                                             spec.adaptive_confidence);
            }
        }
        obs::set_provenance("adaptive", adaptive_prov);
        const auto shard_ref = cli.value_optional("shard");
        const auto merge_pattern = cli.value_optional("merge");
        const int modes = (shard_ref ? 1 : 0) + (merge_pattern ? 1 : 0) +
                          (cli.flag("run") ? 1 : 0);
        if (modes != 1) {
            std::fputs("error: --campaign needs exactly one of --shard i/K, "
                       "--merge <pattern>, --run\n",
                       stderr);
            return 2;
        }
        if (cli.value_optional("stopset-csv") && !cli.flag("run")) {
            std::fputs("error: --stopset-csv only applies to --coordinated "
                       "--run (only the coordinator sees the global "
                       "stop-set)\n",
                       stderr);
            return 2;
        }
        if (cache_cfg.enabled() && !cli.flag("run")) {
            std::fputs("error: --cache-dir only applies to --run (a shard or "
                       "a merge is a partial plan the cache cannot key)\n",
                       stderr);
            return 2;
        }
        if (shard_ref) {
            return campaign_shard(spec, *shard_ref, cli.value_optional("out"),
                                  cli.value_optional("samples-csv"));
        }
        if (merge_pattern) {
            return campaign_merge(spec, *merge_pattern,
                                  cli.value_optional("out"),
                                  cli.value_optional("merged-csv"),
                                  cli.value_optional("samples-csv"));
        }
        return campaign_run(spec,
                            str::parse_size(cli.value("shards"), "--shards"),
                            str::parse_size(cli.value("workers"), "--workers"),
                            cache_cfg, cache_stats,
                            cli.value_optional("out"),
                            cli.value_optional("merged-csv"),
                            cli.value_optional("samples-csv"),
                            cli.value_optional("stopset-csv"));
    }

    // Standalone `--cache-dir <d> --cache-stats`: inspect the cache and exit.
    if (!input && cache_stats) {
        const cache::ResultCache result_cache(cache_cfg);
        print_cache_stats(result_cache);
        return 0;
    }

    if (!input) {
        std::fputs("error: one of --input, --campaign, --campaign-init is "
                   "required (see --help)\n",
                   stderr);
        return 2;
    }
    return analyze_input(cli, *input);
}

} // namespace

int main(int argc, char** argv) try {
    support::CliParser cli = build_cli();
    if (!cli.parse(argc, argv)) return 0;

    // Metrics counting is always on: the savings line reads the registry,
    // and the counters are a write-only side channel (one relaxed add per
    // site — never any effect on measured values or clusterings).
    obs::set_metrics_enabled(true);
    const auto trace_path = cli.value_optional("trace");
    const auto metrics_path = cli.value_optional("metrics");
    if (trace_path) obs::set_tracing_enabled(true);
    if (cli.flag("progress")) {
        obs::set_progress_sink([](const obs::Progress& p) {
            std::fprintf(stderr, "\r[%s %zu/%zu]    ", p.stage, p.done,
                         p.total);
            if (p.done >= p.total) std::fputc('\n', stderr);
        });
    }
    obs::set_provenance("command", "relperf_cli");
    obs::set_provenance("registered_backends",
                        str::join(linalg::backend_names(), ","));

    const int rc = run_modes(cli);

    if (trace_path) {
        obs::write_trace_json(*trace_path);
        std::printf("trace written to %s (%zu events)\n", trace_path->c_str(),
                    obs::trace_event_count());
    }
    if (metrics_path) {
        std::ofstream out(*metrics_path);
        out << obs::registry().render_prometheus();
        out.close();
        if (!out) {
            std::fprintf(stderr, "error: failed writing metrics to %s\n",
                         metrics_path->c_str());
            return 1;
        }
        std::printf("metrics written to %s\n", metrics_path->c_str());
    }
    return rc;
} catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
