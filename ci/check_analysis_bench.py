#!/usr/bin/env python3
"""Validate bench_analysis's CSV artifact.

Usage: check_analysis_bench.py ANALYSIS_CSV

Asserts that
  * the header is exactly section,metric,param,value and every row is
    complete;
  * every value parses as a finite number;
  * the four sections the bench promises (comparator, clusterer, engine,
    coordination) are all present;
  * the comparator speedup row exists and is not catastrophically below 1
    (threshold 0.5 — lenient on purpose: CI runners are noisy and this
    check guards against the optimization regressing outright, not against
    run-to-run jitter);
  * the clusterer section covers the documented problem sizes and the
    engine section carries both the reuse=off and reuse=on round cost;
  * the coordination section covers both stopping rules at K in {1, 4, 16},
    every run saved samples, and for each rule the saved count is
    monotonically non-decreasing in K (coordinated stopping promises
    K-invariant counts, so any *decrease* with more shards is a bug, not
    noise — the values are deterministic);
  * the cache section covers the cold/exact/prefix tiers, the cold run
    served nothing, the exact hit served every sample, and the prefix
    extension served the cached budget's worth (all deterministic counts,
    so these are equalities, not floors).

Exits non-zero with a message naming the first violated invariant.
"""

import csv
import math
import sys

EXPECTED_HEADER = ["section", "metric", "param", "value"]
EXPECTED_SECTIONS = {"comparator", "clusterer", "engine", "coordination",
                     "cache"}
SPEEDUP_FLOOR = 0.5
COORDINATION_RULES = ("stability", "confidence")
COORDINATION_SHARDS = (1, 4, 16)


def fail(message: str) -> None:
    print(f"check_analysis_bench: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_analysis_bench.py ANALYSIS_CSV")
    path = sys.argv[1]

    with open(path, encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            fail(f"{path}: empty file")
        if header != EXPECTED_HEADER:
            fail(f"{path}: header {header} != {EXPECTED_HEADER}")
        rows = []
        for lineno, row in enumerate(reader, start=2):
            if len(row) != len(EXPECTED_HEADER):
                fail(f"{path}:{lineno}: expected {len(EXPECTED_HEADER)} "
                     f"fields, got {len(row)}")
            section, metric, param, raw = row
            try:
                value = float(raw)
            except ValueError:
                fail(f"{path}:{lineno}: value '{raw}' is not a number")
            if not math.isfinite(value):
                fail(f"{path}:{lineno}: value {raw} is not finite")
            rows.append((section, metric, param, value))

    if not rows:
        fail(f"{path}: no data rows")

    sections = {section for section, _, _, _ in rows}
    missing = EXPECTED_SECTIONS - sections
    if missing:
        fail(f"{path}: missing sections {sorted(missing)}")

    def find(section: str, metric: str) -> dict:
        return {param: value for s, m, param, value in rows
                if s == section and m == metric}

    speedups = find("comparator", "speedup")
    if not speedups:
        fail(f"{path}: no comparator speedup row")
    for param, value in speedups.items():
        if value <= SPEEDUP_FLOOR:
            fail(f"{path}: comparator speedup ({param}) = {value:.3f} "
                 f"<= {SPEEDUP_FLOOR} — the scratch/nth_element fast path "
                 f"has regressed")

    sparse = find("clusterer", "sparse_wall_ms")
    for expected in ("p=64", "p=256", "p=1024"):
        if expected not in sparse:
            fail(f"{path}: clusterer sparse_wall_ms missing {expected}")

    round_cost = find("engine", "round_wall_ms")
    for expected in ("reuse=off", "reuse=on"):
        if expected not in round_cost:
            fail(f"{path}: engine round_wall_ms missing {expected}")
    if not find("engine", "round_speedup"):
        fail(f"{path}: no engine round_speedup row")

    saved = find("coordination", "saved_samples")
    for rule in COORDINATION_RULES:
        previous = None
        for shards in COORDINATION_SHARDS:
            param = f"rule={rule},K={shards}"
            if param not in saved:
                fail(f"{path}: coordination saved_samples missing {param}")
            value = saved[param]
            if value <= 0:
                fail(f"{path}: coordination {param} saved {value:.0f} "
                     f"samples — adaptive stopping never fired")
            if previous is not None and value < previous:
                fail(f"{path}: coordination rule={rule} saved samples "
                     f"decreased from {previous:.0f} to {value:.0f} as K "
                     f"grew — coordinated counts must be K-invariant")
            previous = value

    cache_wall = find("cache", "run_wall_ms")
    cache_served = find("cache", "samples_from_cache")
    for tier in ("tier=cold", "tier=exact", "tier=prefix"):
        if tier not in cache_wall:
            fail(f"{path}: cache run_wall_ms missing {tier}")
        if tier not in cache_served:
            fail(f"{path}: cache samples_from_cache missing {tier}")
    if cache_served["tier=cold"] != 0:
        fail(f"{path}: cache cold run served "
             f"{cache_served['tier=cold']:.0f} samples — a cold run must "
             f"draw everything")
    if cache_served["tier=exact"] <= 0:
        fail(f"{path}: cache exact hit served nothing — the entry was "
             f"never hit")
    if cache_served["tier=prefix"] <= 0:
        fail(f"{path}: cache prefix extension served nothing — the "
             f"smaller-budget entry was not reused")
    if cache_served["tier=prefix"] != cache_served["tier=exact"]:
        fail(f"{path}: cache prefix extension served "
             f"{cache_served['tier=prefix']:.0f} samples, expected exactly "
             f"the cached budget ({cache_served['tier=exact']:.0f}) — "
             f"the replayed prefix is deterministic")

    print(f"check_analysis_bench: OK ({len(rows)} rows, "
          f"sections {sorted(sections)})")


if __name__ == "__main__":
    main()
