#!/usr/bin/env python3
"""Cross-check relperf's observability outputs against each other.

Usage: check_obs.py TRACE_JSON METRICS_PROM SAMPLES_CSV [--coordinated]

Asserts that
  * the trace file is valid JSON of the Chrome trace-event object form,
    every event is a complete ("ph": "X") event with the fields the format
    requires, nothing was dropped, and the provenance record is attached;
  * the Prometheus dump parses and carries the relperf counters plus the
    relperf_build_info info metric;
  * relperf_samples_total equals the sum of the per-algorithm counts in the
    samples CSV — the metrics side and the measurement side of the run must
    tell the same story;
  * with --coordinated (the run was a coordinated adaptive campaign): the
    trace carries the campaign.coordinate span, both coordination counters
    fired, and relperf_stopset_broadcast_total is a whole multiple of
    relperf_coordination_rounds (each round broadcasts to every shard).

Exits non-zero with a message naming the first violated invariant.
"""

import csv
import json
import sys


def fail(message: str) -> None:
    print(f"check_obs: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str, coordinated: bool) -> None:
    with open(path, encoding="utf-8") as handle:
        try:
            trace = json.load(handle)
        except json.JSONDecodeError as err:
            fail(f"{path} is not valid JSON: {err}")

    if not isinstance(trace, dict):
        fail(f"{path}: expected the object trace form, got {type(trace)}")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")

    required = {"name", "cat", "ph", "pid", "tid", "ts", "dur", "args"}
    names = set()
    for i, event in enumerate(events):
        missing = required - event.keys()
        if missing:
            fail(f"{path}: event {i} lacks {sorted(missing)}")
        if event["ph"] != "X":
            fail(f"{path}: event {i} has ph={event['ph']!r}, expected 'X'")
        if not isinstance(event["ts"], int) or not isinstance(event["dur"], int):
            fail(f"{path}: event {i} has non-integer ts/dur")
        names.add(event["name"])

    expected_spans = ["engine.run", "measure_all", "clusterer.cluster"]
    if coordinated:
        expected_spans.append("campaign.coordinate")
    for expected in expected_spans:
        if expected not in names:
            fail(f"{path}: no {expected!r} span recorded (saw {sorted(names)})")

    other = trace.get("otherData")
    if not isinstance(other, dict):
        fail(f"{path}: otherData missing")
    provenance = other.get("provenance")
    if not isinstance(provenance, dict) or "host" not in provenance:
        fail(f"{path}: provenance record missing or lacks 'host'")
    if other.get("droppedEvents") != 0:
        fail(f"{path}: droppedEvents = {other.get('droppedEvents')}")
    print(f"check_obs: {path}: {len(events)} events OK, "
          f"provenance keys: {sorted(provenance)}")


def parse_metrics(path: str) -> dict:
    values = {}
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            if not name:
                fail(f"{path}: malformed sample line {line!r}")
            values[name] = value
    return values


def check_metrics(path: str, coordinated: bool) -> int:
    values = parse_metrics(path)
    for counter in ("relperf_samples_total", "relperf_samples_fixed_n_total",
                    "relperf_adaptive_rounds",
                    "relperf_bootstrap_resamples_total"):
        if counter not in values:
            fail(f"{path}: {counter} missing")
    if not any(name.startswith("relperf_build_info{") for name in values):
        fail(f"{path}: relperf_build_info info metric missing")

    samples_total = int(values["relperf_samples_total"])
    fixed_n_total = int(values["relperf_samples_fixed_n_total"])
    if samples_total <= 0:
        fail(f"{path}: relperf_samples_total = {samples_total}")
    if samples_total > fixed_n_total:
        fail(f"{path}: samples_total {samples_total} exceeds the fixed-N "
             f"plan cost {fixed_n_total}")

    if coordinated:
        for counter in ("relperf_coordination_rounds",
                        "relperf_stopset_broadcast_total"):
            if counter not in values:
                fail(f"{path}: {counter} missing")
        rounds = int(values["relperf_coordination_rounds"])
        broadcasts = int(values["relperf_stopset_broadcast_total"])
        if rounds <= 0:
            fail(f"{path}: relperf_coordination_rounds = {rounds} — the "
                 f"coordinator never ran a round")
        if broadcasts <= 0 or broadcasts % rounds != 0:
            fail(f"{path}: relperf_stopset_broadcast_total = {broadcasts} "
                 f"is not a positive multiple of the {rounds} coordination "
                 f"rounds — each round must broadcast to every shard")

    print(f"check_obs: {path}: {len(values)} samples OK, "
          f"samples_total={samples_total}")
    return samples_total


def csv_sample_sum(path: str) -> int:
    with open(path, encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames != ["algorithm", "samples"]:
            fail(f"{path}: unexpected header {reader.fieldnames}")
        total = 0
        rows = 0
        for row in reader:
            total += int(row["samples"])
            rows += 1
    if rows == 0:
        fail(f"{path}: no data rows")
    print(f"check_obs: {path}: {rows} algorithms, {total} samples")
    return total


def main() -> None:
    argv = sys.argv[1:]
    coordinated = "--coordinated" in argv
    argv = [a for a in argv if a != "--coordinated"]
    if len(argv) != 3:
        fail(f"usage: {sys.argv[0]} TRACE_JSON METRICS_PROM SAMPLES_CSV "
             f"[--coordinated]")
    trace_path, metrics_path, samples_path = argv

    check_trace(trace_path, coordinated)
    samples_total = check_metrics(metrics_path, coordinated)
    csv_total = csv_sample_sum(samples_path)

    if samples_total != csv_total:
        fail(f"relperf_samples_total ({samples_total}) != samples CSV sum "
             f"({csv_total}) — the counters and the measurements disagree")
    print("check_obs: OK — metrics agree with the samples CSV")


if __name__ == "__main__":
    main()
