#pragma once
//! \file measurement_engine.hpp
//! Incremental, early-stopping measurement — the adaptive replacement for
//! the fixed-N batch loop.
//!
//! The paper measures every algorithm a fixed N times and only then runs the
//! bootstrap comparison, but the relative-score clustering itself reveals,
//! round by round, which algorithms' performance-class membership has already
//! stabilized. The MeasurementEngine exploits that: it measures `min_n`
//! samples of every algorithm, clusters, and then keeps extending only the
//! algorithms whose final cluster membership changed recently — an algorithm
//! whose membership has been identical for `stability_rounds` consecutive
//! clusterings stops being measured. The decision is pluggable (see
//! stopping_rule.hpp): the default membership-stability rule implements
//! exactly that, and the confidence-targeted rule instead stops once the
//! class-vs-runner-up score margin is significant at a configured confidence.
//! On edge devices, where measurement cost dominates, this cuts the
//! campaign's total measurements well below `count * max_n` while preserving
//! the membership the fixed-N run finds.
//!
//! Determinism contract: every algorithm draws from its own persistent RNG
//! stream (SampleSource keeps the stream open across rounds), so an
//! algorithm's sample is a deterministic *prefix-extensible* sequence — the
//! adaptive run's samples are literally a prefix of the fixed-N run's, and
//! early-stopping one algorithm cannot perturb another's values. With
//! `max_n == min_n` (adaptive off) the engine performs exactly one round and
//! reproduces the legacy batch path bit for bit.

#include "core/bootstrap_comparator.hpp"
#include "core/clustering.hpp"
#include "core/measurement.hpp"
#include "core/stopping_rule.hpp"
#include "sim/executor.hpp"
#include "sim/real_executor.hpp"
#include "workloads/chain.hpp"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace relperf::core {

/// Knobs of the adaptive rounds.
struct AdaptiveConfig {
    std::size_t min_n = 10; ///< Samples every algorithm gets before any stop.
    std::size_t max_n = 30; ///< Hard cap — the fixed-N budget per algorithm.
    std::size_t batch = 5;  ///< Samples added per algorithm per round.
    /// Consecutive clusterings with unchanged final membership after which an
    /// algorithm stops being measured (MembershipStabilityRule).
    std::size_t stability_rounds = 2;
    /// Which stopping rule decides when an algorithm is settled.
    StoppingRuleKind rule = StoppingRuleKind::Stability;
    /// One-sided confidence level of the ConfidenceTargetRule's margin CI,
    /// in (0.5, 1). Only read when `rule == StoppingRuleKind::Confidence`.
    double confidence = 0.95;
    /// Replay comparison outcomes between pairs of already-stopped
    /// algorithms across rounds instead of re-running the bootstrap (their
    /// samples can no longer change, so the cached outcome is a draw of the
    /// same conditional distribution). Cuts the per-round re-clustering cost
    /// sharply once most algorithms have frozen; the engine's published
    /// final clustering is re-computed from scratch whenever any outcome was
    /// replayed, so EngineResult::clustering always equals what
    /// analyze_measurements would produce on the final measurements.
    bool reuse_frozen_comparisons = true;

    /// True when early stopping can actually happen (max_n > min_n).
    [[nodiscard]] bool enabled() const noexcept { return max_n > min_n; }

    /// Throws InvalidArgument on out-of-range fields.
    void validate() const;
};

/// Where the engine's samples come from. Implementations own one persistent
/// RNG stream per algorithm: consecutive draw() calls for the same index
/// continue the same deterministic sequence (the prefix-extension property
/// the engine's bit-identity guarantee rests on).
class SampleSource {
public:
    virtual ~SampleSource() = default;

    [[nodiscard]] virtual std::size_t count() const = 0;
    [[nodiscard]] virtual std::string name(std::size_t index) const = 0;

    /// The next `n` samples of algorithm `index` from its stream.
    [[nodiscard]] virtual std::vector<double> draw(std::size_t index,
                                                   std::size_t n) = 0;

    /// Advances algorithm `index`'s stream past its next `n` samples without
    /// keeping the values — the cache's prefix-extension fast-forward. The
    /// default draws and discards, which is correct for any source but pays
    /// the full measurement cost (and counts the draws like measurements);
    /// the executor-backed sources override it with a cheap replay that
    /// measures nothing and counts nothing, leaving the stream bit-identical
    /// to a real draw.
    virtual void skip(std::size_t index, std::size_t n) {
        if (n > 0) (void)draw(index, n);
    }
};

/// Opens the measurement stream of the algorithm at (local) position i.
/// The pipeline wrappers derive it from the master rng (`rng.child(i)`); the
/// campaign runner from the *global* index via assignment_stream_seed.
using StreamFactory = std::function<stats::Rng(std::size_t)>;

/// Shared plumbing of the executor-backed sources: the variant list, the
/// algorithm names, and the lazily opened per-algorithm streams.
class VariantSampleSource : public SampleSource {
public:
    [[nodiscard]] std::size_t count() const override { return variants_.size(); }
    [[nodiscard]] std::string name(std::size_t index) const override;

protected:
    VariantSampleSource(workloads::TaskChain chain,
                        std::vector<workloads::VariantAssignment> variants,
                        StreamFactory streams);

    /// The persistent stream of algorithm `index` (opened on first use).
    [[nodiscard]] stats::Rng& stream(std::size_t index);

    workloads::TaskChain chain_;
    std::vector<workloads::VariantAssignment> variants_;

private:
    StreamFactory streams_;
    std::vector<std::optional<stats::Rng>> open_;
};

/// Samples from the SimulatedExecutor.
class SimSampleSource final : public VariantSampleSource {
public:
    SimSampleSource(const sim::SimulatedExecutor& executor,
                    workloads::TaskChain chain,
                    std::vector<workloads::VariantAssignment> variants,
                    StreamFactory streams);

    [[nodiscard]] std::vector<double> draw(std::size_t index,
                                           std::size_t n) override;
    void skip(std::size_t index, std::size_t n) override;

private:
    const sim::SimulatedExecutor& executor_;
};

/// Samples wall-clock measurements from the RealExecutor. Warmup runs
/// precede *every* draw: between two adaptive rounds other algorithms ran
/// and evicted caches/codepaths, so extension samples need re-heating just
/// like first samples do. Warmups execute on a hoisted stream, so the
/// measured values consume the same stream prefix for every warmup count.
class RealSampleSource final : public VariantSampleSource {
public:
    RealSampleSource(const sim::RealExecutor& executor,
                     workloads::TaskChain chain,
                     std::vector<workloads::VariantAssignment> variants,
                     StreamFactory streams, std::size_t warmup = 1);

    [[nodiscard]] std::vector<double> draw(std::size_t index,
                                           std::size_t n) override;
    void skip(std::size_t index, std::size_t n) override;

private:
    const sim::RealExecutor& executor_;
    std::size_t warmup_;
};

/// The single generic fixed-N measurement path: n samples of every
/// algorithm, in source order. Every legacy measure_* wrapper and the
/// engine's first round go through this loop.
[[nodiscard]] MeasurementSet measure_all(SampleSource& source, std::size_t n);

/// Outcome of one engine run.
struct EngineResult {
    MeasurementSet measurements;
    /// Clustering of the final measurements (identical to what
    /// analyze_measurements would produce on them).
    Clustering clustering;
    /// Per-algorithm sample counts, in source order.
    std::vector<std::size_t> samples_per_alg;
    std::size_t rounds = 0;         ///< Measurement rounds performed.
    std::size_t total_samples = 0;  ///< Sum of samples_per_alg.
    std::size_t fixed_n_samples = 0; ///< count * max_n — the fixed-N cost.

    /// Measurements the early stopping saved vs the fixed-N plan. The engine
    /// never measures past max_n, so total_samples > fixed_n_samples means a
    /// caller assembled the result by hand (asserted in debug builds); the
    /// difference clamps at 0 instead of wrapping.
    [[nodiscard]] std::size_t saved_samples() const noexcept {
        assert(total_samples <= fixed_n_samples &&
               "EngineResult: total_samples exceeds the fixed-N budget");
        return fixed_n_samples > total_samples
                   ? fixed_n_samples - total_samples
                   : 0;
    }
};

/// Per-round progress snapshot handed to a RoundObserver after the round's
/// stop decisions and before the next extension draw.
struct EngineRound {
    std::size_t round = 0;         ///< 1-based round number.
    std::size_t newly_stopped = 0; ///< Algorithms frozen by this round.
    std::size_t stopped_total = 0; ///< Cumulative frozen count.
    std::size_t active = 0;        ///< Algorithms still extending.
};

/// Between-round callback — how the campaign coordinator broadcasts the
/// global stop-set (spans, counters, per-round manifests) without owning the
/// engine loop. Fires once per round, including the final one.
using RoundObserver = std::function<void(const EngineRound&)>;

/// "measured X of Y fixed-N samples, saved Z (P%)" — the human-readable
/// savings line the CLI and the benches print (and the smoke tests grep);
/// one formatter so the wording cannot drift between surfaces.
[[nodiscard]] std::string render_savings(std::size_t total_samples,
                                         std::size_t fixed_n_samples);

/// Runs measurement in adaptive rounds (see file comment). The comparator
/// and clusterer configs are the ones the final analysis uses, so the
/// stopping rule watches exactly the statistic the campaign reports.
class MeasurementEngine {
public:
    MeasurementEngine(AdaptiveConfig adaptive,
                      BootstrapComparatorConfig comparator = {},
                      ClustererConfig clustering = {});

    [[nodiscard]] EngineResult run(SampleSource& source,
                                   const RoundObserver& on_round = {}) const;

    [[nodiscard]] const AdaptiveConfig& config() const noexcept {
        return adaptive_;
    }

private:
    AdaptiveConfig adaptive_;
    BootstrapComparatorConfig comparator_;
    ClustererConfig clustering_;
};

} // namespace relperf::core
