#pragma once
//! \file bootstrap_comparator.hpp
//! The paper's comparison strategy (Sec. III; ref. [15] Sec. IV): quantify
//! the overlap of two measurement distributions by repeated bootstrap
//! resampling and classify the pair as better / equivalent / worse.
//!
//! Per round: draw with-replacement resamples of both samples, draw a random
//! quantile q ~ U[quantile_lo, quantile_hi], and compare the two resampled
//! quantiles under a relative tie band `tie_epsilon`. The aggregated score
//!
//!     score = (#a-wins - #b-wins) / rounds  in [-1, 1]
//!
//! is thresholded at `decision_threshold`: only a near-unanimous win rate
//! counts as a significant difference; everything else is "equivalent".
//! Because the per-round verdicts are stochastic, borderline pairs flip
//! between outcomes across repetitions — exactly the behaviour the paper
//! exploits to derive relative scores (Sec. III, "Computing the relative
//! scores").

#include "core/comparison.hpp"

#include <cstddef>
#include <vector>

namespace relperf::core {

/// Tuning knobs of the bootstrap comparator. Defaults reproduce the paper's
/// qualitative behaviour at N = 30 and N = 500 (see EXPERIMENTS.md).
struct BootstrapComparatorConfig {
    std::size_t rounds = 100;        ///< Bootstrap rounds per comparison.
    double quantile_lo = 0.35;       ///< Lower bound of the random quantile.
    double quantile_hi = 0.65;       ///< Upper bound of the random quantile.
    double tie_epsilon = 0.02;       ///< Relative tie band per round.
    double decision_threshold = 0.9; ///< |score| needed to call a winner.
    /// Evaluate the independent resample rounds in parallel (OpenMP builds
    /// only; large inputs only — see kParallelWorkThreshold). The result is
    /// bit-identical to the serial path: all randomness is drawn serially in
    /// the legacy order before the rounds run, and the per-round win/tie
    /// verdicts combine through an order-independent integer reduction.
    bool parallel_rounds = true;

    /// Throws InvalidArgument when out of range.
    void validate() const;
};

/// Caller-owned scratch for BootstrapComparator::score: the resample slabs
/// (rounds x sample size, drawn once per call) and the per-round quantiles.
/// Reusing one scratch across the hundreds of thousands of score() calls a
/// clustering makes turns the former two-allocations-plus-two-sorts per
/// round into zero allocations and two partial selections.
struct BootstrapScratch {
    std::vector<double> resamples_a; ///< rounds x a.size() slab.
    std::vector<double> resamples_b; ///< rounds x b.size() slab.
    std::vector<double> quantiles;   ///< One random quantile per round.
};

class BootstrapComparator final : public Comparator {
public:
    explicit BootstrapComparator(BootstrapComparatorConfig config = {});

    [[nodiscard]] Ordering compare(std::span<const double> a,
                                   std::span<const double> b,
                                   stats::Rng& rng) const override;

    /// The raw win-rate score in [-1, 1] (positive: a wins). Exposed for
    /// diagnostics and the ablation benches. Uses a thread-local scratch —
    /// the comparator itself stays stateless and shareable across campaign
    /// worker threads.
    [[nodiscard]] double score(std::span<const double> a, std::span<const double> b,
                               stats::Rng& rng) const;

    /// As above with caller-owned scratch (the allocation-free hot path the
    /// clusterer and the benches drive).
    [[nodiscard]] double score(std::span<const double> a, std::span<const double> b,
                               stats::Rng& rng, BootstrapScratch& scratch) const;

    [[nodiscard]] std::string name() const override { return "bootstrap"; }

    [[nodiscard]] const BootstrapComparatorConfig& config() const noexcept {
        return config_;
    }

private:
    BootstrapComparatorConfig config_;
};

} // namespace relperf::core
