#pragma once
//! \file cluster_diff.hpp
//! Clustering regression diff — compares two clustering CSVs (the files
//! core::write_clustering_csv produces) the way the paper compares
//! algorithms: by performance-class *membership*. CI runs this between a
//! commit's campaign clustering and a committed golden file, so a change
//! that silently moves an algorithm into a different performance class
//! fails the build instead of drifting past a human eyeballing score
//! columns.
//!
//! The comparison is over final cluster assignments (the paper's unique
//! assignment): relative scores may wiggle run to run, membership should
//! not. Ranks are semantic (1 = fastest class), so an algorithm whose final
//! rank number changes has *moved* even if its co-members came along.

#include <string>
#include <vector>

namespace relperf::core {

/// Final cluster membership of every algorithm in one clustering CSV.
struct FinalClusters {
    std::vector<std::string> algorithms; ///< First-seen order.
    std::vector<int> final_rank;         ///< Parallel to algorithms; 1-based.

    /// Rank of `algorithm`, or 0 when absent.
    [[nodiscard]] int rank_of(const std::string& algorithm) const noexcept;
};

/// Parses the `cluster,algorithm,relative_score,final_cluster,final_score`
/// CSV. Column positions are located by header name, so extra columns are
/// tolerated. An algorithm may appear once per cluster membership; its
/// final_cluster must agree across rows. Throws relperf::Error naming the
/// source (and line) on malformed content.
[[nodiscard]] FinalClusters parse_final_clusters_csv(
    const std::string& content, const std::string& source = "<string>");
[[nodiscard]] FinalClusters read_final_clusters_csv(const std::string& path);

/// One algorithm whose final performance class changed.
struct ClusterMove {
    std::string algorithm;
    int old_rank = 0;
    int new_rank = 0;
};

/// One old cluster whose members now span several new clusters (split), or
/// one new cluster absorbing members of several old clusters (merge).
struct ClusterRegroup {
    int rank = 0;            ///< The cluster that split (old) / merged (new).
    std::vector<int> ranks;  ///< The clusters its members map to/from.
};

/// Membership difference between two clusterings.
struct ClusterDiff {
    std::vector<std::string> only_in_old; ///< Algorithms missing from new.
    std::vector<std::string> only_in_new; ///< Algorithms missing from old.
    std::vector<ClusterMove> moved;       ///< Common algorithms that changed class.
    std::vector<ClusterRegroup> splits;   ///< Old clusters torn apart.
    std::vector<ClusterRegroup> merges;   ///< New clusters glued together.

    /// True when both files cluster the same algorithms identically.
    [[nodiscard]] bool identical() const noexcept {
        return only_in_old.empty() && only_in_new.empty() && moved.empty();
    }
};

/// Computes the membership diff old -> new.
[[nodiscard]] ClusterDiff diff_clusterings(const FinalClusters& old_clusters,
                                           const FinalClusters& new_clusters);

/// Human-readable report (one line per change; "clusterings are identical"
/// when there is nothing to report).
[[nodiscard]] std::string render_cluster_diff(const ClusterDiff& diff);

} // namespace relperf::core
