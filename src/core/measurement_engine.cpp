#include "core/measurement_engine.hpp"

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/str.hpp"
#include "workloads/mathtask.hpp"

#include <algorithm>
#include <numeric>

namespace relperf::core {

void AdaptiveConfig::validate() const {
    RELPERF_REQUIRE(min_n > 0, "AdaptiveConfig: min_n must be positive");
    RELPERF_REQUIRE(max_n >= min_n,
                    "AdaptiveConfig: max_n must be >= min_n");
    RELPERF_REQUIRE(batch > 0, "AdaptiveConfig: batch must be positive");
    RELPERF_REQUIRE(stability_rounds > 0,
                    "AdaptiveConfig: stability_rounds must be positive");
    if (rule == StoppingRuleKind::Confidence) {
        RELPERF_REQUIRE(confidence > 0.5 && confidence < 1.0,
                        "AdaptiveConfig: confidence must be in (0.5, 1)");
    }
}

VariantSampleSource::VariantSampleSource(
    workloads::TaskChain chain,
    std::vector<workloads::VariantAssignment> variants, StreamFactory streams)
    : chain_(std::move(chain)),
      variants_(std::move(variants)),
      streams_(std::move(streams)),
      open_(variants_.size()) {
    RELPERF_REQUIRE(streams_ != nullptr,
                    "VariantSampleSource: stream factory must be callable");
}

std::string VariantSampleSource::name(std::size_t index) const {
    RELPERF_REQUIRE(index < variants_.size(),
                    "VariantSampleSource: index out of range");
    return variants_[index].alg_name();
}

stats::Rng& VariantSampleSource::stream(std::size_t index) {
    RELPERF_REQUIRE(index < open_.size(),
                    "VariantSampleSource: index out of range");
    if (!open_[index]) open_[index] = streams_(index);
    return *open_[index];
}

SimSampleSource::SimSampleSource(
    const sim::SimulatedExecutor& executor, workloads::TaskChain chain,
    std::vector<workloads::VariantAssignment> variants, StreamFactory streams)
    : VariantSampleSource(std::move(chain), std::move(variants),
                          std::move(streams)),
      executor_(executor) {}

std::vector<double> SimSampleSource::draw(std::size_t index, std::size_t n) {
    // The executor-backed sources are where samples become real, so they own
    // the relperf_samples_total accounting: a cache hit that serves stored
    // values never reaches a leaf draw and therefore counts nothing.
    obs::metrics().samples_total.inc(n);
    return executor_.measure(chain_, variants_[index], n, stream(index));
}

void SimSampleSource::skip(std::size_t index, std::size_t n) {
    // run_once consumes exactly the stream prefix one measured sample does
    // and increments no counters, so n discarded runs fast-forward the
    // stream bit-identically to n kept measurements.
    stats::Rng& rng = stream(index);
    for (std::size_t i = 0; i < n; ++i) {
        (void)executor_.run_once(chain_, variants_[index], rng);
    }
}

RealSampleSource::RealSampleSource(
    const sim::RealExecutor& executor, workloads::TaskChain chain,
    std::vector<workloads::VariantAssignment> variants, StreamFactory streams,
    std::size_t warmup)
    : VariantSampleSource(std::move(chain), std::move(variants),
                          std::move(streams)),
      executor_(executor),
      warmup_(warmup) {}

std::vector<double> RealSampleSource::draw(std::size_t index, std::size_t n) {
    // Warmup before every draw: between adaptive rounds the other active
    // algorithms ran and evicted this one's caches/codepaths, so extension
    // samples need the same heating as first samples. RealExecutor::measure
    // runs warmups on a hoisted stream, so the measured sequence is
    // warmup-count-invariant either way.
    obs::metrics().samples_total.inc(n);
    return executor_.measure(chain_, variants_[index], n, stream(index),
                             warmup_);
}

void RealSampleSource::skip(std::size_t index, std::size_t n) {
    // The real chains consume a fixed number of uniform draws per run (two
    // random matrices per task iteration, one generator step per element —
    // see workloads::stream_draws_per_run), so the fast-forward discards
    // exactly that many raw draws instead of re-running the workload. Warmup
    // runs live on a hoisted child stream and never touch this one.
    const std::size_t per_run = workloads::stream_draws_per_run(chain_);
    stats::Rng& rng = stream(index);
    for (std::size_t i = 0; i < n * per_run; ++i) (void)rng.bits();
}

MeasurementSet measure_all(SampleSource& source, std::size_t n) {
    RELPERF_REQUIRE(source.count() > 0, "measure_all: empty sample source");
    RELPERF_REQUIRE(n > 0, "measure_all: need at least one measurement");
    obs::Span span("measure_all", "core");
    span.arg("algorithms", static_cast<std::uint64_t>(source.count()))
        .arg("n", static_cast<std::uint64_t>(n));
    // relperf_samples_total is counted by the sources' leaf draw() calls,
    // not here: a caching source that serves stored values must not count.
    MeasurementSet set;
    for (std::size_t i = 0; i < source.count(); ++i) {
        set.add(source.name(i), source.draw(i, n));
    }
    return set;
}

std::string render_savings(std::size_t total_samples,
                           std::size_t fixed_n_samples) {
    const std::size_t saved =
        fixed_n_samples > total_samples ? fixed_n_samples - total_samples : 0;
    const double percent =
        fixed_n_samples == 0 ? 0.0
                             : 100.0 * static_cast<double>(saved) /
                                   static_cast<double>(fixed_n_samples);
    return str::format("measured %zu of %zu fixed-N samples, saved %zu "
                       "(%.1f%%)",
                       total_samples, fixed_n_samples, saved, percent);
}

MeasurementEngine::MeasurementEngine(AdaptiveConfig adaptive,
                                     BootstrapComparatorConfig comparator,
                                     ClustererConfig clustering)
    : adaptive_(adaptive), comparator_(comparator), clustering_(clustering) {
    adaptive_.validate();
    comparator_.validate();
    clustering_.validate();
}

EngineResult MeasurementEngine::run(SampleSource& source,
                                    const RoundObserver& on_round) const {
    const std::size_t count = source.count();
    obs::Span span("engine.run", "engine");
    span.arg("algorithms", static_cast<std::uint64_t>(count))
        .arg("min_n", static_cast<std::uint64_t>(adaptive_.min_n))
        .arg("max_n", static_cast<std::uint64_t>(adaptive_.max_n))
        .arg("batch", static_cast<std::uint64_t>(adaptive_.batch))
        .arg("rule", to_string(adaptive_.rule));
    // A round is one clustering consulted; the extension rounds beyond the
    // first add at most batch samples each, which bounds the meter.
    const std::size_t max_rounds =
        1 + (adaptive_.max_n - adaptive_.min_n + adaptive_.batch - 1) /
                adaptive_.batch;
    EngineResult out;
    out.fixed_n_samples = count * adaptive_.max_n;
    obs::metrics().samples_fixed_n_total.inc(out.fixed_n_samples);
    out.measurements = measure_all(source, adaptive_.min_n);
    // Reserve the full budget up front: the per-round extends then append
    // into preallocated storage instead of reallocating every few rounds
    // (quadratic copying across a long adaptive run).
    for (std::size_t i = 0; i < count; ++i) {
        out.measurements.reserve_samples(i, adaptive_.max_n);
    }
    out.samples_per_alg.assign(count, adaptive_.min_n);
    out.rounds = 1;

    const BootstrapComparator comparator(comparator_);
    const RelativeClusterer clusterer(comparator, clustering_);

    // Cross-round clusterer state: per-repetition shuffle orders and
    // comparator streams prepared once, plus the frozen-pair outcome cache
    // (see ClusterContext). With reuse off the context still avoids
    // re-deriving Rep shuffled orders every round, which is bit-identical.
    ClusterContext cluster_ctx;
    const std::unique_ptr<StoppingRule> rule = make_stopping_rule(
        adaptive_.rule, adaptive_.stability_rounds, adaptive_.confidence);
    std::vector<bool> stopped(count, false);
    std::size_t stopped_total = 0;
    while (true) {
        obs::Span round_span("engine.round", "engine");
        obs::metrics().adaptive_rounds.inc();
        obs::report_progress("engine.round", out.rounds, max_rounds);
        Clustering clustering = clusterer.cluster(out.measurements, cluster_ctx);
        // Frozen algorithms stay frozen: their rule verdict is never read
        // again, so the rule may skip their bookkeeping.
        rule->observe(clustering, stopped);

        std::vector<std::size_t> extend;
        std::size_t newly_stopped = 0;
        for (std::size_t i = 0; i < count; ++i) {
            if (stopped[i]) continue;
            if (out.samples_per_alg[i] >= adaptive_.max_n ||
                rule->should_stop(i)) {
                stopped[i] = true;
                ++newly_stopped;
                if (adaptive_.reuse_frozen_comparisons) cluster_ctx.freeze(i);
                continue;
            }
            extend.push_back(i);
        }
        stopped_total += newly_stopped;
        round_span.arg("round", static_cast<std::uint64_t>(out.rounds))
            .arg("extending", static_cast<std::uint64_t>(extend.size()))
            .arg("stopped", static_cast<std::uint64_t>(count - extend.size()))
            .arg("comparisons_reused",
                 static_cast<std::uint64_t>(cluster_ctx.reused_last_round()));
        if (on_round) {
            on_round(EngineRound{out.rounds, newly_stopped, stopped_total,
                                 extend.size()});
        }
        if (extend.empty()) {
            // The published clustering must be exactly what
            // analyze_measurements would compute on the final measurements.
            // A round that replayed cached frozen-pair outcomes shifted the
            // comparator streams, so recompute cleanly in that case.
            if (cluster_ctx.reused_last_round() > 0) {
                out.clustering = clusterer.cluster(out.measurements);
            } else {
                out.clustering = std::move(clustering);
            }
            break;
        }
        for (const std::size_t i : extend) {
            const std::size_t n =
                std::min(adaptive_.batch, adaptive_.max_n - out.samples_per_alg[i]);
            const std::vector<double> fresh = source.draw(i, n);
            out.measurements.extend(i, fresh);
            out.samples_per_alg[i] += fresh.size();
        }
        ++out.rounds;
    }

    out.total_samples = std::accumulate(out.samples_per_alg.begin(),
                                        out.samples_per_alg.end(),
                                        std::size_t{0});
    return out;
}

} // namespace relperf::core
