#pragma once
//! \file io.hpp
//! Measurement I/O: load a MeasurementSet from the CSV format produced by
//! core::write_measurements_csv (header `algorithm,measurement_index,seconds`)
//! so distributions measured elsewhere (real devices, other tools, campaign
//! shards) can be clustered by relperf.

#include "core/measurement.hpp"

#include <string>

namespace relperf::core {

/// Parses a measurements CSV. Algorithms appear in first-seen order; the
/// measurement_index column is ignored (row order defines the sample order).
/// Tolerates CRLF line endings, a UTF-8 BOM, `#` comment lines and blank
/// lines. Throws relperf::Error on missing file, bad header or malformed
/// rows; the message names the file and the 1-based line number.
[[nodiscard]] MeasurementSet read_measurements_csv(const std::string& path);

/// Parses CSV content from a string. `source` is the name used in error
/// messages (the file name when called through read_measurements_csv).
[[nodiscard]] MeasurementSet parse_measurements_csv(const std::string& content,
                                                    const std::string& source =
                                                        "<string>");

} // namespace relperf::core
