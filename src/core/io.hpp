#pragma once
//! \file io.hpp
//! Measurement I/O: load a MeasurementSet from the CSV format produced by
//! core::write_measurements_csv (header `algorithm,measurement_index,seconds`)
//! so distributions measured elsewhere (real devices, other tools) can be
//! clustered by relperf.

#include "core/measurement.hpp"

#include <string>

namespace relperf::core {

/// Parses a measurements CSV. Algorithms appear in first-seen order; the
/// measurement_index column is ignored (row order defines the sample order).
/// Throws relperf::Error on missing file, bad header or malformed rows.
[[nodiscard]] MeasurementSet read_measurements_csv(const std::string& path);

/// Parses CSV content from a string (exposed for tests).
[[nodiscard]] MeasurementSet parse_measurements_csv(const std::string& content);

} // namespace relperf::core
