#include "core/pipeline.hpp"

#include "support/error.hpp"

namespace relperf::core {

std::uint64_t assignment_stream_seed(std::uint64_t master_seed,
                                     std::size_t index) noexcept {
    return stats::Rng(master_seed).child(index).seed();
}

MeasurementSet measure_assignments(
    const sim::SimulatedExecutor& executor, const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments, std::size_t n,
    stats::Rng& rng) {
    RELPERF_REQUIRE(!assignments.empty(), "measure_assignments: no assignments");
    MeasurementSet set;
    for (std::size_t i = 0; i < assignments.size(); ++i) {
        stats::Rng stream = rng.child(i);
        set.add(assignments[i].alg_name(),
                executor.measure(chain, assignments[i], n, stream));
    }
    return set;
}

MeasurementSet measure_assignments_real(
    const sim::RealExecutor& executor, const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments, std::size_t n,
    stats::Rng& rng, std::size_t warmup) {
    RELPERF_REQUIRE(!assignments.empty(), "measure_assignments_real: no assignments");
    MeasurementSet set;
    for (std::size_t i = 0; i < assignments.size(); ++i) {
        stats::Rng stream = rng.child(i);
        set.add(assignments[i].alg_name(),
                executor.measure(chain, assignments[i], n, stream, warmup));
    }
    return set;
}

MeasurementSet measure_variants(
    const sim::SimulatedExecutor& executor, const workloads::TaskChain& chain,
    const std::vector<workloads::VariantAssignment>& variants, std::size_t n,
    stats::Rng& rng) {
    RELPERF_REQUIRE(!variants.empty(), "measure_variants: no variants");
    MeasurementSet set;
    for (std::size_t i = 0; i < variants.size(); ++i) {
        stats::Rng stream = rng.child(i);
        set.add(variants[i].alg_name(),
                executor.measure(chain, variants[i], n, stream));
    }
    return set;
}

MeasurementSet measure_variants_real(
    const sim::RealExecutor& executor, const workloads::TaskChain& chain,
    const std::vector<workloads::VariantAssignment>& variants, std::size_t n,
    stats::Rng& rng, std::size_t warmup) {
    RELPERF_REQUIRE(!variants.empty(), "measure_variants_real: no variants");
    MeasurementSet set;
    for (std::size_t i = 0; i < variants.size(); ++i) {
        stats::Rng stream = rng.child(i);
        set.add(variants[i].alg_name(),
                executor.measure(chain, variants[i], n, stream, warmup));
    }
    return set;
}

AnalysisResult analyze_chain(
    const sim::SimulatedExecutor& executor, const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments,
    const AnalysisConfig& config) {
    stats::Rng rng(config.measurement_seed);
    MeasurementSet measurements = measure_assignments(
        executor, chain, assignments, config.measurements_per_alg, rng);
    return analyze_measurements(std::move(measurements), config);
}

AnalysisResult analyze_measurements(MeasurementSet measurements,
                                    const AnalysisConfig& config) {
    const BootstrapComparator comparator(config.comparator);
    const RelativeClusterer clusterer(comparator, config.clustering);
    Clustering clustering = clusterer.cluster(measurements);
    return AnalysisResult{std::move(measurements), std::move(clustering)};
}

} // namespace relperf::core
