#include "core/pipeline.hpp"

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace relperf::core {

namespace {

std::vector<workloads::VariantAssignment> to_variants(
    const std::vector<workloads::DeviceAssignment>& assignments) {
    std::vector<workloads::VariantAssignment> out;
    out.reserve(assignments.size());
    for (const workloads::DeviceAssignment& assignment : assignments) {
        out.emplace_back(assignment);
    }
    return out;
}

/// The legacy per-assignment stream derivation: position i measures on
/// rng.child(i) (a pure function of the master rng's construction seed, see
/// assignment_stream_seed).
StreamFactory child_streams(const stats::Rng& rng) {
    return [&rng](std::size_t index) { return rng.child(index); };
}

} // namespace

std::uint64_t assignment_stream_seed(std::uint64_t master_seed,
                                     std::size_t index) noexcept {
    return stats::Rng(master_seed).child(index).seed();
}

MeasurementSet measure_assignments(
    const sim::SimulatedExecutor& executor, const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments, std::size_t n,
    stats::Rng& rng) {
    RELPERF_REQUIRE(!assignments.empty(), "measure_assignments: no assignments");
    SimSampleSource source(executor, chain, to_variants(assignments),
                           child_streams(rng));
    obs::metrics().samples_fixed_n_total.inc(assignments.size() * n);
    return measure_all(source, n);
}

MeasurementSet measure_assignments_real(
    const sim::RealExecutor& executor, const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments, std::size_t n,
    stats::Rng& rng, std::size_t warmup) {
    RELPERF_REQUIRE(!assignments.empty(), "measure_assignments_real: no assignments");
    RealSampleSource source(executor, chain, to_variants(assignments),
                            child_streams(rng), warmup);
    obs::metrics().samples_fixed_n_total.inc(assignments.size() * n);
    return measure_all(source, n);
}

MeasurementSet measure_variants(
    const sim::SimulatedExecutor& executor, const workloads::TaskChain& chain,
    const std::vector<workloads::VariantAssignment>& variants, std::size_t n,
    stats::Rng& rng) {
    RELPERF_REQUIRE(!variants.empty(), "measure_variants: no variants");
    SimSampleSource source(executor, chain, variants, child_streams(rng));
    obs::metrics().samples_fixed_n_total.inc(variants.size() * n);
    return measure_all(source, n);
}

MeasurementSet measure_variants_real(
    const sim::RealExecutor& executor, const workloads::TaskChain& chain,
    const std::vector<workloads::VariantAssignment>& variants, std::size_t n,
    stats::Rng& rng, std::size_t warmup) {
    RELPERF_REQUIRE(!variants.empty(), "measure_variants_real: no variants");
    RealSampleSource source(executor, chain, variants, child_streams(rng),
                            warmup);
    obs::metrics().samples_fixed_n_total.inc(variants.size() * n);
    return measure_all(source, n);
}

AnalysisResult analyze_chain(
    const sim::SimulatedExecutor& executor, const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments,
    const AnalysisConfig& config) {
    stats::Rng rng(config.measurement_seed);
    if (config.adaptive) {
        RELPERF_REQUIRE(!assignments.empty(), "analyze_chain: no assignments");
        SimSampleSource source(executor, chain, to_variants(assignments),
                               child_streams(rng));
        const MeasurementEngine engine(*config.adaptive, config.comparator,
                                       config.clustering);
        EngineResult measured = engine.run(source);
        AnalysisResult out;
        out.measurements = std::move(measured.measurements);
        out.clustering = std::move(measured.clustering);
        out.samples_per_alg = std::move(measured.samples_per_alg);
        out.total_samples = measured.total_samples;
        out.fixed_n_samples = measured.fixed_n_samples;
        return out;
    }
    MeasurementSet measurements = measure_assignments(
        executor, chain, assignments, config.measurements_per_alg, rng);
    return analyze_measurements(std::move(measurements), config);
}

AnalysisResult analyze_measurements(MeasurementSet measurements,
                                    const AnalysisConfig& config) {
    const BootstrapComparator comparator(config.comparator);
    const RelativeClusterer clusterer(comparator, config.clustering);
    Clustering clustering = clusterer.cluster(measurements);
    AnalysisResult out;
    out.samples_per_alg.reserve(measurements.size());
    for (std::size_t i = 0; i < measurements.size(); ++i) {
        out.samples_per_alg.push_back(measurements.samples(i).size());
    }
    out.total_samples = measurements.total_samples();
    out.fixed_n_samples = out.total_samples;
    out.measurements = std::move(measurements);
    out.clustering = std::move(clustering);
    return out;
}

} // namespace relperf::core
