#pragma once
//! \file pipeline.hpp
//! End-to-end analysis pipeline: measure every device assignment of a task
//! chain (simulated or real executor), then cluster the resulting
//! distributions into performance classes. This is the library's main entry
//! point — the examples and most benches go through it.
//!
//! Measurement itself lives in the MeasurementEngine
//! (core/measurement_engine.hpp): the measure_* functions below are thin
//! wrappers over the one generic source-backed path, kept for their
//! historical signatures; their output is bit-identical to the pre-engine
//! batch loops. AnalysisConfig::adaptive switches analyze_chain to the
//! incremental early-stopping engine.

#include "core/bootstrap_comparator.hpp"
#include "core/clustering.hpp"
#include "core/measurement.hpp"
#include "core/measurement_engine.hpp"
#include "sim/executor.hpp"
#include "sim/real_executor.hpp"
#include "workloads/chain.hpp"

#include <cstdint>
#include <optional>
#include <vector>

namespace relperf::core {

/// Seed of the independent measurement stream used for the assignment at
/// position `index` when the master rng was constructed from `master_seed`.
/// This is the sharding contract: a campaign shard that measures assignment
/// `index` with `stats::Rng(assignment_stream_seed(seed, index))` reproduces
/// the unsharded run bit-for-bit, regardless of which shard runs it or when.
/// It is also the adaptive-measurement contract: each assignment's sample is
/// a deterministic prefix-extensible sequence of its own stream, so early
/// stopping on one algorithm cannot perturb another's values.
[[nodiscard]] std::uint64_t assignment_stream_seed(std::uint64_t master_seed,
                                                   std::size_t index) noexcept;

/// Measures each assignment `n` times with the simulated executor.
/// Algorithm names follow the paper's convention ("algDDA").
///
/// Each assignment is measured on its own independent RNG stream derived from
/// the master rng's *construction seed* and the assignment's position in the
/// list (see assignment_stream_seed). Measurements of one assignment are thus
/// independent of every other assignment — the property the campaign sharder
/// relies on to split the list across shards without changing any value.
[[nodiscard]] MeasurementSet measure_assignments(
    const sim::SimulatedExecutor& executor, const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments, std::size_t n,
    stats::Rng& rng);

/// Measured variant via the RealExecutor (wall-clock on this machine).
/// Uses the same per-assignment stream derivation as measure_assignments.
[[nodiscard]] MeasurementSet measure_assignments_real(
    const sim::RealExecutor& executor, const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments, std::size_t n,
    stats::Rng& rng, std::size_t warmup = 1);

/// As measure_assignments, over per-task placement×backend variants. A
/// variant at position i runs on the identical RNG stream a plain assignment
/// at position i would — the sharding contract does not care which axis the
/// algorithm list enumerates.
[[nodiscard]] MeasurementSet measure_variants(
    const sim::SimulatedExecutor& executor, const workloads::TaskChain& chain,
    const std::vector<workloads::VariantAssignment>& variants, std::size_t n,
    stats::Rng& rng);

/// As measure_assignments_real, over variants.
[[nodiscard]] MeasurementSet measure_variants_real(
    const sim::RealExecutor& executor, const workloads::TaskChain& chain,
    const std::vector<workloads::VariantAssignment>& variants, std::size_t n,
    stats::Rng& rng, std::size_t warmup = 1);

/// Analysis configuration bundling the paper's N and Rep with the comparator
/// knobs.
struct AnalysisConfig {
    std::size_t measurements_per_alg = 30; ///< Paper's N (fixed-N path).
    BootstrapComparatorConfig comparator;  ///< Comparison strategy knobs.
    ClustererConfig clustering;            ///< Rep + seed.
    std::uint64_t measurement_seed = 0xFEEDULL;
    /// When set, analyze_chain measures through the adaptive
    /// MeasurementEngine under these knobs (measurements_per_alg is ignored;
    /// the engine's min_n/max_n govern). `max_n == min_n` reproduces the
    /// fixed-N path bit for bit.
    std::optional<AdaptiveConfig> adaptive;
};

/// Result bundle: the raw distributions plus the clustering.
struct AnalysisResult {
    MeasurementSet measurements;
    Clustering clustering;
    /// Per-algorithm sample counts (all equal to N on the fixed path).
    std::vector<std::size_t> samples_per_alg;
    std::size_t total_samples = 0; ///< Sum of samples_per_alg.
    /// What the fixed-N plan would have cost (count * max_n);
    /// total_samples < fixed_n_samples quantifies the adaptive savings.
    /// analyze_measurements cannot know the cap of an externally measured
    /// set and defaults this to total_samples (zero savings); analyze_chain
    /// and campaign::run_campaign fill in the true plan cost.
    std::size_t fixed_n_samples = 0;
};

/// One-call pipeline over a simulated platform.
[[nodiscard]] AnalysisResult analyze_chain(
    const sim::SimulatedExecutor& executor, const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments,
    const AnalysisConfig& config);

/// One-call pipeline over an existing MeasurementSet (any source).
[[nodiscard]] AnalysisResult analyze_measurements(MeasurementSet measurements,
                                                  const AnalysisConfig& config);

} // namespace relperf::core
