#include "core/io.hpp"

#include "support/csv.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace relperf::core {

namespace {

/// True for lines the parser ignores: blank (or CRLF-only) and `#` comments
/// (campaign shard files carry their manifest in comment lines).
bool is_skippable(const std::string& line) {
    const std::string_view t = str::trim(line);
    return t.empty() || t.front() == '#';
}

[[noreturn]] void fail_at(const std::string& source, std::size_t line_number,
                          const std::string& message) {
    throw Error(str::format("%s:%zu: %s", source.c_str(), line_number,
                            message.c_str()));
}

/// The one parser core, consuming any istream line by line. Both entry
/// points stream through here, so file ingestion holds a single line buffer
/// instead of a whole-file copy (plus its ostringstream duplicate, as the
/// pre-streaming read_measurements_csv did) — and the two paths cannot
/// diverge in results or error messages (parity-tested, errors included).
MeasurementSet parse_measurements_stream(std::istream& in,
                                         const std::string& source) {
    std::string line;
    std::size_t line_number = 0;

    // Header: first non-blank, non-comment line (UTF-8 BOM tolerated).
    bool have_header = false;
    while (std::getline(in, line)) {
        ++line_number;
        if (line_number == 1 && str::starts_with(line, "\xEF\xBB\xBF")) {
            line.erase(0, 3);
        }
        if (is_skippable(line)) continue;
        have_header = true;
        break;
    }
    if (!have_header) {
        throw Error(source + ": no measurement rows (empty file?)");
    }
    const std::vector<std::string> header = support::csv_split_row(line);
    if (header.size() != 3 || header[0] != "algorithm" ||
        header[2] != "seconds") {
        fail_at(source, line_number,
                "expected header 'algorithm,measurement_index,seconds', got '" +
                    line + "'");
    }

    // Preserve first-seen algorithm order.
    std::vector<std::string> order;
    std::map<std::string, std::vector<double>> samples;
    while (std::getline(in, line)) {
        ++line_number;
        if (is_skippable(line)) continue;
        const std::vector<std::string> fields = support::csv_split_row(line);
        if (fields.size() != 3) {
            fail_at(source, line_number,
                    str::format("row has %zu fields, expected 3",
                                fields.size()));
        }
        const std::string& name = fields[0];
        if (name.empty()) {
            fail_at(source, line_number, "empty algorithm name");
        }
        errno = 0;
        char* end = nullptr;
        const double value = std::strtod(fields[2].c_str(), &end);
        if (fields[2].empty() || end == nullptr || *end != '\0' ||
            errno == ERANGE || !std::isfinite(value)) {
            fail_at(source, line_number,
                    "bad seconds value '" + fields[2] + "'");
        }
        if (!samples.count(name)) order.push_back(name);
        samples[name].push_back(value);
    }
    if (order.empty()) {
        throw Error(source + ": no measurement rows after the header");
    }

    MeasurementSet set;
    for (const std::string& name : order) {
        set.add(name, std::move(samples[name]));
    }
    return set;
}

} // namespace

MeasurementSet parse_measurements_csv(const std::string& content,
                                      const std::string& source) {
    std::istringstream in(content);
    return parse_measurements_stream(in, source);
}

MeasurementSet read_measurements_csv(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw Error("read_measurements_csv: cannot open '" + path + "'");
    }
    return parse_measurements_stream(in, path);
}

} // namespace relperf::core
