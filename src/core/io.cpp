#include "core/io.hpp"

#include "support/error.hpp"
#include "support/str.hpp"

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace relperf::core {

namespace {

/// Minimal CSV field splitter handling the quoting csv_escape produces.
std::vector<std::string> split_csv_row(const std::string& line) {
    std::vector<std::string> fields;
    std::string field;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    field += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                field += c;
            }
        } else if (c == '"') {
            quoted = true;
        } else if (c == ',') {
            fields.push_back(std::move(field));
            field.clear();
        } else if (c != '\r') {
            field += c;
        }
    }
    fields.push_back(std::move(field));
    return fields;
}

} // namespace

MeasurementSet parse_measurements_csv(const std::string& content) {
    std::istringstream in(content);
    std::string line;
    RELPERF_REQUIRE(static_cast<bool>(std::getline(in, line)),
                    "read_measurements_csv: empty file");
    const std::vector<std::string> header = split_csv_row(line);
    RELPERF_REQUIRE(header.size() == 3 && header[0] == "algorithm" &&
                        header[2] == "seconds",
                    "read_measurements_csv: expected header "
                    "'algorithm,measurement_index,seconds'");

    // Preserve first-seen algorithm order.
    std::vector<std::string> order;
    std::map<std::string, std::vector<double>> samples;
    std::size_t row_number = 1;
    while (std::getline(in, line)) {
        ++row_number;
        if (str::trim(line).empty()) continue;
        const std::vector<std::string> fields = split_csv_row(line);
        RELPERF_REQUIRE(fields.size() == 3,
                        str::format("read_measurements_csv: row %zu has %zu "
                                    "fields, expected 3",
                                    row_number, fields.size()));
        const std::string& name = fields[0];
        char* end = nullptr;
        const double value = std::strtod(fields[2].c_str(), &end);
        RELPERF_REQUIRE(end != nullptr && *end == '\0' && !fields[2].empty(),
                        str::format("read_measurements_csv: bad value '%s' in "
                                    "row %zu",
                                    fields[2].c_str(), row_number));
        if (!samples.count(name)) order.push_back(name);
        samples[name].push_back(value);
    }

    MeasurementSet set;
    for (const std::string& name : order) {
        set.add(name, std::move(samples[name]));
    }
    return set;
}

MeasurementSet read_measurements_csv(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw Error("read_measurements_csv: cannot open '" + path + "'");
    }
    std::ostringstream content;
    content << in.rdbuf();
    return parse_measurements_csv(content.str());
}

} // namespace relperf::core
