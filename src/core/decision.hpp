#pragma once
//! \file decision.hpp
//! Algorithm-selection policies built on top of the clustering — the paper's
//! Section IV applications:
//!
//!  1. Operating-cost trade-off: a "decision-model that is a trade-off
//!     between operating cost and speed" (whether to procure/use the
//!     accelerator at all).
//!  2. Energy-budget switching: run the preferred algorithm until the edge
//!     device's energy budget is exhausted, switch to an equivalent (or
//!     next-class) algorithm that off-loads most FLOPs, switch back after
//!     cool-down.

#include "core/clustering.hpp"
#include "core/measurement.hpp"
#include "sim/energy.hpp"
#include "sim/executor.hpp"
#include "workloads/chain.hpp"

#include <string>
#include <vector>

namespace relperf::core {

/// Per-algorithm facts a decision model consumes.
struct CandidateProfile {
    std::size_t alg = 0;
    std::string name;
    int final_rank = 0;            ///< Performance class from the clustering.
    double final_score = 0.0;      ///< Confidence of the class assignment.
    double mean_seconds = 0.0;     ///< Mean measured execution time.
    double accelerator_seconds = 0.0; ///< Mean accelerator busy time per run.
    double device_flops = 0.0;     ///< FLOPs executed on the edge device.
    double accelerator_flops = 0.0;///< FLOPs executed on the accelerator.
};

/// Builds candidate profiles from an analysis result plus the chain's flop
/// split and the executor's expected breakdowns.
[[nodiscard]] std::vector<CandidateProfile> build_candidate_profiles(
    const MeasurementSet& measurements, const Clustering& clustering,
    const sim::SimulatedExecutor& executor, const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments);

/// Section IV application 1: cost-aware selection.
/// Utility(alg) = mean_seconds + cost_per_accelerator_second * accel_seconds.
/// Only algorithms with final rank <= `rank_tolerance` are eligible (the
/// paper restricts attention to the top classes, then trades speed for cost).
struct CostAwareConfig {
    double cost_per_accelerator_second = 0.0;
    int rank_tolerance = 1; ///< 1 = only the best class; 2 = best two; ...
};

[[nodiscard]] CandidateProfile select_cost_aware(
    const std::vector<CandidateProfile>& candidates, const CostAwareConfig& config);

/// Section IV application 2: within the classes of rank <= `rank_tolerance`,
/// pick the algorithm executing the fewest FLOPs on the edge device (the
/// paper's algDAA choice: "it offloads most of the computations").
[[nodiscard]] CandidateProfile select_min_device_flops(
    const std::vector<CandidateProfile>& candidates, int rank_tolerance);

/// Duty-cycle simulation of the energy-budget switching policy.
struct SwitchPolicyConfig {
    double device_energy_budget_j = 1.0; ///< Budget per monitoring window.
    std::size_t window_runs = 50;        ///< Runs per monitoring window.
    std::size_t cooldown_runs = 20;      ///< Runs on the off-load algorithm.
    int rank_tolerance = 2;              ///< Eligible classes for the alternate.
};

/// What happened during one simulated duty cycle.
struct SwitchTrace {
    struct Segment {
        std::string alg_name;
        std::size_t runs = 0;
        double seconds = 0.0;
        double device_energy_j = 0.0;
    };
    std::vector<Segment> segments;
    double total_seconds = 0.0;
    double total_device_energy_j = 0.0;
    std::size_t switches = 0;

    /// Same workload executed with the primary algorithm only (baseline).
    double baseline_seconds = 0.0;
    double baseline_device_energy_j = 0.0;
};

/// Simulates `total_runs` back-to-back chain executions under the switching
/// policy: primary algorithm until the window budget is exceeded, then the
/// min-device-FLOPs alternate for `cooldown_runs`, then back.
class EnergyBudgetSwitcher {
public:
    EnergyBudgetSwitcher(const sim::SimulatedExecutor& executor,
                         const sim::EnergyModel& energy,
                         const workloads::TaskChain& chain);

    [[nodiscard]] SwitchTrace simulate(
        const workloads::DeviceAssignment& primary,
        const workloads::DeviceAssignment& alternate, std::size_t total_runs,
        const SwitchPolicyConfig& config, stats::Rng& rng) const;

private:
    const sim::SimulatedExecutor& executor_;
    const sim::EnergyModel& energy_;
    const workloads::TaskChain& chain_;
};

} // namespace relperf::core
