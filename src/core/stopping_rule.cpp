#include "core/stopping_rule.hpp"

#include "stats/descriptive.hpp"
#include "support/error.hpp"

#include <cmath>

namespace relperf::core {

const char* to_string(StoppingRuleKind kind) noexcept {
    switch (kind) {
    case StoppingRuleKind::Stability: return "stability";
    case StoppingRuleKind::Confidence: return "confidence";
    }
    return "unknown";
}

MembershipStabilityRule::MembershipStabilityRule(std::size_t stability_rounds)
    : stability_rounds_(stability_rounds) {
    RELPERF_REQUIRE(stability_rounds > 0,
                    "MembershipStabilityRule: stability_rounds must be > 0");
}

void MembershipStabilityRule::observe(const Clustering& clustering,
                                      const std::vector<bool>& stopped) {
    const std::size_t n = clustering.final_assignment.size();
    RELPERF_REQUIRE(stopped.size() == n,
                    "MembershipStabilityRule: stopped/clustering size mismatch");
    if (stable_.empty()) stable_.assign(n, 0);
    RELPERF_REQUIRE(stable_.size() == n,
                    "MembershipStabilityRule: algorithm count changed mid-run");

    std::vector<int> rank(n, 0);
    for (std::size_t i = 0; i < n; ++i) rank[i] = clustering.final_rank(i);

    // The first clustering only seeds previous_rank_; the stability counter
    // starts moving from the second, exactly as the engine's original inline
    // bookkeeping did.
    if (!previous_rank_.empty()) {
        for (std::size_t i = 0; i < n; ++i) {
            if (stopped[i]) continue;
            if (rank[i] == previous_rank_[i]) {
                ++stable_[i];
            } else {
                stable_[i] = 0;
            }
        }
    }
    previous_rank_ = std::move(rank);
}

bool MembershipStabilityRule::should_stop(std::size_t alg) const {
    RELPERF_REQUIRE(alg < stable_.size(),
                    "MembershipStabilityRule: should_stop before observe");
    return stable_[alg] >= stability_rounds_;
}

ConfidenceTargetRule::ConfidenceTargetRule(double confidence) {
    RELPERF_REQUIRE(confidence > 0.5 && confidence < 1.0,
                    "ConfidenceTargetRule: confidence must be in (0.5, 1)");
    z_ = stats::normal_quantile(confidence);
}

void ConfidenceTargetRule::observe(const Clustering& clustering,
                                   const std::vector<bool>& stopped) {
    const std::size_t n = clustering.final_assignment.size();
    RELPERF_REQUIRE(stopped.size() == n,
                    "ConfidenceTargetRule: stopped/clustering size mismatch");
    if (verdict_.empty()) verdict_.assign(n, false);
    RELPERF_REQUIRE(verdict_.size() == n,
                    "ConfidenceTargetRule: algorithm count changed mid-run");

    const std::size_t rep = clustering.repetitions;
    const std::size_t cluster_count = clustering.clusters.size();
    std::vector<int> rank(n, 0);
    for (std::size_t i = 0; i < n; ++i) rank[i] = clustering.final_rank(i);

    for (std::size_t i = 0; i < n; ++i) {
        if (stopped[i]) {
            verdict_[i] = false;
            continue;
        }
        // Never stop on the very first clustering, and require the winning
        // class to repeat: a single round's margin can be confidently wrong
        // while the empirical quantiles still drift under fresh samples.
        const bool repeated =
            !previous_rank_.empty() && rank[i] == previous_rank_[i];
        if (!repeated || rep == 0) {
            verdict_[i] = false;
            continue;
        }
        // Relative scores are per-class win proportions over the clusterer's
        // Rep repeated stochastic sorts (each repetition assigns the
        // algorithm to exactly one class, so the scores are multinomial
        // proportions). Margin of the winning class over the runner-up:
        //   Var(p1_hat - p2_hat) = (p1(1-p1) + p2(1-p2) + 2 p1 p2) / Rep
        // (the +2 p1 p2 term is -2 Cov for multinomial counts). Stop when
        // the one-sided lower bound margin - z * SE clears zero.
        const double p1 = clustering.score_of(i, rank[i]);
        double p2 = 0.0;
        for (std::size_t r = 1; r <= cluster_count; ++r) {
            if (static_cast<int>(r) == rank[i]) continue;
            p2 = std::max(p2, clustering.score_of(i, static_cast<int>(r)));
        }
        const double margin = p1 - p2;
        const double se =
            std::sqrt((p1 * (1.0 - p1) + p2 * (1.0 - p2) + 2.0 * p1 * p2) /
                      static_cast<double>(rep));
        verdict_[i] = margin - z_ * se > 0.0;
    }
    previous_rank_ = std::move(rank);
}

bool ConfidenceTargetRule::should_stop(std::size_t alg) const {
    RELPERF_REQUIRE(alg < verdict_.size(),
                    "ConfidenceTargetRule: should_stop before observe");
    return verdict_[alg];
}

std::unique_ptr<StoppingRule> make_stopping_rule(StoppingRuleKind kind,
                                                 std::size_t stability_rounds,
                                                 double confidence) {
    switch (kind) {
    case StoppingRuleKind::Stability:
        return std::make_unique<MembershipStabilityRule>(stability_rounds);
    case StoppingRuleKind::Confidence:
        return std::make_unique<ConfidenceTargetRule>(confidence);
    }
    RELPERF_REQUIRE(false, "make_stopping_rule: unknown StoppingRuleKind");
    return nullptr;
}

} // namespace relperf::core
