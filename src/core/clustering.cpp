#include "core/clustering.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

namespace relperf::core {

namespace {

/// Shared by the sparse and dense tally paths: turns max_rank_seen plus a
/// callback yielding one algorithm's ascending (rank, count) pairs into the
/// final Clustering (clusters, memberships, final assignment). Keeping one
/// builder guarantees the two paths cannot drift apart in the score
/// arithmetic or the tie rules.
template <typename PerAlgRankCounts>
Clustering build_clustering(std::size_t p, std::size_t repetitions,
                            int max_rank_seen,
                            const PerAlgRankCounts& rank_counts_of) {
    Clustering out;
    out.repetitions = repetitions;
    out.clusters.resize(static_cast<std::size_t>(max_rank_seen));
    out.memberships.resize(p);

    // Relative scores (Procedure 4 lines 10-12).
    const double rep = static_cast<double>(repetitions);
    for (std::size_t alg = 0; alg < p; ++alg) {
        for (const auto& [rank, w] : rank_counts_of(alg)) {
            const double score = static_cast<double>(w) / rep;
            out.clusters[static_cast<std::size_t>(rank - 1)].push_back(
                ClusterEntry{alg, score});
            out.memberships[alg].push_back(RankScore{rank, score});
        }
    }
    for (auto& cluster : out.clusters) {
        std::sort(cluster.begin(), cluster.end(),
                  [](const ClusterEntry& a, const ClusterEntry& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.alg < b.alg;
                  });
    }

    // Final unique assignment (Sec. III): max-score rank, ties towards the
    // better rank, score cumulated over better-or-equal ranks.
    out.final_assignment.resize(p);
    for (std::size_t alg = 0; alg < p; ++alg) {
        int best_rank = 1;
        std::size_t best_count = 0;
        for (const auto& [rank, w] : rank_counts_of(alg)) {
            if (w > best_count) {
                best_count = w;
                best_rank = rank;
            }
        }
        RELPERF_ASSERT(best_count > 0, "RelativeClusterer: algorithm never ranked");
        double cumulated = 0.0;
        for (const auto& [rank, w] : rank_counts_of(alg)) {
            if (rank > best_rank) break; // ascending rank order
            cumulated += static_cast<double>(w) / rep;
        }
        out.final_assignment[alg] = FinalAssignment{alg, best_rank, cumulated};
    }
    return out;
}

} // namespace

double Clustering::score_of(std::size_t alg, int rank) const {
    RELPERF_REQUIRE(alg < final_assignment.size(),
                    "Clustering: algorithm out of range");
    if (rank < 1 || rank > cluster_count()) return 0.0;
    if (!memberships.empty()) {
        // Index-backed: the algorithm's own (rank, score) list, at most one
        // entry per distinct rank observed (<= min(Rep, cluster count)).
        for (const RankScore& m : memberships[alg]) {
            if (m.rank == rank) return m.score;
            if (m.rank > rank) break; // ascending
        }
        return 0.0;
    }
    // Hand-built Clustering without the index: scan the cluster.
    for (const ClusterEntry& e : clusters[static_cast<std::size_t>(rank - 1)]) {
        if (e.alg == alg) return e.score;
    }
    return 0.0;
}

int Clustering::final_rank(std::size_t alg) const {
    RELPERF_REQUIRE(alg < final_assignment.size(), "Clustering: algorithm out of range");
    return final_assignment[alg].rank;
}

void ClustererConfig::validate() const {
    RELPERF_REQUIRE(repetitions > 0, "ClustererConfig: repetitions must be positive");
}

void ClusterContext::freeze(std::size_t alg) {
    if (alg >= frozen_.size()) frozen_.resize(alg + 1, false);
    frozen_[alg] = true;
}

RelativeClusterer::RelativeClusterer(const Comparator& comparator,
                                     ClustererConfig config)
    : comparator_(comparator), config_(config) {
    config_.validate();
}

RankedSequence RelativeClusterer::sort_once(const MeasurementSet& measurements,
                                            std::vector<std::size_t> initial_order,
                                            stats::Rng& rng) const {
    ThreeWaySorter sorter([&](std::size_t a, std::size_t b) {
        return comparator_.compare(measurements.samples(a), measurements.samples(b),
                                   rng);
    });
    return sorter.sort(std::move(initial_order));
}

RankedSequence RelativeClusterer::sort_once_traced(const MeasurementSet& measurements,
                                                   std::vector<std::size_t> initial_order,
                                                   stats::Rng& rng,
                                                   std::vector<SortStep>& trace) const {
    ThreeWaySorter sorter([&](std::size_t a, std::size_t b) {
        return comparator_.compare(measurements.samples(a), measurements.samples(b),
                                   rng);
    });
    return sorter.sort_traced(std::move(initial_order), trace);
}

Clustering RelativeClusterer::cluster(const MeasurementSet& measurements) const {
    ClusterContext context;
    return cluster(measurements, context);
}

Clustering RelativeClusterer::cluster(const MeasurementSet& measurements,
                                      ClusterContext& ctx) const {
    RELPERF_REQUIRE(!measurements.empty(), "RelativeClusterer: no algorithms");
    const std::size_t p = measurements.size();
    obs::Span span("clusterer.cluster", "core");
    span.arg("algorithms", static_cast<std::uint64_t>(p))
        .arg("repetitions", static_cast<std::uint64_t>(config_.repetitions));
    obs::metrics().clusterings_total.inc();

    // The per-repetition shuffled orders and post-shuffle comparator streams
    // depend only on (seed, Rep, p) — prepare once, reuse every round.
    if (!ctx.prepared_ || ctx.prepared_seed_ != config_.seed ||
        ctx.prepared_reps_ != config_.repetitions || ctx.prepared_p_ != p) {
        const stats::Rng master(config_.seed);
        ctx.orders_.assign(config_.repetitions, {});
        ctx.streams_.clear();
        ctx.streams_.reserve(config_.repetitions);
        for (std::size_t rep = 0; rep < config_.repetitions; ++rep) {
            stats::Rng rng = master.child(rep);
            // Procedure 4 line 4: Shuffle(A).
            std::vector<std::size_t>& order = ctx.orders_[rep];
            order.resize(p);
            std::iota(order.begin(), order.end(), std::size_t{0});
            rng.shuffle(order);
            ctx.streams_.push_back(rng);
        }
        ctx.outcome_cache_.assign(config_.repetitions, {});
        ctx.prepared_seed_ = config_.seed;
        ctx.prepared_reps_ = config_.repetitions;
        ctx.prepared_p_ = p;
        ctx.prepared_ = true;
    }

    // counts[alg] = ascending (rank, count) pairs actually observed — at
    // most min(Rep, cluster count) entries, never p.
    auto& counts = ctx.counts_;
    counts.resize(p);
    for (auto& per_alg : counts) per_alg.clear();
    int max_rank_seen = 0;

    const bool use_cache =
        std::find(ctx.frozen_.begin(), ctx.frozen_.end(), true) !=
        ctx.frozen_.end();
    ctx.reused_last_round_ = 0;

    for (std::size_t rep = 0; rep < config_.repetitions; ++rep) {
        stats::Rng rng = ctx.streams_[rep];
        auto& cache = ctx.outcome_cache_[rep];

        // Procedure 4 line 5: SortAlgs(A), replaying cached outcomes for
        // pairs whose samples can no longer change.
        ThreeWaySorter sorter([&](std::size_t a, std::size_t b) {
            if (use_cache && a < ctx.frozen_.size() && ctx.frozen_[a] &&
                b < ctx.frozen_.size() && ctx.frozen_[b]) {
                const std::uint64_t key =
                    (static_cast<std::uint64_t>(a) << 32) |
                    static_cast<std::uint64_t>(b);
                if (const auto it = cache.find(key); it != cache.end()) {
                    ++ctx.reused_last_round_;
                    return it->second;
                }
                const Ordering outcome = comparator_.compare(
                    measurements.samples(a), measurements.samples(b), rng);
                cache.emplace(key, outcome);
                return outcome;
            }
            return comparator_.compare(measurements.samples(a),
                                       measurements.samples(b), rng);
        });
        const RankedSequence seq = sorter.sort(ctx.orders_[rep]);

        for (std::size_t pos = 0; pos < p; ++pos) {
            const int rank = seq.ranks[pos];
            RELPERF_ASSERT(rank >= 1 && rank <= static_cast<int>(p),
                           "RelativeClusterer: rank out of range");
            auto& per_alg = counts[seq.order[pos]];
            auto it = std::find_if(per_alg.begin(), per_alg.end(),
                                   [rank](const auto& rc) {
                                       return rc.first == rank;
                                   });
            if (it == per_alg.end()) {
                per_alg.emplace_back(rank, std::size_t{1});
            } else {
                ++it->second;
            }
            max_rank_seen = std::max(max_rank_seen, rank);
        }
    }
    ctx.reused_total_ += ctx.reused_last_round_;

    for (auto& per_alg : counts) {
        std::sort(per_alg.begin(), per_alg.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
    }
    return build_clustering(p, config_.repetitions, max_rank_seen,
                            [&counts](std::size_t alg) -> const auto& {
                                return counts[alg];
                            });
}

Clustering RelativeClusterer::cluster_dense(const MeasurementSet& measurements) const {
    RELPERF_REQUIRE(!measurements.empty(), "RelativeClusterer: no algorithms");
    const std::size_t p = measurements.size();
    const stats::Rng master(config_.seed);

    // The original dense tally: counts[alg][rank-1], O(p^2) memory.
    std::vector<std::vector<std::size_t>> counts(p, std::vector<std::size_t>(p, 0));
    int max_rank_seen = 0;

    for (std::size_t rep = 0; rep < config_.repetitions; ++rep) {
        stats::Rng rng = master.child(rep);
        std::vector<std::size_t> order(p);
        std::iota(order.begin(), order.end(), std::size_t{0});
        rng.shuffle(order);
        const RankedSequence seq = sort_once(measurements, std::move(order), rng);
        for (std::size_t pos = 0; pos < p; ++pos) {
            const int rank = seq.ranks[pos];
            RELPERF_ASSERT(rank >= 1 && rank <= static_cast<int>(p),
                           "RelativeClusterer: rank out of range");
            ++counts[seq.order[pos]][static_cast<std::size_t>(rank - 1)];
            max_rank_seen = std::max(max_rank_seen, rank);
        }
    }

    // Adapt the dense rows to the ascending sparse view the builder expects.
    std::vector<std::pair<int, std::size_t>> row;
    return build_clustering(
        p, config_.repetitions, max_rank_seen,
        [&counts, &row, max_rank_seen](std::size_t alg) -> const auto& {
            row.clear();
            for (int rank = 1; rank <= max_rank_seen; ++rank) {
                const std::size_t w =
                    counts[alg][static_cast<std::size_t>(rank - 1)];
                if (w > 0) row.emplace_back(rank, w);
            }
            return row;
        });
}

} // namespace relperf::core
