#include "core/clustering.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <numeric>

namespace relperf::core {

double Clustering::score_of(std::size_t alg, int rank) const {
    if (rank < 1 || rank > cluster_count()) return 0.0;
    for (const ClusterEntry& e : clusters[static_cast<std::size_t>(rank - 1)]) {
        if (e.alg == alg) return e.score;
    }
    return 0.0;
}

int Clustering::final_rank(std::size_t alg) const {
    RELPERF_REQUIRE(alg < final_assignment.size(), "Clustering: algorithm out of range");
    return final_assignment[alg].rank;
}

void ClustererConfig::validate() const {
    RELPERF_REQUIRE(repetitions > 0, "ClustererConfig: repetitions must be positive");
}

RelativeClusterer::RelativeClusterer(const Comparator& comparator,
                                     ClustererConfig config)
    : comparator_(comparator), config_(config) {
    config_.validate();
}

RankedSequence RelativeClusterer::sort_once(const MeasurementSet& measurements,
                                            std::vector<std::size_t> initial_order,
                                            stats::Rng& rng) const {
    ThreeWaySorter sorter([&](std::size_t a, std::size_t b) {
        return comparator_.compare(measurements.samples(a), measurements.samples(b),
                                   rng);
    });
    return sorter.sort(std::move(initial_order));
}

RankedSequence RelativeClusterer::sort_once_traced(const MeasurementSet& measurements,
                                                   std::vector<std::size_t> initial_order,
                                                   stats::Rng& rng,
                                                   std::vector<SortStep>& trace) const {
    ThreeWaySorter sorter([&](std::size_t a, std::size_t b) {
        return comparator_.compare(measurements.samples(a), measurements.samples(b),
                                   rng);
    });
    return sorter.sort_traced(std::move(initial_order), trace);
}

Clustering RelativeClusterer::cluster(const MeasurementSet& measurements) const {
    RELPERF_REQUIRE(!measurements.empty(), "RelativeClusterer: no algorithms");
    const std::size_t p = measurements.size();
    obs::Span span("clusterer.cluster", "core");
    span.arg("algorithms", static_cast<std::uint64_t>(p))
        .arg("repetitions", static_cast<std::uint64_t>(config_.repetitions));
    obs::metrics().clusterings_total.inc();
    const stats::Rng master(config_.seed);

    // counts[alg][rank-1] = number of repetitions assigning `rank` to `alg`.
    std::vector<std::vector<std::size_t>> counts(p, std::vector<std::size_t>(p, 0));
    int max_rank_seen = 0;

    for (std::size_t rep = 0; rep < config_.repetitions; ++rep) {
        stats::Rng rng = master.child(rep);

        // Procedure 4 line 4: Shuffle(A).
        std::vector<std::size_t> order(p);
        std::iota(order.begin(), order.end(), std::size_t{0});
        rng.shuffle(order);

        // Procedure 4 line 5: SortAlgs(A).
        const RankedSequence seq = sort_once(measurements, std::move(order), rng);

        for (std::size_t pos = 0; pos < p; ++pos) {
            const int rank = seq.ranks[pos];
            RELPERF_ASSERT(rank >= 1 && rank <= static_cast<int>(p),
                           "RelativeClusterer: rank out of range");
            ++counts[seq.order[pos]][static_cast<std::size_t>(rank - 1)];
            max_rank_seen = std::max(max_rank_seen, rank);
        }
    }

    Clustering out;
    out.repetitions = config_.repetitions;
    out.clusters.resize(static_cast<std::size_t>(max_rank_seen));

    // Relative scores (Procedure 4 lines 10-12).
    const double rep = static_cast<double>(config_.repetitions);
    for (std::size_t alg = 0; alg < p; ++alg) {
        for (int rank = 1; rank <= max_rank_seen; ++rank) {
            const std::size_t w = counts[alg][static_cast<std::size_t>(rank - 1)];
            if (w > 0) {
                out.clusters[static_cast<std::size_t>(rank - 1)].push_back(
                    ClusterEntry{alg, static_cast<double>(w) / rep});
            }
        }
    }
    for (auto& cluster : out.clusters) {
        std::sort(cluster.begin(), cluster.end(),
                  [](const ClusterEntry& a, const ClusterEntry& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.alg < b.alg;
                  });
    }

    // Final unique assignment (Sec. III): max-score rank, ties towards the
    // better rank, score cumulated over better-or-equal ranks.
    out.final_assignment.resize(p);
    for (std::size_t alg = 0; alg < p; ++alg) {
        int best_rank = 1;
        std::size_t best_count = 0;
        for (int rank = 1; rank <= max_rank_seen; ++rank) {
            const std::size_t w = counts[alg][static_cast<std::size_t>(rank - 1)];
            if (w > best_count) {
                best_count = w;
                best_rank = rank;
            }
        }
        RELPERF_ASSERT(best_count > 0, "RelativeClusterer: algorithm never ranked");
        double cumulated = 0.0;
        for (int rank = 1; rank <= best_rank; ++rank) {
            cumulated += static_cast<double>(
                             counts[alg][static_cast<std::size_t>(rank - 1)]) /
                         rep;
        }
        out.final_assignment[alg] = FinalAssignment{alg, best_rank, cumulated};
    }

    return out;
}

} // namespace relperf::core
