#include "core/classical_comparators.hpp"

#include "stats/descriptive.hpp"
#include "stats/hypothesis.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <cmath>

namespace relperf::core {

MannWhitneyComparator::MannWhitneyComparator(double alpha, double min_effect)
    : alpha_(alpha), min_effect_(min_effect) {
    RELPERF_REQUIRE(alpha > 0.0 && alpha < 1.0,
                    "MannWhitneyComparator: alpha must be in (0,1)");
    RELPERF_REQUIRE(min_effect >= 0.0 && min_effect < 1.0,
                    "MannWhitneyComparator: min_effect must be in [0,1)");
}

Ordering MannWhitneyComparator::compare(std::span<const double> a,
                                        std::span<const double> b,
                                        stats::Rng& rng) const {
    (void)rng; // deterministic test
    const stats::TestResult res = stats::mann_whitney_u(a, b);
    const double delta = stats::cliffs_delta(a, b); // >0: a tends smaller
    if (res.p_value >= alpha_ || std::fabs(delta) <= min_effect_) {
        return Ordering::Equivalent;
    }
    return delta > 0.0 ? Ordering::Better : Ordering::Worse;
}

KsComparator::KsComparator(double alpha) : alpha_(alpha) {
    RELPERF_REQUIRE(alpha > 0.0 && alpha < 1.0, "KsComparator: alpha must be in (0,1)");
}

Ordering KsComparator::compare(std::span<const double> a, std::span<const double> b,
                               stats::Rng& rng) const {
    (void)rng;
    const stats::TestResult res = stats::kolmogorov_smirnov(a, b);
    if (res.p_value >= alpha_) return Ordering::Equivalent;
    const double shift = stats::median(b) - stats::median(a); // >0: a smaller
    if (shift == 0.0) return Ordering::Equivalent;
    return shift > 0.0 ? Ordering::Better : Ordering::Worse;
}

SummaryComparator::SummaryComparator(Statistic stat, double rel_tolerance)
    : stat_(stat), rel_tolerance_(rel_tolerance) {
    RELPERF_REQUIRE(rel_tolerance >= 0.0,
                    "SummaryComparator: tolerance must be >= 0");
}

Ordering SummaryComparator::compare(std::span<const double> a,
                                    std::span<const double> b,
                                    stats::Rng& rng) const {
    (void)rng;
    const auto value = [this](std::span<const double> s) {
        switch (stat_) {
            case Statistic::Mean: return stats::mean(s);
            case Statistic::Median: return stats::median(s);
            case Statistic::Minimum:
                return *std::min_element(s.begin(), s.end());
        }
        return stats::mean(s);
    };
    const double va = value(a);
    const double vb = value(b);
    const double band = rel_tolerance_ * std::min(std::fabs(va), std::fabs(vb));
    if (std::fabs(va - vb) <= band) return Ordering::Equivalent;
    return va < vb ? Ordering::Better : Ordering::Worse;
}

std::string SummaryComparator::name() const {
    switch (stat_) {
        case Statistic::Mean: return "summary-mean";
        case Statistic::Median: return "summary-median";
        case Statistic::Minimum: return "summary-min";
    }
    return "summary";
}

} // namespace relperf::core
