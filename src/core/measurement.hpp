#pragma once
//! \file measurement.hpp
//! Containers for the repeated measurements of each algorithm — the input
//! of the relative-performance analysis. Samples are appendable per
//! algorithm (extend), so the adaptive measurement engine can grow an
//! algorithm's distribution round by round; with per-algorithm RNG streams
//! the grown sample is a deterministic prefix-extension of the fixed-N one.

#include "stats/descriptive.hpp"

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace relperf::core {

/// One algorithm's measurement sample.
struct AlgorithmMeasurements {
    std::string name;            ///< e.g. "algDDA".
    std::vector<double> samples; ///< N measurements (seconds by convention).
};

/// An ordered set of algorithms with their measurement distributions.
/// Indices into this set are the algorithm identities used by the sorter and
/// the clusterer.
class MeasurementSet {
public:
    MeasurementSet() = default;

    /// Appends an algorithm; names must be unique and samples non-empty.
    /// Returns the algorithm's index.
    std::size_t add(std::string name, std::vector<double> samples);

    /// Appends further samples to the algorithm at `index` (the adaptive
    /// engine's per-round extension). Samples must be non-empty and
    /// non-negative, like add()'s.
    void extend(std::size_t index, std::span<const double> samples);

    /// Reserves storage for `capacity` total samples of the algorithm at
    /// `index`. Callers that know the final budget (the adaptive cap, a
    /// cache extension's target N) pay one allocation up front instead of a
    /// reallocation-plus-copy on every extend. No effect on the values.
    void reserve_samples(std::size_t index, std::size_t capacity);

    [[nodiscard]] std::size_t size() const noexcept { return algorithms_.size(); }
    [[nodiscard]] bool empty() const noexcept { return algorithms_.empty(); }

    [[nodiscard]] const AlgorithmMeasurements& at(std::size_t index) const;
    [[nodiscard]] std::span<const double> samples(std::size_t index) const;
    [[nodiscard]] const std::string& name(std::size_t index) const;

    /// Index of the algorithm called `name`; throws if absent. O(1): backed
    /// by a name -> index map (the merge path calls this once per algorithm
    /// over campaigns of up to 65536 algorithms).
    [[nodiscard]] std::size_t index_of(const std::string& name) const;
    [[nodiscard]] bool contains(const std::string& name) const noexcept;

    [[nodiscard]] std::vector<std::string> names() const;

    /// Summary statistics of one algorithm's sample.
    [[nodiscard]] stats::Summary summary(std::size_t index) const;

    /// Total number of samples across all algorithms.
    [[nodiscard]] std::size_t total_samples() const noexcept;

private:
    std::vector<AlgorithmMeasurements> algorithms_;
    std::unordered_map<std::string, std::size_t> index_by_name_;
};

} // namespace relperf::core
