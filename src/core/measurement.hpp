#pragma once
//! \file measurement.hpp
//! Containers for the N repeated measurements of each algorithm — the input
//! of the relative-performance analysis.

#include "stats/descriptive.hpp"

#include <span>
#include <string>
#include <vector>

namespace relperf::core {

/// One algorithm's measurement sample.
struct AlgorithmMeasurements {
    std::string name;            ///< e.g. "algDDA".
    std::vector<double> samples; ///< N measurements (seconds by convention).
};

/// An ordered set of algorithms with their measurement distributions.
/// Indices into this set are the algorithm identities used by the sorter and
/// the clusterer.
class MeasurementSet {
public:
    MeasurementSet() = default;

    /// Appends an algorithm; names must be unique and samples non-empty.
    /// Returns the algorithm's index.
    std::size_t add(std::string name, std::vector<double> samples);

    [[nodiscard]] std::size_t size() const noexcept { return algorithms_.size(); }
    [[nodiscard]] bool empty() const noexcept { return algorithms_.empty(); }

    [[nodiscard]] const AlgorithmMeasurements& at(std::size_t index) const;
    [[nodiscard]] std::span<const double> samples(std::size_t index) const;
    [[nodiscard]] const std::string& name(std::size_t index) const;

    /// Index of the algorithm called `name`; throws if absent.
    [[nodiscard]] std::size_t index_of(const std::string& name) const;
    [[nodiscard]] bool contains(const std::string& name) const noexcept;

    [[nodiscard]] std::vector<std::string> names() const;

    /// Summary statistics of one algorithm's sample.
    [[nodiscard]] stats::Summary summary(std::size_t index) const;

private:
    std::vector<AlgorithmMeasurements> algorithms_;
};

} // namespace relperf::core
