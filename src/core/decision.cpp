#include "core/decision.hpp"

#include "stats/descriptive.hpp"
#include "support/error.hpp"

#include <limits>

namespace relperf::core {

std::vector<CandidateProfile> build_candidate_profiles(
    const MeasurementSet& measurements, const Clustering& clustering,
    const sim::SimulatedExecutor& executor, const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments) {
    RELPERF_REQUIRE(measurements.size() == assignments.size(),
                    "build_candidate_profiles: measurements/assignments mismatch");
    RELPERF_REQUIRE(clustering.final_assignment.size() == assignments.size(),
                    "build_candidate_profiles: clustering/assignments mismatch");

    std::vector<CandidateProfile> out;
    out.reserve(assignments.size());
    for (std::size_t i = 0; i < assignments.size(); ++i) {
        CandidateProfile c;
        c.alg = i;
        c.name = measurements.name(i);
        c.final_rank = clustering.final_assignment[i].rank;
        c.final_score = clustering.final_assignment[i].score;
        c.mean_seconds = stats::mean(measurements.samples(i));
        const sim::TimeBreakdown breakdown =
            executor.expected_breakdown(chain, assignments[i]);
        c.accelerator_seconds = breakdown.accelerator_busy_s;
        const workloads::FlopSplit split = workloads::flop_split(chain, assignments[i]);
        c.device_flops = split.on_device;
        c.accelerator_flops = split.on_accelerator;
        out.push_back(std::move(c));
    }
    return out;
}

CandidateProfile select_cost_aware(const std::vector<CandidateProfile>& candidates,
                                   const CostAwareConfig& config) {
    RELPERF_REQUIRE(!candidates.empty(), "select_cost_aware: no candidates");
    RELPERF_REQUIRE(config.cost_per_accelerator_second >= 0.0,
                    "select_cost_aware: cost weight must be >= 0");
    RELPERF_REQUIRE(config.rank_tolerance >= 1,
                    "select_cost_aware: rank tolerance must be >= 1");

    const CandidateProfile* best = nullptr;
    double best_utility = std::numeric_limits<double>::infinity();
    for (const CandidateProfile& c : candidates) {
        if (c.final_rank > config.rank_tolerance) continue;
        const double utility =
            c.mean_seconds +
            config.cost_per_accelerator_second * c.accelerator_seconds;
        if (utility < best_utility) {
            best_utility = utility;
            best = &c;
        }
    }
    RELPERF_REQUIRE(best != nullptr,
                    "select_cost_aware: no candidate within the rank tolerance");
    return *best;
}

CandidateProfile select_min_device_flops(
    const std::vector<CandidateProfile>& candidates, int rank_tolerance) {
    RELPERF_REQUIRE(!candidates.empty(), "select_min_device_flops: no candidates");
    RELPERF_REQUIRE(rank_tolerance >= 1,
                    "select_min_device_flops: rank tolerance must be >= 1");

    const CandidateProfile* best = nullptr;
    for (const CandidateProfile& c : candidates) {
        if (c.final_rank > rank_tolerance) continue;
        if (best == nullptr || c.device_flops < best->device_flops ||
            (c.device_flops == best->device_flops &&
             c.mean_seconds < best->mean_seconds)) {
            best = &c;
        }
    }
    RELPERF_REQUIRE(best != nullptr,
                    "select_min_device_flops: no candidate within the rank tolerance");
    return *best;
}

EnergyBudgetSwitcher::EnergyBudgetSwitcher(const sim::SimulatedExecutor& executor,
                                           const sim::EnergyModel& energy,
                                           const workloads::TaskChain& chain)
    : executor_(executor), energy_(energy), chain_(chain) {}

SwitchTrace EnergyBudgetSwitcher::simulate(
    const workloads::DeviceAssignment& primary,
    const workloads::DeviceAssignment& alternate, std::size_t total_runs,
    const SwitchPolicyConfig& config, stats::Rng& rng) const {
    RELPERF_REQUIRE(total_runs > 0, "EnergyBudgetSwitcher: total_runs must be positive");
    RELPERF_REQUIRE(config.window_runs > 0 && config.cooldown_runs > 0,
                    "EnergyBudgetSwitcher: window/cooldown must be positive");
    RELPERF_REQUIRE(config.device_energy_budget_j > 0.0,
                    "EnergyBudgetSwitcher: budget must be positive");

    SwitchTrace trace;
    bool on_alternate = false;
    double window_energy = 0.0;
    std::size_t window_count = 0;
    std::size_t cooldown_left = 0;

    SwitchTrace::Segment segment;
    segment.alg_name = primary.alg_name();

    const auto flush_segment = [&]() {
        if (segment.runs > 0) trace.segments.push_back(segment);
    };

    for (std::size_t run = 0; run < total_runs; ++run) {
        const workloads::DeviceAssignment& current =
            on_alternate ? alternate : primary;
        const sim::TimeBreakdown t = executor_.run_once(chain_, current, rng);
        const double device_j = energy_.device_energy(t);

        segment.runs += 1;
        segment.seconds += t.total_s;
        segment.device_energy_j += device_j;
        trace.total_seconds += t.total_s;
        trace.total_device_energy_j += device_j;

        if (on_alternate) {
            if (--cooldown_left == 0) {
                // Cool-down over: back to the primary algorithm.
                flush_segment();
                segment = SwitchTrace::Segment{};
                segment.alg_name = primary.alg_name();
                on_alternate = false;
                window_energy = 0.0;
                window_count = 0;
            }
            continue;
        }

        window_energy += device_j;
        if (++window_count == config.window_runs) {
            window_energy = 0.0;
            window_count = 0;
        } else if (window_energy > config.device_energy_budget_j) {
            // Budget exceeded inside the window: switch to the off-loader.
            flush_segment();
            segment = SwitchTrace::Segment{};
            segment.alg_name = alternate.alg_name();
            on_alternate = true;
            cooldown_left = config.cooldown_runs;
            ++trace.switches;
        }
    }
    flush_segment();

    // Baseline: the same number of runs on the primary only.
    stats::Rng baseline_rng = rng.child(0x5EED);
    for (std::size_t run = 0; run < total_runs; ++run) {
        const sim::TimeBreakdown t = executor_.run_once(chain_, primary, baseline_rng);
        trace.baseline_seconds += t.total_s;
        trace.baseline_device_energy_j += energy_.device_energy(t);
    }
    return trace;
}

} // namespace relperf::core
