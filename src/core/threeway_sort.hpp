#pragma once
//! \file threeway_sort.hpp
//! Bubble sort with a three-way comparator and merged rank labels — the
//! paper's Procedures 1 (SortAlgs), 2 (UpdateAlgIndices) and
//! 3 (UpdateAlgRanks), including the Figure 2 update semantics.
//!
//! State: a sequence of algorithm ids (best first) plus non-decreasing rank
//! labels r_1 <= ... <= r_p with r_1 = 1 and steps in {0, 1}. The labels
//! partition the sequence into performance classes; the update rules merge
//! classes on "equivalent" outcomes and split them when an algorithm defeats
//! every member of its own class (see DESIGN.md section 5 for the exact
//! contract and tests/core/threeway_sort_test.cpp for the paper's Figure 2
//! trace replayed verbatim).

#include "core/comparison.hpp"

#include <cstddef>
#include <functional>
#include <vector>

namespace relperf::core {

/// Index-level three-way comparison: outcome of comparing algorithm `a`
/// against algorithm `b` (Better = a wins). May be stochastic.
using ThreeWayCompare = std::function<Ordering(std::size_t a, std::size_t b)>;

/// Result of one sort: `order[pos]` is the algorithm id at sequence position
/// `pos` (best first) and `ranks[pos]` its performance-class label (1-based).
struct RankedSequence {
    std::vector<std::size_t> order;
    std::vector<int> ranks;

    /// Number of performance classes k (paper: k <= p, found dynamically).
    [[nodiscard]] int cluster_count() const noexcept {
        return ranks.empty() ? 0 : ranks.back();
    }

    /// Rank label of algorithm `alg`; throws if `alg` is not in the sequence.
    [[nodiscard]] int rank_of(std::size_t alg) const;

    /// Position of algorithm `alg` in the sorted sequence.
    [[nodiscard]] std::size_t position_of(std::size_t alg) const;

    /// All algorithms with rank label `rank`.
    [[nodiscard]] std::vector<std::size_t> cluster(int rank) const;
};

/// One comparison step of the sort, recorded for traces (paper Figure 2).
struct SortStep {
    std::size_t pass = 0;      ///< Outer bubble-sort pass (0-based).
    std::size_t position = 0;  ///< Left index j of the compared pair.
    std::size_t left_alg = 0;  ///< Algorithm at position j before the step.
    std::size_t right_alg = 0; ///< Algorithm at position j+1 before the step.
    Ordering outcome = Ordering::Equivalent; ///< compare(left, right).
    bool swapped = false;
    std::vector<std::size_t> order_after;
    std::vector<int> ranks_after;
};

/// The paper's SortAlgs procedure.
class ThreeWaySorter {
public:
    explicit ThreeWaySorter(ThreeWayCompare compare);

    /// Sorts algorithms `0..count-1` starting from identity order.
    [[nodiscard]] RankedSequence sort(std::size_t count) const;

    /// Sorts starting from an explicit initial order (Procedure 4 shuffles
    /// the set before each repetition). `initial_order` must be a permutation
    /// of 0..p-1.
    [[nodiscard]] RankedSequence sort(std::vector<std::size_t> initial_order) const;

    /// As above, recording every comparison into `trace`.
    [[nodiscard]] RankedSequence sort_traced(std::vector<std::size_t> initial_order,
                                             std::vector<SortStep>& trace) const;

private:
    RankedSequence run(std::vector<std::size_t> order,
                       std::vector<SortStep>* trace) const;

    ThreeWayCompare compare_;
};

/// Validates the rank-label invariant (non-decreasing from 1, steps in
/// {0,1}); throws InternalError on violation. The sorter runs this full
/// O(p) scan once per sort (each step uses an O(1) local check — the updates
/// only touch the labels around the compared pair); property tests call it
/// directly.
void check_rank_invariant(const std::vector<int>& ranks);

} // namespace relperf::core
