#include "core/comparison.hpp"

namespace relperf::core {

const char* to_string(Ordering o) noexcept {
    switch (o) {
        case Ordering::Worse: return "worse";
        case Ordering::Equivalent: return "equivalent";
        case Ordering::Better: return "better";
    }
    return "?";
}

const char* to_symbol(Ordering o) noexcept {
    switch (o) {
        case Ordering::Worse: return "<";
        case Ordering::Equivalent: return "~";
        case Ordering::Better: return ">";
    }
    return "?";
}

} // namespace relperf::core
