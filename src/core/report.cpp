#include "core/report.hpp"

#include "stats/histogram.hpp"
#include "support/error.hpp"
#include "support/csv.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

#include <algorithm>

namespace relperf::core {

using support::Align;
using support::AsciiTable;

std::string render_cluster_table(const Clustering& clustering,
                                 const MeasurementSet& measurements) {
    AsciiTable table({"Cluster", "Algorithm", "Relative Score"},
                     {Align::Left, Align::Left, Align::Right});
    for (int rank = 1; rank <= clustering.cluster_count(); ++rank) {
        const auto& cluster = clustering.clusters[static_cast<std::size_t>(rank - 1)];
        if (cluster.empty()) continue;
        bool first = true;
        for (const ClusterEntry& e : cluster) {
            table.add_row({first ? "C" + std::to_string(rank) : "",
                           measurements.name(e.alg), str::fixed(e.score, 2)});
            first = false;
        }
        if (rank != clustering.cluster_count()) table.add_separator();
    }
    return table.render();
}

std::string render_final_table(const Clustering& clustering,
                               const MeasurementSet& measurements) {
    // Order by (rank, descending score) for readability.
    std::vector<FinalAssignment> rows = clustering.final_assignment;
    std::sort(rows.begin(), rows.end(),
              [](const FinalAssignment& a, const FinalAssignment& b) {
                  if (a.rank != b.rank) return a.rank < b.rank;
                  if (a.score != b.score) return a.score > b.score;
                  return a.alg < b.alg;
              });
    AsciiTable table({"Final Cluster", "Algorithm", "Cumulated Score"},
                     {Align::Left, Align::Left, Align::Right});
    for (const FinalAssignment& row : rows) {
        table.add_row({"C" + std::to_string(row.rank), measurements.name(row.alg),
                       str::fixed(row.score, 2)});
    }
    return table.render();
}

std::string render_summary_table(const MeasurementSet& measurements) {
    std::vector<std::size_t> order(measurements.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::vector<stats::Summary> summaries;
    summaries.reserve(measurements.size());
    for (std::size_t i = 0; i < measurements.size(); ++i) {
        summaries.push_back(measurements.summary(i));
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return summaries[a].mean < summaries[b].mean;
    });

    AsciiTable table({"Algorithm", "N", "Mean", "StdDev", "Min", "Median", "Max"},
                     {Align::Left, Align::Right, Align::Right, Align::Right,
                      Align::Right, Align::Right, Align::Right});
    for (const std::size_t i : order) {
        const stats::Summary& s = summaries[i];
        table.add_row({measurements.name(i), std::to_string(s.count),
                       str::human_seconds(s.mean), str::human_seconds(s.stddev),
                       str::human_seconds(s.min), str::human_seconds(s.median),
                       str::human_seconds(s.max)});
    }
    return table.render();
}

std::string render_comparison_matrix(const MeasurementSet& measurements,
                                     const Comparator& comparator,
                                     stats::Rng& rng) {
    std::vector<std::string> header = {""};
    for (std::size_t j = 0; j < measurements.size(); ++j) {
        header.push_back(measurements.name(j));
    }
    AsciiTable table(std::move(header));
    for (std::size_t i = 0; i < measurements.size(); ++i) {
        std::vector<std::string> row = {measurements.name(i)};
        for (std::size_t j = 0; j < measurements.size(); ++j) {
            if (i == j) {
                row.emplace_back("=");
            } else {
                const Ordering o = comparator.compare(measurements.samples(i),
                                                      measurements.samples(j), rng);
                row.emplace_back(to_symbol(o));
            }
        }
        table.add_row(std::move(row));
    }
    return table.render();
}

std::string render_sort_trace(const std::vector<SortStep>& trace,
                              const MeasurementSet& measurements) {
    std::string out;
    for (std::size_t s = 0; s < trace.size(); ++s) {
        const SortStep& step = trace[s];
        out += str::format("step %zu (pass %zu, j=%zu): %s %s %s%s\n",
                           s + 1, step.pass + 1, step.position + 1,
                           measurements.name(step.left_alg).c_str(),
                           to_symbol(step.outcome),
                           measurements.name(step.right_alg).c_str(),
                           step.swapped ? "  [swap]" : "");
        out += "  sequence:";
        for (std::size_t pos = 0; pos < step.order_after.size(); ++pos) {
            out += str::format(" (%s, %d)",
                               measurements.name(step.order_after[pos]).c_str(),
                               step.ranks_after[pos]);
        }
        out += '\n';
    }
    return out;
}

std::string render_distributions(const MeasurementSet& measurements,
                                 std::size_t bins, std::size_t width) {
    RELPERF_REQUIRE(!measurements.empty(), "render_distributions: empty set");
    // Shared axis across all algorithms (Figure 1b overlays them).
    double lo = measurements.samples(0)[0];
    double hi = lo;
    for (std::size_t i = 0; i < measurements.size(); ++i) {
        for (const double x : measurements.samples(i)) {
            lo = std::min(lo, x);
            hi = std::max(hi, x);
        }
    }
    if (hi == lo) {
        lo -= 0.5;
        hi += 0.5;
    }
    std::string out;
    for (std::size_t i = 0; i < measurements.size(); ++i) {
        const stats::Histogram h(measurements.samples(i), lo, hi, bins);
        out += h.render_ascii(width, measurements.name(i));
        out += '\n';
    }
    return out;
}

void write_measurements_csv(const MeasurementSet& measurements,
                            const std::string& path) {
    support::CsvWriter csv(path, {"algorithm", "measurement_index", "seconds"});
    for (std::size_t i = 0; i < measurements.size(); ++i) {
        const auto samples = measurements.samples(i);
        for (std::size_t k = 0; k < samples.size(); ++k) {
            // %.17g: shortest-or-exact round-trip precision, so re-reading
            // the file reproduces the doubles bit-for-bit (the campaign
            // merge path depends on this).
            csv.add_row({measurements.name(i), std::to_string(k),
                         str::format("%.17g", samples[k])});
        }
    }
}

void write_clustering_csv(const Clustering& clustering,
                          const MeasurementSet& measurements,
                          const std::string& path) {
    support::CsvWriter csv(path, {"cluster", "algorithm", "relative_score",
                                  "final_cluster", "final_score"});
    for (int rank = 1; rank <= clustering.cluster_count(); ++rank) {
        for (const ClusterEntry& e :
             clustering.clusters[static_cast<std::size_t>(rank - 1)]) {
            const FinalAssignment& fin = clustering.final_assignment[e.alg];
            csv.add_row({std::to_string(rank), measurements.name(e.alg),
                         str::format("%.6g", e.score), std::to_string(fin.rank),
                         str::format("%.6g", fin.score)});
        }
    }
}

} // namespace relperf::core
