#include "core/threeway_sort.hpp"

#include "support/error.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

namespace relperf::core {

int RankedSequence::rank_of(std::size_t alg) const {
    return ranks[position_of(alg)];
}

std::size_t RankedSequence::position_of(std::size_t alg) const {
    const auto it = std::find(order.begin(), order.end(), alg);
    RELPERF_REQUIRE(it != order.end(), "RankedSequence: algorithm not in sequence");
    return static_cast<std::size_t>(it - order.begin());
}

std::vector<std::size_t> RankedSequence::cluster(int rank) const {
    std::vector<std::size_t> out;
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        if (ranks[pos] == rank) out.push_back(order[pos]);
    }
    return out;
}

void check_rank_invariant(const std::vector<int>& ranks) {
    RELPERF_ASSERT(!ranks.empty(), "rank invariant: empty label vector");
    RELPERF_ASSERT(ranks.front() == 1, "rank invariant: first label must be 1");
    for (std::size_t i = 1; i < ranks.size(); ++i) {
        const int step = ranks[i] - ranks[i - 1];
        RELPERF_ASSERT(step == 0 || step == 1,
                       "rank invariant: labels must be non-decreasing with steps 0/1");
    }
}

ThreeWaySorter::ThreeWaySorter(ThreeWayCompare compare)
    : compare_(std::move(compare)) {
    RELPERF_REQUIRE(static_cast<bool>(compare_), "ThreeWaySorter: null comparator");
}

RankedSequence ThreeWaySorter::sort(std::size_t count) const {
    std::vector<std::size_t> order(count);
    std::iota(order.begin(), order.end(), std::size_t{0});
    return run(std::move(order), nullptr);
}

RankedSequence ThreeWaySorter::sort(std::vector<std::size_t> initial_order) const {
    return run(std::move(initial_order), nullptr);
}

RankedSequence ThreeWaySorter::sort_traced(std::vector<std::size_t> initial_order,
                                           std::vector<SortStep>& trace) const {
    return run(std::move(initial_order), &trace);
}

RankedSequence ThreeWaySorter::run(std::vector<std::size_t> order,
                                   std::vector<SortStep>* trace) const {
    const std::size_t p = order.size();
    RELPERF_REQUIRE(p > 0, "ThreeWaySorter: empty algorithm set");
    {
        // Must be a permutation of 0..p-1.
        std::vector<std::size_t> sorted = order;
        std::sort(sorted.begin(), sorted.end());
        for (std::size_t i = 0; i < p; ++i) {
            RELPERF_REQUIRE(sorted[i] == i,
                            "ThreeWaySorter: initial order must be a permutation");
        }
    }

    // Procedure 1 lines 1-4: ranks initialized 1..p along the sequence.
    std::vector<int> ranks(p);
    std::iota(ranks.begin(), ranks.end(), 1);

    const auto shift_suffix = [&](std::size_t from, int delta) {
        for (std::size_t i = from; i < p; ++i) ranks[i] += delta;
    };

    // O(1) per-step guard: every update touches the labels only through
    // shift_suffix(j + 1, ±1), which moves a whole suffix uniformly, so a
    // fresh invariant violation can only appear in the window around j. The
    // full O(p) check_rank_invariant scan after every comparison made the
    // sort O(p^3) — prohibitive at the 65536-algorithm scale — and runs once
    // per sort at the end instead.
    const auto check_rank_invariant_near = [&](std::size_t j) {
        RELPERF_ASSERT(ranks.front() == 1,
                       "rank invariant: first label must be 1");
        const std::size_t lo = j > 0 ? j - 1 : 0;
        const std::size_t hi = std::min(j + 2, p - 1);
        for (std::size_t i = lo; i < hi; ++i) {
            const int step = ranks[i + 1] - ranks[i];
            RELPERF_ASSERT(step == 0 || step == 1,
                           "rank invariant: labels must be non-decreasing "
                           "with steps 0/1");
        }
    };

    // Procedure 1 lines 5-9: bubble passes; pass i compares positions
    // j, j+1 for j = 0 .. p-i-2 (the tail is already settled).
    for (std::size_t pass = 0; pass + 1 < p; ++pass) {
        for (std::size_t j = 0; j + 1 < p - pass; ++j) {
            const std::size_t left = order[j];
            const std::size_t right = order[j + 1];
            const Ordering outcome = compare_(left, right);
            bool swapped = false;

            if (outcome == Ordering::Worse) {
                // Procedure 2: the worse algorithm moves right.
                std::swap(order[j], order[j + 1]);
                swapped = true;
                // Procedure 3, swap branch. After the swap the winner sits at
                // position j; the virtual predecessor of position 0 has a
                // distinct label (paper: an algorithm that beat every member
                // of its class gets promoted).
                const bool same_as_pred = j > 0 && ranks[j] == ranks[j - 1];
                const bool same_as_succ = ranks[j] == ranks[j + 1];
                if (!same_as_succ && same_as_pred) {
                    // Winner joined the predecessor's class from above: the
                    // old class of the loser merges up.
                    shift_suffix(j + 1, -1);
                } else if (same_as_succ && !same_as_pred) {
                    // Winner defeated all peers of its class: split the class,
                    // pushing the remaining members one rank down.
                    shift_suffix(j + 1, +1);
                }
            } else if (outcome == Ordering::Equivalent) {
                // Procedure 3, no-swap branch: merge the two classes.
                if (ranks[j] != ranks[j + 1]) {
                    shift_suffix(j + 1, -1);
                }
            }
            // Ordering::Better: positions and ranks unchanged.

            check_rank_invariant_near(j);
            if (trace != nullptr) {
                trace->push_back(SortStep{pass, j, left, right, outcome, swapped,
                                          order, ranks});
            }
        }
    }

    check_rank_invariant(ranks);
    return RankedSequence{std::move(order), std::move(ranks)};
}

} // namespace relperf::core
