#include "core/bootstrap_comparator.hpp"

#include "obs/metrics.hpp"
#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <cmath>

namespace relperf::core {

void BootstrapComparatorConfig::validate() const {
    RELPERF_REQUIRE(rounds > 0, "BootstrapComparator: rounds must be positive");
    RELPERF_REQUIRE(0.0 <= quantile_lo && quantile_lo <= quantile_hi && quantile_hi <= 1.0,
                    "BootstrapComparator: need 0 <= quantile_lo <= quantile_hi <= 1");
    RELPERF_REQUIRE(tie_epsilon >= 0.0, "BootstrapComparator: tie_epsilon must be >= 0");
    RELPERF_REQUIRE(decision_threshold > 0.0 && decision_threshold <= 1.0,
                    "BootstrapComparator: decision_threshold must be in (0, 1]");
}

BootstrapComparator::BootstrapComparator(BootstrapComparatorConfig config)
    : config_(config) {
    config_.validate();
}

double BootstrapComparator::score(std::span<const double> a, std::span<const double> b,
                                  stats::Rng& rng) const {
    RELPERF_REQUIRE(!a.empty() && !b.empty(), "BootstrapComparator: empty sample");

    // Counter only, no span: score() sits inside the clusterer's sort inner
    // loop, where even an unarmed span's ctor/dtor pair would be noise.
    obs::metrics().bootstrap_resamples_total.inc(2 * config_.rounds);

    std::vector<double> res_a;
    std::vector<double> res_b;
    long wins_a = 0;
    long wins_b = 0;
    for (std::size_t r = 0; r < config_.rounds; ++r) {
        stats::resample(a, a.size(), rng, res_a);
        stats::resample(b, b.size(), rng, res_b);
        std::sort(res_a.begin(), res_a.end());
        std::sort(res_b.begin(), res_b.end());
        const double q = rng.uniform(config_.quantile_lo, config_.quantile_hi);
        const double qa = stats::quantile_sorted(res_a, q);
        const double qb = stats::quantile_sorted(res_b, q);

        const double band =
            config_.tie_epsilon * std::min(std::fabs(qa), std::fabs(qb));
        if (std::fabs(qa - qb) <= band) continue; // tie
        if (qa < qb) {
            ++wins_a; // lower is better
        } else {
            ++wins_b;
        }
    }
    return static_cast<double>(wins_a - wins_b) /
           static_cast<double>(config_.rounds);
}

Ordering BootstrapComparator::compare(std::span<const double> a,
                                      std::span<const double> b,
                                      stats::Rng& rng) const {
    const double s = score(a, b, rng);
    if (s > config_.decision_threshold) return Ordering::Better;
    if (s < -config_.decision_threshold) return Ordering::Worse;
    return Ordering::Equivalent;
}

} // namespace relperf::core
