#include "core/bootstrap_comparator.hpp"

#include "obs/metrics.hpp"
#include "stats/descriptive.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace relperf::core {

namespace {

/// Below this many resampled values per call the OpenMP fork/join overhead
/// outweighs the per-round work, so the rounds run serially even in parallel
/// builds. Results are bit-identical either way; the threshold is purely a
/// performance knob.
constexpr std::size_t kParallelWorkThreshold = 16384;

} // namespace

void BootstrapComparatorConfig::validate() const {
    RELPERF_REQUIRE(rounds > 0, "BootstrapComparator: rounds must be positive");
    RELPERF_REQUIRE(0.0 <= quantile_lo && quantile_lo <= quantile_hi && quantile_hi <= 1.0,
                    "BootstrapComparator: need 0 <= quantile_lo <= quantile_hi <= 1");
    RELPERF_REQUIRE(tie_epsilon >= 0.0, "BootstrapComparator: tie_epsilon must be >= 0");
    RELPERF_REQUIRE(decision_threshold > 0.0 && decision_threshold <= 1.0,
                    "BootstrapComparator: decision_threshold must be in (0, 1]");
}

BootstrapComparator::BootstrapComparator(BootstrapComparatorConfig config)
    : config_(config) {
    config_.validate();
}

double BootstrapComparator::score(std::span<const double> a, std::span<const double> b,
                                  stats::Rng& rng) const {
    static thread_local BootstrapScratch scratch;
    return score(a, b, rng, scratch);
}

double BootstrapComparator::score(std::span<const double> a, std::span<const double> b,
                                  stats::Rng& rng, BootstrapScratch& scratch) const {
    RELPERF_REQUIRE(!a.empty() && !b.empty(), "BootstrapComparator: empty sample");

    // Counter only, no span: score() sits inside the clusterer's sort inner
    // loop, where even an unarmed span's ctor/dtor pair would be noise.
    obs::metrics().bootstrap_resamples_total.inc(2 * config_.rounds);

    const std::size_t rounds = config_.rounds;
    const std::size_t na = a.size();
    const std::size_t nb = b.size();
    scratch.resamples_a.resize(rounds * na);
    scratch.resamples_b.resize(rounds * nb);
    scratch.quantiles.resize(rounds);

    // Phase 1 (serial): draw every round's resamples and quantile, in the
    // exact per-round order the original one-pass loop consumed the rng
    // (a-resample, b-resample, quantile). This keeps all scores — and with
    // them every clustering and golden — bit-identical to the pre-scratch
    // implementation, and makes phase 2 randomness-free and parallelizable.
    double* slab_a = scratch.resamples_a.data();
    double* slab_b = scratch.resamples_b.data();
    for (std::size_t r = 0; r < rounds; ++r) {
        double* row_a = slab_a + r * na;
        for (std::size_t i = 0; i < na; ++i) {
            row_a[i] = a[static_cast<std::size_t>(rng.uniform_index(na))];
        }
        double* row_b = slab_b + r * nb;
        for (std::size_t i = 0; i < nb; ++i) {
            row_b[i] = b[static_cast<std::size_t>(rng.uniform_index(nb))];
        }
        scratch.quantiles[r] = rng.uniform(config_.quantile_lo, config_.quantile_hi);
    }

    // Phase 2: per-round quantile selection and win/tie tally. Rounds are
    // independent (disjoint slab rows, no rng) and the tally is an integer
    // sum, so the parallel reduction matches the serial loop bit for bit.
    long wins_a = 0;
    long wins_b = 0;
    [[maybe_unused]] const bool parallel =
        config_.parallel_rounds && rounds * (na + nb) >= kParallelWorkThreshold;
#ifdef _OPENMP
    #pragma omp parallel for schedule(static) reduction(+ : wins_a, wins_b) \
        if (parallel)
#endif
    for (std::size_t r = 0; r < rounds; ++r) {
        const double q = scratch.quantiles[r];
        const double qa =
            stats::quantile_partial(std::span<double>(slab_a + r * na, na), q);
        const double qb =
            stats::quantile_partial(std::span<double>(slab_b + r * nb, nb), q);

        const double band =
            config_.tie_epsilon * std::min(std::fabs(qa), std::fabs(qb));
        if (std::fabs(qa - qb) <= band) continue; // tie
        if (qa < qb) {
            ++wins_a; // lower is better
        } else {
            ++wins_b;
        }
    }
    return static_cast<double>(wins_a - wins_b) /
           static_cast<double>(config_.rounds);
}

Ordering BootstrapComparator::compare(std::span<const double> a,
                                      std::span<const double> b,
                                      stats::Rng& rng) const {
    const double s = score(a, b, rng);
    if (s > config_.decision_threshold) return Ordering::Better;
    if (s < -config_.decision_threshold) return Ordering::Worse;
    return Ordering::Equivalent;
}

} // namespace relperf::core
