#pragma once
//! \file stopping_rule.hpp
//! Pluggable per-round stopping decisions for the adaptive
//! MeasurementEngine. The engine measures in rounds and consults one
//! clustering per round; a StoppingRule watches those clusterings and
//! decides, per algorithm, when its performance-class membership is settled
//! enough to stop measuring it. Two rules ship:
//!
//!  * MembershipStabilityRule — the original PR 5 rule: stop once the final
//!    class membership was unchanged for `stability_rounds` consecutive
//!    clusterings. Purely ordinal; blind to *how decisively* the class won.
//!  * ConfidenceTargetRule — stop once the relative-score margin of the
//!    algorithm's final class over its runner-up class is significant at the
//!    configured confidence level, and the same class won the previous
//!    clustering too. The Rep repeated stochastic sorts of the clusterer are
//!    themselves driven by bootstrap comparisons, so the per-class relative
//!    scores are proportions over a Rep-draw bootstrap ensemble; the rule
//!    puts a closed-form normal CI on the class-vs-runner-up margin of that
//!    ensemble — no new randomness is drawn, and stopping early cannot
//!    perturb any value (per-algorithm RNG prefix-extensibility). The
//!    one-round class repeat is deliberate: a single clustering can be
//!    confidently wrong while the empirical quantiles still drift with fresh
//!    samples; requiring the winning class to survive one measurement
//!    extension makes the confidence a statement about the measured
//!    distribution, not about one batch.
//!
//! Rules are stateful per engine run (cross-round counters); the engine
//! creates a fresh instance via make_stopping_rule() each run.

#include "core/clustering.hpp"

#include <cstddef>
#include <memory>
#include <vector>

namespace relperf::core {

/// Which stopping rule an AdaptiveConfig selects.
enum class StoppingRuleKind {
    Stability,  ///< MembershipStabilityRule (the PR 5 default).
    Confidence, ///< ConfidenceTargetRule.
};

[[nodiscard]] const char* to_string(StoppingRuleKind kind) noexcept;

/// Per-run stopping decision state machine. The engine calls observe() once
/// per round with the fresh clustering over *all* algorithms, then queries
/// should_stop() for each still-active algorithm.
class StoppingRule {
public:
    virtual ~StoppingRule() = default;

    [[nodiscard]] virtual const char* name() const noexcept = 0;

    /// One clustering consulted. `stopped[i]` marks algorithms whose
    /// measurement already ended — their verdicts are never read again, so
    /// rules may skip their bookkeeping.
    virtual void observe(const Clustering& clustering,
                         const std::vector<bool>& stopped) = 0;

    /// After observe(): is algorithm `alg`'s membership settled enough to
    /// stop measuring it?
    [[nodiscard]] virtual bool should_stop(std::size_t alg) const = 0;
};

/// Stop after `stability_rounds` consecutive clusterings with unchanged
/// final class membership. Bit-identical to the engine's original inline
/// bookkeeping (the first clustering only seeds the previous-rank state; the
/// counter starts moving from the second).
class MembershipStabilityRule final : public StoppingRule {
public:
    explicit MembershipStabilityRule(std::size_t stability_rounds);

    [[nodiscard]] const char* name() const noexcept override {
        return "stability";
    }
    void observe(const Clustering& clustering,
                 const std::vector<bool>& stopped) override;
    [[nodiscard]] bool should_stop(std::size_t alg) const override;

private:
    std::size_t stability_rounds_;
    std::vector<std::size_t> stable_;
    std::vector<int> previous_rank_;
};

/// Stop once the algorithm's final class beat its runner-up class by a
/// relative-score margin significant at `confidence` (one-sided normal CI
/// over the Rep clustering repetitions) *and* the same class won the
/// previous clustering. Never stops on the very first clustering.
class ConfidenceTargetRule final : public StoppingRule {
public:
    /// `confidence` in (0.5, 1): one-sided coverage of the margin CI.
    explicit ConfidenceTargetRule(double confidence);

    [[nodiscard]] const char* name() const noexcept override {
        return "confidence";
    }
    void observe(const Clustering& clustering,
                 const std::vector<bool>& stopped) override;
    [[nodiscard]] bool should_stop(std::size_t alg) const override;

    /// The z critical value the confidence level resolved to (exposed for
    /// tests).
    [[nodiscard]] double z() const noexcept { return z_; }

private:
    double z_ = 0.0;
    std::vector<int> previous_rank_;
    std::vector<bool> verdict_;
};

/// Fresh rule instance for one engine run.
[[nodiscard]] std::unique_ptr<StoppingRule> make_stopping_rule(
    StoppingRuleKind kind, std::size_t stability_rounds, double confidence);

} // namespace relperf::core
