#pragma once
//! \file classical_comparators.hpp
//! Baseline three-way comparators for the ablation study
//! (`bench/ablation_comparators`): classical hypothesis tests and the naive
//! summary-statistic comparison the paper argues against (Sec. I: a single
//! number "cannot reliably capture the performance of an algorithm").

#include "core/comparison.hpp"

namespace relperf::core {

/// Mann–Whitney U with a Cliff's-delta practical-significance gate:
/// a difference must be both statistically significant (p < alpha) and
/// non-negligible (|delta| > min_effect) to count as better/worse.
class MannWhitneyComparator final : public Comparator {
public:
    explicit MannWhitneyComparator(double alpha = 0.05, double min_effect = 0.147);

    [[nodiscard]] Ordering compare(std::span<const double> a,
                                   std::span<const double> b,
                                   stats::Rng& rng) const override;
    [[nodiscard]] std::string name() const override { return "mann-whitney"; }

private:
    double alpha_;
    double min_effect_;
};

/// Two-sample Kolmogorov–Smirnov; direction from the median difference.
class KsComparator final : public Comparator {
public:
    explicit KsComparator(double alpha = 0.05);

    [[nodiscard]] Ordering compare(std::span<const double> a,
                                   std::span<const double> b,
                                   stats::Rng& rng) const override;
    [[nodiscard]] std::string name() const override { return "kolmogorov-smirnov"; }

private:
    double alpha_;
};

/// Naive baseline: compares a single summary statistic with a relative
/// tolerance. This is the approach the paper's methodology replaces.
class SummaryComparator final : public Comparator {
public:
    enum class Statistic { Mean, Median, Minimum };

    explicit SummaryComparator(Statistic stat = Statistic::Mean,
                               double rel_tolerance = 0.02);

    [[nodiscard]] Ordering compare(std::span<const double> a,
                                   std::span<const double> b,
                                   stats::Rng& rng) const override;
    [[nodiscard]] std::string name() const override;

private:
    Statistic stat_;
    double rel_tolerance_;
};

} // namespace relperf::core
