#include "core/measurement.hpp"

#include "support/error.hpp"

namespace relperf::core {

std::size_t MeasurementSet::add(std::string name, std::vector<double> samples) {
    RELPERF_REQUIRE(!name.empty(), "MeasurementSet: algorithm name must be non-empty");
    RELPERF_REQUIRE(!samples.empty(), "MeasurementSet: samples must be non-empty");
    RELPERF_REQUIRE(!contains(name), "MeasurementSet: duplicate algorithm '" + name + "'");
    for (const double s : samples) {
        RELPERF_REQUIRE(s >= 0.0, "MeasurementSet: measurements must be non-negative");
    }
    algorithms_.push_back(AlgorithmMeasurements{std::move(name), std::move(samples)});
    return algorithms_.size() - 1;
}

const AlgorithmMeasurements& MeasurementSet::at(std::size_t index) const {
    RELPERF_REQUIRE(index < algorithms_.size(), "MeasurementSet: index out of range");
    return algorithms_[index];
}

std::span<const double> MeasurementSet::samples(std::size_t index) const {
    return at(index).samples;
}

const std::string& MeasurementSet::name(std::size_t index) const {
    return at(index).name;
}

std::size_t MeasurementSet::index_of(const std::string& name) const {
    for (std::size_t i = 0; i < algorithms_.size(); ++i) {
        if (algorithms_[i].name == name) return i;
    }
    throw InvalidArgument("MeasurementSet: unknown algorithm '" + name + "'");
}

bool MeasurementSet::contains(const std::string& name) const noexcept {
    for (const AlgorithmMeasurements& alg : algorithms_) {
        if (alg.name == name) return true;
    }
    return false;
}

std::vector<std::string> MeasurementSet::names() const {
    std::vector<std::string> out;
    out.reserve(algorithms_.size());
    for (const AlgorithmMeasurements& alg : algorithms_) out.push_back(alg.name);
    return out;
}

stats::Summary MeasurementSet::summary(std::size_t index) const {
    return stats::summarize(samples(index));
}

} // namespace relperf::core
