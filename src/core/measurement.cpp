#include "core/measurement.hpp"

#include "support/error.hpp"

namespace relperf::core {

namespace {

void require_valid_samples(std::span<const double> samples, const char* who) {
    RELPERF_REQUIRE(!samples.empty(),
                    std::string(who) + ": samples must be non-empty");
    for (const double s : samples) {
        RELPERF_REQUIRE(s >= 0.0,
                        std::string(who) + ": measurements must be non-negative");
    }
}

} // namespace

std::size_t MeasurementSet::add(std::string name, std::vector<double> samples) {
    RELPERF_REQUIRE(!name.empty(), "MeasurementSet: algorithm name must be non-empty");
    require_valid_samples(samples, "MeasurementSet");
    RELPERF_REQUIRE(!contains(name), "MeasurementSet: duplicate algorithm '" + name + "'");
    algorithms_.push_back(AlgorithmMeasurements{std::move(name), std::move(samples)});
    index_by_name_.emplace(algorithms_.back().name, algorithms_.size() - 1);
    return algorithms_.size() - 1;
}

void MeasurementSet::extend(std::size_t index, std::span<const double> samples) {
    RELPERF_REQUIRE(index < algorithms_.size(),
                    "MeasurementSet::extend: index out of range");
    require_valid_samples(samples, "MeasurementSet::extend");
    std::vector<double>& existing = algorithms_[index].samples;
    existing.insert(existing.end(), samples.begin(), samples.end());
}

void MeasurementSet::reserve_samples(std::size_t index, std::size_t capacity) {
    RELPERF_REQUIRE(index < algorithms_.size(),
                    "MeasurementSet::reserve_samples: index out of range");
    algorithms_[index].samples.reserve(capacity);
}

const AlgorithmMeasurements& MeasurementSet::at(std::size_t index) const {
    RELPERF_REQUIRE(index < algorithms_.size(), "MeasurementSet: index out of range");
    return algorithms_[index];
}

std::span<const double> MeasurementSet::samples(std::size_t index) const {
    return at(index).samples;
}

const std::string& MeasurementSet::name(std::size_t index) const {
    return at(index).name;
}

std::size_t MeasurementSet::index_of(const std::string& name) const {
    const auto it = index_by_name_.find(name);
    if (it == index_by_name_.end()) {
        throw InvalidArgument("MeasurementSet: unknown algorithm '" + name + "'");
    }
    return it->second;
}

bool MeasurementSet::contains(const std::string& name) const noexcept {
    return index_by_name_.find(name) != index_by_name_.end();
}

std::vector<std::string> MeasurementSet::names() const {
    std::vector<std::string> out;
    out.reserve(algorithms_.size());
    for (const AlgorithmMeasurements& alg : algorithms_) out.push_back(alg.name);
    return out;
}

stats::Summary MeasurementSet::summary(std::size_t index) const {
    return stats::summarize(samples(index));
}

std::size_t MeasurementSet::total_samples() const noexcept {
    std::size_t total = 0;
    for (const AlgorithmMeasurements& alg : algorithms_) {
        total += alg.samples.size();
    }
    return total;
}

} // namespace relperf::core
