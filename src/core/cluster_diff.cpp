#include "core/cluster_diff.hpp"

#include "support/csv.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

namespace relperf::core {

namespace {

/// name -> 1-based rank index, for linear-time lookups over large
/// clusterings (campaigns allow up to 65536 algorithms).
std::unordered_map<std::string, int> rank_index(const FinalClusters& clusters) {
    std::unordered_map<std::string, int> index;
    index.reserve(clusters.algorithms.size());
    for (std::size_t i = 0; i < clusters.algorithms.size(); ++i) {
        index.emplace(clusters.algorithms[i], clusters.final_rank[i]);
    }
    return index;
}

} // namespace

int FinalClusters::rank_of(const std::string& algorithm) const noexcept {
    for (std::size_t i = 0; i < algorithms.size(); ++i) {
        if (algorithms[i] == algorithm) return final_rank[i];
    }
    return 0;
}

namespace {

[[noreturn]] void fail_at(const std::string& source, std::size_t line_number,
                          const std::string& message) {
    throw Error(str::format("%s:%zu: %s", source.c_str(), line_number,
                            message.c_str()));
}

bool is_skippable(const std::string& line) {
    const std::string_view t = str::trim(line);
    return t.empty() || t.front() == '#';
}

} // namespace

FinalClusters parse_final_clusters_csv(const std::string& content,
                                       const std::string& source) {
    std::istringstream in(content);
    std::string line;
    std::size_t line_number = 0;

    bool have_header = false;
    while (std::getline(in, line)) {
        ++line_number;
        if (line_number == 1 && str::starts_with(line, "\xEF\xBB\xBF")) {
            line.erase(0, 3);
        }
        if (is_skippable(line)) continue;
        have_header = true;
        break;
    }
    if (!have_header) {
        throw Error(source + ": no clustering rows (empty file?)");
    }

    const std::vector<std::string> header = support::csv_split_row(line);
    std::size_t alg_col = header.size();
    std::size_t rank_col = header.size();
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (header[i] == "algorithm") alg_col = i;
        if (header[i] == "final_cluster") rank_col = i;
    }
    if (alg_col == header.size() || rank_col == header.size()) {
        fail_at(source, line_number,
                "not a clustering CSV: header needs 'algorithm' and "
                "'final_cluster' columns, got '" + line + "'");
    }

    FinalClusters out;
    std::unordered_map<std::string, int> seen;
    while (std::getline(in, line)) {
        ++line_number;
        if (is_skippable(line)) continue;
        const std::vector<std::string> fields = support::csv_split_row(line);
        if (fields.size() != header.size()) {
            fail_at(source, line_number,
                    str::format("row has %zu fields, header has %zu",
                                fields.size(), header.size()));
        }
        const std::string& name = fields[alg_col];
        if (name.empty()) fail_at(source, line_number, "empty algorithm name");
        int rank = 0;
        try {
            rank = static_cast<int>(str::parse_size(fields[rank_col],
                                                    "final_cluster"));
        } catch (const Error& e) {
            fail_at(source, line_number, e.what());
        }
        if (rank <= 0) {
            fail_at(source, line_number,
                    "final_cluster must be a positive rank, got '" +
                        fields[rank_col] + "'");
        }
        const auto [it, inserted] = seen.emplace(name, rank);
        if (inserted) {
            out.algorithms.push_back(name);
            out.final_rank.push_back(rank);
        } else if (it->second != rank) {
            fail_at(source, line_number,
                    str::format("algorithm %s has conflicting final clusters "
                                "%d and %d",
                                name.c_str(), it->second, rank));
        }
    }
    if (out.algorithms.empty()) {
        throw Error(source + ": no clustering rows after the header");
    }
    return out;
}

FinalClusters read_final_clusters_csv(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw Error("read_final_clusters_csv: cannot open '" + path + "'");
    }
    std::ostringstream content;
    content << in.rdbuf();
    return parse_final_clusters_csv(content.str(), path);
}

ClusterDiff diff_clusterings(const FinalClusters& old_clusters,
                             const FinalClusters& new_clusters) {
    ClusterDiff diff;
    const std::unordered_map<std::string, int> old_ranks =
        rank_index(old_clusters);
    const std::unordered_map<std::string, int> new_ranks =
        rank_index(new_clusters);
    const auto lookup = [](const std::unordered_map<std::string, int>& index,
                           const std::string& name) {
        const auto it = index.find(name);
        return it == index.end() ? 0 : it->second;
    };

    for (std::size_t i = 0; i < old_clusters.algorithms.size(); ++i) {
        const std::string& name = old_clusters.algorithms[i];
        const int new_rank = lookup(new_ranks, name);
        if (new_rank == 0) {
            diff.only_in_old.push_back(name);
        } else if (new_rank != old_clusters.final_rank[i]) {
            diff.moved.push_back(
                ClusterMove{name, old_clusters.final_rank[i], new_rank});
        }
    }
    for (const std::string& name : new_clusters.algorithms) {
        if (lookup(old_ranks, name) == 0) diff.only_in_new.push_back(name);
    }

    // Splits/merges are views over the moves: an old cluster whose common
    // algorithms now land in several new clusters split; a new cluster
    // receiving common algorithms from several old clusters merged.
    std::map<int, std::set<int>> old_to_new;
    std::map<int, std::set<int>> new_to_old;
    for (std::size_t i = 0; i < old_clusters.algorithms.size(); ++i) {
        const int new_rank = lookup(new_ranks, old_clusters.algorithms[i]);
        if (new_rank == 0) continue;
        old_to_new[old_clusters.final_rank[i]].insert(new_rank);
        new_to_old[new_rank].insert(old_clusters.final_rank[i]);
    }
    for (const auto& [rank, targets] : old_to_new) {
        if (targets.size() > 1) {
            diff.splits.push_back(
                ClusterRegroup{rank, {targets.begin(), targets.end()}});
        }
    }
    for (const auto& [rank, sources] : new_to_old) {
        if (sources.size() > 1) {
            diff.merges.push_back(
                ClusterRegroup{rank, {sources.begin(), sources.end()}});
        }
    }
    return diff;
}

namespace {

std::string rank_list(const std::vector<int>& ranks) {
    std::vector<std::string> parts;
    parts.reserve(ranks.size());
    for (const int r : ranks) parts.push_back("C" + std::to_string(r));
    return str::join(parts, ", ");
}

} // namespace

std::string render_cluster_diff(const ClusterDiff& diff) {
    if (diff.identical()) {
        return "clusterings are identical (same algorithms, same "
               "performance classes)\n";
    }
    std::ostringstream out;
    for (const ClusterMove& move : diff.moved) {
        out << "moved: " << move.algorithm << " C" << move.old_rank << " -> C"
            << move.new_rank << '\n';
    }
    for (const ClusterRegroup& split : diff.splits) {
        out << "split: old C" << split.rank << " -> {" << rank_list(split.ranks)
            << "}\n";
    }
    for (const ClusterRegroup& merge : diff.merges) {
        out << "merged: new C" << merge.rank << " <- {" << rank_list(merge.ranks)
            << "}\n";
    }
    for (const std::string& name : diff.only_in_old) {
        out << "only in old: " << name << '\n';
    }
    for (const std::string& name : diff.only_in_new) {
        out << "only in new: " << name << '\n';
    }
    return out.str();
}

} // namespace relperf::core
