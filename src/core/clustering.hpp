#pragma once
//! \file clustering.hpp
//! Relative-score clustering — the paper's Procedure 4 plus the final
//! unique-assignment rule of Section III.
//!
//! The sort of Procedures 1-3 is stochastic when distributions overlap, so it
//! is repeated `Rep` times over the *same* measurements (shuffling the
//! algorithm order before each repetition; the measurements are never
//! re-taken, paper footnote 5). An algorithm assigned rank r in w of the Rep
//! repetitions receives relative score w / Rep for cluster r — the confidence
//! of membership. The final unique assignment puts each algorithm into its
//! max-score cluster with the scores of better ranks cumulated (the paper's
//! algDA example: rank 3 at 0.6 + rank 2 at 0.3 => final rank 3, score 0.9).

#include "core/comparison.hpp"
#include "core/measurement.hpp"
#include "core/threeway_sort.hpp"

#include <cstdint>
#include <vector>

namespace relperf::core {

/// Membership of one algorithm in one cluster, with its relative score.
struct ClusterEntry {
    std::size_t alg = 0;
    double score = 0.0; ///< Fraction of repetitions with this rank, in (0, 1].
};

/// Final unique assignment of one algorithm.
struct FinalAssignment {
    std::size_t alg = 0;
    int rank = 0;       ///< 1-based performance class.
    double score = 0.0; ///< Cumulated score over ranks <= rank.
};

/// Full clustering result.
struct Clustering {
    /// clusters[r-1] = algorithms that obtained rank r in >= 1 repetition,
    /// sorted by descending score (the paper's Table I layout).
    std::vector<std::vector<ClusterEntry>> clusters;
    /// Final unique assignment, indexed by algorithm id.
    std::vector<FinalAssignment> final_assignment;
    /// Number of repetitions actually performed (Rep).
    std::size_t repetitions = 0;

    [[nodiscard]] int cluster_count() const noexcept {
        return static_cast<int>(clusters.size());
    }

    /// Relative score of `alg` in cluster `rank` (0 when absent).
    [[nodiscard]] double score_of(std::size_t alg, int rank) const;

    /// Convenience: final rank of `alg`.
    [[nodiscard]] int final_rank(std::size_t alg) const;
};

/// Configuration of the repeated clustering.
struct ClustererConfig {
    std::size_t repetitions = 100;    ///< Paper's Rep.
    std::uint64_t seed = 0xC0FFEEULL; ///< Master seed (shuffles + comparator).

    void validate() const;
};

/// Runs Procedure 4 over a MeasurementSet with any Comparator.
class RelativeClusterer {
public:
    RelativeClusterer(const Comparator& comparator, ClustererConfig config = {});

    [[nodiscard]] Clustering cluster(const MeasurementSet& measurements) const;

    /// Single sort pass (one repetition) from a given initial order; exposed
    /// for diagnostics and the Figure 2 bench.
    [[nodiscard]] RankedSequence sort_once(const MeasurementSet& measurements,
                                           std::vector<std::size_t> initial_order,
                                           stats::Rng& rng) const;

    /// As sort_once, with a step trace.
    [[nodiscard]] RankedSequence sort_once_traced(const MeasurementSet& measurements,
                                                  std::vector<std::size_t> initial_order,
                                                  stats::Rng& rng,
                                                  std::vector<SortStep>& trace) const;

private:
    const Comparator& comparator_;
    ClustererConfig config_;
};

} // namespace relperf::core
