#pragma once
//! \file clustering.hpp
//! Relative-score clustering — the paper's Procedure 4 plus the final
//! unique-assignment rule of Section III.
//!
//! The sort of Procedures 1-3 is stochastic when distributions overlap, so it
//! is repeated `Rep` times over the *same* measurements (shuffling the
//! algorithm order before each repetition; the measurements are never
//! re-taken, paper footnote 5). An algorithm assigned rank r in w of the Rep
//! repetitions receives relative score w / Rep for cluster r — the confidence
//! of membership. The final unique assignment puts each algorithm into its
//! max-score cluster with the scores of better ranks cumulated (the paper's
//! algDA example: rank 3 at 0.6 + rank 2 at 0.3 => final rank 3, score 0.9).
//!
//! Scale note: an algorithm can only ever be observed in at most
//! min(Rep, cluster-count) distinct ranks, so the rank tallies are kept as
//! per-algorithm sparse (rank, count) lists — O(p * Rep) peak memory instead
//! of the dense p x p counts matrix (32 GiB at the 65536-variant cap). The
//! dense tally survives as cluster_dense(), the memory-hungry oracle the
//! equivalence tests assert bit-identical results against.

#include "core/comparison.hpp"
#include "core/measurement.hpp"
#include "core/threeway_sort.hpp"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace relperf::core {

/// Membership of one algorithm in one cluster, with its relative score.
struct ClusterEntry {
    std::size_t alg = 0;
    double score = 0.0; ///< Fraction of repetitions with this rank, in (0, 1].
};

/// Final unique assignment of one algorithm.
struct FinalAssignment {
    std::size_t alg = 0;
    int rank = 0;       ///< 1-based performance class.
    double score = 0.0; ///< Cumulated score over ranks <= rank.
};

/// One algorithm's membership in one rank, as stored in the per-algorithm
/// score index (sorted by rank ascending).
struct RankScore {
    int rank = 0;
    double score = 0.0;
};

/// Full clustering result.
struct Clustering {
    /// clusters[r-1] = algorithms that obtained rank r in >= 1 repetition,
    /// sorted by descending score (the paper's Table I layout).
    std::vector<std::vector<ClusterEntry>> clusters;
    /// Final unique assignment, indexed by algorithm id.
    std::vector<FinalAssignment> final_assignment;
    /// Per-algorithm (rank, score) memberships, sorted by rank — the index
    /// behind score_of. Filled by the clusterer; score_of falls back to
    /// scanning `clusters` when a hand-built instance left it empty.
    std::vector<std::vector<RankScore>> memberships;
    /// Number of repetitions actually performed (Rep).
    std::size_t repetitions = 0;

    [[nodiscard]] int cluster_count() const noexcept {
        return static_cast<int>(clusters.size());
    }

    /// Relative score of `alg` in cluster `rank` (0 when the algorithm never
    /// obtained that rank, including out-of-range ranks). Throws
    /// InvalidArgument for an out-of-range algorithm index, like final_rank.
    [[nodiscard]] double score_of(std::size_t alg, int rank) const;

    /// Convenience: final rank of `alg`.
    [[nodiscard]] int final_rank(std::size_t alg) const;
};

/// Configuration of the repeated clustering.
struct ClustererConfig {
    std::size_t repetitions = 100;    ///< Paper's Rep.
    std::uint64_t seed = 0xC0FFEEULL; ///< Master seed (shuffles + comparator).

    void validate() const;
};

/// Reusable cross-call state for repeated clusterings of the *same*
/// algorithm set under the *same* config — the adaptive engine's per-round
/// re-clustering. Two independent reuses live here:
///
///  * The per-repetition shuffled orders and post-shuffle rng snapshots are
///    pure functions of (seed, Rep, p), so round 2+ skips re-deriving and
///    re-shuffling Rep child streams. Bit-identical by construction.
///  * Comparison outcomes between two *frozen* algorithms (both marked via
///    freeze(), i.e. early-stopped: their samples can no longer change) are
///    cached per repetition and replayed on every later comparison of the
///    pair — the later bubble passes of the same round as well as all
///    subsequent rounds — instead of re-running the bootstrap. Replayed
///    outcomes are legitimate draws of the same conditional distribution,
///    but they shift the rng stream of subsequent comparisons in that
///    repetition, so a round that reused any outcome is no longer
///    bit-identical to a from-scratch clustering — the engine recomputes its
///    final published clustering cleanly for exactly that reason (see
///    MeasurementEngine).
///
/// With no algorithm frozen, cluster(measurements, ctx) is bit-identical to
/// cluster(measurements) (gtest-asserted).
class ClusterContext {
public:
    ClusterContext() = default;

    /// Marks an algorithm as frozen: its samples are final, so comparisons
    /// against other frozen algorithms may be replayed across rounds.
    void freeze(std::size_t alg);

    /// Comparisons replayed from the cache in the most recent cluster() call.
    [[nodiscard]] std::size_t reused_last_round() const noexcept {
        return reused_last_round_;
    }

    /// Comparisons replayed over the context's lifetime.
    [[nodiscard]] std::size_t reused_total() const noexcept {
        return reused_total_;
    }

private:
    friend class RelativeClusterer;

    /// Sparse per-algorithm rank tallies, reused across calls.
    std::vector<std::vector<std::pair<int, std::size_t>>> counts_;
    /// Per-repetition shuffled initial orders (identical every round).
    std::vector<std::vector<std::size_t>> orders_;
    /// Per-repetition rng state after the shuffle (the comparator stream).
    std::vector<stats::Rng> streams_;
    /// What orders_/streams_ were prepared for; re-prepared on mismatch.
    std::uint64_t prepared_seed_ = 0;
    std::size_t prepared_reps_ = 0;
    std::size_t prepared_p_ = 0;
    bool prepared_ = false;

    std::vector<bool> frozen_;
    /// outcome_cache_[rep][pair-key] = replayable Ordering for a frozen pair.
    std::vector<std::unordered_map<std::uint64_t, Ordering>> outcome_cache_;
    std::size_t reused_last_round_ = 0;
    std::size_t reused_total_ = 0;
};

/// Runs Procedure 4 over a MeasurementSet with any Comparator.
class RelativeClusterer {
public:
    RelativeClusterer(const Comparator& comparator, ClustererConfig config = {});

    [[nodiscard]] Clustering cluster(const MeasurementSet& measurements) const;

    /// As cluster(), reusing (and updating) engine-owned cross-round state.
    /// Bit-identical to the context-free overload unless `context` has
    /// frozen algorithms whose cached outcomes get replayed (see
    /// ClusterContext).
    [[nodiscard]] Clustering cluster(const MeasurementSet& measurements,
                                     ClusterContext& context) const;

    /// The pre-scale reference implementation with the dense p x p counts
    /// matrix — O(p^2) memory, kept only as the oracle the sparse path is
    /// equivalence-tested against. Do not use beyond small p.
    [[nodiscard]] Clustering cluster_dense(const MeasurementSet& measurements) const;

    /// Single sort pass (one repetition) from a given initial order; exposed
    /// for diagnostics and the Figure 2 bench.
    [[nodiscard]] RankedSequence sort_once(const MeasurementSet& measurements,
                                           std::vector<std::size_t> initial_order,
                                           stats::Rng& rng) const;

    /// As sort_once, with a step trace.
    [[nodiscard]] RankedSequence sort_once_traced(const MeasurementSet& measurements,
                                                  std::vector<std::size_t> initial_order,
                                                  stats::Rng& rng,
                                                  std::vector<SortStep>& trace) const;

private:
    const Comparator& comparator_;
    ClustererConfig config_;
};

} // namespace relperf::core
