#pragma once
//! \file comparison.hpp
//! The three-way comparison abstraction at the center of the paper: comparing
//! two algorithms means comparing two *distributions* of measurements, and
//! the outcome is one of "better", "equivalent", "worse" (Sec. I/III).

#include "stats/rng.hpp"

#include <span>
#include <string>

namespace relperf::core {

/// Outcome of comparing algorithm `a` against algorithm `b`.
/// For execution times, `Better` means `a` is faster than `b`.
enum class Ordering {
    Worse,      ///< a performs worse than b  (paper: a < b).
    Equivalent, ///< distributions overlap significantly (paper: a ~ b).
    Better,     ///< a performs better than b (paper: a > b).
};

/// Flips the perspective: compare(a, b) == reverse(compare(b, a)) must hold
/// for any sane comparator (property-tested).
[[nodiscard]] constexpr Ordering reverse(Ordering o) noexcept {
    switch (o) {
        case Ordering::Worse: return Ordering::Better;
        case Ordering::Better: return Ordering::Worse;
        case Ordering::Equivalent: return Ordering::Equivalent;
    }
    return Ordering::Equivalent;
}

[[nodiscard]] const char* to_string(Ordering o) noexcept;

/// Paper-style symbol: "<", "~", ">".
[[nodiscard]] const char* to_symbol(Ordering o) noexcept;

/// Distribution-level three-way comparator interface.
///
/// Implementations may be stochastic (the bootstrap comparator draws
/// resamples); all randomness flows through the caller's Rng so repeated
/// clustering (Procedure 4) sees independent comparison draws while the whole
/// analysis stays reproducible under a fixed seed.
class Comparator {
public:
    virtual ~Comparator() = default;

    /// Three-way comparison of measurement samples `a` vs `b`
    /// (lower values are better: execution time, energy, ...).
    [[nodiscard]] virtual Ordering compare(std::span<const double> a,
                                           std::span<const double> b,
                                           stats::Rng& rng) const = 0;

    /// Short identifier for reports ("bootstrap", "mann-whitney", ...).
    [[nodiscard]] virtual std::string name() const = 0;
};

} // namespace relperf::core
