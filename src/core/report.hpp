#pragma once
//! \file report.hpp
//! Human-readable rendering of analysis results: the paper-shaped cluster
//! table (Table I), measurement summaries, pairwise comparison matrices,
//! bubble-sort traces (Figure 2) and ASCII distribution plots (Figure 1b),
//! plus CSV export for external plotting.

#include "core/clustering.hpp"
#include "core/measurement.hpp"
#include "core/threeway_sort.hpp"

#include <string>

namespace relperf::core {

/// Renders the per-rank cluster table with relative scores (paper Table I):
///
///     +---------+-----------+----------------+
///     | Cluster | Algorithm | Relative Score |
///     ...
[[nodiscard]] std::string render_cluster_table(const Clustering& clustering,
                                               const MeasurementSet& measurements);

/// Renders the final unique assignment (max-score rank, cumulated score).
[[nodiscard]] std::string render_final_table(const Clustering& clustering,
                                             const MeasurementSet& measurements);

/// Per-algorithm summary statistics (count/mean/sd/quartiles), sorted by
/// mean.
[[nodiscard]] std::string render_summary_table(const MeasurementSet& measurements);

/// Full pairwise three-way comparison matrix using `comparator`
/// (entry [i][j] = symbol of compare(i, j)).
[[nodiscard]] std::string render_comparison_matrix(const MeasurementSet& measurements,
                                                   const Comparator& comparator,
                                                   stats::Rng& rng);

/// Step-by-step sort trace in the style of the paper's Figure 2.
[[nodiscard]] std::string render_sort_trace(const std::vector<SortStep>& trace,
                                            const MeasurementSet& measurements);

/// Shared-axis ASCII histograms of every algorithm's distribution
/// (the paper's Figure 1b as terminal output).
[[nodiscard]] std::string render_distributions(const MeasurementSet& measurements,
                                               std::size_t bins = 40,
                                               std::size_t width = 50);

/// CSV export: one row per (algorithm, measurement).
void write_measurements_csv(const MeasurementSet& measurements,
                            const std::string& path);

/// CSV export: one row per (cluster, algorithm, score) plus final columns.
void write_clustering_csv(const Clustering& clustering,
                          const MeasurementSet& measurements,
                          const std::string& path);

} // namespace relperf::core
