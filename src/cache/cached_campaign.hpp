#pragma once
//! \file cached_campaign.hpp
//! The cache-aware campaign entry point: consult the ResultCache before any
//! measurement, serve what it holds, measure only what it doesn't, publish
//! the result back.
//!
//! Three outcomes (see result_cache.hpp for the lookup tiers):
//!
//!  - **Exact hit** — the entry's samples are re-clustered under the spec's
//!    analysis knobs and returned with zero executor draws
//!    (relperf_samples_total stays 0: only the executor-backed leaf sources
//!    count drawn samples).
//!  - **Prefix extension** — the entry's samples are replayed as the stream
//!    prefix through a CachedSampleSource over the spec's real source
//!    (cached_source.hpp); the ordinary measurement path re-runs from
//!    scratch seeing identical values, so the final MeasurementSet is
//!    bit-identical to a cold full run while only the budget delta reaches
//!    the executor. The extended result is stored, upgrading the entry.
//!  - **Miss** — the campaign runs exactly as without a cache, then stores.
//!
//! Cacheability: a shard-local adaptive plan run with K > 1 shards produces
//! per-algorithm counts that depend on K, which the plan hash deliberately
//! excludes — such runs bypass the cache entirely (neither served nor
//! stored, counted as a miss). Fixed-N plans (any K), single-shard adaptive
//! plans and coordinated adaptive plans (K-invariant counts by
//! construction) are all cacheable.

#include "cache/result_cache.hpp"
#include "campaign/spec.hpp"
#include "core/pipeline.hpp"

#include <cstddef>
#include <vector>

namespace relperf::cache {

/// Outcome of a cache-aware campaign run.
struct CachedRunResult {
    core::AnalysisResult analysis;
    HitKind cache = HitKind::Miss; ///< Lookup tier that produced `analysis`.
    /// True when the plan is not cacheable under the requested shard count
    /// (shard-local adaptive with K > 1) — the run went straight through.
    bool bypassed = false;
    /// Samples served from the cache instead of the executor (all of them on
    /// an exact hit, the reused prefix on an extension, 0 on a miss).
    std::size_t samples_from_cache = 0;
    /// Coordinated campaigns: the stop-set broadcast history (from the
    /// coordinator on a live run, from the entry manifest on an exact hit).
    std::vector<std::size_t> stopset_rounds;
    std::size_t rounds = 0; ///< Coordinator rounds (coordinated plans only).
};

/// True when `spec` run with `shard_count` shards (0 = spec.shards) yields a
/// K-invariant result the cache may serve and store.
[[nodiscard]] bool cacheable(const campaign::CampaignSpec& spec,
                             std::size_t shard_count);

/// campaign::run_campaign with the cache consulted first. A disabled cache
/// (empty dir) or an uncacheable plan degrades to a plain run. `workers`
/// only affects the miss path of non-coordinated plans (as in run_campaign).
[[nodiscard]] CachedRunResult run_campaign_cached(
    const campaign::CampaignSpec& spec, ResultCache& cache,
    std::size_t shard_count = 0, std::size_t workers = 1);

} // namespace relperf::cache
