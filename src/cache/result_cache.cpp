#include "cache/result_cache.hpp"

#include "campaign/merge.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define RELPERF_CACHE_HAVE_POSIX 1
#else
#define RELPERF_CACHE_HAVE_POSIX 0
#endif

namespace fs = std::filesystem;

namespace relperf::cache {

namespace {

std::string hash_name(std::uint64_t hash) {
    return str::format("%016llx", static_cast<unsigned long long>(hash));
}

/// Process-unique temp suffix so concurrent writers never collide on the
/// temp file; the final rename is what decides the published content.
std::string temp_suffix() {
#if RELPERF_CACHE_HAVE_POSIX
    return str::format(".tmp.%lld", static_cast<long long>(getpid()));
#else
    return ".tmp";
#endif
}

void warn(const std::string& message) {
    std::fprintf(stderr, "warning: result cache: %s\n", message.c_str());
}

/// Writes `content` to `path` atomically (temp + rename). Throws on failure.
void atomic_write(const std::string& path, const std::string& content) {
    const std::string tmp = path + temp_suffix();
    {
        std::ofstream out(tmp);
        if (!out) throw Error("cannot open '" + tmp + "'");
        out << content;
        out.close();
        if (!out) throw Error("failed writing '" + tmp + "'");
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        throw Error("cannot publish '" + path + "'");
    }
}

} // namespace

const char* to_string(HitKind kind) noexcept {
    switch (kind) {
        case HitKind::Miss: return "miss";
        case HitKind::Exact: return "exact";
        case HitKind::Prefix: return "prefix";
    }
    return "miss";
}

ResultCache::ResultCache(CacheConfig config) : config_(std::move(config)) {}

std::string ResultCache::payload_path(std::uint64_t plan_hash) const {
    return (fs::path(config_.dir) / (hash_name(plan_hash) + ".csv")).string();
}

std::string ResultCache::meta_path(std::uint64_t plan_hash) const {
    return (fs::path(config_.dir) / (hash_name(plan_hash) + ".meta")).string();
}

namespace {

/// Parses one `.meta` sidecar; returns false (no warning — sidecars are
/// advisory) on any malformed content.
bool parse_meta(const std::string& path, std::uint64_t& plan_hash,
                std::uint64_t& prefix_hash, std::size_t& budget,
                std::uint64_t& last_use) {
    std::ifstream in(path);
    if (!in) return false;
    std::string line;
    bool saw_plan = false, saw_prefix = false, saw_budget = false;
    while (std::getline(in, line)) {
        const std::string_view trimmed = str::trim(line);
        if (trimmed.empty() || trimmed.front() == '#') continue;
        const std::size_t eq = trimmed.find('=');
        if (eq == std::string_view::npos) return false;
        const std::string key(str::trim(trimmed.substr(0, eq)));
        const std::string value(str::trim(trimmed.substr(eq + 1)));
        try {
            if (key == "plan_hash") {
                plan_hash = str::parse_u64("0x" + value, key);
                saw_plan = true;
            } else if (key == "prefix_hash") {
                prefix_hash = str::parse_u64("0x" + value, key);
                saw_prefix = true;
            } else if (key == "budget") {
                budget = str::parse_size(value, key);
                saw_budget = true;
            } else if (key == "last_use") {
                last_use = str::parse_u64(value, key);
            }
            // Unknown keys are ignored: forward compatibility.
        } catch (const Error&) {
            return false;
        }
    }
    return saw_plan && saw_prefix && saw_budget;
}

} // namespace

std::vector<ResultCache::MetaEntry> ResultCache::scan_metas() const {
    std::vector<MetaEntry> out;
    std::error_code ec;
    if (!fs::is_directory(config_.dir, ec)) return out;
    // Directory iteration order is filesystem-defined; sort before anything
    // downstream consumes the list so candidate selection, eviction order
    // and stats are deterministic.
    std::vector<std::string> paths;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(config_.dir, ec)) {
        if (entry.path().extension() == ".meta") {
            paths.push_back(entry.path().string());
        }
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string& path : paths) {
        MetaEntry meta;
        if (parse_meta(path, meta.plan_hash, meta.prefix_hash, meta.budget,
                       meta.last_use)) {
            out.push_back(meta);
        }
    }
    return out;
}

void ResultCache::write_meta(const MetaEntry& meta) {
    std::ostringstream out;
    out << "# relperf-cache v1\n";
    out << "plan_hash = " << hash_name(meta.plan_hash) << '\n';
    out << "prefix_hash = " << hash_name(meta.prefix_hash) << '\n';
    out << "budget = " << meta.budget << '\n';
    out << "last_use = " << meta.last_use << '\n';
    atomic_write(meta_path(meta.plan_hash), out.str());
}

void ResultCache::touch(const MetaEntry& meta) {
    // Logical LRU clock: the next counter value is one above the largest
    // recorded anywhere in the directory — no wall clock involved, so
    // eviction order is reproducible run to run.
    try {
        std::uint64_t max_use = 0;
        bool already_newest = true;
        for (const MetaEntry& other : scan_metas()) {
            max_use = std::max(max_use, other.last_use);
            if (other.plan_hash != meta.plan_hash &&
                other.last_use >= meta.last_use) {
                already_newest = false;
            }
        }
        MetaEntry updated = meta;
        updated.last_use = max_use + 1;
        // Skip the rewrite when this entry is already the newest *and* its
        // sidecar exists — touching would only churn the file.
        std::error_code ec;
        if (already_newest && fs::exists(meta_path(meta.plan_hash), ec) &&
            meta.last_use == max_use && max_use != 0) {
            return;
        }
        write_meta(updated);
    } catch (const std::exception& e) {
        warn(std::string("cannot update last-use of entry ") +
             hash_name(meta.plan_hash) + ": " + e.what());
    }
}

bool ResultCache::load_entry(const campaign::CampaignSpec& spec,
                             std::uint64_t plan_hash, CacheLookup& out) const {
    try {
        campaign::ShardResult entry =
            campaign::read_shard_csv(payload_path(plan_hash));
        if (entry.manifest.shard_count != 1 ||
            entry.manifest.shard_index != 0) {
            throw Error("entry is not a single-shard merged result");
        }
        // merge_shards is the integrity layer: spec-hash equality, adaptive
        // plan agreement, per-algorithm count reachability, completeness.
        // A tampered or truncated payload dies here and becomes a miss.
        out.merged = campaign::merge_shards(spec, {entry});
        out.manifest = std::move(entry.manifest);
        return true;
    } catch (const std::exception& e) {
        warn("ignoring entry " + hash_name(plan_hash) + ": " + e.what());
        return false;
    }
}

CacheLookup ResultCache::lookup(const campaign::CampaignSpec& spec) {
    RELPERF_REQUIRE(config_.enabled(),
                    "ResultCache::lookup: cache directory not configured");
    spec.validate();
    const std::uint64_t plan = spec.hash();
    obs::Span span("cache.lookup", "cache");
    span.arg("plan_hash", hash_name(plan));

    CacheLookup out;
    // Tier 1: exact entry under this plan hash.
    std::error_code ec;
    if (fs::exists(payload_path(plan), ec) && load_entry(spec, plan, out)) {
        out.kind = HitKind::Exact;
        out.cached_budget = spec.measurements;
        MetaEntry meta{plan, spec.prefix_hash(), spec.measurements, 0};
        std::uint64_t prefix_ignored = 0;
        (void)parse_meta(meta_path(plan), meta.plan_hash, prefix_ignored,
                         meta.budget, meta.last_use);
        touch(meta);
        obs::metrics().cache_hits_total.inc();
        span.arg("outcome", "exact");
        return out;
    }

    // Tier 2: same plan, smaller budget — a prefix-extension candidate.
    // Largest usable budget first (most samples reused); plan hash breaks
    // ties deterministically.
    const std::uint64_t prefix = spec.prefix_hash();
    std::vector<MetaEntry> candidates;
    for (const MetaEntry& meta : scan_metas()) {
        if (meta.prefix_hash != prefix) continue;
        if (meta.budget == 0 || meta.budget >= spec.measurements) continue;
        // An adaptive plan cannot shrink its cap below the floor: such an
        // entry would fail candidate-spec validation anyway.
        if (spec.adaptive() && meta.budget < spec.adaptive_min) continue;
        candidates.push_back(meta);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const MetaEntry& a, const MetaEntry& b) {
                  if (a.budget != b.budget) return a.budget > b.budget;
                  return a.plan_hash < b.plan_hash;
              });
    for (const MetaEntry& meta : candidates) {
        campaign::CampaignSpec candidate = spec;
        candidate.measurements = meta.budget;
        if (candidate.hash() != meta.plan_hash) continue; // stale sidecar
        if (!load_entry(candidate, meta.plan_hash, out)) continue;
        out.kind = HitKind::Prefix;
        out.cached_budget = meta.budget;
        touch(meta);
        obs::metrics().cache_extensions_total.inc();
        span.arg("outcome", "prefix")
            .arg("cached_budget", static_cast<std::uint64_t>(meta.budget));
        return out;
    }

    obs::metrics().cache_misses_total.inc();
    span.arg("outcome", "miss");
    return out;
}

void ResultCache::store(const campaign::CampaignSpec& spec,
                        const core::MeasurementSet& merged,
                        const std::vector<std::size_t>& stopset_rounds) {
    if (!config_.enabled()) return;
    try {
        spec.validate();
        RELPERF_REQUIRE(!merged.empty(), "store: empty measurement set");
        std::error_code ec;
        fs::create_directories(config_.dir, ec);

        const std::uint64_t plan = spec.hash();
        campaign::ShardResult entry;
        campaign::ShardManifest& m = entry.manifest;
        m.spec_hash = plan;
        m.shard_index = 0;
        m.shard_count = 1;
        m.campaign = spec.name;
        m.host = campaign::host_name();
        m.backend = spec.backend;
        m.variant_backends = spec.variant_backends;
        if (spec.adaptive()) {
            m.adaptive_min = spec.adaptive_min;
            m.adaptive_batch = spec.adaptive_batch;
            m.adaptive_stability = spec.adaptive_stability;
            m.adaptive_coordinated = spec.adaptive_coordinated;
            m.adaptive_confidence = spec.adaptive_confidence;
            m.stopset_rounds = stopset_rounds;
            m.samples_per_algorithm.reserve(merged.size());
            for (std::size_t i = 0; i < merged.size(); ++i) {
                m.samples_per_algorithm.push_back(merged.samples(i).size());
            }
        }
        entry.measurements = merged;

        // Publish payload first, sidecar second: a reader that sees the
        // sidecar can rely on the payload already being in place, and an
        // orphan payload (crash between the renames) is still exact-hittable
        // while its sidecar is recreated on the next touch.
        const std::string payload = payload_path(plan);
        const std::string tmp = payload + temp_suffix();
        campaign::write_shard_csv(entry, tmp);
        fs::rename(tmp, payload, ec);
        if (ec) {
            fs::remove(tmp, ec);
            throw Error("cannot publish '" + payload + "'");
        }
        std::uint64_t max_use = 0;
        for (const MetaEntry& other : scan_metas()) {
            max_use = std::max(max_use, other.last_use);
        }
        write_meta(MetaEntry{plan, spec.prefix_hash(), spec.measurements,
                             max_use + 1});
        evict();
    } catch (const std::exception& e) {
        // The campaign result is already in hand; a failed store (read-only
        // directory, disk full) must not fail the run.
        warn(std::string("cannot store entry: ") + e.what());
    }
}

void ResultCache::evict() {
    if (config_.max_entries == 0 && config_.max_bytes == 0) return;
    struct Sized {
        MetaEntry meta;
        std::uintmax_t bytes = 0;
    };
    std::vector<Sized> entries;
    std::uintmax_t total_bytes = 0;
    std::error_code ec;
    for (const MetaEntry& meta : scan_metas()) {
        Sized sized{meta, 0};
        const std::uintmax_t payload =
            fs::file_size(payload_path(meta.plan_hash), ec);
        if (!ec) sized.bytes += payload;
        const std::uintmax_t sidecar =
            fs::file_size(meta_path(meta.plan_hash), ec);
        if (!ec) sized.bytes += sidecar;
        total_bytes += sized.bytes;
        entries.push_back(sized);
    }
    // Oldest first; plan hash breaks last-use ties deterministically.
    std::sort(entries.begin(), entries.end(),
              [](const Sized& a, const Sized& b) {
                  if (a.meta.last_use != b.meta.last_use) {
                      return a.meta.last_use < b.meta.last_use;
                  }
                  return a.meta.plan_hash < b.meta.plan_hash;
              });
    std::size_t count = entries.size();
    std::size_t next = 0;
    while (next < entries.size() &&
           ((config_.max_entries != 0 && count > config_.max_entries) ||
            (config_.max_bytes != 0 && total_bytes > config_.max_bytes))) {
        const Sized& victim = entries[next++];
        fs::remove(payload_path(victim.meta.plan_hash), ec);
        fs::remove(meta_path(victim.meta.plan_hash), ec);
        --count;
        total_bytes -= std::min<std::uintmax_t>(total_bytes, victim.bytes);
    }
}

CacheStats ResultCache::stats() const {
    CacheStats out;
    std::error_code ec;
    if (!fs::is_directory(config_.dir, ec)) return out;
    std::vector<std::string> paths;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(config_.dir, ec)) {
        paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string& path : paths) {
        const fs::path p(path);
        if (p.extension() == ".meta" || p.extension() == ".csv") {
            const std::uintmax_t size = fs::file_size(p, ec);
            if (!ec) out.bytes += static_cast<std::size_t>(size);
        }
        if (p.extension() == ".meta") {
            const fs::path payload = fs::path(p).replace_extension(".csv");
            if (fs::exists(payload, ec)) ++out.entries;
        }
    }
    return out;
}

} // namespace relperf::cache
