#pragma once
//! \file cached_source.hpp
//! SampleSource decorator that replays a cached sample prefix — the
//! mechanism behind a prefix-extension cache hit.
//!
//! A cached entry of the same plan with a smaller budget holds, per
//! algorithm, a byte-exact prefix of what the larger-budget run would draw
//! (per-assignment RNG streams make samples prefix-extensible). Wrapping the
//! real executor-backed source with a CachedSampleSource lets the ordinary
//! measurement path — measure_all, the adaptive engine, the coordinated
//! campaign — re-run from scratch while the first `cached` samples of every
//! algorithm are served from the entry instead of the executor. The caller's
//! decisions (adaptive stops, clusterings) see identical values in identical
//! order, so the final MeasurementSet is bit-identical to a cold full run;
//! only draws beyond the cached prefix reach the inner source, after its
//! stream is fast-forwarded (SampleSource::skip) past the consumed prefix.
//!
//! Served samples increment relperf_cache_extension_samples_saved_total and
//! — deliberately — not relperf_samples_total: the leaf executor-backed
//! sources own the "actually drawn" accounting, so an exact hit reports
//! zero samples and an extension reports exactly the delta.

#include "core/measurement.hpp"
#include "core/measurement_engine.hpp"

#include <cstddef>
#include <vector>

namespace relperf::cache {

/// Replays `cached`'s samples as the per-algorithm stream prefix of `inner`.
/// `cached` must enumerate exactly `inner`'s algorithms (same order, same
/// names) — the cache guarantees this by validating entries against the
/// query spec before handing them here.
class CachedSampleSource final : public core::SampleSource {
public:
    CachedSampleSource(core::SampleSource& inner,
                       const core::MeasurementSet& cached);

    [[nodiscard]] std::size_t count() const override;
    [[nodiscard]] std::string name(std::size_t index) const override;
    [[nodiscard]] std::vector<double> draw(std::size_t index,
                                           std::size_t n) override;
    void skip(std::size_t index, std::size_t n) override;

    /// Samples served from the cached prefix (across all algorithms).
    [[nodiscard]] std::size_t served() const noexcept { return served_; }

private:
    /// Fast-forwards the inner stream past every cached-prefix sample this
    /// wrapper has consumed for `index` (lazy: runs at most once per draw
    /// that goes beyond the prefix, and only for the not-yet-skipped part).
    void sync_inner(std::size_t index);

    core::SampleSource& inner_;
    const core::MeasurementSet& cached_;
    std::vector<std::size_t> consumed_;       ///< total consumed per alg
    std::vector<std::size_t> inner_skipped_;  ///< prefix samples skipped in inner
    std::size_t served_ = 0;
};

} // namespace relperf::cache
