#pragma once
//! \file result_cache.hpp
//! Persistent, on-disk, content-addressed result cache keyed by the campaign
//! plan hash — the measurement-avoidance layer a repeat query is served
//! from instead of being re-measured.
//!
//! Layout: one entry per measured plan under the cache directory,
//!
//!     <dir>/<plan_hash:016x>.csv    the merged measurements in shard-file
//!                                   format (shard 0/1, spec_hash = plan
//!                                   hash) — campaign::write_shard_csv and
//!                                   its strict manifest validation are the
//!                                   integrity layer
//!     <dir>/<plan_hash:016x>.meta   the index sidecar: plan hash, prefix
//!                                   hash, budget (measurements / the
//!                                   adaptive cap) and a logical last-use
//!                                   counter for deterministic LRU eviction
//!
//! Lookups come in two tiers. An **exact hit** finds the entry whose name is
//! the query's plan hash, re-validates it through campaign::merge_shards
//! (spec hash, per-algorithm counts, adaptive reachability — the same checks
//! a shard merge runs) and returns the merged measurements: re-clustering
//! them reproduces the original analysis byte for byte with zero executor
//! draws. A **prefix extension** finds an entry of the *same plan with a
//! smaller budget* (equal CampaignSpec::prefix_hash, smaller `budget`):
//! because every algorithm draws a prefix-extensible per-assignment stream,
//! the cached samples are a byte-exact prefix of the larger run's, so the
//! caller measures only the remainder (see cached_campaign.hpp).
//!
//! Robustness: publishes write to a temp file and rename into place, so a
//! concurrent writer or a crash can never leave a half-written entry under
//! the final name; corrupt, truncated or tampered entries fail manifest
//! validation and degrade to a miss (the caller re-measures and the store
//! repairs the entry). A read-only directory degrades the same way —
//! the cache never turns a serviceable campaign into an error.

#include "campaign/spec.hpp"
#include "campaign/shard_io.hpp"
#include "core/measurement.hpp"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace relperf::cache {

/// Where the cache lives and how big it may grow. An empty `dir` disables
/// caching (every consult is a pass-through).
struct CacheConfig {
    std::string dir;             ///< Cache directory (created on first store).
    std::size_t max_entries = 0; ///< Entry-count cap; 0 = unlimited.
    std::size_t max_bytes = 0;   ///< Payload+sidecar byte cap; 0 = unlimited.

    [[nodiscard]] bool enabled() const noexcept { return !dir.empty(); }
};

/// Outcome tier of a lookup.
enum class HitKind {
    Miss,   ///< No usable entry — measure from scratch (and store).
    Exact,  ///< Same plan hash — zero executor draws.
    Prefix, ///< Same plan, smaller budget — measure only the delta.
};

[[nodiscard]] const char* to_string(HitKind kind) noexcept;

/// A validated lookup result. For Exact and Prefix hits `merged` holds the
/// entry's measurements re-validated and re-stitched into global enumeration
/// order by campaign::merge_shards, and `manifest` the entry's provenance
/// (adaptive plan, stop-set history, per-algorithm counts).
struct CacheLookup {
    HitKind kind = HitKind::Miss;
    core::MeasurementSet merged;
    campaign::ShardManifest manifest;
    std::size_t cached_budget = 0; ///< Entry's measurements budget (hits only).
};

/// On-disk state of the cache (the `--cache-stats` numbers).
struct CacheStats {
    std::size_t entries = 0; ///< Complete entries (payload + sidecar).
    std::size_t bytes = 0;   ///< Total payload + sidecar bytes.
};

/// The cache proper. Thread-compatible (one instance per thread or external
/// locking); concurrent *processes* are safe by the atomic-rename publish
/// discipline — racing writers of the same plan produce identical content,
/// and the last rename wins.
class ResultCache {
public:
    explicit ResultCache(CacheConfig config);

    [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }

    /// Consults the cache for `spec`'s plan. Emits a `cache.lookup` span and
    /// maintains the relperf_cache_{hits,misses,extensions}_total counters.
    /// Any I/O or validation failure on a candidate entry warns on stderr
    /// and degrades toward Miss — never throws for a bad entry.
    [[nodiscard]] CacheLookup lookup(const campaign::CampaignSpec& spec);

    /// Publishes the merged result of a full run of `spec` as the entry for
    /// its plan hash (overwriting any stale or corrupt predecessor), then
    /// applies the LRU eviction pass. Failures (e.g. a read-only directory)
    /// warn on stderr and leave the cache unchanged — the campaign result
    /// is already in hand, so a store can never fail the run.
    void store(const campaign::CampaignSpec& spec,
               const core::MeasurementSet& merged,
               const std::vector<std::size_t>& stopset_rounds = {});

    /// Scans the directory (sorted) and reports entry count and bytes.
    [[nodiscard]] CacheStats stats() const;

private:
    /// One parsed `.meta` sidecar.
    struct MetaEntry {
        std::uint64_t plan_hash = 0;
        std::uint64_t prefix_hash = 0;
        std::size_t budget = 0;
        std::uint64_t last_use = 0;
    };

    [[nodiscard]] std::string payload_path(std::uint64_t plan_hash) const;
    [[nodiscard]] std::string meta_path(std::uint64_t plan_hash) const;
    /// All parseable sidecars, sorted by file name (deterministic order).
    [[nodiscard]] std::vector<MetaEntry> scan_metas() const;
    /// Bumps an entry's logical last-use above every other entry's.
    void touch(const MetaEntry& meta);
    void write_meta(const MetaEntry& meta);
    /// Deterministic LRU: evict by (last_use, plan_hash) until within caps.
    void evict();
    /// Validates the payload of `plan_hash` against `spec` via merge_shards;
    /// fills `out` on success. Returns false (after warning) on any failure.
    bool load_entry(const campaign::CampaignSpec& spec,
                    std::uint64_t plan_hash, CacheLookup& out) const;

    CacheConfig config_;
};

} // namespace relperf::cache
