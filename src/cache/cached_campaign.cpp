#include "cache/cached_campaign.hpp"

#include "cache/cached_source.hpp"
#include "campaign/merge.hpp"
#include "campaign/runner.hpp"
#include "core/measurement_engine.hpp"
#include "obs/metrics.hpp"

#include <utility>

namespace relperf::cache {

namespace {

/// Restores the plan's true fixed-N cost (analyze_measurements cannot know
/// the cap of an externally measured set).
void restore_fixed_n(core::AnalysisResult& analysis,
                     const campaign::CampaignSpec& spec) {
    analysis.fixed_n_samples =
        analysis.measurements.size() * spec.measurements;
}

/// A cold run of the uncached path, capturing the coordinated metadata.
CachedRunResult run_uncached(const campaign::CampaignSpec& spec,
                             std::size_t shard_count, std::size_t workers) {
    CachedRunResult out;
    if (spec.adaptive_coordinated) {
        campaign::CoordinatedCampaignResult coordinated =
            campaign::run_coordinated_campaign(spec, shard_count);
        out.analysis = std::move(coordinated.analysis);
        out.stopset_rounds = std::move(coordinated.stopset_rounds);
        out.rounds = coordinated.rounds;
    } else {
        out.analysis = campaign::run_campaign(spec, shard_count, workers);
    }
    return out;
}

} // namespace

bool cacheable(const campaign::CampaignSpec& spec, std::size_t shard_count) {
    if (!spec.adaptive() || spec.adaptive_coordinated) return true;
    // Shard-local adaptive stopping decides per shard, so the merged counts
    // depend on K — which the plan hash deliberately excludes. Only the
    // single-shard run (identical to the unsharded engine) is addressable.
    const std::size_t k = shard_count == 0 ? spec.shards : shard_count;
    return k == 1;
}

CachedRunResult run_campaign_cached(const campaign::CampaignSpec& spec,
                                    ResultCache& cache,
                                    std::size_t shard_count,
                                    std::size_t workers) {
    spec.validate();
    if (!cache.config().enabled()) {
        return run_uncached(spec, shard_count, workers);
    }
    if (!cacheable(spec, shard_count)) {
        // Not addressable by the plan hash: neither served nor stored.
        obs::metrics().cache_misses_total.inc();
        CachedRunResult out = run_uncached(spec, shard_count, workers);
        out.bypassed = true;
        return out;
    }

    CacheLookup lookup = cache.lookup(spec);
    CachedRunResult out;
    out.cache = lookup.kind;

    if (lookup.kind == HitKind::Exact) {
        // Re-cluster the cached samples under the spec's analysis knobs —
        // byte-identical to the original analysis, zero executor draws.
        out.analysis = core::analyze_measurements(std::move(lookup.merged),
                                                  spec.analysis_config());
        restore_fixed_n(out.analysis, spec);
        out.samples_from_cache = out.analysis.total_samples;
        obs::metrics().cache_extension_samples_saved_total.inc(
            out.samples_from_cache);
        out.stopset_rounds = std::move(lookup.manifest.stopset_rounds);
        out.rounds = out.stopset_rounds.size();
        return out;
    }

    if (lookup.kind == HitKind::Prefix) {
        // Re-run the ordinary measurement path with the cached samples
        // replayed as each algorithm's stream prefix: identical values in
        // identical order make every decision identical to a cold run, and
        // only draws beyond the prefix reach the executor.
        campaign::GlobalSampleSource bundle(spec);
        CachedSampleSource replay(bundle.source(), lookup.merged);
        if (spec.adaptive_coordinated) {
            campaign::CoordinatedCampaignResult coordinated =
                campaign::run_coordinated_campaign(spec, shard_count, replay);
            out.analysis = std::move(coordinated.analysis);
            out.stopset_rounds = std::move(coordinated.stopset_rounds);
            out.rounds = coordinated.rounds;
        } else if (spec.adaptive()) {
            // cacheable() admitted this plan, so K == 1: the single-shard
            // engine over the full global variant list.
            const core::AnalysisConfig config = spec.analysis_config();
            const core::MeasurementEngine engine(
                spec.adaptive_config(), config.comparator, config.clustering);
            core::EngineResult engine_result = engine.run(replay);
            out.analysis.measurements = std::move(engine_result.measurements);
            out.analysis.clustering = std::move(engine_result.clustering);
            out.analysis.samples_per_alg =
                std::move(engine_result.samples_per_alg);
            out.analysis.total_samples = engine_result.total_samples;
            out.analysis.fixed_n_samples = engine_result.fixed_n_samples;
        } else {
            core::MeasurementSet measured =
                core::measure_all(replay, spec.measurements);
            out.analysis = core::analyze_measurements(std::move(measured),
                                                      spec.analysis_config());
            restore_fixed_n(out.analysis, spec);
        }
        out.samples_from_cache = replay.served();
        cache.store(spec, out.analysis.measurements, out.stopset_rounds);
        return out;
    }

    // Miss: measure cold, publish the result for the next run.
    out = run_uncached(spec, shard_count, workers);
    cache.store(spec, out.analysis.measurements, out.stopset_rounds);
    return out;
}

} // namespace relperf::cache
