#include "cache/cached_source.hpp"

#include "obs/metrics.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <span>

namespace relperf::cache {

CachedSampleSource::CachedSampleSource(core::SampleSource& inner,
                                       const core::MeasurementSet& cached)
    : inner_(inner),
      cached_(cached),
      consumed_(inner.count(), 0),
      inner_skipped_(inner.count(), 0) {
    RELPERF_REQUIRE(cached_.size() == inner_.count(),
                    "CachedSampleSource: cached entry enumerates " +
                        std::to_string(cached_.size()) +
                        " algorithms, the source " +
                        std::to_string(inner_.count()));
    for (std::size_t i = 0; i < cached_.size(); ++i) {
        RELPERF_REQUIRE(cached_.name(i) == inner_.name(i),
                        "CachedSampleSource: algorithm order mismatch at "
                        "index " +
                            std::to_string(i) + ": cached '" + cached_.name(i) +
                            "' vs source '" + inner_.name(i) + "'");
    }
}

std::size_t CachedSampleSource::count() const { return inner_.count(); }

std::string CachedSampleSource::name(std::size_t index) const {
    return inner_.name(index);
}

void CachedSampleSource::sync_inner(std::size_t index) {
    const std::size_t prefix = cached_.samples(index).size();
    const std::size_t cached_consumed = std::min(consumed_[index], prefix);
    if (inner_skipped_[index] < cached_consumed) {
        inner_.skip(index, cached_consumed - inner_skipped_[index]);
        inner_skipped_[index] = cached_consumed;
    }
}

std::vector<double> CachedSampleSource::draw(std::size_t index,
                                             std::size_t n) {
    std::vector<double> out;
    out.reserve(n);
    const std::span<const double> prefix = cached_.samples(index);
    std::size_t& pos = consumed_[index];
    // Serve as much as possible from the cached prefix — the samples the
    // original run already paid for.
    const std::size_t from_cache =
        pos < prefix.size() ? std::min(n, prefix.size() - pos) : 0;
    if (from_cache > 0) {
        out.insert(out.end(), prefix.begin() + static_cast<std::ptrdiff_t>(pos),
                   prefix.begin() + static_cast<std::ptrdiff_t>(pos + from_cache));
        pos += from_cache;
        served_ += from_cache;
        obs::metrics().cache_extension_samples_saved_total.inc(from_cache);
    }
    const std::size_t remainder = n - from_cache;
    if (remainder > 0) {
        // First draw beyond the prefix: bring the inner stream to where the
        // original run's would be, then measure only the delta.
        sync_inner(index);
        const std::vector<double> fresh = inner_.draw(index, remainder);
        out.insert(out.end(), fresh.begin(), fresh.end());
        pos += remainder;
    }
    return out;
}

void CachedSampleSource::skip(std::size_t index, std::size_t n) {
    const std::size_t prefix = cached_.samples(index).size();
    std::size_t& pos = consumed_[index];
    const std::size_t in_prefix =
        pos < prefix ? std::min(n, prefix - pos) : 0;
    // Skipping within the prefix is free: the inner stream is fast-forwarded
    // lazily if a later draw ever goes beyond it.
    pos += in_prefix;
    const std::size_t beyond = n - in_prefix;
    if (beyond > 0) {
        sync_inner(index);
        inner_.skip(index, beyond);
        pos += beyond;
    }
}

} // namespace relperf::cache
