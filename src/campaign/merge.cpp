#include "campaign/merge.hpp"

#include "campaign/runner.hpp"
#include "campaign/sharder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

#include <vector>

namespace relperf::campaign {

core::MeasurementSet merge_shards(const CampaignSpec& spec,
                                  const std::vector<ShardResult>& shards) {
    spec.validate();
    RELPERF_REQUIRE(!shards.empty(), "merge_shards: no shards to merge");

    obs::Span span("campaign.merge", "campaign");
    span.arg("shards", static_cast<std::uint64_t>(shards.size()));
    obs::metrics().shard_merges_total.inc();

    const std::uint64_t expected_hash = spec.hash();
    const std::size_t shard_count = shards.front().manifest.shard_count;
    std::vector<const ShardResult*> by_index(shard_count, nullptr);

    for (const ShardResult& shard : shards) {
        const ShardManifest& m = shard.manifest;
        // Backend first: a cross-backend merge also fails the hash check,
        // but "different backend" is the actionable message — mixing
        // portable and vendor measurements of the same math would cluster
        // different variants as one.
        if (m.backend != spec.backend) {
            throw Error(str::format(
                "merge_shards: shard %zu was measured on the '%s' linalg "
                "backend, this spec demands '%s' — same algorithm on a "
                "different backend is a different variant, refusing to merge",
                m.shard_index, m.backend.c_str(), spec.backend.c_str()));
        }
        if (m.variant_backends != spec.variant_backends) {
            const auto describe = [](const std::vector<std::string>& list) {
                return list.empty() ? std::string("<none>")
                                    : str::join(list, ",");
            };
            throw Error(str::format(
                "merge_shards: shard %zu was measured over the per-task "
                "backend axis [%s], this spec demands [%s] — the variant "
                "spaces differ, refusing to merge",
                m.shard_index, describe(m.variant_backends).c_str(),
                describe(spec.variant_backends).c_str()));
        }
        if (m.adaptive_min != spec.adaptive_min ||
            (spec.adaptive() && (m.adaptive_batch != spec.adaptive_batch ||
                                 m.adaptive_stability != spec.adaptive_stability))) {
            const auto describe = [](std::size_t min, std::size_t batch,
                                     std::size_t stability) {
                return min == 0 ? std::string("fixed-N")
                                : str::format("adaptive min=%zu batch=%zu "
                                              "stability=%zu",
                                              min, batch, stability);
            };
            throw Error(str::format(
                "merge_shards: shard %zu was measured under a %s plan, this "
                "spec demands %s — the per-algorithm sample counts differ, "
                "refusing to merge",
                m.shard_index,
                describe(m.adaptive_min, m.adaptive_batch, m.adaptive_stability)
                    .c_str(),
                describe(spec.adaptive_min, spec.adaptive_batch,
                         spec.adaptive_stability)
                    .c_str()));
        }
        if (m.adaptive_coordinated != spec.adaptive_coordinated) {
            throw Error(str::format(
                "merge_shards: shard %zu was measured under %s stopping, "
                "this spec demands %s — the stop decisions watched a "
                "different clustering, refusing to merge",
                m.shard_index,
                m.adaptive_coordinated ? "coordinated" : "shard-local",
                spec.adaptive_coordinated ? "coordinated" : "shard-local"));
        }
        if (m.adaptive_confidence != spec.adaptive_confidence) {
            const auto describe = [](double q) {
                return q == 0.0 ? std::string("the stability rule")
                                : str::format("confidence %.12g", q);
            };
            throw Error(str::format(
                "merge_shards: shard %zu stopped on %s, this spec demands %s "
                "— the per-algorithm sample counts differ, refusing to merge",
                m.shard_index, describe(m.adaptive_confidence).c_str(),
                describe(spec.adaptive_confidence).c_str()));
        }
        // Every shard of a coordinated run received the same broadcast
        // history; a disagreement means the files come from different
        // coordinator runs even if the plan hashes match.
        if (spec.adaptive_coordinated &&
            m.stopset_rounds != shards.front().manifest.stopset_rounds) {
            throw Error(str::format(
                "merge_shards: shard %zu records a different coordinator "
                "stop-set history than shard %zu — the files come from "
                "different coordinated runs, refusing to merge",
                m.shard_index, shards.front().manifest.shard_index));
        }
        if (m.spec_hash != expected_hash) {
            throw Error(str::format(
                "merge_shards: shard %zu was measured under a different plan "
                "(manifest spec_hash %016llx, this spec hashes to %016llx) — "
                "refusing to merge",
                m.shard_index,
                static_cast<unsigned long long>(m.spec_hash),
                static_cast<unsigned long long>(expected_hash)));
        }
        if (m.shard_count != shard_count) {
            throw Error(str::format(
                "merge_shards: inconsistent shard counts (%zu vs %zu) — the "
                "shards come from different campaign splits",
                m.shard_count, shard_count));
        }
        if (m.shard_index >= shard_count) {
            throw Error(str::format(
                "merge_shards: shard index %zu out of range [0, %zu)",
                m.shard_index, shard_count));
        }
        if (by_index[m.shard_index] != nullptr) {
            throw Error(str::format("merge_shards: duplicate shard %zu/%zu",
                                    m.shard_index, shard_count));
        }
        by_index[m.shard_index] = &shard;
    }
    for (std::size_t i = 0; i < shard_count; ++i) {
        if (by_index[i] == nullptr) {
            throw Error(str::format(
                "merge_shards: shard %zu/%zu is missing (%zu of %zu present)",
                i, shard_count, shards.size(), shard_count));
        }
    }

    const std::vector<workloads::VariantAssignment> variants = spec.variants();
    const Sharder sharder(variants.size(), shard_count);

    // Every shard must contain exactly its plan: the planned algorithms with
    // N samples each.
    for (std::size_t i = 0; i < shard_count; ++i) {
        const ShardPlan plan = sharder.plan(i);
        const core::MeasurementSet& set = by_index[i]->measurements;
        if (set.size() != plan.assignment_indices.size()) {
            throw Error(str::format(
                "merge_shards: shard %zu holds %zu algorithms, plan expects "
                "%zu",
                i, set.size(), plan.assignment_indices.size()));
        }
        for (const std::size_t global : plan.assignment_indices) {
            const std::string name = variants[global].alg_name();
            if (!set.contains(name)) {
                throw Error(str::format(
                    "merge_shards: shard %zu is missing algorithm %s",
                    i, name.c_str()));
            }
            const std::size_t samples =
                set.samples(set.index_of(name)).size();
            if (!spec.adaptive()) {
                if (samples != spec.measurements) {
                    throw Error(str::format(
                        "merge_shards: shard %zu has %zu measurements of %s, "
                        "spec demands N = %zu",
                        i, samples, name.c_str(), spec.measurements));
                }
            } else {
                // Adaptive counts are min + k*batch, clamped at the cap: any
                // other count cannot have come from the engine's rounds.
                const bool reachable =
                    samples >= spec.adaptive_min &&
                    samples <= spec.measurements &&
                    (samples == spec.measurements ||
                     (samples - spec.adaptive_min) % spec.adaptive_batch == 0);
                if (!reachable) {
                    throw Error(str::format(
                        "merge_shards: shard %zu has %zu measurements of %s, "
                        "not reachable by the adaptive plan (min %zu, batch "
                        "%zu, cap %zu)",
                        i, samples, name.c_str(), spec.adaptive_min,
                        spec.adaptive_batch, spec.measurements));
                }
            }
        }
    }

    // Stitch back in global enumeration order.
    core::MeasurementSet merged;
    for (std::size_t global = 0; global < variants.size(); ++global) {
        const core::MeasurementSet& set =
            by_index[sharder.owner_of(global)]->measurements;
        const std::string name = variants[global].alg_name();
        const auto samples = set.samples(set.index_of(name));
        merged.add(name, {samples.begin(), samples.end()});
    }
    return merged;
}

core::AnalysisResult run_campaign(const CampaignSpec& spec,
                                  std::size_t shard_count,
                                  std::size_t workers) {
    // Coordinated plans cannot run shard-by-shard (the stop decisions need
    // the merged view between rounds), so route them through the
    // coordinator; `workers` is moot there — the coordinator is one process
    // driving one global engine.
    if (spec.adaptive_coordinated) {
        return run_coordinated_campaign(spec, shard_count).analysis;
    }
    const LocalShardRunner runner(workers);
    const std::vector<ShardResult> shards = runner.run(spec, shard_count);
    core::MeasurementSet merged = merge_shards(spec, shards);
    core::AnalysisResult result = core::analyze_measurements(
        std::move(merged), spec.analysis_config());
    // analyze_measurements cannot know the plan's cap; restore the true
    // fixed-N cost so result.saved quantities reflect the adaptive savings.
    result.fixed_n_samples = result.measurements.size() * spec.measurements;
    return result;
}

} // namespace relperf::campaign
