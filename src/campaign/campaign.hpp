#pragma once
//! \file campaign.hpp
//! Umbrella header for the campaign subsystem: sharded, resumable
//! measurement campaigns. Workflow:
//!
//!   1. describe the plan once      — CampaignSpec (spec.hpp), saved to a file;
//!   2. run shards anywhere         — run_shard / LocalShardRunner (runner.hpp),
//!                                    persisted via shard_io.hpp;
//!   3. merge and cluster centrally — merge_shards / run_campaign (merge.hpp).
//!
//! The per-assignment RNG streams of core::measure_assignments guarantee the
//! merged result is bit-identical to the single-process pipeline.

#include "campaign/merge.hpp"
#include "campaign/runner.hpp"
#include "campaign/shard_io.hpp"
#include "campaign/sharder.hpp"
#include "campaign/spec.hpp"
