#include "campaign/runner.hpp"

#include "campaign/sharder.hpp"
#include "linalg/backend.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "sim/analytic.hpp"
#include "sim/executor.hpp"
#include "sim/real_executor.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

namespace relperf::campaign {

namespace {

std::size_t effective_shard_count(const CampaignSpec& spec,
                                  std::size_t shard_count) {
    return shard_count == 0 ? spec.shards : shard_count;
}

/// Measures the variants of `plan` with the spec's executor through the one
/// generic engine-backed path. Each variant draws from the stream derived
/// from its *global* index, so a fixed-N shard is identical to the
/// corresponding slice of the unsharded pipeline, and an adaptive shard's
/// samples are a deterministic prefix of that slice. Adaptive stopping
/// clusters the shard's own algorithms (shard-local decisions).
core::MeasurementSet measure_plan(const CampaignSpec& spec,
                                  const ShardPlan& plan) {
    const workloads::TaskChain chain = spec.chain();
    const std::vector<workloads::VariantAssignment> all = spec.variants();
    std::vector<workloads::VariantAssignment> mine;
    mine.reserve(plan.assignment_indices.size());
    for (const std::size_t index : plan.assignment_indices) {
        mine.push_back(all[index]);
    }
    const core::StreamFactory streams = [&spec, &plan](std::size_t local) {
        return stats::Rng(core::assignment_stream_seed(
            spec.measurement_seed, plan.assignment_indices[local]));
    };

    const auto run_source = [&](core::SampleSource& source) {
        if (!spec.adaptive()) {
            return core::measure_all(source, spec.measurements);
        }
        const core::AnalysisConfig analysis = spec.analysis_config();
        const core::MeasurementEngine engine(
            spec.adaptive_config(), analysis.comparator, analysis.clustering);
        return std::move(engine.run(source).measurements);
    };

    if (spec.executor == ExecutorKind::Sim) {
        const sim::AnalyticCostModel model(platform_preset(spec.platform));
        const sim::SimulatedExecutor executor(model, sim::NoiseModel{});
        core::SimSampleSource source(executor, chain, std::move(mine), streams);
        return run_source(source);
    }
    const sim::EmulatedDevice device{spec.device_threads, 0.0, 0.0};
    const sim::EmulatedDevice accelerator{spec.accelerator_threads,
                                          spec.dispatch_delay_us * 1e-6,
                                          spec.switch_delay_us * 1e-6};
    const sim::RealExecutor executor(device, accelerator);
    core::RealSampleSource source(executor, chain, std::move(mine), streams,
                                  spec.warmup);
    return run_source(source);
}

} // namespace

ShardResult run_shard(const CampaignSpec& spec, std::size_t shard_index,
                      std::size_t shard_count) {
    spec.validate();
    // A lone shard cannot honor a coordinated plan: the stop decisions need
    // the merged view of all shards between rounds.
    RELPERF_REQUIRE(!spec.adaptive_coordinated,
                    "run_shard: the spec demands coordinated stopping, which "
                    "re-clusters the merged measurements of all shards "
                    "between rounds — run the campaign through "
                    "run_coordinated_campaign (relperf_cli --coordinated "
                    "--run) instead of per-shard execution");
    // Fail before measuring anything when this build cannot honor the
    // plan's backends (validate() deliberately does not check availability:
    // a collecting host without the backends must still be able to merge).
    (void)linalg::backend(spec.backend);
    for (const std::string& name : spec.variant_backends) {
        (void)linalg::backend(name);
    }
    const std::size_t count = effective_shard_count(spec, shard_count);
    const Sharder sharder(spec.variants().size(), count);

    obs::Span span("shard.run", "campaign");
    span.arg("shard", static_cast<std::uint64_t>(shard_index))
        .arg("of", static_cast<std::uint64_t>(count));
    const obs::ScopedHistogramTimer shard_timer(
        obs::metrics().shard_seconds);
    obs::metrics().shards_total.inc();

    ShardResult result;
    result.manifest.spec_hash = spec.hash();
    result.manifest.shard_index = shard_index;
    result.manifest.shard_count = count;
    result.manifest.campaign = spec.name;
    result.manifest.host = host_name();
    result.manifest.backend = spec.backend;
    result.manifest.variant_backends = spec.variant_backends;
    // The provenance record is a pure function of build + host + spec, so
    // attaching it keeps shard files byte-identical with obs on or off.
    for (const obs::ProvenanceEntry& e : obs::provenance()) {
        result.manifest.provenance.emplace_back(e.key, e.value);
    }
    if (spec.adaptive()) {
        result.manifest.adaptive_min = spec.adaptive_min;
        result.manifest.adaptive_batch = spec.adaptive_batch;
        result.manifest.adaptive_stability = spec.adaptive_stability;
        // Always shard-local here (coordinated specs are rejected above),
        // but the stopping rule still has to be recorded: counts stopped by
        // the confidence rule are not counts the stability rule produced.
        result.manifest.adaptive_confidence = spec.adaptive_confidence;
    }
    result.measurements = measure_plan(spec, sharder.plan(shard_index));
    if (spec.adaptive()) {
        result.manifest.samples_per_algorithm.reserve(
            result.measurements.size());
        for (std::size_t i = 0; i < result.measurements.size(); ++i) {
            result.manifest.samples_per_algorithm.push_back(
                result.measurements.samples(i).size());
        }
    }
    return result;
}

struct GlobalSampleSource::Impl {
    workloads::TaskChain chain;
    std::vector<workloads::VariantAssignment> variants;
    // Construction order matters: the executors hold references into the
    // model, and the sources into the executors.
    std::optional<sim::AnalyticCostModel> model;
    std::optional<sim::SimulatedExecutor> sim_executor;
    std::optional<sim::RealExecutor> real_executor;
    std::optional<core::SimSampleSource> sim_source;
    std::optional<core::RealSampleSource> real_source;
};

GlobalSampleSource::GlobalSampleSource(const CampaignSpec& spec)
    : impl_(std::make_unique<Impl>()) {
    spec.validate();
    // This object measures, so the plan's backends must exist in this build
    // (mirrors run_shard's pre-measurement check).
    (void)linalg::backend(spec.backend);
    for (const std::string& name : spec.variant_backends) {
        (void)linalg::backend(name);
    }
    impl_->chain = spec.chain();
    impl_->variants = spec.variants();
    const core::StreamFactory streams =
        [seed = spec.measurement_seed](std::size_t global) {
            return stats::Rng(core::assignment_stream_seed(seed, global));
        };
    if (spec.executor == ExecutorKind::Sim) {
        impl_->model.emplace(platform_preset(spec.platform));
        impl_->sim_executor.emplace(*impl_->model, sim::NoiseModel{});
        impl_->sim_source.emplace(*impl_->sim_executor, impl_->chain,
                                  impl_->variants, streams);
        return;
    }
    const sim::EmulatedDevice device{spec.device_threads, 0.0, 0.0};
    const sim::EmulatedDevice accelerator{spec.accelerator_threads,
                                          spec.dispatch_delay_us * 1e-6,
                                          spec.switch_delay_us * 1e-6};
    impl_->real_executor.emplace(device, accelerator);
    impl_->real_source.emplace(*impl_->real_executor, impl_->chain,
                               impl_->variants, streams, spec.warmup);
}

GlobalSampleSource::~GlobalSampleSource() = default;

core::SampleSource& GlobalSampleSource::source() {
    if (impl_->sim_source) return *impl_->sim_source;
    return *impl_->real_source;
}

CoordinatedCampaignResult run_coordinated_campaign(const CampaignSpec& spec,
                                                   std::size_t shard_count) {
    GlobalSampleSource bundle(spec);
    return run_coordinated_campaign(spec, shard_count, bundle.source());
}

CoordinatedCampaignResult run_coordinated_campaign(const CampaignSpec& spec,
                                                   std::size_t shard_count,
                                                   core::SampleSource& source) {
    spec.validate();
    RELPERF_REQUIRE(spec.adaptive(),
                    "run_coordinated_campaign: spec is fixed-N — coordinated "
                    "stopping needs an adaptive plan "
                    "(adaptive_min_measurements)");
    RELPERF_REQUIRE(spec.adaptive_coordinated,
                    "run_coordinated_campaign: spec does not declare "
                    "'adaptive_coordination = coordinated' — the key is part "
                    "of the measurement plan and must be recorded");
    const std::size_t count = effective_shard_count(spec, shard_count);
    const std::vector<workloads::VariantAssignment> variants = spec.variants();
    const Sharder sharder(variants.size(), count);

    // The coordinator owns the round loop conceptually, but it does not need
    // to own it mechanically: every variant draws from the stream derived
    // from its *global* index, so "collect all shards' measurements,
    // re-cluster the merged set, broadcast the stop-set" is value-identical
    // to running the one engine over the full variant list — the merged
    // clustering IS the engine's per-round clustering, and the global
    // stop-set IS the engine's frozen set. The observer is where the
    // broadcast becomes observable: one coordination round and K stop-set
    // broadcasts per clustering, recorded for the shard manifests.
    RELPERF_REQUIRE(source.count() == variants.size(),
                    "run_coordinated_campaign: the sample source must "
                    "enumerate the spec's full global variant list");
    const core::AnalysisConfig analysis_cfg = spec.analysis_config();
    const core::MeasurementEngine engine(
        spec.adaptive_config(), analysis_cfg.comparator,
        analysis_cfg.clustering);

    CoordinatedCampaignResult out;
    const core::RoundObserver observer = [&](const core::EngineRound& r) {
        obs::Span round("campaign.coordinate", "campaign");
        round.arg("round", static_cast<std::uint64_t>(r.round))
            .arg("shards", static_cast<std::uint64_t>(count))
            .arg("newly_stopped", static_cast<std::uint64_t>(r.newly_stopped))
            .arg("stopset", static_cast<std::uint64_t>(r.stopped_total))
            .arg("active", static_cast<std::uint64_t>(r.active));
        obs::metrics().coordination_rounds.inc();
        // The global stop-set goes out to every shard each round.
        obs::metrics().stopset_broadcast_total.inc(count);
        out.stopset_rounds.push_back(r.stopped_total);
    };

    core::EngineResult engine_result = engine.run(source, observer);
    out.rounds = engine_result.rounds;

    // Slice the global result into per-shard files. Manifests carry the
    // coordinated plan and the broadcast history so a later merge_shards can
    // verify every file came from the same coordinator run.
    const std::string host = host_name();
    out.shards.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        obs::metrics().shards_total.inc();
        ShardResult shard;
        ShardManifest& m = shard.manifest;
        m.spec_hash = spec.hash();
        m.shard_index = i;
        m.shard_count = count;
        m.campaign = spec.name;
        m.host = host;
        m.backend = spec.backend;
        m.variant_backends = spec.variant_backends;
        for (const obs::ProvenanceEntry& e : obs::provenance()) {
            m.provenance.emplace_back(e.key, e.value);
        }
        m.adaptive_min = spec.adaptive_min;
        m.adaptive_batch = spec.adaptive_batch;
        m.adaptive_stability = spec.adaptive_stability;
        m.adaptive_coordinated = true;
        m.adaptive_confidence = spec.adaptive_confidence;
        m.stopset_rounds = out.stopset_rounds;
        const ShardPlan plan = sharder.plan(i);
        m.samples_per_algorithm.reserve(plan.assignment_indices.size());
        for (const std::size_t global : plan.assignment_indices) {
            const auto samples = engine_result.measurements.samples(global);
            shard.measurements.add(engine_result.measurements.name(global),
                                   {samples.begin(), samples.end()});
            m.samples_per_algorithm.push_back(
                engine_result.samples_per_alg[global]);
        }
        out.shards.push_back(std::move(shard));
    }

    // The engine's published clustering is exactly what analyze_measurements
    // would produce on the final merged measurements, so the analysis bundle
    // is assembled directly — no re-clustering.
    out.analysis.total_samples = engine_result.total_samples;
    out.analysis.fixed_n_samples = engine_result.fixed_n_samples;
    out.analysis.measurements = std::move(engine_result.measurements);
    out.analysis.clustering = std::move(engine_result.clustering);
    out.analysis.samples_per_alg = std::move(engine_result.samples_per_alg);
    return out;
}

LocalShardRunner::LocalShardRunner(std::size_t workers) : workers_(workers) {
    if (workers_ == 0) {
        workers_ = std::max(1u, std::thread::hardware_concurrency());
    }
}

std::vector<ShardResult> LocalShardRunner::run(const CampaignSpec& spec,
                                               std::size_t shard_count) const {
    spec.validate();
    const std::size_t count = effective_shard_count(spec, shard_count);
    // Validate K against the variant count before spawning anything.
    (void)Sharder(spec.variants().size(), count);

    // Real campaigns measure wall-clock time on this machine: concurrent
    // shards would measure each other's contention, so run them serially.
    const std::size_t threads =
        spec.executor == ExecutorKind::Real ? 1 : std::min(workers_, count);

    std::vector<ShardResult> results(count);
    obs::report_progress("shards", 0, count);
    if (threads <= 1) {
        for (std::size_t i = 0; i < count; ++i) {
            results[i] = run_shard(spec, i, count);
            obs::report_progress("shards", i + 1, count);
        }
        return results;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            while (true) {
                const std::size_t i = next.fetch_add(1);
                if (i >= count) return;
                try {
                    results[i] = run_shard(spec, i, count);
                    obs::report_progress("shards", done.fetch_add(1) + 1,
                                         count);
                } catch (...) {
                    const std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error) first_error = std::current_exception();
                }
            }
        });
    }
    for (std::thread& worker : pool) worker.join();
    if (first_error) std::rethrow_exception(first_error);
    return results;
}

} // namespace relperf::campaign
