#include "campaign/runner.hpp"

#include "campaign/sharder.hpp"
#include "linalg/backend.hpp"
#include "sim/analytic.hpp"
#include "sim/executor.hpp"
#include "sim/real_executor.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace relperf::campaign {

namespace {

std::size_t effective_shard_count(const CampaignSpec& spec,
                                  std::size_t shard_count) {
    return shard_count == 0 ? spec.shards : shard_count;
}

/// Measures the variants of `plan` with the spec's executor. Each variant
/// runs on the stream derived from its global index, making the result
/// identical to the corresponding slice of the unsharded pipeline.
core::MeasurementSet measure_plan(const CampaignSpec& spec,
                                  const ShardPlan& plan) {
    const workloads::TaskChain chain = spec.chain();
    const std::vector<workloads::VariantAssignment> variants = spec.variants();

    core::MeasurementSet set;
    const auto stream_for = [&](std::size_t global_index) {
        return stats::Rng(
            core::assignment_stream_seed(spec.measurement_seed, global_index));
    };

    if (spec.executor == ExecutorKind::Sim) {
        const sim::AnalyticCostModel model(platform_preset(spec.platform));
        const sim::SimulatedExecutor executor(model, sim::NoiseModel{});
        for (const std::size_t index : plan.assignment_indices) {
            stats::Rng stream = stream_for(index);
            set.add(variants[index].alg_name(),
                    executor.measure(chain, variants[index],
                                     spec.measurements, stream));
        }
    } else {
        const sim::EmulatedDevice device{spec.device_threads, 0.0, 0.0};
        const sim::EmulatedDevice accelerator{spec.accelerator_threads,
                                              spec.dispatch_delay_us * 1e-6,
                                              spec.switch_delay_us * 1e-6};
        const sim::RealExecutor executor(device, accelerator);
        for (const std::size_t index : plan.assignment_indices) {
            stats::Rng stream = stream_for(index);
            set.add(variants[index].alg_name(),
                    executor.measure(chain, variants[index],
                                     spec.measurements, stream, spec.warmup));
        }
    }
    return set;
}

} // namespace

ShardResult run_shard(const CampaignSpec& spec, std::size_t shard_index,
                      std::size_t shard_count) {
    spec.validate();
    // Fail before measuring anything when this build cannot honor the
    // plan's backends (validate() deliberately does not check availability:
    // a collecting host without the backends must still be able to merge).
    (void)linalg::backend(spec.backend);
    for (const std::string& name : spec.variant_backends) {
        (void)linalg::backend(name);
    }
    const std::size_t count = effective_shard_count(spec, shard_count);
    const Sharder sharder(spec.variants().size(), count);

    ShardResult result;
    result.manifest.spec_hash = spec.hash();
    result.manifest.shard_index = shard_index;
    result.manifest.shard_count = count;
    result.manifest.campaign = spec.name;
    result.manifest.host = host_name();
    result.manifest.backend = spec.backend;
    result.manifest.variant_backends = spec.variant_backends;
    result.measurements = measure_plan(spec, sharder.plan(shard_index));
    return result;
}

LocalShardRunner::LocalShardRunner(std::size_t workers) : workers_(workers) {
    if (workers_ == 0) {
        workers_ = std::max(1u, std::thread::hardware_concurrency());
    }
}

std::vector<ShardResult> LocalShardRunner::run(const CampaignSpec& spec,
                                               std::size_t shard_count) const {
    spec.validate();
    const std::size_t count = effective_shard_count(spec, shard_count);
    // Validate K against the variant count before spawning anything.
    (void)Sharder(spec.variants().size(), count);

    // Real campaigns measure wall-clock time on this machine: concurrent
    // shards would measure each other's contention, so run them serially.
    const std::size_t threads =
        spec.executor == ExecutorKind::Real ? 1 : std::min(workers_, count);

    std::vector<ShardResult> results(count);
    if (threads <= 1) {
        for (std::size_t i = 0; i < count; ++i) {
            results[i] = run_shard(spec, i, count);
        }
        return results;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            while (true) {
                const std::size_t i = next.fetch_add(1);
                if (i >= count) return;
                try {
                    results[i] = run_shard(spec, i, count);
                } catch (...) {
                    const std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error) first_error = std::current_exception();
                }
            }
        });
    }
    for (std::thread& worker : pool) worker.join();
    if (first_error) std::rethrow_exception(first_error);
    return results;
}

} // namespace relperf::campaign
