#pragma once
//! \file spec.hpp
//! CampaignSpec — the serializable description of a measurement campaign:
//! which chain to measure (RLS task sizes + loop iterations), on which
//! executor (simulated platform preset or the real machine), how many
//! measurements per algorithm, and the analysis knobs. One spec file is
//! shipped to every shard runner; its hash ties shard outputs back to the
//! plan so a merge can reject results produced under a different plan.

#include "core/pipeline.hpp"
#include "sim/spec.hpp"
#include "workloads/chain.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace relperf::campaign {

/// Which measurement apparatus a campaign uses.
enum class ExecutorKind {
    Sim,  ///< SimulatedExecutor over an AnalyticCostModel platform preset.
    Real, ///< RealExecutor (wall-clock on the machine running the shard).
};

[[nodiscard]] const char* to_string(ExecutorKind kind) noexcept;
[[nodiscard]] ExecutorKind executor_kind_from_string(const std::string& text);

/// The full, serializable campaign plan. All fields have workable defaults;
/// validate() enforces ranges.
struct CampaignSpec {
    std::string name = "campaign"; ///< Label, recorded in shard manifests.

    // Workload: the generic RLS chain (paper Procedure 5 shape).
    std::vector<std::size_t> sizes = {50, 75, 300}; ///< Task sizes.
    std::size_t iters = 10;                         ///< Loop iterations/task.

    // Measurement plan.
    ExecutorKind executor = ExecutorKind::Sim;
    std::string platform = "paper-cpu-gpu"; ///< Sim preset (see platform_preset).
    std::size_t measurements = 30;          ///< Paper's N, per algorithm.
    std::uint64_t measurement_seed = 0xFEEDULL;
    /// Chain-default linalg backend ("portable", "blas", "reference"; see
    /// linalg/backend.hpp). Part of the measurement plan — the same math on
    /// a different backend is a different variant — so a non-default backend
    /// enters hash() and cross-backend merges are rejected. Availability is
    /// checked when a shard *runs*, not in validate(): a collecting host
    /// without the backend can still merge.
    std::string backend = "portable";
    /// Per-task backend axis. Empty (the default) measures the plain 2^k
    /// placement algorithms, exactly the pre-variant plan — and contributes
    /// nothing to hash(), so existing specs keep their plan hashes and shard
    /// files. Non-empty backends grow the campaign to the (2·B)^k per-task
    /// placement×backend variants of workloads::enumerate_variants (spec key
    /// `variant_backends = portable,blas`); every variant's backends
    /// override the chain default task by task.
    std::vector<std::string> variant_backends;

    // Adaptive measurement (core/measurement_engine.hpp). adaptive_min = 0
    // (the default) keeps the classic fixed-N plan. A positive adaptive_min
    // measures every algorithm adaptive_min samples first and then extends
    // in adaptive_batch steps up to `measurements`, stopping an algorithm
    // once its performance-class membership was unchanged for
    // adaptive_stability consecutive clusterings. Stopping decisions default
    // to *shard-local* (each shard clusters the algorithms it owns), so a
    // sharded adaptive campaign is deterministic per split but may measure
    // different counts than the unsharded run; the sample *values* are
    // prefix-identical in every case. `adaptive_coordination = coordinated`
    // instead stops on the *merged* clustering: between rounds the
    // coordinator re-clusters all shards' measurements together and
    // broadcasts the global stop-set, so per-algorithm counts are
    // K-invariant and equal the unsharded engine's. `adaptive_confidence`
    // (in (0.5, 1)) swaps the membership-stability stopping rule for the
    // confidence-targeted one (core/stopping_rule.hpp). The adaptive keys
    // enter the spec text and hash() only when adaptive is on — and the two
    // new ones only when themselves set — so fixed-N specs and pre-
    // coordination adaptive specs keep their exact bytes and plan hashes.
    // Because the stopping rule consults the clusterer, the analysis knobs
    // become measurement-determining for adaptive specs and join the hash as
    // well.
    std::size_t adaptive_min = 0;       ///< Min N (0 = adaptive off).
    std::size_t adaptive_batch = 5;     ///< Samples added per round.
    std::size_t adaptive_stability = 2; ///< Stable clusterings before stop.
    /// Cross-shard coordinated stopping (key value "coordinated"; the
    /// default "shard-local" is never emitted).
    bool adaptive_coordinated = false;
    /// Confidence level of the confidence-targeted stopping rule; 0 (the
    /// default, never emitted) keeps the membership-stability rule.
    double adaptive_confidence = 0.0;

    // Real-executor emulation knobs (paper footnote 2), ignored for Sim.
    int device_threads = 1;        ///< OpenMP team of the emulated Device.
    int accelerator_threads = 0;   ///< 0 = all hardware threads.
    double dispatch_delay_us = 200.0; ///< Per-launch delay on the Accelerator.
    double switch_delay_us = 100.0;   ///< Delay when entering the Accelerator.
    std::size_t warmup = 1;           ///< Unrecorded runs per algorithm.

    // Default shard count (K). `relperf_cli --shard i/K` may override K; the
    // measurement plan — and therefore hash() — does not depend on it.
    std::size_t shards = 1;

    // Analysis knobs (paper Rep / R / epsilon / theta).
    std::size_t clustering_repetitions = 100;
    std::uint64_t clustering_seed = 42;
    std::size_t bootstrap_rounds = 100;
    double tie_epsilon = 0.02;
    double decision_threshold = 0.9;

    /// Throws InvalidArgument on out-of-range fields.
    void validate() const;

    /// INI-style `key = value` serialization (round-trips through parse).
    [[nodiscard]] std::string to_text() const;

    /// Parses to_text() output. Unknown or duplicate keys, malformed values
    /// and junk lines are errors naming `source` and the 1-based line number.
    /// Blank lines, `#` comments and CRLF endings are tolerated.
    [[nodiscard]] static CampaignSpec parse(const std::string& text,
                                            const std::string& source =
                                                "<string>");

    [[nodiscard]] static CampaignSpec load(const std::string& path);
    void save(const std::string& path) const;

    /// FNV-1a hash of the *measurement plan* — the fields that determine
    /// measured values (workload, executor, platform, backend, N, seed,
    /// real-executor knobs). The label, the default shard count and the
    /// analysis knobs are excluded: they cannot change any measurement, so
    /// shards stay mergeable across K choices and analysis re-runs. The
    /// default backend ("portable") contributes nothing, keeping pre-backend
    /// hashes stable. merge_shards enforces equality.
    [[nodiscard]] std::uint64_t hash() const;

    /// hash() of the plan with the measurement budget blanked out: two specs
    /// share a prefix_hash exactly when they are the same plan up to
    /// `measurements` (fixed N / the adaptive cap). Because every algorithm
    /// draws a prefix-extensible per-assignment stream, a run of the
    /// smaller-budget plan is a byte-exact prefix of the larger one — the
    /// property the result cache's prefix-extension lookup keys on.
    [[nodiscard]] std::uint64_t prefix_hash() const;

    /// The chain this campaign measures.
    [[nodiscard]] workloads::TaskChain chain() const;

    /// The 2^tasks plain device assignments, in enumeration order (the
    /// placement axis only; ignores variant_backends).
    [[nodiscard]] std::vector<workloads::DeviceAssignment> assignments() const;

    /// The campaign's full measured algorithm list: the plain assignments
    /// (backend-inherit) when variant_backends is empty, else the (2·B)^k
    /// placement×backend variants. Positions in this list are the global
    /// indices the sharder partitions and the merge stitches back.
    [[nodiscard]] std::vector<workloads::VariantAssignment> variants() const;

    /// True when the adaptive engine drives measurement (adaptive_min > 0).
    [[nodiscard]] bool adaptive() const noexcept { return adaptive_min != 0; }

    /// The engine knobs of an adaptive spec: min = adaptive_min,
    /// max = measurements. Throws when adaptive() is false.
    [[nodiscard]] core::AdaptiveConfig adaptive_config() const;

    /// Analysis configuration carrying the spec's knobs (including the
    /// adaptive engine config when adaptive() is on).
    [[nodiscard]] core::AnalysisConfig analysis_config() const;
};

/// Maps a preset name to its sim::Platform. Known names:
/// "paper-cpu-gpu", "rpi-server", "smartphone-gpu", "cpu-only".
/// Throws InvalidArgument on unknown names (message lists the options).
[[nodiscard]] sim::Platform platform_preset(const std::string& name);

/// The accepted platform_preset names.
[[nodiscard]] const std::vector<std::string>& platform_preset_names();

} // namespace relperf::campaign
