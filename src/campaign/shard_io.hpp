#pragma once
//! \file shard_io.hpp
//! Persistence of one shard's output: the standard measurements CSV
//! (`algorithm,measurement_index,seconds`, readable by core::io and by
//! relperf_cli --input) prefixed with a small manifest in `#` comment lines
//! — spec hash, shard index/count, campaign label and producing host — so a
//! merge on the collecting machine can verify every file belongs to the same
//! measurement plan before clustering.
//!
//! Example file:
//!
//!     # relperf-shard v1
//!     # campaign = edge-sweep
//!     # spec_hash = 9e1b7c2a44f00d1c
//!     # shard_index = 0
//!     # shard_count = 4
//!     # host = rpi-kitchen
//!     algorithm,measurement_index,seconds
//!     algDDD,0,0.0406...

#include "core/measurement.hpp"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace relperf::campaign {

/// Provenance header of a shard file.
struct ShardManifest {
    std::uint64_t spec_hash = 0;  ///< CampaignSpec::hash() of the plan.
    std::size_t shard_index = 0;  ///< i in [0, K).
    std::size_t shard_count = 1;  ///< K.
    std::string campaign;         ///< Spec label (informational).
    std::string host;             ///< Producing host name (informational).
    /// Chain-default linalg backend the shard was measured on. Files from
    /// before the backend axis carry no `# backend` line and read back as
    /// "portable" (which is exactly what they ran on). merge_shards rejects
    /// a backend that disagrees with the spec *before* comparing hashes, so
    /// a cross-backend merge fails with a message naming the real cause.
    std::string backend = "portable";
    /// Per-task backend axis of the plan (`# variant_backends = a,b`); empty
    /// for plain-placement campaigns and for files from before the variant
    /// axis. Checked against the spec by merge_shards like `backend`.
    std::vector<std::string> variant_backends;
    /// Adaptive plan of the shard (0 = fixed-N, the pre-adaptive file form).
    /// Checked against the spec by merge_shards like `backend`.
    std::size_t adaptive_min = 0;       ///< `# adaptive_min_measurements`.
    std::size_t adaptive_batch = 0;     ///< `# adaptive_batch`.
    std::size_t adaptive_stability = 0; ///< `# adaptive_stability_rounds`.
    /// Coordinated stop-set plan of the shard (`# adaptive_coordination =
    /// coordinated`); absent for shard-local files (including every file
    /// from before coordination). Checked against the spec by merge_shards.
    bool adaptive_coordinated = false;
    /// Confidence-targeted stopping rule level (`# adaptive_confidence`);
    /// 0 = the membership-stability rule. Checked like `backend`.
    double adaptive_confidence = 0.0;
    /// Cumulative global stop-set size after each coordinator round
    /// (`# stopset_rounds = 0,5,8`). Written only by coordinated shards; the
    /// coordinator hands every shard the same broadcast history, so
    /// merge_shards requires the lists to be identical across files.
    std::vector<std::size_t> stopset_rounds;
    /// Per-algorithm sample counts in CSV order (`# samples_per_algorithm =
    /// 10,15,30`). Written only by adaptive shards — fixed-N counts are
    /// implied by the plan — and cross-checked against the CSV rows on read,
    /// so a truncated or hand-edited file dies before it reaches a merge.
    std::vector<std::size_t> samples_per_algorithm;
    /// Run provenance record of the producing process (`# provenance =
    /// key=value;key=value`, see obs/provenance.hpp). Informational, like
    /// `host`: a merge never validates it, and files from before the obs
    /// layer carry no line and read back empty.
    std::vector<std::pair<std::string, std::string>> provenance;
};

/// One shard's manifest plus its measured distributions (the algorithms of
/// the shard's assignment plan, in plan order).
struct ShardResult {
    ShardManifest manifest;
    core::MeasurementSet measurements;
};

/// Best-effort name of this machine ("unknown" when unavailable).
[[nodiscard]] std::string host_name();

/// Writes `shard` to `path` in the format above. Values use round-trip
/// precision (%.17g) so a merge of written shards is bit-identical to an
/// in-memory merge. Throws relperf::Error on I/O failure.
void write_shard_csv(const ShardResult& shard, const std::string& path);

/// Reads a shard file; throws relperf::Error naming the file (and line, for
/// malformed content) on missing/incomplete manifests or bad measurement rows.
[[nodiscard]] ShardResult read_shard_csv(const std::string& path);

/// Expands a shard-file pattern into sorted paths: a POSIX glob when the
/// pattern contains metacharacters (`*?[`), otherwise a comma-separated list
/// of literal paths. Throws when nothing matches.
[[nodiscard]] std::vector<std::string> expand_shard_pattern(
    const std::string& pattern);

} // namespace relperf::campaign
