#pragma once
//! \file merge.hpp
//! Merge-then-cluster: validate a set of shard results against the campaign
//! spec and stitch them back into the unsharded MeasurementSet, then hand it
//! to the standard analysis. Validation is strict — a merge over shards from
//! a different plan (spec hash mismatch), a duplicate shard, a missing shard
//! or a shard whose contents disagree with its plan is a hard error, because
//! a silently wrong merge would produce a confidently wrong clustering.

#include "campaign/shard_io.hpp"
#include "campaign/spec.hpp"
#include "core/pipeline.hpp"

#include <cstddef>
#include <vector>

namespace relperf::campaign {

/// Validates `shards` against `spec` and returns the merged MeasurementSet
/// in global enumeration order — bit-identical to what the single-process
/// pipeline measures. Shards may arrive in any order. Throws relperf::Error
/// on: empty input, spec-hash mismatch, inconsistent or duplicate shard
/// indices, missing shards, or per-shard contents that do not match the
/// shard's plan (wrong algorithms or sample counts).
[[nodiscard]] core::MeasurementSet merge_shards(
    const CampaignSpec& spec, const std::vector<ShardResult>& shards);

/// Convenience single-host campaign: run all shards (LocalShardRunner with
/// `workers` threads), merge, cluster. shard_count = 0 uses spec.shards.
/// For fixed-N specs this produces the exact AnalysisResult of
/// core::analyze_chain on the same plan, for every choice of shard_count
/// and workers. Adaptive specs are deterministic per shard_count, but
/// shard-local early stopping decides per shard, so different K may keep
/// different per-algorithm counts (the sample values stay prefix-identical).
/// Coordinated specs (adaptive_coordination = coordinated) route through
/// run_coordinated_campaign, whose counts are K-invariant.
[[nodiscard]] core::AnalysisResult run_campaign(const CampaignSpec& spec,
                                                std::size_t shard_count = 0,
                                                std::size_t workers = 1);

} // namespace relperf::campaign
